(* An auditor pulling a replica over a hostile network.

   The transport between the auditor and the LSP drops 5% of messages,
   garbles 1% and occasionally delays or reorders them.  The pull
   survives anyway: the Transport retry policy re-asks after drops,
   garbled responses fail to decode and are re-fetched, and — when the
   link dies completely mid-pull — the CRC-framed staging file lets the
   next attempt resume from the last journal that made it to disk
   instead of starting over.  Verification is never relaxed: whatever
   arrives is replayed through the commit path and checked against the
   announced checkpoint.

   Run with: dune exec examples/flaky_auditor.exe *)

open Ledger_crypto
open Ledger_storage
open Ledger_core
open Ledger_timenotary
open Ledger_fault
open Ledger_bench_util

let () =
  (* The LSP's world: a ledger with some history. *)
  let clock = Clock.create () in
  let tsa = Tsa.pool [ Tsa.create ~clock "flaky-tsa" ] in
  let t_ledger = T_ledger.create ~clock ~tsa () in
  let config =
    { Ledger.default_config with name = "flaky"; block_size = 4;
      fam_delta = 3; crypto = Crypto_profile.default_simulated }
  in
  let remote = Ledger.create ~config ~t_ledger ~tsa ~clock () in
  let user, key =
    Ledger.new_member remote ~name:"writer" ~role:Roles.Regular_user
  in
  for i = 0 to 15 do
    Clock.advance_ms clock 100.;
    ignore
      (Ledger.append remote ~member:user ~priv:key
         ~clues:[ "batch-" ^ string_of_int (i / 4) ]
         (Bytes.of_string (Printf.sprintf "entry %d" i)))
  done;
  Clock.advance_ms clock 1100.;
  (match Ledger.anchor_via_t_ledger remote with
  | Ok _ -> ()
  | Error _ -> failwith "anchor rejected");
  Ledger.seal_block remote;
  Printf.printf "LSP serves %d journals, %d sealed blocks\n"
    (Ledger.size remote) (Ledger.block_count remote);

  (* The network: 5%% loss, 1%% garbling, plus delays and reordering. *)
  let rng = Det_rng.create ~seed:2022 in
  let ft =
    Faulty_transport.create ~rng
      ~config:
        (Faulty_transport.lossy ~drop:0.05 ~garble:0.01 ~reorder:0.02
           ~delay:0.1 ~delay_ms:250. ())
      ~clock (Service.handle remote)
  in

  (* First attempt: the link additionally dies for good partway through
     the journal fetch, stranding a staged prefix on disk. *)
  let scratch = Filename.temp_file "flaky" "replica" in
  Sys.remove scratch;
  let journals_seen = ref 0 in
  let dying req =
    (match Service.decode_request req with
    | Some (Service.Get_journal _) ->
        incr journals_seen;
        if !journals_seen > 7 then
          raise (Transport.Timeout "backbone cut")
    | _ -> ());
    Faulty_transport.transport ft req
  in
  (match
     Replica.pull_verbose ~transport:dying ~policy:Transport.no_retry ~config
       ~t_ledger ~tsa ~clock ~scratch_dir:scratch ()
   with
  | Ok _ -> failwith "pull should have died with the link"
  | Error e ->
      Printf.printf "first pull failed as expected: %s\n"
        (Replica.error_to_string e));

  (* Second attempt: the backbone is repaired but the link stays lossy.
     The pull resumes from the staged journals and retries through the
     remaining faults until it converges. *)
  (match
     Replica.pull_verbose
       ~transport:(Faulty_transport.transport ft)
       ~config ~t_ledger ~tsa ~clock ~scratch_dir:scratch ()
   with
  | Error e -> failwith ("second pull failed: " ^ Replica.error_to_string e)
  | Ok (replica, stats) ->
      Printf.printf "second pull converged: resumed from journal %d, %d requests, %d retries\n"
        stats.Replica.resumed_from stats.Replica.requests
        stats.Replica.retries;
      Printf.printf "network damage along the way: %s\n"
        (Faulty_transport.stats_to_string (Faulty_transport.stats ft));
      assert (Ledger.size replica = Ledger.size remote);
      assert
        (Hash.equal (Ledger.commitment replica) (Ledger.commitment remote));
      let report = Audit.run replica in
      Printf.printf "replica audit over the flaky link: %s\n"
        (if report.Audit.ok then "PASSED" else "FAILED");
      assert report.Audit.ok);
  print_endline "flaky auditor done: lossy links slow the pull, never poison it"
