(* A remote client talking to the ledger service purely over bytes — the
   Fig. 1 deployment: the client signs requests locally (pi_c), ships
   them to the service, and verifies every returned proof object itself.

   Run with: dune exec examples/remote_client.exe *)

open Ledger_crypto
open Ledger_storage
open Ledger_core
open Ledger_merkle
open Ledger_cmtree

let () =
  (* server side: the LSP's process *)
  let clock = Clock.create () in
  let ledger = Ledger.create ~clock () in
  let member, priv =
    Ledger.new_member ledger ~name:"remote-user" ~role:Roles.Regular_user
  in
  (* the only channel between client and server: bytes in, bytes out *)
  let send request = Service.handle ledger request in

  (* client side *)
  let client =
    Service.Client.create ~ledger_uri:(Ledger.uri ledger) ~member ~priv ()
  in
  let parse = Service.Client.parse in

  (* 1. append six documents over the wire *)
  let receipts =
    List.init 6 (fun i ->
        Clock.advance_ms clock 25.;
        let request =
          Service.Client.make_append client ~clues:[ "contract-7" ]
            ~client_ts:(Clock.now clock)
            (Bytes.of_string (Printf.sprintf "signed page %d" i))
        in
        match parse (send request) with
        | Some (Service.Receipt_r r) -> r
        | Some (Service.Error_r e) -> failwith e
        | _ -> failwith "unexpected response")
  in
  Printf.printf "appended %d journals over the wire\n" (List.length receipts);

  (* 2. fetch the commitment and keep it as the local trust root *)
  let commitment, size =
    match parse (send (Service.Client.make_get_commitment ())) with
    | Some (Service.Commitment_r { commitment; size }) -> (commitment, size)
    | _ -> failwith "no commitment"
  in
  Printf.printf "ledger commitment %s at size %d\n" (Hash.short_hex commitment) size;

  (* 3. existence: fetch a proof and verify it locally against the
     receipt's tx-hash (which the client already holds) *)
  let r3 = List.nth receipts 3 in
  (match parse (send (Service.Client.make_get_proof ~jsn:r3.Receipt.jsn)) with
  | Some (Service.Proof_r proof) ->
      Printf.printf "existence of jsn %d verified locally: %b\n" r3.Receipt.jsn
        (Fam.verify ~commitment ~leaf:r3.Receipt.tx_hash proof)
  | _ -> failwith "no proof");

  (* 4. lineage: the whole clue, one batch proof *)
  (match parse (send (Service.Client.make_get_clue_proof ~clue:"contract-7" ())) with
  | Some (Service.Clue_proof_r (Some proof)) ->
      (* the client recomputes entry digests from its receipts *)
      let known =
        List.mapi (fun v (r : Receipt.t) -> (v, r.Receipt.tx_hash)) receipts
      in
      Printf.printf "clue lineage verified locally: %b\n"
        (Cm_tree.verify_clue ~root:(Cm_tree.root_hash (Ledger.cm_tree ledger))
           ~known proof)
  | _ -> failwith "no clue proof");

  (* 5. come back later: check the ledger only appended since our visit *)
  let old_size = size in
  let old_peaks = Fam.anchor_peaks (Ledger.make_anchor ledger) in
  Clock.advance_ms clock 500.;
  for i = 0 to 9 do
    let request =
      Service.Client.make_append client ~client_ts:(Clock.now clock)
        (Bytes.of_string (Printf.sprintf "later record %d" i))
    in
    ignore (send request)
  done;
  (match parse (send (Service.Client.make_get_extension ~old_size)) with
  | Some (Service.Extension_r proof) ->
      Printf.printf "append-only growth since size %d verified: %b\n" old_size
        (Ledger.verify_extension ledger ~old_size ~old_peaks proof)
  | _ -> failwith "no extension proof");
  print_endline "remote client demo complete"
