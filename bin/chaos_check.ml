(* Fixed-seed chaos smoke check, wired into `dune runtest`.

   Runs a small battery of deterministic fault schedules — storage damage
   against saved snapshots, a lossy transport under a replica pull, and
   (with the `matrix` argument) the scripted survivability scenarios of
   Chaos_orchestrator — and enforces the robustness contract: every
   schedule must end in either a verified recovery or an explicit
   refusal.  Seeds are fixed so a failure reproduces byte-identically
   with `dune exec bin/chaos_check.exe`; LEDGERDB_CHAOS_SEED=<n> offsets
   the whole battery for exploratory runs (garbage values are ignored).

   Exit codes distinguish the two ways this can go wrong:
     0  every schedule honoured the contract
     1  a fault schedule surfaced a real robustness bug
     2  the harness itself failed (an unexpected exception — not a
        verdict about the ledger at all) *)

open Ledger_crypto
open Ledger_storage
open Ledger_core
open Ledger_timenotary
open Ledger_fault
open Ledger_bench_util

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.printf "FAIL %s\n" msg)
    fmt

let fresh_dir tag =
  let d = Filename.temp_file "chaos_check" tag in
  Sys.remove d;
  d

let build_ledger () =
  let clock = Clock.create () in
  let pool = Tsa.pool [ Tsa.create ~endorse_rtt_ms:1. ~clock "cc" ] in
  let tl = T_ledger.create ~clock ~tsa:pool () in
  let config =
    { Ledger.default_config with name = "chaos-check"; block_size = 4;
      fam_delta = 3; crypto = Crypto_profile.default_simulated }
  in
  let ledger = Ledger.create ~config ~t_ledger:tl ~tsa:pool ~clock () in
  let user, key =
    Ledger.new_member ledger ~name:"smoke" ~role:Roles.Regular_user
  in
  for i = 0 to 9 do
    Clock.advance_ms clock 50.;
    ignore
      (Ledger.append ledger ~member:user ~priv:key
         (Bytes.of_string (Printf.sprintf "smoke %d" i)))
  done;
  Clock.advance_ms clock 1100.;
  (match Ledger.anchor_via_t_ledger ledger with
  | Ok _ -> ()
  | Error _ -> failwith "anchor failed");
  Ledger.seal_block ledger;
  (clock, ledger, config, tl, pool)

let storage_schedule seed =
  let clock, ledger, config, tl, pool = build_ledger () in
  let size = Ledger.size ledger in
  let originals =
    List.init size (fun i ->
        Option.map Bytes.to_string (Ledger.payload ledger i))
  in
  let dir = fresh_dir "snap" in
  Ledger.save ledger ~dir;
  let bit_flips, truncations =
    if seed mod 2 = 0 then (1, 0) else (0, 1)
  in
  let plan =
    Fault_plan.plan ~seed ~bit_flips ~truncations ~only:[ "journals.ldb" ]
      ~dir ()
  in
  Fault_plan.apply plan ~dir;
  (match Ledger.load ~config ~t_ledger:tl ~tsa:pool ~clock ~dir () with
  | Ok _ -> fail "seed %d: strict load accepted damaged snapshot" seed
  | Error _ -> ());
  match
    Ledger.load_verbose ~config ~t_ledger:tl ~tsa:pool ~recover:true ~clock
      ~dir ()
  with
  | Error msg -> Printf.printf "ok   seed %d: refused (%s)\n" seed msg
  | Ok (restored, report) ->
      let faithful =
        report.Ledger.replayed <= size
        && List.for_all
             (fun jsn ->
               Option.map Bytes.to_string (Ledger.payload restored jsn)
               = List.nth originals jsn)
             (List.init report.Ledger.replayed Fun.id)
        && (report.Ledger.replayed = size
           || (report.Ledger.torn_tail
              && report.Ledger.checkpoint = `Partial))
      in
      if faithful then
        Printf.printf "ok   seed %d: recovered %d/%d journals (%s)\n" seed
          report.Ledger.replayed size
          (match report.Ledger.checkpoint with
          | `Verified -> "verified"
          | `Partial -> "partial")
      else fail "seed %d: recovery returned unfaithful data" seed

let transport_schedule seed =
  let clock, remote, config, tl, pool = build_ledger () in
  let rng = Det_rng.create ~seed in
  let ft =
    Faulty_transport.create ~rng
      ~config:(Faulty_transport.lossy ())
      ~clock (Service.handle remote)
  in
  match
    Replica.pull_verbose ~transport:(Faulty_transport.transport ft) ~config
      ~t_ledger:tl ~tsa:pool ~clock ~scratch_dir:(fresh_dir "pull") ()
  with
  | Error e ->
      fail "seed %d: flaky pull failed: %s" seed (Replica.error_to_string e)
  | Ok (replica, stats) ->
      if Hash.equal (Ledger.commitment replica) (Ledger.commitment remote)
      then
        Printf.printf "ok   seed %d: pull converged (%s; %d retries)\n" seed
          (Faulty_transport.stats_to_string (Faulty_transport.stats ft))
          stats.Replica.retries
      else fail "seed %d: flaky pull produced a divergent replica" seed

(* Survivability matrix: supervised fleet vs never-faulted reference. *)
let matrix_schedule seed =
  List.iter
    (fun r ->
      print_endline ("     " ^ Chaos_orchestrator.report_to_string r);
      if not (Chaos_orchestrator.passed r) then
        fail "scenario %s seed %d violated the survivability contract"
          r.Chaos_orchestrator.scenario r.Chaos_orchestrator.seed)
    (Chaos_orchestrator.run_matrix ~seed ())

(* Seed override, parsed garbage-proof like LEDGERDB_DOMAINS: anything
   but a non-negative integer silently keeps the default. *)
let env_seed () =
  match Sys.getenv_opt "LEDGERDB_CHAOS_SEED" with
  | None -> None
  | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some n when n >= 0 -> Some n
      | _ -> None)

let () =
  let offset = Option.value (env_seed ()) ~default:0 in
  let matrix_only =
    Array.length Sys.argv > 1 && Sys.argv.(1) = "matrix"
  in
  match
    if matrix_only then matrix_schedule (42 + offset)
    else begin
      List.iter storage_schedule (List.map (( + ) offset) [ 1; 2; 3; 4 ]);
      List.iter transport_schedule (List.map (( + ) offset) [ 11; 12 ]);
      matrix_schedule (42 + offset)
    end
  with
  | () ->
      if !failures > 0 then begin
        Printf.printf "chaos check: %d schedule(s) violated the contract\n"
          !failures;
        exit 1
      end
      else print_endline "chaos check: all schedules recovered or refused"
  | exception e ->
      (* not a chaos verdict: the harness broke *)
      Printf.printf "chaos check: harness error: %s\n" (Printexc.to_string e);
      exit 2
