(* ledgerdb — command-line front end for the LedgerDB reproduction.

   Subcommands:
     demo     build a small ledger, tamper (optionally), audit it
     attack   replay the Fig. 5 timestamp attacks
     systems  print the Table I system comparison
     snapshot build a ledger, save it to disk, reload, re-audit
     stats    instrumented run: metrics dump, trace, verification coverage
     health   survivability walkthrough: quarantine, degraded seal, repair,
              and (with --equivocate) gossip fork evidence
     query    verifiable range/prefix queries with completeness proofs and
              verifiable pagination (optionally scattered across shards)
     serve    serve the wire protocol on a real TCP socket (multi-domain)
     load     drive a serving endpoint with verifying load clients
   Run `ledgerdb_cli <cmd> --help` for options. *)

open Cmdliner
open Ledger_crypto
open Ledger_storage
open Ledger_core
open Ledger_timenotary
open Ledger_net

(* --- demo ------------------------------------------------------------------ *)

(* Sharded demo: route the same workload across N shards, seal an epoch
   super-root, verify every entry against it, audit every shard. *)
let run_demo_sharded journals batch shards real_crypto =
  let module SL = Ledger_shard.Sharded_ledger in
  let clock = Clock.create () in
  let pool = Tsa.pool [ Tsa.create ~clock "cli-tsa" ] in
  let config =
    {
      SL.base =
        { Ledger.default_config with name = "cli"; block_size = 16;
          fam_delta = 8;
          crypto =
            (if real_crypto then Crypto_profile.Real
             else Crypto_profile.default_simulated) };
      shards;
    }
  in
  let fleet = SL.create ~config ~clock () in
  let user, key = SL.new_member fleet ~name:"cli-user" ~role:Roles.Regular_user in
  let entry i =
    ( Bytes.of_string (Printf.sprintf "record %d" i),
      [ "item-" ^ string_of_int (i mod 5) ] )
  in
  let committed = ref [] in
  let i = ref 0 in
  while !i < journals do
    Clock.advance_ms clock 100.;
    if batch > 1 then begin
      let n = min batch (journals - !i) in
      let entries = List.init n (fun j -> entry (!i + j)) in
      committed :=
        List.rev_append
          (SL.append_batch fleet ~member:user ~priv:key ~seal:false entries)
          !committed;
      i := !i + n
    end
    else begin
      let payload, clues = entry !i in
      committed := SL.append fleet ~member:user ~priv:key ~clues payload :: !committed;
      incr i
    end
  done;
  match SL.seal_epoch fleet with
  | Error msg ->
      Printf.printf "epoch seal refused: %s\n" msg;
      1
  | Ok sealed ->
      let super = Ledger_shard.Super_root.commitment sealed in
      let token = SL.anchor_epoch fleet pool in
      Printf.printf
        "fleet built: %d journals over %d shards, epoch %d super-root %s \
         (TSA-anchored at %Ldus)\n"
        (SL.total_size fleet) shards sealed.Ledger_shard.Super_root.epoch
        (Hash.short_hex super) token.Tsa.timestamp;
      for s = 0 to shards - 1 do
        Printf.printf "  shard %d: %d journals, root %s\n" s
          (Ledger.size (SL.shard fleet s))
          (Hash.short_hex sealed.Ledger_shard.Super_root.shard_roots.(s))
      done;
      let all_verified =
        List.for_all
          (fun (shard, (r : Receipt.t)) ->
            let o =
              Ledger_shard.Verify_api.verify_sharded fleet
                ~level:Ledger_shard.Verify_api.Client ~shard
                (Ledger_shard.Verify_api.Existence
                   { jsn = r.Receipt.jsn; payload_digest = None })
            in
            o.Ledger_shard.Verify_api.outcome.Ledger_shard.Verify_api.ok)
          !committed
      in
      Printf.printf "cross-shard verification: %s (%d entries vs super-root)\n"
        (if all_verified then "ok" else "FAILED")
        (List.length !committed);
      let audits_ok =
        List.for_all
          (fun s -> (Audit.run (SL.shard fleet s)).Audit.ok)
          (List.init shards Fun.id)
      in
      Printf.printf "per-shard audits: %s\n" (if audits_ok then "ok" else "FAILED");
      if all_verified && audits_ok then 0 else 1

let run_demo journals batch shards tamper real_crypto domains =
  (match domains with
  | None -> ()
  | Some n ->
      Ledger_par.Domain_pool.set_default
        (Ledger_par.Domain_pool.create ~domains:n ()));
  if shards > 1 then run_demo_sharded journals batch shards real_crypto
  else
  let clock = Clock.create () in
  let pool = Tsa.pool [ Tsa.create ~clock "cli-tsa" ] in
  let tl = T_ledger.create ~clock ~tsa:pool () in
  let config =
    { Ledger.default_config with name = "cli"; block_size = 16; fam_delta = 8;
      crypto =
        (if real_crypto then Crypto_profile.Real
         else Crypto_profile.default_simulated) }
  in
  let ledger = Ledger.create ~config ~t_ledger:tl ~tsa:pool ~clock () in
  let user, key = Ledger.new_member ledger ~name:"cli-user" ~role:Roles.Regular_user in
  let receipts = ref [] in
  let batcher =
    if batch > 1 then
      Some
        (Batcher.create
           ~policy:{ Batcher.max_entries = batch;
                     (* the demo clock jumps 100ms per append, so leave
                        flushing to the size bound alone *)
                     max_delay_us = Int64.max_int; seal_on_flush = false }
           ledger ~member:user ~priv:key)
    else None
  in
  for i = 0 to journals - 1 do
    Clock.advance_ms clock 100.;
    let clues = [ "item-" ^ string_of_int (i mod 5) ] in
    let payload = Bytes.of_string (Printf.sprintf "record %d" i) in
    (match batcher with
    | None ->
        receipts := Ledger.append ledger ~member:user ~priv:key ~clues payload
                    :: !receipts
    | Some b -> receipts := List.rev_append (Batcher.submit b ~clues payload) !receipts);
    if (i + 1) mod 8 = 0 then begin
      Clock.advance_ms clock 1000.;
      match Ledger.anchor_via_t_ledger ledger with
      | Ok _ -> ()
      | Error _ -> prerr_endline "warning: anchor rejected"
    end
  done;
  (match batcher with
  | None -> ()
  | Some b ->
      receipts := List.rev_append (Batcher.flush b) !receipts;
      Printf.printf "batched commits: %d flushes of up to %d entries\n"
        (Batcher.flushes b) batch);
  Ledger.seal_block ledger;
  Printf.printf "ledger built: %d journals, %d blocks, commitment %s\n"
    (Ledger.size ledger) (Ledger.block_count ledger)
    (Hash.short_hex (Ledger.commitment ledger));
  (match tamper with
  | Some jsn when jsn >= 0 && jsn < Ledger.size ledger ->
      Printf.printf "tampering with journal %d (threat-B)...\n" jsn;
      Ledger.Unsafe.rewrite_payload ledger ~jsn (Bytes.of_string "TAMPERED")
  | Some jsn -> Printf.printf "tamper target %d out of range, skipping\n" jsn
  | None -> ());
  let report = Audit.run ~receipts:!receipts ledger in
  Format.printf "%a@." Audit.pp_report report;
  if report.Audit.ok then 0 else 1

let demo_cmd =
  let journals =
    Arg.(value & opt int 32 & info [ "n"; "journals" ] ~doc:"Journals to append.")
  in
  let batch =
    Arg.(value & opt int 1
         & info [ "batch" ] ~docv:"N"
             ~doc:"Commit appends through a batcher flushing every $(docv) \
                   entries (1 = unbatched); the resulting history is \
                   byte-identical, only the cost profile changes.")
  in
  let shards =
    Arg.(value & opt int 1
         & info [ "shards" ] ~docv:"N"
             ~doc:"Spread the workload over $(docv) ledger shards under one \
                   epoch super-root (1 = the plain unsharded demo); every \
                   entry is then verified cross-shard against the fleet \
                   digest.")
  in
  let tamper =
    Arg.(value & opt (some int) None
         & info [ "tamper" ] ~docv:"JSN" ~doc:"Rewrite journal $(docv) before auditing.")
  in
  let real =
    Arg.(value & flag
         & info [ "real-crypto" ] ~doc:"Use real ECDSA instead of the simulated profile.")
  in
  let domains =
    Arg.(value & opt (some int) None
         & info [ "domains" ] ~docv:"N"
             ~doc:"Size the process-wide domain pool to $(docv) (caller \
                   included) for parallel hashing, signature checking and \
                   shard fan-out.  Defaults to \\$LEDGERDB_DOMAINS or the \
                   host's recommended domain count; the committed history \
                   is byte-identical at every setting.")
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Build a ledger, optionally tamper, run a Dasein audit")
    Term.(const run_demo $ journals $ batch $ shards $ tamper $ real $ domains)

(* --- attack ----------------------------------------------------------------- *)

let run_attack delta_tau delays =
  let outcomes = Attack.sweep ~delta_tau_s:delta_tau ~delays_s:delays in
  List.iter
    (fun (o : Attack.outcome) ->
      Printf.printf "%-26s delay=%10.1fs window=%8.2fs bounded=%b\n"
        o.Attack.protocol o.Attack.attempted_delay_s o.Attack.window_s
        o.Attack.bounded)
    outcomes;
  0

let attack_cmd =
  let delta_tau =
    Arg.(value & opt float 1.0 & info [ "delta-tau" ] ~doc:"Notary interval (s).")
  in
  let delays =
    Arg.(value & opt (list float) [ 1.; 10.; 100. ]
         & info [ "delays" ] ~doc:"Adversary stall times (s).")
  in
  Cmd.v
    (Cmd.info "attack" ~doc:"Replay the Fig. 5 timestamp attacks")
    Term.(const run_attack $ delta_tau $ delays)

(* --- systems ----------------------------------------------------------------- *)

let run_systems () =
  List.iter
    (fun p ->
      print_endline (String.concat " | " (Ledger_baselines.System_profile.to_row p)))
    Ledger_baselines.System_profile.all;
  0

let systems_cmd =
  Cmd.v
    (Cmd.info "systems" ~doc:"Print the Table I ledger-system comparison")
    Term.(const run_systems $ const ())

(* --- snapshot ----------------------------------------------------------------- *)

let run_snapshot journals dir =
  let clock = Clock.create () in
  let pool = Tsa.pool [ Tsa.create ~clock "snap-tsa" ] in
  let tl = T_ledger.create ~clock ~tsa:pool () in
  let config =
    { Ledger.default_config with name = "snapshot"; block_size = 16;
      fam_delta = 8; crypto = Crypto_profile.default_simulated }
  in
  let ledger = Ledger.create ~config ~t_ledger:tl ~tsa:pool ~clock () in
  let user, key = Ledger.new_member ledger ~name:"snap-user" ~role:Roles.Regular_user in
  for i = 0 to journals - 1 do
    Clock.advance_ms clock 50.;
    ignore
      (Ledger.append ledger ~member:user ~priv:key
         ~clues:[ "item-" ^ string_of_int (i mod 4) ]
         (Bytes.of_string (Printf.sprintf "record %d" i)))
  done;
  Ledger.seal_block ledger;
  Ledger.save ledger ~dir;
  Printf.printf "saved %d journals to %s (commitment %s)
" (Ledger.size ledger)
    dir
    (Hash.short_hex (Ledger.commitment ledger));
  match Ledger.load ~config ~t_ledger:tl ~tsa:pool ~clock ~dir () with
  | Error e ->
      Printf.printf "reload FAILED: %s
" e;
      1
  | Ok restored ->
      Printf.printf "reloaded %d journals (commitment %s)
"
        (Ledger.size restored)
        (Hash.short_hex (Ledger.commitment restored));
      let report = Audit.run restored in
      Format.printf "%a@." Audit.pp_report report;
      if report.Audit.ok then 0 else 1

let snapshot_cmd =
  let journals =
    Arg.(value & opt int 64 & info [ "n"; "journals" ] ~doc:"Journals to append.")
  in
  let dir =
    Arg.(value & opt string "/tmp/ledgerdb-snapshot"
         & info [ "dir" ] ~doc:"Snapshot directory.")
  in
  Cmd.v
    (Cmd.info "snapshot" ~doc:"Save a ledger to disk, reload it, re-audit")
    Term.(const run_snapshot $ journals $ dir)

(* --- stats ----------------------------------------------------------------- *)

(* Sharded stats: the audit log tags each verdict with a
   ["shard<i>:server"/"shard<i>:client"] verifier, so verification
   coverage can be broken down per shard with [coverage_where]. *)
let run_stats_sharded journals shards trace_out prometheus =
  let module Obs = Ledger_obs.Obs in
  let module Trace = Ledger_obs.Trace in
  let module Audit_log = Ledger_obs.Audit_log in
  let module SL = Ledger_shard.Sharded_ledger in
  let module SV = Ledger_shard.Verify_api in
  let clock = Clock.create () in
  Obs.reset ();
  Obs.enable ~time:(fun () -> Clock.now clock) ();
  let config =
    {
      SL.base =
        { Ledger.default_config with name = "stats"; block_size = 16;
          fam_delta = 8; crypto = Crypto_profile.default_simulated };
      shards;
    }
  in
  let fleet = SL.create ~config ~clock () in
  let user, key = SL.new_member fleet ~name:"stats-user" ~role:Roles.Regular_user in
  for i = 0 to journals - 1 do
    Clock.advance_ms clock 100.;
    ignore
      (SL.append fleet ~member:user ~priv:key
         ~clues:[ "item-" ^ string_of_int (i mod 5) ]
         (Bytes.of_string (Printf.sprintf "record %d" i)))
  done;
  let sealed = SL.seal_epoch fleet in
  (match sealed with
  | Ok s ->
      Printf.printf "epoch %d sealed over %d shards, super-root %s\n"
        s.Ledger_shard.Super_root.epoch shards
        (Hash.short_hex (Ledger_shard.Super_root.commitment s))
  | Error msg -> Printf.printf "epoch seal refused: %s\n" msg);
  (* touch every journal on every shard at both trust levels so the
     per-shard audit-log slices each cover their whole shard *)
  for s = 0 to shards - 1 do
    for jsn = 0 to Ledger.size (SL.shard fleet s) - 1 do
      let target = SV.Existence { jsn; payload_digest = None } in
      ignore (SV.verify_sharded fleet ~level:SV.Server ~shard:s target);
      ignore (SV.verify_sharded fleet ~level:SV.Client ~shard:s target)
    done
  done;
  if prometheus then print_string (Obs.to_prometheus_text ())
  else Obs.dump Format.std_formatter;
  let all_covered = ref true in
  Printf.printf "\nper-shard verification coverage:\n";
  for s = 0 to shards - 1 do
    let size = Ledger.size (SL.shard fleet s) in
    let c =
      Audit_log.coverage_where
        ~verifier_prefix:(Printf.sprintf "shard%d:" s)
        ~ledger_size:size
    in
    if c.Audit_log.ratio < 1.0 then all_covered := false;
    Printf.printf "  shard %d: %d/%d journals (%.1f%%)\n" s
      c.Audit_log.verified_jsns c.Audit_log.total_jsns
      (100. *. c.Audit_log.ratio)
  done;
  (match trace_out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      let lines = Trace.to_json_lines () in
      output_string oc lines;
      if String.length lines > 0 then output_char oc '\n';
      close_out oc;
      Printf.printf "trace written to %s (%d spans)\n" path (Trace.span_count ()));
  Obs.disable ();
  if Result.is_ok sealed && !all_covered then 0 else 1

let run_stats journals shards trace_out prometheus =
  if shards > 1 then run_stats_sharded journals shards trace_out prometheus
  else
  let module Obs = Ledger_obs.Obs in
  let module Trace = Ledger_obs.Trace in
  let module Audit_log = Ledger_obs.Audit_log in
  let clock = Clock.create () in
  Obs.reset ();
  Obs.enable ~time:(fun () -> Clock.now clock) ();
  let pool = Tsa.pool [ Tsa.create ~clock "stats-tsa" ] in
  let tl = T_ledger.create ~clock ~tsa:pool () in
  let config =
    { Ledger.default_config with name = "stats"; block_size = 16; fam_delta = 8;
      crypto = Crypto_profile.default_simulated }
  in
  let ledger = Ledger.create ~config ~t_ledger:tl ~tsa:pool ~clock () in
  let user, key =
    Ledger.new_member ledger ~name:"stats-user" ~role:Roles.Regular_user
  in
  let receipts = ref [] in
  for i = 0 to journals - 1 do
    Clock.advance_ms clock 100.;
    let r =
      Ledger.append ledger ~member:user ~priv:key
        ~clues:[ "item-" ^ string_of_int (i mod 5) ]
        (Bytes.of_string (Printf.sprintf "record %d" i))
    in
    receipts := r :: !receipts;
    if (i + 1) mod 8 = 0 then begin
      Clock.advance_ms clock 1000.;
      match Ledger.anchor_via_t_ledger ledger with
      | Ok _ -> ()
      | Error _ -> prerr_endline "warning: anchor rejected"
    end
  done;
  Ledger.seal_block ledger;
  (* touch every journal with a server-side proof check, then check every
     receipt: the audit log ends up covering the whole ledger *)
  for jsn = 0 to Ledger.size ledger - 1 do
    let proof = Ledger.get_proof ledger jsn in
    if not (Ledger.verify_existence ledger ~jsn ~payload_digest:None proof)
    then Printf.eprintf "existence check FAILED at jsn %d\n" jsn
  done;
  List.iter (fun r -> ignore (Ledger.verify_receipt ledger r)) !receipts;
  let report = Audit.run ~receipts:!receipts ledger in
  let coverage = Audit_log.coverage ~ledger_size:(Ledger.size ledger) in
  if prometheus then print_string (Obs.to_prometheus_text ())
  else Obs.dump Format.std_formatter;
  Printf.printf "\naudit: %s\n" (if report.Audit.ok then "ok" else "FAILED");
  Printf.printf "verification coverage: %d/%d journals (%.1f%%)\n"
    coverage.Audit_log.verified_jsns coverage.Audit_log.total_jsns
    (100. *. coverage.Audit_log.ratio);
  (match trace_out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      let lines = Trace.to_json_lines () in
      output_string oc lines;
      if String.length lines > 0 then output_char oc '\n';
      close_out oc;
      Printf.printf "trace written to %s (%d spans)\n" path (Trace.span_count ()));
  Obs.disable ();
  if report.Audit.ok && coverage.Audit_log.ratio = 1.0 then 0 else 1

let stats_cmd =
  let journals =
    Arg.(value & opt int 32 & info [ "n"; "journals" ] ~doc:"Journals to append.")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE" ~doc:"Write the span tree as JSON lines to $(docv).")
  in
  let shards =
    Arg.(value & opt int 1
         & info [ "shards" ] ~docv:"N"
             ~doc:"Instrument a sharded fleet of $(docv) shards and break \
                   verification coverage down per shard (1 = unsharded).")
  in
  let prometheus =
    Arg.(value & flag
         & info [ "prometheus" ] ~doc:"Emit metrics in Prometheus text exposition format.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Run an instrumented workload; dump metrics, trace and verification coverage")
    Term.(const run_stats $ journals $ shards $ trace_out $ prometheus)

(* --- health ----------------------------------------------------------------- *)

(* Survivability walkthrough.  Kills one shard's store under a
   supervised fleet and narrates the failure model end to end: the
   supervisor quarantines the shard, appends routed to it degrade into
   typed rejections, the epoch still seals (Degraded_skip, the absent
   shard's last root carried and verifiably flagged), proofs on live
   shards keep verifying, and self-repair resyncs the shard from a
   healthy replica until the fleet is byte-identical to a never-faulted
   reference.  With --equivocate the service then signs a second root
   for a sealed epoch; the gossip mesh folds the two announcements into
   self-verifying fork evidence and condemns the client. *)
let run_health shards journals equivocate =
  let module SL = Ledger_shard.Sharded_ledger in
  let module Sup = Ledger_shard.Shard_supervisor in
  let module Gossip = Ledger_shard.Gossip in
  let module SR = Ledger_shard.Super_root in
  if shards < 2 then begin
    prerr_endline "health: need at least 2 shards (a 1-shard fleet cannot seal around an outage)";
    2
  end
  else begin
    let ok = ref true in
    let check cond fmt =
      Printf.ksprintf
        (fun msg ->
          if not cond then begin
            ok := false;
            Printf.printf "FAILED: %s\n" msg
          end)
        fmt
    in
    let config =
      {
        SL.base =
          { Ledger.default_config with name = "health-fleet"; block_size = 8;
            fam_delta = 5; crypto = Crypto_profile.default_simulated };
        shards;
      }
    in
    (* subject + never-faulted reference share the base name, so every
       name-derived key matches: the reference is both the repair source
       and the oracle the repaired fleet must be byte-identical to *)
    let make_fleet () =
      let clock = Clock.create () in
      let fleet = SL.create ~config ~clock () in
      let member, priv =
        SL.new_member fleet ~name:"health-user" ~role:Roles.Regular_user
      in
      (fleet, member, priv)
    in
    let subject, member, priv = make_fleet () in
    let reference, ref_member, ref_priv = make_fleet () in
    let clocks fleet =
      SL.fleet_clock fleet :: List.init shards (SL.shard_clock fleet)
    in
    let barrier () =
      let all = clocks subject @ clocks reference in
      let horizon =
        List.fold_left (fun acc c -> max acc (Clock.now c)) 0L all
      in
      List.iter
        (fun c ->
          let d = Int64.sub horizon (Clock.now c) in
          if d > 0L then Clock.advance c d)
        all
    in
    let scratch = Filename.temp_file "ledgerdb_health" "" in
    Sys.remove scratch;
    Sys.mkdir scratch 0o755;
    let supervisor =
      Sup.create
        ~source:(Ledger_shard.Sharded_service.handle reference)
        ~fleet:subject ~scratch_dir:scratch ()
    in
    let next = ref 0 in
    let append_wave n =
      Clock.advance_ms (SL.fleet_clock subject) 100.;
      barrier ();
      let accepted = ref 0 and rejected = ref 0 in
      let first_rejection = ref None in
      for _ = 1 to n do
        let i = !next in
        incr next;
        let payload = Bytes.of_string (Printf.sprintf "record %d" i) in
        let clues = [ "item-" ^ string_of_int (i mod 7) ] in
        ignore
          (SL.append reference ~member:ref_member ~priv:ref_priv ~clues payload);
        match Sup.append supervisor ~member ~priv ~clues payload with
        | Ok _ -> incr accepted
        | Error u ->
            incr rejected;
            if !first_rejection = None then first_rejection := Some u
      done;
      (!accepted, !rejected, !first_rejection)
    in
    let print_statuses () =
      for i = 0 to shards - 1 do
        Printf.printf "  shard %d: %-28s %d journals\n" i
          (Sup.status_to_string (Sup.status supervisor i))
          (Ledger.size (SL.shard subject i))
      done
    in
    (* 1: healthy baseline *)
    let accepted, rejected, _ = append_wave journals in
    barrier ();
    (match Sup.seal_epoch supervisor with
    | Error msg -> check false "healthy seal refused: %s" msg
    | Ok sealed ->
        check (SR.full sealed) "healthy epoch sealed degraded";
        Printf.printf "[1] healthy fleet: %d appends accepted (%d rejected), \
                       epoch %d sealed full, super-root %s\n"
          accepted rejected sealed.SR.epoch
          (Hash.short_hex (SR.commitment sealed)));
    (match SL.seal_epoch reference with
    | Ok _ -> ()
    | Error msg -> check false "reference seal refused: %s" msg);
    print_statuses ();
    (* a short wave after the checkpoint, so the dead shard's committed
       state is ahead of its last checkpoint: salvage must refuse (it
       would lose those journals) and repair has to resync from the
       replica — which also backfills what the outage rejects below *)
    let _ = append_wave (journals / 2) in
    (* 2: kill a shard's store *)
    let victim = 1 in
    Stream_store.Unsafe.kill (Ledger.backing_store (SL.shard subject victim));
    Sup.quarantine supervisor victim;
    Printf.printf "\n[2] shard %d store killed -> %s\n" victim
      (Sup.status_to_string (Sup.status supervisor victim));
    (* 3: degraded mode — typed rejections, no hang *)
    let accepted, rejected, first_rejection = append_wave journals in
    Printf.printf "\n[3] degraded appends: %d accepted, %d rejected (typed)\n"
      accepted rejected;
    (match first_rejection with
    | Some u -> Printf.printf "    e.g. %s\n" (Sup.unavailable_to_string u)
    | None -> check false "no append was routed to the dead shard");
    (* 4: the epoch still seals, the outage verifiably carried *)
    barrier ();
    (match Sup.seal_epoch supervisor with
    | Error msg -> check false "degraded seal refused: %s" msg
    | Ok sealed ->
        check (not (SR.full sealed)) "outage not reflected in the epoch";
        Printf.printf "\n[4] epoch %d sealed around the outage:\n" sealed.SR.epoch;
        Array.iteri
          (fun i presence ->
            Printf.printf "    shard %d: %s root %s\n" i
              (match presence with
              | SR.Sealed -> "sealed "
              | SR.Carried -> "carried")
              (Hash.short_hex sealed.SR.shard_roots.(i)))
          sealed.SR.presence;
        let super = SR.commitment sealed in
        let live = if victim = 0 then 1 else 0 in
        let size = sealed.SR.shard_sizes.(live) in
        (match SL.prove subject ~shard:live ~jsn:(size - 1) with
        | Error msg -> check false "prove on live shard refused: %s" msg
        | Ok proof ->
            check
              (SL.verify_proof subject ~super proof)
              "valid proof refused on live shard";
            Printf.printf
              "    proofs on live shards still verify (shard %d jsn %d ok)\n"
              live (size - 1)));
    (match SL.seal_epoch reference with
    | Ok _ -> ()
    | Error msg -> check false "reference seal refused: %s" msg);
    (* 5: self-repair *)
    let t0 = Clock.now (SL.fleet_clock subject) in
    let ticks = ref 0 in
    while Sup.status supervisor victim <> Sup.Healthy && !ticks < 10_000 do
      incr ticks;
      Clock.advance (SL.fleet_clock subject) 10_000L;
      barrier ();
      Sup.tick supervisor
    done;
    check
      (Sup.status supervisor victim = Sup.Healthy)
      "repair did not land within the tick budget";
    Printf.printf "\n[5] self-repair: shard %d resynced from the replica in \
                   %.0f ms -> %s\n"
      victim
      (Int64.to_float (Int64.sub (Clock.now (SL.fleet_clock subject)) t0)
      /. 1000.)
      (Sup.status_to_string (Sup.status supervisor victim));
    print_statuses ();
    (* 6: convergence with the never-faulted reference *)
    for i = 0 to shards - 1 do
      let s = SL.shard subject i and r = SL.shard reference i in
      check
        (Ledger.size s = Ledger.size r
        && Hash.equal (Ledger.commitment s) (Ledger.commitment r))
        "shard %d diverges from the never-faulted reference" i
    done;
    barrier ();
    (match (Sup.seal_epoch supervisor, SL.seal_epoch reference) with
    | Ok s, Ok r ->
        check (SR.full s) "post-repair epoch still degraded";
        check
          (Hash.equal (SR.commitment s) (SR.commitment r))
          "post-repair super-root diverges from the reference";
        if SR.full s && Hash.equal (SR.commitment s) (SR.commitment r) then
          Printf.printf "\n[6] converged: epoch %d full again, super-root %s \
                         byte-identical to a never-faulted run\n"
            s.SR.epoch
            (Hash.short_hex (SR.commitment s))
    | Error msg, _ | _, Error msg ->
        check false "post-repair seal refused: %s" msg);
    (* 7: non-equivocation gossip *)
    let service_pub = SL.service_public_key subject in
    let peer_a =
      Gossip.create ~name:"auditor-a" ~service_pub ~ledger:"health-fleet" ()
    in
    let peer_b =
      Gossip.create ~name:"auditor-b" ~service_pub ~ledger:"health-fleet" ()
    in
    let client =
      Ledger_client.create ~name:"health-client"
        ~lsp_pub:(Ledger.lsp_public_key (SL.shard subject 0))
    in
    (match SL.announce subject with
    | None -> check false "sealed fleet has no announcement"
    | Some ann ->
        (match Gossip.observe peer_a ann with
        | Gossip.Fresh | Gossip.Confirmed -> ()
        | _ -> check false "honest announcement not accepted");
        ignore (Gossip.observe peer_b ann);
        Printf.printf "\n[7] gossip: both auditors hold the service-signed \
                       announcement for epoch %d; client %s\n"
          ann.Gossip.epoch
          (Ledger_client.status_to_string (Ledger_client.status client)));
    if equivocate then begin
      match (SL.announce_epoch subject 0, SL.Unsafe.equivocate subject ~epoch:0) with
      | None, _ | _, None -> check false "cannot equivocate: epoch 0 not sealed"
      | Some honest, Some forged -> (
          (* one auditor saw the honest epoch-0 announcement, the other
             the forged one — comparing notes must surface the fork *)
          ignore (Gossip.observe peer_a honest);
          ignore (Gossip.observe peer_b forged);
          match Gossip.exchange peer_a peer_b with
          | None -> check false "equivocation went undetected"
          | Some ev ->
              check
                (Gossip.verify_fork ~service_pub ev)
                "fork evidence does not self-verify";
              Gossip.condemn peer_a client;
              check
                (Ledger_client.status client = Ledger_client.Compromised)
                "client not condemned by fork evidence";
              Printf.printf
                "\n[8] the service signed a second root for epoch 0:\n\
                \    %s\n\
                \    evidence verifies under the service key alone; client \
                 is now %s\n"
                (Gossip.fork_to_string ev)
                (Ledger_client.status_to_string (Ledger_client.status client)))
    end;
    Printf.printf "\nhealth walkthrough: %s\n"
      (if !ok then "ok" else "FAILED");
    if !ok then 0 else 1
  end

let health_cmd =
  let shards =
    Arg.(value & opt int 3
         & info [ "shards" ] ~docv:"N" ~doc:"Fleet width (at least 2).")
  in
  let journals =
    Arg.(value & opt int 24
         & info [ "n"; "journals" ] ~doc:"Appends per phase.")
  in
  let equivocate =
    Arg.(value & flag
         & info [ "equivocate" ]
             ~doc:"Make the service sign a second root for a sealed epoch \
                   and show the gossip mesh folding it into fork evidence.")
  in
  Cmd.v
    (Cmd.info "health"
       ~doc:"Survivability walkthrough: quarantine, degraded sealing, \
             self-repair, fork evidence")
    Term.(const run_health $ shards $ journals $ equivocate)

(* --- query ------------------------------------------------------------------ *)

(* Build a workload whose clues exercise nested prefixes, run a
   verifiable range/prefix query through the wire envelope, and replay
   every completeness proof client-side.  The exit status is the
   verification verdict: a page (or shard answer) that fails to verify
   exits non-zero. *)
module RQ = Ledger_query.Range_query

let query_clue i =
  let names = [| "alice"; "bob"; "carol"; "dave" |] in
  match i mod 3 with
  | 0 -> "acct:" ^ names.(i mod Array.length names)
  | 1 -> "bank:" ^ string_of_int (i mod 4)
  | _ -> "audit:epoch-" ^ string_of_int (i / 16)

let print_rows rows =
  List.iter
    (fun (r : RQ.result_row) ->
      Printf.printf "  %-16s total=%-3d jsns=[%s]\n" r.RQ.r_clue r.RQ.r_total
        (String.concat ","
           (List.map (fun (jsn, _) -> string_of_int jsn) r.RQ.r_entries)))
    rows

let spec_of_options prefix lo hi =
  match (prefix, lo) with
  | Some p, _ -> RQ.Prefix p
  | None, Some lo -> RQ.Between { lo; hi }
  | None, None -> RQ.Prefix ""

let window_of_options t1 t2 =
  match (t1, t2) with
  | None, None -> None
  | _ -> Some { RQ.t1 = Option.value t1 ~default:0;
                t2 = Option.value t2 ~default:max_int }

let run_query_single journals spec window page_size real_crypto =
  let clock = Clock.create () in
  let config =
    { Ledger.default_config with name = "cli-query"; block_size = 16;
      fam_delta = 8;
      crypto =
        (if real_crypto then Crypto_profile.Real
         else Crypto_profile.default_simulated) }
  in
  let ledger = Ledger.create ~config ~clock () in
  let user, key =
    Ledger.new_member ledger ~name:"cli-user" ~role:Roles.Regular_user
  in
  for i = 0 to journals - 1 do
    Clock.advance_ms clock 100.;
    ignore
      (Ledger.append ledger ~member:user ~priv:key ~clues:[ query_clue i ]
         (Bytes.of_string (Printf.sprintf "record %d" i)))
  done;
  Ledger.seal_block ledger;
  Printf.printf "ledger built: %d journals, query root %s\n"
    (Ledger.size ledger)
    (Hash.short_hex (Ledger.query_root ledger));
  (* every page crosses the byte-level wire, cursors chain page to page *)
  let rec fetch after acc guard =
    if guard > 10_000 then Error "pagination did not terminate"
    else
      let reqb = Service.Client.make_query_page ~spec ?window ?after ~page_size () in
      match Service.Client.parse (Service.handle ledger reqb) with
      | Some (Service.Query_page_r { page; query_root; _ }) -> (
          match page.RQ.cursor with
          | Some c -> fetch (Some c) ((page, query_root) :: acc) (guard + 1)
          | None -> Ok (List.rev ((page, query_root) :: acc)))
      | Some (Service.Error_r e) -> Error e
      | Some _ -> Error "unexpected response kind"
      | None -> Error "malformed response"
  in
  match fetch None [] 0 with
  | Error e ->
      Printf.printf "query FAILED: %s\n" e;
      1
  | Ok pages ->
      let root = snd (List.hd pages) in
      if not (List.for_all (fun (_, r) -> Hash.equal r root) pages) then begin
        Printf.printf "query FAILED: index root moved mid-scan (re-run)\n";
        1
      end
      else begin
        let bytes =
          List.fold_left (fun a (pg, _) -> a + RQ.page_bytes pg) 0 pages
        in
        match RQ.verify_pages ~root ~spec ?window ~page_size (List.map fst pages) with
        | Error e ->
            Printf.printf "verification FAILED: %s\n" e;
            1
        | Ok rows ->
            Printf.printf
              "verified %d rows over %d pages (%d proof+result bytes):\n"
              (List.length rows) (List.length pages) bytes;
            print_rows rows;
            (* same question through the unified Verify API, cached *)
            let cache = Verify_cache.create () in
            Verify_cache.attach cache ledger;
            let target = Verify_api.Query_complete { spec; window; page_size } in
            let o1 = Verify_api.verify ~cache ledger ~level:Verify_api.Client target in
            let o2 = Verify_api.verify ~cache ledger ~level:Verify_api.Client target in
            Format.printf "verify api: %a@." Verify_api.pp_outcome o2;
            if o1.Verify_api.ok && o2.Verify_api.ok then 0 else 1
      end

let run_query_sharded journals spec window page_size shards real_crypto =
  let module SL = Ledger_shard.Sharded_ledger in
  let module SS = Ledger_shard.Sharded_service in
  let module SQ = Ledger_shard.Sharded_query in
  let clock = Clock.create () in
  let config =
    {
      SL.base =
        { Ledger.default_config with name = "cli-query"; block_size = 16;
          fam_delta = 8;
          crypto =
            (if real_crypto then Crypto_profile.Real
             else Crypto_profile.default_simulated) };
      shards;
    }
  in
  let fleet = SL.create ~config ~clock () in
  let user, key = SL.new_member fleet ~name:"cli-user" ~role:Roles.Regular_user in
  for i = 0 to journals - 1 do
    Clock.advance_ms clock 100.;
    ignore
      (SL.append fleet ~member:user ~priv:key ~clues:[ query_clue i ]
         (Bytes.of_string (Printf.sprintf "record %d" i)))
  done;
  match SL.seal_epoch fleet with
  | Error msg ->
      Printf.printf "epoch seal refused: %s\n" msg;
      1
  | Ok sealed -> (
      Printf.printf "fleet built: %d journals over %d shards, super-root %s\n"
        (SL.total_size fleet) shards
        (Hash.short_hex (Ledger_shard.Super_root.commitment sealed));
      let reqb = SS.Client.make_query_scatter ~spec ?window ~page_size () in
      match SS.Client.parse (SS.handle fleet reqb) with
      | Some (SS.Query_scatter_r sc) -> (
          match SQ.merge ~sealed ~shards ~spec ?window ~page_size sc with
          | Error e ->
              Printf.printf "verification FAILED: %s\n" e;
              1
          | Ok rows ->
              Printf.printf
                "verified %d rows from %d shards (%d scatter bytes, pinned \
                 to epoch %d):\n"
                (List.length rows) shards
                (Bytes.length (SQ.encode_scatter sc))
                sealed.Ledger_shard.Super_root.epoch;
              print_rows rows;
              0)
      | Some (SS.Error_r e) ->
          Printf.printf "query FAILED: %s\n" e;
          1
      | Some _ | None ->
          Printf.printf "query FAILED: unexpected response\n";
          1)

let run_query journals prefix lo hi t1 t2 page_size shards real_crypto =
  if page_size <= 0 then begin
    prerr_endline "ledgerdb query: --page-size must be positive";
    2
  end
  else
    let spec = spec_of_options prefix lo hi in
    let window = window_of_options t1 t2 in
    if shards > 1 then
      run_query_sharded journals spec window page_size shards real_crypto
    else run_query_single journals spec window page_size real_crypto

let query_cmd =
  let journals =
    Arg.(value & opt int 48 & info [ "n"; "journals" ] ~doc:"Journals to append.")
  in
  let prefix =
    Arg.(value & opt (some string) None
         & info [ "prefix" ] ~docv:"P"
             ~doc:"Scan every clue starting with $(docv) (e.g. acct:).")
  in
  let lo =
    Arg.(value & opt (some string) None
         & info [ "range" ] ~docv:"LO"
             ~doc:"Scan clues from $(docv) (inclusive); pair with --range-hi.")
  in
  let hi =
    Arg.(value & opt (some string) None
         & info [ "range-hi" ] ~docv:"HI"
             ~doc:"Upper bound (exclusive) for --range; absent = unbounded.")
  in
  let t1 =
    Arg.(value & opt (some int) None
         & info [ "t1" ] ~docv:"JSN" ~doc:"Window: keep entries with jsn >= $(docv).")
  in
  let t2 =
    Arg.(value & opt (some int) None
         & info [ "t2" ] ~docv:"JSN" ~doc:"Window: keep entries with jsn <= $(docv).")
  in
  let page_size =
    Arg.(value & opt int 4
         & info [ "page-size" ] ~docv:"N"
             ~doc:"Clues per page; pages chain by cursor and each carries \
                   its own completeness proof.")
  in
  let shards =
    Arg.(value & opt int 1
         & info [ "shards" ] ~docv:"N"
             ~doc:"Scatter the query over $(docv) shards and merge the \
                   verified answers under the epoch super-root.")
  in
  let real =
    Arg.(value & flag
         & info [ "real-crypto" ] ~doc:"Use real ECDSA instead of the simulated profile.")
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Verifiable range/prefix queries: completeness proofs, \
             verifiable pagination, windowed filtering")
    Term.(const run_query $ journals $ prefix $ lo $ hi $ t1 $ t2 $ page_size
          $ shards $ real)

(* --- serve ----------------------------------------------------------------- *)

(* Serve the wire protocol on a real socket.  Members c0..c<N-1> are
   pre-registered with name-derived keys, so a load generator (or any
   client knowing the ledger name) can reconstruct its credentials
   without any out-of-band exchange. *)
let run_serve host port workers name members seed_entries shards real_crypto
    duration =
  let module Obs = Ledger_obs.Obs in
  let clock = Clock.create () in
  Obs.reset ();
  Obs.enable ();
  let crypto =
    if real_crypto then Crypto_profile.Real
    else Crypto_profile.default_simulated
  in
  let backend, read, describe =
    if shards > 1 then begin
      let module SL = Ledger_shard.Sharded_ledger in
      let config =
        { SL.base = { Ledger.default_config with name; crypto }; shards }
      in
      let fleet = SL.create ~config ~clock () in
      for i = 0 to members - 1 do
        ignore
          (SL.new_member fleet
             ~name:(Printf.sprintf "c%d" i)
             ~role:Roles.Regular_user)
      done;
      let m, k = SL.new_member fleet ~name:"seeder" ~role:Roles.Regular_user in
      for i = 0 to seed_entries - 1 do
        ignore
          (SL.append fleet ~member:m ~priv:k
             ~clues:[ "seed-" ^ string_of_int (i mod 4) ]
             (Bytes.of_string (Printf.sprintf "seed %d" i)))
      done;
      if seed_entries > 0 then
        (match SL.seal_epoch fleet with Ok _ -> () | Error _ -> ());
      ( Ledger_shard.Sharded_service.handle fleet,
        Ledger_shard.Sharded_service.handle_read fleet,
        fun () ->
          Printf.sprintf "sharded fleet '%s' (%d shards, %d journals)" name
            shards (SL.total_size fleet) )
    end
    else begin
      let config = { Ledger.default_config with name; crypto } in
      let ledger = Ledger.create ~config ~clock () in
      for i = 0 to members - 1 do
        ignore
          (Ledger.new_member ledger
             ~name:(Printf.sprintf "c%d" i)
             ~role:Roles.Regular_user)
      done;
      let m, k =
        Ledger.new_member ledger ~name:"seeder" ~role:Roles.Regular_user
      in
      for i = 0 to seed_entries - 1 do
        Clock.advance_ms clock 5.;
        ignore
          (Ledger.append ledger ~member:m ~priv:k
             ~clues:[ "seed-" ^ string_of_int (i mod 4) ]
             (Bytes.of_string (Printf.sprintf "seed %d" i)))
      done;
      ( Service.handle ledger,
        Service.handle_read ledger,
        fun () ->
          Printf.sprintf "ledger '%s' (%d journals)" name (Ledger.size ledger)
      )
    end
  in
  let server =
    Net_server.create
      ~config:{ Net_server.default_config with host; port; workers }
      ~read backend
  in
  Net_server.install_signal_handlers server;
  Printf.printf
    "serving %s on %s:%d — %d worker domains, %d derivable members\n\
     (profile: %s; stop with SIGINT/SIGTERM%s)\n\
     %!"
    (describe ()) host (Net_server.port server) workers members
    (if real_crypto then "real ECDSA" else "simulated")
    (match duration with
    | Some d -> Printf.sprintf ", or automatically after %.0fs" d
    | None -> "");
  (match duration with
  | Some d ->
      Unix.sleepf d;
      Net_server.stop server
  | None ->
      while Net_server.running server do
        Unix.sleepf 0.25
      done);
  (* the signal handler may have initiated the stop; finish the drain *)
  Net_server.stop server;
  let s = Net_server.stats server in
  Printf.printf
    "drained: served %s, %d connections accepted (%d refused), %d framing \
     errors\n"
    (describe ()) s.Net_server.accepted s.Net_server.refused
    s.Net_server.framing_errors;
  Obs.disable ();
  0

let serve_cmd =
  let host =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~doc:"Bind address.")
  in
  let port =
    Arg.(value & opt int 7878
         & info [ "port" ] ~doc:"TCP port (0 picks an ephemeral one).")
  in
  let workers =
    Arg.(value & opt int 4
         & info [ "workers" ] ~docv:"N" ~doc:"Accept/serve domains.")
  in
  let lname =
    Arg.(value & opt string "served"
         & info [ "name" ]
             ~doc:"Ledger name; member and LSP keys derive from it, so a \
                   load generator needs nothing else to reconstruct \
                   credentials.")
  in
  let members =
    Arg.(value & opt int 64
         & info [ "members" ] ~docv:"N"
             ~doc:"Pre-registered members c0..c$(docv)-1 with name-derived \
                   keys.")
  in
  let seed_entries =
    Arg.(value & opt int 8
         & info [ "seed" ] ~docv:"N" ~doc:"Journals appended before serving.")
  in
  let shards =
    Arg.(value & opt int 1
         & info [ "shards" ] ~docv:"N"
             ~doc:"Serve a sharded fleet of $(docv) shards (speaks the \
                   Sharded_service protocol; 1 = plain Service).")
  in
  let real =
    Arg.(value & flag
         & info [ "real-crypto" ]
             ~doc:"Use real ECDSA instead of the simulated profile.  Load \
                   clients must match.")
  in
  let duration =
    Arg.(value & opt (some float) None
         & info [ "duration" ] ~docv:"SECONDS"
             ~doc:"Stop automatically after $(docv) seconds (for scripted \
                   runs); default: serve until SIGINT/SIGTERM.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve the ledger wire protocol on a real TCP socket")
    Term.(const run_serve $ host $ port $ workers $ lname $ members
          $ seed_entries $ shards $ real $ duration)

(* --- load ------------------------------------------------------------------ *)

let run_load host port clients connections ops rate payload clues zipf
    append_w verify_w lineage_w read_ratio pulls seed real_crypto =
  let cfg =
    {
      Load_gen.default_config with
      host;
      port;
      logical_clients = clients;
      connections;
      total_ops = ops;
      rate_per_s = rate;
      payload_size = payload;
      clue_count = clues;
      zipf_s = zipf;
      mix = { Load_gen.append_w; verify_w; lineage_w };
      read_ratio;
      pulls;
      seed;
      crypto =
        (if real_crypto then Crypto_profile.Real
         else Crypto_profile.default_simulated);
    }
  in
  match Load_gen.run cfg with
  | exception Failure msg ->
      Printf.eprintf "load: %s\n" msg;
      2
  | r ->
      Format.printf "%a@." Load_gen.pp_result r;
      if r.Load_gen.verify_failures = 0 && r.Load_gen.pulls_failed = 0 then 0
      else 1

let load_cmd =
  let host =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~doc:"Server address.")
  in
  let port =
    Arg.(value & opt int 7878 & info [ "port" ] ~doc:"Server TCP port.")
  in
  let clients =
    Arg.(value & opt int 10_000
         & info [ "clients" ] ~docv:"N"
             ~doc:"Logical verifying clients multiplexed over the \
                   connection pool.")
  in
  let connections =
    Arg.(value & opt int 8
         & info [ "connections" ] ~docv:"N"
             ~doc:"Socket connections = driver threads.")
  in
  let ops =
    Arg.(value & opt int 4_000
         & info [ "ops" ] ~docv:"N" ~doc:"Total request-level operations.")
  in
  let rate =
    Arg.(value & opt (some float) None
         & info [ "rate" ] ~docv:"OPS_PER_S"
             ~doc:"Open-loop arrival rate; omit for closed-loop.")
  in
  let payload =
    Arg.(value & opt int 64
         & info [ "payload" ] ~docv:"BYTES" ~doc:"Append payload size.")
  in
  let clues =
    Arg.(value & opt int 128
         & info [ "clues" ] ~docv:"N" ~doc:"Shared-clue population.")
  in
  let zipf =
    Arg.(value & opt float 1.1
         & info [ "zipf" ] ~docv:"S"
             ~doc:"Zipf skew exponent over the shared clues (0 = uniform).")
  in
  let append_w =
    Arg.(value & opt int 3 & info [ "append-weight" ] ~doc:"Append mix weight.")
  in
  let verify_w =
    Arg.(value & opt int 2 & info [ "verify-weight" ] ~doc:"Verify mix weight.")
  in
  let lineage_w =
    Arg.(value & opt int 1
         & info [ "lineage-weight" ] ~doc:"Lineage mix weight.")
  in
  let read_ratio =
    Arg.(value & opt (some float) None
         & info [ "read-ratio" ] ~docv:"R"
             ~doc:"Fraction of ops drawn as reads (verify/lineage), \
                   overriding the mix weights' proportions — e.g. 0.95 for \
                   a read-heavy 95/5 workload.  Omit to use the mix as-is.")
  in
  let pulls =
    Arg.(value & opt int 1
         & info [ "pulls" ] ~docv:"N"
             ~doc:"Full replica pulls run concurrently with the op traffic.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Deterministic run seed.")
  in
  let real =
    Arg.(value & flag
         & info [ "real-crypto" ]
             ~doc:"Sign and check under real ECDSA (must match the server).")
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:"Drive a serving endpoint with mixed verifying load")
    Term.(const run_load $ host $ port $ clients $ connections $ ops $ rate
          $ payload $ clues $ zipf $ append_w $ verify_w $ lineage_w
          $ read_ratio $ pulls $ seed $ real)

let main =
  Cmd.group
    (Cmd.info "ledgerdb_cli" ~version:"1.0.0"
       ~doc:"LedgerDB ubiquitous-verification reproduction CLI")
    [ demo_cmd; attack_cmd; systems_cmd; snapshot_cmd; stats_cmd; health_cmd;
      query_cmd; serve_cmd; load_cmd ]

let () =
  (* -v / --verbosity via LEDGERDB_VERBOSE; cmdliner subcommands keep their
     own argument vectors simple *)
  (match Sys.getenv_opt "LEDGERDB_VERBOSE" with
  | Some ("debug" | "1") -> Logs.set_level (Some Logs.Debug)
  | Some "info" -> Logs.set_level (Some Logs.Info)
  | Some _ | None -> Logs.set_level (Some Logs.Warning));
  Logs.set_reporter (Logs.format_reporter ());
  exit (Cmd.eval' main)
