(* Chaos tests: seeded fault schedules against storage and transport.
   The invariant under every schedule is the same — the system either
   fully recovers (and says what it recovered) or refuses loudly with a
   diagnostic.  No schedule may ever end in silently-wrong data or an
   accepted bad proof. *)

open Ledger_crypto
open Ledger_storage
open Ledger_core
open Ledger_timenotary
open Ledger_fault
open Ledger_bench_util

let tc = Alcotest.test_case

let fresh_dir () =
  let d = Filename.temp_file "chaos" "dir" in
  Sys.remove d;
  d

let build_ledger ?(crypto = Crypto_profile.default_simulated) () =
  let clock = Clock.create () in
  let pool = Tsa.pool [ Tsa.create ~endorse_rtt_ms:1. ~clock "f" ] in
  let tl = T_ledger.create ~clock ~tsa:pool () in
  let config =
    { Ledger.default_config with name = "chaos"; block_size = 4; fam_delta = 3;
      crypto }
  in
  let ledger = Ledger.create ~config ~t_ledger:tl ~tsa:pool ~clock () in
  let user, key = Ledger.new_member ledger ~name:"cuser" ~role:Roles.Regular_user in
  for i = 0 to 11 do
    Clock.advance_ms clock 50.;
    ignore
      (Ledger.append ledger ~member:user ~priv:key
         ~clues:[ "cc" ^ string_of_int (i mod 2) ]
         (Bytes.of_string (Printf.sprintf "chaos %d" i)))
  done;
  Clock.advance_ms clock 1100.;
  (match Ledger.anchor_via_t_ledger ledger with Ok _ -> () | Error _ -> assert false);
  Ledger.seal_block ledger;
  (clock, ledger, config, (tl, pool), (user, key))

(* -------------------------------------------------------------------- *)
(* Storage chaos: damaged snapshots either recover or refuse.           *)
(* -------------------------------------------------------------------- *)

(* One schedule: save a fresh snapshot, hurt journals.ldb per the seeded
   plan, and check the recovered-or-refused contract.  Returns a label
   for what happened so the driver can assert coverage. *)
let run_storage_schedule ~seed =
  let clock, ledger, config, (tl, pool), _ = build_ledger () in
  let originals =
    List.init (Ledger.size ledger) (fun i ->
        Option.map Bytes.to_string (Ledger.payload ledger i))
  in
  let original_size = Ledger.size ledger in
  let original_commitment = Ledger.commitment ledger in
  let dir = fresh_dir () in
  Ledger.save ledger ~dir;
  let bit_flips, truncations, zero_ranges =
    match seed mod 3 with
    | 0 -> (1, 0, 0)
    | 1 -> (0, 1, 0)
    | _ -> (0, 0, 1)
  in
  let plan =
    Fault_plan.plan ~seed ~bit_flips ~truncations ~zero_ranges
      ~only:[ "journals.ldb" ] ~dir ()
  in
  Fault_plan.apply plan ~dir;
  (* strict load must never accept the damaged snapshot *)
  (match Ledger.load ~config ~t_ledger:tl ~tsa:pool ~clock ~dir () with
  | Ok _ -> Alcotest.failf "seed %d: strict load accepted damage\n%s" seed
               (Fault_plan.to_string plan)
  | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: refusal has a diagnostic" seed)
        true
        (String.length msg > 0));
  (* recovering load must recover a verified-consistent prefix or refuse *)
  match
    Ledger.load_verbose ~config ~t_ledger:tl ~tsa:pool ~recover:true ~clock
      ~dir ()
  with
  | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: recover refusal has a diagnostic" seed)
        true
        (String.length msg > 0);
      `Refused
  | Ok (restored, report) ->
      (* whatever came back must be a faithful prefix of the original *)
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: recovered no more than written" seed)
        true
        (report.Ledger.replayed <= original_size);
      for jsn = 0 to report.Ledger.replayed - 1 do
        let got = Option.map Bytes.to_string (Ledger.payload restored jsn) in
        if got <> List.nth originals jsn then
          Alcotest.failf "seed %d: jsn %d silently altered by recovery" seed
            jsn
      done;
      if report.Ledger.replayed = original_size then begin
        (* full recovery must reproduce the checkpoints exactly *)
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: full recovery verified" seed)
          true
          (report.Ledger.checkpoint = `Verified
          && Hash.equal (Ledger.commitment restored) original_commitment);
        `Recovered_fully
      end
      else begin
        (* a shortened ledger is only acceptable as a flagged torn tail *)
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: short recovery flagged partial" seed)
          true
          (report.Ledger.torn_tail && report.Ledger.checkpoint = `Partial);
        `Recovered_prefix
      end

let test_storage_chaos_schedules () =
  let outcomes = List.init 12 (fun i -> run_storage_schedule ~seed:(i + 1)) in
  (* the seeds must actually exercise both sides of the contract *)
  Alcotest.(check bool) "some schedule was refused" true
    (List.mem `Refused outcomes);
  Alcotest.(check bool) "some schedule recovered a prefix" true
    (List.exists
       (fun o -> o = `Recovered_prefix || o = `Recovered_fully)
       outcomes)

(* Batch-flush crash: every journal goes in through the batched commit
   pipeline, then the persisted journal log is cut mid-way through one of
   its CRC frames — a flush torn in half by a crash.  Same contract as
   above: strict load refuses, recovering load yields a verified faithful
   prefix or refuses; nothing may come back silently wrong. *)
let run_batch_flush_crash ?(pool = Ledger_par.Domain_pool.sequential) ~seed () =
  let clock = Clock.create () in
  let config =
    { Ledger.default_config with name = "chaos-batch"; block_size = 4;
      fam_delta = 3; crypto = Crypto_profile.default_simulated }
  in
  let ledger = Ledger.create ~config ~clock () in
  let user, key =
    Ledger.new_member ledger ~name:"buser" ~role:Roles.Regular_user
  in
  let batch n tag =
    Clock.advance_ms clock 25.;
    ignore
      (Ledger.append_batch ~pool ledger ~member:user ~priv:key
         (List.init n (fun i ->
              ( Bytes.of_string (Printf.sprintf "batch %s/%d" tag i),
                [ "bc" ^ string_of_int (i mod 2) ] ))))
  in
  batch 6 "a";
  batch 7 "b";
  let originals =
    List.init (Ledger.size ledger) (fun i ->
        Option.map Bytes.to_string (Ledger.payload ledger i))
  in
  let original_size = Ledger.size ledger in
  let dir = fresh_dir () in
  Ledger.save ledger ~dir;
  let plan =
    Fault_plan.plan ~seed ~torn_frames:1 ~only:[ "journals.ldb" ] ~dir ()
  in
  Fault_plan.apply plan ~dir;
  (match Ledger.load ~config ~clock ~dir () with
  | Ok _ ->
      Alcotest.failf "seed %d: strict load accepted a torn flush\n%s" seed
        (Fault_plan.to_string plan)
  | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: refusal has a diagnostic" seed)
        true
        (String.length msg > 0));
  match Ledger.load_verbose ~config ~recover:true ~clock ~dir () with
  | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: recover refusal has a diagnostic" seed)
        true
        (String.length msg > 0);
      `Refused
  | Ok (restored, report) ->
      (* the torn frame's journal itself can never come back *)
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: torn flush loses at least one journal" seed)
        true
        (report.Ledger.replayed < original_size);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: short recovery flagged partial" seed)
        true
        (report.Ledger.torn_tail && report.Ledger.checkpoint = `Partial);
      for jsn = 0 to report.Ledger.replayed - 1 do
        let got = Option.map Bytes.to_string (Ledger.payload restored jsn) in
        if got <> List.nth originals jsn then
          Alcotest.failf "seed %d: jsn %d silently altered by recovery" seed jsn
      done;
      (* the recovered prefix must stand on its own: every proof replays *)
      if report.Ledger.replayed > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: recovered prefix passes audit" seed)
          true
          (Audit.run restored).Audit.ok;
      `Recovered_prefix report.Ledger.replayed

let test_batch_flush_crash () =
  let outcomes =
    List.init 8 (fun i -> run_batch_flush_crash ~seed:(i + 101) ())
  in
  Alcotest.(check bool) "some torn flush recovered a prefix" true
    (List.exists (function `Recovered_prefix _ -> true | _ -> false) outcomes)

(* The same torn-flush schedules, with every batch committed through a
   4-domain pool: pooled ingestion writes byte-identical frames, so each
   seed's recovered-or-refused verdict — including how many journals the
   recovery salvaged — must match the sequential run exactly. *)
let test_batch_flush_crash_pooled_matches () =
  let pool = Ledger_par.Domain_pool.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> Ledger_par.Domain_pool.shutdown pool)
    (fun () ->
      List.iter
        (fun seed ->
          let sequential = run_batch_flush_crash ~seed () in
          let pooled = run_batch_flush_crash ~pool ~seed () in
          let show = function
            | `Refused -> "refused"
            | `Recovered_prefix n -> Printf.sprintf "recovered %d" n
          in
          Alcotest.(check string)
            (Printf.sprintf "seed %d: pooled verdict matches sequential" seed)
            (show sequential) (show pooled))
        [ 101; 103; 105; 107 ])

let test_stream_store_chaos () =
  List.iter
    (fun seed ->
      let dir = fresh_dir () in
      let store = Stream_store.create ~dir () in
      let s = Stream_store.stream store "chaos" in
      let payload i = Printf.sprintf "record-%d-%s" i (String.make (i mod 7) 'x') in
      for i = 0 to 19 do
        ignore (Stream_store.append s (Bytes.of_string (payload i)))
      done;
      Stream_store.persist store;
      let plan =
        Fault_plan.plan ~seed
          ~bit_flips:(if seed mod 2 = 0 then 1 else 0)
          ~truncations:(if seed mod 2 = 1 then 1 else 0)
          ~dir ()
      in
      Fault_plan.apply plan ~dir;
      let recovered, reports = Stream_store.recover ~dir () in
      let r =
        match reports with
        | [ r ] -> r
        | _ -> Alcotest.failf "seed %d: expected one recovery report" seed
      in
      Alcotest.(check string) "stream name" "chaos" r.Stream_store.stream;
      (* every record the recovered store serves must be byte-identical
         to what was appended; damage may only shorten, never alter *)
      let s' = Stream_store.stream recovered "chaos" in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: recovered a prefix" seed)
        true
        (Stream_store.length s' <= 20
        && Stream_store.length s' = r.Stream_store.recovered_upto);
      for i = 0 to Stream_store.length s' - 1 do
        Alcotest.(check string)
          (Printf.sprintf "seed %d: record %d intact" seed i)
          (payload i)
          (Bytes.to_string (Stream_store.read s' i))
      done;
      if Stream_store.length s' < 20 then
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: shortening was reported" seed)
          true
          (r.Stream_store.damage <> Stream_store.Intact);
      (* recovery truncated the damage off disk: a second recover is clean *)
      let again, reports2 = Stream_store.recover ~dir () in
      let r2 = List.hd reports2 in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: second recover clean" seed)
        true
        (r2.Stream_store.damage = Stream_store.Intact
        && Stream_store.length (Stream_store.stream again "chaos")
           = Stream_store.length s'))
    [ 101; 102; 103; 104; 105; 106 ]

(* helpers for surgical damage: whole-file images in and out *)
let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path data =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc data)

let find_sub hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i =
    if i + nl > hl then None
    else if String.sub hay i nl = needle then Some i
    else go (i + 1)
  in
  go 0

(* Double fault: a torn tail AND a corrupted interior record in the same
   log.  Recovery must report the graver damage class, stop at the last
   record before the corruption (not merely before the tear), and still
   hand back only byte-faithful records. *)
let test_recover_torn_plus_corrupt () =
  let dir = fresh_dir () in
  let store = Stream_store.create ~dir () in
  let s = Stream_store.stream store "df" in
  let payload i = Printf.sprintf "double-fault-record-%02d" i in
  for i = 0 to 15 do
    ignore (Stream_store.append s (Bytes.of_string (payload i)))
  done;
  Stream_store.persist store;
  let path = Filename.concat dir "df.log" in
  let image = read_file path in
  (* flip one payload byte inside record 5, then tear the tail off *)
  let off =
    match find_sub image (payload 5) with
    | Some o -> o
    | None -> Alcotest.fail "record 5 not found in the log image"
  in
  let b = Bytes.of_string image in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x40));
  let torn = Bytes.sub b 0 (Bytes.length b - 5) in
  write_file path (Bytes.to_string torn);
  let recovered, reports = Stream_store.recover ~dir () in
  let r =
    match reports with
    | [ r ] -> r
    | _ -> Alcotest.fail "expected one recovery report"
  in
  (* the corruption dominates the tear in the report *)
  Alcotest.(check bool) "graver damage class reported" true
    (r.Stream_store.damage = Stream_store.Corrupt_record);
  Alcotest.(check int) "stopped before the corrupt record" 5
    r.Stream_store.recovered_upto;
  Alcotest.(check bool) "both faults' bytes accounted for" true
    (r.Stream_store.dropped_bytes > 0);
  let s' = Stream_store.stream recovered "df" in
  Alcotest.(check int) "recovered length" 5 (Stream_store.length s');
  for i = 0 to 4 do
    Alcotest.(check string)
      (Printf.sprintf "record %d intact" i)
      (payload i)
      (Bytes.to_string (Stream_store.read s' i))
  done;
  (* both faults were truncated off disk in one pass *)
  let again, reports2 = Stream_store.recover ~dir () in
  let r2 = List.hd reports2 in
  Alcotest.(check bool) "second recover clean" true
    (r2.Stream_store.damage = Stream_store.Intact);
  Alcotest.(check int) "clean length stable" 5
    (Stream_store.length (Stream_store.stream again "df"))

(* Generation mismatch: the snapshot metadata and the journal log come
   from different saves of the same ledger.  Every splice must refuse —
   strict and recovering alike — because a clean-framed log that
   disagrees with its metadata is evidence of tampering or a botched
   restore, not a crash.  A stale log that is ALSO torn may recover, but
   only as a flagged partial prefix of the stale generation. *)
let test_snapshot_log_generation_mismatch () =
  let clock, ledger, config, (tl, pool), (user, key) = build_ledger () in
  let dir_old = fresh_dir () in
  Ledger.save ledger ~dir:dir_old;
  let old_size = Ledger.size ledger in
  for i = 0 to 7 do
    Clock.advance_ms clock 50.;
    ignore
      (Ledger.append ledger ~member:user ~priv:key
         ~clues:[ "gen" ^ string_of_int (i mod 2) ]
         (Bytes.of_string (Printf.sprintf "newer %d" i)))
  done;
  Clock.advance_ms clock 1100.;
  (match Ledger.anchor_via_t_ledger ledger with
  | Ok _ -> ()
  | Error _ -> assert false);
  Ledger.seal_block ledger;
  let dir_new = fresh_dir () in
  Ledger.save ledger ~dir:dir_new;
  let old_log = read_file (Filename.concat dir_old "journals.ldb") in
  let new_log = read_file (Filename.concat dir_new "journals.ldb") in
  Alcotest.(check bool) "generations actually differ" true
    (String.length new_log > String.length old_log);
  let refuses label dir =
    (match Ledger.load ~config ~t_ledger:tl ~tsa:pool ~clock ~dir () with
    | Ok _ -> Alcotest.failf "%s: strict load accepted the splice" label
    | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: strict refusal has a diagnostic" label)
          true
          (String.length msg > 0));
    match
      Ledger.load_verbose ~config ~t_ledger:tl ~tsa:pool ~recover:true ~clock
        ~dir ()
    with
    | Ok _ -> Alcotest.failf "%s: recovering load accepted the splice" label
    | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: recover refusal has a diagnostic" label)
          true
          (String.length msg > 0)
  in
  (* stale log under the new metadata: fewer journals than declared *)
  write_file (Filename.concat dir_new "journals.ldb") old_log;
  refuses "stale log under new meta" dir_new;
  (* newer log under the old metadata: more journals than declared *)
  write_file (Filename.concat dir_old "journals.ldb") new_log;
  refuses "new log under old meta" dir_old;
  (* stale AND torn: the tear flags the load as partial, so recovery may
     return the faithful stale prefix — but never silently, and never
     more than the stale generation held *)
  let dir_torn = fresh_dir () in
  Ledger.save ledger ~dir:dir_torn;
  write_file
    (Filename.concat dir_torn "journals.ldb")
    (String.sub old_log 0 (String.length old_log - 7));
  (match Ledger.load ~config ~t_ledger:tl ~tsa:pool ~clock ~dir:dir_torn () with
  | Ok _ -> Alcotest.fail "stale+torn: strict load accepted"
  | Error _ -> ());
  match
    Ledger.load_verbose ~config ~t_ledger:tl ~tsa:pool ~recover:true ~clock
      ~dir:dir_torn ()
  with
  | Error msg ->
      Alcotest.(check bool) "stale+torn: refusal has a diagnostic" true
        (String.length msg > 0)
  | Ok (restored, report) ->
      Alcotest.(check bool) "stale+torn: flagged, never silent" true
        (report.Ledger.torn_tail && report.Ledger.checkpoint = `Partial);
      Alcotest.(check bool) "stale+torn: at most the stale generation" true
        (report.Ledger.replayed <= old_size);
      for jsn = 0 to report.Ledger.replayed - 1 do
        let got = Option.map Bytes.to_string (Ledger.payload restored jsn) in
        let want = Option.map Bytes.to_string (Ledger.payload ledger jsn) in
        if got <> want then
          Alcotest.failf "stale+torn: jsn %d silently altered" jsn
      done

(* -------------------------------------------------------------------- *)
(* Transport chaos: a flaky network delays the pull, never poisons it.  *)
(* -------------------------------------------------------------------- *)

let test_flaky_pull_converges () =
  let injected = ref 0 in
  List.iter
    (fun seed ->
      let clock, remote, config, (tl, pool), _ = build_ledger () in
      let rng = Det_rng.create ~seed in
      let ft =
        Faulty_transport.create ~rng
          ~config:(Faulty_transport.lossy ~drop:0.08 ~dup:0.03 ~garble:0.03
                     ~reorder:0.03 ~delay:0.05 ())
          ~clock (Service.handle remote)
      in
      match
        Replica.pull_verbose ~transport:(Faulty_transport.transport ft)
          ~config ~t_ledger:tl ~tsa:pool ~clock ~scratch_dir:(fresh_dir ()) ()
      with
      | Error e ->
          Alcotest.failf "seed %d: flaky pull failed: %s" seed
            (Replica.error_to_string e)
      | Ok (replica, stats) ->
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: replica matches" seed)
            true
            (Ledger.size replica = Ledger.size remote
            && Hash.equal (Ledger.commitment replica)
                 (Ledger.commitment remote));
          let s = Faulty_transport.stats ft in
          injected :=
            !injected + s.Faulty_transport.drops + s.Faulty_transport.garbles
            + s.Faulty_transport.reorders + s.Faulty_transport.dups;
          (* retries happen iff faults were injected on this schedule *)
          if s.Faulty_transport.drops + s.Faulty_transport.garbles > 0 then
            Alcotest.(check bool)
              (Printf.sprintf "seed %d: faults forced retries" seed)
              true (stats.Replica.retries > 0))
    [ 7; 8; 9 ];
  Alcotest.(check bool) "schedules actually injected faults" true
    (!injected > 0)

let test_resumable_pull () =
  let clock, remote, config, (tl, pool), _ = build_ledger () in
  let scratch = fresh_dir () in
  (* a transport that dies for good partway through the journal fetch *)
  let journal_calls = ref 0 in
  let dying req =
    (match Service.decode_request req with
    | Some (Service.Get_journal _) ->
        incr journal_calls;
        if !journal_calls > 5 then
          raise (Transport.Timeout "link went down")
    | _ -> ());
    Service.handle remote req
  in
  (match
     Replica.pull_verbose ~transport:dying ~policy:Transport.no_retry ~config
       ~t_ledger:tl ~tsa:pool ~clock ~scratch_dir:scratch ()
   with
  | Ok _ -> Alcotest.fail "pull over a dead link succeeded"
  | Error (Replica.Transport_failed _) -> ()
  | Error e -> Alcotest.failf "unexpected error: %s" (Replica.error_to_string e));
  (* the link comes back; the pull resumes from the staged prefix *)
  match
    Replica.pull_verbose ~transport:(Service.handle remote) ~config
      ~t_ledger:tl ~tsa:pool ~clock ~scratch_dir:scratch ()
  with
  | Error e -> Alcotest.failf "resumed pull failed: %s" (Replica.error_to_string e)
  | Ok (replica, stats) ->
      Alcotest.(check bool) "resumed from staged journals" true
        (stats.Replica.resumed_from > 0);
      Alcotest.(check bool) "resumed replica matches" true
        (Ledger.size replica = Ledger.size remote
        && Hash.equal (Ledger.commitment replica) (Ledger.commitment remote))

let run_poisoned_stage_heals ?domain_pool () =
  let clock, remote, config, (tl, pool), _ = build_ledger () in
  let scratch = fresh_dir () in
  Sys.mkdir scratch 0o755;
  (* poison the staging area with framing-valid but foreign journals *)
  let oc = open_out_bin (Filename.concat scratch "journals.ldb") in
  for i = 0 to 2 do
    let frame = Bytes.make 40 (Char.chr (65 + i)) in
    Framing.write oc frame
  done;
  close_out oc;
  match
    Replica.pull_verbose ~transport:(Service.handle remote) ~config
      ?pool:domain_pool ~t_ledger:tl ~tsa:pool ~clock ~scratch_dir:scratch ()
  with
  | Error e -> Alcotest.failf "healing pull failed: %s" (Replica.error_to_string e)
  | Ok (replica, stats) ->
      Alcotest.(check bool) "stage was discarded and pull restarted" true
        stats.Replica.restarted;
      Alcotest.(check bool) "healed replica matches" true
        (Hash.equal (Ledger.commitment replica) (Ledger.commitment remote))

let test_poisoned_stage_heals () = run_poisoned_stage_heals ()

(* The staged π_c pre-check runs across the pool; a poisoned stage hit
   from pooled tasks must heal exactly like the sequential pre-check. *)
let test_poisoned_stage_heals_pooled () =
  let dp = Ledger_par.Domain_pool.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> Ledger_par.Domain_pool.shutdown dp)
    (fun () -> run_poisoned_stage_heals ~domain_pool:dp ())

let test_persistent_garbling_refused () =
  let clock, remote, config, (tl, pool), _ = build_ledger () in
  (* every journal response is corrupted, forever: retries must exhaust
     and the pull must refuse — never accept a garbled journal *)
  let garbling req =
    let resp = Service.handle remote req in
    match Service.decode_request req with
    | Some (Service.Get_journal _) when Bytes.length resp > 50 ->
        let b = Bytes.copy resp in
        let off = Bytes.length b - 10 in
        Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x08));
        b
    | _ -> resp
  in
  let policy = { Transport.default_policy with max_attempts = 3 } in
  match
    Replica.pull_verbose ~transport:garbling ~policy ~config ~t_ledger:tl
      ~tsa:pool ~clock ~scratch_dir:(fresh_dir ()) ()
  with
  | Ok _ -> Alcotest.fail "persistently garbled journals accepted"
  | Error _ -> ()

(* -------------------------------------------------------------------- *)
(* Client health: transient faults degrade, crypto evidence condemns.   *)
(* -------------------------------------------------------------------- *)

(* receipts carry real LSP signatures, so the client fixture runs the
   real crypto profile *)
let client_with_receipt () =
  let clock, remote, _, _, (user, key) = build_ledger ~crypto:Crypto_profile.Real () in
  let client =
    Ledger_client.create ~name:"cclient"
      ~lsp_pub:(Ledger.lsp_public_key remote)
  in
  Clock.advance_ms clock 10.;
  let r =
    Ledger.append remote ~member:user ~priv:key (Bytes.of_string "receipted")
  in
  Ledger_client.remember_receipt client r;
  (clock, remote, client, r.Receipt.jsn)

let test_client_degrades_then_recovers () =
  let clock, remote, client, jsn = client_with_receipt () in
  let fail_first = ref 2 in
  let flaky req =
    if !fail_first > 0 then begin
      decr fail_first;
      raise (Transport.Timeout "blip")
    end;
    Service.handle remote req
  in
  (match
     Ledger_client.check_receipt_remote client ~transport:flaky ~clock ~jsn ()
   with
  | Ok `Ok -> ()
  | Ok v ->
      Alcotest.failf "unexpected verdict: %s"
        (match v with
        | `Ok -> "ok"
        | `No_receipt -> "no-receipt"
        | `Bad_signature -> "bad-signature"
        | `Repudiated -> "repudiated")
  | Error e -> Alcotest.failf "check failed: %s" (Transport.error_to_string e));
  (* the blips were counted, then the success restored health *)
  Alcotest.(check bool) "transient faults recorded" true
    (Ledger_client.transient_faults client >= 2);
  Alcotest.(check string) "healthy after recovery" "healthy"
    (Ledger_client.status_to_string (Ledger_client.status client));
  (* a dead link degrades the client but concludes nothing *)
  let dead _ = raise (Transport.Timeout "down") in
  let policy = { Transport.default_policy with max_attempts = 2 } in
  (match
     Ledger_client.check_receipt_remote client ~transport:dead ~policy ~clock
       ~jsn ()
   with
  | Ok _ -> Alcotest.fail "dead link produced a verdict"
  | Error _ -> ());
  Alcotest.(check string) "degraded while link is down" "degraded"
    (Ledger_client.status_to_string (Ledger_client.status client))

let test_compromised_is_sticky () =
  let clock, remote, client, jsn = client_with_receipt () in
  (* the service refuses to produce a journal the client holds a receipt
     for: that is repudiation evidence, not a transient fault *)
  let repudiating req =
    match Service.decode_request req with
    | Some (Service.Get_journal _) ->
        Service.encode_response (Service.Error_r "no such journal")
    | _ -> Service.handle remote req
  in
  (match
     Ledger_client.check_receipt_remote client ~transport:repudiating ~clock
       ~jsn ()
   with
  | Ok `Repudiated -> ()
  | Ok _ -> Alcotest.fail "repudiation not detected"
  | Error e -> Alcotest.failf "unexpected: %s" (Transport.error_to_string e));
  Alcotest.(check string) "compromised" "compromised"
    (Ledger_client.status_to_string (Ledger_client.status client));
  (* no later success may soften the verdict *)
  (match
     Ledger_client.check_receipt_remote client
       ~transport:(Service.handle remote) ~clock ~jsn ()
   with
  | Ok `Ok -> ()
  | _ -> Alcotest.fail "honest re-check should verify");
  Alcotest.(check string) "still compromised" "compromised"
    (Ledger_client.status_to_string (Ledger_client.status client))

(* A shard's store dying mid-epoch must refuse the super-root seal
   outright — never record a torn epoch covering a dead shard. *)
let test_dead_shard_refuses_super_root () =
  let module SL = Ledger_shard.Sharded_ledger in
  let clock = Clock.create () in
  let config =
    {
      SL.base =
        { Ledger.default_config with name = "chaos-fleet"; block_size = 4;
          fam_delta = 3; crypto = Crypto_profile.default_simulated };
      shards = 3;
    }
  in
  let fleet = SL.create ~config ~clock () in
  let user, key = SL.new_member fleet ~name:"cuser" ~role:Roles.Regular_user in
  let append i =
    ignore
      (SL.append fleet ~member:user ~priv:key
         ~clues:[ "fc" ^ string_of_int i ]
         (Bytes.of_string (Printf.sprintf "chaos %d" i)))
  in
  for i = 0 to 11 do append i done;
  (match SL.seal_epoch fleet with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("healthy seal refused: " ^ e));
  Alcotest.(check int) "first epoch sealed" 1 (List.length (SL.epochs fleet));
  (* new entries land, then one shard's storage node dies mid-epoch *)
  for i = 12 to 23 do append i done;
  Stream_store.Unsafe.kill (Ledger.backing_store (SL.shard fleet 1));
  Alcotest.(check bool) "shard 1 store dead" false
    (Ledger.store_healthy (SL.shard fleet 1));
  Alcotest.(check bool) "shard 0 store alive" true
    (Ledger.store_healthy (SL.shard fleet 0));
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  let sequential_refusal =
    match SL.seal_epoch fleet with
    | Ok _ -> Alcotest.fail "sealed a super-root over a dead shard"
    | Error msg ->
        Alcotest.(check bool) "refusal names the dead shard" true
          (contains msg "shard 1");
        msg
  in
  (* the dead shard hit from a pooled seal task must yield the same
     refused verdict, word for word, as the sequential seal *)
  let dp = Ledger_par.Domain_pool.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> Ledger_par.Domain_pool.shutdown dp)
    (fun () ->
      match SL.seal_epoch ~pool:dp fleet with
      | Ok _ -> Alcotest.fail "pooled seal accepted a dead shard"
      | Error msg ->
          Alcotest.(check string) "pooled refusal matches sequential"
            sequential_refusal msg);
  (* refused, not torn: the epoch list still ends at the healthy seal *)
  Alcotest.(check int) "no partial epoch recorded" 1
    (List.length (SL.epochs fleet));
  match SL.latest fleet with
  | Some s ->
      Alcotest.(check int) "latest epoch unchanged" 0
        s.Ledger_shard.Super_root.epoch
  | None -> Alcotest.fail "healthy epoch lost"

let suite =
  [
    tc "storage chaos schedules" `Slow test_storage_chaos_schedules;
    tc "batch flush crash" `Slow test_batch_flush_crash;
    tc "batch flush crash: pooled verdicts match" `Slow
      test_batch_flush_crash_pooled_matches;
    tc "stream store chaos" `Quick test_stream_store_chaos;
    tc "recover: torn tail + corrupt interior" `Quick
      test_recover_torn_plus_corrupt;
    tc "snapshot/log generation mismatch" `Quick
      test_snapshot_log_generation_mismatch;
    tc "flaky pull converges" `Slow test_flaky_pull_converges;
    tc "resumable pull" `Slow test_resumable_pull;
    tc "poisoned stage heals" `Slow test_poisoned_stage_heals;
    tc "poisoned stage heals (pooled pre-check)" `Slow
      test_poisoned_stage_heals_pooled;
    tc "persistent garbling refused" `Slow test_persistent_garbling_refused;
    tc "client degrades then recovers" `Quick test_client_degrades_then_recovers;
    tc "compromised is sticky" `Quick test_compromised_is_sticky;
    tc "dead shard refuses super-root seal" `Quick
      test_dead_shard_refuses_super_root;
  ]
