(* Verifiable query layer gates (DESIGN.md §16).

   Three rings of defence, inside out:

   - lib/mpt ordered-key machinery: iteration/predecessor/successor agree
     with a sorted model; absence proofs and pruned-subtrie range proofs
     verify honestly and reject adversarial boundary substitution;
   - lib/query: verified paged scans are differentially equal to a naive
     filter over everything ever appended, and every tampering move the
     issue names (omitted/extra/altered row, hidden window epoch,
     re-ordered / dropped pages, stale root) is rejected;
   - end to end: the Service envelope and the sharded scatter/merge return
     client-verified results identical to the naive filter. *)

open Ledger_crypto
open Ledger_mpt
open Ledger_storage
open Ledger_query
open Ledger_core

let check = Alcotest.check
let tc = Alcotest.test_case
let qcheck = QCheck_alcotest.to_alcotest

(* --- generators and models ---------------------------------------------- *)

let arb_nibble_key =
  QCheck.(list_of_size (Gen.int_range 1 8) (int_range 0 15))

let key_of_list = Array.of_list
let value_of_int n = Bytes.of_string ("v" ^ string_of_int n)

(* assoc model keyed by nibble arrays, last write wins *)
let model_of_bindings bs =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) bs;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Mpt.compare_keys a b)

let trie_of_bindings bs =
  let t = Mpt.create () in
  List.iter (fun (k, v) -> Mpt.insert t ~key:k v) bs;
  t

let arb_bindings =
  QCheck.(small_list (pair arb_nibble_key small_nat))

let to_bindings l =
  List.map (fun (k, v) -> (key_of_list k, value_of_int v)) l

(* --- ordered iteration --------------------------------------------------- *)

let ordered_iteration_agrees =
  QCheck.Test.make ~name:"fold_range = sorted model filter" ~count:120
    QCheck.(triple arb_bindings arb_nibble_key (option arb_nibble_key))
    (fun (raw, lo_l, hi_l) ->
      let bs = to_bindings raw in
      let t = trie_of_bindings bs in
      let model = model_of_bindings bs in
      let lo = key_of_list lo_l in
      let hi = Option.map key_of_list hi_l in
      let got =
        List.rev (Mpt.fold_range t ~lo ?hi (fun acc k v -> (k, v) :: acc) [])
      in
      let expect =
        List.filter (fun (k, _) -> Mpt.key_in_range k ~lo ~hi) model
      in
      got = expect
      &&
      (* unbounded scan = full model *)
      List.rev (Mpt.fold_range t ~lo:[||] (fun acc k v -> (k, v) :: acc) [])
      = model)

let take_range_agrees =
  QCheck.Test.make ~name:"take_range = first n of fold_range" ~count:120
    QCheck.(pair arb_bindings (int_range 0 6))
    (fun (raw, n) ->
      let bs = to_bindings raw in
      let t = trie_of_bindings bs in
      let model = model_of_bindings bs in
      let got, more = Mpt.take_range t ~lo:[||] n in
      let expect_n = min n (List.length model) in
      got = List.filteri (fun i _ -> i < expect_n) model
      && more = (List.length model > n))

let adjacent_agrees =
  QCheck.Test.make ~name:"predecessor/successor = model" ~count:200
    QCheck.(pair arb_bindings arb_nibble_key)
    (fun (raw, probe_l) ->
      let bs = to_bindings raw in
      let t = trie_of_bindings bs in
      let model = model_of_bindings bs in
      let probe = key_of_list probe_l in
      let expect_pred =
        List.fold_left
          (fun acc (k, v) -> if Mpt.compare_keys k probe < 0 then Some (k, v) else acc)
          None model
      in
      let expect_succ =
        List.fold_left
          (fun acc (k, v) ->
            match acc with
            | Some _ -> acc
            | None -> if Mpt.compare_keys k probe > 0 then Some (k, v) else None)
          None model
      in
      Mpt.predecessor t ~key:probe = expect_pred
      && Mpt.successor t ~key:probe = expect_succ
      && Mpt.min_binding t
         = (match model with [] -> None | b :: _ -> Some b)
      && Mpt.max_binding t
         = (match List.rev model with [] -> None | b :: _ -> Some b))

(* --- absence proofs ------------------------------------------------------ *)

let absence_roundtrip =
  QCheck.Test.make ~name:"absence proofs verify (incl. wire roundtrip)" ~count:200
    QCheck.(pair arb_bindings arb_nibble_key)
    (fun (raw, probe_l) ->
      let bs = to_bindings raw in
      let t = trie_of_bindings bs in
      let probe = key_of_list probe_l in
      let root = Mpt.root_hash t in
      match Mpt.prove_absent t ~key:probe with
      | None -> Mpt.find t ~key:probe <> None
      | Some p ->
          Mpt.find t ~key:probe = None
          && Mpt.verify_absence ~root ~key:probe p
          && (let w = Wire.writer () in
              Mpt.w_absence w p;
              match Wire.decode (Wire.contents w) Mpt.r_absence with
              | Some p' -> Mpt.verify_absence ~root ~key:probe p'
              | None -> false))

let absence_rejects_wrong_boundaries =
  QCheck.Test.make ~name:"absence proof rejects non-adjacent boundaries" ~count:200
    QCheck.(pair arb_bindings arb_nibble_key)
    (fun (raw, probe_l) ->
      let bs = to_bindings raw in
      let t = trie_of_bindings bs in
      let probe = key_of_list probe_l in
      let root = Mpt.root_hash t in
      match Mpt.prove_absent t ~key:probe with
      | None -> QCheck.assume_fail ()
      | Some p ->
          let with_proof k v = (k, v, Option.get (Mpt.prove t ~key:k)) in
          (* replace the claimed predecessor by the *predecessor of the
             predecessor* — a real key with a genuine inclusion proof, just
             not adjacent.  Same on the successor side. *)
          let weaker_pred =
            match p.Mpt.ab_pred with
            | Some (pk, _, _) ->
                Option.map
                  (fun (k, v) ->
                    { p with Mpt.ab_pred = Some (with_proof k v) })
                  (Mpt.predecessor t ~key:pk)
            | None -> None
          in
          let weaker_succ =
            match p.Mpt.ab_succ with
            | Some (sk, _, _) ->
                Option.map
                  (fun (k, v) ->
                    { p with Mpt.ab_succ = Some (with_proof k v) })
                  (Mpt.successor t ~key:sk)
            | None -> None
          in
          let dropped_pred =
            if p.Mpt.ab_pred = None then None
            else Some { p with Mpt.ab_pred = None }
          in
          let dropped_succ =
            if p.Mpt.ab_succ = None then None
            else Some { p with Mpt.ab_succ = None }
          in
          List.for_all
            (function
              | None -> true
              | Some forged -> not (Mpt.verify_absence ~root ~key:probe forged))
            [ weaker_pred; weaker_succ; dropped_pred; dropped_succ ])

let absence_rejects_present_key =
  QCheck.Test.make ~name:"absence proof cannot target a present key" ~count:100
    arb_bindings
    (fun raw ->
      let bs = to_bindings raw in
      QCheck.assume (bs <> []);
      let t = trie_of_bindings bs in
      let root = Mpt.root_hash t in
      let k, _ = List.nth bs (List.length bs / 2) in
      (* an absence proof built for a *different* absent key must not
         verify when replayed against a present key *)
      Mpt.prove_absent t ~key:k = None
      &&
      let far = Array.append k [| 0; 0; 0; 0; 0; 0; 0; 0; 0 |] in
      match Mpt.prove_absent t ~key:far with
      | None -> false
      | Some p -> not (Mpt.verify_absence ~root ~key:k p))

(* --- range proofs -------------------------------------------------------- *)

let range_proof_agrees =
  QCheck.Test.make ~name:"range proof = naive filter (incl. roundtrip)" ~count:150
    QCheck.(triple arb_bindings arb_nibble_key (option arb_nibble_key))
    (fun (raw, lo_l, hi_l) ->
      let bs = to_bindings raw in
      let t = trie_of_bindings bs in
      let model = model_of_bindings bs in
      let root = Mpt.root_hash t in
      let lo = key_of_list lo_l in
      let hi = Option.map key_of_list hi_l in
      let proof = Mpt.prove_range t ~lo ~hi in
      let expect = List.filter (fun (k, _) -> Mpt.key_in_range k ~lo ~hi) model in
      Mpt.verify_range ~root ~lo ~hi proof = Some expect
      &&
      let w = Wire.writer () in
      Mpt.w_range_proof w proof;
      (match Wire.decode (Wire.contents w) Mpt.r_range_proof with
      | Some p' -> Mpt.verify_range ~root ~lo ~hi p' = Some expect
      | None -> false))

let range_proof_rejects_wrong_root =
  QCheck.Test.make ~name:"range proof rejects a stale/foreign root" ~count:80
    arb_bindings
    (fun raw ->
      let bs = to_bindings raw in
      QCheck.assume (bs <> []);
      let t = trie_of_bindings bs in
      let proof = Mpt.prove_range t ~lo:[||] ~hi:None in
      (* new insert -> new root: old proof must die *)
      Mpt.insert t ~key:[| 7; 7; 7; 7; 7; 7; 7; 7; 7 |] (Bytes.of_string "late");
      let root' = Mpt.root_hash t in
      Mpt.verify_range ~root:root' ~lo:[||] ~hi:None proof = None)

let range_proof_bitflip =
  QCheck.Test.make ~name:"range proof bit-flips never alter the result" ~count:150
    QCheck.(triple arb_bindings small_nat small_nat)
    (fun (raw, byte_seed, bit) ->
      let bs = to_bindings raw in
      QCheck.assume (bs <> []);
      let t = trie_of_bindings bs in
      let root = Mpt.root_hash t in
      let proof = Mpt.prove_range t ~lo:[||] ~hi:None in
      let honest = Mpt.verify_range ~root ~lo:[||] ~hi:None proof in
      let enc =
        let w = Wire.writer () in
        Mpt.w_range_proof w proof;
        Wire.contents w
      in
      let enc = Bytes.copy enc in
      let i = byte_seed mod Bytes.length enc in
      Bytes.set enc i
        (Char.chr (Char.code (Bytes.get enc i) lxor (1 lsl (bit mod 8))));
      match Wire.decode enc Mpt.r_range_proof with
      | None -> true
      | Some p' -> (
          match Mpt.verify_range ~root ~lo:[||] ~hi:None p' with
          | None -> true
          | Some got -> Some got = honest))

(* --- ccMPT satellite: proof codec + bounded jsns ------------------------- *)

let ccmpt_codec_roundtrip () =
  let acc = Ledger_merkle.Accumulator.create () in
  let cc = Ccmpt.create acc in
  for jsn = 0 to 40 do
    ignore
      (Ledger_merkle.Accumulator.append acc
         (Hash.digest_string ("journal " ^ string_of_int jsn)));
    Ccmpt.add cc ~clue:(if jsn mod 3 = 0 then "alice" else "bob") ~jsn
  done;
  let proof = Option.get (Ccmpt.prove_clue cc ~clue:"alice") in
  let w = Wire.writer () in
  Ccmpt.w_proof w proof;
  let enc = Wire.contents w in
  (match Wire.decode enc Ccmpt.r_proof with
  | None -> Alcotest.fail "ccmpt proof codec roundtrip failed"
  | Some p' ->
      check Alcotest.bool "roundtripped proof verifies" true
        (Ccmpt.verify_clue cc ~clue:"alice" ~mpt_root:(Ccmpt.root_hash cc)
           ~acc_root:(Ledger_merkle.Accumulator.root acc) p'));
  (* bit-flips: decode failure or verification failure, never silent
     acceptance of altered lineage *)
  let flips = ref 0 in
  for i = 0 to Bytes.length enc - 1 do
    let mut = Bytes.copy enc in
    Bytes.set mut i (Char.chr (Char.code (Bytes.get mut i) lxor 0x10));
    match Wire.decode mut Ccmpt.r_proof with
    | None -> incr flips
    | Some p' ->
        if
          not
            (Ccmpt.verify_clue cc ~clue:"alice" ~mpt_root:(Ccmpt.root_hash cc)
               ~acc_root:(Ledger_merkle.Accumulator.root acc) p')
          || p' <> proof
        then incr flips
  done;
  check Alcotest.bool "every bit-flip detected" true (!flips = Bytes.length enc)

let ccmpt_slice_agrees =
  QCheck.Test.make ~name:"ccmpt jsns_slice = List slice of jsns" ~count:100
    QCheck.(triple (int_range 0 30) (int_range 0 12) (int_range 0 12))
    (fun (n, offset, limit) ->
      let acc = Ledger_merkle.Accumulator.create () in
      let cc = Ccmpt.create acc in
      for jsn = 0 to n - 1 do
        Ccmpt.add cc ~clue:"k" ~jsn
      done;
      let all = Ccmpt.jsns cc ~clue:"k" in
      let expect =
        List.filteri (fun i _ -> i >= offset && i < offset + limit) all
      in
      Ccmpt.jsns_slice cc ~clue:"k" ~offset ~limit = expect
      && all = List.init n (fun i -> i))

(* --- query layer: differential against a naive filter -------------------- *)

let clue_pool =
  [| "acct-alpha"; "acct-beta"; "acct-gamma"; "acct-delta"; "bank-a"; "bank-b";
     "zeta"; "a"; "ab"; "abc"; "abcd" |]

let arb_stream =
  QCheck.(list_of_size (Gen.int_range 0 60) (int_range 0 (Array.length clue_pool - 1)))

(* naive reference: every (clue, jsn, tx) ever appended *)
let naive_filter stream ~spec ~window =
  let matches clue = Range_query.spec_matches spec clue in
  let in_window jsn =
    match window with
    | None -> true
    | Some { Range_query.t1; t2 } -> jsn >= t1 && jsn <= t2
  in
  List.filter (fun (clue, jsn, _tx) -> matches clue && in_window jsn) stream
  |> List.fold_left
       (fun acc (clue, jsn, tx) ->
         let cur = try List.assoc clue acc with Not_found -> [] in
         (clue, (jsn, tx) :: cur) :: List.remove_assoc clue acc)
       []
  |> List.map (fun (clue, entries) -> (clue, List.rev entries))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let index_of_stream stream =
  let idx = Query_index.create () in
  List.iter (fun (clue, jsn, tx) -> Query_index.add idx ~clue ~jsn ~tx) stream;
  idx

let mk_stream picks =
  List.mapi
    (fun jsn pick ->
      (clue_pool.(pick), jsn, Hash.digest_string ("tx" ^ string_of_int jsn)))
    picks

let run_paged idx ~spec ?window ~page_size () =
  let rec go after acc n =
    if n > 1000 then Alcotest.fail "pagination did not terminate";
    let pg = Range_query.page idx ~spec ?window ?after ~page_size () in
    match pg.Range_query.cursor with
    | Some c -> go (Some c) (pg :: acc) (n + 1)
    | None -> List.rev (pg :: acc)
  in
  go None [] 0

let result_entries rows =
  List.map (fun r -> (r.Range_query.r_clue, r.Range_query.r_entries)) rows
  |> List.filter (fun (_, es) -> es <> [])

let specs_under_test =
  [ Range_query.Prefix ""; Range_query.Prefix "acct-"; Range_query.Prefix "ab";
    Range_query.Prefix "acct-alpha"; Range_query.Prefix "nope";
    Range_query.Between { lo = "acct-beta"; hi = Some "bank-b" };
    Range_query.Between { lo = "a"; hi = None };
    Range_query.Between { lo = "b"; hi = Some "b" } ]

let paged_query_differential =
  QCheck.Test.make ~name:"verified paged query = naive filter" ~count:60
    QCheck.(triple arb_stream (int_range 1 5) (option (pair small_nat small_nat)))
    (fun (picks, page_size, win) ->
      (* shrinking can propose ints below the generator's range *)
      QCheck.assume (page_size >= 1);
      let stream = mk_stream picks in
      let idx = index_of_stream stream in
      let root = Query_index.root idx in
      let window =
        Option.map
          (fun (a, b) -> { Range_query.t1 = min a b; t2 = max a b })
          win
      in
      List.for_all
        (fun spec ->
          let pages = run_paged idx ~spec ?window ~page_size () in
          match Range_query.verify_pages ~root ~spec ?window ~page_size pages with
          | Error e -> QCheck.Test.fail_reportf "honest query rejected: %s" e
          | Ok rows ->
              let naive = naive_filter stream ~spec ~window in
              result_entries rows = naive)
        specs_under_test)

let wire_roundtrip_pages =
  QCheck.Test.make ~name:"page wire codec roundtrips and verifies" ~count:40
    QCheck.(pair arb_stream (int_range 1 4))
    (fun (picks, page_size) ->
      let stream = mk_stream picks in
      let idx = index_of_stream stream in
      let root = Query_index.root idx in
      let spec = Range_query.Prefix "" in
      let pages = run_paged idx ~spec ~page_size () in
      let pages' =
        List.map
          (fun pg ->
            match Range_query.decode_page (Range_query.encode_page pg) with
            | Some p -> p
            | None -> QCheck.Test.fail_report "page codec roundtrip failed")
          pages
      in
      match Range_query.verify_pages ~root ~spec ~page_size pages' with
      | Ok _ -> true
      | Error e -> QCheck.Test.fail_reportf "roundtripped pages rejected: %s" e)

(* --- adversarial gates --------------------------------------------------- *)

(* A fixed, rich scenario used by all tampering tests. *)
let adversarial_fixture () =
  let stream =
    mk_stream
      [ 0; 1; 2; 3; 4; 5; 0; 1; 2; 0; 3; 4; 0; 1; 0; 2; 5; 0; 1; 2; 3; 0 ]
  in
  let idx = index_of_stream stream in
  (stream, idx, Query_index.root idx)

let expect_reject name outcome =
  match outcome with
  | Ok _ -> Alcotest.failf "%s: tampered result accepted" name
  | Error _ -> ()

let tamper_rows f pg = { pg with Range_query.rows = f pg.Range_query.rows }

let adversarial_row_tampering () =
  let _, idx, root = adversarial_fixture () in
  let spec = Range_query.Prefix "acct-" in
  let page_size = 10 in
  let pg = Range_query.page idx ~spec ~page_size () in
  let verify p = Range_query.verify_page ~root ~spec ~page_size p in
  (match verify pg with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "honest page rejected: %s" e);
  (* omitted row *)
  expect_reject "omit row" (verify (tamper_rows List.tl pg));
  (* duplicated (extra) row *)
  expect_reject "extra row"
    (verify (tamper_rows (fun rows -> List.hd rows :: rows) pg));
  (* altered row: drop the newest entry and adjust the count *)
  expect_reject "drop newest entry"
    (verify
       (tamper_rows
          (fun rows ->
            let r = List.hd rows in
            let shorter =
              List.filteri
                (fun i _ -> i < List.length r.Range_query.entries - 1)
                r.Range_query.entries
            in
            { r with Range_query.entries = shorter; total = r.Range_query.total - 1 }
            :: List.tl rows)
          pg));
  (* altered row: swap an entry's tx hash *)
  expect_reject "swap tx hash"
    (verify
       (tamper_rows
          (fun rows ->
            let r = List.hd rows in
            let entries =
              match r.Range_query.entries with
              | (jsn, _) :: rest -> (jsn, Hash.digest_string "forged") :: rest
              | [] -> []
            in
            { r with Range_query.entries } :: List.tl rows)
          pg));
  (* altered row: renumber a jsn *)
  expect_reject "renumber jsn"
    (verify
       (tamper_rows
          (fun rows ->
            let r = List.hd rows in
            let entries =
              match r.Range_query.entries with
              | (jsn, tx) :: rest -> (jsn + 1, tx) :: rest
              | [] -> []
            in
            { r with Range_query.entries } :: List.tl rows)
          pg));
  (* stale root: answer predates the latest append *)
  Query_index.add idx ~clue:"acct-alpha" ~jsn:10_000 ~tx:(Hash.digest_string "new");
  expect_reject "stale root"
    (Range_query.verify_page ~root:(Query_index.root idx) ~spec ~page_size pg)

let adversarial_window_tampering () =
  let _, idx, root = adversarial_fixture () in
  let spec = Range_query.Prefix "acct-alpha" in
  let window = { Range_query.t1 = 9; t2 = 15 } in
  let page_size = 4 in
  let pg = Range_query.page idx ~spec ~window ~page_size () in
  (match Range_query.verify_page ~root ~spec ~window ~page_size pg with
  | Ok ([ row ], None) ->
      let naive =
        List.filter (fun jsn -> jsn >= 9 && jsn <= 15)
          (Query_index.slice idx ~clue:"acct-alpha" ~offset:0 ~limit:max_int
          |> List.map fst)
      in
      check (Alcotest.list Alcotest.int) "windowed entries"
        naive
        (List.map fst row.Range_query.r_entries)
  | Ok _ -> Alcotest.fail "expected exactly one windowed row"
  | Error e -> Alcotest.failf "honest windowed page rejected: %s" e);
  (* hide the boundary witness: pretend the window suffix starts later *)
  expect_reject "hidden epoch before t1"
    (Range_query.verify_page ~root ~spec ~window ~page_size
       (tamper_rows
          (fun rows ->
            let r = List.hd rows in
            match r.Range_query.entries with
            | (jsn, tx) :: rest ->
                {
                  r with
                  Range_query.prefix_count = r.Range_query.prefix_count + 1;
                  prefix_digest =
                    Query_index.chain_step r.Range_query.prefix_digest jsn tx;
                  entries = rest;
                }
                :: List.tl rows
            | [] -> rows)
          pg));
  (* unwindowed queries must carry full lists *)
  expect_reject "suffix without window"
    (Range_query.verify_page ~root ~spec ~page_size pg)

let adversarial_page_tampering () =
  let _, idx, root = adversarial_fixture () in
  let spec = Range_query.Prefix "" in
  let page_size = 2 in
  let pages = run_paged idx ~spec ~page_size () in
  check Alcotest.bool "fixture paginates" true (List.length pages >= 3);
  (match Range_query.verify_pages ~root ~spec ~page_size pages with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "honest pages rejected: %s" e);
  let verify ps = Range_query.verify_pages ~root ~spec ~page_size ps in
  (* drop a middle page *)
  expect_reject "drop middle page"
    (verify (List.filteri (fun i _ -> i <> 1) pages));
  (* drop the final page *)
  expect_reject "truncate pages"
    (verify (List.filteri (fun i _ -> i < List.length pages - 1) pages));
  (* re-order pages *)
  expect_reject "re-order pages"
    (verify
       (match pages with
       | a :: b :: rest -> b :: a :: rest
       | _ -> assert false));
  (* duplicate a page *)
  expect_reject "duplicate page"
    (verify (List.hd pages :: pages));
  (* empty scan *)
  expect_reject "no pages" (verify [])

(* --- end to end: ledger, Service envelope, sharded scatter/merge ---------- *)

let build_ledger n =
  let clock = Clock.create () in
  let config =
    { Ledger.default_config with name = "query-e2e"; block_size = 8;
      crypto = Crypto_profile.default_simulated }
  in
  let ledger = Ledger.create ~config ~clock () in
  let user, key =
    Ledger.new_member ledger ~name:"u" ~role:Roles.Regular_user
  in
  let stream = ref [] in
  for i = 0 to n - 1 do
    Clock.advance_ms clock 10.;
    let clue = clue_pool.(i mod Array.length clue_pool) in
    let r =
      Ledger.append ledger ~member:user ~priv:key ~clues:[ clue ]
        (Bytes.of_string (Printf.sprintf "p%d" i))
    in
    stream := (clue, r.Receipt.jsn, r.Receipt.tx_hash) :: !stream
  done;
  (ledger, List.rev !stream)

(* the query root is what a replica derives by replaying committed journal
   history — the trust-anchor contract of DESIGN.md §16 *)
let query_root_replays () =
  let ledger, stream = build_ledger 30 in
  let replayed = Query_index.create () in
  List.iter
    (fun (clue, jsn, tx) -> Query_index.add replayed ~clue ~jsn ~tx)
    stream;
  check Alcotest.bool "replayed root equals the ledger's" true
    (Hash.equal (Ledger.query_root ledger) (Query_index.root replayed))

let service_end_to_end () =
  let ledger, stream = build_ledger 40 in
  let root = Ledger.query_root ledger in
  let page_size = 3 in
  List.iter
    (fun spec ->
      let rec fetch after acc guard =
        if guard > 100 then Alcotest.fail "pagination did not terminate"
        else
          let reqb =
            Service.Client.make_query_page ~spec ?after ~page_size ()
          in
          match Service.Client.parse (Service.handle ledger reqb) with
          | Some (Service.Query_page_r { page; query_root; _ }) -> (
              check Alcotest.bool "served root is the ledger's" true
                (Hash.equal query_root root);
              match page.Range_query.cursor with
              | Some c -> fetch (Some c) (page :: acc) (guard + 1)
              | None -> List.rev (page :: acc))
          | _ -> Alcotest.fail "unexpected service response"
      in
      let pages = fetch None [] 0 in
      match Range_query.verify_pages ~root ~spec ~page_size pages with
      | Error e -> Alcotest.failf "wire pages rejected: %s" e
      | Ok rows ->
          let naive = naive_filter stream ~spec ~window:None in
          if result_entries rows <> naive then
            Alcotest.fail "wire differential mismatch")
    specs_under_test

let verify_api_query_target () =
  let ledger, _ = build_ledger 30 in
  let cache = Verify_cache.create () in
  Verify_cache.attach cache ledger;
  let spec = Range_query.Prefix "a" in
  let window = Some { Range_query.t1 = 5; t2 = 20 } in
  let target = Verify_api.Query_complete { spec; window; page_size = 2 } in
  let o1 = Verify_api.verify ~cache ledger ~level:Verify_api.Client target in
  check Alcotest.bool "client level ok" true o1.Verify_api.ok;
  let o2 = Verify_api.verify ~cache ledger ~level:Verify_api.Client target in
  check Alcotest.bool "cached verdict ok" true o2.Verify_api.ok;
  check Alcotest.string "second ask hits the cache" "cache: verdict reused"
    o2.Verify_api.detail;
  let o3 = Verify_api.verify ledger ~level:Verify_api.Server target in
  check Alcotest.bool "server level ok" true o3.Verify_api.ok

let fleet_shards = 3

let build_fleet n =
  let module SL = Ledger_shard.Sharded_ledger in
  let clock = Clock.create () in
  let config =
    {
      SL.base =
        { Ledger.default_config with name = "query-fleet"; block_size = 8;
          crypto = Crypto_profile.default_simulated };
      shards = fleet_shards;
    }
  in
  let fleet = SL.create ~config ~clock () in
  let user, key = SL.new_member fleet ~name:"u" ~role:Roles.Regular_user in
  let counts = Hashtbl.create 16 in
  for i = 0 to n - 1 do
    Clock.advance_ms clock 10.;
    let clue = clue_pool.(i mod Array.length clue_pool) in
    ignore
      (SL.append fleet ~member:user ~priv:key ~clues:[ clue ]
         (Bytes.of_string (Printf.sprintf "p%d" i)));
    Hashtbl.replace counts clue
      (1 + Option.value (Hashtbl.find_opt counts clue) ~default:0)
  done;
  (fleet, counts)

let sharded_scatter_merge () =
  let module SL = Ledger_shard.Sharded_ledger in
  let module SS = Ledger_shard.Sharded_service in
  let module SQ = Ledger_shard.Sharded_query in
  let fleet, counts = build_fleet 40 in
  let sealed =
    match SL.seal_epoch fleet with
    | Ok s -> s
    | Error e -> Alcotest.failf "seal refused: %s" e
  in
  let page_size = 2 in
  List.iter
    (fun spec ->
      let reqb = SS.Client.make_query_scatter ~spec ~page_size () in
      match SS.Client.parse (SS.handle fleet reqb) with
      | Some (SS.Query_scatter_r sc) -> (
          (* the scatter must survive its own wire codec *)
          let sc =
            match SQ.decode_scatter (SQ.encode_scatter sc) with
            | Some sc -> sc
            | None -> Alcotest.fail "scatter codec roundtrip failed"
          in
          match
            SQ.merge ~sealed ~shards:fleet_shards ~spec ~page_size sc
          with
          | Error e -> Alcotest.failf "merge rejected: %s" e
          | Ok rows ->
              (* each matching clue appears exactly once, globally ordered,
                 with its fleet-wide total *)
              let expect =
                Hashtbl.fold
                  (fun c n acc ->
                    if Range_query.spec_matches spec c then (c, n) :: acc
                    else acc)
                  counts []
                |> List.sort compare
              in
              let got =
                List.map
                  (fun (r : Range_query.result_row) ->
                    (r.Range_query.r_clue, r.Range_query.r_total))
                  rows
              in
              check
                (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
                "fleet-wide clue totals" expect got)
      | _ -> Alcotest.fail "unexpected scatter response")
    specs_under_test

let sharded_adversarial () =
  let module SL = Ledger_shard.Sharded_ledger in
  let module SQ = Ledger_shard.Sharded_query in
  let fleet, _ = build_fleet 40 in
  let sealed =
    match SL.seal_epoch fleet with
    | Ok s -> s
    | Error e -> Alcotest.failf "seal refused: %s" e
  in
  let spec = Range_query.Prefix "" in
  let page_size = 3 in
  let sc = SQ.scatter fleet ~spec ~page_size () in
  let merge ?(sealed = sealed) ?(shards = fleet_shards) sc =
    SQ.merge ~sealed ~shards ~spec ~page_size sc
  in
  (match merge sc with
  | Ok rows -> check Alcotest.bool "honest merge has rows" true (rows <> [])
  | Error e -> Alcotest.failf "honest merge rejected: %s" e);
  let answers = sc.SQ.answers in
  check Alcotest.int "fixture fleet width" fleet_shards (List.length answers);
  (* a dropped shard answer cannot pass as a complete result *)
  expect_reject "drop a shard answer"
    (merge { sc with SQ.answers = List.tl answers });
  (* one shard answering twice, shadowing another *)
  expect_reject "shard answers twice"
    (merge
       { sc with
         SQ.answers =
           (match answers with
           | a :: _ :: rest -> a :: a :: rest
           | _ -> assert false) });
  (* swapped shard ids: pages still verify against their roots, but the
     placement re-check sees clues answered by a non-owner *)
  expect_reject "swap shard ids"
    (merge
       { sc with
         SQ.answers =
           (match answers with
           | a :: b :: rest ->
               { a with SQ.shard = b.SQ.shard }
               :: { b with SQ.shard = a.SQ.shard }
               :: rest
           | _ -> assert false) });
  (* foreign query root *)
  expect_reject "foreign query root"
    (merge
       { sc with
         SQ.answers =
           (match answers with
           | a :: b :: rest ->
               { a with SQ.query_root = b.SQ.query_root } :: b :: rest
           | _ -> assert false) });
  (* claimed fleet size disagrees with the client's topology *)
  expect_reject "wrong fleet width" (merge ~shards:(fleet_shards + 1) sc);
  (* epoch pinning: an answer from after the seal is refused under ~sealed *)
  let user2, key2 = SL.new_member fleet ~name:"late" ~role:Roles.Regular_user in
  ignore
    (SL.append fleet ~member:user2 ~priv:key2 ~clues:[ "zeta" ]
       (Bytes.of_string "post-seal"));
  let sc2 = SQ.scatter fleet ~spec ~page_size () in
  expect_reject "post-seal answer pinned to old epoch" (merge sc2)

let suite =
  [
    qcheck ordered_iteration_agrees;
    qcheck take_range_agrees;
    qcheck adjacent_agrees;
    qcheck absence_roundtrip;
    qcheck absence_rejects_wrong_boundaries;
    qcheck absence_rejects_present_key;
    qcheck range_proof_agrees;
    qcheck range_proof_rejects_wrong_root;
    qcheck range_proof_bitflip;
    tc "ccmpt proof codec + bit-flips" `Quick ccmpt_codec_roundtrip;
    qcheck ccmpt_slice_agrees;
    qcheck paged_query_differential;
    qcheck wire_roundtrip_pages;
    tc "adversarial: row tampering" `Quick adversarial_row_tampering;
    tc "adversarial: window tampering" `Quick adversarial_window_tampering;
    tc "adversarial: page tampering" `Quick adversarial_page_tampering;
    tc "e2e: query root = journal replay" `Quick query_root_replays;
    tc "e2e: Service envelope differential" `Quick service_end_to_end;
    tc "e2e: Verify API target + cache" `Quick verify_api_query_target;
    tc "e2e: sharded scatter/merge differential" `Quick sharded_scatter_merge;
    tc "e2e: sharded adversarial gates" `Quick sharded_adversarial;
  ]
