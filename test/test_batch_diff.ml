(* Differential property test: batched and one-at-a-time commits must
   produce byte-identical histories.

   Two ledgers share one deterministic config.  The reference ledger
   commits every entry immediately through {!Ledger.append}; the batched
   ledger buffers entries and pushes them through {!Ledger.append_batch}
   at Flush/Seal points.  Crypto cost is zeroed and the two simulated
   clocks are advanced in lockstep only after Flush/Seal ops, so every
   timestamp, nonce and signature is determined purely by the sequence
   of entries — any byte of divergence (commitment, cm root, world
   state, blocks, journals, receipts, proofs) is a batching bug. *)

open Ledger_crypto
open Ledger_storage
open Ledger_merkle
open Ledger_cmtree
open Ledger_core

type op = Append of int * int | Flush | Seal

let op_to_string = function
  | Append (p, c) -> Printf.sprintf "Append(%d,%d)" p c
  | Flush -> "Flush"
  | Seal -> "Seal"

let print_ops ops = String.concat "; " (List.map op_to_string ops)

let diff_config =
  { Ledger.default_config with
    name = "diff";
    block_size = 4;
    fam_delta = 3;
    latency = Latency_model.free;
    (* zero-cost crypto: sign/verify must not advance the clock, or the
       batched side (which signs at flush time) would drift from the
       reference side (which signs at append time) *)
    crypto = Crypto_profile.Simulated { sign_us = 0.; verify_us = 0. } }

let mk_ledger () =
  let clock = Clock.create () in
  let ledger = Ledger.create ~config:diff_config ~clock () in
  let user, key = Ledger.new_member ledger ~name:"duser" ~role:Roles.Regular_user in
  (clock, ledger, user, key)

let clues_of = function
  | 0 | 1 | 2 -> [ "k" ^ string_of_int 0 ]
  | 3 -> [ "k1" ]
  | 4 -> [ "k0"; "k1" ]
  | _ -> []

let payload_of p = Bytes.of_string (Printf.sprintf "payload-%d" p)

(* Run the op sequence against both ledgers; the batched side buffers
   appends and commits them in one {!Ledger.append_batch} per Flush/Seal. *)
let run_pair ops =
  let clock_a, a, user_a, key_a = mk_ledger () in
  let clock_b, b, user_b, key_b = mk_ledger () in
  let buffer = ref [] in
  let flush_b () =
    match List.rev !buffer with
    | [] -> ()
    | entries ->
        buffer := [];
        ignore (Ledger.append_batch b ~member:user_b ~priv:key_b ~seal:false entries)
  in
  let advance_both ms =
    Clock.advance_ms clock_a ms;
    Clock.advance_ms clock_b ms
  in
  List.iter
    (fun op ->
      match op with
      | Append (p, c) ->
          let payload = payload_of p and clues = clues_of c in
          ignore (Ledger.append a ~member:user_a ~priv:key_a ~clues payload);
          buffer := (payload, clues) :: !buffer
      | Flush ->
          flush_b ();
          advance_both 5.
      | Seal ->
          flush_b ();
          Ledger.seal_block a;
          Ledger.seal_block b;
          advance_both 5.)
    ops;
  flush_b ();
  Ledger.seal_block a;
  Ledger.seal_block b;
  (a, b)

let receipt_bytes r =
  let w = Wire.writer () in
  Service.w_receipt w r;
  Wire.contents w

let fail fmt = Printf.ksprintf (fun s -> QCheck.Test.fail_report s) fmt

let check_equal_histories a b =
  if Ledger.size a <> Ledger.size b then
    fail "size: %d vs %d" (Ledger.size a) (Ledger.size b);
  if not (Hash.equal (Ledger.commitment a) (Ledger.commitment b)) then
    fail "commitment diverged";
  if not (Hash.equal (Cm_tree.root_hash (Ledger.cm_tree a))
            (Cm_tree.root_hash (Ledger.cm_tree b))) then
    fail "cm-tree root diverged";
  if not (Option.equal Hash.equal (Ledger.world_state_root a)
            (Ledger.world_state_root b)) then
    fail "world-state root diverged";
  if Ledger.block_count a <> Ledger.block_count b then
    fail "block count: %d vs %d" (Ledger.block_count a) (Ledger.block_count b);
  List.iteri
    (fun h (ba, bb) ->
      let ea = Service.encode_response (Service.Block_r ba)
      and eb = Service.encode_response (Service.Block_r bb) in
      if not (Bytes.equal ea eb) then fail "block %d diverged" h)
    (List.combine (Ledger.blocks a) (Ledger.blocks b));
  for jsn = 0 to Ledger.size a - 1 do
    if not (Hash.equal (Ledger.tx_hash_of a jsn) (Ledger.tx_hash_of b jsn)) then
      fail "tx hash %d diverged" jsn;
    let ja = Journal_codec.encode (Ledger.journal a jsn)
    and jb = Journal_codec.encode (Ledger.journal b jsn) in
    if not (Bytes.equal ja jb) then fail "journal %d diverged" jsn;
    let ra = receipt_bytes (Ledger.get_receipt a jsn)
    and rb = receipt_bytes (Ledger.get_receipt b jsn) in
    if not (Bytes.equal ra rb) then fail "receipt %d diverged" jsn;
    let pa = Proof_codec.encode_fam_proof (Ledger.get_proof a jsn)
    and pb = Proof_codec.encode_fam_proof (Ledger.get_proof b jsn) in
    if not (Bytes.equal pa pb) then fail "fam proof %d diverged" jsn
  done;
  List.iter
    (fun clue ->
      let enc l =
        Service.encode_response
          (Service.Clue_proof_r (Ledger.prove_clue l ~clue ()))
      in
      if not (Bytes.equal (enc a) (enc b)) then fail "clue proof %s diverged" clue)
    [ "k0"; "k1" ];
  true

let op_gen =
  QCheck.Gen.(
    frequency
      [ (8, map2 (fun p c -> Append (p, c)) (int_bound 999) (int_bound 4));
        (3, return Flush);
        (2, return Seal) ])

let arb_ops =
  QCheck.make ~print:print_ops QCheck.Gen.(list_size (int_range 5 40) op_gen)

(* ISSUE acceptance: >= 100 random interleavings of append/flush/seal. *)
let prop_batched_equals_unbatched =
  QCheck.Test.make ~name:"batched history == unbatched history" ~count:120
    arb_ops
    (fun ops ->
      let a, b = run_pair ops in
      check_equal_histories a b)

(* Deterministic edge: one batch spanning several blocks and a fam epoch
   roll, plus an empty batch, equals the sequential history. *)
let test_large_batch_edge () =
  let _, a, user_a, key_a = mk_ledger () in
  let _, b, user_b, key_b = mk_ledger () in
  let entries =
    List.init 40 (fun i -> (payload_of i, clues_of (i mod 5)))
  in
  List.iter
    (fun (payload, clues) ->
      ignore (Ledger.append a ~member:user_a ~priv:key_a ~clues payload))
    entries;
  Ledger.seal_block a;
  (match Ledger.append_batch b ~member:user_b ~priv:key_b [] with
  | [] -> ()
  | _ -> Alcotest.fail "empty batch returned receipts");
  let receipts = Ledger.append_batch b ~member:user_b ~priv:key_b entries in
  Alcotest.(check int) "receipt count" 40 (List.length receipts);
  List.iteri
    (fun i r ->
      Alcotest.(check bool)
        (Printf.sprintf "receipt %d verifies" i)
        true (Ledger.verify_receipt b r))
    receipts;
  Alcotest.(check bool) "identical histories" true (check_equal_histories a b);
  let audit = Audit.run b in
  Alcotest.(check bool) "batched ledger passes audit" true audit.Audit.ok

(* --- batcher delay-policy boundaries --------------------------------------- *)

(* diff_config charges nothing for latency or crypto, so the clock moves
   only when the test advances it — the deadline comparisons below are
   exact, not approximate. *)

let test_flush_exactly_at_deadline () =
  let clock, ledger, user, key = mk_ledger () in
  let b =
    Batcher.create
      ~policy:{ Batcher.max_entries = 100; max_delay_us = 1000L;
                seal_on_flush = false }
      ledger ~member:user ~priv:key
  in
  Alcotest.(check int) "submit buffers" 0
    (List.length (Batcher.submit b (payload_of 0)));
  Clock.advance clock 999L;
  Alcotest.(check int) "one tick before the deadline: nothing" 0
    (List.length (Batcher.tick b));
  Clock.advance clock 1L;
  Alcotest.(check int) "exactly at the deadline: flushed" 1
    (List.length (Batcher.tick b));
  Alcotest.(check int) "buffer drained" 0 (Batcher.pending b)

let test_zero_delay_policy () =
  let _, ledger, user, key = mk_ledger () in
  let b =
    Batcher.create
      ~policy:{ Batcher.max_entries = 100; max_delay_us = 0L;
                seal_on_flush = false }
      ledger ~member:user ~priv:key
  in
  (* a zero delay bound degenerates to unbatched commits: every submit
     flushes immediately, nothing ever waits *)
  for i = 0 to 4 do
    Alcotest.(check int)
      (Printf.sprintf "submit %d flushes itself" i)
      1
      (List.length (Batcher.submit b (payload_of i)));
    Alcotest.(check int) "nothing pending" 0 (Batcher.pending b)
  done;
  Alcotest.(check int) "five one-entry flushes" 5 (Batcher.flushes b)

let test_close_drains_buffer () =
  let _, ledger, user, key = mk_ledger () in
  let b =
    Batcher.create
      ~policy:{ Batcher.max_entries = 10; max_delay_us = Int64.max_int;
                seal_on_flush = false }
      ledger ~member:user ~priv:key
  in
  for i = 0 to 2 do
    ignore (Batcher.submit b (payload_of i))
  done;
  Alcotest.(check int) "three buffered" 3 (Batcher.pending b);
  Alcotest.(check int) "close drains all three" 3
    (List.length (Batcher.close b));
  Alcotest.(check int) "ledger committed them" 3 (Ledger.size ledger);
  Alcotest.(check int) "second close is empty" 0
    (List.length (Batcher.close b));
  Alcotest.check_raises "submit after close refused"
    (Invalid_argument "Batcher.submit: batcher is closed") (fun () ->
      ignore (Batcher.submit b (payload_of 9)));
  Alcotest.check_raises "tick after close refused"
    (Invalid_argument "Batcher.tick: batcher is closed") (fun () ->
      ignore (Batcher.tick b))

let suite =
  [ QCheck_alcotest.to_alcotest prop_batched_equals_unbatched;
    Alcotest.test_case "large batch spans blocks and epochs" `Quick
      test_large_batch_edge;
    Alcotest.test_case "batcher flushes exactly at the deadline" `Quick
      test_flush_exactly_at_deadline;
    Alcotest.test_case "zero-delay policy never buffers" `Quick
      test_zero_delay_policy;
    Alcotest.test_case "close drains the buffer" `Quick
      test_close_drains_buffer ]
