(* Sharded fleet tests: routing, super-root commitments, cross-shard
   verification, the routed service and the fleet replica.

   The two load-bearing properties are differential:
   - a 1-shard fleet commits a history byte-identical to a plain
     {!Ledger.t} driven with the same operations (same keys, same
     timestamps, same wire bytes), and
   - with N > 1 every committed entry verifies through
     {!Verify_api.verify_sharded} against the epoch super-root, and a
     purge/occult on one shard invalidates only that shard's cached
     verdicts. *)

open Ledger_crypto
open Ledger_storage
open Ledger_core
module SL = Ledger_shard.Sharded_ledger
module SR = Ledger_shard.Super_root
module SV = Ledger_shard.Verify_api
module SS = Ledger_shard.Sharded_service
module Router = Ledger_shard.Shard_router

let tc = Alcotest.test_case

let fleet_config ?(name = "fleet") shards =
  {
    SL.base =
      { Ledger.default_config with name; block_size = 4; fam_delta = 3;
        latency = Latency_model.free;
        crypto = Crypto_profile.Simulated { sign_us = 0.; verify_us = 0. } };
    shards;
  }

let payload_of i = Bytes.of_string (Printf.sprintf "shard-payload-%d" i)

(* --- router ----------------------------------------------------------------- *)

let test_router_deterministic () =
  let r = Router.create ~shards:4 in
  for i = 0 to 99 do
    let clues = [ "clue-" ^ string_of_int i ] in
    let payload = payload_of i in
    let a = Router.route r ~clues ~payload in
    Alcotest.(check int)
      (Printf.sprintf "stable route %d" i)
      a
      (Router.route r ~clues ~payload);
    Alcotest.(check bool) "in range" true (a >= 0 && a < 4)
  done;
  (* no clues: placement falls back to the payload digest, still stable *)
  let a = Router.route r ~clues:[] ~payload:(payload_of 1) in
  Alcotest.(check int) "payload route stable" a
    (Router.route r ~clues:[] ~payload:(payload_of 1));
  (* a single-shard fleet routes everything to shard 0 *)
  let one = Router.create ~shards:1 in
  Alcotest.(check int) "single shard" 0
    (Router.route one ~clues:[ "x" ] ~payload:(payload_of 0));
  Alcotest.check_raises "zero shards refused"
    (Invalid_argument "Shard_router.create: shards must be in [1,1024]")
    (fun () -> ignore (Router.create ~shards:0))

let test_router_spreads () =
  let shards = 8 in
  let r = Router.create ~shards in
  let hit = Array.make shards false in
  for i = 0 to 255 do
    hit.(Router.route_clue r ("spread-" ^ string_of_int i)) <- true
  done;
  Array.iteri
    (fun s h -> Alcotest.(check bool) (Printf.sprintf "shard %d hit" s) true h)
    hit

(* --- super-root ------------------------------------------------------------- *)

let mk_sealed ?(epoch = 3) n =
  SR.seal ~epoch ~at:99L
    (Array.init n (fun i -> (Hash.digest_string (Printf.sprintf "r%d" i), i * 7)))

let test_super_root_prove_verify () =
  let n = 5 in
  let sealed = mk_sealed n in
  let super = SR.commitment sealed in
  for s = 0 to n - 1 do
    let inc = SR.prove sealed ~shard:s in
    Alcotest.(check bool) (Printf.sprintf "shard %d included" s) true
      (SR.verify ~super inc);
    (* a different epoch's commitment must reject the same inclusion *)
    let other = SR.commitment (mk_sealed ~epoch:4 n) in
    Alcotest.(check bool) "wrong epoch rejected" false (SR.verify ~super:other inc);
    (* a tampered shard root must not chain to the super-root *)
    let forged = { inc with SR.shard_root = Hash.digest_string "forged" } in
    Alcotest.(check bool) "forged root rejected" false (SR.verify ~super forged)
  done;
  Alcotest.check_raises "empty fleet refused"
    (Invalid_argument "Super_root.seal: empty fleet") (fun () ->
      ignore (SR.seal ~epoch:0 ~at:0L [||]))

let test_super_root_codec () =
  let sealed = mk_sealed 4 in
  (match SR.decode_sealed (SR.encode_sealed sealed) with
  | None -> Alcotest.fail "sealed roundtrip failed"
  | Some s ->
      Alcotest.(check bool) "commitment survives" true
        (Hash.equal (SR.commitment sealed) (SR.commitment s));
      Alcotest.(check int) "epoch survives" sealed.SR.epoch s.SR.epoch);
  (* the decoder re-derives the tree: a frame whose announced root does
     not match its own leaves is refused, not half-trusted *)
  let raw = SR.encode_sealed sealed in
  Bytes.set raw (Bytes.length raw / 2)
    (Char.chr ((Char.code (Bytes.get raw (Bytes.length raw / 2)) + 1) land 0xff));
  (match SR.decode_sealed raw with
  | None -> ()
  | Some _ -> Alcotest.fail "tampered sealed frame accepted");
  let inc = SR.prove sealed ~shard:2 in
  match SR.decode_inclusion (SR.encode_inclusion inc) with
  | None -> Alcotest.fail "inclusion roundtrip failed"
  | Some i ->
      Alcotest.(check bool) "decoded inclusion verifies" true
        (SR.verify ~super:(SR.commitment sealed) i)

(* --- differential: 1-shard fleet == plain ledger --------------------------- *)

type op = Append of int * int | Seal

let op_to_string = function
  | Append (p, c) -> Printf.sprintf "Append(%d,%d)" p c
  | Seal -> "Seal"

let clues_of = function
  | 0 | 1 | 2 -> [ "k0" ]
  | 3 -> [ "k1" ]
  | 4 -> [ "k0"; "k1" ]
  | _ -> []

let prop_one_shard_equals_unsharded =
  let arb =
    QCheck.make
      ~print:(fun ops -> String.concat "; " (List.map op_to_string ops))
      QCheck.Gen.(
        list_size (int_range 5 40)
          (frequency
             [ (8, map2 (fun p c -> Append (p, c)) (int_bound 999) (int_bound 4));
               (2, return Seal) ]))
  in
  QCheck.Test.make ~name:"1-shard fleet == unsharded ledger" ~count:60 arb
    (fun ops ->
      let clock_a = Clock.create () in
      let a = Ledger.create ~config:Test_batch_diff.diff_config ~clock:clock_a () in
      let user_a, key_a =
        Ledger.new_member a ~name:"duser" ~role:Roles.Regular_user
      in
      let clock_b = Clock.create () in
      let fleet =
        SL.create
          ~config:{ SL.base = Test_batch_diff.diff_config; shards = 1 }
          ~clock:clock_b ()
      in
      let user_b, key_b = SL.new_member fleet ~name:"duser" ~role:Roles.Regular_user in
      List.iter
        (fun op ->
          match op with
          | Append (p, c) ->
              let payload = Test_batch_diff.payload_of p and clues = clues_of c in
              ignore (Ledger.append a ~member:user_a ~priv:key_a ~clues payload);
              ignore (SL.append fleet ~member:user_b ~priv:key_b ~clues payload)
          | Seal ->
              Ledger.seal_block a;
              (match SL.seal_epoch fleet with
              | Ok _ -> ()
              | Error e -> QCheck.Test.fail_report ("seal refused: " ^ e));
              Clock.advance_ms clock_a 5.;
              Clock.advance_ms clock_b 5.)
        ops;
      Ledger.seal_block a;
      (match SL.seal_epoch fleet with
      | Ok _ -> ()
      | Error e -> QCheck.Test.fail_report ("final seal refused: " ^ e));
      Test_batch_diff.check_equal_histories a (SL.shard fleet 0))

(* --- cross-shard verification ---------------------------------------------- *)

let build_fleet ?(name = "xshard") ?(entries = 30) shards =
  let clock = Clock.create () in
  let fleet = SL.create ~config:(fleet_config ~name shards) ~clock () in
  let user, key = SL.new_member fleet ~name:"xuser" ~role:Roles.Regular_user in
  let committed =
    List.init entries (fun i ->
        SL.append fleet ~member:user ~priv:key
          ~clues:[ "xc" ^ string_of_int i ]
          (payload_of i))
  in
  (clock, fleet, user, key, committed)

let test_cross_shard_verifies () =
  let shards = 3 in
  let _, fleet, _, _, committed = build_fleet shards in
  let sealed =
    match SL.seal_epoch fleet with
    | Ok s -> s
    | Error e -> Alcotest.fail ("seal refused: " ^ e)
  in
  let super = SR.commitment sealed in
  Alcotest.(check int) "all entries placed" 30 (SL.total_size fleet);
  List.iteri
    (fun i (shard, (r : Receipt.t)) ->
      let o =
        SV.verify_sharded fleet ~level:SV.Client ~shard
          (SV.Existence
             { jsn = r.Receipt.jsn;
               payload_digest = Some (Hash.digest_bytes (payload_of i)) })
      in
      Alcotest.(check bool) (Printf.sprintf "entry %d verifies" i) true
        o.SV.outcome.SV.ok;
      match o.SV.super with
      | Some s ->
          Alcotest.(check bool)
            (Printf.sprintf "entry %d pinned to super-root" i)
            true (Hash.equal s super)
      | None -> Alcotest.fail "verdict not pinned to the sealed epoch")
    committed;
  (* the composed proof objects round-trip the wire and replay *)
  for s = 0 to shards - 1 do
    if Ledger.size (SL.shard fleet s) > 0 then begin
      let proof =
        match SL.prove fleet ~shard:s ~jsn:0 with
        | Ok p -> p
        | Error e -> Alcotest.fail ("prove refused: " ^ e)
      in
      Alcotest.(check bool) "sharded proof verifies" true
        (SL.verify_proof fleet ~super proof);
      Alcotest.(check bool) "wrong super rejected" false
        (SL.verify_proof fleet ~super:(Hash.digest_string "not-the-root") proof);
      match SL.decode_sharded_proof (SL.encode_sharded_proof proof) with
      | None -> Alcotest.fail "sharded proof roundtrip failed"
      | Some p ->
          Alcotest.(check bool) "decoded proof verifies" true
            (SL.verify_proof fleet ~super p)
    end
  done

let test_prove_refused_past_seal () =
  let _, fleet, user, key, _ = build_fleet ~name:"stale" 2 in
  (match SL.prove fleet ~shard:0 ~jsn:0 with
  | Ok _ -> Alcotest.fail "proved with no sealed epoch"
  | Error _ -> ());
  (match SL.seal_epoch fleet with Ok _ -> () | Error e -> Alcotest.fail e);
  (* commit past the seal on one shard: its proofs must dangle no more *)
  let shard, _ =
    SL.append fleet ~member:user ~priv:key ~clues:[ "post-seal" ]
      (Bytes.of_string "past the seal")
  in
  (match SL.prove fleet ~shard ~jsn:0 with
  | Ok _ -> Alcotest.fail "proof served against a stale sealed root"
  | Error e ->
      Alcotest.(check bool) "error says reseal" true
        (String.length e > 0));
  (* resealing restores service *)
  (match SL.seal_epoch fleet with Ok _ -> () | Error e -> Alcotest.fail e);
  match SL.prove fleet ~shard ~jsn:0 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("prove after reseal refused: " ^ e)

(* --- per-shard cache invalidation ------------------------------------------ *)

let test_mutation_invalidates_one_shard () =
  let clock = Clock.create () in
  let fleet = SL.create ~config:(fleet_config ~name:"mut" 2) ~clock () in
  let user, key = SL.new_member fleet ~name:"muser" ~role:Roles.Regular_user in
  let dba, dba_key = SL.new_member fleet ~name:"mdba" ~role:Roles.Dba in
  let reg, reg_key = SL.new_member fleet ~name:"mreg" ~role:Roles.Regulator in
  let committed =
    List.init 24 (fun i ->
        SL.append fleet ~member:user ~priv:key
          ~clues:[ "mc" ^ string_of_int i ]
          (payload_of i))
  in
  (match SL.seal_epoch fleet with Ok _ -> () | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "both shards populated" true
    (Ledger.size (SL.shard fleet 0) > 1 && Ledger.size (SL.shard fleet 1) > 1);
  let verify_all () =
    List.iter
      (fun (shard, (r : Receipt.t)) ->
        ignore
          (SV.verify_sharded fleet ~level:SV.Client ~shard
             (SV.Existence { jsn = r.Receipt.jsn; payload_digest = None })))
      committed
  in
  verify_all ();
  verify_all ();
  Alcotest.(check bool) "shard 0 cache warm" true
    (Verify_cache.hits (SL.shard_cache fleet 0) > 0);
  Alcotest.(check bool) "shard 1 cache warm" true
    (Verify_cache.hits (SL.shard_cache fleet 1) > 0);
  let cached_1 = Verify_cache.size (SL.shard_cache fleet 1) in
  (* occult one journal on shard 0: the attached cache must drop shard
     0's verdicts while shard 1's stay warm *)
  (match
     Ledger.occult (SL.shard fleet 0) ~target_jsn:0 ~mode:Ledger.Sync
       ~signers:[ (dba, dba_key); (reg, reg_key) ]
       ~reason:"pii"
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("occult refused: " ^ e));
  Alcotest.(check int) "shard 0 verdicts dropped" 0
    (Verify_cache.size (SL.shard_cache fleet 0));
  Alcotest.(check int) "shard 1 verdicts kept" cached_1
    (Verify_cache.size (SL.shard_cache fleet 1));
  (* shard 0 has outrun its sealed root, so fresh verdicts there are no
     longer pinned to the stale epoch — shard 1's still are *)
  let jsn_of s =
    let _, (r : Receipt.t) = List.find (fun (sh, _) -> sh = s) committed in
    r.Receipt.jsn
  in
  let o0 =
    SV.verify_sharded fleet ~level:SV.Server ~shard:0
      (SV.Existence { jsn = jsn_of 0; payload_digest = None })
  in
  Alcotest.(check bool) "shard 0 still verifies" true o0.SV.outcome.SV.ok;
  Alcotest.(check bool) "shard 0 unpinned from stale epoch" true
    (o0.SV.super = None);
  let o1 =
    SV.verify_sharded fleet ~level:SV.Server ~shard:1
      (SV.Existence { jsn = jsn_of 1; payload_digest = None })
  in
  Alcotest.(check bool) "shard 1 still verifies" true o1.SV.outcome.SV.ok;
  Alcotest.(check bool) "shard 1 still pinned" true (o1.SV.super <> None)

(* --- routed service --------------------------------------------------------- *)

let test_service_roundtrip () =
  let clock = Clock.create () in
  (* the remote append path re-checks real client signatures, so this
     test runs the Real crypto profile like the unsharded service tests *)
  let config =
    let base = fleet_config ~name:"svc" 2 in
    { base with SL.base = { base.SL.base with Ledger.crypto = Crypto_profile.Real } }
  in
  let fleet = SL.create ~config ~clock () in
  let user, key = SL.new_member fleet ~name:"suser" ~role:Roles.Regular_user in
  let transport req = SS.handle fleet req in
  let client = SS.Client.create ~config ~member:user ~priv:key () in
  (match SS.Client.parse (transport (SS.Client.make_get_topology ())) with
  | Some (SS.Topology_r { name; shards }) ->
      Alcotest.(check string) "topology name" "svc" name;
      Alcotest.(check int) "topology shards" 2 shards
  | _ -> Alcotest.fail "bad topology response");
  let appended =
    List.init 12 (fun i ->
        Clock.advance_ms clock 10.;
        let shard, req =
          SS.Client.make_append client
            ~clues:[ "sc" ^ string_of_int i ]
            ~client_ts:(Clock.now clock) (payload_of i)
        in
        match SS.Client.parse_from_shard (transport req) with
        | Some (s, Service.Receipt_r r) ->
            Alcotest.(check int) "dispatcher agrees with client route" shard s;
            (s, r)
        | _ -> Alcotest.fail (Printf.sprintf "append %d not accepted" i))
  in
  let sealed =
    match SS.Client.parse (transport (SS.Client.make_seal_epoch ())) with
    | Some (SS.Sealed_r s) -> s
    | _ -> Alcotest.fail "seal over the wire failed"
  in
  (match SS.Client.parse (transport (SS.Client.make_get_super_root ())) with
  | Some (SS.Super_root_r (Some s)) ->
      Alcotest.(check bool) "latest super-root matches" true
        (Hash.equal (SR.commitment s) (SR.commitment sealed))
  | _ -> Alcotest.fail "no super-root announced");
  let shard, (r : Receipt.t) = List.hd appended in
  (match
     SS.Client.parse
       (transport (SS.Client.make_get_sharded_proof ~shard ~jsn:r.Receipt.jsn))
   with
  | Some (SS.Sharded_proof_r p) ->
      Alcotest.(check bool) "served proof verifies" true
        (SL.verify_proof fleet ~super:(SR.commitment sealed) p)
  | _ -> Alcotest.fail "no sharded proof served");
  (* routing integrity: an append signed for shard A, misdelivered to
     shard B, must be rejected by B's signature check *)
  let a_shard, routed = SS.Client.make_append client ~clues:[ "sc0" ]
      ~client_ts:(Clock.now clock) (Bytes.of_string "misrouted") in
  let inner =
    match SS.decode_request routed with
    | Some (SS.Routed_append { inner }) -> inner
    | _ -> Alcotest.fail "unexpected request shape"
  in
  let wrong = (a_shard + 1) mod 2 in
  match SS.Client.parse_from_shard (transport (SS.Client.make_to_shard ~shard:wrong inner)) with
  | Some (_, Service.Receipt_r _) ->
      Alcotest.fail "misrouted append accepted by the wrong shard"
  | Some (_, Service.Error_r _) | None -> ()
  | Some _ -> Alcotest.fail "unexpected response to misrouted append"

(* --- fleet replica ----------------------------------------------------------- *)

let fresh_dir () =
  let d = Filename.temp_file "shardrepl" "pull" in
  Sys.remove d;
  d

let test_replica_pull_all () =
  let clock = Clock.create () in
  let config = fleet_config ~name:"repl" 2 in
  let fleet = SL.create ~config ~clock () in
  let user, key = SL.new_member fleet ~name:"puser" ~role:Roles.Regular_user in
  for i = 0 to 19 do
    ignore
      (SL.append fleet ~member:user ~priv:key
         ~clues:[ "pc" ^ string_of_int i ]
         (payload_of i))
  done;
  let sealed =
    match SL.seal_epoch fleet with Ok s -> s | Error e -> Alcotest.fail e
  in
  let transport req = SS.handle fleet req in
  let pull_clock = Clock.create () in
  let scratch = fresh_dir () in
  let fl =
    match
      Ledger_shard.Sharded_replica.pull_all ~transport ~config
        ~clock:pull_clock ~scratch_dir:scratch ()
    with
    | Ok fl -> fl
    | Error e ->
        Alcotest.fail (Ledger_shard.Sharded_replica.error_to_string e)
  in
  Alcotest.(check int) "both shards pulled" 2
    (Array.length fl.Ledger_shard.Sharded_replica.shards);
  Array.iteri
    (fun i replica ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d replica matches sealed root" i)
        true
        (Hash.equal (Ledger.commitment replica) sealed.SR.shard_roots.(i)))
    fl.Ledger_shard.Sharded_replica.shards;
  (match fl.Ledger_shard.Sharded_replica.super with
  | Some s ->
      Alcotest.(check bool) "announced super-root validates" true
        (Hash.equal (SR.commitment s) (SR.commitment sealed))
  | None -> Alcotest.fail "no super-root pulled");
  (* a second pull into the same scratch dir resumes per shard instead
     of refetching every journal *)
  let fl2 =
    match
      Ledger_shard.Sharded_replica.pull_all ~transport ~config
        ~clock:pull_clock ~scratch_dir:scratch ()
    with
    | Ok fl -> fl
    | Error e ->
        Alcotest.fail (Ledger_shard.Sharded_replica.error_to_string e)
  in
  Array.iter
    (fun (st : Replica.stats) ->
      Alcotest.(check bool) "resumed from the staged pull" true
        (st.Replica.resumed_from > 0))
    fl2.Ledger_shard.Sharded_replica.stats

let suite =
  [
    tc "router is deterministic and in range" `Quick test_router_deterministic;
    tc "router spreads distinct clues" `Quick test_router_spreads;
    tc "super-root proves and verifies inclusion" `Quick
      test_super_root_prove_verify;
    tc "super-root wire codecs refuse tampering" `Quick test_super_root_codec;
    QCheck_alcotest.to_alcotest prop_one_shard_equals_unsharded;
    tc "every entry verifies against the super-root" `Quick
      test_cross_shard_verifies;
    tc "proofs refused past the sealed root" `Quick test_prove_refused_past_seal;
    tc "mutation invalidates only the owning shard" `Quick
      test_mutation_invalidates_one_shard;
    tc "routed service round-trip" `Quick test_service_roundtrip;
    tc "fleet replica pulls and resumes per shard" `Quick test_replica_pull_all;
  ]
