(* Tests for ledger persistence and recovery: full round trips including
   occult/purge erasure, receipt survival, and tamper-refusal on load. *)

open Ledger_crypto
open Ledger_storage
open Ledger_core
open Ledger_timenotary

let tc = Alcotest.test_case

let fresh_dir () =
  let d = Filename.temp_file "ledgerdb" "snap" in
  Sys.remove d;
  d

let build () =
  let clock = Clock.create () in
  let pool = Tsa.pool [ Tsa.create ~endorse_rtt_ms:1. ~clock "t" ] in
  let tl = T_ledger.create ~clock ~tsa:pool () in
  let config =
    { Ledger.default_config with name = "persist"; block_size = 4;
      fam_delta = 3; crypto = Crypto_profile.default_simulated }
  in
  let ledger = Ledger.create ~config ~t_ledger:tl ~tsa:pool ~clock () in
  let user, key = Ledger.new_member ledger ~name:"user" ~role:Roles.Regular_user in
  let dba, dba_key = Ledger.new_member ledger ~name:"dba" ~role:Roles.Dba in
  let reg, reg_key = Ledger.new_member ledger ~name:"reg" ~role:Roles.Regulator in
  let receipts =
    List.init 14 (fun i ->
        Clock.advance_ms clock 100.;
        Ledger.append ledger ~member:user ~priv:key
          ~clues:[ "c" ^ string_of_int (i mod 2) ]
          (Bytes.of_string (Printf.sprintf "record %d" i)))
  in
  Clock.advance_ms clock 1100.;
  (match Ledger.anchor_via_t_ledger ledger with Ok _ -> () | Error _ -> assert false);
  (ledger, config, receipts, (user, key), (dba, dba_key), (reg, reg_key), (tl, pool, clock))

(* The T-Ledger and TSA pool are public services that outlive the ledger
   process, so a reload reattaches to the same instances. *)
let reload ?config (tl, pool, clock) dir =
  let config =
    Option.value config
      ~default:
        { Ledger.default_config with name = "persist"; block_size = 4;
          fam_delta = 3; crypto = Crypto_profile.default_simulated }
  in
  Ledger.load ~config ~t_ledger:tl ~tsa:pool ~clock ~dir ()

let test_roundtrip () =
  let ledger, config, receipts, _, _, _, notary = build () in
  let dir = fresh_dir () in
  Ledger.save ledger ~dir;
  match reload ~config notary dir with
  | Error e -> Alcotest.fail e
  | Ok restored ->
      Alcotest.(check int) "size" (Ledger.size ledger) (Ledger.size restored);
      Alcotest.(check bool) "commitment preserved" true
        (Hash.equal (Ledger.commitment ledger) (Ledger.commitment restored));
      Alcotest.(check int) "blocks" (Ledger.block_count ledger)
        (Ledger.block_count restored);
      Alcotest.(check (option string)) "payload intact" (Some "record 5")
        (Option.map Bytes.to_string (Ledger.payload restored 5));
      Alcotest.(check int) "clue index rebuilt" 7
        (Ledger.clue_entries restored "c1");
      (* proofs still verify on the restored ledger *)
      let p = Ledger.get_proof restored 9 in
      Alcotest.(check bool) "existence proof" true
        (Ledger.verify_existence restored ~jsn:9 ~payload_digest:None p);
      (* receipts issued before the save still verify: block hashes and the
         LSP key survived *)
      let r = List.nth receipts 3 in
      Alcotest.(check bool) "old receipt verifies" true
        (Ledger.verify_receipt restored r);
      Alcotest.(check bool) "old receipt tx matches" true
        (Hash.equal r.Receipt.tx_hash (Ledger.tx_hash_of restored r.Receipt.jsn))

let test_roundtrip_with_mutations () =
  let ledger, config, _, (user, key), (dba, dba_key), (reg, reg_key), notary =
    build ()
  in
  ignore user;
  ignore key;
  (* occult journal 2 *)
  (match
     Ledger.occult ledger ~target_jsn:2 ~mode:Ledger.Sync
       ~signers:[ (dba, dba_key); (reg, reg_key) ] ~reason:"pii"
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (* purge the first 6 journals, keeping journal 4 *)
  let affected = Ledger.affected_members ledger ~upto_jsn:6 in
  let signers =
    (dba, dba_key)
    :: List.map
         (fun (m : Roles.member) ->
           if m.Roles.name = "user" then (m, key) else Alcotest.fail "member?")
         affected
  in
  (match
     Ledger.purge ledger
       ~request:{ Ledger.upto_jsn = 6; survivors = [ 4 ]; erase_fam_nodes = false }
       ~signers
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let dir = fresh_dir () in
  Ledger.save ledger ~dir;
  match reload ~config notary dir with
  | Error e -> Alcotest.fail e
  | Ok restored ->
      (* erasures survive the round trip *)
      Alcotest.(check bool) "occulted still erased" true
        (Ledger.payload restored 2 = None);
      Alcotest.(check bool) "occult bit restored" true
        (Ledger.is_occulted restored 2);
      Alcotest.(check bool) "purged still erased" true
        (Ledger.payload restored 3 = None);
      Alcotest.(check (option string)) "survivor restored" (Some "record 4")
        (Option.map Bytes.to_string (Ledger.read_survivor restored 4));
      Alcotest.(check bool) "pseudo genesis restored" true
        (Ledger.pseudo_genesis restored <> None);
      (* the restored ledger still passes a Dasein audit *)
      let report = Audit.run restored in
      if not report.Audit.ok then
        Alcotest.fail (Format.asprintf "%a" Audit.pp_report report)

let test_load_refuses_tampered_snapshot () =
  let ledger, config, _, _, _, _, notary = build () in
  let dir = fresh_dir () in
  Ledger.save ledger ~dir;
  (* flip one byte inside a journal record, at several offsets *)
  let path = Filename.concat dir "journals.ldb" in
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let original = Bytes.create len in
  really_input ic original 0 len;
  close_in ic;
  List.iter
    (fun off ->
      let data = Bytes.copy original in
      Bytes.set data off (Char.chr (Char.code (Bytes.get data off) lxor 0x40));
      let oc = open_out_bin path in
      output_bytes oc data;
      close_out oc;
      match reload ~config notary dir with
      | Ok _ -> Alcotest.failf "tampered snapshot accepted (offset %d)" off
      | Error _ -> ())
    [ len / 4; len / 2; (3 * len) / 4; 40 ];
  (* restore the original for the missing-dir check below *)
  let oc = open_out_bin path in
  output_bytes oc original;
  close_out oc;
  (* missing directory errors cleanly *)
  match reload ~config notary (fresh_dir ()) with
  | Ok _ -> Alcotest.fail "missing snapshot accepted"
  | Error _ -> ()

let test_continue_after_load () =
  let ledger, config, _, _, _, _, ((_, _, clock) as notary) = build () in
  let dir = fresh_dir () in
  Ledger.save ledger ~dir;
  Clock.advance_sec clock 10. (* downtime between save and reload *);
  match reload ~config notary dir with
  | Error e -> Alcotest.fail e
  | Ok restored ->
      (* the restored ledger accepts new appends and stays consistent *)
      let user = Option.get (Roles.find_by_name (Ledger.registry restored) "user") in
      (* new_member seeds keys with "<config.name>:<member name>" *)
      let key, pub = Ecdsa.generate ~seed:"persist:user" in
      Alcotest.(check bool) "re-derived key matches registry" true
        (Hash.equal (Ecdsa.public_key_id pub) user.Roles.id);
      let before = Ledger.size restored in
      let r =
        Ledger.append restored ~member:user ~priv:key
          ~clues:[ "c0" ] (Bytes.of_string "after reload")
      in
      Alcotest.(check int) "jsn continues" before r.Receipt.jsn;
      let p = Ledger.get_proof restored r.Receipt.jsn in
      Alcotest.(check bool) "new journal provable" true
        (Ledger.verify_existence restored ~jsn:r.Receipt.jsn
           ~payload_digest:None p);
      let report = Audit.run restored in
      Alcotest.(check bool) "audit after continuation" true report.Audit.ok

(* Stream-store round trip: persist, reopen, erase, persist, reopen —
   indices, byte accounting and page counts must all survive both
   generations. *)
let test_stream_store_persist_erase_cycle () =
  let dir = fresh_dir () in
  let store = Stream_store.create ~dir () in
  let s = Stream_store.stream store "gen" in
  for i = 0 to 9 do
    ignore (Stream_store.append s (Bytes.of_string (Printf.sprintf "v%02d" i)))
  done;
  Stream_store.persist store;
  let gen1, _ = Stream_store.recover ~dir () in
  let s1 = Stream_store.stream gen1 "gen" in
  Alcotest.(check int) "gen1 length" 10 (Stream_store.length s1);
  Stream_store.erase s1 3;
  Stream_store.erase s1 7;
  let bytes_after_erase = Stream_store.total_bytes s1 in
  let pages_after_erase = Stream_store.page_count s1 in
  let live_after_erase = Stream_store.live_records s1 in
  Stream_store.persist gen1;
  let gen2, reports = Stream_store.recover ~dir () in
  let s2 = Stream_store.stream gen2 "gen" in
  Alcotest.(check int) "gen2 length" 10 (Stream_store.length s2);
  Alcotest.(check int) "total_bytes preserved" bytes_after_erase
    (Stream_store.total_bytes s2);
  Alcotest.(check int) "page_count preserved" pages_after_erase
    (Stream_store.page_count s2);
  Alcotest.(check int) "live_records preserved" live_after_erase
    (Stream_store.live_records s2);
  List.iter
    (fun i ->
      Alcotest.(check bool)
        (Printf.sprintf "erasure of %d preserved" i)
        true
        (Stream_store.is_erased s2 i))
    [ 3; 7 ];
  Alcotest.(check (option string)) "survivor readable" (Some "v05")
    (Option.map Bytes.to_string (Stream_store.read_opt s2 5));
  Alcotest.(check bool) "second generation intact" true
    (List.for_all (fun r -> r.Stream_store.damage = Stream_store.Intact) reports)

(* A crash mid-save leaves a torn tail: the strict loader refuses with a
   diagnostic, the recovering loader replays the intact prefix and
   reports exactly what it salvaged. *)
let test_torn_tail_recovery_report () =
  let ledger, config, _, _, _, _, notary = build () in
  let dir = fresh_dir () in
  Ledger.save ledger ~dir;
  let size = Ledger.size ledger in
  let path = Filename.concat dir "journals.ldb" in
  let file_len =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    close_in ic;
    n
  in
  Framing.truncate_file path ~keep:(file_len - 5);
  let tl, pool, clock = notary in
  (match reload ~config notary dir with
  | Ok _ -> Alcotest.fail "torn snapshot accepted by strict load"
  | Error msg ->
      Alcotest.(check bool) "strict refusal names the torn tail" true
        (String.length msg > 0));
  match
    Ledger.load_verbose ~config ~t_ledger:tl ~tsa:pool ~recover:true ~clock
      ~dir ()
  with
  | Error e -> Alcotest.fail e
  | Ok (restored, report) ->
      Alcotest.(check int) "last record lost" (size - 1)
        report.Ledger.replayed;
      Alcotest.(check bool) "torn tail reported" true report.Ledger.torn_tail;
      Alcotest.(check bool) "checkpoint partial" true
        (report.Ledger.checkpoint = `Partial);
      Alcotest.(check int) "ledger shrunk to the prefix" (size - 1)
        (Ledger.size restored);
      Alcotest.(check (option string)) "prefix payload intact"
        (Some "record 0")
        (Option.map Bytes.to_string (Ledger.payload restored 0));
      (* a re-save of the recovered prefix loads strictly again *)
      let dir2 = fresh_dir () in
      Ledger.save restored ~dir:dir2;
      match reload ~config notary dir2 with
      | Error e -> Alcotest.fail ("re-saved prefix refused: " ^ e)
      | Ok again ->
          Alcotest.(check int) "re-saved prefix size" (size - 1)
            (Ledger.size again)

(* A complete frame with a bad checksum is tampering, not a crash: both
   loaders refuse, and the diagnostic names the first bad jsn. *)
let test_corrupt_record_names_first_bad_jsn () =
  let ledger, config, _, _, _, _, notary = build () in
  let dir = fresh_dir () in
  Ledger.save ledger ~dir;
  let path = Filename.concat dir "journals.ldb" in
  (* find the on-disk offset of record 3 by walking the frames *)
  let target = 3 in
  let offset =
    let ic = open_in_bin path in
    let rec go i =
      let off = pos_in ic in
      if i = target then off
      else
        match Framing.read ic with
        | Framing.Record _ -> go (i + 1)
        | _ -> Alcotest.fail "snapshot unexpectedly short"
    in
    let off = go 0 in
    close_in ic;
    off
  in
  (* flip one payload byte inside that frame (magic 4 + length 4 = +8) *)
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let data = Bytes.create len in
  really_input ic data 0 len;
  close_in ic;
  let at = offset + 8 + 5 in
  Bytes.set data at (Char.chr (Char.code (Bytes.get data at) lxor 0x01));
  let oc = open_out_bin path in
  output_bytes oc data;
  close_out oc;
  let tl, pool, clock = notary in
  let expect_first_bad_jsn = function
    | Ok _ -> Alcotest.fail "corrupt record accepted"
    | Error msg ->
        let mentions needle =
          let nl = String.length needle and ml = String.length msg in
          let rec at i = i + nl <= ml && (String.sub msg i nl = needle || at (i + 1)) in
          at 0
        in
        Alcotest.(check bool)
          (Printf.sprintf "diagnostic names jsn %d: %s" target msg)
          true
          (mentions (Printf.sprintf "first bad jsn %d" target))
  in
  expect_first_bad_jsn (reload ~config notary dir);
  (* corruption is never recoverable: ~recover:true must refuse too *)
  expect_first_bad_jsn
    (Result.map fst
       (Ledger.load_verbose ~config ~t_ledger:tl ~tsa:pool ~recover:true
          ~clock ~dir ()))

let base_suite =
  [
    tc "save/load roundtrip" `Quick test_roundtrip;
    tc "roundtrip with occult+purge" `Quick test_roundtrip_with_mutations;
    tc "tampered snapshot refused" `Quick test_load_refuses_tampered_snapshot;
    tc "append after load" `Quick test_continue_after_load;
    tc "stream store persist/erase cycle" `Quick
      test_stream_store_persist_erase_cycle;
    tc "torn tail recovery report" `Quick test_torn_tail_recovery_report;
    tc "corrupt record names first bad jsn" `Quick
      test_corrupt_record_names_first_bad_jsn;
  ]

let test_roundtrip_with_member_ca () =
  let clock = Clock.create () in
  let ca_priv, ca_pub = Ecdsa.generate ~seed:"persist-ca" in
  let config =
    { Ledger.default_config with name = "persist-ca"; block_size = 4;
      fam_delta = 3; crypto = Crypto_profile.default_simulated;
      member_ca = Some ca_pub }
  in
  let ledger = Ledger.create ~config ~clock () in
  let m, k = Ledger.new_member ~ca_priv ledger ~name:"cmember" ~role:Roles.Regular_user in
  for i = 0 to 5 do
    Clock.advance_ms clock 10.;
    ignore (Ledger.append ledger ~member:m ~priv:k (Bytes.of_string (string_of_int i)))
  done;
  let dir = fresh_dir () in
  Ledger.save ledger ~dir;
  match Ledger.load ~config ~clock ~dir () with
  | Error e -> Alcotest.fail e
  | Ok restored ->
      Alcotest.(check bool) "certificate restored" true
        (Roles.certificate_of (Ledger.registry restored) m.Roles.id <> None);
      Alcotest.(check bool) "CA ledger audits after reload" true
        (Audit.run restored).Audit.ok

let ca_persist_suite =
  [ tc "roundtrip with member CA" `Quick test_roundtrip_with_member_ca ]

let suite = base_suite @ ca_persist_suite
