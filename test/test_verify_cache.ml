(* Verify_cache safety: a cached verdict must never be served once a
   history mutation invalidates its root, and cache-on vs cache-off
   verification must always agree.

   The load-bearing scenario is {!Ledger.reorganize}: it erases
   async-occulted payloads WITHOUT appending a journal, so the fam
   commitment — the cache's structural key — does not change.  Only the
   {!Verify_cache.attach} mutation feed keeps the cache sound there. *)

open Ledger_crypto
open Ledger_storage
open Ledger_core

(* ---------- unit: FIFO capacity, counters, invalidate ---------- *)

let h s = Hash.digest_string s

let test_fifo_eviction () =
  let c = Verify_cache.create ~capacity:2 () in
  Verify_cache.store c ~root:(h "r") ~jsn:0 ~verifier:"a" true;
  Verify_cache.store c ~root:(h "r") ~jsn:1 ~verifier:"b" false;
  Alcotest.(check int) "full" 2 (Verify_cache.size c);
  Verify_cache.store c ~root:(h "r") ~jsn:2 ~verifier:"c" true;
  Alcotest.(check int) "capacity held" 2 (Verify_cache.size c);
  Alcotest.(check int) "one eviction" 1 (Verify_cache.evictions c);
  Alcotest.(check (option bool))
    "oldest evicted" None
    (Verify_cache.find c ~root:(h "r") ~jsn:0 ~verifier:"a");
  Alcotest.(check (option bool))
    "newer kept" (Some false)
    (Verify_cache.find c ~root:(h "r") ~jsn:1 ~verifier:"b");
  Alcotest.(check (option bool))
    "newest kept" (Some true)
    (Verify_cache.find c ~root:(h "r") ~jsn:2 ~verifier:"c");
  Alcotest.(check int) "hits" 2 (Verify_cache.hits c);
  Alcotest.(check int) "misses" 1 (Verify_cache.misses c);
  (* replacing an existing key must not evict *)
  Verify_cache.store c ~root:(h "r") ~jsn:2 ~verifier:"c" false;
  Alcotest.(check int) "replace keeps size" 2 (Verify_cache.size c);
  Alcotest.(check int) "replace does not evict" 1 (Verify_cache.evictions c)

let test_key_discrimination () =
  let c = Verify_cache.create () in
  Verify_cache.store c ~root:(h "r1") ~jsn:7 ~verifier:"q" true;
  Alcotest.(check (option bool))
    "other root misses" None
    (Verify_cache.find c ~root:(h "r2") ~jsn:7 ~verifier:"q");
  Alcotest.(check (option bool))
    "other jsn misses" None
    (Verify_cache.find c ~root:(h "r1") ~jsn:8 ~verifier:"q");
  Alcotest.(check (option bool))
    "other question misses" None
    (Verify_cache.find c ~root:(h "r1") ~jsn:7 ~verifier:"q2")

let test_invalidate_counts () =
  let c = Verify_cache.create () in
  Verify_cache.store c ~root:(h "r") ~jsn:0 ~verifier:"a" true;
  Verify_cache.store c ~root:(h "r") ~jsn:1 ~verifier:"b" true;
  Alcotest.(check int) "dropped" 2 (Verify_cache.invalidate c);
  Alcotest.(check int) "empty" 0 (Verify_cache.size c);
  Alcotest.(check int) "recorded" 1 (Verify_cache.invalidations c);
  Alcotest.(check int) "empty drop" 0 (Verify_cache.invalidate c)

let test_bad_capacity () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Verify_cache.create: bad capacity") (fun () ->
      ignore (Verify_cache.create ~capacity:0 ()))

(* ---------- fixtures ---------- *)

let build_ledger name =
  let clock = Clock.create () in
  let config =
    { Ledger.default_config with name; block_size = 4; fam_delta = 3;
      crypto = Crypto_profile.default_simulated }
  in
  let ledger = Ledger.create ~config ~clock () in
  let user, key = Ledger.new_member ledger ~name:"user" ~role:Roles.Regular_user in
  let dba, dba_key = Ledger.new_member ledger ~name:"dba" ~role:Roles.Dba in
  let reg, reg_key = Ledger.new_member ledger ~name:"reg" ~role:Roles.Regulator in
  (clock, ledger, (user, key), (dba, dba_key), (reg, reg_key))

let payload_str i = Printf.sprintf "cached-payload-%d" i

let append_n clock ledger (user, key) n =
  List.init n (fun i ->
      Clock.advance_ms clock 10.;
      Ledger.append ledger ~member:user ~priv:key
        ~clues:[ "vc" ^ string_of_int (i mod 2) ]
        (Bytes.of_string (payload_str i)))

(* ---------- scripted: reorganize is invisible to the root ---------- *)

(* With attach, the verdict flips after reorganize; without it, the stale
   verdict WOULD be replayed — demonstrating the feed is load-bearing. *)
let test_reorganize_invalidation () =
  let run ~attached =
    let clock, ledger, u, dba, reg = build_ledger "vc-reorg" in
    ignore (append_n clock ledger u 8);
    Ledger.seal_block ledger;
    let cache = Verify_cache.create () in
    if attached then Verify_cache.attach cache ledger;
    let target =
      Verify_api.Existence
        { jsn = 0; payload_digest = Some (Hash.digest_string (payload_str 0)) }
    in
    let check () = Verify_api.verify ~cache ledger ~level:Verify_api.Server target in
    Alcotest.(check bool) "fresh verdict" true (check ()).Verify_api.ok;
    (match
       Ledger.occult ledger ~target_jsn:0 ~mode:Ledger.Async
         ~signers:[ dba; reg ] ~reason:"test"
     with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e);
    (* Async occult retains the payload until reorganize, but appended an
       occult journal — the root moved, so this recomputes either way *)
    Alcotest.(check bool) "pre-reorganize verdict" true (check ()).Verify_api.ok;
    (* warm the cache under the post-occult root *)
    let warm = check () in
    Alcotest.(check string)
      "warmed" "cache: verdict reused" warm.Verify_api.detail;
    let erased = Ledger.reorganize ledger in
    Alcotest.(check int) "one payload erased" 1 erased;
    check ()
  in
  let sound = run ~attached:true in
  Alcotest.(check bool) "attached: stale verdict dropped" false
    sound.Verify_api.ok;
  Alcotest.(check bool) "attached: recomputed, not replayed" true
    (sound.Verify_api.detail <> "cache: verdict reused");
  let stale = run ~attached:false in
  Alcotest.(check string)
    "unattached: the stale verdict is replayed (why attach exists)"
    "cache: verdict reused" stale.Verify_api.detail;
  Alcotest.(check bool) "unattached: wrong verdict" true stale.Verify_api.ok

let test_purge_invalidation () =
  let clock, ledger, ((_user, key) as u), (dba, dba_key), reg =
    build_ledger "vc-purge"
  in
  ignore (append_n clock ledger u 8);
  Ledger.seal_block ledger;
  let cache = Verify_cache.create () in
  Verify_cache.attach cache ledger;
  let target =
    Verify_api.Existence
      { jsn = 1; payload_digest = Some (Hash.digest_string (payload_str 1)) }
  in
  let check () = Verify_api.verify ~cache ledger ~level:Verify_api.Server target in
  Alcotest.(check bool) "pre-purge" true (check ()).Verify_api.ok;
  Alcotest.(check string)
    "cached pre-purge" "cache: verdict reused" (check ()).Verify_api.detail;
  ignore reg;
  let affected = Ledger.affected_members ledger ~upto_jsn:4 in
  let signers =
    (dba, dba_key)
    :: List.map
         (fun (m : Roles.member) ->
           if m.Roles.name = "user" then (m, key) else (m, dba_key))
         affected
  in
  (match
     Ledger.purge ledger
       ~request:{ Ledger.upto_jsn = 4; survivors = []; erase_fam_nodes = false }
       ~signers
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "purge flushed the cache" 0 (Verify_cache.size cache);
  let post = check () in
  Alcotest.(check bool) "purged payload now refused" false post.Verify_api.ok;
  Alcotest.(check bool) "recomputed" true
    (post.Verify_api.detail <> "cache: verdict reused")

(* ---------- property: cache-on == cache-off, always ---------- *)

type vop =
  | V_append of int
  | V_exist of int * bool  (* jsn pick, with payload digest *)
  | V_receipt of int
  | V_occult of int * bool  (* target pick, async? *)
  | V_reorganize
  | V_seal

let vop_to_string = function
  | V_append p -> Printf.sprintf "Append %d" p
  | V_exist (j, d) -> Printf.sprintf "Exist(%d,%b)" j d
  | V_receipt j -> Printf.sprintf "Receipt %d" j
  | V_occult (t, a) -> Printf.sprintf "Occult(%d,async=%b)" t a
  | V_reorganize -> "Reorganize"
  | V_seal -> "Seal"

let vop_gen =
  QCheck.Gen.(
    frequency
      [ (6, map (fun p -> V_append p) (int_bound 999));
        (6, map2 (fun j d -> V_exist (j, d)) (int_bound 999) bool);
        (3, map (fun j -> V_receipt j) (int_bound 999));
        (3, map2 (fun t a -> V_occult (t, a)) (int_bound 999) bool);
        (2, return V_reorganize);
        (1, return V_seal) ])

let arb_vops =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map vop_to_string ops))
    QCheck.Gen.(list_size (int_range 5 40) vop_gen)

(* Interpret the ops over one ledger, holding an attached cache; every
   verification runs twice — cached and uncached — and any verdict
   disagreement fails the property.  Mutations must also leave the cache
   empty (the on_mutate feed fired). *)
let prop_cache_transparent =
  QCheck.Test.make ~name:"cache-on and cache-off verdicts always agree"
    ~count:40 arb_vops (fun ops ->
      let clock, ledger, ((user, key) as u), dba, reg =
        build_ledger "vc-prop"
      in
      ignore u;
      let cache = Verify_cache.create ~capacity:64 () in
      Verify_cache.attach cache ledger;
      let receipts = ref [] in
      let normal_jsns = ref [] in
      let payloads = ref [] in
      let pick lst n =
        match lst with [] -> None | l -> Some (List.nth l (n mod List.length l))
      in
      let agree level target =
        let cached = Verify_api.verify ~cache ledger ~level target in
        let plain = Verify_api.verify ledger ~level target in
        if cached.Verify_api.ok <> plain.Verify_api.ok then
          QCheck.Test.fail_reportf "verdict diverged: cached=%b plain=%b on %a"
            cached.Verify_api.ok plain.Verify_api.ok Verify_api.pp_outcome plain
      in
      List.iter
        (fun op ->
          match op with
          | V_append p ->
              Clock.advance_ms clock 10.;
              let r =
                Ledger.append ledger ~member:user ~priv:key
                  ~clues:[ "vp" ^ string_of_int (p mod 2) ]
                  (Bytes.of_string (payload_str p))
              in
              receipts := r :: !receipts;
              normal_jsns := r.Receipt.jsn :: !normal_jsns;
              payloads := (r.Receipt.jsn, payload_str p) :: !payloads
          | V_exist (j, with_digest) -> (
              match pick !normal_jsns j with
              | None -> ()
              | Some jsn ->
                  let payload_digest =
                    if with_digest then
                      Option.map Hash.digest_string
                        (List.assoc_opt jsn !payloads)
                    else None
                  in
                  let t = Verify_api.Existence { jsn; payload_digest } in
                  agree Verify_api.Server t;
                  agree Verify_api.Client t)
          | V_receipt j -> (
              match pick !receipts j with
              | None -> ()
              | Some r ->
                  agree Verify_api.Server (Verify_api.Receipt_check r);
                  agree Verify_api.Client (Verify_api.Receipt_check r))
          | V_occult (t, async) -> (
              match pick !normal_jsns t with
              | None -> ()
              | Some jsn ->
                  if not (Ledger.is_occulted ledger jsn) then begin
                    (match
                       Ledger.occult ledger ~target_jsn:jsn
                         ~mode:(if async then Ledger.Async else Ledger.Sync)
                         ~signers:[ dba; reg ] ~reason:"prop"
                     with
                    | Ok _ -> ()
                    | Error e -> failwith e);
                    if Verify_cache.size cache <> 0 then
                      QCheck.Test.fail_report
                        "occult left verdicts in the cache"
                  end)
          | V_reorganize ->
              if Ledger.reorganize ledger > 0 && Verify_cache.size cache <> 0
              then
                QCheck.Test.fail_report "reorganize left verdicts in the cache"
          | V_seal -> Ledger.seal_block ledger)
        ops;
      (* terminal sweep: every known jsn, both levels, digest and not *)
      List.iter
        (fun jsn ->
          List.iter
            (fun payload_digest ->
              let t = Verify_api.Existence { jsn; payload_digest } in
              agree Verify_api.Server t;
              agree Verify_api.Client t)
            [ None;
              Option.map Hash.digest_string (List.assoc_opt jsn !payloads) ])
        !normal_jsns;
      true)

let suite =
  [ Alcotest.test_case "fifo eviction and counters" `Quick test_fifo_eviction;
    Alcotest.test_case "key discrimination" `Quick test_key_discrimination;
    Alcotest.test_case "invalidate drops everything" `Quick
      test_invalidate_counts;
    Alcotest.test_case "bad capacity rejected" `Quick test_bad_capacity;
    Alcotest.test_case "reorganize invalidates without moving the root" `Quick
      test_reorganize_invalidation;
    Alcotest.test_case "purge flushes cached verdicts" `Quick
      test_purge_invalidation;
    QCheck_alcotest.to_alcotest prop_cache_transparent ]
