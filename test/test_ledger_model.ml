(* Stateful property test: random interleavings of append / batch append /
   buffered-append-and-flush / anchor / occult / purge / reorganize / seal
   must always leave a ledger that (1) agrees with a simple reference
   model about sizes, clue entries and payload visibility, and (2) passes
   the Dasein-complete audit. *)

open Ledger_storage
open Ledger_core
open Ledger_timenotary

type op =
  | Append of int * int (* payload id, clue id *)
  | Append_batch of int * int (* entry count selector, payload id *)
  | Buffer of int * int (* payload id, clue id — pending until Flush *)
  | Flush (* commit the pending buffer in one batch *)
  | Anchor
  | Occult of int (* target selector *)
  | Purge of int (* upto selector *)
  | Reorganize
  | Seal

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (8, map2 (fun a b -> Append (a, b)) (int_bound 1000) (int_bound 3));
        (3, map2 (fun n p -> Append_batch (n, p)) (int_bound 6) (int_bound 1000));
        (4, map2 (fun a b -> Buffer (a, b)) (int_bound 1000) (int_bound 3));
        (3, return Flush);
        (2, return Anchor);
        (2, map (fun t -> Occult t) (int_bound 100));
        (1, map (fun u -> Purge u) (int_bound 100));
        (1, return Reorganize);
        (2, return Seal);
      ])

let arb_ops = QCheck.make ~print:(fun l -> string_of_int (List.length l))
    QCheck.Gen.(list_size (int_range 5 40) op_gen)

(* reference model *)
type model = {
  mutable m_payloads : (int * string option) list; (* jsn, visible payload *)
  mutable m_clues : (string * int) list; (* clue, count *)
  mutable m_occulted : int list;
  mutable m_purged_upto : int;
}

let run_ops ops =
  let clock = Clock.create () in
  let pool = Tsa.pool [ Tsa.create ~endorse_rtt_ms:1. ~clock "t" ] in
  let tl = T_ledger.create ~clock ~tsa:pool () in
  let config =
    { Ledger.default_config with name = "model"; block_size = 4; fam_delta = 3;
      crypto = Crypto_profile.default_simulated }
  in
  let ledger = Ledger.create ~config ~t_ledger:tl ~tsa:pool ~clock () in
  let user, key = Ledger.new_member ledger ~name:"user" ~role:Roles.Regular_user in
  let dba, dba_key = Ledger.new_member ledger ~name:"dba" ~role:Roles.Dba in
  let reg, reg_key = Ledger.new_member ledger ~name:"reg" ~role:Roles.Regulator in
  let model =
    { m_payloads = []; m_clues = []; m_occulted = []; m_purged_upto = 0 }
  in
  let normal_jsns = ref [] in
  let buffer = ref [] in
  (* model update for one committed (jsn, payload, clue) — identical for
     sequential and batched commits *)
  let record jsn payload clue =
    normal_jsns := jsn :: !normal_jsns;
    model.m_payloads <- (jsn, Some payload) :: model.m_payloads;
    model.m_clues <-
      (clue, 1 + Option.value ~default:0 (List.assoc_opt clue model.m_clues))
      :: List.remove_assoc clue model.m_clues
  in
  let commit_batch entries =
    let receipts =
      Ledger.append_batch ledger ~member:user ~priv:key ~seal:false
        (List.map
           (fun (payload, clue) -> (Bytes.of_string payload, [ clue ]))
           entries)
    in
    List.iter2
      (fun (payload, clue) (r : Receipt.t) -> record r.Receipt.jsn payload clue)
      entries receipts
  in
  List.iter
    (fun op ->
      match op with
      | Append (p, c) ->
          Clock.advance_ms clock 10.;
          let clue = "clue-" ^ string_of_int c in
          let payload = Printf.sprintf "payload-%d" p in
          let r =
            Ledger.append ledger ~member:user ~priv:key ~clues:[ clue ]
              (Bytes.of_string payload)
          in
          record r.Receipt.jsn payload clue
      | Append_batch (n, p) ->
          Clock.advance_ms clock 10.;
          commit_batch
            (List.init
               (1 + (n mod 6))
               (fun i ->
                 ( Printf.sprintf "payload-b%d-%d" p i,
                   "clue-" ^ string_of_int ((p + i) mod 4) )))
      | Buffer (p, c) ->
          buffer :=
            (Printf.sprintf "payload-%d" p, "clue-" ^ string_of_int c)
            :: !buffer
      | Flush -> (
          match List.rev !buffer with
          | [] -> ()
          | entries ->
              buffer := [];
              Clock.advance_ms clock 10.;
              commit_batch entries)
      | Anchor ->
          Clock.advance_ms clock 1100.;
          (match Ledger.anchor_via_t_ledger ledger with
          | Ok _ -> ()
          | Error _ -> failwith "anchor rejected")
      | Occult t -> (
          match !normal_jsns with
          | [] -> ()
          | jsns -> (
              let jsn = List.nth jsns (t mod List.length jsns) in
              if
                (not (Ledger.is_occulted ledger jsn))
                && jsn >= model.m_purged_upto
              then
                match
                  Ledger.occult ledger ~target_jsn:jsn ~mode:Ledger.Sync
                    ~signers:[ (dba, dba_key); (reg, reg_key) ] ~reason:"m"
                with
                | Ok _ ->
                    model.m_occulted <- jsn :: model.m_occulted;
                    model.m_payloads <-
                      (jsn, None) :: List.remove_assoc jsn model.m_payloads
                | Error e -> failwith e))
      | Purge u ->
          let size = Ledger.size ledger in
          if size > 2 then begin
            let upto = 1 + (u mod (size - 1)) in
            if upto > model.m_purged_upto then begin
              let affected = Ledger.affected_members ledger ~upto_jsn:upto in
              let signers =
                (dba, dba_key)
                :: List.map
                     (fun (m : Roles.member) ->
                       if m.Roles.name = "user" then (m, key)
                       else if m.Roles.name = "reg" then (m, reg_key)
                       else (m, dba_key))
                     affected
              in
              match
                Ledger.purge ledger
                  ~request:{ Ledger.upto_jsn = upto; survivors = [];
                             erase_fam_nodes = false }
                  ~signers
              with
              | Ok _ ->
                  model.m_purged_upto <- upto;
                  model.m_payloads <-
                    List.map
                      (fun (jsn, p) -> if jsn < upto then (jsn, None) else (jsn, p))
                      model.m_payloads
              | Error e -> failwith e
            end
          end
      | Reorganize -> ignore (Ledger.reorganize ledger)
      | Seal -> Ledger.seal_block ledger)
    ops;
  (ledger, model)

let prop_model_agreement =
  QCheck.Test.make ~name:"random op sequences: model agreement + clean audit"
    ~count:25 arb_ops (fun ops ->
      let ledger, model = run_ops ops in
      (* payload visibility matches the model *)
      List.for_all
        (fun (jsn, expected) ->
          let actual =
            Option.map Bytes.to_string (Ledger.payload ledger jsn)
          in
          actual = expected)
        model.m_payloads
      (* clue entry counts match *)
      && List.for_all
           (fun (clue, count) -> Ledger.clue_entries ledger clue = count)
           model.m_clues
      (* occulted flags match *)
      && List.for_all (fun jsn -> Ledger.is_occulted ledger jsn) model.m_occulted
      (* the audit passes whatever the interleaving was *)
      && (Audit.run ledger).Audit.ok)

let prop_proofs_after_ops =
  QCheck.Test.make ~name:"random op sequences: proofs verify for live journals"
    ~count:15 arb_ops (fun ops ->
      let ledger, model = run_ops ops in
      List.for_all
        (fun (jsn, _) ->
          let proof = Ledger.get_proof ledger jsn in
          Ledger.verify_existence ledger ~jsn ~payload_digest:None proof)
        model.m_payloads)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_model_agreement;
    QCheck_alcotest.to_alcotest prop_proofs_after_ops;
  ]
