(* Tests for the byte-level client/proxy/server protocol (Fig. 1): every
   request and proof object must survive the wire, and the client must be
   able to verify everything locally from decoded responses.

   The wire boundary implies genuine client-side signing, so these tests
   run the Real crypto profile on a small workload. *)

open Ledger_crypto
open Ledger_storage
open Ledger_core
open Ledger_merkle

let tc = Alcotest.test_case
let qcheck = QCheck_alcotest.to_alcotest

let make_service () =
  let clock = Clock.create () in
  let config =
    { Ledger.default_config with name = "svc"; block_size = 4; fam_delta = 3 }
  in
  let ledger = Ledger.create ~config ~clock () in
  let member, priv = Ledger.new_member ledger ~name:"svc-client" ~role:Roles.Regular_user in
  let client =
    Service.Client.create ~ledger_uri:(Ledger.uri ledger) ~member ~priv ()
  in
  (clock, ledger, client)

let roundtrip ledger req_bytes = Service.Client.parse (Service.handle ledger req_bytes)

let test_append_over_wire () =
  let clock, ledger, client = make_service () in
  let receipts =
    List.init 6 (fun i ->
        Clock.advance_ms clock 10.;
        let req =
          Service.Client.make_append client ~clues:[ "wire-clue" ]
            ~client_ts:(Clock.now clock)
            (Bytes.of_string (Printf.sprintf "wire payload %d" i))
        in
        match roundtrip ledger req with
        | Some (Service.Receipt_r r) -> r
        | Some (Service.Error_r e) -> Alcotest.fail e
        | _ -> Alcotest.fail "unexpected response")
  in
  Alcotest.(check int) "committed" 6 (Ledger.size ledger);
  (* receipts decoded from the wire verify with real ECDSA *)
  List.iter
    (fun r ->
      Alcotest.(check bool) "wire receipt verifies" true
        (Receipt.verify ~lsp_pub:(Ledger.lsp_public_key ledger) r))
    receipts;
  (* the audit sees wire-appended journals as fully signed *)
  let report = Audit.run ~receipts ledger in
  Alcotest.(check bool) "audit ok" true report.Audit.ok

let test_replay_rejected () =
  let clock, ledger, client = make_service () in
  Clock.advance_ms clock 10.;
  let req =
    Service.Client.make_append client ~client_ts:(Clock.now clock)
      (Bytes.of_string "original")
  in
  (match roundtrip ledger req with
  | Some (Service.Receipt_r _) -> ()
  | _ -> Alcotest.fail "append failed");
  (* a tampered request (flip a payload byte) must be rejected: pi_c breaks *)
  let tampered = Bytes.copy req in
  let off = Bytes.length tampered - 100 in
  Bytes.set tampered off (Char.chr (Char.code (Bytes.get tampered off) lxor 1));
  (match roundtrip ledger tampered with
  | Some (Service.Error_r _) -> ()
  | Some (Service.Receipt_r _) -> Alcotest.fail "tampered request accepted"
  | _ -> ());
  (* garbage is answered with a protocol error, not an exception *)
  match roundtrip ledger (Bytes.of_string "garbage") with
  | Some (Service.Error_r msg) ->
      Alcotest.(check string) "malformed" "malformed request" msg
  | _ -> Alcotest.fail "expected protocol error"

let test_proofs_over_wire () =
  let clock, ledger, client = make_service () in
  for i = 0 to 9 do
    Clock.advance_ms clock 10.;
    let req =
      Service.Client.make_append client ~clues:[ "k" ^ string_of_int (i mod 2) ]
        ~client_ts:(Clock.now clock)
        (Bytes.of_string (Printf.sprintf "p%d" i))
    in
    match roundtrip ledger req with
    | Some (Service.Receipt_r _) -> ()
    | _ -> Alcotest.fail "append failed"
  done;
  (* fetch commitment, then verify an existence proof fully client-side *)
  let commitment, _size =
    match roundtrip ledger (Service.Client.make_get_commitment ()) with
    | Some (Service.Commitment_r { commitment; size }) -> (commitment, size)
    | _ -> Alcotest.fail "no commitment"
  in
  let payload =
    match roundtrip ledger (Service.Client.make_get_payload ~jsn:4) with
    | Some (Service.Payload_r (Some p)) -> p
    | _ -> Alcotest.fail "no payload"
  in
  Alcotest.(check string) "payload content" "p4" (Bytes.to_string payload);
  (match roundtrip ledger (Service.Client.make_get_proof ~jsn:4) with
  | Some (Service.Proof_r proof) ->
      (* the client recomputes the leaf from the journal it received via a
         receipt; here we use the server's receipt tx-hash *)
      let receipt =
        match roundtrip ledger (Service.Client.make_get_receipt ~jsn:4) with
        | Some (Service.Receipt_r r) -> r
        | _ -> Alcotest.fail "no receipt"
      in
      Alcotest.(check bool) "fam proof verified client-side" true
        (Fam.verify ~commitment ~leaf:receipt.Receipt.tx_hash proof)
  | _ -> Alcotest.fail "no proof");
  (* clue proof over the wire *)
  match
    roundtrip ledger (Service.Client.make_get_clue_proof ~clue:"k1" ())
  with
  | Some (Service.Clue_proof_r (Some proof)) ->
      Alcotest.(check bool) "clue proof verified" true
        (Ledger.verify_clue_client ledger proof)
  | _ -> Alcotest.fail "no clue proof"

let test_out_of_range_requests () =
  let _, ledger, _ = make_service () in
  List.iter
    (fun req ->
      match roundtrip ledger req with
      | Some (Service.Error_r _) -> ()
      | _ -> Alcotest.fail "expected error response")
    [
      Service.Client.make_get_proof ~jsn:5;
      Service.Client.make_get_payload ~jsn:(-1);
      Service.Client.make_get_receipt ~jsn:100;
      Service.Client.make_get_commitment ();
      (* empty ledger *)
    ]

(* --- codec roundtrips ------------------------------------------------------ *)

let leaf i = Hash.digest_string ("w" ^ string_of_int i)

let prop_fam_proof_codec =
  QCheck.Test.make ~name:"fam proofs roundtrip the wire" ~count:30
    (QCheck.pair (QCheck.int_range 2 4) (QCheck.int_range 1 120))
    (fun (delta, n) ->
      let fam = Fam.create ~delta in
      for i = 0 to n - 1 do
        ignore (Fam.append fam (leaf i))
      done;
      let c = Fam.commitment fam in
      List.for_all
        (fun jsn ->
          let proof = Fam.prove fam jsn in
          match Proof_codec.decode_fam_proof (Proof_codec.encode_fam_proof proof) with
          | None -> false
          | Some proof' -> Fam.verify ~commitment:c ~leaf:(leaf jsn) proof')
        [ 0; n / 2; n - 1 ])

let prop_range_proof_codec =
  QCheck.Test.make ~name:"range proofs roundtrip the wire" ~count:30
    (QCheck.int_range 2 100) (fun n ->
      let f = Forest.create () in
      for i = 0 to n - 1 do
        ignore (Forest.append f (leaf i))
      done;
      let rp = Range_proof.prove f ~first:0 ~last:(n / 2) in
      match Proof_codec.decode_range_proof (Proof_codec.encode_range_proof rp) with
      | None -> false
      | Some rp' ->
          let known = List.init ((n / 2) + 1) (fun i -> (i, leaf i)) in
          Range_proof.verify ~known rp')

let prop_request_codec_total =
  QCheck.Test.make ~name:"request decoder survives random bytes" ~count:200
    QCheck.(string_of_size (QCheck.Gen.int_range 0 80))
    (fun s ->
      match Service.decode_request (Bytes.of_string s) with
      | Some _ | None -> true)

let base_suite =
  [
    tc "append over the wire" `Slow test_append_over_wire;
    tc "tampered/garbage requests rejected" `Slow test_replay_rejected;
    tc "proofs over the wire" `Slow test_proofs_over_wire;
    tc "out-of-range requests" `Quick test_out_of_range_requests;
    qcheck prop_fam_proof_codec;
    qcheck prop_range_proof_codec;
    qcheck prop_request_codec_total;
  ]

let prop_response_codec_total =
  QCheck.Test.make ~name:"response decoder survives random bytes" ~count:200
    QCheck.(string_of_size (QCheck.Gen.int_range 0 120))
    (fun s ->
      match Service.decode_response (Bytes.of_string s) with
      | Some _ | None -> true)

let prop_response_roundtrip =
  QCheck.Test.make ~name:"error responses roundtrip" ~count:50
    QCheck.printable_string (fun msg ->
      match Service.decode_response (Service.encode_response (Service.Error_r msg)) with
      | Some (Service.Error_r m) -> m = msg
      | _ -> false)

let fuzz_suite =
  [ qcheck prop_response_codec_total; qcheck prop_response_roundtrip ]



let test_extension_over_wire () =
  (* a returning client: anchor at size m, come back later, fetch the
     extension proof over the wire, verify the ledger only appended *)
  let clock, ledger, client = make_service () in
  let append i =
    Clock.advance_ms clock 10.;
    let req =
      Service.Client.make_append client ~client_ts:(Clock.now clock)
        (Bytes.of_string (Printf.sprintf "e%d" i))
    in
    match roundtrip ledger req with
    | Some (Service.Receipt_r _) -> ()
    | _ -> Alcotest.fail "append failed"
  in
  for i = 0 to 5 do append i done;
  let old_size = Ledger.size ledger in
  let old_peaks = Fam.anchor_peaks (Ledger.make_anchor ledger) in
  for i = 6 to 14 do append i done;
  (match roundtrip ledger (Service.Client.make_get_extension ~old_size) with
  | Some (Service.Extension_r proof) ->
      Alcotest.(check bool) "wire extension verifies" true
        (Ledger.verify_extension ledger ~old_size ~old_peaks proof)
  | _ -> Alcotest.fail "no extension proof");
  (* out of range *)
  match roundtrip ledger (Service.Client.make_get_extension ~old_size:999) with
  | Some (Service.Error_r _) -> ()
  | _ -> Alcotest.fail "expected error"

let prop_extension_codec =
  QCheck.Test.make ~name:"extension proofs roundtrip the wire" ~count:30
    (QCheck.triple (QCheck.int_range 2 4) (QCheck.int_range 1 100)
       (QCheck.int_range 0 100))
    (fun (delta, m, extra) ->
      let n = m + extra in
      let fam = Fam.create ~delta in
      for i = 0 to m - 1 do
        ignore (Fam.append fam (leaf i))
      done;
      let old_peaks = Fam.peaks fam in
      for i = m to n - 1 do
        ignore (Fam.append fam (leaf i))
      done;
      let proof = Fam.prove_extension fam ~old_size:m in
      match
        Proof_codec.decode_fam_extension (Proof_codec.encode_fam_extension proof)
      with
      | None -> false
      | Some proof' ->
          Fam.verify_extension ~delta ~old_size:m ~old_peaks ~new_size:n
            ~new_commitment:(Fam.commitment fam) proof')

let extension_suite =
  [
    tc "extension over the wire" `Slow test_extension_over_wire;
    qcheck prop_extension_codec;
  ]

let test_get_members_sorted () =
  let _clock, ledger, _client = make_service () in
  (* register out of alphabetical order; the wire response must not leak
     the registry's hash-table iteration order *)
  List.iter
    (fun n -> ignore (Ledger.new_member ledger ~name:n ~role:Roles.Regular_user))
    [ "zeta"; "alpha"; "mid" ];
  match roundtrip ledger (Service.Client.make_get_members ()) with
  | Some (Service.Members_r members) ->
      let names = List.map (fun (n, _, _) -> n) members in
      Alcotest.(check (list string)) "sorted by name"
        (List.sort String.compare names) names;
      Alcotest.(check bool) "all members present" true
        (List.for_all
           (fun n -> List.mem n names)
           [ "zeta"; "alpha"; "mid"; "svc-client" ])
  | _ -> Alcotest.fail "get_members did not return Members_r"

let members_suite = [ tc "get_members deterministic order" `Quick test_get_members_sorted ]

let test_append_batch_over_wire () =
  let clock, ledger, client = make_service () in
  Clock.advance_ms clock 10.;
  let entries =
    List.init 6 (fun i ->
        ( Bytes.of_string (Printf.sprintf "batch payload %d" i),
          [ "batch-clue" ],
          Clock.now clock ))
  in
  let req = Service.Client.make_append_batch client entries in
  let receipts =
    match roundtrip ledger req with
    | Some (Service.Receipts_r rs) -> rs
    | Some (Service.Error_r e) -> Alcotest.fail e
    | _ -> Alcotest.fail "unexpected response"
  in
  Alcotest.(check int) "one receipt per entry" 6 (List.length receipts);
  Alcotest.(check int) "committed" 6 (Ledger.size ledger);
  List.iteri
    (fun i (r : Receipt.t) ->
      Alcotest.(check int) (Printf.sprintf "jsn of entry %d" i) i r.Receipt.jsn;
      Alcotest.(check bool) "wire receipt verifies" true
        (Receipt.verify ~lsp_pub:(Ledger.lsp_public_key ledger) r))
    receipts;
  let report = Audit.run ~receipts ledger in
  Alcotest.(check bool) "audit ok" true report.Audit.ok

(* one bad signature anywhere must reject the WHOLE batch: nothing
   committed, no partial prefix *)
let test_append_batch_atomic_rejection () =
  let clock, ledger, client = make_service () in
  Clock.advance_ms clock 10.;
  let entries =
    List.init 4 (fun i ->
        ( Bytes.of_string (Printf.sprintf "atomic payload %d" i),
          [],
          Clock.now clock ))
  in
  let req = Service.Client.make_append_batch client entries in
  (* flip one byte inside the third entry's payload: framing survives,
     that entry's signature breaks *)
  let marker = Bytes.of_string "atomic payload 2" in
  let off =
    let rec find i =
      if i + Bytes.length marker > Bytes.length req then
        Alcotest.fail "payload marker not found in encoded request"
      else if Bytes.sub req i (Bytes.length marker) = marker then i
      else find (i + 1)
    in
    find 0
  in
  let tampered = Bytes.copy req in
  Bytes.set tampered (off + 7)
    (Char.chr (Char.code (Bytes.get tampered (off + 7)) lxor 1));
  (match roundtrip ledger tampered with
  | Some (Service.Error_r _) -> ()
  | Some (Service.Receipts_r _) -> Alcotest.fail "tampered batch accepted"
  | _ -> Alcotest.fail "unexpected response");
  Alcotest.(check int) "nothing committed" 0 (Ledger.size ledger);
  (* the untampered request still goes through afterwards *)
  match roundtrip ledger req with
  | Some (Service.Receipts_r rs) ->
      Alcotest.(check int) "all committed" 4 (List.length rs)
  | _ -> Alcotest.fail "clean batch rejected"

let test_auto_batch_client () =
  let clock, ledger, _ = make_service () in
  let member, priv =
    Ledger.new_member ledger ~name:"auto" ~role:Roles.Regular_user
  in
  let client =
    Service.Client.create ~auto_batch:3 ~ledger_uri:(Ledger.uri ledger) ~member
      ~priv ()
  in
  let flushed = ref [] in
  for i = 0 to 4 do
    Clock.advance_ms clock 10.;
    match
      Service.Client.buffer_append client ~client_ts:(Clock.now clock)
        (Bytes.of_string (Printf.sprintf "auto %d" i))
    with
    | Some req ->
        if i <> 2 then
          Alcotest.failf "auto-flush at entry %d (expected at 2)" i;
        flushed := req :: !flushed
    | None -> ()
  done;
  Alcotest.(check int) "one auto-flush" 1 (List.length !flushed);
  Alcotest.(check int) "two entries pending" 2 (Service.Client.pending client);
  (match Service.Client.flush client with
  | Some req -> flushed := req :: !flushed
  | None -> Alcotest.fail "manual flush returned nothing");
  Alcotest.(check int) "buffer drained" 0 (Service.Client.pending client);
  Alcotest.(check (option bool)) "empty flush is None" None
    (Option.map (fun _ -> true) (Service.Client.flush client));
  List.iter
    (fun req ->
      match roundtrip ledger req with
      | Some (Service.Receipts_r _) -> ()
      | Some (Service.Error_r e) -> Alcotest.fail e
      | _ -> Alcotest.fail "unexpected response")
    (List.rev !flushed);
  Alcotest.(check int) "all five committed" 5 (Ledger.size ledger)

let batch_suite =
  [
    tc "append_batch over the wire" `Quick test_append_batch_over_wire;
    tc "batch with one bad signature rejected atomically" `Quick
      test_append_batch_atomic_rejection;
    tc "client auto-batching" `Quick test_auto_batch_client;
  ]

let suite = base_suite @ fuzz_suite @ extension_suite @ members_suite @ batch_suite
