(* The real network serving layer: frame codec hostile-input properties,
   loopback differential equivalence (TCP verdicts ≡ in-process
   verdicts), graceful drain, socket-level fault handling, replica
   resume over TCP, and a miniature closed-loop load run with every
   receipt and proof verified client-side. *)

open Ledger_crypto
open Ledger_storage
open Ledger_core
open Ledger_net

let tc = Alcotest.test_case
let qcheck = QCheck_alcotest.to_alcotest

let fresh_dir () =
  let d = Filename.temp_file "net" "scratch" in
  Sys.remove d;
  d

(* ------------------------------------------------------------------ *)
(* Net_framing                                                         *)
(* ------------------------------------------------------------------ *)

let feed_all dec b = Net_framing.feed dec b ~pos:0 ~len:(Bytes.length b)

let drain dec =
  let rec go acc =
    match Net_framing.next dec with
    | Net_framing.Frame p -> go (p :: acc)
    | Net_framing.Awaiting _ | Net_framing.Fail _ -> List.rev acc
  in
  go []

let test_framing_roundtrip () =
  let dec = Net_framing.create_decoder () in
  let payloads =
    [ Bytes.create 0; Bytes.of_string "x"; Bytes.of_string (String.make 5000 'p') ]
  in
  List.iter (fun p -> feed_all dec (Net_framing.encode p)) payloads;
  let out = drain dec in
  Alcotest.(check int) "all frames decoded" (List.length payloads)
    (List.length out);
  List.iter2
    (fun a b -> Alcotest.(check bool) "payload intact" true (Bytes.equal a b))
    payloads out;
  Alcotest.(check int) "buffer fully consumed" 0 (Net_framing.buffered dec)

let prop_chunked_concat =
  QCheck.Test.make ~name:"concatenated frames survive arbitrary chunking"
    ~count:60
    QCheck.(pair (small_list (string_of_size (QCheck.Gen.int_range 0 200))) (int_range 1 17))
    (fun (strings, chunk) ->
      let payloads = List.map Bytes.of_string strings in
      let wire =
        Bytes.concat Bytes.empty (List.map Net_framing.encode payloads)
      in
      let dec = Net_framing.create_decoder () in
      let n = Bytes.length wire in
      let pos = ref 0 in
      let out = ref [] in
      while !pos < n do
        let len = min chunk (n - !pos) in
        Net_framing.feed dec wire ~pos:!pos ~len;
        pos := !pos + len;
        out := List.rev_append (drain dec) !out
      done;
      let out = List.rev !out in
      List.length out = List.length payloads
      && List.for_all2 Bytes.equal payloads out)

let prop_truncation =
  QCheck.Test.make ~name:"truncation awaits, then completes" ~count:80
    QCheck.(string_of_size (QCheck.Gen.int_range 0 300))
    (fun s ->
      let payload = Bytes.of_string s in
      let frame = Net_framing.encode payload in
      let total = Bytes.length frame in
      (* every proper prefix must yield Awaiting, never a frame or an
         exception; completing the bytes must yield the exact payload *)
      let ok = ref true in
      for cut = 0 to total - 1 do
        let dec = Net_framing.create_decoder () in
        Net_framing.feed dec frame ~pos:0 ~len:cut;
        (match Net_framing.next dec with
        | Net_framing.Awaiting need ->
            if need <= 0 || need > total - cut then ok := false
        | Net_framing.Frame _ | Net_framing.Fail _ -> ok := false);
        Net_framing.feed dec frame ~pos:cut ~len:(total - cut);
        match Net_framing.next dec with
        | Net_framing.Frame p -> if not (Bytes.equal p payload) then ok := false
        | _ -> ok := false
      done;
      !ok)

let prop_bit_flip =
  QCheck.Test.make ~name:"single bit flip never yields a frame" ~count:200
    QCheck.(pair (string_of_size (QCheck.Gen.int_range 0 120)) (pair small_nat small_nat))
    (fun (s, (byte_seed, bit)) ->
      let frame = Net_framing.encode (Bytes.of_string s) in
      let i = byte_seed mod Bytes.length frame in
      Bytes.set frame i
        (Char.chr (Char.code (Bytes.get frame i) lxor (1 lsl (bit mod 8))));
      let dec = Net_framing.create_decoder () in
      feed_all dec frame;
      match Net_framing.next dec with
      | Net_framing.Frame _ -> false (* CRC, magic or length must catch it *)
      | Net_framing.Awaiting _ | Net_framing.Fail _ -> true)

let test_framing_oversized () =
  let dec = Net_framing.create_decoder ~max_frame:1024 () in
  let header = Bytes.create 8 in
  Bytes.blit_string Net_framing.magic 0 header 0 4;
  (* claim 1 MiB against a 1 KiB limit *)
  Bytes.set header 4 '\x00';
  Bytes.set header 5 '\x10';
  Bytes.set header 6 '\x00';
  Bytes.set header 7 '\x00';
  feed_all dec header;
  (match Net_framing.next dec with
  | Net_framing.Fail (Net_framing.Oversized { claimed; limit }) ->
      Alcotest.(check int) "claimed" (1 lsl 20) claimed;
      Alcotest.(check int) "limit" 1024 limit
  | _ -> Alcotest.fail "oversized prefix not rejected");
  (* poisoned: a valid frame afterwards is still refused *)
  feed_all dec (Net_framing.encode (Bytes.of_string "ok"));
  match Net_framing.next dec with
  | Net_framing.Fail _ -> ()
  | _ -> Alcotest.fail "decoder resynchronised after poison"

let test_framing_garbage () =
  let dec = Net_framing.create_decoder () in
  feed_all dec (Bytes.of_string "GET / HTTP/1.1\r\n");
  match Net_framing.next dec with
  | Net_framing.Fail Net_framing.Bad_magic -> ()
  | _ -> Alcotest.fail "garbage not rejected as Bad_magic"

(* ------------------------------------------------------------------ *)
(* server fixtures                                                     *)
(* ------------------------------------------------------------------ *)

let build_ledger ~name ?(crypto = Crypto_profile.Real) ?(members = 2)
    ?(entries = 8) () =
  let clock = Clock.create () in
  let config =
    { Ledger.default_config with name; block_size = 4; fam_delta = 3; crypto }
  in
  let ledger = Ledger.create ~config ~clock () in
  let creds =
    List.init members (fun i ->
        Ledger.new_member ledger ~name:(Printf.sprintf "c%d" i)
          ~role:Roles.Regular_user)
  in
  let member, priv = List.hd creds in
  for i = 0 to entries - 1 do
    Clock.advance_ms clock 10.;
    ignore
      (Ledger.append ledger ~member ~priv
         ~clues:[ "seed-" ^ string_of_int (i mod 3) ]
         (Bytes.of_string (Printf.sprintf "seed %d" i)))
  done;
  (clock, config, ledger, creds)

let with_server ?config ?read backend f =
  let server = Net_server.create ?config ?read backend in
  Fun.protect ~finally:(fun () -> Net_server.stop server) (fun () -> f server)

let loopback_transport server =
  let ep =
    Net_transport.connect ~host:"127.0.0.1" ~port:(Net_server.port server) ()
  in
  (ep, Net_transport.transport ep)

(* ------------------------------------------------------------------ *)
(* differential: TCP verdicts ≡ in-process verdicts                    *)
(* ------------------------------------------------------------------ *)

let test_differential () =
  (* two bit-identical ledgers driven by the same request bytes: one
     dispatched in-process, one across loopback TCP *)
  let _, _, local, _ = build_ledger ~name:"diff" () in
  let _, _, remote, creds = build_ledger ~name:"diff" () in
  let member, priv = List.hd creds in
  let svc =
    Service.Client.create ~ledger_uri:(Ledger.uri remote) ~member ~priv ()
  in
  let script =
    List.concat
      [
        List.init 3 (fun i ->
            Service.Client.make_append svc
              ~clues:[ "wire-" ^ string_of_int i ]
              ~client_ts:(Int64.of_int (1000 + i))
              (Bytes.of_string (Printf.sprintf "wire %d" i)));
        [
          Service.Client.make_get_commitment ();
          Service.Client.make_get_proof ~jsn:2;
          Service.Client.make_get_proof_bundle ~jsn:5;
          Service.Client.make_get_clue_bundle ~clue:"seed-1" ();
          Service.Client.make_get_receipt ~jsn:1;
          Service.Client.make_get_journal ~jsn:3;
          Service.Client.make_get_members ();
          Service.Client.make_get_checkpoint ();
          Service.Client.make_get_extension ~old_size:4;
        ];
      ]
  in
  with_server (Service.handle remote) (fun server ->
      let ep, transport = loopback_transport server in
      List.iteri
        (fun i req ->
          let in_process = Service.handle local req in
          let over_tcp = transport req in
          Alcotest.(check bool)
            (Printf.sprintf "request %d: TCP response ≡ in-process" i)
            true
            (Bytes.equal in_process over_tcp))
        script;
      Net_transport.close ep)

let test_concurrent_clients () =
  let clock0, _, ledger, creds = build_ledger ~name:"conc" ~members:4 () in
  ignore clock0;
  let size0 = Ledger.size ledger in
  let lsp_pub = Ledger.lsp_public_key ledger in
  let n_threads = 4 and per_thread = 6 in
  with_server (Service.handle ledger) (fun server ->
      let bad = Atomic.make 0 in
      let threads =
        List.mapi
          (fun ti (member, priv) ->
            Thread.create
              (fun () ->
                let ep, transport = loopback_transport server in
                let clock = Clock.create () in
                let svc =
                  Service.Client.create ~ledger_uri:(Ledger.uri ledger)
                    ~member ~priv ()
                in
                for i = 0 to per_thread - 1 do
                  let req =
                    Service.Client.make_append svc
                      ~clues:[ Printf.sprintf "t%d" ti ]
                      ~client_ts:(Int64.of_int i)
                      (Bytes.of_string (Printf.sprintf "t%d-%d" ti i))
                  in
                  match
                    Transport.request_expect ~clock
                      ~decode:(function
                        | Service.Receipt_r r -> Some r
                        | _ -> None)
                      transport req
                  with
                  | Ok r ->
                      if not (Receipt.verify ~lsp_pub r) then
                        Atomic.incr bad
                  | Error _ -> Atomic.incr bad
                done;
                Net_transport.close ep)
              ())
          creds
      in
      List.iter Thread.join threads;
      Alcotest.(check int) "no failed or unverified appends" 0
        (Atomic.get bad);
      Alcotest.(check int) "every append committed"
        (size0 + (n_threads * per_thread))
        (Ledger.size ledger);
      let stats = Net_server.stats server in
      Alcotest.(check bool) "served counter covers the appends" true
        (stats.Net_server.served >= n_threads * per_thread);
      Alcotest.(check int) "no framing errors" 0
        stats.Net_server.framing_errors)

(* ------------------------------------------------------------------ *)
(* graceful shutdown                                                   *)
(* ------------------------------------------------------------------ *)

let test_graceful_shutdown () =
  let _, _, ledger, _ = build_ledger ~name:"drain" () in
  let slow req =
    Unix.sleepf 0.15;
    Service.handle ledger req
  in
  let server = Net_server.create slow in
  let port = Net_server.port server in
  let ep, transport = loopback_transport server in
  let answer = ref None in
  let client =
    Thread.create
      (fun () ->
        answer := Some (transport (Service.Client.make_get_commitment ())))
      ()
  in
  Thread.delay 0.05;
  (* in flight now; stop must drain it, not cut it *)
  Net_server.stop server;
  Thread.join client;
  (match !answer with
  | Some resp -> (
      match Service.Client.parse resp with
      | Some (Service.Commitment_r _) -> ()
      | _ -> Alcotest.fail "in-flight request drained to a wrong response")
  | None -> Alcotest.fail "in-flight request was cut by shutdown");
  Net_transport.close ep;
  Alcotest.(check bool) "server reports stopped" false
    (Net_server.running server);
  (* new connections are refused, surfacing as a typed transport error *)
  let ep2 = Net_transport.connect ~host:"127.0.0.1" ~port () in
  let clock = Clock.create () in
  (match
     Transport.request ~policy:{ Transport.no_retry with max_attempts = 2 }
       ~clock
       (Net_transport.transport ep2)
       (Service.Client.make_get_commitment ())
   with
  | Error e -> Alcotest.(check int) "attempt count reported" 2 e.Transport.attempts
  | Ok _ -> Alcotest.fail "stopped server still answering");
  Net_transport.close ep2;
  (* the port is free immediately: SO_REUSEADDR, listener closed *)
  let server2 =
    Net_server.create
      ~config:{ Net_server.default_config with port }
      (Service.handle ledger)
  in
  Alcotest.(check int) "rebound the same port" port (Net_server.port server2);
  let ep3, transport3 = loopback_transport server2 in
  (match Service.Client.parse (transport3 (Service.Client.make_get_commitment ())) with
  | Some (Service.Commitment_r _) -> ()
  | _ -> Alcotest.fail "restarted server not serving");
  Net_transport.close ep3;
  Net_server.stop server2

(* ------------------------------------------------------------------ *)
(* lock-free read dispatch                                             *)
(* ------------------------------------------------------------------ *)

let test_reads_never_take_the_lock () =
  let module Metrics = Ledger_obs.Metrics in
  let module Obs = Ledger_obs.Obs in
  let _, _, ledger, creds = build_ledger ~name:"lockfree" () in
  Obs.enable ();
  Metrics.reset ();
  with_server ~read:(Service.handle_read ledger) (Service.handle ledger)
    (fun server ->
      let ep, transport = loopback_transport server in
      let reads =
        [
          Service.Client.make_get_commitment ();
          Service.Client.make_get_proof ~jsn:2;
          Service.Client.make_get_proof_bundle ~jsn:5;
          Service.Client.make_get_members ();
          Service.Client.make_get_checkpoint ();
          (* an out-of-range read errors, but still without the lock *)
          Service.Client.make_get_payload ~jsn:999;
        ]
      in
      List.iter (fun req -> ignore (transport req)) reads;
      let n = List.length reads in
      let stats = Net_server.stats server in
      Alcotest.(check int) "every read served lock-free" n
        stats.Net_server.read_served;
      Alcotest.(check int) "read dispatch metric counts them" n
        (Metrics.counter_value "net_read_dispatch_total");
      Alcotest.(check int) "no read acquired the dispatch lock" 0
        (Metrics.counter_value "net_locked_dispatch_total");
      let domain_sum =
        List.fold_left
          (fun acc (name, _) ->
            if String.starts_with ~prefix:"net_read_dispatch_domain_" name
            then acc + Metrics.counter_value name
            else acc)
          0 (Metrics.names ())
      in
      Alcotest.(check int) "per-domain counters cover every read" n
        domain_sum;
      (* a mutation takes the locked path, and only the mutation *)
      let member, priv = List.hd creds in
      let svc =
        Service.Client.create ~ledger_uri:(Ledger.uri ledger) ~member ~priv ()
      in
      (match
         Service.Client.parse
           (transport
              (Service.Client.make_append svc ~client_ts:1L
                 (Bytes.of_string "locked")))
       with
      | Some (Service.Receipt_r _) -> ()
      | _ -> Alcotest.fail "append over the split dispatch failed");
      Alcotest.(check int) "exactly the append took the lock" 1
        (Metrics.counter_value "net_locked_dispatch_total");
      Alcotest.(check int) "the append did not count as a read" n
        (Net_server.stats server).Net_server.read_served;
      Net_transport.close ep);
  Metrics.reset ();
  Obs.disable ()

(* regression: frames still queued (or arriving) while [stop] drains the
   connections must be answered on the lock-free read path, not dropped *)
let test_drain_answers_reads () =
  let _, _, ledger, _ = build_ledger ~name:"drainread" () in
  let server =
    Net_server.create ~read:(Service.handle_read ledger)
      (Service.handle ledger)
  in
  let port = Net_server.port server in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.setsockopt_float sock Unix.SO_RCVTIMEO 5.0;
  let n = 5 in
  let frame = Net_framing.encode (Service.Client.make_get_commitment ()) in
  for _ = 1 to n do
    let len = Bytes.length frame in
    if Unix.write sock frame 0 len <> len then Alcotest.fail "short write"
  done;
  (* wait until a worker has accepted the connection: a connection still
     in the listen backlog is legitimately refused by a stopping server,
     and the drain guarantee only covers accepted connections *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  while
    (Net_server.stats server).Net_server.accepted < 1
    && Unix.gettimeofday () < deadline
  do
    Thread.yield ()
  done;
  Alcotest.(check bool) "connection accepted before stop" true
    ((Net_server.stats server).Net_server.accepted >= 1);
  (* stop while the frames are in flight: the drain must answer them *)
  let stopper = Thread.create (fun () -> Net_server.stop server) () in
  let dec = Net_framing.create_decoder () in
  let buf = Bytes.create 4096 in
  let got = ref [] in
  (try
     while List.length !got < n do
       let k = try Unix.read sock buf 0 4096 with Unix.Unix_error _ -> 0 in
       if k = 0 then raise Exit;
       Net_framing.feed dec buf ~pos:0 ~len:k;
       let rec drain () =
         match Net_framing.next dec with
         | Net_framing.Frame p ->
             got := p :: !got;
             drain ()
         | _ -> ()
       in
       drain ()
     done
   with Exit -> ());
  Thread.join stopper;
  Unix.close sock;
  Alcotest.(check int) "every queued frame answered through the drain" n
    (List.length !got);
  List.iter
    (fun resp ->
      match Service.Client.parse resp with
      | Some (Service.Commitment_r _) -> ()
      | _ -> Alcotest.fail "drained frame answered with a wrong response")
    !got;
  let stats = Net_server.stats server in
  Alcotest.(check bool) "drained reads used the lock-free path" true
    (stats.Net_server.read_served >= n)

(* ------------------------------------------------------------------ *)
(* socket-level faults                                                 *)
(* ------------------------------------------------------------------ *)

let test_killed_server_mid_request () =
  let _, _, ledger, _ = build_ledger ~name:"kill" () in
  let server = Net_server.create (Service.handle ledger) in
  let ep, transport = loopback_transport server in
  let clock = Clock.create () in
  (* establish the connection with one good request *)
  (match
     Transport.request ~clock transport (Service.Client.make_get_commitment ())
   with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "warm-up request failed");
  Net_server.stop server;
  (* the established connection is now dead: EOF mid-request, then
     reconnects are refused — all mapped to transient faults, retried,
     and reported with the attempt count *)
  let policy = { Transport.default_policy with max_attempts = 3 } in
  (match
     Transport.request ~policy ~clock transport
       (Service.Client.make_get_commitment ())
   with
  | Ok _ -> Alcotest.fail "request succeeded against a killed server"
  | Error e ->
      Alcotest.(check int) "every attempt was used" 3 e.Transport.attempts);
  Net_transport.close ep

let test_replica_pull_resumes_over_tcp () =
  let _, config, ledger, _ = build_ledger ~name:"pullnet" ~entries:12 () in
  with_server (Service.handle ledger) (fun server ->
      let scratch = fresh_dir () in
      (* first attempt: the connection dies after 8 requests *)
      let ep1, tr1 = loopback_transport server in
      let seen = ref 0 in
      let flaky req =
        incr seen;
        if !seen > 8 then raise (Transport.Timeout "simulated cut")
        else tr1 req
      in
      let clock = Clock.create () in
      (match
         Replica.pull_verbose ~transport:flaky ~policy:Transport.no_retry
           ~config ~clock ~scratch_dir:scratch ()
       with
      | Ok _ -> Alcotest.fail "pull survived a cut transport"
      | Error _ -> ());
      Net_transport.close ep1;
      (* reconnect: the pull resumes from the staged journals *)
      let ep2, tr2 = loopback_transport server in
      (match
         Replica.pull_verbose ~transport:tr2 ~config ~clock
           ~scratch_dir:scratch ()
       with
      | Error e -> Alcotest.fail (Replica.error_to_string e)
      | Ok (replica, stats) ->
          Alcotest.(check int) "replica complete" (Ledger.size ledger)
            (Ledger.size replica);
          Alcotest.(check bool) "commitments agree" true
            (Hash.equal (Ledger.commitment ledger) (Ledger.commitment replica));
          Alcotest.(check bool) "resumed from the interrupted stage" true
            (stats.Replica.resumed_from > 0));
      Net_transport.close ep2)

let test_sharded_pull_over_tcp () =
  let module SL = Ledger_shard.Sharded_ledger in
  let module SS = Ledger_shard.Sharded_service in
  let clock = Clock.create () in
  let config =
    {
      SL.base =
        { Ledger.default_config with name = "netfleet"; block_size = 4;
          fam_delta = 3 };
      shards = 2;
    }
  in
  let fleet = SL.create ~config ~clock () in
  let user, key = SL.new_member fleet ~name:"nfu" ~role:Roles.Regular_user in
  for i = 0 to 15 do
    ignore
      (SL.append fleet ~member:user ~priv:key
         ~clues:[ "nf" ^ string_of_int i ]
         (Bytes.of_string (Printf.sprintf "nf %d" i)))
  done;
  (match SL.seal_epoch fleet with Ok _ -> () | Error e -> Alcotest.fail e);
  with_server (SS.handle fleet) (fun server ->
      let ep, transport = loopback_transport server in
      let pull_clock = Clock.create () in
      (match
         Ledger_shard.Sharded_replica.pull_all ~transport ~config
           ~clock:pull_clock ~scratch_dir:(fresh_dir ()) ()
       with
      | Error e ->
          Alcotest.fail (Ledger_shard.Sharded_replica.error_to_string e)
      | Ok fl ->
          Alcotest.(check int) "both shards pulled over TCP" 2
            (Array.length fl.Ledger_shard.Sharded_replica.shards);
          Array.iteri
            (fun i replica ->
              Alcotest.(check bool)
                (Printf.sprintf "shard %d commitment matches" i)
                true
                (Hash.equal
                   (Ledger.commitment (SL.shard fleet i))
                   (Ledger.commitment replica)))
            fl.Ledger_shard.Sharded_replica.shards);
      Net_transport.close ep)

(* ------------------------------------------------------------------ *)
(* load harness                                                        *)
(* ------------------------------------------------------------------ *)

let test_mini_load_run () =
  let crypto = Crypto_profile.default_simulated in
  let _, _, ledger, _ =
    build_ledger ~name:"mini-load" ~crypto ~members:8 ~entries:4 ()
  in
  with_server
    ~config:{ Net_server.default_config with port = 0; workers = 4 }
    ~read:(Service.handle_read ledger)
    (Service.handle ledger)
    (fun server ->
      let cfg =
        {
          Load_gen.default_config with
          port = Net_server.port server;
          logical_clients = 500;
          connections = 4;
          total_ops = 160;
          clue_count = 32;
          payload_size = 32;
          pulls = 1;
          seed = 7;
          crypto;
          (* the replica pull replays with this geometry; fam epoch
             rolls make the commitment delta-dependent past 2^delta
             journals, so it must match the served fixture exactly *)
          ledger_config =
            Some
              { Ledger.default_config with name = "mini-load"; block_size = 4;
                fam_delta = 3; crypto };
          scratch_dir = Some (fresh_dir ());
        }
      in
      let r = Load_gen.run cfg in
      Alcotest.(check int) "all ops completed" 160 r.Load_gen.ops;
      Alcotest.(check int) "no transport failures" 0
        r.Load_gen.transport_failures;
      Alcotest.(check int) "no verification failures" 0
        r.Load_gen.verify_failures;
      Alcotest.(check int) "replica pull verified" 1 r.Load_gen.pulls_ok;
      Alcotest.(check bool) "append/verify/lineage all exercised" true
        (r.Load_gen.appends > 0 && r.Load_gen.verifies > 0
        && r.Load_gen.lineages > 0);
      Alcotest.(check bool) "percentiles ordered" true
        (r.Load_gen.p50_us <= r.Load_gen.p95_us
        && r.Load_gen.p95_us <= r.Load_gen.p99_us
        && r.Load_gen.p99_us <= r.Load_gen.max_us);
      Alcotest.(check bool) "sustained tps reported" true
        (r.Load_gen.tps > 0.);
      Alcotest.(check int) "read/write split covers all ops" 160
        (r.Load_gen.read_ops + r.Load_gen.write_ops);
      Alcotest.(check bool) "4-worker server answered reads lock-free" true
        ((Net_server.stats server).Net_server.read_served > 0))

let test_read_ratio_knob () =
  let crypto = Crypto_profile.default_simulated in
  let _, _, ledger, _ =
    build_ledger ~name:"read-heavy" ~crypto ~members:4 ~entries:4 ()
  in
  with_server
    ~config:{ Net_server.default_config with port = 0; workers = 2 }
    ~read:(Service.handle_read ledger)
    (Service.handle ledger)
    (fun server ->
      let cfg =
        {
          Load_gen.default_config with
          port = Net_server.port server;
          logical_clients = 100;
          connections = 2;
          total_ops = 120;
          clue_count = 16;
          payload_size = 32;
          pulls = 0;
          read_ratio = Some 0.9;
          seed = 11;
          crypto;
          ledger_config =
            Some
              { Ledger.default_config with name = "read-heavy";
                block_size = 4; fam_delta = 3; crypto };
        }
      in
      let r = Load_gen.run cfg in
      Alcotest.(check int) "all ops completed" 120 r.Load_gen.ops;
      Alcotest.(check int) "no verification failures" 0
        r.Load_gen.verify_failures;
      Alcotest.(check int) "no transport failures" 0
        r.Load_gen.transport_failures;
      Alcotest.(check int) "split covers all ops" 120
        (r.Load_gen.read_ops + r.Load_gen.write_ops);
      Alcotest.(check bool) "the mix skews read-heavy" true
        (r.Load_gen.read_ops > 3 * r.Load_gen.write_ops);
      Alcotest.(check bool) "read percentiles ordered" true
        (r.Load_gen.read_p50_us <= r.Load_gen.read_p95_us
        && r.Load_gen.read_p95_us <= r.Load_gen.read_p99_us
        && r.Load_gen.read_p99_us <= r.Load_gen.read_max_us);
      Alcotest.(check bool) "reads served on the lock-free path" true
        ((Net_server.stats server).Net_server.read_served
        >= r.Load_gen.verifies + r.Load_gen.lineages))

(* ------------------------------------------------------------------ *)
(* metrics satellites                                                  *)
(* ------------------------------------------------------------------ *)

let test_metrics_summary () =
  let module Metrics = Ledger_obs.Metrics in
  let module Obs = Ledger_obs.Obs in
  Obs.enable ();
  Metrics.reset ();
  for v = 1 to 1000 do
    Metrics.observe "net_test_us" (float_of_int v)
  done;
  (match Metrics.summary "net_test_us" with
  | None -> Alcotest.fail "summary missing"
  | Some s ->
      Alcotest.(check int) "count" 1000 s.Metrics.s_count;
      Alcotest.(check (float 0.001)) "mean" 500.5 s.Metrics.s_mean;
      Alcotest.(check bool) "p50 <= p95 <= p99 <= max" true
        (s.Metrics.s_p50 <= s.Metrics.s_p95
        && s.Metrics.s_p95 <= s.Metrics.s_p99
        && s.Metrics.s_p99 <= s.Metrics.s_max));
  Alcotest.(check (option Alcotest.string)) "no summary for counters" None
    (Option.map (fun _ -> "yes") (Metrics.summary "absent"));
  let text = Obs.to_prometheus_text () in
  let has needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "net_* histograms expose summary quantiles" true
    (has "net_test_us_summary{quantile=\"0.5\"}"
    && has "net_test_us_summary{quantile=\"0.99\"}");
  Metrics.reset ();
  Obs.disable ()

let test_zipf () =
  let rng = Ledger_bench_util.Det_rng.create ~seed:99 in
  let z = Ledger_bench_util.Workload.zipf ~n:50 ~s:1.2 in
  let counts = Array.make 50 0 in
  for _ = 1 to 20_000 do
    let k = Ledger_bench_util.Workload.zipf_draw z rng in
    Alcotest.(check bool) "in range" true (k >= 0 && k < 50);
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check bool) "rank 0 dominates rank 10" true
    (counts.(0) > counts.(10) && counts.(10) > 0);
  (* s = 0 degenerates to uniform: no rank should dominate by 3x *)
  let u = Ledger_bench_util.Workload.zipf ~n:10 ~s:0. in
  let uc = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let k = Ledger_bench_util.Workload.zipf_draw u rng in
    uc.(k) <- uc.(k) + 1
  done;
  let mn = Array.fold_left min max_int uc and mx = Array.fold_left max 0 uc in
  Alcotest.(check bool) "roughly uniform at s=0" true (mx < 3 * mn)

let suite =
  [
    tc "framing: round-trip" `Quick test_framing_roundtrip;
    qcheck prop_chunked_concat;
    qcheck prop_truncation;
    qcheck prop_bit_flip;
    tc "framing: oversized prefix refused unallocated" `Quick
      test_framing_oversized;
    tc "framing: garbage is Bad_magic" `Quick test_framing_garbage;
    tc "server: TCP ≡ in-process (differential)" `Quick test_differential;
    tc "server: concurrent verifying clients" `Quick test_concurrent_clients;
    tc "server: graceful drain, refusal, same-port restart" `Quick
      test_graceful_shutdown;
    tc "server: reads never take the dispatch lock" `Quick
      test_reads_never_take_the_lock;
    tc "server: stop-drain answers queued reads lock-free" `Quick
      test_drain_answers_reads;
    tc "transport: killed server surfaces attempts" `Quick
      test_killed_server_mid_request;
    tc "replica: pull resumes over TCP after reconnect" `Quick
      test_replica_pull_resumes_over_tcp;
    tc "sharded: fleet pull over TCP" `Quick test_sharded_pull_over_tcp;
    tc "load: mini closed-loop run, all proofs verify" `Quick
      test_mini_load_run;
    tc "load: read-ratio knob drives a read-heavy mix" `Quick
      test_read_ratio_knob;
    tc "metrics: summary + prometheus quantiles" `Quick test_metrics_summary;
    tc "workload: zipf sampler" `Quick test_zipf;
  ]
