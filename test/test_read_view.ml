(* The lock-free read path (DESIGN.md §17), locked down three ways:

   1. differentially — every read served from a published
      {!Ledger.Read_view} must be byte-identical to the same request
      dispatched against the live, lock-held ledger (receipt timestamps
      and error strings included), at every mutation boundary: append,
      block seal, occult (sync and async), reorganize, storage
      compaction and purge;
   2. pinned pagination — a paged scan that pins its first page's epoch
      either completes against that snapshot or gets a typed [Stale_r]
      refusal, never a silently cross-snapshot page;
   3. concurrently — reader domains hammer the snapshot path while a
      writer appends, seals and reorganizes; every proof must verify
      against the commitment shipped in the {e same} response, and no
      scan may mix two epochs without a [Stale_r]. *)

open Ledger_crypto
open Ledger_storage
open Ledger_core
open Ledger_merkle
open Ledger_cmtree
module Range_query = Ledger_query.Range_query

let tc = Alcotest.test_case
let qcheck = QCheck_alcotest.to_alcotest

(* Real crypto (deterministic ECDSA, no simulated signing cost) + free
   latency (reads charge no simulated I/O): neither path advances any
   clock, so live and snapshot responses must agree to the last byte. *)
let make_env ?(entries = 10) ~name () =
  let clock = Clock.create () in
  let config =
    { Ledger.default_config with name; block_size = 4; fam_delta = 3;
      latency = Latency_model.free; crypto = Crypto_profile.Real }
  in
  let ledger = Ledger.create ~config ~clock () in
  let alice, alice_key =
    Ledger.new_member ledger ~name:"alice" ~role:Roles.Regular_user
  in
  let dba, dba_key = Ledger.new_member ledger ~name:"dba" ~role:Roles.Dba in
  let regulator, regulator_key =
    Ledger.new_member ledger ~name:"reg" ~role:Roles.Regulator
  in
  for i = 0 to entries - 1 do
    Clock.advance_ms clock 10.;
    ignore
      (Ledger.append ledger ~member:alice ~priv:alice_key
         ~clues:[ "rv-" ^ string_of_int (i mod 3) ]
         (Bytes.of_string (Printf.sprintf "rv %d" i)))
  done;
  ( clock, ledger,
    (alice, alice_key), (dba, dba_key), (regulator, regulator_key) )

(* Every read request kind, in range, out of range, and malformed. *)
let read_battery ledger =
  let size = Ledger.size ledger in
  let epoch = Ledger.view_epoch ledger in
  let open Service.Client in
  [
    make_get_commitment ();
    make_get_proof ~jsn:0;
    make_get_proof ~jsn:(size - 1);
    make_get_proof ~jsn:size;
    make_get_proof ~jsn:(-1);
    make_get_payload ~jsn:0;
    make_get_payload ~jsn:2;
    make_get_payload ~jsn:(size + 3);
    make_get_receipt ~jsn:(size - 1);
    make_get_receipt ~jsn:1;
    make_get_receipt ~jsn:(size + 7);
    make_get_clue_proof ~clue:"rv-1" ();
    make_get_clue_proof ~clue:"rv-1" ~first:0 ~last:0 ();
    make_get_clue_proof ~clue:"absent" ();
    make_get_extension ~old_size:(max 1 (size / 2));
    make_get_extension ~old_size:(size + 1);
    make_get_journal ~jsn:0;
    make_get_journal ~jsn:2;
    make_get_journal ~jsn:size;
    make_get_block ~height:0;
    make_get_block ~height:999;
    make_get_members ();
    make_get_checkpoint ();
    make_get_proof_bundle ~jsn:(size - 1);
    make_get_proof_bundle ~jsn:(size + 2);
    make_get_clue_bundle ~clue:"rv-0" ();
    make_get_clue_bundle ~clue:"nope" ();
    make_query_page ~spec:(Range_query.Prefix "rv-") ~page_size:2 ();
    make_query_page ~spec:(Range_query.Prefix "rv-") ~pin:epoch ~page_size:2 ();
    make_query_page ~spec:(Range_query.Prefix "rv-") ~pin:(epoch + 1)
      ~page_size:2 ();
    make_query_page
      ~spec:(Range_query.Between { lo = "rv-0"; hi = None })
      ~page_size:8 ();
    make_query_page ~spec:(Range_query.Prefix "rv-") ~page_size:0 ();
    Bytes.of_string "not a request";
    Bytes.empty;
  ]

let check_differential ~ctx ledger =
  List.iteri
    (fun i req ->
      let live = Service.handle ledger req in
      match Service.handle_read ledger req with
      | None ->
          Alcotest.failf "%s: request %d misclassified as a mutation" ctx i
      | Some snap ->
          if not (Bytes.equal live snap) then
            Alcotest.failf "%s: request %d: snapshot response ≠ locked" ctx i)
    (read_battery ledger)

let test_differential_over_mutations () =
  let clock, ledger, (alice, alice_key), (dba, dba_key), (reg, reg_key) =
    make_env ~entries:10 ~name:"rv-diff" ()
  in
  check_differential ~ctx:"after appends" ledger;
  Ledger.seal_block ledger;
  check_differential ~ctx:"after seal_block" ledger;
  (match
     Ledger.occult ledger ~target_jsn:2 ~mode:Ledger.Sync
       ~signers:[ (dba, dba_key); (reg, reg_key) ] ~reason:"rv diff"
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  check_differential ~ctx:"after occult(Sync)" ledger;
  (match
     Ledger.occult ledger ~target_jsn:4 ~mode:Ledger.Async
       ~signers:[ (dba, dba_key); (reg, reg_key) ] ~reason:"rv diff"
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (* async occult marked but not yet erased: snapshot must reflect the
     live erasure state, not race ahead of reorganize *)
  check_differential ~ctx:"after occult(Async)" ledger;
  ignore (Ledger.reorganize ledger);
  check_differential ~ctx:"after reorganize" ledger;
  ignore (Ledger.compact_storage ledger);
  check_differential ~ctx:"after compact_storage" ledger;
  let request =
    { Ledger.upto_jsn = 3; survivors = [ 1 ]; erase_fam_nodes = false }
  in
  (match
     Ledger.purge ledger ~request
       ~signers:[ (dba, dba_key); (alice, alice_key) ]
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  check_differential ~ctx:"after purge" ledger;
  Clock.advance_ms clock 10.;
  ignore
    (Ledger.append ledger ~member:alice ~priv:alice_key ~clues:[ "rv-post" ]
       (Bytes.of_string "post purge"));
  check_differential ~ctx:"after post-purge append" ledger

let test_differential_empty_ledger () =
  let _, ledger, _, _, _ = make_env ~entries:0 ~name:"rv-empty" () in
  check_differential ~ctx:"empty ledger" ledger

let test_mutations_refused_on_read_path () =
  let clock, ledger, (alice, alice_key), _, _ =
    make_env ~entries:3 ~name:"rv-mut" ()
  in
  let client =
    Service.Client.create ~ledger_uri:(Ledger.uri ledger) ~member:alice
      ~priv:alice_key ()
  in
  Clock.advance_ms clock 10.;
  let append_req =
    Service.Client.make_append client ~client_ts:(Clock.now clock)
      (Bytes.of_string "must not commit")
  in
  let size0 = Ledger.size ledger in
  (match Service.handle_read ledger append_req with
  | None -> ()
  | Some _ -> Alcotest.fail "append served on the read path");
  Alcotest.(check int) "read path committed nothing" size0
    (Ledger.size ledger);
  let batch_req =
    Service.Client.make_append_batch client
      [ (Bytes.of_string "b0", [], Clock.now clock) ]
  in
  (match Service.handle_read ledger batch_req with
  | None -> ()
  | Some _ -> Alcotest.fail "append_batch served on the read path");
  (* the refused frames still commit fine through the locked path *)
  (match Service.Client.parse (Service.handle ledger append_req) with
  | Some (Service.Receipt_r _) -> ()
  | _ -> Alcotest.fail "locked path rejected the append");
  match Service.Client.parse (Service.handle ledger batch_req) with
  | Some (Service.Receipts_r _) -> ()
  | _ -> Alcotest.fail "locked path rejected the batch"

(* --- qcheck: random reads stay byte-identical ----------------------- *)

let diff_env = lazy (make_env ~entries:12 ~name:"rv-rand" ())

let prop_differential_random =
  QCheck.Test.make ~name:"random reads: snapshot ≡ locked dispatch"
    ~count:40
    QCheck.(triple (int_range (-3) 20) (int_range 0 4) (int_range (-1) 6))
    (fun (jsn, clue_i, page_size) ->
      let _, ledger, _, _, _ = Lazy.force diff_env in
      let clue = "rv-" ^ string_of_int clue_i in
      let open Service.Client in
      let reqs =
        [
          make_get_proof ~jsn;
          make_get_payload ~jsn;
          make_get_receipt ~jsn;
          make_get_journal ~jsn;
          make_get_block ~height:jsn;
          make_get_extension ~old_size:jsn;
          make_get_proof_bundle ~jsn;
          make_get_clue_proof ~clue ();
          make_get_clue_bundle ~clue ();
          make_query_page ~spec:(Range_query.Prefix clue) ~page_size ();
        ]
      in
      List.for_all
        (fun req ->
          match Service.handle_read ledger req with
          | None -> false
          | Some snap -> Bytes.equal (Service.handle ledger req) snap)
        reqs)

(* --- epoch-pinned pagination ---------------------------------------- *)

let parse_page ledger req =
  match Option.map Service.Client.parse (Service.handle_read ledger req) with
  | Some (Some r) -> r
  | _ -> Alcotest.fail "read path returned nothing for a query page"

let test_query_pin () =
  let clock, ledger, (alice, alice_key), _, _ =
    make_env ~entries:9 ~name:"rv-pin" ()
  in
  let spec = Range_query.Prefix "rv-" in
  let epoch, cursor =
    match
      parse_page ledger
        (Service.Client.make_query_page ~spec ~page_size:1 ())
    with
    | Service.Query_page_r { epoch; page; _ } ->
        (epoch, page.Range_query.cursor)
    | _ -> Alcotest.fail "first page failed"
  in
  Alcotest.(check int) "epoch is the published view's"
    (Ledger.view_epoch ledger) epoch;
  let after = match cursor with Some c -> c | None -> Alcotest.fail "one-page scan" in
  (* same-epoch pin is honoured and echoes the same epoch *)
  (match
     parse_page ledger
       (Service.Client.make_query_page ~spec ~after ~pin:epoch ~page_size:1 ())
   with
  | Service.Query_page_r { epoch = e2; _ } ->
      Alcotest.(check int) "pinned page on the same epoch" epoch e2
  | _ -> Alcotest.fail "pinned page refused on an unchanged view");
  (* a write republishes the view: the pin must now be refused, typed *)
  Clock.advance_ms clock 10.;
  ignore
    (Ledger.append ledger ~member:alice ~priv:alice_key ~clues:[ "rv-w" ]
       (Bytes.of_string "invalidates the pin"));
  let stale_req =
    Service.Client.make_query_page ~spec ~after ~pin:epoch ~page_size:1 ()
  in
  (match parse_page ledger stale_req with
  | Service.Stale_r { pinned; current } ->
      Alcotest.(check int) "refusal echoes the pin" epoch pinned;
      Alcotest.(check int) "refusal reports the current epoch"
        (Ledger.view_epoch ledger) current
  | Service.Query_page_r _ -> Alcotest.fail "stale pin served a page"
  | _ -> Alcotest.fail "unexpected response to a stale pin");
  (* the locked path refuses byte-identically *)
  Alcotest.(check bool) "locked path agrees on the refusal" true
    (Bytes.equal
       (Service.handle ledger stale_req)
       (Option.get (Service.handle_read ledger stale_req)));
  (* re-pinning on the current epoch resumes the scan *)
  match
    parse_page ledger
      (Service.Client.make_query_page ~spec ~after
         ~pin:(Ledger.view_epoch ledger) ~page_size:1 ())
  with
  | Service.Query_page_r _ -> ()
  | _ -> Alcotest.fail "fresh pin refused"

(* --- concurrent readers vs. a mutating writer ------------------------ *)

let test_concurrent_readers () =
  let clock, ledger, (alice, alice_key), (dba, dba_key), (reg, reg_key) =
    make_env ~entries:12 ~name:"rv-conc" ()
  in
  let seed_n = Ledger.size ledger in
  let tx = Array.init seed_n (Ledger.tx_hash_of ledger) in
  (* whole-clue lineage fixtures: the writer appends under fresh clues
     only, so the seed clues' version lists never change *)
  let known_of clue =
    List.mapi (fun v jsn -> (v, tx.(jsn))) (Ledger.clue_jsns ledger clue)
  in
  let lineages =
    List.map (fun c -> (c, known_of c)) [ "rv-0"; "rv-1"; "rv-2" ]
  in
  let spec = Range_query.Prefix "rv-" in
  let stop = Atomic.make false in
  let failure = Atomic.make None in
  let record msg =
    ignore (Atomic.compare_and_set failure None (Some msg))
  in
  let check_bundle jsn =
    match
      Option.map Service.Client.parse
        (Service.handle_read ledger
           (Service.Client.make_get_proof_bundle ~jsn))
    with
    | Some (Some (Service.Proof_bundle_r { proof; commitment; size })) ->
        if size < seed_n then record "bundle size went backwards";
        if not (Fam.verify ~commitment ~leaf:tx.(jsn) proof) then
          record "fam proof failed against its own bundled commitment"
    | Some _ -> record "proof bundle: unexpected response"
    | None -> record "read request misrouted to the mutation path"
  in
  let check_lineage (clue, known) =
    match
      Option.map Service.Client.parse
        (Service.handle_read ledger
           (Service.Client.make_get_clue_bundle ~clue ()))
    with
    | Some (Some (Service.Clue_bundle_r { proof = Some p; clue_root })) ->
        if not (Cm_tree.verify_clue ~root:clue_root ~known p) then
          record "clue proof failed against its own bundled root"
    | Some (Some (Service.Clue_bundle_r { proof = None; _ })) ->
        record "seed clue disappeared mid-run"
    | Some _ -> record "clue bundle: unexpected response"
    | None -> record "read request misrouted to the mutation path"
  in
  (* a pinned scan must complete on one epoch or be refused with Stale_r;
     a page from a different epoch without the refusal is equivocation *)
  let check_scan () =
    match
      Option.map Service.Client.parse
        (Service.handle_read ledger
           (Service.Client.make_query_page ~spec ~page_size:2 ()))
    with
    | Some (Some (Service.Query_page_r { page; query_root; epoch; _ })) -> (
        let rec follow acc cursor =
          match cursor with
          | None -> `Done (List.rev acc)
          | Some after -> (
              match
                Option.map Service.Client.parse
                  (Service.handle_read ledger
                     (Service.Client.make_query_page ~spec ~after ~pin:epoch
                        ~page_size:2 ()))
              with
              | Some
                  (Some
                     (Service.Query_page_r
                        { page; epoch = e; query_root = r; _ })) ->
                  if e <> epoch || not (Hash.equal r query_root) then `Mixed
                  else follow (page :: acc) page.Range_query.cursor
              | Some (Some (Service.Stale_r _)) -> `Stale
              | _ -> `Bad)
        in
        match follow [ page ] page.Range_query.cursor with
        | `Done pages -> (
            match
              Range_query.verify_pages ~root:query_root ~spec ~page_size:2
                pages
            with
            | Ok _ -> ()
            | Error e -> record ("pinned scan failed verification: " ^ e))
        | `Stale -> () (* typed retryable refusal: the allowed outcome *)
        | `Mixed -> record "scan mixed two epochs without a Stale_r"
        | `Bad -> record "scan: unexpected response")
    | Some (Some (Service.Error_r e)) -> record ("first page refused: " ^ e)
    | _ -> record "first page: unexpected response"
  in
  let reader rid =
    Domain.spawn (fun () ->
        let n = ref 0 in
        while not (Atomic.get stop) do
          incr n;
          check_bundle ((rid + !n) mod seed_n);
          check_lineage (List.nth lineages (!n mod List.length lineages));
          check_scan ()
        done;
        !n)
  in
  let readers = List.init 3 reader in
  (* writer: appends under fresh clues, seals blocks, occults + reorganizes *)
  for i = 0 to 11 do
    Clock.advance_ms clock 10.;
    ignore
      (Ledger.append ledger ~member:alice ~priv:alice_key
         ~clues:[ "w-" ^ string_of_int i ]
         (Bytes.of_string (Printf.sprintf "writer %d" i)));
    if i mod 4 = 3 then Ledger.seal_block ledger;
    if i = 5 then begin
      (match
         Ledger.occult ledger ~target_jsn:(seed_n + 1) ~mode:Ledger.Async
           ~signers:[ (dba, dba_key); (reg, reg_key) ] ~reason:"conc"
       with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e);
      ignore (Ledger.reorganize ledger)
    end
  done;
  Atomic.set stop true;
  let iterations = List.map Domain.join readers in
  (match Atomic.get failure with
  | Some msg -> Alcotest.fail msg
  | None -> ());
  List.iteri
    (fun i n ->
      Alcotest.(check bool)
        (Printf.sprintf "reader %d made progress" i)
        true (n > 0))
    iterations

(* --- sharded fleet: snapshot dispatch ≡ locked dispatch -------------- *)

let test_sharded_differential () =
  let module SL = Ledger_shard.Sharded_ledger in
  let module SS = Ledger_shard.Sharded_service in
  let clock = Clock.create () in
  let config =
    {
      SL.base =
        { Ledger.default_config with name = "rv-fleet"; block_size = 4;
          fam_delta = 3; latency = Latency_model.free;
          crypto = Crypto_profile.Real };
      shards = 2;
    }
  in
  let fleet = SL.create ~config ~clock () in
  let user, key = SL.new_member fleet ~name:"fu" ~role:Roles.Regular_user in
  for i = 0 to 11 do
    Clock.advance_ms clock 10.;
    ignore
      (SL.append fleet ~member:user ~priv:key
         ~clues:[ "f" ^ string_of_int (i mod 4) ]
         (Bytes.of_string (Printf.sprintf "f %d" i)))
  done;
  (match SL.seal_epoch fleet with Ok _ -> () | Error e -> Alcotest.fail e);
  let battery =
    [
      SS.Client.make_get_topology ();
      SS.Client.make_get_super_root ();
      SS.Client.make_get_super_root ~epoch:0 ();
      SS.Client.make_get_super_root ~epoch:99 ();
      SS.Client.make_get_sharded_proof ~shard:0 ~jsn:0;
      SS.Client.make_get_sharded_proof ~shard:1 ~jsn:0;
      SS.Client.make_get_sharded_proof ~shard:5 ~jsn:0;
      SS.Client.make_get_sharded_proof ~shard:0 ~jsn:999;
      SS.Client.make_get_announcement ();
      SS.Client.make_get_announcement ~epoch:0 ();
      SS.Client.make_get_announcement ~epoch:42 ();
      SS.Client.make_query_scatter ~spec:(Range_query.Prefix "f")
        ~page_size:4 ();
      SS.Client.make_query_scatter ~spec:(Range_query.Prefix "f")
        ~page_size:0 ();
      SS.Client.make_to_shard ~shard:0
        (Service.Client.make_get_commitment ());
      SS.Client.make_to_shard ~shard:1 (Service.Client.make_get_proof ~jsn:0);
      SS.Client.make_to_shard ~shard:1
        (Service.Client.make_get_checkpoint ());
      SS.Client.make_to_shard ~shard:9
        (Service.Client.make_get_commitment ());
      SS.Client.make_to_shard ~shard:0 (Bytes.of_string "inner garbage");
      Bytes.of_string "sharded garbage";
    ]
  in
  List.iteri
    (fun i req ->
      let live = SS.handle fleet req in
      match SS.handle_read fleet req with
      | None -> Alcotest.failf "sharded request %d misclassified" i
      | Some snap ->
          if not (Bytes.equal live snap) then
            Alcotest.failf "sharded request %d: snapshot ≠ locked" i)
    battery;
  (* fleet mutations stay on the locked path *)
  (match SS.handle_read fleet (SS.Client.make_seal_epoch ()) with
  | None -> ()
  | Some _ -> Alcotest.fail "seal_epoch served on the read path");
  let sc = SS.Client.create ~config ~member:user ~priv:key () in
  Clock.advance_ms clock 10.;
  let _, routed =
    SS.Client.make_append sc ~client_ts:(Clock.now clock)
      (Bytes.of_string "routed")
  in
  (match SS.handle_read fleet routed with
  | None -> ()
  | Some _ -> Alcotest.fail "routed append served on the read path");
  (* a wrapped inner mutation is a mutation too *)
  let inner_client =
    Service.Client.create
      ~ledger_uri:(Ledger.uri (SL.shard fleet 0))
      ~member:user ~priv:key ()
  in
  Clock.advance_ms clock 10.;
  let wrapped =
    SS.Client.make_to_shard ~shard:0
      (Service.Client.make_append inner_client ~client_ts:(Clock.now clock)
         (Bytes.of_string "wrapped"))
  in
  match SS.handle_read fleet wrapped with
  | None -> ()
  | Some _ -> Alcotest.fail "wrapped inner append served on the read path"

let suite =
  [
    tc "differential: every mutation boundary" `Slow
      test_differential_over_mutations;
    tc "differential: empty ledger" `Quick test_differential_empty_ledger;
    tc "mutations refused on the read path" `Quick
      test_mutations_refused_on_read_path;
    qcheck prop_differential_random;
    tc "query pagination: epoch pin and Stale_r" `Quick test_query_pin;
    tc "concurrent readers vs mutating writer" `Slow test_concurrent_readers;
    tc "sharded: snapshot ≡ locked dispatch" `Slow test_sharded_differential;
  ]
