(* Tests for the observability subsystem: metric registry semantics,
   span tracing under the simulated clock, the verification audit log,
   the exporters, and the instrumentation wired through the stack
   (ledger workload, fault injection, faulty transport). *)

open Ledger_storage
open Ledger_core
open Ledger_timenotary
open Ledger_fault
open Ledger_bench_util
module Obs = Ledger_obs.Obs
module Metrics = Ledger_obs.Metrics
module Trace = Ledger_obs.Trace
module Audit_log = Ledger_obs.Audit_log

let tc = Alcotest.test_case

(* The sinks are process-global; every test starts from a clean slate and
   leaves recording off so no state leaks into other suites. *)
let with_obs ?(time = fun () -> 0L) f =
  Obs.reset ();
  Obs.enable ~time ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    f

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let check_contains what s sub = Alcotest.(check bool) (what ^ ": " ^ sub) true (contains s sub)

(* --- metrics ---------------------------------------------------------- *)

let test_bucket_boundaries () =
  Alcotest.(check int) "0 lands in bucket 0" 0 (Metrics.bucket_index 0.);
  Alcotest.(check int) "negative lands in bucket 0" 0 (Metrics.bucket_index (-7.));
  Alcotest.(check int) "1 lands in bucket 0" 0 (Metrics.bucket_index 1.);
  Alcotest.(check int) "1.5" 1 (Metrics.bucket_index 1.5);
  Alcotest.(check int) "2 exactly on the boundary" 1 (Metrics.bucket_index 2.);
  Alcotest.(check int) "just above 2" 2 (Metrics.bucket_index 2.0001);
  Alcotest.(check int) "1024 exact" 10 (Metrics.bucket_index 1024.);
  Alcotest.(check int) "1025" 11 (Metrics.bucket_index 1025.);
  Alcotest.(check (float 0.)) "ub 0" 1. (Metrics.bucket_upper_bound 0);
  Alcotest.(check (float 0.)) "ub 10" 1024. (Metrics.bucket_upper_bound 10);
  (* boundaries are exact across the range: each upper bound lands in its
     own bucket and the next representable float spills into the next *)
  for i = 0 to 60 do
    let ub = Metrics.bucket_upper_bound i in
    Alcotest.(check int) "ub in own bucket" i (Metrics.bucket_index ub);
    Alcotest.(check int) "ub+ulp in next bucket" (i + 1)
      (Metrics.bucket_index (Float.succ ub))
  done

let test_hist_semantics () =
  with_obs (fun () ->
      List.iter (Metrics.observe "h") [ 0.5; 1.; 2.; 3.; 1024. ];
      match Metrics.hist_snapshot "h" with
      | None -> Alcotest.fail "histogram missing"
      | Some s ->
          Alcotest.(check int) "count" 5 s.Metrics.count;
          Alcotest.(check (float 1e-9)) "sum" 1030.5 s.Metrics.sum;
          Alcotest.(check (float 0.)) "min" 0.5 s.Metrics.min_v;
          Alcotest.(check (float 0.)) "max" 1024. s.Metrics.max_v;
          Alcotest.(check int) "overflow" 0 s.Metrics.overflow;
          Alcotest.(check bool) "bucket occupancy" true
            (s.Metrics.buckets = [ (1., 2); (2., 1); (4., 1); (1024., 1) ]);
          (* rank ceil(0.5×5)=3: the third observation sits in the le=2
             bucket *)
          Alcotest.(check bool) "p50 within bucket bound" true
            (Metrics.approx_quantile "h" 0.5 = Some 2.);
          Alcotest.(check bool) "p100 is last bucket" true
            (Metrics.approx_quantile "h" 1.0 = Some 1024.))

let test_counters_and_gauges () =
  with_obs (fun () ->
      Metrics.incr "c";
      Metrics.incr ~by:4 "c";
      Metrics.set_gauge "g" 2.5;
      Metrics.set_gauge "g" 7.25;
      Alcotest.(check int) "counter accumulates" 5 (Metrics.counter_value "c");
      Alcotest.(check bool) "gauge keeps last" true
        (Metrics.gauge_value "g" = Some 7.25);
      Alcotest.(check int) "missing counter reads 0" 0
        (Metrics.counter_value "nope");
      Alcotest.(check bool) "names sorted with kinds" true
        (Metrics.names () = [ ("c", Metrics.K_counter); ("g", Metrics.K_gauge) ]))

let test_disabled_no_record () =
  Obs.reset ();
  Obs.disable ();
  Metrics.incr "c";
  Metrics.observe "h" 1.;
  Metrics.set_gauge "g" 1.;
  let sp = Trace.enter "x" in
  Alcotest.(check int) "disabled span handle is none" Trace.none sp;
  Trace.exit sp;
  Audit_log.record ~verifier:"t" (Audit_log.Journal 0) Audit_log.Verified;
  Alcotest.(check int) "counter silent" 0 (Metrics.counter_value "c");
  Alcotest.(check bool) "no histogram created" true
    (Metrics.hist_snapshot "h" = None);
  Alcotest.(check bool) "no gauge created" true (Metrics.gauge_value "g" = None);
  Alcotest.(check int) "no spans" 0 (Trace.span_count ());
  Alcotest.(check int) "no audit entries" 0 (Audit_log.size ())

(* --- tracing ---------------------------------------------------------- *)

let test_span_nesting () =
  let clock = Clock.create () in
  with_obs ~time:(fun () -> Clock.now clock) (fun () ->
      let a = Trace.enter "outer" in
      Trace.attr_int a "jsn" 7;
      Clock.advance clock 10L;
      let b = Trace.enter "inner" in
      Clock.advance clock 5L;
      Trace.exit b;
      Clock.advance clock 1L;
      Trace.exit a;
      let outer = List.hd (Trace.find_spans ~name:"outer") in
      let inner = List.hd (Trace.find_spans ~name:"inner") in
      Alcotest.(check int) "outer is a root" 0 outer.Trace.parent;
      Alcotest.(check int) "inner's parent is outer" outer.Trace.id
        inner.Trace.parent;
      Alcotest.(check int) "inner depth" 1 inner.Trace.depth;
      Alcotest.(check int64) "outer start stamped" 0L outer.Trace.start_us;
      Alcotest.(check bool) "outer end stamped" true
        (outer.Trace.end_us = Some 16L);
      Alcotest.(check bool) "inner window" true
        (inner.Trace.start_us = 10L && inner.Trace.end_us = Some 15L);
      Alcotest.(check bool) "seq orders creation" true
        (outer.Trace.seq < inner.Trace.seq);
      Alcotest.(check bool) "attr recorded" true
        (outer.Trace.attrs = [ ("jsn", "7") ]);
      Alcotest.(check int) "everything closed" 0 (Trace.open_spans ());
      (* exception unwinding still closes the span *)
      (try Trace.with_span "boom" (fun () -> failwith "x")
       with Failure _ -> ());
      Alcotest.(check int) "with_span closed on raise" 0 (Trace.open_spans ());
      (* JSON-lines export: one object per span *)
      let lines =
        String.split_on_char '\n' (String.trim (Trace.to_json_lines ()))
      in
      Alcotest.(check int) "one line per span" (Trace.span_count ())
        (List.length lines);
      List.iter
        (fun l ->
          Alcotest.(check bool) "line is a JSON object" true
            (String.length l > 1 && l.[0] = '{'
            && l.[String.length l - 1] = '}'))
        lines;
      check_contains "export" (Trace.to_json_lines ()) "\"name\":\"outer\"";
      check_contains "export" (Trace.to_json_lines ()) "\"attrs\":{\"jsn\":\"7\"}")

(* --- audit log -------------------------------------------------------- *)

let test_audit_coverage () =
  with_obs (fun () ->
      Audit_log.record ~verifier:"a" (Audit_log.Journal 0) Audit_log.Verified;
      Audit_log.record ~verifier:"b" (Audit_log.Receipt 1) Audit_log.Verified;
      Audit_log.record ~verifier:"a" (Audit_log.Journal 2)
        (Audit_log.Repudiated "bad proof");
      (* outside the ledger: must not count *)
      Audit_log.record ~verifier:"a" (Audit_log.Journal 7) Audit_log.Verified;
      (* not a journal subject: must not count *)
      Audit_log.record ~verifier:"a" (Audit_log.Clue "k") Audit_log.Verified;
      let c = Audit_log.coverage ~ledger_size:4 in
      Alcotest.(check int) "verified journals" 2 c.Audit_log.verified_jsns;
      Alcotest.(check int) "total journals" 4 c.Audit_log.total_jsns;
      Alcotest.(check (float 1e-9)) "ratio" 0.5 c.Audit_log.ratio;
      Alcotest.(check (float 0.)) "empty ledger is covered" 1.0
        (Audit_log.coverage ~ledger_size:0).Audit_log.ratio;
      Alcotest.(check int) "all attempts logged" 5 (Audit_log.size ());
      (* re-verifying the same journal does not double count *)
      Audit_log.record ~verifier:"c" (Audit_log.Journal 0) Audit_log.Verified;
      Alcotest.(check int) "dedup across verifiers" 2
        (Audit_log.coverage ~ledger_size:4).Audit_log.verified_jsns;
      (* entries come back oldest first with monotone seq *)
      let seqs = List.map (fun e -> e.Audit_log.seq) (Audit_log.entries ()) in
      Alcotest.(check bool) "entries oldest first" true
        (seqs = List.sort compare seqs))

(* --- exporters -------------------------------------------------------- *)

let test_exporters () =
  with_obs (fun () ->
      Metrics.incr ~by:3 "requests_total";
      Metrics.set_gauge "depth" 2.5;
      List.iter (Metrics.observe "lat") [ 1.; 3.; 100. ];
      Audit_log.record ~verifier:"x" (Audit_log.Journal 0) Audit_log.Verified;
      ignore (Trace.with_span "s" (fun () -> 1));
      let prom = Obs.to_prometheus_text () in
      List.iter
        (check_contains "prometheus" prom)
        [
          "# TYPE requests_total counter";
          "requests_total 3";
          "# TYPE depth gauge";
          "depth 2.5";
          "# TYPE lat histogram";
          "lat_bucket{le=\"1\"} 1";
          "lat_bucket{le=\"4\"} 2";
          "lat_bucket{le=\"128\"} 3";
          "lat_bucket{le=\"+Inf\"} 3";
          "lat_sum 104";
          "lat_count 3";
        ];
      let buf = Buffer.create 256 in
      let ppf = Format.formatter_of_buffer buf in
      Obs.dump ppf;
      Format.pp_print_flush ppf ();
      let d = Buffer.contents buf in
      List.iter
        (check_contains "dump" d)
        [
          "== metrics ==";
          "requests_total";
          "== trace ==";
          "spans=1 open=0";
          "== audit log ==";
          "entries=1";
        ])

(* --- instrumented workload ------------------------------------------- *)

let build_ledger clock =
  let pool = Tsa.pool [ Tsa.create ~endorse_rtt_ms:1. ~clock "obs-tsa" ] in
  let tl = T_ledger.create ~clock ~tsa:pool () in
  let config =
    { Ledger.default_config with name = "obs"; block_size = 4; fam_delta = 3;
      crypto = Crypto_profile.default_simulated }
  in
  let ledger = Ledger.create ~config ~t_ledger:tl ~tsa:pool ~clock () in
  let user, key =
    Ledger.new_member ledger ~name:"obs-user" ~role:Roles.Regular_user
  in
  let receipts = ref [] in
  for i = 0 to 9 do
    Clock.advance_ms clock 50.;
    receipts :=
      Ledger.append ledger ~member:user ~priv:key
        ~clues:[ "c" ^ string_of_int (i mod 2) ]
        (Bytes.of_string (Printf.sprintf "obs %d" i))
      :: !receipts
  done;
  Clock.advance_ms clock 1100.;
  (match Ledger.anchor_via_t_ledger ledger with
  | Ok _ -> ()
  | Error _ -> assert false);
  Ledger.seal_block ledger;
  (ledger, !receipts)

let test_instrumented_workload () =
  let clock = Clock.create () in
  with_obs ~time:(fun () -> Clock.now clock) (fun () ->
      let ledger, receipts = build_ledger clock in
      let n = Ledger.size ledger in
      (* server-side proof check on every journal, then every receipt *)
      for jsn = 0 to n - 1 do
        let proof = Ledger.get_proof ledger jsn in
        Alcotest.(check bool) "existence verified" true
          (Ledger.verify_existence ledger ~jsn ~payload_digest:None proof)
      done;
      List.iter (fun r -> ignore (Ledger.verify_receipt ledger r)) receipts;
      let report = Audit.run ~receipts ledger in
      Alcotest.(check bool) "audit ok" true report.Audit.ok;
      (* counters reflect the workload exactly where the workload is exact *)
      Alcotest.(check int) "receipts issued" 10
        (Metrics.counter_value "ledger_receipts_issued_total");
      Alcotest.(check int) "proofs served" n
        (Metrics.counter_value "ledger_proofs_served_total");
      Alcotest.(check bool) "appends include anchor journals" true
        (Metrics.counter_value "ledger_appends_total" >= 10);
      Alcotest.(check int) "anchors" 1
        (Metrics.counter_value "ledger_time_anchors_total");
      (* the acceptance-criteria histograms are populated *)
      Alcotest.(check bool) "proof-size histogram" true
        (match Metrics.hist_snapshot "ledger_proof_bytes" with
        | Some s -> s.Metrics.count >= n && s.Metrics.min_v > 0.
        | None -> false);
      Alcotest.(check bool) "verify-latency histogram" true
        (match Metrics.hist_snapshot "verify_latency_us" with
        | Some s -> s.Metrics.count >= n
        | None -> false);
      (* the audit log covers the whole ledger *)
      Alcotest.(check (float 0.)) "coverage 100%" 1.0
        (Audit_log.coverage ~ledger_size:n).Audit_log.ratio;
      (* spans: every commit traced, everything closed *)
      Alcotest.(check bool) "commit spans" true
        (List.length (Trace.find_spans ~name:"ledger.commit") >= 10);
      Alcotest.(check bool) "persist children" true
        (List.length (Trace.find_spans ~name:"persist") >= 10);
      Alcotest.(check int) "no span leaks" 0 (Trace.open_spans ()))

(* --- chaos: fault injection vs. metrics ------------------------------- *)

let fresh_dir () =
  let d = Filename.temp_file "obschaos" "dir" in
  Sys.remove d;
  d

let test_fault_counters_match_schedule () =
  let clock = Clock.create () in
  with_obs ~time:(fun () -> Clock.now clock) (fun () ->
      let ledger, _ = build_ledger clock in
      let dir = fresh_dir () in
      Ledger.save ledger ~dir;
      let plan =
        Fault_plan.plan ~seed:42 ~bit_flips:2 ~truncations:1 ~zero_ranges:1
          ~dir ()
      in
      let kind_count p =
        List.length
          (List.filter (fun f -> p f.Fault_plan.kind) (Fault_plan.faults plan))
      in
      let flips = kind_count (function Fault_plan.Bit_flip _ -> true | _ -> false) in
      let truncs =
        kind_count (function Fault_plan.Truncate_tail _ -> true | _ -> false)
      in
      let zeros =
        kind_count (function Fault_plan.Zero_range _ -> true | _ -> false)
      in
      Alcotest.(check (list int)) "plan drew the requested schedule"
        [ 2; 1; 1 ] [ flips; truncs; zeros ];
      Fault_plan.apply plan ~dir;
      Alcotest.(check int) "injected total" 4
        (Metrics.counter_value "fault_injected_total");
      Alcotest.(check int) "bit flips" flips
        (Metrics.counter_value "fault_bit_flip_total");
      Alcotest.(check int) "truncations" truncs
        (Metrics.counter_value "fault_truncate_total");
      Alcotest.(check int) "zero ranges" zeros
        (Metrics.counter_value "fault_zero_range_total"))

let test_faulty_transport_counters () =
  let clock = Clock.create () in
  with_obs ~time:(fun () -> Clock.now clock) (fun () ->
      let ledger, _ = build_ledger clock in
      let rng = Det_rng.create ~seed:5 in
      let ft =
        Faulty_transport.create ~rng
          ~config:
            (Faulty_transport.lossy ~drop:0.2 ~dup:0.1 ~garble:0.1
               ~reorder:0.1 ~delay:0.2 ())
          ~clock (Service.handle ledger)
      in
      let t = Faulty_transport.transport ft in
      for _ = 1 to 40 do
        ignore (Transport.request ~clock t (Service.Client.make_get_commitment ()))
      done;
      let s = Faulty_transport.stats ft in
      Alcotest.(check bool) "schedule injected faults" true
        (s.Faulty_transport.drops + s.Faulty_transport.garbles
         + s.Faulty_transport.dups + s.Faulty_transport.reorders
        > 0);
      List.iter
        (fun (what, expected) ->
          Alcotest.(check int)
            ("faulty_transport_" ^ what ^ "_total")
            expected
            (Metrics.counter_value ("faulty_transport_" ^ what ^ "_total")))
        [
          ("calls", s.Faulty_transport.calls);
          ("drops", s.Faulty_transport.drops);
          ("dups", s.Faulty_transport.dups);
          ("garbles", s.Faulty_transport.garbles);
          ("reorders", s.Faulty_transport.reorders);
          ("delays", s.Faulty_transport.delays);
        ];
      (* every retry attempt is one call into the faulty channel *)
      Alcotest.(check int) "attempts equal channel calls"
        s.Faulty_transport.calls
        (Metrics.counter_value "transport_attempts_total"))

let suite =
  [
    tc "histogram bucket boundaries" `Quick test_bucket_boundaries;
    tc "histogram semantics" `Quick test_hist_semantics;
    tc "counters and gauges" `Quick test_counters_and_gauges;
    tc "disabled sink records nothing" `Quick test_disabled_no_record;
    tc "span nesting under simulated clock" `Quick test_span_nesting;
    tc "audit-log coverage" `Quick test_audit_coverage;
    tc "dump and prometheus exporters" `Quick test_exporters;
    tc "instrumented ledger workload" `Quick test_instrumented_workload;
    tc "fault counters match schedule" `Quick test_fault_counters_match_schedule;
    tc "faulty transport counters" `Quick test_faulty_transport_counters;
  ]
