(* Tests for the Merkle structures: proofs, classic tree, tim accumulator,
   Shrubs, fam, bim and range proofs. *)

open Ledger_crypto
open Ledger_merkle

let tc = Alcotest.test_case
let leaf i = Hash.digest_string ("leaf" ^ string_of_int i)
let qcheck = QCheck_alcotest.to_alcotest

(* --- Proof --------------------------------------------------------------- *)

let test_proof_apply () =
  let l = leaf 0 and r = leaf 1 in
  let root = Hash.combine l r in
  Alcotest.(check bool) "left leaf" true
    (Proof.verify ~leaf:l ~root [ { Proof.dir = Proof.Right; digest = r } ]);
  Alcotest.(check bool) "right leaf" true
    (Proof.verify ~leaf:r ~root [ { Proof.dir = Proof.Left; digest = l } ]);
  Alcotest.(check bool) "direction matters" false
    (Proof.verify ~leaf:l ~root [ { Proof.dir = Proof.Left; digest = r } ])

let test_node_set_digest () =
  let a = [ leaf 1; leaf 2 ] and b = [ leaf 2; leaf 1 ] in
  Alcotest.(check bool) "order-sensitive" false
    (Hash.equal (Proof.node_set_digest a) (Proof.node_set_digest b));
  Alcotest.(check bool) "equal sets" true (Proof.node_set_equal a a);
  Alcotest.(check bool) "unequal sets" false (Proof.node_set_equal a b)

(* --- Merkle tree / accumulator ------------------------------------------- *)

let prop_accumulator_sound =
  QCheck.Test.make ~name:"accumulator proofs verify at any size" ~count:60
    (QCheck.int_range 1 200) (fun n ->
      let acc = Accumulator.create () in
      for i = 0 to n - 1 do
        ignore (Accumulator.append acc (leaf i))
      done;
      let root = Accumulator.root acc in
      List.for_all
        (fun i ->
          Accumulator.verify ~root ~leaf:(leaf i) (Accumulator.prove acc i))
        (List.init n Fun.id))

let prop_accumulator_rejects_fakes =
  QCheck.Test.make ~name:"accumulator rejects wrong leaves" ~count:60
    (QCheck.int_range 2 150) (fun n ->
      let acc = Accumulator.create () in
      for i = 0 to n - 1 do
        ignore (Accumulator.append acc (leaf i))
      done;
      let root = Accumulator.root acc in
      not
        (Accumulator.verify ~root ~leaf:(leaf (n + 7)) (Accumulator.prove acc 0)))

let test_accumulator_proof_growth () =
  (* tim proof length grows with ledger size — the paper's core claim *)
  let acc = Accumulator.create () in
  for i = 0 to (1 lsl 10) - 1 do
    ignore (Accumulator.append acc (leaf i))
  done;
  let len_small = Proof.length (Accumulator.prove acc 0) in
  for i = 1 lsl 10 to (1 lsl 14) - 1 do
    ignore (Accumulator.append acc (leaf i))
  done;
  let len_big = Proof.length (Accumulator.prove acc 0) in
  Alcotest.(check bool) "proof grows" true (len_big > len_small);
  Alcotest.(check int) "log-size proof" 14 len_big

let test_merkle_tree () =
  let leaves = List.init 13 leaf in
  let t = Merkle_tree.build leaves in
  let root = Merkle_tree.root t in
  List.iteri
    (fun i l ->
      Alcotest.(check bool)
        (Printf.sprintf "leaf %d" i)
        true
        (Merkle_tree.verify ~root ~leaf:l (Merkle_tree.prove t i)))
    leaves;
  Alcotest.check_raises "empty rejected"
    (Invalid_argument "Merkle_tree.build: empty") (fun () ->
      ignore (Merkle_tree.build []))

(* --- Shrubs --------------------------------------------------------------- *)

let test_shrubs_peaks () =
  let s = Shrubs.create () in
  for i = 0 to 10 do
    ignore (Shrubs.append s (leaf i))
  done;
  (* 11 = 8 + 2 + 1 *)
  Alcotest.(check int) "peak count" 3 (List.length (Shrubs.peaks s));
  Alcotest.(check int) "size" 11 (Shrubs.size s)

let test_shrubs_bounded () =
  let s = Shrubs.create ~height:3 () in
  Alcotest.(check (option int)) "capacity" (Some 8) (Shrubs.capacity s);
  for i = 0 to 7 do
    ignore (Shrubs.append s (leaf i))
  done;
  Alcotest.(check bool) "full" true (Shrubs.is_full s);
  let root = Shrubs.root s in
  Alcotest.(check int) "single peak" 1 (List.length (Shrubs.peaks s));
  Alcotest.(check bool) "root is the peak" true
    (Hash.equal root (List.hd (Shrubs.peaks s)));
  Alcotest.check_raises "append beyond capacity"
    (Invalid_argument "Shrubs.append: tree is full") (fun () ->
      ignore (Shrubs.append s (leaf 8)))

let prop_shrubs_proofs =
  QCheck.Test.make ~name:"shrubs node-set proofs verify" ~count:50
    (QCheck.int_range 1 120) (fun n ->
      let s = Shrubs.create () in
      for i = 0 to n - 1 do
        ignore (Shrubs.append s (leaf i))
      done;
      let c = Shrubs.commitment s in
      List.for_all
        (fun i -> Shrubs.verify ~commitment:c ~leaf:(leaf i) (Shrubs.prove s i))
        (List.init n Fun.id))

let test_shrubs_rejects_stale_commitment () =
  let s = Shrubs.create () in
  for i = 0 to 9 do
    ignore (Shrubs.append s (leaf i))
  done;
  let stale = Shrubs.commitment s in
  ignore (Shrubs.append s (leaf 10));
  let p = Shrubs.prove s 3 in
  Alcotest.(check bool) "stale commitment fails" false
    (Shrubs.verify ~commitment:stale ~leaf:(leaf 3) p);
  Alcotest.(check bool) "fresh commitment passes" true
    (Shrubs.verify ~commitment:(Shrubs.commitment s) ~leaf:(leaf 3) p)

(* --- fam ------------------------------------------------------------------ *)

let test_fam_epoch_arithmetic () =
  let f = Fam.create ~delta:3 in
  for i = 0 to 29 do
    ignore (Fam.append f (leaf i))
  done;
  (* epoch 0 holds 8 journals, later epochs 7 each (merged leaf at pos 0) *)
  Alcotest.(check (pair int int)) "jsn 0" (0, 0) (Fam.epoch_of_jsn f 0);
  Alcotest.(check (pair int int)) "jsn 7" (0, 7) (Fam.epoch_of_jsn f 7);
  Alcotest.(check (pair int int)) "jsn 8" (1, 1) (Fam.epoch_of_jsn f 8);
  Alcotest.(check (pair int int)) "jsn 14" (1, 7) (Fam.epoch_of_jsn f 14);
  Alcotest.(check (pair int int)) "jsn 15" (2, 1) (Fam.epoch_of_jsn f 15);
  Alcotest.(check int) "epochs" 5 (Fam.epoch_count f)

let prop_fam_epoch_of_jsn_bijective =
  QCheck.Test.make ~name:"fam epoch arithmetic is dense and ordered" ~count:30
    (QCheck.pair (QCheck.int_range 1 6) (QCheck.int_range 1 300))
    (fun (delta, n) ->
      let f = Fam.create ~delta in
      for i = 0 to n - 1 do
        ignore (Fam.append f (leaf i))
      done;
      let ok = ref true in
      let prev = ref (-1, -1) in
      for jsn = 0 to n - 1 do
        let e, pos = Fam.epoch_of_jsn f jsn in
        (* positions advance strictly within an epoch; epochs advance by 1 *)
        let pe, pp = !prev in
        if e = pe then ok := !ok && pos = pp + 1
        else ok := !ok && e = pe + 1 && (pos = 0 || pos = 1);
        ok := !ok && Hash.equal (Fam.leaf f jsn) (leaf jsn);
        prev := (e, pos)
      done;
      !ok)

let prop_fam_proofs =
  QCheck.Test.make ~name:"fam chained proofs verify for all jsns" ~count:20
    (QCheck.pair (QCheck.int_range 2 5) (QCheck.int_range 1 200))
    (fun (delta, n) ->
      let f = Fam.create ~delta in
      for i = 0 to n - 1 do
        ignore (Fam.append f (leaf i))
      done;
      let c = Fam.commitment f in
      List.for_all
        (fun i -> Fam.verify ~commitment:c ~leaf:(leaf i) (Fam.prove f i))
        (List.init n Fun.id))

let prop_fam_rejects_fakes =
  QCheck.Test.make ~name:"fam rejects forged leaves" ~count:30
    (QCheck.int_range 1 150) (fun n ->
      let f = Fam.create ~delta:3 in
      for i = 0 to n - 1 do
        ignore (Fam.append f (leaf i))
      done;
      let c = Fam.commitment f in
      not (Fam.verify ~commitment:c ~leaf:(leaf (n + 3)) (Fam.prove f 0)))

let test_fam_anchored () =
  let f = Fam.create ~delta:3 in
  for i = 0 to 99 do
    ignore (Fam.append f (leaf i))
  done;
  let anchor = Fam.make_anchor f in
  Alcotest.(check int) "anchor covers 100" 100 (Fam.anchor_size anchor);
  for i = 100 to 129 do
    ignore (Fam.append f (leaf i))
  done;
  let c = Fam.commitment f in
  let sealed = ref 0 and beyond = ref 0 in
  for i = 0 to 129 do
    let p = Fam.prove_anchored f anchor i in
    (match p with
    | Fam.Within_sealed _ -> incr sealed
    | Fam.Beyond_anchor _ -> incr beyond);
    Alcotest.(check bool)
      (Printf.sprintf "anchored jsn %d" i)
      true
      (Fam.verify_anchored anchor ~current_commitment:c ~leaf:(leaf i) p)
  done;
  (* anchored proofs for sealed epochs are O(delta), not chained *)
  Alcotest.(check bool) "most proofs are sealed-epoch" true (!sealed > 90);
  (* sealed-epoch proof is short *)
  (match Fam.prove_anchored f anchor 0 with
  | Fam.Within_sealed { path; _ } ->
      Alcotest.(check int) "O(delta) path" 3 (Proof.length path)
  | Fam.Beyond_anchor _ -> Alcotest.fail "expected sealed proof")

let test_fam_anchored_rejects_cross_epoch () =
  let f = Fam.create ~delta:3 in
  for i = 0 to 63 do
    ignore (Fam.append f (leaf i))
  done;
  let anchor = Fam.make_anchor f in
  let c = Fam.commitment f in
  (* proof for jsn 0 must not validate leaf of jsn 9 (different epoch) *)
  let p = Fam.prove_anchored f anchor 0 in
  Alcotest.(check bool) "cross-leaf rejected" false
    (Fam.verify_anchored anchor ~current_commitment:c ~leaf:(leaf 9) p)

let test_fam_purge_epochs () =
  let f = Fam.create ~delta:3 in
  for i = 0 to 99 do
    ignore (Fam.append f (leaf i))
  done;
  let before = Fam.stored_digests f in
  Fam.purge_epochs_before f 5;
  let after = Fam.stored_digests f in
  Alcotest.(check bool) "digests reclaimed" true (after < before);
  (* journals after the purge point still provable *)
  let c = Fam.commitment f in
  Alcotest.(check bool) "late journal verifies" true
    (Fam.verify ~commitment:c ~leaf:(leaf 90) (Fam.prove f 90));
  (* sealed roots survive *)
  Alcotest.(check bool) "sealed root available" true
    (Hash.equal (Fam.sealed_epoch_root f 0) (Fam.sealed_epoch_root f 0))

(* --- bim ------------------------------------------------------------------ *)

let test_bim_spv () =
  let b = Bim.create ~block_size:16 in
  for i = 0 to 99 do
    ignore (Bim.append b ~timestamp:(Int64.of_int i) (leaf i))
  done;
  Bim.flush b;
  Alcotest.(check int) "blocks" 7 (Bim.block_count b);
  let headers = Array.of_list (Bim.headers b) in
  Alcotest.(check bool) "chain valid" true (Bim.verify_header_chain (Bim.headers b));
  for i = 0 to 99 do
    let p = Bim.prove b i in
    Alcotest.(check bool) (Printf.sprintf "spv %d" i) true
      (Bim.verify ~headers ~leaf:(leaf i) p)
  done;
  (* header storage is O(blocks) *)
  Alcotest.(check int) "header bytes" (7 * 80) (Bim.header_bytes b)

let test_bim_detects_header_tamper () =
  let b = Bim.create ~block_size:8 in
  for i = 0 to 31 do
    ignore (Bim.append b (leaf i))
  done;
  let headers = Bim.headers b in
  let tampered =
    List.mapi
      (fun i h ->
        if i = 1 then { h with Bim.merkle_root = leaf 999 } else h)
      headers
  in
  Alcotest.(check bool) "tampered chain detected" false
    (Bim.verify_header_chain tampered);
  (* and the proof against the honest headers still pins the right root *)
  let p = Bim.prove b 10 in
  Alcotest.(check bool) "fake leaf rejected" false
    (Bim.verify ~headers:(Array.of_list headers) ~leaf:(leaf 999) p)

(* --- range proofs ---------------------------------------------------------- *)

let prop_range_proofs =
  QCheck.Test.make ~name:"range proofs verify for random intervals" ~count:60
    (QCheck.triple (QCheck.int_range 1 150) QCheck.small_nat QCheck.small_nat)
    (fun (n, a, b) ->
      let first = min (a mod n) (b mod n) and last = max (a mod n) (b mod n) in
      let f = Forest.create () in
      for i = 0 to n - 1 do
        ignore (Forest.append f (leaf i))
      done;
      let rp = Range_proof.prove f ~first ~last in
      let known = List.init (last - first + 1) (fun k -> (first + k, leaf (first + k))) in
      Range_proof.verify ~known rp)

let prop_range_proofs_reject_mutation =
  QCheck.Test.make ~name:"range proofs reject a mutated member" ~count:40
    (QCheck.pair (QCheck.int_range 2 100) QCheck.small_nat)
    (fun (n, a) ->
      let first = a mod (n - 1) in
      let last = min (n - 1) (first + 5) in
      let f = Forest.create () in
      for i = 0 to n - 1 do
        ignore (Forest.append f (leaf i))
      done;
      let rp = Range_proof.prove f ~first ~last in
      let known =
        List.init (last - first + 1) (fun k ->
            let i = first + k in
            (i, if i = first then leaf 424242 else leaf i))
      in
      not (Range_proof.verify ~known rp))

let test_range_proof_support_minimal () =
  let f = Forest.create () in
  for i = 0 to 15 do
    ignore (Forest.append f (leaf i))
  done;
  (* full range: nothing to ship *)
  let full = Range_proof.prove f ~first:0 ~last:15 in
  Alcotest.(check int) "full range needs no support" 0
    (Range_proof.support_size full);
  (* half range: one sibling subtree *)
  let half = Range_proof.prove f ~first:0 ~last:7 in
  Alcotest.(check int) "half range ships one node" 1
    (Range_proof.support_size half);
  (* missing known leaf must fail, not crash *)
  Alcotest.(check bool) "partial knowledge fails" false
    (Range_proof.verify ~known:[ (0, leaf 0) ] half)

let base_suite =
  [
    tc "proof apply" `Quick test_proof_apply;
    tc "node-set digest" `Quick test_node_set_digest;
    qcheck prop_accumulator_sound;
    qcheck prop_accumulator_rejects_fakes;
    tc "tim proof growth" `Quick test_accumulator_proof_growth;
    tc "merkle tree" `Quick test_merkle_tree;
    tc "shrubs peaks" `Quick test_shrubs_peaks;
    tc "shrubs bounded" `Quick test_shrubs_bounded;
    qcheck prop_shrubs_proofs;
    tc "shrubs stale commitment" `Quick test_shrubs_rejects_stale_commitment;
    tc "fam epoch arithmetic" `Quick test_fam_epoch_arithmetic;
    qcheck prop_fam_epoch_of_jsn_bijective;
    qcheck prop_fam_proofs;
    qcheck prop_fam_rejects_fakes;
    tc "fam anchored proofs" `Quick test_fam_anchored;
    tc "fam anchored cross-epoch" `Quick test_fam_anchored_rejects_cross_epoch;
    tc "fam purge epochs" `Quick test_fam_purge_epochs;
    tc "bim SPV" `Quick test_bim_spv;
    tc "bim tamper detection" `Quick test_bim_detects_header_tamper;
    qcheck prop_range_proofs;
    qcheck prop_range_proofs_reject_mutation;
    tc "range proof support" `Quick test_range_proof_support_minimal;
  ]

(* --- bAMT (VLDB'20 batched accumulator) ------------------------------------ *)

let prop_bamt_sound =
  QCheck.Test.make ~name:"bamt proofs verify at any size" ~count:40
    (QCheck.pair (QCheck.int_range 2 16) (QCheck.int_range 1 150))
    (fun (batch_size, n) ->
      let b = Bamt.create ~batch_size in
      for i = 0 to n - 1 do
        ignore (Bamt.append b (leaf i))
      done;
      let root = Bamt.root b in
      List.for_all
        (fun i -> Bamt.verify ~root ~leaf:(leaf i) (Bamt.prove b i))
        (List.init n Fun.id))

let test_bamt_structure () =
  let b = Bamt.create ~batch_size:8 in
  for i = 0 to 19 do
    ignore (Bamt.append b (leaf i))
  done;
  Alcotest.(check int) "two sealed batches" 2 (Bamt.batch_count b);
  Alcotest.(check int) "size" 20 (Bamt.size b);
  let root = Bamt.root b in
  Alcotest.(check bool) "fake rejected" false
    (Bamt.verify ~root ~leaf:(leaf 999) (Bamt.prove b 0));
  (* open-batch entries are provable too, and flush seals them *)
  let p = Bamt.prove b 18 in
  Alcotest.(check bool) "open batch proof" true p.Bamt.open_batch;
  Alcotest.(check bool) "open batch verifies" true
    (Bamt.verify ~root ~leaf:(leaf 18) p);
  Bamt.flush b;
  Alcotest.(check int) "three after flush" 3 (Bamt.batch_count b);
  let root = Bamt.root b in
  Alcotest.(check bool) "still verifies after flush" true
    (Bamt.verify ~root ~leaf:(leaf 18) (Bamt.prove b 18))

let bamt_suite =
  [
    qcheck prop_bamt_sound;
    tc "bamt structure" `Quick test_bamt_structure;
  ]



(* --- consistency (extension) proofs ----------------------------------------- *)

let prop_consistency_sound =
  QCheck.Test.make ~name:"consistency proofs verify for any (m, n)" ~count:80
    (QCheck.pair (QCheck.int_range 1 120) (QCheck.int_range 0 120))
    (fun (m, extra) ->
      let n = m + extra in
      let f = Forest.create () in
      for i = 0 to m - 1 do
        ignore (Forest.append f (leaf i))
      done;
      let old_peaks = Forest.peaks f in
      for i = m to n - 1 do
        ignore (Forest.append f (leaf i))
      done;
      let proof = Forest.prove_consistency f ~old_size:m in
      Forest.verify_consistency ~old_size:m ~old_peaks ~new_size:n
        ~new_peaks:(Forest.peaks f) proof)

let prop_consistency_detects_rewrite =
  QCheck.Test.make ~name:"consistency proofs reject history rewrites" ~count:40
    (QCheck.pair (QCheck.int_range 2 80) (QCheck.int_range 1 80))
    (fun (m, extra) ->
      let n = m + extra in
      (* honest old state *)
      let honest = Forest.create () in
      for i = 0 to m - 1 do
        ignore (Forest.append honest (leaf i))
      done;
      let old_peaks = Forest.peaks honest in
      (* the LSP rewrites one historical leaf and regrows *)
      let rewritten = Forest.create () in
      for i = 0 to n - 1 do
        ignore
          (Forest.append rewritten (if i = m / 2 then leaf 987654 else leaf i))
      done;
      let proof = Forest.prove_consistency rewritten ~old_size:m in
      not
        (Forest.verify_consistency ~old_size:m ~old_peaks ~new_size:n
           ~new_peaks:(Forest.peaks rewritten) proof))

let test_consistency_edge_cases () =
  let f = Forest.create () in
  ignore (Forest.append f (leaf 0));
  let p1 = Forest.peaks f in
  (* m = n: trivially consistent *)
  let proof = Forest.prove_consistency f ~old_size:1 in
  Alcotest.(check bool) "m = n" true
    (Forest.verify_consistency ~old_size:1 ~old_peaks:p1 ~new_size:1
       ~new_peaks:p1 proof);
  (* bad sizes rejected *)
  Alcotest.(check bool) "old > new rejected" false
    (Forest.verify_consistency ~old_size:2 ~old_peaks:p1 ~new_size:1
       ~new_peaks:p1 proof);
  Alcotest.check_raises "prove with bad old_size"
    (Invalid_argument "Forest.prove_consistency: bad old_size") (fun () ->
      ignore (Forest.prove_consistency f ~old_size:0))

let consistency_suite =
  [
    qcheck prop_consistency_sound;
    qcheck prop_consistency_detects_rewrite;
    tc "consistency edge cases" `Quick test_consistency_edge_cases;
  ]



(* --- fam extension proofs ------------------------------------------------------ *)

let prop_fam_extension_sound =
  QCheck.Test.make ~name:"fam extension proofs verify" ~count:60
    (QCheck.triple (QCheck.int_range 2 4) (QCheck.int_range 1 150)
       (QCheck.int_range 0 150))
    (fun (delta, m, extra) ->
      let n = m + extra in
      let f = Fam.create ~delta in
      for i = 0 to m - 1 do
        ignore (Fam.append f (leaf i))
      done;
      let old_peaks = Fam.peaks f in
      for i = m to n - 1 do
        ignore (Fam.append f (leaf i))
      done;
      let proof = Fam.prove_extension f ~old_size:m in
      Fam.verify_extension ~delta ~old_size:m ~old_peaks ~new_size:n
        ~new_commitment:(Fam.commitment f) proof)

let prop_fam_extension_detects_rewrite =
  QCheck.Test.make ~name:"fam extension rejects history rewrites" ~count:40
    (QCheck.triple (QCheck.int_range 2 4) (QCheck.int_range 2 100)
       (QCheck.int_range 1 100))
    (fun (delta, m, extra) ->
      let n = m + extra in
      let honest = Fam.create ~delta in
      for i = 0 to m - 1 do
        ignore (Fam.append honest (leaf i))
      done;
      let old_peaks = Fam.peaks honest in
      let rewritten = Fam.create ~delta in
      for i = 0 to n - 1 do
        ignore (Fam.append rewritten (if i = m / 2 then leaf 31337 else leaf i))
      done;
      let proof = Fam.prove_extension rewritten ~old_size:m in
      not
        (Fam.verify_extension ~delta ~old_size:m ~old_peaks ~new_size:n
           ~new_commitment:(Fam.commitment rewritten) proof))

let fam_extension_suite =
  [ qcheck prop_fam_extension_sound; qcheck prop_fam_extension_detects_rewrite ]



(* --- cross-model agreement ---------------------------------------------------- *)

let prop_models_agree_on_membership =
  (* tim, bAMT, bim and fam, fed the same leaves, must all accept every
     genuine leaf and all reject the same forged one *)
  QCheck.Test.make ~name:"all accumulator models agree on membership" ~count:25
    (QCheck.int_range 2 120) (fun n ->
      let acc = Accumulator.create () in
      let bamt = Bamt.create ~batch_size:8 in
      let bim = Bim.create ~block_size:8 in
      let fam = Fam.create ~delta:3 in
      for i = 0 to n - 1 do
        let h = leaf i in
        ignore (Accumulator.append acc h);
        ignore (Bamt.append bamt h);
        ignore (Bim.append bim h);
        ignore (Fam.append fam h)
      done;
      Bim.flush bim;
      let headers = Array.of_list (Bim.headers bim) in
      let acc_root = Accumulator.root acc in
      let bamt_root = Bamt.root bamt in
      let fam_c = Fam.commitment fam in
      let member i h =
        Accumulator.verify ~root:acc_root ~leaf:h (Accumulator.prove acc i)
        = Bamt.verify ~root:bamt_root ~leaf:h (Bamt.prove bamt i)
        && Bamt.verify ~root:bamt_root ~leaf:h (Bamt.prove bamt i)
           = Bim.verify ~headers ~leaf:h (Bim.prove bim i)
        && Bim.verify ~headers ~leaf:h (Bim.prove bim i)
           = Fam.verify ~commitment:fam_c ~leaf:h (Fam.prove fam i)
      in
      List.for_all (fun i -> member i (leaf i)) (List.init n Fun.id)
      && member 0 (leaf (n + 1))
      (* all reject: parity of agreement covers it, but assert explicitly *)
      && not
           (Accumulator.verify ~root:acc_root ~leaf:(leaf (n + 1))
              (Accumulator.prove acc 0)))

let prop_fam_accumulator_same_leaf_order =
  (* fam stores journals in jsn order exactly like the flat accumulator *)
  QCheck.Test.make ~name:"fam leaf order matches flat accumulator" ~count:30
    (QCheck.pair (QCheck.int_range 1 5) (QCheck.int_range 1 200))
    (fun (delta, n) ->
      let acc = Accumulator.create () in
      let fam = Fam.create ~delta in
      for i = 0 to n - 1 do
        ignore (Accumulator.append acc (leaf i));
        ignore (Fam.append fam (leaf i))
      done;
      List.for_all
        (fun i -> Hash.equal (Accumulator.leaf acc i) (Fam.leaf fam i))
        (List.init n Fun.id))

(* --- empty batches ------------------------------------------------------- *)

(* append_many [] is a contract, not an accident: no state change, no
   overflow check, no epoch roll — even at the structure's boundaries. *)
let test_forest_empty_batch () =
  let f = Forest.create () in
  ignore (Forest.append_many f [ leaf 0; leaf 1; leaf 2 ]);
  let before = Forest.peaks f in
  Alcotest.(check int) "returns current size" 3 (Forest.append_many f []);
  Alcotest.(check int) "size untouched" 3 (Forest.size f);
  Alcotest.(check bool) "peaks untouched" true
    (Proof.node_set_equal before (Forest.peaks f))

let test_shrubs_empty_batch_on_full_tree () =
  let s = Shrubs.create ~height:2 () in
  ignore (Shrubs.append_many s [ leaf 0; leaf 1; leaf 2; leaf 3 ]);
  Alcotest.(check bool) "tree is full" true (Shrubs.is_full s);
  (* a non-empty batch would overflow; the empty one must not even look *)
  Alcotest.(check int) "empty batch is a no-op" 4 (Shrubs.append_many s []);
  Alcotest.check_raises "one more leaf overflows"
    (Invalid_argument "Shrubs.append_many: batch would overflow the tree")
    (fun () -> ignore (Shrubs.append_many s [ leaf 4 ]))

let test_fam_empty_batch_at_epoch_boundary () =
  let f = Fam.create ~delta:2 in
  (* fill the first epoch exactly (capacity 2^delta) *)
  ignore (Fam.append_many f [ leaf 0; leaf 1; leaf 2; leaf 3 ]);
  let epochs = Fam.epoch_count f in
  let commitment = Fam.commitment f in
  Alcotest.(check int) "returns current size" 4 (Fam.append_many f []);
  Alcotest.(check int) "no epoch rolled" epochs (Fam.epoch_count f);
  Alcotest.(check bool) "commitment untouched" true
    (Hash.equal commitment (Fam.commitment f));
  (* the next real append does roll, proving the boundary was live *)
  ignore (Fam.append f (leaf 4));
  Alcotest.(check int) "boundary was real" (epochs + 1) (Fam.epoch_count f)

let empty_batch_suite =
  [
    tc "forest empty batch is a no-op" `Quick test_forest_empty_batch;
    tc "shrubs empty batch skips overflow check" `Quick
      test_shrubs_empty_batch_on_full_tree;
    tc "fam empty batch does not roll the epoch" `Quick
      test_fam_empty_batch_at_epoch_boundary;
  ]

let agreement_suite =
  [ qcheck prop_models_agree_on_membership; qcheck prop_fam_accumulator_same_leaf_order ]

let suite =
  base_suite @ bamt_suite @ consistency_suite @ fam_extension_suite
  @ empty_batch_suite @ agreement_suite
