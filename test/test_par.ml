(* Domain pool unit coverage + pooled-vs-sequential differential gates.

   The pool's contract is determinism by construction: every primitive
   writes only indexed result slots, so a pool of any size must produce
   byte-identical results to inline execution.  The differential tests
   here pin that all the way up the stack — pooled [Fam.append_many],
   [Ledger.append_batch], [Ledger.append_signed_batch] and
   [Sharded_ledger.append_batch]/[seal_epoch] against the sequential
   path, down to encoded journals, receipts, blocks and super-roots.

   The container may have a single core; every test that needs real
   parallelism creates an explicit [~domains:4] pool (spawning more
   domains than cores is legal, just oversubscribed). *)

open Ledger_crypto
open Ledger_storage
open Ledger_merkle
open Ledger_core
open Ledger_par

let tc = Alcotest.test_case

let with_pool ?(domains = 4) f =
  let pool = Domain_pool.create ~domains () in
  Fun.protect ~finally:(fun () -> Domain_pool.shutdown pool) (fun () -> f pool)

(* --- Domain_pool unit tests ------------------------------------------------ *)

let test_pool_of_one_is_inline () =
  let pool = Domain_pool.create ~domains:1 () in
  Alcotest.(check int) "size 1" 1 (Domain_pool.size pool);
  let arr = Array.init 100 string_of_int in
  Alcotest.(check (array string))
    "map_array matches sequential"
    (Domain_pool.map_array Domain_pool.sequential String.uppercase_ascii arr)
    (Domain_pool.map_array pool String.uppercase_ascii arr);
  (* a 1-domain pool never spawned, so shutdown has nothing to join *)
  Domain_pool.shutdown pool;
  Alcotest.(check int) "sequential size" 1
    (Domain_pool.size Domain_pool.sequential)

let test_create_clamps () =
  List.iter
    (fun d ->
      let pool = Domain_pool.create ~domains:d () in
      Alcotest.(check int)
        (Printf.sprintf "domains:%d clamps to 1" d)
        1 (Domain_pool.size pool);
      Domain_pool.shutdown pool)
    [ 0; -7 ]

let test_empty_and_singleton () =
  with_pool (fun pool ->
      let called = ref false in
      Domain_pool.map_chunks pool ~n:0 (fun ~lo:_ ~hi:_ -> called := true);
      Alcotest.(check bool) "n=0 never runs a chunk" false !called;
      Alcotest.(check (array int)) "empty array" [||]
        (Domain_pool.map_array pool succ [||]);
      Alcotest.(check (list int)) "empty list" []
        (Domain_pool.map_list pool succ []);
      Alcotest.(check (list int)) "singleton list" [ 42 ]
        (Domain_pool.map_list pool succ [ 41 ]))

let test_more_domains_than_items () =
  (* 4 domains, 2 items: chunking must never duplicate or drop an index *)
  with_pool (fun pool ->
      let n = 2 in
      let counts = Array.init n (fun _ -> Atomic.make 0) in
      Domain_pool.parallel_for pool ~n (fun i -> Atomic.incr counts.(i));
      Array.iteri
        (fun i c ->
          Alcotest.(check int)
            (Printf.sprintf "index %d visited exactly once" i)
            1 (Atomic.get c))
        counts;
      Alcotest.(check (array int)) "2-item map" [| 10; 11 |]
        (Domain_pool.map_array pool (fun x -> x + 10) [| 0; 1 |]))

let test_large_map_deterministic () =
  with_pool (fun pool ->
      let arr = Array.init 5_000 (fun i -> Printf.sprintf "leaf-%d" i) in
      let seq = Domain_pool.map_array Domain_pool.sequential Hash.digest_string arr in
      let par = Domain_pool.map_array pool Hash.digest_string arr in
      Alcotest.(check int) "lengths" (Array.length seq) (Array.length par);
      Array.iteri
        (fun i h ->
          if not (Hash.equal h par.(i)) then
            Alcotest.failf "slot %d diverged between pool sizes" i)
        seq)

let test_exception_cancels_and_reraises () =
  with_pool (fun pool ->
      let started = Atomic.make 0 in
      (try
         Domain_pool.parallel_for pool ~n:64 (fun i ->
             Atomic.incr started;
             if i = 13 then failwith "boom");
         Alcotest.fail "exception was swallowed"
       with Failure msg -> Alcotest.(check string) "re-raised" "boom" msg);
      Alcotest.(check bool) "some work ran before the cancel" true
        (Atomic.get started >= 1 && Atomic.get started <= 64);
      (* the failed job fully drained: the pool is still usable *)
      Alcotest.(check (array int)) "pool survives a failed job"
        [| 0; 2; 4 |]
        (Domain_pool.map_array pool (fun x -> 2 * x) [| 0; 1; 2 |]))

let test_nested_use_runs_inline () =
  with_pool (fun pool ->
      let out = Array.make 8 0 in
      (* each outer task re-enters the pool; the inner call must run
         inline on the worker domain instead of deadlocking the queue *)
      Domain_pool.parallel_for pool ~n:8 (fun i ->
          let inner =
            Domain_pool.map_array pool (fun x -> x * x) [| i; i + 1 |]
          in
          out.(i) <- inner.(0) + inner.(1));
      Array.iteri
        (fun i got ->
          Alcotest.(check int)
            (Printf.sprintf "nested result %d" i)
            ((i * i) + ((i + 1) * (i + 1)))
            got)
        out)

let test_env_domain_parsing () =
  let check_env v expect =
    Unix.putenv "LEDGERDB_DOMAINS" v;
    Alcotest.(check (option int))
      (Printf.sprintf "LEDGERDB_DOMAINS=%S" v)
      expect (Domain_pool.env_domains ())
  in
  Fun.protect
    ~finally:(fun () -> Unix.putenv "LEDGERDB_DOMAINS" "")
    (fun () ->
      check_env "4" (Some 4);
      check_env " 8 " (Some 8);
      check_env "1" (Some 1);
      (* the env knob must never brick the process: fall back *)
      check_env "0" None;
      check_env "-2" None;
      check_env "three" None;
      check_env "" None)

let test_set_default () =
  Domain_pool.set_default Domain_pool.sequential;
  Alcotest.(check int) "default replaced" 1
    (Domain_pool.size (Domain_pool.default ()))

(* --- sha256 satellite: non-destructive finalize ---------------------------- *)

let hex = Hash.to_hex

let test_sha256_running_digests () =
  let ctx = Sha256.init () in
  Sha256.update_string ctx "abc";
  let d1 = Sha256.finalize ctx in
  Alcotest.(check string) "abc vector"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (hex (Hash.of_bytes d1));
  (* finalize must not destroy the context: keep absorbing *)
  Sha256.update_string ctx "def";
  let d2 = Sha256.finalize ctx in
  Alcotest.(check string) "running digest equals one-shot"
    (hex (Hash.of_bytes (Sha256.digest_string "abcdef")))
    (hex (Hash.of_bytes d2));
  Alcotest.(check string) "finalize is idempotent"
    (hex (Hash.of_bytes d2))
    (hex (Hash.of_bytes (Sha256.finalize ctx)))

let test_sha256_padding_boundaries () =
  (* lengths straddling both padding paths: the in-buffer fast path
     (bl + 9 <= 64) and the two-block spill *)
  List.iter
    (fun len ->
      let s = String.init len (fun i -> Char.chr (32 + (i mod 90))) in
      let one_shot = Sha256.digest_string s in
      let ctx = Sha256.init () in
      let half = len / 2 in
      Sha256.update_string ctx (String.sub s 0 half);
      (* mid-stream finalize: must equal the prefix digest and leave the
         stream intact *)
      Alcotest.(check string)
        (Printf.sprintf "len %d: prefix digest" len)
        (hex (Hash.of_bytes (Sha256.digest_string (String.sub s 0 half))))
        (hex (Hash.of_bytes (Sha256.finalize ctx)));
      Sha256.update_string ctx (String.sub s half (len - half));
      Alcotest.(check string)
        (Printf.sprintf "len %d: full digest" len)
        (hex (Hash.of_bytes one_shot))
        (hex (Hash.of_bytes (Sha256.finalize ctx))))
    [ 0; 1; 54; 55; 56; 63; 64; 65; 119; 120; 128; 257 ]

let test_hex_writer () =
  Alcotest.(check string) "empty-string vector"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (hex (Hash.digest_string ""));
  for i = 0 to 16 do
    let h = Hash.digest_string (string_of_int i) in
    Alcotest.(check bool)
      (Printf.sprintf "round-trip %d" i)
      true
      (Hash.equal h (Hash.of_hex (Hash.to_hex h)))
  done

(* --- differential: pooled == sequential ------------------------------------ *)

let diff_config =
  { Ledger.default_config with
    name = "par-diff";
    block_size = 4;
    fam_delta = 3;
    latency = Latency_model.free;
    crypto = Crypto_profile.Simulated { sign_us = 0.; verify_us = 0. } }

let mk_ledger () =
  let clock = Clock.create () in
  let ledger = Ledger.create ~config:diff_config ~clock () in
  let user, key = Ledger.new_member ledger ~name:"puser" ~role:Roles.Regular_user in
  (clock, ledger, user, key)

let payload_of p = Bytes.of_string (Printf.sprintf "par-payload-%d" p)
let clues_of c = if c = 0 then [] else [ "pk" ^ string_of_int (c mod 3) ]

let test_pooled_fam_append_many () =
  with_pool (fun pool ->
      let leaves = List.init 300 (fun i -> Hash.digest_string ("l" ^ string_of_int i)) in
      let seq = Fam.create ~delta:5 and par = Fam.create ~delta:5 in
      ignore (Fam.append_many seq leaves);
      ignore (Fam.append_many ~pool par leaves);
      Alcotest.(check bool) "fam commitments equal" true
        (Hash.equal (Fam.commitment seq) (Fam.commitment par));
      Alcotest.(check int) "fam sizes equal" (Fam.size seq) (Fam.size par);
      for i = 0 to Fam.size seq - 1 do
        if not (Hash.equal (Fam.leaf seq i) (Fam.leaf par i)) then
          Alcotest.failf "fam leaf %d diverged" i
      done)

(* Random interleavings of batched appends and seals, committed through a
   4-domain pool on one side and inline on the other; the histories must
   be byte-identical (size, commitment, blocks, journals, receipts,
   proofs — via [Test_batch_diff.check_equal_histories]). *)
type op = Batch of (int * int) list | Seal

let op_to_string = function
  | Batch es ->
      Printf.sprintf "Batch[%s]"
        (String.concat ";"
           (List.map (fun (p, c) -> Printf.sprintf "(%d,%d)" p c) es))
  | Seal -> "Seal"

let op_gen =
  QCheck.Gen.(
    frequency
      [ ( 5,
          map
            (fun es -> Batch es)
            (list_size (int_range 1 9)
               (map2 (fun p c -> (p, c)) (int_bound 999) (int_bound 3))) );
        (2, return Seal) ])

let arb_ops =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map op_to_string ops))
    QCheck.Gen.(list_size (int_range 3 12) op_gen)

let run_ops ~pool ops =
  let clock, ledger, user, key = mk_ledger () in
  List.iter
    (fun op ->
      match op with
      | Batch es ->
          let entries =
            List.map (fun (p, c) -> (payload_of p, clues_of c)) es
          in
          ignore
            (Ledger.append_batch ~pool ledger ~member:user ~priv:key
               ~seal:false entries);
          Clock.advance_ms clock 5.
      | Seal ->
          Ledger.seal_block ledger;
          Clock.advance_ms clock 5.)
    ops;
  Ledger.seal_block ledger;
  ledger

let prop_pooled_append_batch =
  QCheck.Test.make ~name:"pooled append_batch == sequential" ~count:60 arb_ops
    (fun ops ->
      with_pool (fun pool ->
          let par = run_ops ~pool ops in
          let seq = run_ops ~pool:Domain_pool.sequential ops in
          Test_batch_diff.check_equal_histories par seq))

(* Remote signed batches: signatures minted client-side, validated across
   the pool server-side.  Accepted batches must be byte-identical; a
   poisoned batch must be rejected with the same error and the same
   simulated-clock position as the sequential validator. *)
let signed_entries ledger ~member ~priv n ~poison =
  let scratch = Clock.create () in
  List.init n (fun i ->
      let payload = payload_of i and clues = clues_of (i mod 4) in
      let client_ts = Int64.of_int (1_000 * i) and nonce = i + 1 in
      let digest =
        Journal.request_digest ~ledger_uri:(Ledger.uri ledger)
          ~kind_tag:"normal" ~payload ~clues ~client_ts ~nonce
      in
      let signed = if poison = Some i then Hash.digest_string "forged" else digest in
      let signature =
        Crypto_profile.sign diff_config.Ledger.crypto scratch ~priv
          ~pub:member.Roles.pub signed
      in
      (payload, clues, client_ts, nonce, signature))

let test_pooled_signed_batch () =
  with_pool (fun pool ->
      let run pool =
        let clock, ledger, user, key = mk_ledger () in
        let entries = signed_entries ledger ~member:user ~priv:key 15 ~poison:None in
        let receipts =
          match
            Ledger.append_signed_batch ~pool ledger ~member_id:user.Roles.id
              entries
          with
          | Ok rs -> rs
          | Error e -> Alcotest.failf "signed batch rejected: %s" e
        in
        (clock, ledger, user, key, receipts)
      in
      let _, par, _, _, r_par = run pool in
      let _, seq, _, _, r_seq = run Domain_pool.sequential in
      Alcotest.(check int) "receipt counts" (List.length r_seq)
        (List.length r_par);
      ignore (Test_batch_diff.check_equal_histories par seq);
      List.iter2
        (fun (a : Receipt.t) (b : Receipt.t) ->
          Alcotest.(check bool)
            (Printf.sprintf "receipt %d identical" a.Receipt.jsn)
            true
            (a.Receipt.jsn = b.Receipt.jsn
            && Hash.equal a.Receipt.tx_hash b.Receipt.tx_hash
            && Hash.equal a.Receipt.block_hash b.Receipt.block_hash))
        r_par r_seq)

let test_pooled_signed_batch_rejection () =
  with_pool (fun pool ->
      let run pool =
        let clock, ledger, user, key = mk_ledger () in
        let entries =
          signed_entries ledger ~member:user ~priv:key 12 ~poison:(Some 7)
        in
        match
          Ledger.append_signed_batch ~pool ledger ~member_id:user.Roles.id
            entries
        with
        | Ok _ -> Alcotest.fail "poisoned batch accepted"
        | Error e -> (e, Ledger.size ledger, Clock.now clock)
      in
      let e_par, size_par, clk_par = run pool in
      let e_seq, size_seq, clk_seq = run Domain_pool.sequential in
      Alcotest.(check string) "same rejection" e_seq e_par;
      Alcotest.(check string) "names the poisoned entry"
        "append_batch: bad client signature (entry 7)" e_par;
      Alcotest.(check int) "nothing committed (pooled)" 0 size_par;
      Alcotest.(check int) "nothing committed (sequential)" 0 size_seq;
      Alcotest.(check int64) "same clock position" clk_seq clk_par)

(* Shard fan-out: a 3-shard fleet driven through a pooled append/seal and
   an inline one must agree shard by shard and on the epoch super-root. *)
let shard_config =
  { Ledger_shard.Sharded_ledger.base =
      { diff_config with Ledger.name = "par-fleet" };
    shards = 3 }

let run_fleet ~pool =
  let module SL = Ledger_shard.Sharded_ledger in
  let clock = Clock.create () in
  let fleet = SL.create ~config:shard_config ~clock () in
  let user, key = SL.new_member fleet ~name:"puser" ~role:Roles.Regular_user in
  let batch lo n =
    ignore
      (SL.append_batch ~pool fleet ~member:user ~priv:key ~seal:false
         (List.init n (fun i -> (payload_of (lo + i), clues_of ((lo + i) mod 4)))))
  in
  batch 0 17;
  let first =
    match SL.seal_epoch ~pool fleet with
    | Ok s -> s
    | Error e -> Alcotest.failf "pooled-vs-seq fleet seal refused: %s" e
  in
  batch 17 9;
  let second =
    match SL.seal_epoch ~pool fleet with
    | Ok s -> s
    | Error e -> Alcotest.failf "second fleet seal refused: %s" e
  in
  (fleet, first, second)

let check_sealed_equal label (a : Ledger_shard.Super_root.sealed)
    (b : Ledger_shard.Super_root.sealed) =
  Alcotest.(check bool)
    (label ^ ": super-root commitment equal")
    true
    (Hash.equal
       (Ledger_shard.Super_root.commitment a)
       (Ledger_shard.Super_root.commitment b));
  Alcotest.(check int) (label ^ ": epoch") a.Ledger_shard.Super_root.epoch
    b.Ledger_shard.Super_root.epoch;
  Array.iteri
    (fun i ra ->
      if not (Hash.equal ra b.Ledger_shard.Super_root.shard_roots.(i)) then
        Alcotest.failf "%s: shard root %d diverged" label i)
    a.Ledger_shard.Super_root.shard_roots

let test_pooled_shard_fleet () =
  let module SL = Ledger_shard.Sharded_ledger in
  with_pool (fun pool ->
      let par, par1, par2 = run_fleet ~pool in
      let seq, seq1, seq2 = run_fleet ~pool:Domain_pool.sequential in
      check_sealed_equal "epoch 0" par1 seq1;
      check_sealed_equal "epoch 1" par2 seq2;
      Alcotest.(check int) "total sizes" (SL.total_size seq) (SL.total_size par);
      for s = 0 to SL.shard_count par - 1 do
        ignore
          (Test_batch_diff.check_equal_histories (SL.shard par s)
             (SL.shard seq s))
      done;
      (* pooled fleet's proofs verify against the shared super digest *)
      let super = Option.get (SL.super_digest par) in
      Alcotest.(check bool) "super digests agree" true
        (Hash.equal super (Option.get (SL.super_digest seq)));
      match SL.prove par ~shard:1 ~jsn:0 with
      | Error e -> Alcotest.failf "prove failed: %s" e
      | Ok proof ->
          Alcotest.(check bool) "cross-shard proof verifies" true
            (SL.verify_proof par ~super proof))

let suite =
  [
    tc "pool of one is inline" `Quick test_pool_of_one_is_inline;
    tc "create clamps to [1,128]" `Quick test_create_clamps;
    tc "empty and singleton inputs" `Quick test_empty_and_singleton;
    tc "more domains than items" `Quick test_more_domains_than_items;
    tc "large map deterministic" `Quick test_large_map_deterministic;
    tc "exception cancels and re-raises" `Quick
      test_exception_cancels_and_reraises;
    tc "nested use runs inline" `Quick test_nested_use_runs_inline;
    tc "LEDGERDB_DOMAINS parsing" `Quick test_env_domain_parsing;
    tc "set_default replaces the pool" `Quick test_set_default;
    tc "sha256 running digests" `Quick test_sha256_running_digests;
    tc "sha256 padding boundaries" `Quick test_sha256_padding_boundaries;
    tc "hex writer vectors round-trip" `Quick test_hex_writer;
    tc "pooled fam append_many" `Quick test_pooled_fam_append_many;
    QCheck_alcotest.to_alcotest prop_pooled_append_batch;
    tc "pooled signed batch" `Quick test_pooled_signed_batch;
    tc "pooled signed batch rejection" `Quick
      test_pooled_signed_batch_rejection;
    tc "pooled shard fleet" `Quick test_pooled_shard_fleet;
  ]
