(* Test aggregator: one alcotest suite per library. *)

let () =
  Alcotest.run "ledgerdb-repro"
    [
      ("crypto", Test_crypto.suite);
      ("crypto-props", Test_crypto_props.suite);
      ("storage", Test_storage.suite);
      ("merkle", Test_merkle.suite);
      ("mpt", Test_mpt.suite);
      ("query", Test_query.suite);
      ("cmtree", Test_cmtree.suite);
      ("timenotary", Test_timenotary.suite);
      ("ledger", Test_ledger.suite);
      ("audit", Test_audit.suite);
      ("baselines", Test_baselines.suite);
      ("core-units", Test_core_units.suite);
      ("client-api", Test_client_api.suite);
      ("bench-util", Test_bench_util.suite);
      ("persistence", Test_persistence.suite);
      ("ledger-model", Test_ledger_model.suite);
      ("batch-diff", Test_batch_diff.suite);
      ("verify-cache", Test_verify_cache.suite);
      ("service", Test_service.suite);
      ("edge-cases", Test_edge_cases.suite);
      ("replica", Test_replica.suite);
      ("faults", Test_faults.suite);
      ("survivability", Test_survivability.suite);
      ("obs", Test_obs.suite);
      ("shard", Test_shard.suite);
      ("par", Test_par.suite);
      ("net", Test_net.suite);
      ("read-view", Test_read_view.suite);
    ]
