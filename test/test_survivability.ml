(* Survivability tests: the shard supervisor's quarantine/repair state
   machine, degraded sealing with verifiable carried roots, the
   non-equivocation gossip mesh, and the scripted chaos orchestrator.
   Same contract as the rest of the fault suite: every failure mode ends
   in recovery or a typed refusal — never a hang, a raw exception, or a
   silently wrong verdict. *)

open Ledger_crypto
open Ledger_storage
open Ledger_core
open Ledger_shard
open Ledger_fault
open Ledger_bench_util

let tc = Alcotest.test_case

let fresh_dir () =
  let d = Filename.temp_file "surviv" "dir" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i =
    i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
  in
  go 0

let fleet_config shards =
  {
    Sharded_ledger.base =
      { Ledger.default_config with Ledger.name = "surviv-fleet";
        block_size = 4; fam_delta = 3;
        crypto = Crypto_profile.default_simulated };
    shards;
  }

let make_fleet ?(shards = 3) () =
  let clock = Clock.create () in
  let fleet = Sharded_ledger.create ~config:(fleet_config shards) ~clock () in
  let member, priv =
    Sharded_ledger.new_member fleet ~name:"suser" ~role:Roles.Regular_user
  in
  (clock, fleet, member, priv)

(* Route a spread of clue keys through the supervisor; rejections come
   back typed, never as exceptions. *)
let fill supervisor ~member ~priv n =
  let accepted = ref 0 and rejected = ref [] in
  for i = 0 to n - 1 do
    match
      Shard_supervisor.append supervisor ~member ~priv
        ~clues:[ "k" ^ string_of_int (i mod 8) ]
        (Bytes.of_string (Printf.sprintf "surviv %d" i))
    with
    | Ok _ -> incr accepted
    | Error u -> rejected := u :: !rejected
  done;
  (!accepted, List.rev !rejected)

let kill fleet i =
  Stream_store.Unsafe.kill (Ledger.backing_store (Sharded_ledger.shard fleet i))

let seal_ok supervisor =
  match Shard_supervisor.seal_epoch supervisor with
  | Ok s -> s
  | Error msg -> Alcotest.failf "seal refused: %s" msg

(* -------------------------------------------------------------------- *)
(* Supervisor state machine                                             *)
(* -------------------------------------------------------------------- *)

let test_state_machine () =
  let clock, fleet, member, priv = make_fleet () in
  let supervisor =
    Shard_supervisor.create
      ~policy:
        { Shard_supervisor.default_policy with
          Shard_supervisor.suspect_after = 2 }
      ~fleet ~scratch_dir:(fresh_dir ()) ()
  in
  let accepted, rejected = fill supervisor ~member ~priv 12 in
  Alcotest.(check int) "all accepted while healthy" 12 accepted;
  Alcotest.(check int) "no rejections while healthy" 0 (List.length rejected);
  Alcotest.(check bool) "healthy epoch full" true
    (Super_root.full (seal_ok supervisor));
  (* kill the store under shard 1: probes walk the state machine *)
  kill fleet 1;
  Alcotest.(check bool) "healthy until probed" true
    (Shard_supervisor.status supervisor 1 = Shard_supervisor.Healthy);
  Shard_supervisor.tick supervisor;
  (match Shard_supervisor.status supervisor 1 with
  | Shard_supervisor.Suspect { fails = 1 } -> ()
  | s ->
      Alcotest.failf "expected suspect after one failed probe, got %s"
        (Shard_supervisor.status_to_string s));
  Shard_supervisor.tick supervisor;
  (match Shard_supervisor.status supervisor 1 with
  | Shard_supervisor.Quarantined { attempt = 0; _ } -> ()
  | s ->
      Alcotest.failf "expected quarantine after repeated failures, got %s"
        (Shard_supervisor.status_to_string s));
  Alcotest.(check (list int)) "quarantine set" [ 1 ]
    (Shard_supervisor.quarantined supervisor);
  (* the seal checkpointed every shard and nothing was appended since,
     so the next due repair salvages the checkpoint locally — no replica
     source configured *)
  Clock.advance clock 60_000L;
  Shard_supervisor.tick supervisor;
  (match Shard_supervisor.status supervisor 1 with
  | Shard_supervisor.Healthy -> ()
  | s ->
      Alcotest.failf "expected a salvage repair, got %s"
        (Shard_supervisor.status_to_string s));
  Alcotest.(check bool) "store probe healthy again" true
    (Sharded_ledger.shard_healthy fleet 1);
  let accepted, _ = fill supervisor ~member ~priv 12 in
  Alcotest.(check int) "repaired shard accepts appends" 12 accepted

let test_backoff_bounded () =
  let clock, fleet, member, priv = make_fleet () in
  let policy =
    { Shard_supervisor.suspect_after = 1; base_backoff_us = 50_000L;
      max_backoff_us = 200_000L; checkpoint_on_seal = false }
  in
  let supervisor =
    Shard_supervisor.create ~policy ~fleet ~scratch_dir:(fresh_dir ()) ()
  in
  ignore (fill supervisor ~member ~priv 8);
  kill fleet 0;
  Shard_supervisor.tick supervisor;
  let backoff () =
    match Shard_supervisor.status supervisor 0 with
    | Shard_supervisor.Quarantined { next_repair_at; attempt; _ } ->
        (attempt, Int64.sub next_repair_at (Clock.now clock))
    | s ->
        Alcotest.failf "expected quarantined, got %s"
          (Shard_supervisor.status_to_string s)
  in
  (* no checkpoint and no repair source: every attempt fails, and the
     delay to the next one must grow exponentially up to the cap *)
  let observed = ref [] in
  for _ = 0 to 3 do
    let _, d = backoff () in
    observed := d :: !observed;
    Clock.advance clock (Int64.add d 1L);
    Shard_supervisor.tick supervisor
  done;
  (match List.rev !observed with
  | [ d0; d1; d2; d3 ] ->
      Alcotest.(check int64) "first backoff is the base" 50_000L d0;
      Alcotest.(check int64) "second doubles" 100_000L d1;
      Alcotest.(check int64) "third hits the cap" 200_000L d2;
      Alcotest.(check int64) "fourth stays at the cap" 200_000L d3
  | _ -> assert false);
  let attempt, _ = backoff () in
  Alcotest.(check bool) "failed attempts counted" true (attempt >= 4)

let test_typed_rejection () =
  let _clock, fleet, member, priv = make_fleet () in
  let supervisor =
    Shard_supervisor.create ~fleet ~scratch_dir:(fresh_dir ()) ()
  in
  ignore (fill supervisor ~member ~priv 12);
  kill fleet 2;
  Shard_supervisor.quarantine supervisor 2;
  let accepted, rejected = fill supervisor ~member ~priv 24 in
  Alcotest.(check bool) "live shards keep accepting" true (accepted > 0);
  Alcotest.(check bool) "dead shard sheds its share" true (rejected <> []);
  List.iter
    (fun u ->
      Alcotest.(check int) "rejection names the shard" 2
        u.Shard_supervisor.shard;
      (match u.Shard_supervisor.shard_status with
      | Shard_supervisor.Quarantined _ -> ()
      | s ->
          Alcotest.failf "rejection carries status %s"
            (Shard_supervisor.status_to_string s));
      match u.Shard_supervisor.retry_at with
      | Some t ->
          Alcotest.(check bool) "retry schedule attached" true (t > 0L)
      | None -> Alcotest.fail "rejection has no retry schedule")
    rejected

(* -------------------------------------------------------------------- *)
(* Degraded sealing: the skip is carried verifiably, never silently     *)
(* -------------------------------------------------------------------- *)

let test_degraded_seal_carried () =
  let _clock, fleet, member, priv = make_fleet () in
  let supervisor =
    Shard_supervisor.create ~fleet ~scratch_dir:(fresh_dir ()) ()
  in
  ignore (fill supervisor ~member ~priv 16);
  let first = seal_ok supervisor in
  Alcotest.(check bool) "victim sealed entries in epoch 0" true
    (first.Super_root.shard_sizes.(1) > 0);
  kill fleet 1;
  Shard_supervisor.quarantine supervisor 1;
  ignore (fill supervisor ~member ~priv 16);
  let sealed = seal_ok supervisor in
  Alcotest.(check bool) "degraded epoch flagged" false (Super_root.full sealed);
  Alcotest.(check (list int)) "carried set" [ 1 ] (Super_root.carried sealed);
  Alcotest.(check bool) "carried root is the last sealed root" true
    (Hash.equal sealed.Super_root.shard_roots.(1)
       first.Super_root.shard_roots.(1));
  Alcotest.(check int) "carried size is the last sealed size"
    first.Super_root.shard_sizes.(1)
    sealed.Super_root.shard_sizes.(1);
  let super = Super_root.commitment sealed in
  (* a carried shard's inclusion proof says carried on its face, and the
     carried-ness is bound into the commitment *)
  let inc = Super_root.prove sealed ~shard:1 in
  Alcotest.(check bool) "carried inclusion verifies" true
    (Super_root.verify ~super inc);
  (match inc.Super_root.shard_presence with
  | Super_root.Carried -> ()
  | Super_root.Sealed -> Alcotest.fail "carried shard proved as live");
  Alcotest.(check bool) "presence cannot be stripped" false
    (Super_root.verify ~super
       { inc with Super_root.shard_presence = Super_root.Sealed });
  (* the wire codec preserves the degraded shape *)
  (match Super_root.decode_sealed (Super_root.encode_sealed sealed) with
  | None -> Alcotest.fail "sealed codec roundtrip failed"
  | Some s' ->
      Alcotest.(check bool) "roundtrip commitment" true
        (Hash.equal (Super_root.commitment s') super);
      Alcotest.(check (list int)) "roundtrip carried set" [ 1 ]
        (Super_root.carried s'));
  (* live shards still prove and verify against the degraded super *)
  let live_size = sealed.Super_root.shard_sizes.(0) in
  Alcotest.(check bool) "live shard has entries" true (live_size > 0);
  match Sharded_ledger.prove fleet ~shard:0 ~jsn:(live_size - 1) with
  | Error m -> Alcotest.failf "prove on live shard refused: %s" m
  | Ok proof ->
      Alcotest.(check bool) "live proof verifies" true
        (Sharded_ledger.verify_proof fleet ~super proof);
      let wrong = Hash.combine super (Hash.digest_string "x") in
      Alcotest.(check bool) "wrong super refused" false
        (Sharded_ledger.verify_proof fleet ~super:wrong proof)

let test_no_quorum_refused () =
  let _clock, fleet, member, priv = make_fleet ~shards:2 () in
  let supervisor =
    Shard_supervisor.create ~fleet ~scratch_dir:(fresh_dir ()) ()
  in
  ignore (fill supervisor ~member ~priv 8);
  kill fleet 0;
  kill fleet 1;
  Shard_supervisor.quarantine supervisor 0;
  Shard_supervisor.quarantine supervisor 1;
  match Shard_supervisor.seal_epoch supervisor with
  | Ok _ -> Alcotest.fail "sealed an epoch with every shard dead"
  | Error msg ->
      Alcotest.(check bool) "refusal names the missing quorum" true
        (contains msg "every shard")

(* -------------------------------------------------------------------- *)
(* Non-equivocation gossip                                              *)
(* -------------------------------------------------------------------- *)

let build_sealed_fleet ?(shards = 2) () =
  let clock, fleet, member, priv = make_fleet ~shards () in
  for i = 0 to 7 do
    ignore
      (Sharded_ledger.append fleet ~member ~priv
         ~clues:[ "g" ^ string_of_int i ]
         (Bytes.of_string (Printf.sprintf "g %d" i)))
  done;
  (match Sharded_ledger.seal_epoch fleet with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "seal refused: %s" m);
  (clock, fleet)

let test_gossip_fork_evidence () =
  let _clock, fleet = build_sealed_fleet () in
  let service_pub = Sharded_ledger.service_public_key fleet in
  let peer = Gossip.create ~name:"p" ~service_pub ~ledger:"surviv-fleet" () in
  let honest =
    match Sharded_ledger.announce fleet with
    | Some a -> a
    | None -> Alcotest.fail "sealed fleet has no announcement"
  in
  Alcotest.(check bool) "announcement signed by the service" true
    (Gossip.announcement_valid ~service_pub honest);
  (match Gossip.decode_announcement (Gossip.encode_announcement honest) with
  | Some a' ->
      Alcotest.(check bool) "announcement codec roundtrip" true
        (Gossip.announcement_valid ~service_pub a'
        && Hash.equal a'.Gossip.super honest.Gossip.super)
  | None -> Alcotest.fail "announcement codec roundtrip failed");
  (match Gossip.observe peer honest with
  | Gossip.Fresh -> ()
  | v -> Alcotest.failf "expected fresh, got %s" (Gossip.verdict_to_string v));
  (match Gossip.observe peer honest with
  | Gossip.Confirmed -> ()
  | v ->
      Alcotest.failf "expected confirmed, got %s" (Gossip.verdict_to_string v));
  (* wrong ledger name or broken signature: rejected, never recorded *)
  (match Gossip.observe peer { honest with Gossip.ledger = "someone-else" } with
  | Gossip.Rejected _ -> ()
  | v ->
      Alcotest.failf "foreign announcement got %s" (Gossip.verdict_to_string v));
  (match
     Gossip.observe peer
       { honest with Gossip.super = Hash.digest_string "unsigned-fork" }
   with
  | Gossip.Rejected _ -> ()
  | v ->
      Alcotest.failf "unsigned fork got %s" (Gossip.verdict_to_string v));
  Alcotest.(check bool) "peer still clean" false (Gossip.compromised peer);
  (* a validly signed second root is the real thing *)
  let forged =
    match Sharded_ledger.Unsafe.equivocate fleet ~epoch:0 with
    | Some a -> a
    | None -> Alcotest.fail "equivocate refused"
  in
  let ev =
    match Gossip.observe peer forged with
    | Gossip.Forked ev -> ev
    | v -> Alcotest.failf "expected a fork, got %s" (Gossip.verdict_to_string v)
  in
  Alcotest.(check bool) "evidence self-verifies" true
    (Gossip.verify_fork ~service_pub ev);
  let _, other_pub = Ecdsa.generate ~seed:"not-the-service" in
  Alcotest.(check bool) "a different key refuses the evidence" false
    (Gossip.verify_fork ~service_pub:other_pub ev);
  (match Gossip.decode_fork (Gossip.encode_fork ev) with
  | Some ev' ->
      Alcotest.(check bool) "fork codec roundtrip verifies" true
        (Gossip.verify_fork ~service_pub ev')
  | None -> Alcotest.fail "fork codec roundtrip failed");
  Alcotest.(check bool) "announcement bytes are not fork-shaped" true
    (Gossip.decode_fork (Gossip.encode_announcement honest) = None);
  Alcotest.(check bool) "peer compromised, sticky" true
    (Gossip.compromised peer);
  (* the evidence condemns a client permanently *)
  let client =
    Ledger_client.create ~name:"c"
      ~lsp_pub:(Ledger.lsp_public_key (Sharded_ledger.shard fleet 0))
  in
  Gossip.condemn peer client;
  Alcotest.(check bool) "client condemned" true
    (Ledger_client.status client = Ledger_client.Compromised);
  Ledger_client.note_recovery client;
  Alcotest.(check bool) "no retry softens cryptographic evidence" true
    (Ledger_client.status client = Ledger_client.Compromised)

let test_replica_refuses_equivocation () =
  let clock, fleet = build_sealed_fleet () in
  let service_pub = Sharded_ledger.service_public_key fleet in
  let gossip =
    Gossip.create ~name:"puller" ~service_pub ~ledger:"surviv-fleet" ()
  in
  let forged =
    match Sharded_ledger.Unsafe.equivocate fleet ~epoch:0 with
    | Some a -> a
    | None -> Alcotest.fail "equivocate refused"
  in
  ignore (Gossip.observe gossip forged);
  (* the pull itself is valid — but the service's announcement for the
     pulled epoch conflicts with what the peer already holds *)
  match
    Sharded_replica.pull_all
      ~transport:(Sharded_service.handle fleet)
      ~config:(fleet_config 2) ~gossip ~clock ~scratch_dir:(fresh_dir ()) ()
  with
  | Error (Sharded_replica.Equivocation ev) ->
      Alcotest.(check bool) "surfaced evidence verifies" true
        (Gossip.verify_fork ~service_pub ev)
  | Error e ->
      Alcotest.failf "expected equivocation, got %s"
        (Sharded_replica.error_to_string e)
  | Ok _ -> Alcotest.fail "pull accepted a forked service"

(* -------------------------------------------------------------------- *)
(* Transport: typed exhaustion, partitions, seeded jitter               *)
(* -------------------------------------------------------------------- *)

let test_partition_typed_exhaustion () =
  let clock, fleet = build_sealed_fleet () in
  let ft =
    Faulty_transport.create
      ~rng:(Det_rng.create ~seed:3)
      ~config:(Faulty_transport.lossy ())
      ~clock
      (Sharded_service.handle fleet)
  in
  Faulty_transport.set_partitioned ft true;
  let policy =
    { Transport.default_policy with Transport.max_attempts = 4 }
  in
  let scratch = fresh_dir () in
  (match
     Sharded_replica.pull_all
       ~transport:(Faulty_transport.transport ft)
       ~config:(fleet_config 2) ~policy ~clock ~scratch_dir:scratch ()
   with
  | Error (Sharded_replica.Fleet_transport e) ->
      Alcotest.(check int) "terminal error carries the attempt count" 4
        e.Transport.attempts;
      Alcotest.(check bool) "last reason kept" true
        (String.length e.Transport.reason > 0)
  | Error e ->
      Alcotest.failf "expected typed exhaustion, got %s"
        (Sharded_replica.error_to_string e)
  | Ok _ -> Alcotest.fail "pull succeeded across a partition");
  (* heal: the same transport (same seeded schedule) now converges *)
  Faulty_transport.set_partitioned ft false;
  match
    Sharded_replica.pull_all
      ~transport:(Faulty_transport.transport ft)
      ~config:(fleet_config 2) ~clock ~scratch_dir:scratch ()
  with
  | Ok f ->
      Array.iteri
        (fun i r ->
          Alcotest.(check bool)
            (Printf.sprintf "replica shard %d converged" i)
            true
            (Hash.equal (Ledger.commitment r)
               (Ledger.commitment (Sharded_ledger.shard fleet i))))
        f.Sharded_replica.shards
  | Error e ->
      Alcotest.failf "healed pull failed: %s"
        (Sharded_replica.error_to_string e)

let test_backoff_jitter_deterministic () =
  let mk seed =
    Faulty_transport.create
      ~rng:(Det_rng.create ~seed)
      ~config:(Faulty_transport.lossy ())
      ~clock:(Clock.create ())
      (fun b -> b)
  in
  let draws t = List.init 16 (fun _ -> Faulty_transport.backoff_rng t ()) in
  let a = draws (mk 9) in
  let b = draws (mk 9) in
  let c = draws (mk 10) in
  Alcotest.(check (list (float 1e-12))) "same seed, same jitter" a b;
  Alcotest.(check bool) "different seed, different jitter" true (a <> c);
  List.iter
    (fun x ->
      Alcotest.(check bool) "draw in [0,1)" true (x >= 0. && x < 1.))
    a

(* -------------------------------------------------------------------- *)
(* Orchestrator                                                         *)
(* -------------------------------------------------------------------- *)

let test_orchestrator_scenario () =
  let report =
    Chaos_orchestrator.run
      { Chaos_orchestrator.name = "unit-kill"; seed = 7; shards = 3;
        ticks = 8; settle_ticks = 4; appends_per_tick = 6; seal_every = 2;
        schedule = [ (3, Chaos_orchestrator.Kill_shard 0) ] }
  in
  if not (Chaos_orchestrator.passed report) then
    Alcotest.fail (Chaos_orchestrator.report_to_string report);
  Alcotest.(check bool) "typed rejections observed" true
    (report.Chaos_orchestrator.rejected > 0);
  Alcotest.(check bool) "the shard was repaired" true
    (report.Chaos_orchestrator.repairs >= 1);
  Alcotest.(check bool) "proofs were spot-checked" true
    (report.Chaos_orchestrator.spot_verifications > 0)

let suite =
  [
    tc "supervisor state machine" `Quick test_state_machine;
    tc "repair backoff bounded exponential" `Quick test_backoff_bounded;
    tc "typed rejection while quarantined" `Quick test_typed_rejection;
    tc "degraded seal carries verifiably" `Quick test_degraded_seal_carried;
    tc "no quorum refuses the seal" `Quick test_no_quorum_refused;
    tc "gossip fork evidence" `Quick test_gossip_fork_evidence;
    tc "replica refuses equivocation" `Quick test_replica_refuses_equivocation;
    tc "partition: typed exhaustion then heal" `Slow
      test_partition_typed_exhaustion;
    tc "backoff jitter is seed-deterministic" `Quick
      test_backoff_jitter_deterministic;
    tc "orchestrator scenario converges" `Slow test_orchestrator_scenario;
  ]
