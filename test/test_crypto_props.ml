(* Differential and algebraic property gates for the fast crypto kernel.

   Every optimisation in lib/crypto (26-bit-limb field, wNAF/GLV ladders,
   binary-gcd inversion, unrolled SHA-256 compression) must be
   observationally identical to the retained reference implementations
   (Secp256k1.Ref, Ecdsa.Ref, Sha256.Ref).  These suites pin that down
   three ways:

   - differential qcheck gates: fast ≡ reference on random AND structured
     inputs, for field/scalar ops, scalar multiplication, sign/verify,
     and (crucially) *rejection agreement* under bit-flips;
   - algebraic laws the limb representations must satisfy (ring
     identities, reduction idempotence at the boundary values where limb
     folds historically break);
   - an end-to-end gate: a sealed ledger's journals and receipts carry
     signatures byte-identical to what the reference pipeline produces,
     so the kernel swap cannot have changed any persisted encoding. *)

open Ledger_crypto
open Ledger_storage
open Ledger_core

let check = Alcotest.check
let tc = Alcotest.test_case
let qcheck = QCheck_alcotest.to_alcotest

let u256 = Alcotest.testable (fun fmt v -> Format.fprintf fmt "%s" (Uint256.to_hex v)) Uint256.equal

let p = Secp256k1.p
let n = Secp256k1.n

(* --- generators ---------------------------------------------------------- *)

let all_ones = Uint256.of_hex (String.make 64 'f')

let arb_u256 =
  QCheck.map
    ~rev:(fun v ->
      let b = Uint256.to_bytes_be v in
      let g off = Bytes.get_int64_be b off in
      (g 0, g 8, g 16, g 24))
    (fun (a, b, c, d) ->
      let buf = Bytes.create 32 in
      Bytes.set_int64_be buf 0 a;
      Bytes.set_int64_be buf 8 b;
      Bytes.set_int64_be buf 16 c;
      Bytes.set_int64_be buf 24 d;
      Uint256.of_bytes_be buf)
    (QCheck.quad QCheck.int64 QCheck.int64 QCheck.int64 QCheck.int64)

(* The boundary scalars where windowed recoding and limb folds break if
   anything is off by one: 0, 1, n±1, n, p, and 2^k ± 1 walls. *)
let structured_scalars =
  let open Uint256 in
  let pow2 k =
    let b = Bytes.make 32 '\x00' in
    Bytes.set b (31 - (k / 8)) (Char.chr (1 lsl (k mod 8)));
    of_bytes_be b
  in
  let walls =
    List.concat_map
      (fun k ->
        let w = pow2 k in
        [ w; fst (add w one); fst (sub w one) ])
      [ 1; 26; 52; 64; 128; 129; 192; 255 ]
  in
  [
    zero; one;
    fst (sub n one); n; fst (add n one);
    fst (sub p one); p;
    all_ones;
  ]
  @ walls

let affine_of_fast pt = Secp256k1.to_affine pt
let affine_of_ref pt = Secp256k1.Ref.to_affine pt

let check_same_point name fast ref_pt =
  match (affine_of_fast fast, affine_of_ref ref_pt) with
  | None, None -> ()
  | Some (x1, y1), Some (x2, y2) ->
      check u256 (name ^ " x") x2 x1;
      check u256 (name ^ " y") y2 y1
  | Some _, None -> Alcotest.failf "%s: fast finite, ref infinity" name
  | None, Some _ -> Alcotest.failf "%s: fast infinity, ref finite" name

(* --- differential: field and scalar ops ---------------------------------- *)

let prop_fe_ops_differential =
  QCheck.Test.make ~name:"fe ops: fast = ref (random)" ~count:300
    (QCheck.pair arb_u256 arb_u256) (fun (a0, b0) ->
      let a = snd (Uint256.div_mod a0 p) and b = snd (Uint256.div_mod b0 p) in
      let open Secp256k1 in
      Uint256.equal (fe_add a b) (Ref.fe_add a b)
      && Uint256.equal (fe_sub a b) (Ref.fe_sub a b)
      && Uint256.equal (fe_mul a b) (Ref.fe_mul a b)
      && Uint256.equal (fe_sqr a) (Ref.fe_sqr a)
      && (Uint256.is_zero a || Uint256.equal (fe_inv a) (Ref.fe_inv a)))

let test_fe_ops_structured () =
  let open Secp256k1 in
  List.iter
    (fun a0 ->
      let a = snd (Uint256.div_mod a0 p) in
      List.iter
        (fun b0 ->
          let b = snd (Uint256.div_mod b0 p) in
          check u256 "mul" (Ref.fe_mul a b) (fe_mul a b);
          check u256 "add" (Ref.fe_add a b) (fe_add a b);
          check u256 "sub" (Ref.fe_sub a b) (fe_sub a b))
        structured_scalars;
      check u256 "sqr" (Ref.fe_sqr a) (fe_sqr a);
      if not (Uint256.is_zero a) then
        check u256 "inv" (Ref.fe_inv a) (fe_inv a))
    structured_scalars

let prop_scalar_ops_differential =
  QCheck.Test.make ~name:"scalar ops: fast = long-division" ~count:300
    (QCheck.pair arb_u256 arb_u256) (fun (a0, b0) ->
      let a = snd (Uint256.div_mod a0 n) and b = snd (Uint256.div_mod b0 n) in
      let open Secp256k1.Scalar in
      Uint256.equal (mul a b) (Uint256.mul_mod a b n)
      && Uint256.equal (add a b) (Uint256.add_mod a b n)
      && (Uint256.is_zero a || Uint256.equal (inv a) (Uint256.inv_mod a n)))

(* --- differential: scalar multiplication --------------------------------- *)

let prop_scalar_mul_differential =
  QCheck.Test.make ~name:"kG: wNAF/GLV = double-and-add" ~count:40 arb_u256
    (fun k ->
      let fast = Secp256k1.scalar_mul_base k in
      let fast2 = Secp256k1.scalar_mul k Secp256k1.generator in
      let refp = Secp256k1.Ref.scalar_mul k Secp256k1.Ref.generator in
      check_same_point "kG base" fast refp;
      check_same_point "kG generic" fast2 refp;
      true)

let test_scalar_mul_structured () =
  List.iter
    (fun k ->
      check_same_point
        ("k=" ^ Uint256.to_hex k)
        (Secp256k1.scalar_mul_base k)
        (Secp256k1.Ref.scalar_mul k Secp256k1.Ref.generator))
    structured_scalars

let prop_double_scalar_mul_differential =
  QCheck.Test.make ~name:"aG+bQ: Shamir/GLV = naive" ~count:25
    (QCheck.triple arb_u256 arb_u256 arb_u256) (fun (a, b, d) ->
      QCheck.assume (not (Uint256.is_zero (Secp256k1.Scalar.reduce d)));
      let q = Secp256k1.scalar_mul_base d in
      let qx, qy =
        match Secp256k1.to_affine q with
        | Some xy -> xy
        | None -> QCheck.assume_fail ()
      in
      let q_ref = Secp256k1.Ref.of_affine qx qy in
      let fast = Secp256k1.double_scalar_mul a Secp256k1.generator b q in
      let refp =
        Secp256k1.Ref.double_scalar_mul a Secp256k1.Ref.generator b q_ref
      in
      check_same_point "aG+bQ" fast refp;
      true)

(* --- differential: SHA-256 and HMAC -------------------------------------- *)

let prop_sha256_differential =
  QCheck.Test.make ~name:"sha256: unrolled = ref" ~count:200
    QCheck.(string_of_size (Gen.int_range 0 300))
    (fun msg ->
      Bytes.equal
        (Sha256.digest_string msg)
        (Sha256.Ref.digest_string msg))

(* --- differential: ECDSA sign/verify ------------------------------------- *)

let prop_sign_byte_identical =
  QCheck.Test.make ~name:"sign: fast = ref, bit for bit" ~count:15
    (QCheck.pair QCheck.small_string QCheck.small_string) (fun (seed, msg) ->
      let priv, pub = Ecdsa.generate ~seed in
      let digest = Hash.digest_string msg in
      let s_fast = Ecdsa.sign priv digest in
      let s_ref = Ecdsa.Ref.sign priv digest in
      Bytes.equal
        (Ecdsa.signature_to_bytes s_fast)
        (Ecdsa.signature_to_bytes s_ref)
      && Ecdsa.verify pub digest s_fast
      && Ecdsa.Ref.verify pub digest s_fast)

let prop_bitflip_rejection_agreement =
  (* Flip one bit of signature, message digest, or public key: both
     verifiers must return the same (almost surely false) verdict.  A
     disagreement would mean the fast path accepts something the
     reference rejects — exactly the bug class this gate exists for. *)
  QCheck.Test.make ~name:"bit flips: fast and ref verdicts agree" ~count:15
    (QCheck.triple QCheck.small_string (QCheck.int_range 0 511)
       (QCheck.int_range 0 2)) (fun (seed, bit, target) ->
      let priv, pub = Ecdsa.generate ~seed in
      let digest = Hash.digest_string ("msg:" ^ seed) in
      let s = Ecdsa.sign priv digest in
      let flip b i =
        let b = Bytes.copy b in
        let i = i mod (Bytes.length b * 8) in
        Bytes.set b (i / 8)
          (Char.chr (Char.code (Bytes.get b (i / 8)) lxor (1 lsl (i mod 8))));
        b
      in
      let pub', digest', s' =
        match target with
        | 0 ->
            (* signature bytes *)
            let s' =
              match
                Ecdsa.signature_of_bytes (flip (Ecdsa.signature_to_bytes s) bit)
              with
              | Some s' -> s'
              | None -> s
            in
            (pub, digest, s')
        | 1 -> (pub, Hash.of_bytes (flip (Hash.to_bytes digest) bit), s)
        | _ -> (
            match
              Ecdsa.public_key_of_bytes (flip (Ecdsa.public_key_to_bytes pub) bit)
            with
            | Some pub' -> (pub', digest, s)
            | None -> (pub, digest, s) (* off-curve: both reject at parse *))
      in
      Bool.equal
        (Ecdsa.verify pub' digest' s')
        (Ecdsa.Ref.verify pub' digest' s'))

(* --- algebraic laws: Uint256 / field / scalar rings ---------------------- *)

let ring_props modulus tag =
  let ( +% ) a b = Uint256.add_mod a b modulus in
  let ( *% ) a b = Uint256.mul_mod a b modulus in
  QCheck.Test.make
    ~name:(Printf.sprintf "ring laws mod %s" tag)
    ~count:200
    (QCheck.triple arb_u256 arb_u256 arb_u256) (fun (a, b, c) ->
      let a = snd (Uint256.div_mod a modulus)
      and b = snd (Uint256.div_mod b modulus)
      and c = snd (Uint256.div_mod c modulus) in
      Uint256.equal (a +% b) (b +% a)
      && Uint256.equal (a *% b) (b *% a)
      && Uint256.equal ((a +% b) +% c) (a +% (b +% c))
      && Uint256.equal ((a *% b) *% c) (a *% (b *% c))
      && Uint256.equal (a *% (b +% c)) ((a *% b) +% (a *% c)))

let fe_ring_props =
  (* same laws, but through the 26-bit-limb fast field *)
  let open Secp256k1 in
  QCheck.Test.make ~name:"ring laws, fast field layer" ~count:200
    (QCheck.triple arb_u256 arb_u256 arb_u256) (fun (a, b, c) ->
      let a = snd (Uint256.div_mod a p)
      and b = snd (Uint256.div_mod b p)
      and c = snd (Uint256.div_mod c p) in
      Uint256.equal (fe_mul a b) (fe_mul b a)
      && Uint256.equal (fe_mul (fe_mul a b) c) (fe_mul a (fe_mul b c))
      && Uint256.equal (fe_mul a (fe_add b c)) (fe_add (fe_mul a b) (fe_mul a c))
      && Uint256.equal (fe_sqr a) (fe_mul a a)
      && Uint256.equal (fe_add (fe_sub a b) b) a)

let test_reduction_idempotence () =
  (* Values straddling p (and n): a single reduction must land in
     canonical range and a second reduction must be the identity. *)
  let open Uint256 in
  let boundary_values m =
    [ fst (sub m one); m; fst (add m one); all_ones ]
  in
  List.iter
    (fun v ->
      let r = Secp256k1.Scalar.reduce v in
      check u256 "scalar reduce = div_mod" (snd (div_mod v n)) r;
      check u256 "scalar reduce idempotent" r (Secp256k1.Scalar.reduce r))
    (boundary_values n);
  List.iter
    (fun v ->
      (* push the value through the fast field via a multiplicative
         identity: the result must be the canonical residue *)
      let r = Secp256k1.fe_mul v one in
      check u256 "fe canonicalises" (snd (div_mod v p)) r;
      check u256 "fe idempotent" r (Secp256k1.fe_mul r one))
    (boundary_values p)

let prop_inv_correct =
  QCheck.Test.make ~name:"x * inv(x) = 1 (field and scalar)" ~count:100
    arb_u256 (fun x0 ->
      let xp = snd (Uint256.div_mod x0 p) in
      let xn = snd (Uint256.div_mod x0 n) in
      QCheck.assume (not (Uint256.is_zero xp));
      QCheck.assume (not (Uint256.is_zero xn));
      Uint256.equal Uint256.one (Secp256k1.fe_mul xp (Secp256k1.fe_inv xp))
      && Uint256.equal Uint256.one
           (Secp256k1.Scalar.mul xn (Secp256k1.Scalar.inv xn)))

let test_inv_batch () =
  let xs =
    Array.of_list
      (List.filter
         (fun v -> not (Uint256.is_zero (snd (Uint256.div_mod v p))))
         structured_scalars)
  in
  let xs = Array.map (fun v -> snd (Uint256.div_mod v p)) xs in
  let invs = Secp256k1.fe_inv_batch xs in
  Array.iteri
    (fun i x ->
      check u256 "batch inv element" (Secp256k1.fe_inv x) invs.(i);
      check u256 "batch inv product" Uint256.one (Secp256k1.fe_mul x invs.(i)))
    xs

let prop_bytes_hex_roundtrip =
  QCheck.Test.make ~name:"u256 bytes/hex round-trips" ~count:300 arb_u256
    (fun v ->
      Uint256.equal v (Uint256.of_bytes_be (Uint256.to_bytes_be v))
      && Uint256.equal v (Uint256.of_hex (Uint256.to_hex v)))

(* --- end-to-end: sealed ledger is byte-stable under the kernel swap ------ *)

let test_sealed_ledger_byte_identity () =
  (* Run a real (non-simulated) ledger end to end, then re-derive every
     persisted signature through the *reference* pipeline.  Deterministic
     nonces make signing a pure function, so fast-kernel and
     reference-kernel ledgers are byte-identical iff every signature
     matches bit for bit — which also pins every encoded journal,
     receipt, and block hash. *)
  let clock = Clock.create () in
  let config =
    { Ledger.default_config with
      name = "kernel-swap-gate";
      block_size = 4;
      crypto = Crypto_profile.Real;
    }
  in
  let ledger = Ledger.create ~config ~clock () in
  let alice, alice_key =
    Ledger.new_member ledger ~name:"alice" ~role:Roles.Regular_user
  in
  let bob, bob_key =
    Ledger.new_member ledger ~name:"bob" ~role:Roles.Regular_user
  in
  let receipts = ref [] in
  for i = 0 to 7 do
    let member, key = if i mod 2 = 0 then (alice, alice_key) else (bob, bob_key) in
    let r =
      Ledger.append ledger ~member ~priv:key
        ~clues:[ Printf.sprintf "acct:%d" (i mod 3) ]
        (Bytes.of_string (Printf.sprintf "transfer %d" i))
    in
    receipts := r :: !receipts
  done;
  Ledger.seal_block ledger;
  check Alcotest.int "two blocks sealed" 2 (Ledger.block_count ledger);
  let lsp_pub = Ledger.lsp_public_key ledger in
  (* receipts: the LSP signature must satisfy the reference verifier *)
  List.iter
    (fun (r : Receipt.t) ->
      let final = Ledger.get_receipt ledger r.jsn in
      Alcotest.(check bool) "receipt verifies (ledger)" true
        (Ledger.verify_receipt ledger final);
      let digest =
        Receipt.signing_digest ~jsn:final.jsn ~request_hash:final.request_hash
          ~tx_hash:final.tx_hash ~block_hash:final.block_hash
          ~timestamp:final.timestamp
      in
      Alcotest.(check bool) "receipt verifies (ref kernel)" true
        (Ecdsa.Ref.verify lsp_pub digest final.lsp_sig))
    !receipts;
  (* journals: π_c must be byte-identical to a reference-kernel re-sign *)
  let checked = ref 0 in
  Ledger.iter_journals ledger (fun j ->
      match j.Journal.client_sig with
      | None -> ()
      | Some sig_fast ->
          let member, key =
            if Hash.equal j.client_id alice.id then (alice, alice_key)
            else (bob, bob_key)
          in
          let digest =
            Journal.request_digest ~ledger_uri:(Ledger.uri ledger)
              ~kind_tag:(Journal.kind_tag j.kind) ~payload:j.payload
              ~clues:j.clues ~client_ts:j.client_ts ~nonce:j.nonce
          in
          let sig_ref = Ecdsa.Ref.sign key digest in
          Alcotest.(check string)
            "journal sig byte-identical across kernels"
            (Fmt.str "%a" Ecdsa.pp_signature sig_ref)
            (Fmt.str "%a" Ecdsa.pp_signature sig_fast);
          Alcotest.(check bool)
            "journal sig bytes equal" true
            (Bytes.equal
               (Ecdsa.signature_to_bytes sig_ref)
               (Ecdsa.signature_to_bytes sig_fast));
          Alcotest.(check bool) "ref verifier accepts" true
            (Ecdsa.Ref.verify member.pub digest sig_fast);
          (* the encoded journal digests identically under the reference
             SHA-256, so block tx-roots are pinned too *)
          let enc = Journal_codec.encode j in
          Alcotest.(check string) "encoding digest stable"
            (Fmt.str "%a" Hash.pp (Hash.of_bytes (Sha256.Ref.digest_bytes enc)))
            (Fmt.str "%a" Hash.pp (Hash.of_bytes (Sha256.digest_bytes enc)));
          incr checked);
  Alcotest.(check bool) "client-signed journals were checked" true (!checked >= 8);
  (* block chain still audits *)
  let blocks = Ledger.blocks ledger in
  List.iteri
    (fun i b ->
      if i > 0 then
        Alcotest.(check bool) "block chain links" true
          (Block.links_to (List.nth blocks (i - 1)) b))
    blocks

(* The start-up canary must agree with everything this suite checks the
   long way round. *)
let test_profile_self_check () =
  Alcotest.(check bool)
    "Crypto_profile.self_check" true
    (Crypto_profile.self_check ())

let suite =
  [
    qcheck prop_fe_ops_differential;
    tc "fe ops at structured boundary values" `Quick test_fe_ops_structured;
    qcheck prop_scalar_ops_differential;
    qcheck prop_scalar_mul_differential;
    tc "kG at structured scalars (0,1,n±1,2^k±1)" `Quick
      test_scalar_mul_structured;
    qcheck prop_double_scalar_mul_differential;
    qcheck prop_sha256_differential;
    qcheck prop_sign_byte_identical;
    qcheck prop_bitflip_rejection_agreement;
    qcheck (ring_props p "p");
    qcheck (ring_props n "n");
    qcheck fe_ring_props;
    tc "reduction idempotence at p/n boundaries" `Quick
      test_reduction_idempotence;
    qcheck prop_inv_correct;
    tc "batched inversion = elementwise" `Quick test_inv_batch;
    qcheck prop_bytes_hex_roundtrip;
    tc "sealed ledger byte-identical across kernel swap" `Quick
      test_sealed_ledger_byte_identity;
    tc "crypto_profile self-check canary" `Quick test_profile_self_check;
  ]
