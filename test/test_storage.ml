(* Tests for the storage substrate: clock, latency model, stream store,
   bitmap index and KV store. *)

open Ledger_storage

let tc = Alcotest.test_case

let test_clock () =
  let c = Clock.create () in
  Alcotest.(check int64) "starts at 0" 0L (Clock.now c);
  Clock.advance c 100L;
  Clock.advance_ms c 2.;
  Clock.advance_sec c 0.001;
  Alcotest.(check int64) "accumulates" 3100L (Clock.now c);
  Alcotest.(check int64) "elapsed" 3000L (Clock.elapsed_since c 100L);
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Clock.advance: negative") (fun () ->
      Clock.advance c (-1L))

let test_latency_model () =
  let c = Clock.create () in
  let m = Latency_model.default in
  Latency_model.charge_seek m c;
  let after_seek = Clock.now c in
  Alcotest.(check bool) "seek costs" true (Int64.compare after_seek 0L > 0);
  Latency_model.charge_read m c ~bytes:(1 lsl 20);
  Alcotest.(check bool) "read charges transfer" true
    (Int64.compare (Clock.now c) (Int64.add after_seek 1000L) > 0);
  let free = Clock.create () in
  Latency_model.charge_read Latency_model.free free ~bytes:(1 lsl 20);
  Alcotest.(check int64) "free model charges nothing" 0L (Clock.now free)

let test_latency_exact () =
  (* exact charge arithmetic, per the model constants *)
  let c = Clock.create () in
  Latency_model.charge_read Latency_model.default c ~bytes:2048;
  (* 100µs seek + 4µs/KB × 2KB *)
  Alcotest.(check int64) "read arithmetic" 108L (Clock.now c);
  Latency_model.charge_cloud Latency_model.default c;
  Alcotest.(check int64) "default cloud rtt" 20_108L (Clock.now c);
  Latency_model.charge_cloud Latency_model.cloud_service c;
  Alcotest.(check int64) "cloud-service rtt" 50_108L (Clock.now c);
  Latency_model.charge_net Latency_model.default c;
  Alcotest.(check int64) "net rtt" 50_308L (Clock.now c);
  Latency_model.charge_seek Latency_model.default c;
  Alcotest.(check int64) "seek" 50_408L (Clock.now c)

let test_latency_monotone () =
  (* any interleaving of charges only moves the clock forward *)
  let c = Clock.create () in
  let last = ref (-1L) in
  for i = 0 to 99 do
    (match i mod 4 with
    | 0 -> Latency_model.charge_seek Latency_model.default c
    | 1 -> Latency_model.charge_read Latency_model.free c ~bytes:(i * 37)
    | 2 -> Latency_model.charge_net Latency_model.default c
    | _ -> Latency_model.charge_read Latency_model.default c ~bytes:i);
    let now = Clock.now c in
    Alcotest.(check bool) "clock never goes back" true
      (Int64.compare now !last >= 0);
    last := now
  done

let test_stream_store_basic () =
  let store = Stream_store.create () in
  let s = Stream_store.stream store "journals" in
  Alcotest.(check string) "name" "journals" (Stream_store.stream_name s);
  let i0 = Stream_store.append s (Bytes.of_string "alpha") in
  let i1 = Stream_store.append s (Bytes.of_string "beta") in
  Alcotest.(check int) "dense indices" 1 i1;
  Alcotest.(check string) "read back" "alpha"
    (Bytes.to_string (Stream_store.read s i0));
  Alcotest.(check int) "length" 2 (Stream_store.length s);
  Alcotest.(check int) "bytes" 9 (Stream_store.total_bytes s);
  (* records are isolated copies *)
  let b = Stream_store.read s i0 in
  Bytes.set b 0 'X';
  Alcotest.(check string) "isolation" "alpha"
    (Bytes.to_string (Stream_store.read s i0))

let test_stream_store_erase () =
  let store = Stream_store.create () in
  let s = Stream_store.stream store "j" in
  let i = Stream_store.append s (Bytes.of_string "secret") in
  ignore (Stream_store.append s (Bytes.of_string "public"));
  Stream_store.erase s i;
  Alcotest.(check bool) "erased flagged" true (Stream_store.is_erased s i);
  Alcotest.(check bool) "read_opt none" true (Stream_store.read_opt s i = None);
  Alcotest.check_raises "read raises"
    (Stream_store.Read_error (Stream_store.Erased { stream = "j"; index = i }))
    (fun () -> ignore (Stream_store.read s i));
  Alcotest.(check bool) "read_result typed error" true
    (Stream_store.read_result s i
    = Error (Stream_store.Erased { stream = "j"; index = i }));
  Alcotest.(check bool) "read_result out of range" true
    (match Stream_store.read_result s 99 with
    | Error (Stream_store.Out_of_range { index = 99; length = 2; _ }) -> true
    | _ -> false);
  Alcotest.(check int) "length unchanged" 2 (Stream_store.length s);
  Alcotest.(check int) "bytes shrink" 6 (Stream_store.total_bytes s);
  (* iter skips erased *)
  let seen = ref [] in
  Stream_store.iter s (fun i b -> seen := (i, Bytes.to_string b) :: !seen);
  Alcotest.(check (list (pair int string))) "iter skips" [ (1, "public") ] !seen;
  Stream_store.erase s i (* idempotent *)

let test_stream_store_latency () =
  let store = Stream_store.create () in
  let s = Stream_store.stream store "j" in
  let i = Stream_store.append s (Bytes.make 8192 'x') in
  let c = Clock.create () in
  ignore (Stream_store.read ~latency:(Latency_model.default, c) s i);
  Alcotest.(check bool) "read charged" true (Int64.compare (Clock.now c) 0L > 0)

let test_stream_store_growth () =
  let store = Stream_store.create () in
  let s = Stream_store.stream store "big" in
  for i = 0 to 999 do
    ignore (Stream_store.append s (Bytes.of_string (string_of_int i)))
  done;
  Alcotest.(check int) "1000 records" 1000 (Stream_store.length s);
  Alcotest.(check string) "spot check" "742"
    (Bytes.to_string (Stream_store.read s 742));
  Alcotest.(check bool) "page count positive" true (Stream_store.page_count s > 0)

let test_stream_store_persist () =
  let dir = Filename.temp_file "ledger" "store" in
  Sys.remove dir;
  let store = Stream_store.create ~dir () in
  let s = Stream_store.stream store "j" in
  ignore (Stream_store.append s (Bytes.of_string "persisted"));
  Stream_store.persist store;
  Alcotest.(check bool) "log file exists" true
    (Sys.file_exists (Filename.concat dir "j.log"))

let fresh_dir () =
  let d = Filename.temp_file "ledger" "store" in
  Sys.remove d;
  d

let test_crc32_vectors () =
  (* the classic check value for the IEEE polynomial *)
  Alcotest.(check int32) "check vector" 0xCBF43926l
    (Crc32.string "123456789");
  Alcotest.(check int32) "empty" 0l (Crc32.string "");
  (* incremental == one-shot *)
  let whole = Crc32.string "hello world" in
  let part =
    Crc32.update (Crc32.string "hello ") (Bytes.of_string "world") ~pos:0
      ~len:5
  in
  Alcotest.(check int32) "incremental" whole part

let test_stream_store_recover_roundtrip () =
  let dir = fresh_dir () in
  let store = Stream_store.create ~dir () in
  let s = Stream_store.stream store "j" in
  for i = 0 to 19 do
    ignore (Stream_store.append s (Bytes.of_string (Printf.sprintf "rec-%03d" i)))
  done;
  Stream_store.erase s 7;
  Stream_store.persist store;
  let reopened, reports = Stream_store.recover ~dir () in
  let s' = Stream_store.stream reopened "j" in
  Alcotest.(check int) "count preserved" 20 (Stream_store.length s');
  Alcotest.(check bool) "erasure preserved" true (Stream_store.is_erased s' 7);
  Alcotest.(check string) "content preserved" "rec-011"
    (Bytes.to_string (Stream_store.read s' 11));
  Alcotest.(check int) "total bytes" (Stream_store.total_bytes s)
    (Stream_store.total_bytes s');
  match reports with
  | [ r ] ->
      Alcotest.(check int) "recovered_upto" 20 r.Stream_store.recovered_upto;
      Alcotest.(check bool) "intact" true (r.Stream_store.damage = Stream_store.Intact)
  | _ -> Alcotest.fail "expected one recovery report"

let test_stream_store_recover_torn_tail () =
  let dir = fresh_dir () in
  let store = Stream_store.create ~dir () in
  let s = Stream_store.stream store "j" in
  for i = 0 to 9 do
    ignore (Stream_store.append s (Bytes.of_string (Printf.sprintf "torn-%d" i)))
  done;
  Stream_store.persist store;
  (* simulate a crash mid-append: chop bytes off the end of the log *)
  let path = Filename.concat dir "j.log" in
  let full = (Unix.stat path).Unix.st_size in
  Framing.truncate_file path ~keep:(full - 5);
  let reopened, reports = Stream_store.recover ~dir () in
  let s' = Stream_store.stream reopened "j" in
  Alcotest.(check int) "last record dropped" 9 (Stream_store.length s');
  Alcotest.(check string) "prefix intact" "torn-8"
    (Bytes.to_string (Stream_store.read s' 8));
  (match reports with
  | [ r ] ->
      Alcotest.(check bool) "torn tail reported" true
        (r.Stream_store.damage = Stream_store.Torn_tail);
      Alcotest.(check int) "recovered_upto" 9 r.Stream_store.recovered_upto;
      Alcotest.(check bool) "dropped bytes counted" true
        (r.Stream_store.dropped_bytes > 0)
  | _ -> Alcotest.fail "expected one recovery report");
  (* after recovery the truncated log replays cleanly *)
  let _, reports2 = Stream_store.recover ~dir () in
  match reports2 with
  | [ r ] ->
      Alcotest.(check bool) "clean after truncation" true
        (r.Stream_store.damage = Stream_store.Intact);
      Alcotest.(check int) "still 9" 9 r.Stream_store.recovered_upto
  | _ -> Alcotest.fail "expected one recovery report"

let test_stream_store_recover_corrupt_record () =
  let dir = fresh_dir () in
  let store = Stream_store.create ~dir () in
  let s = Stream_store.stream store "j" in
  for i = 0 to 9 do
    ignore (Stream_store.append s (Bytes.make 32 (Char.chr (Char.code 'a' + i))))
  done;
  Stream_store.persist store;
  (* flip one payload byte in the middle of the log: CRC must catch it *)
  let path = Filename.concat dir "j.log" in
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let data = Bytes.create len in
  really_input ic data 0 len;
  close_in ic;
  let off = len / 2 in
  Bytes.set data off (Char.chr (Char.code (Bytes.get data off) lxor 0x01));
  let oc = open_out_bin path in
  output_bytes oc data;
  close_out oc;
  let reopened, reports = Stream_store.recover ~dir () in
  let s' = Stream_store.stream reopened "j" in
  (match reports with
  | [ r ] ->
      Alcotest.(check bool) "corruption reported" true
        (r.Stream_store.damage = Stream_store.Corrupt_record);
      Alcotest.(check bool) "stopped before the bad record" true
        (r.Stream_store.recovered_upto < 10);
      Alcotest.(check int) "in-memory prefix matches report"
        r.Stream_store.recovered_upto (Stream_store.length s')
  | _ -> Alcotest.fail "expected one recovery report");
  (* every recovered record is intact *)
  for i = 0 to Stream_store.length s' - 1 do
    Alcotest.(check string) "recovered record"
      (String.make 32 (Char.chr (Char.code 'a' + i)))
      (Bytes.to_string (Stream_store.read s' i))
  done

let test_bitmap () =
  let b = Bitmap_index.create () in
  Alcotest.(check bool) "empty" false (Bitmap_index.mem b 5);
  Bitmap_index.set b 5;
  Bitmap_index.set b 5;
  Bitmap_index.set b 1000;
  Alcotest.(check int) "cardinal dedups" 2 (Bitmap_index.cardinal b);
  Alcotest.(check bool) "mem 1000" true (Bitmap_index.mem b 1000);
  Alcotest.(check (option int)) "max" (Some 1000) (Bitmap_index.max_set b);
  let seen = ref [] in
  Bitmap_index.iter_set b (fun i -> seen := i :: !seen);
  Alcotest.(check (list int)) "iter order" [ 1000; 5 ] !seen;
  Bitmap_index.clear b 5;
  Alcotest.(check bool) "cleared" false (Bitmap_index.mem b 5);
  Alcotest.(check int) "cardinal after clear" 1 (Bitmap_index.cardinal b);
  Alcotest.(check bool) "negative mem" false (Bitmap_index.mem b (-3))

let test_kv_store () =
  let store = Stream_store.create () in
  let kv = Kv_store.create store ~name:"state" in
  let a0 = Kv_store.put kv "alice" (Bytes.of_string "100") in
  let a1 = Kv_store.put kv "alice" (Bytes.of_string "250") in
  Alcotest.(check bool) "addresses advance" true (a1 > a0);
  Alcotest.(check (option string)) "latest value" (Some "250")
    (Option.map Bytes.to_string (Kv_store.get kv "alice"));
  Alcotest.(check int) "version count" 2 (Kv_store.versions kv "alice");
  Alcotest.(check int) "cardinal" 1 (Kv_store.cardinal kv);
  Alcotest.(check bool) "missing" true (Kv_store.get kv "bob" = None);
  Alcotest.(check (option int)) "address" (Some a1) (Kv_store.get_address kv "alice")

let test_kv_binary_safety () =
  let store = Stream_store.create () in
  let kv = Kv_store.create store ~name:"bin" in
  let payload = Bytes.of_string "with\000nul\000bytes" in
  ignore (Kv_store.put kv "k" payload);
  Alcotest.(check (option string)) "nul-safe value"
    (Some (Bytes.to_string payload))
    (Option.map Bytes.to_string (Kv_store.get kv "k"))

let prop_bitmap_model =
  QCheck.Test.make ~name:"bitmap agrees with set model" ~count:100
    QCheck.(small_list (int_range 0 500))
    (fun ops ->
      let b = Bitmap_index.create () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun i ->
          Bitmap_index.set b i;
          Hashtbl.replace model i ())
        ops;
      Hashtbl.length model = Bitmap_index.cardinal b
      && List.for_all (fun i -> Bitmap_index.mem b i) ops)

let base_suite =
  [
    tc "clock" `Quick test_clock;
    tc "latency model" `Quick test_latency_model;
    tc "latency exact arithmetic" `Quick test_latency_exact;
    tc "latency monotone" `Quick test_latency_monotone;
    tc "stream store basics" `Quick test_stream_store_basic;
    tc "stream store erase" `Quick test_stream_store_erase;
    tc "stream store latency" `Quick test_stream_store_latency;
    tc "stream store growth" `Quick test_stream_store_growth;
    tc "stream store persist" `Quick test_stream_store_persist;
    tc "crc32 vectors" `Quick test_crc32_vectors;
    tc "stream store recover roundtrip" `Quick test_stream_store_recover_roundtrip;
    tc "stream store recover torn tail" `Quick test_stream_store_recover_torn_tail;
    tc "stream store recover corrupt" `Quick test_stream_store_recover_corrupt_record;
    tc "bitmap index" `Quick test_bitmap;
    tc "kv store" `Quick test_kv_store;
    tc "kv nul safety" `Quick test_kv_binary_safety;
    QCheck_alcotest.to_alcotest prop_bitmap_model;
  ]

let test_compaction () =
  let store = Stream_store.create () in
  let s = Stream_store.stream store "c" in
  for i = 0 to 9 do
    ignore (Stream_store.append s (Bytes.of_string ("r" ^ string_of_int i)))
  done;
  Stream_store.erase s 2;
  Stream_store.erase s 5;
  Stream_store.erase s 9;
  Alcotest.(check int) "live before" 7 (Stream_store.live_records s);
  let remaps = ref [] in
  let reclaimed = Stream_store.compact s (fun o n -> remaps := (o, n) :: !remaps) in
  Alcotest.(check int) "reclaimed" 3 reclaimed;
  Alcotest.(check int) "length after" 7 (Stream_store.length s);
  (* every survivor readable at its new index with the same content *)
  List.iter
    (fun (o, n) ->
      Alcotest.(check string) "remapped content"
        ("r" ^ string_of_int o)
        (Bytes.to_string (Stream_store.read s n)))
    !remaps;
  Alcotest.(check int) "remap count" 7 (List.length !remaps)

let compaction_suite = [ tc "stream compaction" `Quick test_compaction ]

let suite = base_suite @ compaction_suite
