(* Known-answer vector suite for the crypto kernel.

   Runs as its own executable so a tier-1 failure names the offending
   vector id directly.  The reference data is vendored: NIST/RFC SHA-256
   and HMAC-SHA256 vectors, independently computed secp256k1 scalar
   multiples and field/scalar arithmetic vectors, and a Wycheproof-style
   battery of ECDSA edge cases — every degenerate input must fail closed
   on the fast path, and the fast and reference pipelines must agree. *)

open Ledger_crypto

let bytes_of_hex s =
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | _ -> invalid_arg "bytes_of_hex"
  in
  let n = String.length s / 2 in
  Bytes.init n (fun i -> Char.chr ((digit s.[2 * i] lsl 4) lor digit s.[(2 * i) + 1]))

let hex_of_bytes b =
  String.concat ""
    (List.map (fun c -> Printf.sprintf "%02x" (Char.code c))
       (List.of_seq (Bytes.to_seq b)))

let check_hex id expect got =
  Alcotest.(check string) id expect (hex_of_bytes got)

(* --- SHA-256 (FIPS 180-4 / NIST CAVP style) ----------------------------- *)

(* (id, message hex, digest hex) *)
let sha256_vectors =
  [
    ("sha256-empty", "", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    ("sha256-a", "61", "ca978112ca1bbdcafac231b39a23dc4da786eff8147c4e72b9807785afee48bb");
    ("sha256-abc", "616263", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    ("sha256-message-digest", "6d65737361676520646967657374",
     "f7846f55cf23e14eebeab5b4e1550cad5b509e3348fbc4efa3a1413d393cb650");
    ("sha256-alphabet", "6162636465666768696a6b6c6d6e6f707172737475767778797a",
     "71c480df93d6ae2f1efad1447c66c9525e316218cf51fc8d9ed832f2daf18b73");
    ("sha256-448bit",
     "6162636462636465636465666465666765666768666768696768696a68696a6b696a6b6c6a6b6c6d6b6c6d6e6c6d6e6f6d6e6f706e6f7071",
     "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
    ("sha256-896bit",
     "61626364656667686263646566676869636465666768696a6465666768696a6b65666768696a6b6c666768696a6b6c6d6768696a6b6c6d6e68696a6b6c6d6e6f696a6b6c6d6e6f706a6b6c6d6e6f70716b6c6d6e6f7071726c6d6e6f707172736d6e6f70717273746e6f707172737475",
     "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1");
    ("sha256-bytes-0-255",
     "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f202122232425262728292a2b2c2d2e2f303132333435363738393a3b3c3d3e3f404142434445464748494a4b4c4d4e4f505152535455565758595a5b5c5d5e5f606162636465666768696a6b6c6d6e6f707172737475767778797a7b7c7d7e7f808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9fa0a1a2a3a4a5a6a7a8a9aaabacadaeafb0b1b2b3b4b5b6b7b8b9babbbcbdbebfc0c1c2c3c4c5c6c7c8c9cacbcccdcecfd0d1d2d3d4d5d6d7d8d9dadbdcdddedfe0e1e2e3e4e5e6e7e8e9eaebecedeeeff0f1f2f3f4f5f6f7f8f9fafbfcfdfeff",
     "40aff2e9d2d8922e47afd4648e6967497158785fbd1da870e7110266bf944880");
    (* padding boundaries: 55, 56, 63, 64, 65 bytes of 'x' *)
    ("sha256-pad55", String.concat "" (List.init 55 (fun _ -> "78")),
     "d5e285683cd4efc02d021a5c62014694958901005d6f71e89e0989fac77e4072");
    ("sha256-pad56", String.concat "" (List.init 56 (fun _ -> "78")),
     "04c26261370ee7541549d16dee320c723e3fd14671e66a099afe0a377c16888e");
    ("sha256-pad63", String.concat "" (List.init 63 (fun _ -> "78")),
     "75220b47218278e656f2013bb8f0c455a25eaf01e86c64924e9d48d89776d6f2");
    ("sha256-pad64", String.concat "" (List.init 64 (fun _ -> "78")),
     "7ce100971f64e7001e8fe5a51973ecdfe1ced42befe7ee8d5fd6219506b5393c");
    ("sha256-pad65", String.concat "" (List.init 65 (fun _ -> "78")),
     "9537c5fdf120482f7d58d25e9ed583f52c02b4e304ea814db1633ad565aed7e9");
  ]

let test_sha256 () =
  List.iter
    (fun (id, msg_hex, digest_hex) ->
      let msg = bytes_of_hex msg_hex in
      check_hex id digest_hex (Sha256.digest_bytes msg);
      check_hex (id ^ "/ref") digest_hex (Sha256.Ref.digest_bytes msg))
    sha256_vectors

let test_sha256_million_a () =
  (* NIST long vector: 10^6 repetitions of 'a', exercised through the
     streaming API in uneven chunks *)
  let expect = "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0" in
  let ctx = Sha256.init () in
  let chunk = Bytes.make 997 'a' in
  let fed = ref 0 in
  while !fed + 997 <= 1_000_000 do
    Sha256.update ctx chunk;
    fed := !fed + 997
  done;
  Sha256.update ctx (Bytes.make (1_000_000 - !fed) 'a');
  check_hex "sha256-million-a" expect (Sha256.finalize ctx);
  check_hex "sha256-million-a/ref" expect
    (Sha256.Ref.digest_bytes (Bytes.make 1_000_000 'a'))

(* --- HMAC-SHA256 (RFC 4231 cases 1-7) ----------------------------------- *)

let hmac_vectors =
  [
    ("hmac-rfc4231-1", "0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b", "4869205468657265",
     "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
    ("hmac-rfc4231-2", "4a656665", "7768617420646f2079612077616e7420666f72206e6f7468696e673f",
     "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
    ("hmac-rfc4231-3", "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
     "dddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddd",
     "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
    ("hmac-rfc4231-4", "0102030405060708090a0b0c0d0e0f10111213141516171819",
     "cdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcd",
     "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
    ("hmac-rfc4231-5", "0c0c0c0c0c0c0c0c0c0c0c0c0c0c0c0c0c0c0c0c", "546573742057697468205472756e636174696f6e",
     "a3b6167473100ee06e0c796c2955552bfa6f7c0a6a8aef8b93f860aab0cd20c5");
    ("hmac-rfc4231-6",
     String.concat "" (List.init 131 (fun _ -> "aa")),
     "54657374205573696e67204c6172676572205468616e20426c6f636b2d53697a65204b6579202d2048617368204b6579204669727374",
     "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
    ("hmac-rfc4231-7",
     String.concat "" (List.init 131 (fun _ -> "aa")),
     "5468697320697320612074657374207573696e672061206c6172676572207468616e20626c6f636b2d73697a65206b657920616e642061206c6172676572207468616e20626c6f636b2d73697a6520646174612e20546865206b6579206e6565647320746f20626520686173686564206265666f7265206265696e6720757365642062792074686520484d414320616c676f726974686d2e",
     "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
  ]

let test_hmac () =
  List.iter
    (fun (id, key_hex, msg_hex, tag_hex) ->
      let tag = Hmac_sha256.mac ~key:(bytes_of_hex key_hex) (bytes_of_hex msg_hex) in
      check_hex id tag_hex tag)
    hmac_vectors

(* --- secp256k1 scalar multiples of G ------------------------------------ *)

(* (id, k, affine x, affine y), computed with an independent
   implementation *)
let kg_vectors =
  [
    ("kG-1", "0000000000000000000000000000000000000000000000000000000000000001",
     "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798",
     "483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8");
    ("kG-2", "0000000000000000000000000000000000000000000000000000000000000002",
     "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5",
     "1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a");
    ("kG-3", "0000000000000000000000000000000000000000000000000000000000000003",
     "f9308a019258c31049344f85f89d5229b531c845836f99b08601f113bce036f9",
     "388f7b0f632de8140fe337e62a37f3566500a99934c2231b6cb9fd7584b8e672");
    ("kG-7", "0000000000000000000000000000000000000000000000000000000000000007",
     "5cbdf0646e5db4eaa398f365f2ea7a0e3d419b7e0330e39ce92bddedcac4f9bc",
     "6aebca40ba255960a3178d6d861a54dba813d0b813fde7b5a5082628087264da");
    ("kG-20", "0000000000000000000000000000000000000000000000000000000000000014",
     "4ce119c96e2fa357200b559b2f7dd5a5f02d5290aff74b03f3e471b273211c97",
     "12ba26dcb10ec1625da61fa10a844c676162948271d96967450288ee9233dc3a");
    ("kG-56bit", "000000000000000000000000000000000000000000000000018ebbb95eed0e13",
     "a90cc3d3f3e146daadfc74ca1372207cb4b725ae708cef713a98edd73d99ef29",
     "5a79d6b289610c68bc3b47f3d72f9788a26a06868b4d8e433e1e2ad76fb7dc76");
    ("kG-2^128", "0000000000000000000000000000000100000000000000000000000000000000",
     "8f68b9d2f63b5f339239c1ad981f162ee88c5678723ea3351b7b444c9ec4c0da",
     "662a9f2dba063986de1d90c2b6be215dbbea2cfe95510bfdf23cbf79501fff82");
    ("kG-2^255", "8000000000000000000000000000000000000000000000000000000000000000",
     "b23790a42be63e1b251ad6c94fdef07271ec0aada31db6c3e8bd32043f8be384",
     "fc6b694919d55edbe8d50f88aa81f94517f004f4149ecb58d10a473deb19880e");
    ("kG-n-1", "fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364140",
     "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798",
     "b7c52588d95c3b9aa25b0403f1eef75702e84bb7597aabe663b82f6f04ef2777");
    ("kG-n-2", "fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd036413f",
     "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5",
     "e51e970159c23cc65c3a7be6b99315110809cd9acd992f1edc9bce55af301705");
    ("kG-random", "aa5e28d6a97a2479a65527f7290311a3624d4cc0fa1578598ee3c2613bf99522",
     "34f9460f0e4f08393d192b3c5133a6ba099aa0ad9fd54ebccfacdfa239ff49c6",
     "0b71ea9bd730fd8923f6d25a7a91e7dd7728a960686cb5a901bb419e0f2ca232");
  ]

let test_kg () =
  List.iter
    (fun (id, k_hex, x_hex, y_hex) ->
      let k = Uint256.of_hex k_hex in
      (match Secp256k1.to_affine (Secp256k1.scalar_mul_base k) with
      | None -> Alcotest.failf "%s: got infinity" id
      | Some (x, y) ->
          Alcotest.(check string) (id ^ "/x") x_hex (Uint256.to_hex x);
          Alcotest.(check string) (id ^ "/y") y_hex (Uint256.to_hex y));
      match Secp256k1.Ref.to_affine (Secp256k1.Ref.scalar_mul k Secp256k1.Ref.generator) with
      | None -> Alcotest.failf "%s/ref: got infinity" id
      | Some (x, y) ->
          Alcotest.(check string) (id ^ "/ref-x") x_hex (Uint256.to_hex x);
          Alcotest.(check string) (id ^ "/ref-y") y_hex (Uint256.to_hex y))
    kg_vectors;
  match Secp256k1.to_affine (Secp256k1.scalar_mul_base Secp256k1.n) with
  | None -> ()
  | Some _ -> Alcotest.fail "kG-n: n*G must be the point at infinity"

(* --- field and scalar arithmetic vectors -------------------------------- *)

(* (a, b, a*b, a+b, a-b, a^-1) mod p *)
let fe_vectors =
  [
    ("fe-1",
     "23b8c1e9392456de3eb13b9046685257bdd640fb06671ad11c80317fa3b1799e",
     "972a846916419f828b9d2434e465e150bd9c66b3ad3c2d6d1a3d1fa7bc8960aa",
     "eb806bdbc8ed01ebdf4c8fb0499aa57e923fd6bc8cadceaf7922086d9f8810a9",
     "bae346524f65f660ca4e5fc52ace33a87b72a7aeb3a3483e36bd5127603ada48",
     "8c8e3d8022e2b75bb314175b620271070039da47592aed64024311d6e7281523",
     "fd4a85bcee337c9c7728bdb88c7ae94d14a1a1f015eb9138629e0ced9d71207b");
    ("fe-2",
     "9a1de644815ef6d13b8faa1837f8a88b17fc695a07a0ca6e0822e8f36c03119a",
     "6b65a6a48b8148f6b38a088ca65ed389b74d0fb132e706298fadc1a606cb0fb4",
     "8bfafcd4d08b351a94f6bc75067d9aecc69ab6b1de1e840638ffcf8a8ebdd955",
     "05838ce90ce03fc7ef19b2a4de577c14cf49790b3a87d09797d0aa9a72ce251f",
     "2eb83f9ff5ddadda8805a18b9199d50160af59a8d4b9c4447875274d653801e6",
     "8935ce894d2ff61de1999c53c737bab93159b09e05f8f9756990addb088093b1");
    ("fe-3",
     "c241330b01a9e71fde8a774bcf36d58b4737819096da1dac72ff5d2a386ecbe1",
     "371ecd7b27cd813047229389571aa8766c307511b2b9437a28df6ec4ce4a2bbe",
     "6ede59ccacf45b88e3b5281c04e5083bcdde3754fb4cff0e71f40fbbaa5bb167",
     "f96000862977685025ad0ad526517e01b367f6a2499361269bdecbef06b8f79f",
     "8b22658fd9dc65ef9767e3c2781c2d14db070c7ee420da324a1fee656a24a023",
     "8a6e9fe622cf2af7f14294c1f34bcc180947bff2686b471779c84561912af86b");
    ("fe-4",
     "5be6128e18c267976142ea7d17be31111a2a73ed562b0f79c37459eef50bea64",
     "759cde66bacfb3d00b1f9163ce9ff57f43b7a3a69a8dca03580d7b71d8f56414",
     "e998a34d6b902f25167d27ffa77abc36e38577121fea39f8c570f68c65f3de6e",
     "d182f0f4d3921b676c627be0e65e26905de21793f0b8d97d1b81d560ce014e78",
     "e64934275df2b3c756235919491e3b91d672d046bb9d45766b66de7c1c16827f",
     "2b35391b8018d1c2e0b0accae7d456e9e374b5d4ef0a952ea1f5556ef82f4497");
  ]

let test_fe () =
  List.iter
    (fun (id, a, b, prod, sum, diff, inv) ->
      let a = Uint256.of_hex a and b = Uint256.of_hex b in
      let chk tag expect got =
        Alcotest.(check string) (id ^ tag) expect (Uint256.to_hex got)
      in
      chk "/mul" prod (Secp256k1.fe_mul a b);
      chk "/add" sum (Secp256k1.fe_add a b);
      chk "/sub" diff (Secp256k1.fe_sub a b);
      chk "/inv" inv (Secp256k1.fe_inv a);
      chk "/sqr-mulself" (Uint256.to_hex (Secp256k1.fe_mul a a)) (Secp256k1.fe_sqr a);
      chk "/ref-mul" prod (Secp256k1.Ref.fe_mul a b);
      chk "/ref-inv" inv (Secp256k1.Ref.fe_inv a))
    fe_vectors;
  (* boundary products around p *)
  let pm1 = "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2e" in
  let one = "0000000000000000000000000000000000000000000000000000000000000001" in
  List.iter
    (fun (id, a, b, expect) ->
      Alcotest.(check string) id expect
        (Uint256.to_hex (Secp256k1.fe_mul (Uint256.of_hex a) (Uint256.of_hex b))))
    [
      ("feb-(p-1)^2", pm1, pm1, one);
      ("feb-(p-1)*1", pm1, one, pm1);
    ]

let test_scalar () =
  let n1 = "fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364140" in
  let chk id a b expect =
    Alcotest.(check string) id expect
      (Uint256.to_hex (Secp256k1.Scalar.mul (Uint256.of_hex a) (Uint256.of_hex b)))
  in
  chk "sn-(n-1)^2" n1 n1
    "0000000000000000000000000000000000000000000000000000000000000001";
  chk "sn-tn" "000000000000000000000000000000014551231950b75fc4402da1732fc9bebf"
    "000000000000000000000000000000014551231950b75fc4402da1732fc9bebe"
    "9d671cd581c69bc5e697f5e45bcd07c52ec373a8bdc598b4493f50a1380e1281"

(* --- ECDSA edge cases (Wycheproof style) -------------------------------- *)

let u256 = Uint256.of_hex
let gx_hex = "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798"

(* d = 1, k = 1, message "vector": r = x(G) and s = z + r mod n, verified
   against an independent implementation *)
let k1_sig () =
  {
    Ecdsa.r = u256 gx_hex;
    s = u256 "2a9382d7c2967da0ae9b41ac965a806b56e23d995e0719f62dd07eddebaf621d";
  }

let pub_of_d1 () =
  match Ecdsa.public_key_of_bytes (bytes_of_hex (gx_hex ^ "483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8")) with
  | Some q -> q
  | None -> Alcotest.fail "generator must parse as a public key"

let both_reject id q digest signature =
  Alcotest.(check bool) (id ^ "/fast") false (Ecdsa.verify q digest signature);
  Alcotest.(check bool) (id ^ "/ref") false (Ecdsa.Ref.verify q digest signature)

let test_ecdsa_k1 () =
  let q = pub_of_d1 () in
  let digest = Hash.digest_string "vector" in
  let signature = k1_sig () in
  Alcotest.(check bool) "ecdsa-k1/fast" true (Ecdsa.verify q digest signature);
  Alcotest.(check bool) "ecdsa-k1/ref" true (Ecdsa.Ref.verify q digest signature)

let test_ecdsa_degenerate () =
  let q = pub_of_d1 () in
  let digest = Hash.digest_string "vector" in
  let { Ecdsa.r; s } = k1_sig () in
  let n = Secp256k1.n in
  both_reject "ecdsa-r0" q digest { Ecdsa.r = Uint256.zero; s };
  both_reject "ecdsa-s0" q digest { Ecdsa.r; s = Uint256.zero };
  both_reject "ecdsa-r=n" q digest { Ecdsa.r = n; s };
  both_reject "ecdsa-s=n" q digest { Ecdsa.r; s = n };
  both_reject "ecdsa-r0s0" q digest { Ecdsa.r = Uint256.zero; s = Uint256.zero };
  (* r > n aliasing: a value that reduces to a small r mod n must be
     rejected by the range check, not silently reduced and accepted *)
  let r_alias = fst (Uint256.add n Uint256.one) in
  both_reject "ecdsa-r-gt-n" q digest { Ecdsa.r = r_alias; s }

let test_ecdsa_malleability () =
  (* (r, n - s) verifies too: this implementation does not enforce
     low-s, and fast and reference must agree on accepting it *)
  let q = pub_of_d1 () in
  let digest = Hash.digest_string "vector" in
  let { Ecdsa.r; s } = k1_sig () in
  let s' = fst (Uint256.sub Secp256k1.n s) in
  Alcotest.(check bool) "ecdsa-highs/fast" true
    (Ecdsa.verify q digest { Ecdsa.r; s = s' });
  Alcotest.(check bool) "ecdsa-highs/ref" true
    (Ecdsa.Ref.verify q digest { Ecdsa.r; s = s' })

let test_ecdsa_infinity_pubkey () =
  (* n*G is the point at infinity; verification must fail closed *)
  let q_inf = Secp256k1.scalar_mul_base Secp256k1.n in
  Alcotest.(check bool) "infinity pubkey is infinity" true
    (Secp256k1.is_infinity q_inf);
  let digest = Hash.digest_string "vector" in
  both_reject "ecdsa-inf-pubkey" q_inf digest (k1_sig ())

let test_pubkey_encodings () =
  let zeros n = String.concat "" (List.init n (fun _ -> "00")) in
  let cases =
    [
      ("pubkey-off-curve", zeros 31 ^ "01" ^ zeros 31 ^ "02");
      (* x = p: non-canonical field encoding *)
      ("pubkey-x-eq-p",
       "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f"
       ^ "483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8");
      (* y = p: non-canonical field encoding of y *)
      ("pubkey-y-eq-p",
       gx_hex
       ^ "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f");
      ("pubkey-zero-point", zeros 64);
    ]
  in
  List.iter
    (fun (id, hex) ->
      match Ecdsa.public_key_of_bytes (bytes_of_hex hex) with
      | None -> ()
      | Some _ -> Alcotest.failf "%s: must be rejected" id)
    cases;
  (* truncated / oversized *)
  List.iter
    (fun len ->
      match Ecdsa.public_key_of_bytes (Bytes.make len '\x01') with
      | None -> ()
      | Some _ -> Alcotest.failf "pubkey-len-%d: must be rejected" len)
    [ 0; 32; 63; 65; 128 ]

let test_signature_encodings () =
  List.iter
    (fun len ->
      match Ecdsa.signature_of_bytes (Bytes.make len '\x01') with
      | None -> ()
      | Some _ -> Alcotest.failf "sig-len-%d: must be rejected" len)
    [ 0; 32; 63; 65; 128 ]

let test_hash_lengths () =
  (* truncated / oversized digests must be rejected at the Hash boundary *)
  List.iter
    (fun len ->
      Alcotest.check_raises
        (Printf.sprintf "hash-len-%d" len)
        (Invalid_argument "Hash.of_bytes: need 32 bytes")
        (fun () -> ignore (Hash.of_bytes (Bytes.make len '\xab'))))
    [ 0; 31; 33; 64 ]

let () =
  Alcotest.run "crypto-vectors"
    [
      ( "sha256",
        [
          Alcotest.test_case "known answers (fast + ref)" `Quick test_sha256;
          Alcotest.test_case "million 'a' streaming" `Quick test_sha256_million_a;
        ] );
      ("hmac", [ Alcotest.test_case "rfc4231 cases 1-7" `Quick test_hmac ]);
      ( "secp256k1",
        [
          Alcotest.test_case "scalar multiples of G" `Quick test_kg;
          Alcotest.test_case "field arithmetic vectors" `Quick test_fe;
          Alcotest.test_case "scalar arithmetic vectors" `Quick test_scalar;
        ] );
      ( "ecdsa-edge",
        [
          Alcotest.test_case "k=1 signature verifies" `Quick test_ecdsa_k1;
          Alcotest.test_case "degenerate r/s fail closed" `Quick test_ecdsa_degenerate;
          Alcotest.test_case "high-s malleability agreement" `Quick test_ecdsa_malleability;
          Alcotest.test_case "infinity public key fails closed" `Quick
            test_ecdsa_infinity_pubkey;
          Alcotest.test_case "public key encodings fail closed" `Quick
            test_pubkey_encodings;
          Alcotest.test_case "signature encodings fail closed" `Quick
            test_signature_encodings;
          Alcotest.test_case "hash length policing" `Quick test_hash_lengths;
        ] );
    ]
