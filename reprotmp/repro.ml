open Ledger_crypto
let () =
  (* any point kG *)
  let k = Uint256.of_int 12345 in
  let pt = Secp256k1.scalar_mul_base k in
  let x, _ =
    match Secp256k1.to_affine pt with Some a -> a | None -> assert false
  in
  let t_n = fst (Uint256.sub Uint256.zero Secp256k1.n) in (* 2^256 - n *)
  (* r = x + t_n as a 2^256-wrapped value; choose x small enough that r < n *)
  let r, carry = Uint256.add x t_n in
  Printf.printf "x+t_n carry: %b, r < n: %b\n" carry
    (Uint256.compare r Secp256k1.n < 0);
  (* correct answer: x mod n = r ?  i.e. is r ≡ x (mod n)?  t_n ≠ 0 mod n so NO *)
  Printf.printf "has_x_mod_n pt r = %b (should be false)\n"
    (Secp256k1.has_x_mod_n pt r)
