(* Serving-layer bench: a real multi-domain socket server driven by the
   verifying load harness over loopback.

   Unlike every other bench in this harness, nothing here runs on the
   simulated clock: frames cross real kernel sockets, latencies are
   wall-clock microseconds, and the percentiles are exact (sorted
   sample, not bucketed).  The run is still self-checking — every
   receipt signature, fam proof, whole-clue lineage proof and replica
   pull is verified by the clients, and the bench fails hard on any
   cryptographic mismatch, any abandoned op, or disordered
   percentiles — so the numbers it reports are for traffic that was
   actually proven correct.

   Smoke sizes (CI): 10⁴ logical clients over 8 connections, a few
   thousand mixed ops, one concurrent replica pull.  Full sizes push
   the logical-client population to 10⁵ and the op count to 2·10⁴. *)

open Ledger_storage
open Ledger_core
open Ledger_net
open Ledger_bench_util

let build_server ~members ~seed_entries ~workers =
  let clock = Clock.create () in
  let config =
    { Ledger.default_config with name = "bench-serve";
      crypto = Crypto_profile.default_simulated }
  in
  let ledger = Ledger.create ~config ~clock () in
  (* members c0..cN-1 have name-derived keys, so the load harness can
     reconstruct every credential from the membership list alone *)
  for i = 0 to members - 1 do
    ignore
      (Ledger.new_member ledger
         ~name:(Printf.sprintf "c%d" i)
         ~role:Roles.Regular_user)
  done;
  let m, k = Ledger.new_member ledger ~name:"seeder" ~role:Roles.Regular_user in
  for i = 0 to seed_entries - 1 do
    Clock.advance_ms clock 5.;
    ignore
      (Ledger.append ledger ~member:m ~priv:k
         ~clues:[ "seed-" ^ string_of_int (i mod 4) ]
         (Bytes.of_string (Printf.sprintf "seed %d" i)))
  done;
  ( Net_server.create
      ~config:{ Net_server.default_config with port = 0; workers }
      ~read:(Service.handle_read ledger)
      (Service.handle ledger),
    config )

let gate cond msg = if not cond then failwith ("bench_serve: " ^ msg)

let run_load ~server ~served_config ~clients ~connections ~ops ~pulls
    ?read_ratio () =
  Load_gen.run
    {
      Load_gen.default_config with
      port = Net_server.port server;
      logical_clients = clients;
      connections;
      total_ops = ops;
      pulls;
      read_ratio;
      crypto = served_config.Ledger.crypto;
      ledger_config = Some served_config;
    }

(* Read-heavy (95/5) column: the same verifying workload, read_ratio
   0.95, against a 1-worker and an n-worker server.  With lock-free
   read dispatch the n-worker server must not serve reads slower than
   the single worker (it used to: every read queued on the dispatch
   lock). *)
let run_read_heavy ~smoke ~clients ~connections ~workers =
  let ops = if smoke then 1_000 else 8_000 in
  let one (workers : int) =
    let server, served_config =
      build_server ~members:64 ~seed_entries:8 ~workers
    in
    let r =
      run_load ~server ~served_config ~clients ~connections ~ops ~pulls:0
        ~read_ratio:0.95 ()
    in
    Net_server.stop server;
    let s = Net_server.stats server in
    gate (r.Load_gen.verify_failures = 0)
      "read-heavy: cryptographic verification failed";
    gate (r.Load_gen.transport_failures = 0)
      "read-heavy: ops abandoned or refused";
    gate (r.Load_gen.ops = ops) "read-heavy: op budget not fully spent";
    (* every completed verify/lineage is exactly one read request; the
       server must have answered at least those without the lock
       (discovery and fallback appends make read_served a lower bound) *)
    gate
      (s.Net_server.read_served >= r.Load_gen.verifies + r.Load_gen.lineages)
      "read-heavy: reads were not served on the lock-free path";
    (r, s)
  in
  let single, _ = one 1 in
  let multi, multi_stats = one workers in
  (ops, single, multi, multi_stats)

let run ?(smoke = false) ?json () =
  let clients = if smoke then 10_000 else 100_000 in
  let ops = if smoke then 2_000 else 20_000 in
  let connections = 8 and workers = 4 in
  Table.print_title
    (Printf.sprintf
       "Serving layer: %d logical verifying clients over %d connections, %d \
        mixed ops (loopback TCP)"
       clients connections ops);
  let server, served_config = build_server ~members:64 ~seed_entries:8 ~workers in
  let r =
    run_load ~server ~served_config ~clients ~connections ~ops ~pulls:1 ()
  in
  Net_server.stop server;
  let s = Net_server.stats server in
  (* the bench is a checker first: any unverified or abandoned traffic
     voids the numbers *)
  gate (r.Load_gen.verify_failures = 0) "cryptographic verification failed";
  gate (r.Load_gen.transport_failures = 0) "ops abandoned or refused";
  gate (r.Load_gen.pulls_failed = 0) "replica pull failed";
  gate (r.Load_gen.ops = ops) "op budget not fully spent";
  gate (r.Load_gen.pulls_ok = 1) "replica pull did not complete";
  gate (r.Load_gen.tps > 0.) "non-positive throughput";
  gate
    (r.Load_gen.p50_us <= r.Load_gen.p95_us
    && r.Load_gen.p95_us <= r.Load_gen.p99_us
    && r.Load_gen.p99_us <= r.Load_gen.max_us)
    "percentiles out of order";
  gate
    (r.Load_gen.read_ops + r.Load_gen.write_ops = r.Load_gen.ops)
    "read/write split does not cover all ops";
  gate (s.Net_server.read_served > 0) "no request took the lock-free read path";
  gate (s.Net_server.framing_errors = 0) "server saw framing errors";
  let heavy_ops, hs, hm, hm_stats =
    run_read_heavy ~smoke ~clients:(min clients 10_000) ~connections ~workers
  in
  let cores = Domain.recommended_domain_count () in
  (* on a multi-core host, parallel read dispatch must at least hold the
     single-worker line (0.9 tolerance absorbs scheduler jitter); a
     1-core CI host cannot witness parallelism, so the gate is waived
     with an honest note *)
  if cores >= 2 then
    gate
      (hm.Load_gen.tps >= 0.9 *. hs.Load_gen.tps)
      (Printf.sprintf
         "read-heavy: %d-worker throughput (%.0f ops/s) fell below \
          single-worker (%.0f ops/s)"
         workers hm.Load_gen.tps hs.Load_gen.tps)
  else
    Printf.printf
      "note: host reports %d core(s); multi>=single read-throughput gate \
       waived (no parallelism to witness)\n"
      cores;
  Table.print_table
    ~header:[ "metric"; "value" ]
    [
      [ "ops (append/verify/lineage)";
        Printf.sprintf "%d (%d/%d/%d)" r.Load_gen.ops r.Load_gen.appends
          r.Load_gen.verifies r.Load_gen.lineages ];
      [ "replica pulls"; Printf.sprintf "%d ok" r.Load_gen.pulls_ok ];
      [ "sustained"; Printf.sprintf "%s ops/s" (Table.human_rate r.Load_gen.tps) ];
      [ "p50 / p95 / p99 (ms)";
        Printf.sprintf "%s / %s / %s"
          (Table.human_ms (r.Load_gen.p50_us /. 1000.))
          (Table.human_ms (r.Load_gen.p95_us /. 1000.))
          (Table.human_ms (r.Load_gen.p99_us /. 1000.)) ];
      [ "p99.9 / max (ms)";
        Printf.sprintf "%s / %s"
          (Table.human_ms (r.Load_gen.p999_us /. 1000.))
          (Table.human_ms (r.Load_gen.max_us /. 1000.)) ];
      [ "read p50 / p95 / p99 (ms)";
        Printf.sprintf "%s / %s / %s  (%d ops)"
          (Table.human_ms (r.Load_gen.read_p50_us /. 1000.))
          (Table.human_ms (r.Load_gen.read_p95_us /. 1000.))
          (Table.human_ms (r.Load_gen.read_p99_us /. 1000.))
          r.Load_gen.read_ops ];
      [ "write p50 / p95 / p99 (ms)";
        Printf.sprintf "%s / %s / %s  (%d ops)"
          (Table.human_ms (r.Load_gen.write_p50_us /. 1000.))
          (Table.human_ms (r.Load_gen.write_p95_us /. 1000.))
          (Table.human_ms (r.Load_gen.write_p99_us /. 1000.))
          r.Load_gen.write_ops ];
      [ "server"; Printf.sprintf "%d conns accepted, %d requests served"
          s.Net_server.accepted s.Net_server.served ];
      [ "lock-free reads"; Printf.sprintf "%d of %d requests"
          s.Net_server.read_served s.Net_server.served ];
      [ Printf.sprintf "read-heavy 95/5 (%d ops)" heavy_ops;
        Printf.sprintf "1 worker %s ops/s  /  %d workers %s ops/s"
          (Table.human_rate hs.Load_gen.tps) workers
          (Table.human_rate hm.Load_gen.tps) ];
    ];
  match json with
  | None -> ()
  | Some path ->
      let open Json_out in
      write_file path
        (Obj
           [
             ("figure", Str "serve");
             ("logical_clients", Int r.Load_gen.logical_clients);
             ("connections", Int r.Load_gen.connections);
             ("ops", Int r.Load_gen.ops);
             ("appends", Int r.Load_gen.appends);
             ("verifies", Int r.Load_gen.verifies);
             ("lineages", Int r.Load_gen.lineages);
             ("pulls_ok", Int r.Load_gen.pulls_ok);
             ("transport_failures", Int r.Load_gen.transport_failures);
             ("verify_failures", Int r.Load_gen.verify_failures);
             ("duration_s", Float r.Load_gen.duration_s);
             ("tps", Float r.Load_gen.tps);
             ("mean_us", Float r.Load_gen.mean_us);
             ("p50_us", Float r.Load_gen.p50_us);
             ("p95_us", Float r.Load_gen.p95_us);
             ("p99_us", Float r.Load_gen.p99_us);
             ("p999_us", Float r.Load_gen.p999_us);
             ("max_us", Float r.Load_gen.max_us);
             ("read_ops", Int r.Load_gen.read_ops);
             ("write_ops", Int r.Load_gen.write_ops);
             ("read_mean_us", Float r.Load_gen.read_mean_us);
             ("read_p50_us", Float r.Load_gen.read_p50_us);
             ("read_p95_us", Float r.Load_gen.read_p95_us);
             ("read_p99_us", Float r.Load_gen.read_p99_us);
             ("read_max_us", Float r.Load_gen.read_max_us);
             ("write_mean_us", Float r.Load_gen.write_mean_us);
             ("write_p50_us", Float r.Load_gen.write_p50_us);
             ("write_p95_us", Float r.Load_gen.write_p95_us);
             ("write_p99_us", Float r.Load_gen.write_p99_us);
             ("write_max_us", Float r.Load_gen.write_max_us);
             ( "read_heavy",
               Obj
                 [
                   ("read_ratio", Float 0.95);
                   ("heavy_ops", Int heavy_ops);
                   ("single_worker_tps", Float hs.Load_gen.tps);
                   ("multi_worker_tps", Float hm.Load_gen.tps);
                   ("multi_workers", Int workers);
                   ("multi_read_served", Int hm_stats.Net_server.read_served);
                   ("host_cores", Int cores);
                   ( "read_heavy_read_p99_us",
                     Float hm.Load_gen.read_p99_us );
                 ] );
             ( "server",
               Obj
                 [
                   ("accepted", Int s.Net_server.accepted);
                   ("refused", Int s.Net_server.refused);
                   ("served", Int s.Net_server.served);
                   ("read_served", Int s.Net_server.read_served);
                   ("framing_errors", Int s.Net_server.framing_errors);
                 ] );
           ]);
      Printf.printf "wrote %s\n" path
