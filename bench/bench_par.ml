(* Multicore execution layer: sequential vs pooled wall-clock cost.

   Unlike the simulated-clock benches, the domain pool's payoff is real
   CPU parallelism, so this target measures wall time (median of
   repeats) on two batch-shaped kernels threaded through
   {!Ledger_par.Domain_pool}:

     sig_verify — batch ECDSA verification, the π_c pre-pass behind
                  [Ledger.append_signed_batch];
     leaf_hash  — batch payload digesting, the leaf pass behind
                  [Fam.append_many].

   Acceptance gates (the machine-readable shape):
     - a pooled run is never more than 1.25× the sequential cost plus a
       fixed per-batch dispatch allowance, at any pool size the host can
       actually back (domains <= the recommended count).  The allowance
       exists because waking a pool is a constant cost per batch: the
       fast ECDSA kernel cut per-entry work ~13×, so on tiny smoke
       batches dispatch is no longer hidden inside the 25% relative
       margin.  Oversubscribed sizes are reported but not gated: extra
       domains on a saturated host only add minor-GC ping-pong, which is
       a configuration the [LEDGERDB_DOMAINS] fallback exists to avoid;
     - with >= 4 recommended domains, the 4-domain pool must reach a
       1.5× speedup on batch signature verification. *)

open Ledger_crypto
open Ledger_bench_util
module Domain_pool = Ledger_par.Domain_pool

let pool_sizes = [ 1; 2; 4 ]
let max_slowdown = 1.25

(* Per-batch grace for the fixed cost of waking pool domains (wall
   milliseconds, spread over the batch when gating).  Sized for a loaded
   single-core CI host where a domain wakeup can take a scheduler
   quantum. *)
let dispatch_grace_ms = 8.0
let required_speedup_at_4 = 1.5

let rounds = 5

(* Per-entry ms for [kernel] at each pool size plus the sequential
   baseline.  Configurations are timed in interleaved rounds and the
   per-config minimum is kept: external load on a shared host hits every
   config alike, and the minimum is the standard robust estimator when
   the noise is purely additive. *)
let sweep ~entries kernel =
  let pools =
    List.map (fun d -> (d, Domain_pool.create ~domains:d ())) pool_sizes
  in
  let runs = (0, Domain_pool.sequential) :: pools in
  (* one untimed warmup pass per config: code paths and GC settle *)
  List.iter (fun (_, p) -> kernel p) runs;
  let best = Array.make (List.length runs) infinity in
  for _ = 1 to rounds do
    List.iteri
      (fun i (_, p) ->
        let _, dt = Timing.wall (fun () -> kernel p) in
        best.(i) <- Float.min best.(i) (dt *. 1000.))
      runs
  done;
  List.iter (fun (_, p) -> Domain_pool.shutdown p) pools;
  let per_entry ms = ms /. float_of_int entries in
  ( per_entry best.(0),
    List.mapi (fun i (d, _) -> (d, per_entry best.(i + 1))) pools )

let print_sweep title ~entries (seq_ms, pools) =
  Table.print_title (Printf.sprintf "%s (%d entries, wall clock)" title entries);
  Table.print_table
    ~header:[ "pool"; "ms / entry"; "speedup" ]
    (( [ "seq"; Printf.sprintf "%.4f" seq_ms; "1.00" ] )
    :: List.map
         (fun (d, ms) ->
           [
             Printf.sprintf "%d domains" d;
             Printf.sprintf "%.4f" ms;
             Printf.sprintf "%.2f" (seq_ms /. ms);
           ])
         pools)

let run ?(smoke = false) ?json () =
  let entries = if smoke then 16 else 96 in
  let hash_items = if smoke then 8192 else 65536 in
  (* real ECDSA: the signatures are minted once, outside the timed
     region; only the verification pass is swept *)
  let priv, pub = Ecdsa.generate ~seed:"bench-par" in
  let signed =
    Array.init entries (fun i ->
        let digest = Hash.digest_string (Printf.sprintf "par-entry-%d" i) in
        (digest, Ecdsa.sign priv digest))
  in
  let ok = Atomic.make true in
  let verify_kernel pool =
    Domain_pool.parallel_for pool ~label:"bench_sig" ~n:entries (fun i ->
        let digest, signature = signed.(i) in
        if not (Ecdsa.verify pub digest signature) then Atomic.set ok false)
  in
  let payloads =
    Array.init hash_items (fun i ->
        Bytes.of_string (Printf.sprintf "par-leaf-%08d-%s" i (String.make 40 'x')))
  in
  let digests = Array.make hash_items Hash.zero in
  let hash_kernel pool =
    Domain_pool.parallel_for pool ~label:"bench_hash" ~min_chunk:64
      ~n:hash_items (fun i -> digests.(i) <- Hash.digest_bytes payloads.(i))
  in
  let sig_sweep = sweep ~entries verify_kernel in
  if not (Atomic.get ok) then failwith "bench_par: a signature failed to verify";
  let hash_sweep = sweep ~entries:hash_items hash_kernel in
  print_sweep "Batch signature verification" ~entries sig_sweep;
  print_sweep "Batch leaf hashing" ~entries:hash_items hash_sweep;
  let recommended = Domain.recommended_domain_count () in
  Printf.printf "recommended domains on this host: %d\n" recommended;
  (* gate 1: at pool sizes the host can back, fan-out overhead must
     never cost more than 25% over the sequential pass, beyond the fixed
     per-batch dispatch allowance *)
  let seq_ms, pools = sig_sweep in
  let grace = dispatch_grace_ms /. float_of_int entries in
  List.iter
    (fun (d, ms) ->
      if d <= recommended && ms > (seq_ms *. max_slowdown) +. grace then
        failwith
          (Printf.sprintf
             "bench_par: %d-domain verification %.4fms/entry exceeds %.2fx \
              the sequential %.4fms/entry (+%.4fms/entry dispatch grace)"
             d ms max_slowdown seq_ms grace))
    pools;
  (* gate 2: on a genuinely multicore host, 4 domains must pay off *)
  (if recommended >= 4 then
     match List.assoc_opt 4 pools with
     | Some ms when seq_ms /. ms < required_speedup_at_4 ->
         failwith
           (Printf.sprintf
              "bench_par: 4-domain speedup %.2fx below required %.2fx"
              (seq_ms /. ms) required_speedup_at_4)
     | _ -> ());
  match json with
  | None -> ()
  | Some path ->
      let open Json_out in
      let sweep_obj (seq_ms, pools) =
        Obj
          [
            ("seq_ms_per_entry", Float seq_ms);
            ( "pools",
              Obj
                (List.map
                   (fun (d, ms) ->
                     ( "d" ^ string_of_int d,
                       Obj
                         [
                           ("domains", Int d);
                           ("ms_per_entry", Float ms);
                           ("speedup", Float (seq_ms /. ms));
                         ] ))
                   pools) );
          ]
      in
      write_file path
        (Obj
           [
             ("figure", Str "par");
             ("entries", Int entries);
             ("hash_items", Int hash_items);
             ("recommended_domains", Int recommended);
             ("sig_verify", sweep_obj sig_sweep);
             ("leaf_hash", sweep_obj hash_sweep);
           ]);
      Printf.printf "wrote %s\n" path
