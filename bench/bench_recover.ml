(* Supervisor repair economics: mean-time-to-repair and the price of
   degraded mode.

   Two fleets share the base name (so every name-derived key matches),
   exactly as in the chaos orchestrator: the reference never faults and
   doubles as the resync source.  The bench kills one shard's store and
   reads MTTR off the simulated clock for both repair paths:

     salvage — the last seal checkpointed the shard and nothing was
               appended since, so Stream_store.recover + replay
               reproduces the committed state locally;
     resync  — appends landed after the checkpoint, so salvage refuses
               (it would silently lose them) and the supervisor falls
               back to a verified replica pull from the reference.

   The throughput half runs the same workload twice — fleet healthy,
   then with the victim quarantined (repair backoff pushed out of
   range) — and reports per-accepted-entry cost plus the typed-rejection
   count: degraded mode must shed exactly the victim's share of the
   workload, never hang, and never slow the surviving shards down.  Both
   repaired shards are checked byte-identical (size and commitment)
   against the reference before any number is reported. *)

open Ledger_crypto
open Ledger_storage
open Ledger_core
open Ledger_bench_util
module SL = Ledger_shard.Sharded_ledger
module Sup = Ledger_shard.Shard_supervisor

let shards = 4
let victim = 1

let fleet_config =
  {
    SL.base =
      { Ledger.default_config with Ledger.name = "bench-recover";
        block_size = 8; fam_delta = 5;
        crypto = Crypto_profile.default_simulated };
    shards;
  }

let make_fleet () =
  let clock = Clock.create () in
  let fleet = SL.create ~config:fleet_config ~clock () in
  let member, priv =
    SL.new_member fleet ~name:"bruser" ~role:Roles.Regular_user
  in
  (fleet, member, priv)

let fresh_dir tag =
  let d = Filename.temp_file "bench_recover" tag in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

let clocks_of fleet =
  SL.fleet_clock fleet
  :: List.init (SL.shard_count fleet) (fun i -> SL.shard_clock fleet i)

(* cross-fleet barrier: identical clocks before each phase keep the
   subject's committed journals byte-identical to the reference's *)
let barrier fleets =
  let all = List.concat_map clocks_of fleets in
  let horizon = List.fold_left (fun acc c -> max acc (Clock.now c)) 0L all in
  List.iter
    (fun c ->
      let d = Int64.sub horizon (Clock.now c) in
      if d > 0L then Clock.advance c d)
    all

let payload_clues rng =
  (Det_rng.bytes rng 24, [ Printf.sprintf "k%d" (Det_rng.int rng 64) ])

let kill_shard fleet i =
  Stream_store.Unsafe.kill (Ledger.backing_store (SL.shard fleet i))

(* --- mean time to repair ----------------------------------------------------- *)

type mode = Salvage | Resync

let mode_to_string = function Salvage -> "salvage" | Resync -> "resync"

let measure_mttr ~entries mode =
  let subject, member, priv = make_fleet () in
  let reference, ref_member, ref_priv = make_fleet () in
  let supervisor =
    Sup.create
      ?source:
        (match mode with
        | Salvage -> None (* no source: success proves the local path *)
        | Resync -> Some (Ledger_shard.Sharded_service.handle reference))
      ~fleet:subject
      ~scratch_dir:(fresh_dir (mode_to_string mode))
      ()
  in
  let rng = Det_rng.create ~seed:7 in
  let append_both n =
    barrier [ subject; reference ];
    for _ = 1 to n do
      let payload, clues = payload_clues rng in
      ignore (SL.append reference ~member:ref_member ~priv:ref_priv ~clues payload);
      match Sup.append supervisor ~member ~priv ~clues payload with
      | Ok _ -> ()
      | Error u ->
          failwith
            ("bench_recover: append rejected on a healthy fleet: "
            ^ Sup.unavailable_to_string u)
    done
  in
  append_both entries;
  barrier [ subject; reference ];
  (match (Sup.seal_epoch supervisor, SL.seal_epoch reference) with
  | Ok _, Ok _ -> ()
  | Error msg, _ | _, Error msg ->
      failwith ("bench_recover: seal refused: " ^ msg));
  (* resync path: land appends after the checkpoint, so salvage would
     stop short of the committed state and must hand over to the pull *)
  (match mode with Salvage -> () | Resync -> append_both (entries / 2));
  if Ledger.size (SL.shard subject victim) = 0 then
    failwith "bench_recover: victim shard is empty; widen the workload";
  barrier [ subject; reference ];
  kill_shard subject victim;
  Sup.quarantine supervisor victim;
  let t0 = Clock.now (SL.fleet_clock subject) in
  let ticks = ref 0 in
  while Sup.status supervisor victim <> Sup.Healthy do
    incr ticks;
    if !ticks > 10_000 then
      failwith
        (Printf.sprintf "bench_recover: %s repair did not land"
           (mode_to_string mode));
    Clock.advance (SL.fleet_clock subject) 10_000L;
    barrier [ subject; reference ];
    Sup.tick supervisor
  done;
  let mttr_us =
    Int64.to_float (Int64.sub (Clock.now (SL.fleet_clock subject)) t0)
  in
  let s = SL.shard subject victim and r = SL.shard reference victim in
  if
    Ledger.size s <> Ledger.size r
    || not (Hash.equal (Ledger.commitment s) (Ledger.commitment r))
  then failwith "bench_recover: repaired shard diverges from the reference";
  (mttr_us, !ticks, Ledger.size s)

(* --- degraded-mode throughput ------------------------------------------------ *)

let measure_throughput ~entries =
  let subject, member, priv = make_fleet () in
  let supervisor =
    Sup.create
      ~policy:
        { Sup.default_policy with
          (* push every repair out of the measurement window *)
          Sup.base_backoff_us = 3_600_000_000L;
          max_backoff_us = 3_600_000_000L }
      ~fleet:subject
      ~scratch_dir:(fresh_dir "tput")
      ()
  in
  let rng = Det_rng.create ~seed:11 in
  let run_phase n =
    barrier [ subject ];
    let t0 = Clock.now (SL.fleet_clock subject) in
    let accepted = ref 0 and rejected = ref 0 in
    for _ = 1 to n do
      let payload, clues = payload_clues rng in
      match Sup.append supervisor ~member ~priv ~clues payload with
      | Ok _ -> incr accepted
      | Error _ -> incr rejected
    done;
    barrier [ subject ];
    let us = Int64.to_float (Int64.sub (Clock.now (SL.fleet_clock subject)) t0) in
    (us /. float_of_int (max 1 !accepted), !accepted, !rejected)
  in
  let healthy = run_phase entries in
  (match Sup.seal_epoch supervisor with
  | Ok _ -> ()
  | Error msg -> failwith ("bench_recover: seal refused: " ^ msg));
  kill_shard subject victim;
  Sup.quarantine supervisor victim;
  let degraded = run_phase entries in
  let _, h_acc, h_rej = healthy and _, d_acc, d_rej = degraded in
  if h_rej <> 0 then failwith "bench_recover: healthy phase shed appends";
  if d_rej = 0 then
    failwith "bench_recover: degraded phase never hit the quarantined shard";
  if d_acc + d_rej <> entries then
    failwith "bench_recover: degraded phase lost appends (liveness)";
  ignore h_acc;
  (healthy, degraded)

(* --- entry point ------------------------------------------------------------- *)

let run ?(smoke = false) ?json () =
  let entries = if smoke then 48 else 256 in
  Table.print_title
    (Printf.sprintf
       "Shard repair: MTTR by path and degraded-mode throughput (%d journals)"
       entries);
  let salvage_us, salvage_ticks, salvage_journals =
    measure_mttr ~entries Salvage
  in
  let resync_us, resync_ticks, resync_journals = measure_mttr ~entries Resync in
  let (healthy_us, healthy_acc, _), (degraded_us, degraded_acc, degraded_rej) =
    measure_throughput ~entries
  in
  Table.print_table
    ~header:[ "repair path"; "MTTR (ms)"; "ticks"; "journals restored" ]
    [
      [ "salvage"; Table.human_ms (salvage_us /. 1000.);
        string_of_int salvage_ticks; string_of_int salvage_journals ];
      [ "resync"; Table.human_ms (resync_us /. 1000.);
        string_of_int resync_ticks; string_of_int resync_journals ];
    ];
  Table.print_table
    ~header:[ "mode"; "per entry (us)"; "accepted"; "rejected" ]
    [
      [ "healthy"; Printf.sprintf "%.1f" healthy_us;
        string_of_int healthy_acc; "0" ];
      [ "degraded"; Printf.sprintf "%.1f" degraded_us;
        string_of_int degraded_acc; string_of_int degraded_rej ];
    ];
  (match json with
  | None -> ()
  | Some path ->
      let open Json_out in
      write_file path
        (Obj
           [
             ("figure", Str "recover");
             ("entries", Int entries);
             ( "salvage",
               Obj
                 [
                   ("mttr_us", Float salvage_us);
                   ("ticks", Int salvage_ticks);
                   ("journals", Int salvage_journals);
                 ] );
             ( "resync",
               Obj
                 [
                   ("mttr_us", Float resync_us);
                   ("ticks", Int resync_ticks);
                   ("journals", Int resync_journals);
                 ] );
             ( "healthy",
               Obj
                 [
                   ("per_entry_us", Float healthy_us);
                   ("accepted", Int healthy_acc);
                   ("rejected", Int 0);
                 ] );
             ( "degraded",
               Obj
                 [
                   ("per_entry_us", Float degraded_us);
                   ("accepted", Int degraded_acc);
                   ("rejected", Int degraded_rej);
                 ] );
           ]);
      Printf.printf "wrote %s\n" path)
