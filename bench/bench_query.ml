(* Verifiable query economics: proof size and verify cost (DESIGN.md §16).

   Two sweeps over a synthetic clue index whose matching set is held
   constant while the surrounding ledger grows:

     scaling — the same 32-clue prefix scan against ever-larger indexes;
               a complete scan of a fixed result set must cost O(k log N)
               proof bytes, so the growth ratio between the smallest and
               largest index is gated at half the index growth ratio
               (linear leakage of non-matching keys would fail it);
     page sweep — one index, one query, page sizes 1..32: smaller pages
               buy streaming verification with more boundary proofs, and
               the sweep prices that trade.

   Every measured scan is verified against the index root before its
   numbers are reported — timing an unverified proof would be timing
   garbage. *)

open Ledger_crypto
open Ledger_query
open Ledger_bench_util

let matching = 32

(* fixed-width keys so byte order is also numeric order *)
let match_clue i = Printf.sprintf "q:%04d" i
let filler_clue i = Printf.sprintf "f:%06d" i

let build_index ~n =
  let idx = Query_index.create () in
  let jsn = ref 0 in
  let add clue =
    incr jsn;
    Query_index.add idx ~clue ~jsn:!jsn
      ~tx:(Hash.digest_string (Printf.sprintf "%s#%d" clue !jsn))
  in
  for i = 0 to matching - 1 do
    add (match_clue i)
  done;
  for i = 0 to n - matching - 1 do
    add (filler_clue i)
  done;
  (* a second epoch per matching clue, so result chains are non-trivial *)
  for i = 0 to matching - 1 do
    add (match_clue i)
  done;
  idx

let spec = Range_query.Prefix "q:"

let paginate idx ~page_size =
  let rec go after acc =
    let p = Range_query.page idx ~spec ?after ~page_size () in
    match p.Range_query.cursor with
    | Some c -> go (Some c) (p :: acc)
    | None -> List.rev (p :: acc)
  in
  go None []

let proof_bytes pages =
  List.fold_left (fun acc p -> acc + Range_query.page_bytes p) 0 pages

(* verified wall-clock cost of the client-side replay, averaged *)
let verify_us ~reps ~root ~page_size pages =
  let rows =
    match Range_query.verify_pages ~root ~spec ~page_size pages with
    | Ok rows -> List.length rows
    | Error msg -> failwith ("bench_query: honest scan rejected: " ^ msg)
  in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    match Range_query.verify_pages ~root ~spec ~page_size pages with
    | Ok _ -> ()
    | Error msg -> failwith ("bench_query: honest scan rejected: " ^ msg)
  done;
  let us = (Unix.gettimeofday () -. t0) *. 1e6 /. float_of_int reps in
  (us, rows)

let run ?(smoke = false) ?json () =
  let sizes = if smoke then [ 64; 256; 1024 ] else [ 1024; 4096; 16384; 65536 ] in
  let reps = if smoke then 3 else 20 in
  Table.print_title
    (Printf.sprintf
       "Verifiable queries: %d-clue prefix scan vs index size (pages of 8)"
       matching);
  let scaling =
    List.map
      (fun n ->
        let idx = build_index ~n in
        let root = Query_index.root idx in
        let pages = paginate idx ~page_size:8 in
        let bytes = proof_bytes pages in
        let us, rows = verify_us ~reps ~root ~page_size:8 pages in
        (n, bytes, us, rows))
      sizes
  in
  Table.print_table
    ~header:[ "index clues"; "proof+result bytes"; "verify"; "rows" ]
    (List.map
       (fun (n, bytes, us, rows) ->
         [ string_of_int n; string_of_int bytes; Table.human_ms (us /. 1000.);
           string_of_int rows ])
       scaling);
  (* sublinearity gate: fixed result set, growing index — proof bytes
     must grow far slower than the index does *)
  let (n0, b0, _, _) = List.hd scaling
  and (n1, b1, _, _) = List.nth scaling (List.length scaling - 1) in
  let size_ratio = float_of_int n1 /. float_of_int n0
  and bytes_ratio = float_of_int b1 /. float_of_int b0 in
  let sublinear = bytes_ratio < size_ratio /. 2. in
  if not sublinear then
    failwith
      (Printf.sprintf
         "bench_query: proof size is not sublinear in ledger size \
          (%d clues: %dB, %d clues: %dB)"
         n0 b0 n1 b1);
  let sweep_n = List.nth sizes (List.length sizes - 1) in
  let idx = build_index ~n:sweep_n in
  let root = Query_index.root idx in
  Table.print_title
    (Printf.sprintf "Page-size sweep (%d-clue index)" sweep_n);
  let page_sweep =
    List.map
      (fun page_size ->
        let pages = paginate idx ~page_size in
        let bytes = proof_bytes pages in
        let us, rows = verify_us ~reps ~root ~page_size pages in
        ignore rows;
        (page_size, List.length pages, bytes, us))
      [ 1; 4; 16; 32 ]
  in
  Table.print_table
    ~header:[ "page size"; "pages"; "proof+result bytes"; "verify" ]
    (List.map
       (fun (page_size, pages, bytes, us) ->
         [ string_of_int page_size; string_of_int pages; string_of_int bytes;
           Table.human_ms (us /. 1000.) ])
       page_sweep);
  match json with
  | None -> ()
  | Some path ->
      let open Json_out in
      write_file path
        (Obj
           [
             ("figure", Str "query");
             ("matching", Int matching);
             ("sublinear", Bool sublinear);
             ( "scaling",
               List
                 (List.map
                    (fun (n, bytes, us, rows) ->
                      Obj
                        [
                          ("n", Int n);
                          ("proof_bytes", Int bytes);
                          ("verify_us", Float us);
                          ("rows", Int rows);
                        ])
                    scaling) );
             ( "page_sweep",
               List
                 (List.map
                    (fun (page_size, pages, bytes, us) ->
                      Obj
                        [
                          ("page_size", Int page_size);
                          ("pages", Int pages);
                          ("proof_bytes", Int bytes);
                          ("verify_us", Float us);
                        ])
                    page_sweep) );
           ]);
      Printf.printf "wrote %s\n" path
