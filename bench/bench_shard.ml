(* Sharded fleet scaling: throughput and proof size, 1 -> 16 shards.

   The fleet runs on forked simulated clocks — appends charge only the
   owning shard, and the epoch seal is the barrier that advances every
   clock to the fleet maximum — so fleet makespan is the slowest shard's
   time.  With a clue-per-entry workload the router spreads entries
   near-uniformly and per-entry commit cost must be non-increasing as
   the fleet widens; the bench fails loudly if it is not (that is the
   acceptance shape for the machine-readable output).  The proof-size
   column shows the price of the second hop: a cross-shard proof is the
   shard-local fam proof plus a log2(N) shard-inclusion path to the
   epoch super-root. *)

open Ledger_storage
open Ledger_core
open Ledger_bench_util
module SL = Ledger_shard.Sharded_ledger

let shard_counts = [ 1; 2; 4; 8; 16 ]

let payload_of i = Bytes.of_string (Printf.sprintf "shard-bench-payload-%06d" i)

(* Commit [entries] journals routed across [shards] shards (one clue per
   entry so the router has something to spread), seal the epoch, and
   read the fleet makespan off the synchronized clock. *)
let measure_fleet ~entries shards =
  let clock = Clock.create () in
  let config =
    {
      SL.base =
        { Ledger.default_config with name = Printf.sprintf "bs-%d" shards;
          block_size = 16; fam_delta = 10;
          crypto = Crypto_profile.default_simulated };
      shards;
    }
  in
  let fleet = SL.create ~config ~clock () in
  let member, priv =
    SL.new_member fleet ~name:"bclient" ~role:Roles.Regular_user
  in
  let t0 = Clock.now clock in
  let i = ref 0 in
  while !i < entries do
    let n = min 16 (entries - !i) in
    let batch =
      List.init n (fun j ->
          (payload_of (!i + j), [ "ck" ^ string_of_int (!i + j) ]))
    in
    ignore (SL.append_batch fleet ~member ~priv ~seal:false batch);
    i := !i + n
  done;
  let sealed =
    match SL.seal_epoch fleet with
    | Ok s -> s
    | Error msg -> failwith ("bench_shard: epoch seal refused: " ^ msg)
  in
  let total_us = Int64.to_float (Int64.sub (Clock.now clock) t0) in
  (* cross-shard proof size, measured on the wire encoding; sanity-check
     that it actually verifies against the sealed super-root *)
  let proof_shard =
    let rec first s =
      if s >= shards then failwith "bench_shard: empty fleet"
      else if Ledger.size (SL.shard fleet s) > 0 then s
      else first (s + 1)
    in
    first 0
  in
  let proof =
    match SL.prove fleet ~shard:proof_shard ~jsn:0 with
    | Ok p -> p
    | Error msg -> failwith ("bench_shard: prove refused: " ^ msg)
  in
  let super = Ledger_shard.Super_root.commitment sealed in
  if not (SL.verify_proof fleet ~super proof) then
    failwith "bench_shard: cross-shard proof does not verify";
  let proof_bytes = Bytes.length (SL.encode_sharded_proof proof) in
  let max_shard =
    List.fold_left
      (fun acc s -> max acc (Ledger.size (SL.shard fleet s)))
      0
      (List.init shards Fun.id)
  in
  (total_us, total_us /. float_of_int entries, proof_bytes, max_shard)

let run ?(smoke = false) ?json () =
  let entries = if smoke then 128 else 512 in
  Table.print_title
    (Printf.sprintf
       "Sharded fleet scaling (%d journals, epoch super-root, simulated clock)"
       entries);
  let results =
    List.map (fun n -> (n, measure_fleet ~entries n)) shard_counts
  in
  Table.print_table
    ~header:
      [ "shards"; "makespan (ms)"; "per entry (us)"; "proof (B)"; "max shard" ]
    (List.map
       (fun (n, (total_us, per_entry_us, proof_bytes, max_shard)) ->
         [
           string_of_int n;
           Table.human_ms (total_us /. 1000.);
           Printf.sprintf "%.1f" per_entry_us;
           string_of_int proof_bytes;
           string_of_int max_shard;
         ])
       results);
  (* the acceptance shape: widening the fleet must not cost more per entry *)
  ignore
    (List.fold_left
       (fun prev (n, (_, per_entry_us, _, _)) ->
         (match prev with
         | Some (pn, prev_us) when per_entry_us > prev_us ->
             failwith
               (Printf.sprintf
                  "bench_shard: per-entry cost increasing (s%d %.1fus > s%d \
                   %.1fus)"
                  n per_entry_us pn prev_us)
         | _ -> ());
         Some (n, per_entry_us))
       None results);
  (match json with
  | None -> ()
  | Some path ->
      let open Json_out in
      let fleet_obj (n, (total_us, per_entry_us, proof_bytes, max_shard)) =
        ( "s" ^ string_of_int n,
          Obj
            [
              ("shards", Int n);
              ("total_us", Float total_us);
              ("per_entry_us", Float per_entry_us);
              ("proof_bytes", Int proof_bytes);
              ("max_shard_journals", Int max_shard);
            ] )
      in
      write_file path
        (Obj
           [
             ("figure", Str "shard");
             ("entries", Int entries);
             ("fleets", Obj (List.map fleet_obj results));
           ]);
      Printf.printf "wrote %s\n" path)
