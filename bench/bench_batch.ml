(* Batched commit amortization + verification cache payoff.

   Everything here is measured on the simulated clock, so the numbers
   are deterministic: a batch of k entries pays one network charge and
   one storage round instead of k, so the per-entry commit cost must be
   strictly decreasing in k — the bench fails loudly if it is not (that
   is the acceptance shape for the machine-readable output).  The cache
   section replays one verification workload twice against an attached
   {!Verify_cache}: the cold pass pays proof replays and latency-charged
   payload reads, the warm pass answers from cached verdicts. *)

open Ledger_crypto
open Ledger_storage
open Ledger_core
open Ledger_bench_util

let batch_sizes = [ 1; 4; 16; 64 ]

let build_ledger name =
  let clock = Clock.create () in
  let config =
    { Ledger.default_config with name; block_size = 16; fam_delta = 10;
      crypto = Crypto_profile.default_simulated }
  in
  let ledger = Ledger.create ~config ~clock () in
  let member, priv =
    Ledger.new_member ledger ~name:"bclient" ~role:Roles.Regular_user
  in
  (clock, ledger, member, priv)

let payload_of i = Bytes.of_string (Printf.sprintf "batch-bench-payload-%06d" i)

(* Commit [entries] journals in batches of [k]; simulated µs per entry. *)
let measure_batch ~entries k =
  let clock, ledger, member, priv = build_ledger (Printf.sprintf "bb-%d" k) in
  let t0 = Clock.now clock in
  let i = ref 0 in
  while !i < entries do
    let n = min k (entries - !i) in
    let batch =
      List.init n (fun j ->
          (payload_of (!i + j), [ "bk" ^ string_of_int ((!i + j) mod 4) ]))
    in
    ignore (Ledger.append_batch ledger ~member ~priv ~seal:false batch);
    i := !i + n
  done;
  Ledger.seal_block ledger;
  let total_us = Int64.to_float (Int64.sub (Clock.now clock) t0) in
  (total_us, total_us /. float_of_int entries)

(* One verification workload (existence with payload digest + receipt
   check per jsn), replayed cold then warm against one attached cache. *)
let measure_cache ~entries =
  let clock, ledger, member, priv = build_ledger "bb-cache" in
  let receipts =
    List.init entries (fun i ->
        List.hd
          (Ledger.append_batch ledger ~member ~priv ~seal:false
             [ (payload_of i, [ "bk" ^ string_of_int (i mod 4) ]) ]))
  in
  Ledger.seal_block ledger;
  let cache = Verify_cache.create ~capacity:(4 * entries) () in
  Verify_cache.attach cache ledger;
  let pass () =
    let t0 = Clock.now clock in
    List.iteri
      (fun i (r : Receipt.t) ->
        let existence =
          Verify_api.Existence
            { jsn = r.Receipt.jsn;
              payload_digest = Some (Hash.digest_bytes (payload_of i)) }
        in
        ignore (Verify_api.verify ~cache ledger ~level:Verify_api.Server existence);
        ignore
          (Verify_api.verify ~cache ledger ~level:Verify_api.Server
             (Verify_api.Receipt_check r)))
      receipts;
    Int64.to_float (Int64.sub (Clock.now clock) t0) /. float_of_int (2 * entries)
  in
  let cold_us = pass () in
  let warm_us = pass () in
  (cold_us, warm_us, Verify_cache.hits cache, Verify_cache.misses cache)

let run ?(smoke = false) ?json () =
  let entries = if smoke then 128 else 512 in
  Table.print_title
    (Printf.sprintf
       "Batched commit amortization (%d journals, simulated clock)" entries)
  ;
  let results = List.map (fun k -> (k, measure_batch ~entries k)) batch_sizes in
  Table.print_table
    ~header:[ "batch"; "total (ms)"; "per entry (us)" ]
    (List.map
       (fun (k, (total_us, per_entry_us)) ->
         [
           string_of_int k;
           Table.human_ms (total_us /. 1000.);
           Printf.sprintf "%.1f" per_entry_us;
         ])
       results);
  (* the acceptance shape: amortization must actually amortize *)
  ignore
    (List.fold_left
       (fun prev (k, (_, per_entry_us)) ->
         (match prev with
         | Some (pk, prev_us) when per_entry_us >= prev_us ->
             failwith
               (Printf.sprintf
                  "bench_batch: per-entry cost not decreasing (b%d %.1fus >= b%d %.1fus)"
                  k per_entry_us pk prev_us)
         | _ -> ());
         Some (k, per_entry_us))
       None results);
  let cold_us, warm_us, hits, misses = measure_cache ~entries in
  Table.print_title "Verification cache (cold replay vs warm verdicts)";
  Table.print_table
    ~header:[ "pass"; "per op (us)" ]
    [
      [ "cold"; Printf.sprintf "%.1f" cold_us ];
      [ "warm"; Printf.sprintf "%.1f" warm_us ];
    ];
  Printf.printf "cache: %d hits / %d misses\n" hits misses;
  (match json with
  | None -> ()
  | Some path ->
      let open Json_out in
      let size_obj (k, (total_us, per_entry_us)) =
        ( "b" ^ string_of_int k,
          Obj
            [
              ("batch", Int k);
              ("total_us", Float total_us);
              ("per_entry_us", Float per_entry_us);
            ] )
      in
      write_file path
        (Obj
           [
             ("figure", Str "batch");
             ("entries", Int entries);
             ("sizes", Obj (List.map size_obj results));
             ( "cache",
               Obj
                 [
                   ("cold_us_per_op", Float cold_us);
                   ("warm_us_per_op", Float warm_us);
                   ("hits", Int hits);
                   ("misses", Int misses);
                 ] );
           ]);
      Printf.printf "wrote %s\n" path)
