(* Bechamel microbenchmarks: one Test.make per table/figure family,
   measuring the hot primitive under each experiment. *)

open Bechamel
open Toolkit
open Ledger_crypto
open Ledger_merkle
open Ledger_cmtree
open Ledger_baselines
open Ledger_storage

let leaf i = Hash.digest_string ("leaf" ^ string_of_int i)

let test_fig7_ecdsa_verify =
  (* Fig. 7 who factor: one real signature verification *)
  let priv, pub = Ecdsa.generate ~seed:"bench" in
  let digest = Hash.digest_string "bench message" in
  let signature = Ecdsa.sign priv digest in
  Test.make ~name:"fig7/ecdsa-verify"
    (Staged.stage (fun () -> assert (Ecdsa.verify pub digest signature)))

let test_fig7_ecdsa_verify_ref =
  (* same verification through the retained pre-kernel pipeline; the
     fast/ref ratio is the kernel's speedup and is gated in [run] *)
  let priv, pub = Ecdsa.generate ~seed:"bench" in
  let digest = Hash.digest_string "bench message" in
  let signature = Ecdsa.sign priv digest in
  Test.make ~name:"fig7/ecdsa-verify-ref"
    (Staged.stage (fun () -> assert (Ecdsa.Ref.verify pub digest signature)))

let test_fig8_fam_append =
  let fam = Fam.create ~delta:15 in
  let i = ref 0 in
  Test.make ~name:"fig8a/fam15-append"
    (Staged.stage (fun () ->
         incr i;
         ignore (Fam.append fam (leaf !i));
         ignore (Fam.commitment fam)))

let test_fig8_tim_append =
  let acc = Accumulator.create () in
  let i = ref 0 in
  Test.make ~name:"fig8a/tim-append"
    (Staged.stage (fun () ->
         incr i;
         ignore (Accumulator.append acc (leaf !i));
         ignore (Accumulator.root acc)))

let test_fig8_fam_getproof =
  let fam = Fam.create ~delta:8 in
  for i = 0 to (1 lsl 12) - 1 do
    ignore (Fam.append fam (leaf i))
  done;
  let anchor = Fam.make_anchor fam in
  let commitment = Fam.commitment fam in
  let i = ref 0 in
  Test.make ~name:"fig8b/fam-aoa-getproof"
    (Staged.stage (fun () ->
         i := (!i + 997) land ((1 lsl 12) - 1);
         let p = Fam.prove_anchored fam anchor !i in
         assert (
           Fam.verify_anchored anchor ~current_commitment:commitment
             ~leaf:(leaf !i) p)))

let test_fig9_cmtree_verify =
  let cm = Cm_tree.create () in
  for i = 0 to 49 do
    ignore (Cm_tree.insert cm ~clue:"target" (leaf i))
  done;
  for i = 50 to 1000 do
    ignore (Cm_tree.insert cm ~clue:(Printf.sprintf "bg%d" (i mod 97)) (leaf i))
  done;
  let known = List.init 50 (fun v -> (v, leaf v)) in
  Test.make ~name:"fig9/cmtree-verify-50"
    (Staged.stage (fun () ->
         let proof = Option.get (Cm_tree.prove_clue cm ~clue:"target" ()) in
         assert (Cm_tree.verify_clue ~root:(Cm_tree.root_hash cm) ~known proof)))

let test_table2_qldb_verify =
  let clock = Clock.create () in
  let qldb = Qldb_sim.create ~clock () in
  Qldb_sim.preload qldb (1 lsl 16);
  Qldb_sim.insert qldb ~id:"doc" (Bytes.make 1024 'x');
  Test.make ~name:"table2/qldb-getrevision"
    (Staged.stage (fun () -> assert (Qldb_sim.verify qldb ~id:"doc")))

let test_fig10_fabric_submit =
  let clock = Clock.create () in
  let fab = Fabric_sim.create ~clock () in
  let i = ref 0 in
  Test.make ~name:"fig10/fabric-submit"
    (Staged.stage (fun () ->
         incr i;
         Fabric_sim.submit fab ~key:(string_of_int !i) (Bytes.make 256 'y')))

let test_fig5_tsa_endorse =
  let clock = Clock.create () in
  let tsa = Ledger_timenotary.Tsa.create ~endorse_rtt_ms:0. ~clock "bench" in
  let digest = Hash.digest_string "anchor" in
  Test.make ~name:"fig5/tsa-endorse"
    (Staged.stage (fun () -> ignore (Ledger_timenotary.Tsa.endorse tsa digest)))

let tests =
  Test.make_grouped ~name:"ledgerdb" ~fmt:"%s %s"
    [
      test_fig5_tsa_endorse;
      test_fig7_ecdsa_verify;
      test_fig7_ecdsa_verify_ref;
      test_fig8_fam_append;
      test_fig8_tim_append;
      test_fig8_fam_getproof;
      test_fig9_cmtree_verify;
      test_fig10_fabric_submit;
      test_table2_qldb_verify;
    ]

let benchmark ~smoke () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    if smoke then
      (* fixed small budget: enough samples for OLS, fast enough to ride
         inside dune runtest *)
      Benchmark.cfg ~limit:50 ~quota:(Time.second 0.05) ~kde:None ()
    else Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:(Some 500) ()
  in
  let raw_results = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  Analyze.merge ols instances results

(* ns-per-run OLS estimate for every test under the monotonic clock. *)
let estimates results =
  match Hashtbl.find_opt results (Measure.label Instance.monotonic_clock) with
  | None -> []
  | Some per_test ->
      Hashtbl.fold
        (fun name ols acc ->
          let ns =
            match Analyze.OLS.estimates ols with
            | Some (ns :: _) -> Some ns
            | Some [] | None -> None
          in
          (name, ns) :: acc)
        per_test []
      |> List.sort compare

let run ?(smoke = false) ?json () =
  print_endline "\nBechamel microbenchmarks (ns per run)";
  print_endline "=====================================";
  Bechamel_notty.Unit.add Instance.monotonic_clock "ns";
  let results = benchmark ~smoke () in
  let window =
    match Notty_unix.winsize Unix.stdout with
    | Some (w, h) -> { Bechamel_notty.w; h }
    | None -> { Bechamel_notty.w = 100; h = 1 }
  in
  let img =
    Bechamel_notty.Multiple.image_of_ols_results ~rect:window
      ~predictor:Measure.run results
  in
  Notty_unix.eol img |> Notty_unix.output_image;
  let ests = estimates results in
  (* Speedup gate: the wNAF/GLV kernel must keep ECDSA verification at
     least 10x faster than the reference pipeline (ISSUE 8 acceptance).
     Smoke runs use a tiny sample budget, so they gate at a loose 3x —
     enough to catch an accidental fallback to the slow path without
     flaking CI on scheduler noise. *)
  let speedup =
    match
      ( List.assoc_opt "ledgerdb fig7/ecdsa-verify" ests,
        List.assoc_opt "ledgerdb fig7/ecdsa-verify-ref" ests )
    with
    | Some (Some fast), Some (Some ref_ns) when fast > 0. -> Some (ref_ns /. fast)
    | _ -> None
  in
  (match speedup with
  | None -> failwith "bench_micro: missing ecdsa verify estimates"
  | Some s ->
      Printf.printf "ecdsa verify speedup (ref/fast): %.1fx\n" s;
      let floor = if smoke then 3.0 else 10.0 in
      if s < floor then
        failwith
          (Printf.sprintf
             "bench_micro: ecdsa verify speedup %.1fx below the %.0fx gate" s
             floor));
  match json with
  | None -> ()
  | Some path ->
      let open Ledger_bench_util.Json_out in
      let tests =
        List.map
          (fun (name, ns) ->
            (name, match ns with Some v -> Float v | None -> Null))
          ests
      in
      write_file path
        (Obj
           [
             ("figure", Str "micro");
             ("unit", Str "ns_per_run");
             ("smoke", Bool smoke);
             ("verify_speedup", match speedup with Some s -> Float s | None -> Null);
             ("tests", Obj tests);
           ]);
      Printf.printf "wrote %s\n" path
