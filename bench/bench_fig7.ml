(* Fig. 7: latency breakdown for Dasein verification factors.

   A workload of [n] sequential journals is appended under each scenario
   and then audited once; the audit reports wall-clock per factor.  Real
   ECDSA is used so the who/when costs are genuinely measured (the paper
   uses 1000 journals; we default to a smaller n and report per-journal
   figures, which is scale-free). *)

open Ledger_crypto
open Ledger_storage
open Ledger_core
open Ledger_timenotary
open Ledger_bench_util

type scenario = {
  label : string;
  payload : int;
  signers : int;
  anchoring : [ `Tsa_direct | `T_ledger of int ];
      (** [`T_ledger k] anchors once every [k] journals (TL-k appends at
          k TPS against the per-second notary finalization). *)
}

let build_ledger ~scenario ~n =
  let clock = Clock.create () in
  let tsa =
    Tsa.pool
      [ Tsa.create ~endorse_rtt_ms:50. ~clock "nts-a";
        Tsa.create ~endorse_rtt_ms:50. ~clock "nts-b" ]
  in
  let tl = T_ledger.create ~clock ~tsa () in
  let config =
    { Ledger.default_config with name = "fig7-" ^ scenario.label;
      block_size = 64; fam_delta = 10 }
  in
  let ledger = Ledger.create ~config ~t_ledger:tl ~tsa ~clock () in
  let member, priv =
    Ledger.new_member ledger ~name:"client" ~role:Roles.Regular_user
  in
  let cosigner_pool =
    List.init 6 (fun i ->
        Ledger.new_member ledger
          ~name:(Printf.sprintf "cosigner-%d" i)
          ~role:Roles.Regular_user)
  in
  let cosigners = List.filteri (fun i _ -> i < scenario.signers - 1) cosigner_pool in
  let rng = Det_rng.create ~seed:7 in
  let receipts = ref [] in
  for i = 0 to n - 1 do
    Clock.advance_ms clock 100.;
    let payload = Det_rng.bytes rng scenario.payload in
    let r = Ledger.append ledger ~member ~priv ~cosigners payload in
    receipts := r :: !receipts;
    (match scenario.anchoring with
    | `Tsa_direct -> ignore (Ledger.anchor_via_tsa ledger)
    | `T_ledger k ->
        if (i + 1) mod k = 0 then begin
          Clock.advance_ms clock 1000.;
          match Ledger.anchor_via_t_ledger ledger with
          | Ok _ -> ()
          | Error _ -> failwith "fig7: T-Ledger submission rejected"
        end)
  done;
  Ledger.seal_block ledger;
  (ledger, !receipts)

let scenarios =
  [
    (* when: anchoring mode sweep (256B, single signature) *)
    { label = "TSA"; payload = 256; signers = 1; anchoring = `Tsa_direct };
    { label = "TL-1"; payload = 256; signers = 1; anchoring = `T_ledger 1 };
    { label = "TL-10"; payload = 256; signers = 1; anchoring = `T_ledger 10 };
    (* what/who: payload sweep (TL-1, single signature) *)
    { label = "256B"; payload = 256; signers = 1; anchoring = `T_ledger 1 };
    { label = "4KB"; payload = 4096; signers = 1; anchoring = `T_ledger 1 };
    { label = "64KB"; payload = 65536; signers = 1; anchoring = `T_ledger 1 };
    { label = "256KB"; payload = 262144; signers = 1; anchoring = `T_ledger 1 };
    (* who: signature sweep (TL-1, 256B) *)
    { label = "Sig-1"; payload = 256; signers = 1; anchoring = `T_ledger 1 };
    { label = "Sig-3"; payload = 256; signers = 3; anchoring = `T_ledger 1 };
    { label = "Sig-5"; payload = 256; signers = 5; anchoring = `T_ledger 1 };
    { label = "Sig-7"; payload = 256; signers = 7; anchoring = `T_ledger 1 };
  ]

(* Median encoded fam-proof size over a handful of probe jsns — the
   proof-size column of the machine-readable output. *)
let median_proof_bytes ledger =
  let size = Ledger.size ledger in
  if size = 0 then 0
  else begin
    let probes =
      List.sort_uniq compare [ 0; size / 4; size / 2; 3 * size / 4; size - 1 ]
    in
    let sizes =
      List.sort compare
        (List.map
           (fun jsn ->
             let w = Wire.writer () in
             Ledger_merkle.Proof_codec.w_fam_proof w (Ledger.get_proof ledger jsn);
             Bytes.length (Wire.contents w))
           probes)
    in
    List.nth sizes (List.length sizes / 2)
  end

let run ?(n = 100) ?json () =
  Table.print_title
    (Printf.sprintf
       "Fig. 7 — Dasein verification latency breakdown (%d sequential journals, real ECDSA)"
       n);
  let results =
    List.map
      (fun scenario ->
        let ledger, receipts = build_ledger ~scenario ~n in
        let report = Audit.run ~receipts ledger in
        if not report.Audit.ok then begin
          Format.printf "%a@." Audit.pp_report report;
          failwith ("fig7: audit failed for " ^ scenario.label)
        end;
        (scenario, report, median_proof_bytes ledger))
      scenarios
  in
  let rows =
    List.map
      (fun (scenario, report, _) ->
        [
          scenario.label;
          Table.human_ms (report.Audit.what_seconds *. 1000.);
          Table.human_ms (report.Audit.when_seconds *. 1000.);
          Table.human_ms (report.Audit.who_seconds *. 1000.);
          string_of_int report.Audit.time_anchors_checked;
          string_of_int report.Audit.signatures_checked;
        ])
      results
  in
  Table.print_table
    ~header:[ "scenario"; "what"; "when"; "who"; "anchors"; "signatures" ]
    rows;
  print_endline
    "\nPaper shape: when(TSA) >> when(TL-1) > when(TL-10); what and who grow\n\
     with payload size; who scales linearly with the number of signers.";
  (match json with
  | None -> ()
  | Some path ->
      let open Json_out in
      let scenario_obj (scenario, report, proof_bytes) =
        ( scenario.label,
          Obj
            [
              ("what_ms", Float (report.Audit.what_seconds *. 1000.));
              ("when_ms", Float (report.Audit.when_seconds *. 1000.));
              ("who_ms", Float (report.Audit.who_seconds *. 1000.));
              ("anchors", Int report.Audit.time_anchors_checked);
              ("signatures", Int report.Audit.signatures_checked);
              ("proof_bytes", Int proof_bytes);
            ] )
      in
      write_file path
        (Obj
           [
             ("figure", Str "fig7");
             ("n", Int n);
             ("scenarios", Obj (List.map scenario_obj results));
           ]);
      Printf.printf "wrote %s\n" path);
  ignore Hash.zero
