(* LedgerDB reproduction benchmark harness.

   Regenerates every table and figure of the paper's evaluation (§VI):

     table1  — Table I  qualitative system comparison
     fig5    — Fig. 5   timestamp attack windows
     fig7    — Fig. 7   Dasein verification latency breakdown
     fig8    — Fig. 8   Append/GetProof: tim vs fam-5..25
     fig9    — Fig. 9   clue verification: CM-Tree vs ccMPT
     fig10   — Fig. 10  application comparison vs Hyperledger Fabric
     table2  — Table II application comparison vs QLDB
     ablation — anchor & Shrubs ablations
     micro   — Bechamel microbenchmarks

   Flags: --big (larger sweeps), --n <int> (Fig. 7 journal count),
   --smoke (fixed-seed fast sizes, for CI), --json <dir> (write
   machine-readable BENCH_<target>.json files into <dir>). *)

let usage () =
  print_endline
    "usage: main.exe \
     [table1|fig5|fig7|fig8|fig9|fig10|table2|ablation|micro|batch|shard|par|recover|serve|query|all]\n\
    \       [--big] [--n <journals-for-fig7>] [--smoke] [--json <dir>]";
  exit 1

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let big = List.mem "--big" args in
  let smoke = List.mem "--smoke" args in
  let n_fig7 =
    let rec find = function
      | "--n" :: v :: _ -> (
          match int_of_string_opt v with Some n when n > 0 -> n | _ -> usage ())
      | _ :: rest -> find rest
      | [] -> if smoke then 4 else 100
    in
    find args
  in
  let json_dir =
    let rec find = function
      | "--json" :: dir :: _ -> Some dir
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  let json name =
    (* BENCH_<name>.json in the requested directory; shared by every
       figure bench that has a machine-readable form *)
    Option.map
      (fun dir -> Filename.concat dir (Printf.sprintf "BENCH_%s.json" name))
      json_dir
  in
  let skip_flag_values =
    (* operand slots consumed by --n/--json, not bench targets *)
    let rec go = function
      | "--n" :: v :: rest | "--json" :: v :: rest -> v :: go rest
      | _ :: rest -> go rest
      | [] -> []
    in
    go args
  in
  let targets =
    List.filter
      (fun a ->
        (not (String.length a >= 2 && String.sub a 0 2 = "--"))
        && not (List.mem a skip_flag_values))
      args
  in
  let targets = if targets = [] then [ "all" ] else targets in
  let run_target = function
    | "table1" -> Bench_table1.run ()
    | "fig5" -> Bench_fig5.run ()
    | "fig7" -> Bench_fig7.run ~n:n_fig7 ?json:(json "fig7") ()
    | "fig8" | "fig8a" | "fig8b" -> Bench_fig8.run ~big ()
    | "fig9" | "fig9a" | "fig9b" -> Bench_fig9.run ~big ()
    | "fig10" | "fig10a" | "fig10b" | "fig10c" | "fig10d" ->
        Bench_fig10.run ~big ()
    | "table2" -> Bench_table2.run ()
    | "ablation" | "ablations" -> Bench_ablations.run ()
    | "storage" -> Bench_storage.run ()
    | "proofsize" | "proof-size" -> Bench_proof_size.run ()
    | "micro" -> Bench_micro.run ~smoke ?json:(json "micro") ()
    | "batch" -> Bench_batch.run ~smoke ?json:(json "batch") ()
    | "shard" | "shards" -> Bench_shard.run ~smoke ?json:(json "shard") ()
    | "par" | "multicore" -> Bench_par.run ~smoke ?json:(json "par") ()
    | "recover" | "repair" -> Bench_recover.run ~smoke ?json:(json "recover") ()
    | "serve" | "net" -> Bench_serve.run ~smoke ?json:(json "serve") ()
    | "query" | "queries" -> Bench_query.run ~smoke ?json:(json "query") ()
    | "all" ->
        Bench_table1.run ();
        Bench_fig5.run ();
        Bench_fig7.run ~n:n_fig7 ?json:(json "fig7") ();
        Bench_fig8.run ~big ();
        Bench_fig9.run ~big ();
        Bench_fig10.run ~big ();
        Bench_table2.run ();
        Bench_ablations.run ();
        Bench_storage.run ();
        Bench_proof_size.run ();
        Bench_batch.run ~smoke ();
        Bench_shard.run ~smoke ();
        Bench_par.run ~smoke ();
        Bench_recover.run ~smoke ();
        Bench_serve.run ~smoke ();
        Bench_query.run ~smoke ()
    | other ->
        Printf.printf "unknown target: %s\n" other;
        usage ()
  in
  List.iter run_target targets
