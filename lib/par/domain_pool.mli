(** Fixed-size domain pool for batch-shaped hot paths.

    A pool provides deterministic-order data parallelism: every primitive
    partitions [0, n) into chunk ranges, each chunk writes only its own
    result slots, and the caller participates in draining chunks — so a
    pool of size 1 (and {!sequential}) is exactly inline execution, and
    results never depend on scheduling.  Tasks must be pure with respect
    to shared state (hashing, signature checking); all accumulator folds,
    clock charges and journal installs stay sequential in the callers
    (DESIGN.md §12).

    Re-entrant use from inside a pooled task runs inline on the worker
    domain rather than queueing, so nested batch operations cannot
    deadlock the pool. *)

type t

val sequential : t
(** Inline execution: no domains, no locks.  What tests use to pin the
    reference behaviour. *)

val create : ?domains:int -> unit -> t
(** [create ~domains:n ()] builds a pool of total parallelism [n] (the
    caller plus [n - 1] spawned worker domains), clamped to [[1, 128]].
    Defaults to [Domain.recommended_domain_count ()].  [n = 1] spawns
    nothing and behaves like {!sequential}. *)

val size : t -> int
(** Total parallelism, caller included; 1 for {!sequential}. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Only call with no job in flight;
    {!sequential} is a no-op. *)

val default : unit -> t
(** The lazily created process-wide pool, sized from [LEDGERDB_DOMAINS]
    when that parses as a positive integer, else from
    [Domain.recommended_domain_count ()] (0, negatives and garbage fall
    back rather than fail). *)

val env_domains : unit -> int option
(** The [LEDGERDB_DOMAINS] override as {!default} would read it right
    now: [Some n] for a positive integer, [None] (fall back to the core
    count) for anything else.  Exposed so the parsing contract is
    directly testable. *)

val set_default : t -> unit
(** Replace the process-wide pool (e.g. the CLI's [--domains] flag).
    The previous pool, if any, is not shut down. *)

val map_chunks :
  t -> ?label:string -> ?min_chunk:int -> n:int -> (lo:int -> hi:int -> unit) ->
  unit
(** [map_chunks t ~n f] covers [0, n) with disjoint [f ~lo ~hi] calls —
    at most [4 × size t] chunks, never smaller than [min_chunk] items
    (default 1).  Runs inline when the pool has no workers, when [n <=
    min_chunk], or when called from inside a pooled task.  If a chunk
    raises, not-yet-started chunks are skipped and the first exception is
    re-raised in the caller once in-flight chunks drain.  [label] tags
    the [par_chunks_<label>] histogram. *)

val parallel_for :
  t -> ?label:string -> ?min_chunk:int -> n:int -> (int -> unit) -> unit
(** [parallel_for t ~n body] runs [body i] for every [i] in [0, n),
    chunked per {!map_chunks}. *)

val map_array :
  t -> ?label:string -> ?min_chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map] with result order guaranteed identical to the
    sequential map.  [f] is applied exactly once per element. *)

val map_list :
  t -> ?label:string -> ?min_chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map] (via an array), same order guarantee. *)
