(* Fixed-size domain pool for the batch-shaped hot paths (DESIGN.md §12).

   The pool owns [domains - 1] worker domains; the caller is always the
   last participant, so a pool of size 1 degenerates to plain inline
   execution with no spawning, no locking and no allocation.  Work is
   published as chunk ranges claimed from an atomic counter, which keeps
   every primitive deterministic in its *results* (each chunk writes only
   its own slice) even though chunk execution order is not.

   Nested use is safe by construction: a task that re-enters the pool
   from a worker domain (e.g. a per-shard append that itself hashes a
   batch) detects the worker-local DLS flag and runs inline instead of
   queueing — queueing from a worker could deadlock a fully busy pool. *)

module Metrics = Ledger_obs.Metrics

type pool = {
  domains : int; (* total parallelism, caller included *)
  mutable workers : unit Domain.t array; (* domains - 1 spawned helpers *)
  queue : (unit -> unit) Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable stopped : bool;
}

type t = Sequential | Pool of pool

let sequential = Sequential

let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let worker_loop pool () =
  Domain.DLS.set in_worker true;
  let rec next () =
    Mutex.lock pool.lock;
    let rec take () =
      if pool.stopped then None
      else
        match Queue.take_opt pool.queue with
        | Some task -> Some task
        | None ->
            Condition.wait pool.nonempty pool.lock;
            take ()
    in
    let task = take () in
    Mutex.unlock pool.lock;
    match task with
    | None -> ()
    | Some task ->
        (* tasks are claim loops that trap their own exceptions; this
           catch-all only shields the pool from a buggy future task *)
        (try task () with _ -> ());
        next ()
  in
  next ()

let max_domains = 128

let create ?domains () =
  let requested =
    match domains with
    | Some d -> d
    | None -> Domain.recommended_domain_count ()
  in
  let n = max 1 (min max_domains requested) in
  let pool =
    {
      domains = n;
      workers = [||];
      queue = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      stopped = false;
    }
  in
  pool.workers <- Array.init (n - 1) (fun _ -> Domain.spawn (worker_loop pool));
  Pool pool

let size = function Sequential -> 1 | Pool p -> p.domains

let shutdown = function
  | Sequential -> ()
  | Pool p ->
      Mutex.lock p.lock;
      p.stopped <- true;
      Condition.broadcast p.nonempty;
      Mutex.unlock p.lock;
      Array.iter Domain.join p.workers

(* --- global default pool -------------------------------------------------- *)

(* LEDGERDB_DOMAINS overrides the core count; 0, negatives and garbage
   fall back to [Domain.recommended_domain_count] (the env knob must
   never be able to brick the process). *)
let env_domains () =
  match Sys.getenv_opt "LEDGERDB_DOMAINS" with
  | None -> None
  | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some n when n >= 1 -> Some n
      | Some _ | None -> None)

let global : t option ref = ref None

let default () =
  match !global with
  | Some t -> t
  | None ->
      let t = create ?domains:(env_domains ()) () in
      global := Some t;
      t

let set_default t = global := Some t

(* --- chunked execution ----------------------------------------------------- *)

(* Chunk [c] of [n] items split into [chunks] near-equal ranges. *)
let chunk_bounds n chunks c =
  let base = n / chunks and extra = n mod chunks in
  let lo = (c * base) + min c extra in
  (lo, lo + base + if c < extra then 1 else 0)

(* Run [chunks] tasks across the pool, caller participating.  The first
   exception is recorded, every not-yet-started chunk is skipped
   (cancel), and the exception is re-raised in the caller with its
   original backtrace once all in-flight chunks have drained. *)
let run_pool pool ~label ~chunks ~run_chunk =
  Metrics.incr "par_jobs_total";
  Metrics.incr "par_tasks_total" ~by:chunks;
  Metrics.set_gauge "par_domains" (float_of_int pool.domains);
  (match label with
  | Some l -> Metrics.observe_int ("par_chunks_" ^ l) chunks
  | None -> ());
  let next = Atomic.make 0 in
  let remaining = Atomic.make chunks in
  let failure : (exn * Printexc.raw_backtrace) option Atomic.t =
    Atomic.make None
  in
  let done_lock = Mutex.create () in
  let all_done = Condition.create () in
  let finish_one () =
    if Atomic.fetch_and_add remaining (-1) = 1 then begin
      Mutex.lock done_lock;
      Condition.broadcast all_done;
      Mutex.unlock done_lock
    end
  in
  let claim () =
    let continue = ref true in
    while !continue do
      let c = Atomic.fetch_and_add next 1 in
      if c >= chunks then continue := false
      else begin
        (if Atomic.get failure = None then
           try run_chunk c
           with e ->
             let bt = Printexc.get_raw_backtrace () in
             ignore (Atomic.compare_and_set failure None (Some (e, bt))));
        finish_one ()
      end
    done
  in
  let helpers = min (Array.length pool.workers) (chunks - 1) in
  if helpers > 0 then begin
    Mutex.lock pool.lock;
    for _ = 1 to helpers do
      Queue.add claim pool.queue
    done;
    Condition.broadcast pool.nonempty;
    Mutex.unlock pool.lock
  end;
  claim ();
  Mutex.lock done_lock;
  while Atomic.get remaining > 0 do
    Condition.wait all_done done_lock
  done;
  Mutex.unlock done_lock;
  match Atomic.get failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let map_chunks t ?label ?(min_chunk = 1) ~n f =
  if n > 0 then
    match t with
    | Sequential -> f ~lo:0 ~hi:n
    | Pool pool ->
        let inline =
          Array.length pool.workers = 0
          || Domain.DLS.get in_worker
          || n <= min_chunk
        in
        if inline then f ~lo:0 ~hi:n
        else begin
          let chunks =
            min n (min (pool.domains * 4) (max 1 (n / max 1 min_chunk)))
          in
          if chunks <= 1 then f ~lo:0 ~hi:n
          else
            run_pool pool ~label ~chunks ~run_chunk:(fun c ->
                let lo, hi = chunk_bounds n chunks c in
                f ~lo ~hi)
        end

let parallel_for t ?label ?min_chunk ~n body =
  map_chunks t ?label ?min_chunk ~n (fun ~lo ~hi ->
      for i = lo to hi - 1 do
        body i
      done)

let map_array t ?label ?min_chunk f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    (* seed the result array from index 0 (computed inline, exactly
       once) so no placeholder value is ever needed *)
    let out = Array.make n (f arr.(0)) in
    parallel_for t ?label ?min_chunk ~n:(n - 1) (fun i ->
        out.(i + 1) <- f arr.(i + 1));
    out
  end

let map_list t ?label ?min_chunk f l =
  match l with
  | [] -> []
  | [ x ] -> [ f x ]
  | l -> Array.to_list (map_array t ?label ?min_chunk f (Array.of_list l))
