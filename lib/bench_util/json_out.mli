(** Minimal JSON serializer for machine-readable bench output.

    Floats render with [%.6g]; NaN and infinities — which JSON cannot
    spell — render as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
val write_file : string -> t -> unit
