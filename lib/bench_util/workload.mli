(** Workload generators matching the paper's evaluation setups. *)

type journal_workload = { payloads : bytes array; clues : string array }

val notarization : rng:Det_rng.t -> n:int -> payload_size:int -> journal_workload
(** [n] journals, each with a unique notarization id clue. *)

val lineage :
  rng:Det_rng.t ->
  clue_count:int ->
  min_entries:int ->
  max_entries:int ->
  payload_size:int ->
  journal_workload
(** Journals spread over [clue_count] clues, each clue receiving a uniform
    1–100-style number of entries (the §VI-C setup). *)

val size_label : int -> string
(** "32K", "2^20" style labels for geometric sweeps. *)

(** {1 Skewed access}

    Load generators model popularity with a Zipf distribution: rank [k]
    (0-based) is drawn with probability proportional to [1/(k+1)^s].
    The sampler precomputes the cumulative mass once and draws by
    binary search, so a million draws cost a million [log n] probes. *)

type zipf

val zipf : n:int -> s:float -> zipf
(** @raise Invalid_argument when [n <= 0] or [s < 0]. *)

val zipf_draw : zipf -> Det_rng.t -> int
(** A rank in [\[0, n)]; [s = 0] degenerates to uniform. *)
