type journal_workload = { payloads : bytes array; clues : string array }

let notarization ~rng ~n ~payload_size =
  {
    payloads = Array.init n (fun _ -> Det_rng.bytes rng payload_size);
    clues = Array.init n (fun i -> Printf.sprintf "doc-%08d" i);
  }

let lineage ~rng ~clue_count ~min_entries ~max_entries ~payload_size =
  let assignments = ref [] in
  for c = 0 to clue_count - 1 do
    let entries = min_entries + Det_rng.int rng (max_entries - min_entries + 1) in
    for _ = 1 to entries do
      assignments := Printf.sprintf "clue-%06d" c :: !assignments
    done
  done;
  (* shuffle so clue entries interleave as they would in production *)
  let arr = Array.of_list !assignments in
  for i = Array.length arr - 1 downto 1 do
    let j = Det_rng.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  {
    payloads = Array.init (Array.length arr) (fun _ -> Det_rng.bytes rng payload_size);
    clues = arr;
  }

let size_label n =
  if n >= 1 lsl 30 then Printf.sprintf "%dG" (n lsr 30)
  else if n >= 1 lsl 20 then Printf.sprintf "%dM" (n lsr 20)
  else if n >= 1 lsl 10 then Printf.sprintf "%dK" (n lsr 10)
  else string_of_int n

(* Zipfian rank sampler: cumulative mass over 1/(k+1)^s, drawn by
   binary search on a uniform deviate. *)
type zipf = { cdf : float array }

let zipf ~n ~s =
  if n <= 0 then invalid_arg "Workload.zipf: n <= 0";
  if s < 0. then invalid_arg "Workload.zipf: s < 0";
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  for k = 0 to n - 1 do
    acc := !acc +. (1. /. (float_of_int (k + 1) ** s));
    cdf.(k) <- !acc
  done;
  let total = !acc in
  for k = 0 to n - 1 do
    cdf.(k) <- cdf.(k) /. total
  done;
  { cdf }

let zipf_draw z rng =
  let n = Array.length z.cdf in
  (* 53 uniformly-random mantissa bits, as a deviate in [0,1) *)
  let u =
    float_of_int (Int64.to_int (Det_rng.next rng) land ((1 lsl 53) - 1))
    /. float_of_int (1 lsl 53)
  in
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if z.cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo
