(* Minimal JSON value type and serializer for machine-readable bench
   output (BENCH_*.json).  Hand-rolled because the toolchain carries no
   JSON library; the emitted subset is plain RFC 8259. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  (* nan/inf have no JSON spelling; null keeps consumers honest *)
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then None
  else if Float.is_integer f && Float.abs f < 1e15 then
    Some (Printf.sprintf "%.0f" f)
  else Some (Printf.sprintf "%.6g" f)

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> (
      match float_repr f with
      | Some s -> Buffer.add_string buf s
      | None -> Buffer.add_string buf "null")
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          write buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

let write_file path v =
  let oc = open_out path in
  output_string oc (to_string v);
  output_char oc '\n';
  close_out oc
