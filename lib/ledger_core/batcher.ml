open Ledger_crypto
open Ledger_storage
open Ledger_obs

type policy = {
  max_entries : int;
  max_delay_us : int64;
  seal_on_flush : bool;
}

let default_policy =
  { max_entries = 64; max_delay_us = 10_000L; seal_on_flush = true }

type t = {
  ledger : Ledger.t;
  member : Roles.member;
  priv : Ecdsa.private_key;
  policy : policy;
  pool : Ledger_par.Domain_pool.t;
  mutable buffer : (bytes * string list) list; (* newest first *)
  mutable oldest_ts : int64 option; (* clock at first buffered entry *)
  mutable flushes : int;
  mutable closed : bool;
}

let create ?(policy = default_policy) ?pool ledger ~member ~priv =
  if policy.max_entries < 1 then invalid_arg "Batcher.create: bad max_entries";
  if policy.max_delay_us < 0L then invalid_arg "Batcher.create: bad max_delay_us";
  let pool =
    match pool with Some p -> p | None -> Ledger_par.Domain_pool.default ()
  in
  { ledger; member; priv; policy; pool; buffer = []; oldest_ts = None;
    flushes = 0; closed = false }

let pending t = List.length t.buffer
let flushes t = t.flushes

let flush t =
  match t.buffer with
  | [] -> []
  | buffered ->
      let entries = List.rev buffered in
      t.buffer <- [];
      t.oldest_ts <- None;
      t.flushes <- t.flushes + 1;
      Metrics.incr "ledger_batcher_flushes_total";
      Ledger.append_batch ~pool:t.pool t.ledger ~member:t.member ~priv:t.priv
        ~seal:t.policy.seal_on_flush entries

let deadline_expired t =
  match t.oldest_ts with
  | None -> false
  | Some since ->
      Int64.sub (Clock.now (Ledger.clock t.ledger)) since
      >= t.policy.max_delay_us

let tick t =
  if t.closed then invalid_arg "Batcher.tick: batcher is closed";
  if deadline_expired t then flush t else []

let close t =
  if t.closed then []
  else begin
    let receipts = flush t in
    t.closed <- true;
    receipts
  end

let submit t ?(clues = []) payload =
  if t.closed then invalid_arg "Batcher.submit: batcher is closed";
  if t.buffer = [] then
    t.oldest_ts <- Some (Clock.now (Ledger.clock t.ledger));
  t.buffer <- (payload, clues) :: t.buffer;
  if List.length t.buffer >= t.policy.max_entries || deadline_expired t then
    flush t
  else []
