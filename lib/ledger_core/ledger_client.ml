open Ledger_crypto
open Ledger_merkle

type status = Healthy | Degraded | Compromised

let status_to_string = function
  | Healthy -> "healthy"
  | Degraded -> "degraded"
  | Compromised -> "compromised"

type t = {
  name : string;
  lsp_pub : Ecdsa.public_key;
  mutable receipts : Receipt.t list; (* newest first *)
  mutable anchor : (Fam.anchor * Hash.t) option;
  mutable status : status;
  mutable transient_faults : int;
  mutable last_fault : string option;
}

let create ~name ~lsp_pub =
  { name; lsp_pub; receipts = []; anchor = None; status = Healthy;
    transient_faults = 0; last_fault = None }

let name t = t.name

(* --- health -------------------------------------------------------------

   Transient transport faults degrade the client (it keeps retrying and
   recovers); a cryptographic verification failure compromises it
   permanently — there is no retry that can make a bad proof good, and a
   client that "recovered" from one would be retrying the LSP's lie into
   acceptance. *)

let status t = t.status
let transient_faults t = t.transient_faults
let last_fault t = t.last_fault

let note_transport_fault t ~reason =
  t.transient_faults <- t.transient_faults + 1;
  t.last_fault <- Some reason;
  Ledger_obs.Metrics.incr "client_transport_faults_total";
  if t.status = Healthy then t.status <- Degraded

let note_recovery t =
  if t.status = Degraded then begin
    t.status <- Healthy;
    t.last_fault <- None;
    Ledger_obs.Metrics.incr "client_recoveries_total"
  end

let note_verification_failure t ~reason =
  t.last_fault <- Some reason;
  Ledger_obs.Metrics.incr "client_verification_failures_total";
  t.status <- Compromised

let remember_receipt t r = t.receipts <- r :: t.receipts
let receipts t = t.receipts

let receipt_for t ~jsn =
  List.find_opt (fun (r : Receipt.t) -> r.Receipt.jsn = jsn) t.receipts

let adopt_anchor t ~anchor ~commitment = t.anchor <- Some (anchor, commitment)
let anchor t = t.anchor

let anchored_upto t =
  match t.anchor with Some (a, _) -> Fam.anchor_size a | None -> 0

let check_existence ?cache t ~jsn ~leaf ~current_commitment proof =
  (* the verdict depends on everything the verifier was handed: fold the
     leaf, the proof bytes and the anchor state into the cache key so two
     different questions can never collide *)
  let verifier () =
    Printf.sprintf "client-existence:%s:%d:%s" t.name (anchored_upto t)
      (Hash.to_hex
         (Hash.combine leaf
            (Hash.digest_bytes (Proof_codec.encode_fam_anchored proof))))
  in
  let cached =
    match cache with
    | None -> None
    | Some c -> Verify_cache.find c ~root:current_commitment ~jsn
                  ~verifier:(verifier ())
  in
  let ok =
    match cached with
    | Some ok -> ok
    | None ->
        let ok =
          match t.anchor with
          | Some (a, _) -> Fam.verify_anchored a ~current_commitment ~leaf proof
          | None -> (
              (* without an anchor only full chained proofs are meaningful *)
              match proof with
              | Fam.Beyond_anchor p ->
                  Fam.verify ~commitment:current_commitment ~leaf p
              | Fam.Within_sealed _ -> false)
        in
        (match cache with
        | Some c ->
            Verify_cache.store c ~root:current_commitment ~jsn
              ~verifier:(verifier ()) ok
        | None -> ());
        ok
  in
  Ledger_obs.Audit_log.record ~verifier:t.name (Journal jsn)
    (if ok then Ledger_obs.Audit_log.Verified
     else Ledger_obs.Audit_log.Repudiated "client existence check failed");
  ok

let check_receipt_against t ~ledger_tx_hash ~jsn =
  let verdict =
    match receipt_for t ~jsn with
    | None -> `No_receipt
    | Some r ->
        if not (Receipt.verify ~lsp_pub:t.lsp_pub r) then `Bad_signature
        else begin
          match ledger_tx_hash jsn with
          | Some tx when Hash.equal tx r.Receipt.tx_hash -> `Ok
          | Some _ | None -> `Repudiated
        end
  in
  (match verdict with
  | `No_receipt -> () (* no attempt was possible, nothing to audit *)
  | `Ok -> Ledger_obs.Audit_log.record ~verifier:t.name (Receipt jsn) Verified
  | `Bad_signature ->
      Ledger_obs.Audit_log.record ~verifier:t.name (Receipt jsn)
        (Repudiated "receipt signature invalid")
  | `Repudiated ->
      Ledger_obs.Audit_log.record ~verifier:t.name (Receipt jsn)
        (Repudiated "journal no longer matches receipt"));
  verdict

let stale t ~current_size = current_size > anchored_upto t

let check_growth t ~delta ~new_size ~new_commitment proof =
  match t.anchor with
  | None -> false
  | Some (anchor, _) ->
      let ok =
        Fam.verify_extension ~delta ~old_size:(Fam.anchor_size anchor)
          ~old_peaks:(Fam.anchor_peaks anchor) ~new_size ~new_commitment proof
      in
      Ledger_obs.Audit_log.record ~verifier:t.name
        (Extension { old_size = Fam.anchor_size anchor; new_size })
        (if ok then Ledger_obs.Audit_log.Verified
         else Ledger_obs.Audit_log.Repudiated "extension proof failed");
      ok

(* --- self-healing remote checks ------------------------------------------ *)

let check_receipt_remote t ~transport ?policy ?(seed = 0) ~clock ~jsn () =
  match receipt_for t ~jsn with
  | None -> Ok `No_receipt
  | Some _ -> (
      match
        Transport.request_expect ?policy ~seed
          ~on_retry:(fun ~attempt:_ ~reason -> note_transport_fault t ~reason)
          ~clock
          ~decode:(function
            | Service.Journal_r { tx; _ } -> Some tx
            | _ -> None)
          transport
          (Service.Client.make_get_journal ~jsn)
      with
      | Error (Transport.Refused msg) ->
          (* the client holds a receipt for this jsn; a service refusing to
             produce the journal is repudiation evidence, not a transient
             fault *)
          note_verification_failure t
            ~reason:(Printf.sprintf "jsn %d refused: %s" jsn msg);
          Ledger_obs.Audit_log.record ~verifier:t.name (Receipt jsn)
            (Repudiated ("service refused journal: " ^ msg));
          Ok `Repudiated
      | Error (Transport.Transport e) ->
          (* transport exhausted: stay degraded, conclude nothing — the
             receipt is neither confirmed nor repudiated *)
          note_transport_fault t ~reason:(Transport.error_to_string e);
          Ledger_obs.Audit_log.record ~verifier:t.name (Receipt jsn)
            (Degraded (Transport.error_to_string e));
          Error e
      | Ok tx ->
          let verdict =
            check_receipt_against t ~ledger_tx_hash:(fun _ -> Some tx) ~jsn
          in
          (match verdict with
          | `Ok -> note_recovery t
          | `Bad_signature ->
              note_verification_failure t
                ~reason:(Printf.sprintf "jsn %d: receipt signature invalid" jsn)
          | `Repudiated ->
              note_verification_failure t
                ~reason:
                  (Printf.sprintf
                     "jsn %d: ledger's journal no longer matches the receipt"
                     jsn)
          | `No_receipt -> ());
          Ok verdict)
