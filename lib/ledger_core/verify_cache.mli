(** Verified-anchor cache.

    Replaying a fam or receipt proof that an identical verifier already
    replayed against an identical trust root is pure waste: the verdict is
    a deterministic function of (root digest, journal index, verifier
    question).  This cache memoizes those verdicts so {!Verify_api} and
    {!Ledger_client} can skip redundant proof replays.

    Safety comes from two sides.  {e Structurally}, every key embeds the
    root digest the verdict was computed against, so a verdict can never
    be served for a root it does not describe — any append changes the
    commitment and naturally misses.  {e Operationally}, history
    mutations (purge, occult, reorganize) erase data {e behind} a root,
    so {!attach} subscribes the cache to {!Ledger.on_mutate} and drops
    everything when one fires: a cached verdict must never outlive the
    data it vouched for. *)

open Ledger_crypto

type t

val create : ?capacity:int -> unit -> t
(** At most [capacity] (default 1024) verdicts are retained; beyond that
    the oldest entries are evicted first.
    @raise Invalid_argument when [capacity < 1]. *)

val find : t -> root:Hash.t -> jsn:int -> verifier:string -> bool option
(** Cached verdict for (root, jsn, verifier), if any.  [verifier] must
    encode the whole question (level, target kind, auxiliary digests) —
    two different questions must never share a verifier string. *)

val store : t -> root:Hash.t -> jsn:int -> verifier:string -> bool -> unit

val invalidate : t -> int
(** Drop every cached verdict; returns how many were dropped.  Called
    automatically via {!attach} when the ledger mutates history. *)

val attach : t -> Ledger.t -> unit
(** Subscribe to the ledger's mutation feed: any purge/occult/reorganize
    invalidates the whole cache. *)

(** {1 Statistics} *)

val size : t -> int
val hits : t -> int
val misses : t -> int
val invalidations : t -> int
val evictions : t -> int
