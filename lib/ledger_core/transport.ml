open Ledger_storage

type t = bytes -> bytes

exception Timeout of string

let () =
  Printexc.register_printer (function
    | Timeout msg -> Some ("Transport.Timeout: " ^ msg)
    | _ -> None)

type policy = {
  max_attempts : int;
  base_backoff_ms : float;
  max_backoff_ms : float;
  jitter : float;
  request_timeout_ms : float;
}

let default_policy =
  { max_attempts = 6; base_backoff_ms = 50.; max_backoff_ms = 2_000.;
    jitter = 0.5; request_timeout_ms = 1_000. }

let no_retry = { default_policy with max_attempts = 1 }

(* Deterministic jitter: a splitmix-style mix of (seed, attempt) mapped to
   [1 - jitter, 1], so concurrent clients with different seeds desynchronise
   their retries while a fixed seed replays the exact same schedule. *)
let jitter_factor policy ~seed ~attempt =
  if policy.jitter <= 0. then 1.
  else begin
    let z =
      Int64.add
        (Int64.mul (Int64.of_int (seed + 1)) 0x9E3779B97F4A7C15L)
        (Int64.mul (Int64.of_int (attempt + 1)) 0xBF58476D1CE4E5B9L)
    in
    let z = Int64.logxor z (Int64.shift_right_logical z 31) in
    let unit_f =
      Int64.to_float (Int64.logand z 0xFFFFFFL) /. float_of_int 0xFFFFFF
    in
    1. -. (policy.jitter *. unit_f)
  end

let backoff_ms policy ~seed ~attempt =
  let exp =
    policy.base_backoff_ms *. (2. ** float_of_int (max 0 (attempt - 1)))
  in
  Float.min policy.max_backoff_ms exp *. jitter_factor policy ~seed ~attempt

(* When the caller supplies a jitter source (e.g. the seeded fault-plan
   RNG), the backoff draw comes from it instead of the (seed, attempt)
   mix — one RNG then governs both the fault schedule and the retry
   schedule, so a chaos scenario replays end to end from one seed. *)
let backoff_ms_drawn policy ~seed ~attempt ~backoff_rng =
  match backoff_rng with
  | None -> backoff_ms policy ~seed ~attempt
  | Some draw ->
      let exp =
        policy.base_backoff_ms *. (2. ** float_of_int (max 0 (attempt - 1)))
      in
      let unit_f = Float.max 0. (Float.min 1. (draw ())) in
      let factor =
        if policy.jitter <= 0. then 1. else 1. -. (policy.jitter *. unit_f)
      in
      Float.min policy.max_backoff_ms exp *. factor

type error = { attempts : int; reason : string }

let error_to_string e =
  Printf.sprintf "transport failed after %d attempt%s: %s" e.attempts
    (if e.attempts = 1 then "" else "s")
    e.reason

type failure = Refused of string | Transport of error

let failure_to_string = function
  | Refused msg -> "service refused: " ^ msg
  | Transport e -> error_to_string e

(* [count_failures] lets {!request_expect} reuse the single-attempt body
   without its inner one-shot exhaustion being recorded as a terminal
   transport failure — only the outer loop's give-up counts. *)
let request_counted ?backoff_rng ~count_failures ~policy ~seed ~on_retry ~clock
    transport payload =
  let rec go attempt =
    Ledger_obs.Metrics.incr "transport_attempts_total";
    let t0 = Clock.now clock in
    let outcome =
      match transport payload with
      | exception Timeout msg -> Error ("timeout: " ^ msg)
      | raw -> (
          let elapsed_ms = Clock.ms_of_us (Clock.elapsed_since clock t0) in
          if elapsed_ms > policy.request_timeout_ms then
            Error
              (Printf.sprintf "response after %.1f ms exceeded %.1f ms budget"
                 elapsed_ms policy.request_timeout_ms)
          else
            match Service.decode_response raw with
            | Some resp -> Ok resp
            | None -> Error "garbled response (undecodable)")
    in
    match outcome with
    | Ok resp -> Ok resp
    | Error reason ->
        if attempt >= policy.max_attempts then begin
          if count_failures then
            Ledger_obs.Metrics.incr "transport_failures_total";
          Error { attempts = attempt; reason }
        end
        else begin
          Ledger_obs.Metrics.incr "transport_retries_total";
          on_retry ~attempt ~reason;
          Clock.advance_ms clock
            (backoff_ms_drawn policy ~seed ~attempt ~backoff_rng);
          go (attempt + 1)
        end
  in
  go 1

let request ?(policy = default_policy) ?(seed = 0) ?backoff_rng
    ?(on_retry = fun ~attempt:_ ~reason:_ -> ()) ~clock transport payload =
  request_counted ?backoff_rng ~count_failures:true ~policy ~seed ~on_retry
    ~clock transport payload

let request_expect ?(policy = default_policy) ?(seed = 0) ?backoff_rng
    ?(on_retry = fun ~attempt:_ ~reason:_ -> ()) ~clock ~decode transport
    payload =
  (* A response that decodes but has the wrong shape is indistinguishable
     from a reordered/misdelivered one, so it is retried like a transport
     fault — the attempt budget is shared with byte-level faults.  An
     explicit [Error_r] is the service itself speaking: definitive, never
     retried. *)
  let one_shot = { policy with max_attempts = 1 } in
  let no_op_retry ~attempt:_ ~reason:_ = () in
  let rec go attempt =
    match
      request_counted ~count_failures:false ~policy:one_shot ~seed
        ~on_retry:no_op_retry ~clock transport payload
    with
    | Error { reason; _ } -> transient attempt reason
    | Ok (Service.Error_r msg) -> Error (Refused msg)
    | Ok resp -> (
        match decode resp with
        | Some v -> Ok v
        | None -> transient attempt "unexpected response shape")
  and transient attempt reason =
    if attempt >= policy.max_attempts then begin
      Ledger_obs.Metrics.incr "transport_failures_total";
      Error (Transport { attempts = attempt; reason })
    end
    else begin
      Ledger_obs.Metrics.incr "transport_retries_total";
      on_retry ~attempt ~reason;
      Clock.advance_ms clock (backoff_ms_drawn policy ~seed ~attempt ~backoff_rng);
      go (attempt + 1)
    end
  in
  go 1
