open Ledger_crypto
open Ledger_storage
open Ledger_merkle
open Ledger_cmtree
module Cm_tree_index = Clue_skiplist
module Query_index = Ledger_query.Query_index
open Ledger_timenotary

let log = Logs.Src.create "ledgerdb.ledger" ~doc:"LedgerDB kernel events"

module Log = (val Logs.src_log log : Logs.LOG)
module Obs = Ledger_obs.Obs
module Metrics = Ledger_obs.Metrics
module Trace = Ledger_obs.Trace
module Audit_log = Ledger_obs.Audit_log
module Domain_pool = Ledger_par.Domain_pool

type config = {
  name : string;
  block_size : int;
  fam_delta : int;
  latency : Latency_model.t;
  crypto : Crypto_profile.t;
  member_ca : Ecdsa.public_key option;
}

let default_config =
  {
    name = "ledger";
    block_size = 64;
    fam_delta = 15;
    latency = Latency_model.default;
    crypto = Crypto_profile.Real;
    member_ca = None;
  }

(* In-memory journal slot: the journal record survives purge/occult as a
   tombstone so tx hashes and kinds stay available to verification.
   Slots are immutable records — every mutation (purge/occult erasure,
   compaction remap, the Unsafe forgeries) replaces the whole record with
   a single pointer store, so a reader on another domain always sees a
   coherent slot, never a half-updated one. *)
type slot = {
  journal : Journal.t;
  tx : Hash.t;
  store_index : int; (* record index in the journal stream *)
  request_hash : Hash.t;
}

(* Epoch-published read snapshot: a frozen, immutable view of committed
   state, republished (a single [Atomic.set]) at every mutation boundary.
   Worker domains serve proof/query reads against the current view with
   no lock at all; the OCaml 5 memory model makes every (plain) write
   performed before the atomic publication visible to any domain that
   reads the view through [Atomic.get].  Purge/occult erasures remain
   visible through old views (shared stream records and slot array) —
   snapshots never resurrect erased payloads. *)
type view = {
  v_epoch : int;  (* publication counter; bumps at every publish *)
  v_name : string;
  v_size : int;
  v_block_count : int;
  v_blocks : Block.t list; (* newest first *)
  v_slots : slot array; (* shared with the writer; guarded by v_size *)
  v_fam : Fam.t; (* frozen *)
  v_cm : Cm_tree.t; (* frozen *)
  v_query : Query_index.t; (* frozen *)
  v_members : (string * string * bytes) list; (* sorted wire form *)
  v_pseudo_genesis : int option;
  v_now : int64; (* clock pinned at publication *)
  v_store : Stream_store.pinned;
  v_lsp_priv : Ecdsa.private_key;
  v_lsp_pub : Ecdsa.public_key;
  v_crypto : Crypto_profile.t;
}

type t = {
  cfg : config;
  clock : Clock.t;
  store : Stream_store.t;
  journal_stream : Stream_store.stream;
  survival_stream : Stream_store.stream;
  mutable slots : slot array;
  mutable count : int;
  fam : Fam.t;
  cm : Cm_tree.t;
  world_state : Accumulator.t;
  mutable blocks : Block.t list; (* newest first *)
  mutable block_count : int;
  mutable pending_txs : Hash.t list; (* newest first, current block *)
  occult_bits : Bitmap_index.t;
  mutable occult_pending : int list; (* async-occulted, not yet erased *)
  registry : Roles.registry;
  lsp_priv : Ecdsa.private_key;
  lsp_pub : Ecdsa.public_key;
  lsp_id : Hash.t;
  t_ledger : T_ledger.t option;
  tsa : Tsa.pool option;
  clue_index : (string, Cm_tree_index.t) Hashtbl.t; (* clue -> jsn skip list *)
  state_index : (string, int list ref) Hashtbl.t; (* clue -> world-state leaves *)
  query : Query_index.t; (* ordered clue trie for verifiable range scans *)
  mutable time_journals : int list; (* jsns, newest first *)
  mutable pseudo_genesis_jsn : int option;
  mutable survivor_jsns : int list;
  mutable nonce : int;
  mutable on_mutate : (unit -> unit) list;
      (* fired after purge/occult/reorganize — lets verification caches
         drop verdicts whose underlying data may have been erased *)
  view : view option Atomic.t;
      (* current read snapshot; [None] only transiently inside [create] *)
  mutable view_epoch : int; (* next publication epoch (writer-only) *)
}

(* placeholder slot for unoccupied array cells; always overwritten before
   first read (guarded by [count]) *)
let dummy_slot =
  {
    journal =
      {
        Journal.jsn = -1;
        kind = Journal.Normal;
        client_id = Hash.zero;
        payload = Bytes.empty;
        clues = [];
        client_ts = 0L;
        server_ts = 0L;
        nonce = 0;
        request_hash = Hash.zero;
        client_sig = None;
        cosigners = [];
      };
    tx = Hash.zero;
    store_index = -1;
    request_hash = Hash.zero;
  }

(* Build and atomically publish a fresh read snapshot.  Writer-only:
   always called with the mutation already complete, so the view captures
   a committed state.  O(members + dirty-trie-path) per call. *)
let publish t =
  let members =
    Roles.members t.registry
    |> List.sort (fun (a : Roles.member) (b : Roles.member) ->
           String.compare a.Roles.name b.Roles.name)
    |> List.map (fun (m : Roles.member) ->
           ( m.Roles.name,
             Roles.role_to_string m.Roles.role,
             Ecdsa.public_key_to_bytes m.Roles.pub ))
  in
  let v =
    {
      v_epoch = t.view_epoch;
      v_name = t.cfg.name;
      v_size = t.count;
      v_block_count = t.block_count;
      v_blocks = t.blocks;
      v_slots = t.slots;
      v_fam = Fam.freeze t.fam;
      v_cm = Cm_tree.freeze t.cm;
      v_query = Query_index.freeze t.query;
      v_members = members;
      v_pseudo_genesis = t.pseudo_genesis_jsn;
      v_now = Clock.now t.clock;
      v_store = Stream_store.pin t.journal_stream;
      v_lsp_priv = t.lsp_priv;
      v_lsp_pub = t.lsp_pub;
      v_crypto = t.cfg.crypto;
    }
  in
  t.view_epoch <- t.view_epoch + 1;
  Atomic.set t.view (Some v);
  Metrics.incr "ledger_view_published_total"

let read_view t =
  match Atomic.get t.view with
  | Some v -> v
  | None -> assert false (* create/load publish before returning *)

let create ?(config = default_config) ?t_ledger ?tsa ~clock () =
  let store = Stream_store.create () in
  let lsp_priv, lsp_pub = Ecdsa.generate ~seed:("lsp:" ^ config.name) in
  let t = {
    cfg = config;
    clock;
    store;
    journal_stream = Stream_store.stream store "journals";
    survival_stream = Stream_store.stream store "survival";
    slots = Array.make 64 dummy_slot;
    count = 0;
    fam = Fam.create ~delta:config.fam_delta;
    cm = Cm_tree.create ();
    world_state = Accumulator.create ();
    blocks = [];
    block_count = 0;
    pending_txs = [];
    occult_bits = Bitmap_index.create ();
    occult_pending = [];
    registry = Roles.create_registry ();
    lsp_priv;
    lsp_pub;
    lsp_id = Ecdsa.public_key_id lsp_pub;
    t_ledger;
    tsa;
    clue_index = Hashtbl.create 64;
    state_index = Hashtbl.create 64;
    query = Query_index.create ();
    time_journals = [];
    pseudo_genesis_jsn = None;
    survivor_jsns = [];
    nonce = 0;
    on_mutate = [];
    view = Atomic.make None;
    view_epoch = 0;
  }
  in
  publish t;
  t

let on_mutate t f = t.on_mutate <- f :: t.on_mutate
let notify_mutation t = List.iter (fun f -> f ()) t.on_mutate

let config t = t.cfg
let clock t = t.clock
let uri t = "ledger://" ^ t.cfg.name
let registry t = t.registry
let lsp_public_key t = t.lsp_pub
let register_member t ?certificate ~name ~role pub =
  (match t.cfg.member_ca with
  | Some ca_pub -> (
      match certificate with
      | Some cert when Roles.verify_certificate ~ca_pub pub cert -> ()
      | Some _ ->
          invalid_arg ("Ledger.register_member: invalid certificate for " ^ name)
      | None ->
          invalid_arg
            ("Ledger.register_member: this ledger requires CA-certified \
              members (" ^ name ^ ")"))
  | None -> ());
  let member = Roles.register t.registry ~name ~role pub in
  (match certificate with
  | Some cert -> Roles.record_certificate t.registry cert
  | None -> ());
  publish t;
  member

let new_member ?ca_priv t ~name ~role =
  let priv, pub = Ecdsa.generate ~seed:(t.cfg.name ^ ":" ^ name) in
  let certificate = Option.map (fun ca_priv -> Roles.certify ~ca_priv pub) ca_priv in
  (register_member t ?certificate ~name ~role pub, priv)

let sign_with_profile t ~priv ~pub digest =
  Crypto_profile.sign t.cfg.crypto t.clock ~priv ~pub digest

let verify_with_profile t ~pub digest signature =
  Crypto_profile.verify t.cfg.crypto t.clock ~pub digest signature

(* Pure check — no clock charge — for pooled batch verification; the
   caller charges with {!Crypto_profile.charge_verify} in submission
   order to keep the simulated clock byte-identical. *)
let check_with_profile t ~pub digest signature =
  Crypto_profile.check t.cfg.crypto ~pub digest signature

let size t = t.count
let store_healthy t = Stream_store.healthy t.store
let backing_store t = t.store

let slot t jsn =
  if jsn < 0 || jsn >= t.count then
    invalid_arg (Printf.sprintf "Ledger: jsn %d out of range [0,%d)" jsn t.count);
  t.slots.(jsn)

let journal t jsn = (slot t jsn).journal
let tx_hash_of t jsn = (slot t jsn).tx

let payload t jsn =
  let s = slot t jsn in
  if s.store_index < 0 then None
  else
    Stream_store.read_opt
      ~latency:(t.cfg.latency, t.clock)
      t.journal_stream s.store_index

let iter_journals t f =
  for i = 0 to t.count - 1 do
    f t.slots.(i).journal
  done

(* --- block building ---------------------------------------------------- *)

let latest_block_hash t =
  match t.blocks with [] -> Hash.zero | b :: _ -> Block.hash b

let seal_block t =
  if t.pending_txs <> [] then begin
    let txs = List.rev t.pending_txs in
    let count = List.length txs in
    let block =
      {
        Block.height = t.block_count;
        start_jsn = t.count - count;
        count;
        prev_hash = latest_block_hash t;
        journal_commitment = Fam.commitment t.fam;
        clue_root = Cm_tree.root_hash t.cm;
        world_state_root =
          (if Accumulator.size t.world_state = 0 then Hash.zero
           else Accumulator.root t.world_state);
        tx_root = Merkle_tree.root (Merkle_tree.build txs);
        timestamp = Clock.now t.clock;
      }
    in
    t.blocks <- block :: t.blocks;
    t.block_count <- t.block_count + 1;
    t.pending_txs <- [];
    publish t;
    Metrics.incr "ledger_blocks_sealed_total";
    Log.debug (fun m ->
        m "sealed block %d (%d journals, clue root %s)" block.Block.height
          count
          (Hash.short_hex block.Block.clue_root))
  end

let block_count t = t.block_count

let block t h =
  if h < 0 || h >= t.block_count then invalid_arg "Ledger.block: out of range";
  List.nth t.blocks (t.block_count - 1 - h)

let blocks t = List.rev t.blocks

(* --- journal commitment ------------------------------------------------ *)

let ensure_slot_capacity t =
  if t.count >= Array.length t.slots then begin
    let bigger = Array.make (2 * Array.length t.slots) t.slots.(0) in
    Array.blit t.slots 0 bigger 0 t.count;
    t.slots <- bigger
  end

(* Commit a fully formed journal: storage, fam, CM-Tree, world-state,
   block fill.  Returns the slot. *)
(* CM-Tree, cSL skip list and world-state entries for one journal —
   shared by the sequential and batched commit paths. *)
let index_clues t (j : Journal.t) tx =
  List.iter
    (fun clue ->
      ignore (Cm_tree.insert t.cm ~clue tx);
      let index =
        match Hashtbl.find_opt t.clue_index clue with
        | Some sl -> sl
        | None ->
            let sl = Cm_tree_index.create () in
            Hashtbl.replace t.clue_index clue sl;
            sl
      in
      Cm_tree_index.append index j.Journal.jsn;
      Query_index.add t.query ~clue ~jsn:j.Journal.jsn ~tx;
      (* world-state: one entry per clue-state transition *)
      let leaf_index =
        Accumulator.append t.world_state (Hash.combine (Hash.scatter clue) tx)
      in
      (match Hashtbl.find_opt t.state_index clue with
      | Some r -> r := leaf_index :: !r
      | None -> Hashtbl.replace t.state_index clue (ref [ leaf_index ])))
    j.Journal.clues

let install_slot t (j : Journal.t) ~tx ~store_index =
  ensure_slot_capacity t;
  let s = { journal = j; tx; store_index; request_hash = j.Journal.request_hash } in
  t.slots.(t.count) <- s;
  t.count <- t.count + 1;
  index_clues t j tx;
  t.pending_txs <- tx :: t.pending_txs;
  (match j.Journal.kind with
  | Journal.Time _ -> t.time_journals <- j.Journal.jsn :: t.time_journals
  | _ -> ());
  Metrics.incr "ledger_appends_total";
  Metrics.observe_int "ledger_payload_bytes" (Bytes.length j.Journal.payload);
  s

let commit_journal t (j : Journal.t) =
  let sp = Trace.enter "ledger.commit" in
  Trace.attr_int sp "jsn" j.Journal.jsn;
  let sp_persist = Trace.enter "persist" in
  let store_index = Stream_store.append t.journal_stream j.Journal.payload in
  Trace.exit sp_persist;
  let tx = Journal.tx_hash j in
  let sp_acc = Trace.enter "accumulate" in
  ignore (Fam.append t.fam tx);
  let s = install_slot t j ~tx ~store_index in
  Trace.exit sp_acc;
  if List.length t.pending_txs >= t.cfg.block_size then seal_block t;
  publish t;
  Trace.exit sp;
  s

(* Batched commit: one storage append and one fam accumulation per chunk,
   at most one seal per filled block.  Chunks end exactly at block
   boundaries so every auto-seal captures the same accumulator state a
   sequential replay would have — batched and unbatched histories stay
   byte-identical (locked down by test_batch_diff). *)
let commit_batch ?(pool = Domain_pool.sequential) t journals =
  let sp = Trace.enter "ledger.flush_batch" in
  Trace.attr_int sp "batch_size" (List.length journals);
  let rec split_at n acc = function
    | rest when n = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | j :: rest -> split_at (n - 1) (j :: acc) rest
  in
  let rec go acc = function
    | [] -> List.rev acc
    | js ->
        let room = t.cfg.block_size - List.length t.pending_txs in
        if room <= 0 then begin
          seal_block t;
          go acc js
        end
        else begin
          let chunk, rest = split_at (min room (List.length js)) [] js in
          let sp_persist = Trace.enter "persist" in
          let first_store =
            Stream_store.append_many t.journal_stream
              (List.map (fun (j : Journal.t) -> j.Journal.payload) chunk)
          in
          Trace.exit sp_persist;
          (* leaf hashing is pure per journal: fan it out, keep order *)
          let txs =
            Domain_pool.map_list pool ~label:"tx_hash" ~min_chunk:8
              Journal.tx_hash chunk
          in
          let sp_acc = Trace.enter "accumulate" in
          ignore (Fam.append_many ~pool t.fam txs);
          let slots =
            List.map2
              (fun (j : Journal.t) (tx, k) ->
                install_slot t j ~tx ~store_index:(first_store + k))
              chunk
              (List.mapi (fun k tx -> (tx, k)) txs)
          in
          Trace.exit sp_acc;
          if List.length t.pending_txs >= t.cfg.block_size then seal_block t;
          go (List.rev_append slots acc) rest
        end
  in
  let slots = go [] journals in
  publish t;
  Metrics.incr "ledger_batch_appends_total";
  Metrics.observe_int "ledger_batch_size" (List.length journals);
  Trace.exit sp;
  slots

let make_receipt t s =
  Metrics.incr "ledger_receipts_issued_total";
  let block_hash =
    (* final only when the journal's block is sealed *)
    let rec find = function
      | [] -> Hash.zero
      | (b : Block.t) :: rest ->
          if
            s.journal.Journal.jsn >= b.Block.start_jsn
            && s.journal.Journal.jsn < b.Block.start_jsn + b.Block.count
          then Block.hash b
          else find rest
    in
    find t.blocks
  in
  let timestamp = Clock.now t.clock in
  let digest =
    Receipt.signing_digest ~jsn:s.journal.Journal.jsn
      ~request_hash:s.request_hash ~tx_hash:s.tx ~block_hash ~timestamp
  in
  {
    Receipt.jsn = s.journal.Journal.jsn;
    request_hash = s.request_hash;
    tx_hash = s.tx;
    block_hash;
    timestamp;
    lsp_sig = sign_with_profile t ~priv:t.lsp_priv ~pub:t.lsp_pub digest;
  }

let append t ~member ~priv ?(cosigners = []) ?(clues = []) payload_bytes =
  (match Roles.find t.registry member.Roles.id with
  | Some _ -> ()
  | None -> invalid_arg "Ledger.append: unknown member");
  let sp = Trace.enter "ledger.append" in
  Trace.attr_int sp "jsn" t.count;
  let client_ts = Clock.now t.clock in
  t.nonce <- t.nonce + 1;
  (* phase 1: client signs the request (π_c) *)
  let request_hash =
    Journal.request_digest ~ledger_uri:(uri t) ~kind_tag:"normal"
      ~payload:payload_bytes ~clues ~client_ts ~nonce:t.nonce
  in
  let sp_sign = Trace.enter "sign" in
  let client_sig =
    sign_with_profile t ~priv ~pub:member.Roles.pub request_hash
  in
  let cosigs =
    List.map
      (fun (m, p) ->
        (m.Roles.id, sign_with_profile t ~priv:p ~pub:m.Roles.pub request_hash))
      cosigners
  in
  Trace.exit sp_sign;
  (* phase 2: proxy ships payload to shared storage, digest to server *)
  Latency_model.charge_net t.cfg.latency t.clock;
  (* server checks π_c before committing (threat-A defence) *)
  let sp_pi_c = Trace.enter "verify_pi_c" in
  let pi_c_ok = verify_with_profile t ~pub:member.Roles.pub request_hash client_sig in
  Trace.exit sp_pi_c;
  if not pi_c_ok then begin
    Trace.exit sp;
    invalid_arg "Ledger.append: bad client signature"
  end;
  let j =
    {
      Journal.jsn = t.count;
      kind = Journal.Normal;
      client_id = member.Roles.id;
      payload = payload_bytes;
      clues;
      client_ts;
      server_ts = Clock.now t.clock;
      nonce = t.nonce;
      request_hash;
      client_sig = Some client_sig;
      cosigners = cosigs;
    }
  in
  let s = commit_journal t j in
  (* phase 3: LSP receipt (π_s) *)
  let r = make_receipt t s in
  Trace.exit sp;
  r

(* Fig. 1's actual service path: the client signed the request remotely
   and ships (payload, metadata, pi_c); the server re-derives the request
   hash, checks the signature, and commits. *)
let append_signed t ~member_id ~payload ~clues ~client_ts ~nonce ~signature =
  match Roles.find t.registry member_id with
  | None -> Error "append: unknown member"
  | Some member ->
      let request_hash =
        Journal.request_digest ~ledger_uri:(uri t) ~kind_tag:"normal" ~payload
          ~clues ~client_ts ~nonce
      in
      Latency_model.charge_net t.cfg.latency t.clock;
      if not (verify_with_profile t ~pub:member.Roles.pub request_hash signature)
      then Error "append: bad client signature"
      else begin
        let j =
          {
            Journal.jsn = t.count;
            kind = Journal.Normal;
            client_id = member_id;
            payload;
            clues;
            client_ts;
            server_ts = Clock.now t.clock;
            nonce;
            request_hash;
            client_sig = Some signature;
            cosigners = [];
          }
        in
        let s = commit_journal t j in
        Ok (make_receipt t s)
      end

(* Batched append: one network round trip, one storage append, one fam
   accumulation and (with [seal]) one trailing block seal for the whole
   batch — the ingestion path behind LedgerDB's 300K+ TPS claim. *)
let append_batch ?(pool = Domain_pool.default ()) t ~member ~priv
    ?(seal = true) entries =
  (match Roles.find t.registry member.Roles.id with
  | Some _ -> ()
  | None -> invalid_arg "Ledger.append_batch: unknown member");
  Latency_model.charge_net t.cfg.latency t.clock;
  let journals =
    List.mapi
      (fun i (payload_bytes, clues) ->
        let client_ts = Clock.now t.clock in
        t.nonce <- t.nonce + 1;
        let request_hash =
          Journal.request_digest ~ledger_uri:(uri t) ~kind_tag:"normal"
            ~payload:payload_bytes ~clues ~client_ts ~nonce:t.nonce
        in
        let client_sig =
          sign_with_profile t ~priv ~pub:member.Roles.pub request_hash
        in
        (* the π_c *decision* is deferred to one pooled pass below; only
           its clock charge stays here so server_ts is byte-identical to
           the sequential sign-verify interleaving *)
        Crypto_profile.charge_verify t.cfg.crypto t.clock;
        {
          Journal.jsn = t.count + i;
          kind = Journal.Normal;
          client_id = member.Roles.id;
          payload = payload_bytes;
          clues;
          client_ts;
          server_ts = Clock.now t.clock;
          nonce = t.nonce;
          request_hash;
          client_sig = Some client_sig;
          cosigners = [];
        })
      entries
  in
  let checks =
    Domain_pool.map_list pool ~label:"sig_check" ~min_chunk:2
      (fun (j : Journal.t) ->
        match j.Journal.client_sig with
        | Some s ->
            check_with_profile t ~pub:member.Roles.pub j.Journal.request_hash s
        | None -> false)
      journals
  in
  if List.exists not checks then
    invalid_arg "Ledger.append_batch: bad client signature";
  let slots = commit_batch ~pool t journals in
  if seal then seal_block t;
  List.map (make_receipt t) slots

(* Remote batched append (the [Append_batch] wire request): every entry
   was signed client-side; the whole batch is validated before anything
   commits, so a bad signature rejects the batch atomically. *)
let append_signed_batch ?(pool = Domain_pool.default ()) t ~member_id entries =
  match Roles.find t.registry member_id with
  | None -> Error "append_batch: unknown member"
  | Some member ->
      Latency_model.charge_net t.cfg.latency t.clock;
      (* pooled pre-pass: re-derive every request digest and decide every
         π_c purely, before any state mutation.  Clock charges and
         journal construction stay sequential below, in submission
         order, so accepted histories — and the clock at the moment a
         bad entry rejects the batch — are byte-identical to the
         sequential validation loop. *)
      let checked =
        Domain_pool.map_list pool ~label:"sig_check" ~min_chunk:2
          (fun (payload, clues, client_ts, nonce, signature) ->
            let request_hash =
              Journal.request_digest ~ledger_uri:(uri t) ~kind_tag:"normal"
                ~payload ~clues ~client_ts ~nonce
            in
            ( request_hash,
              check_with_profile t ~pub:member.Roles.pub request_hash signature
            ))
          entries
      in
      let rec validate i acc entries checked =
        match (entries, checked) with
        | [], [] -> Ok (List.rev acc)
        | ( (payload, clues, client_ts, nonce, signature) :: rest,
            (request_hash, ok) :: checked_rest ) ->
            Crypto_profile.charge_verify t.cfg.crypto t.clock;
            if not ok then
              Error
                (Printf.sprintf "append_batch: bad client signature (entry %d)"
                   i)
            else
              let j =
                {
                  Journal.jsn = t.count + i;
                  kind = Journal.Normal;
                  client_id = member_id;
                  payload;
                  clues;
                  client_ts;
                  server_ts = Clock.now t.clock;
                  nonce;
                  request_hash;
                  client_sig = Some signature;
                  cosigners = [];
                }
              in
              validate (i + 1) (j :: acc) rest checked_rest
        | _ -> assert false (* same length by construction *)
      in
      (match validate 0 [] entries checked with
      | Error _ as e -> e
      | Ok journals ->
          let slots = commit_batch ~pool t journals in
          seal_block t;
          Ok (List.map (make_receipt t) slots))

let get_receipt t jsn = make_receipt t (slot t jsn)

let verify_receipt t (r : Receipt.t) =
  let sp = Trace.enter "verify.receipt" in
  Trace.attr_int sp "jsn" r.Receipt.jsn;
  let t0 = if Obs.enabled () then Clock.now t.clock else 0L in
  let digest =
    Receipt.signing_digest ~jsn:r.Receipt.jsn ~request_hash:r.Receipt.request_hash
      ~tx_hash:r.Receipt.tx_hash ~block_hash:r.Receipt.block_hash
      ~timestamp:r.Receipt.timestamp
  in
  let ok = verify_with_profile t ~pub:t.lsp_pub digest r.Receipt.lsp_sig in
  if Obs.enabled () then begin
    Metrics.observe "verify_latency_us"
      (Int64.to_float (Int64.sub (Clock.now t.clock) t0));
    Audit_log.record ~verifier:"server" (Receipt r.Receipt.jsn)
      (if ok then Audit_log.Verified
       else Audit_log.Repudiated "bad LSP signature on receipt")
  end;
  Trace.exit sp;
  ok

(* --- existence verification -------------------------------------------- *)

let commitment t = Fam.commitment t.fam

let get_proof t jsn =
  let p = Fam.prove t.fam jsn in
  (* encoding the proof to count bytes is itself work, so only do it when
     a sink is recording *)
  if Obs.enabled () then begin
    Metrics.incr "ledger_proofs_served_total";
    let w = Wire.writer () in
    Proof_codec.w_fam_proof w p;
    Metrics.observe_int "ledger_proof_bytes" (Bytes.length (Wire.contents w))
  end;
  p

let verify_existence t ~jsn ~payload_digest proof =
  let sp = Trace.enter "verify.existence" in
  Trace.attr_int sp "jsn" jsn;
  let t0 = if Obs.enabled () then Clock.now t.clock else 0L in
  let ok =
    jsn >= 0 && jsn < t.count
    &&
    let leaf = tx_hash_of t jsn in
    Fam.verify ~commitment:(commitment t) ~leaf proof
    &&
    match payload_digest with
    | None -> true
    | Some d -> (
        match payload t jsn with
        | Some p -> Hash.equal (Hash.digest_bytes p) d
        | None -> false)
  in
  if Obs.enabled () then begin
    Metrics.observe "verify_latency_us"
      (Int64.to_float (Int64.sub (Clock.now t.clock) t0));
    Audit_log.record ~verifier:"server" (Journal jsn)
      (if ok then Audit_log.Verified
       else Audit_log.Repudiated "existence proof failed")
  end;
  Trace.exit sp;
  ok

let make_anchor t = Fam.make_anchor t.fam

let prove_extension t ~old_size = Fam.prove_extension t.fam ~old_size

let verify_extension t ~old_size ~old_peaks proof =
  let ok =
    Fam.verify_extension ~delta:t.cfg.fam_delta ~old_size ~old_peaks
      ~new_size:t.count ~new_commitment:(commitment t) proof
  in
  Audit_log.record ~verifier:"server"
    (Extension { old_size; new_size = t.count })
    (if ok then Audit_log.Verified
     else Audit_log.Repudiated "extension proof failed");
  ok
let get_proof_anchored t anchor jsn = Fam.prove_anchored t.fam anchor jsn

let verify_anchored t anchor ~leaf proof =
  Fam.verify_anchored anchor ~current_commitment:(commitment t) ~leaf proof

(* --- clues -------------------------------------------------------------- *)

let cm_tree t = t.cm
let query_index t = t.query
let query_root t = Query_index.root t.query

let clue_jsns t clue =
  match Hashtbl.find_opt t.clue_index clue with
  | Some sl -> Cm_tree_index.to_list sl
  | None -> []

let clue_jsns_in_range t clue ~lo ~hi =
  match Hashtbl.find_opt t.clue_index clue with
  | Some sl -> Cm_tree_index.range sl ~lo ~hi
  | None -> []

let clue_entries t clue = Cm_tree.entries t.cm ~clue

let prove_clue t ~clue ?first ?last () =
  Cm_tree.prove_clue t.cm ~clue ?first ?last ()

let verify_clue_client t (proof : Cm_tree.clue_proof) =
  (* The client retrieves the journals in range, recomputes digests, and
     replays both layers against the latest committed clue root. *)
  let jsns = clue_jsns t proof.Cm_tree.clue in
  let first, last = proof.Cm_tree.version_range in
  let known = ref [] and ok = ref true in
  List.iteri
    (fun version jsn ->
      if version >= first && version <= last then begin
        match payload t jsn with
        | Some _ -> known := (version, tx_hash_of t jsn) :: !known
        | None ->
            (* occulted journal: Protocol 2 — use the retained hash *)
            known := (version, tx_hash_of t jsn) :: !known
      end)
    jsns;
  let root =
    match t.blocks with
    | b :: _ -> b.Block.clue_root
    | [] -> Cm_tree.root_hash t.cm
  in
  (* If the trie advanced since the last sealed block, fall back to the
     live root (a real client would request a fresh block commit). *)
  let live_root = Cm_tree.root_hash t.cm in
  let result =
    !ok
    && (Cm_tree.verify_clue ~root:live_root ~known:!known proof
       || Cm_tree.verify_clue ~root ~known:!known proof)
  in
  Audit_log.record ~verifier:"client" (Clue proof.Cm_tree.clue)
    (if result then Audit_log.Verified
     else Audit_log.Repudiated "clue proof failed");
  result

let verify_clue_server t ~clue =
  let jsns = clue_jsns t clue in
  let known = List.mapi (fun version jsn -> (version, tx_hash_of t jsn)) jsns in
  let ok = known <> [] && Cm_tree.verify_clue_server t.cm ~known ~clue in
  Audit_log.record ~verifier:"server" (Clue clue)
    (if ok then Audit_log.Verified
     else Audit_log.Repudiated "server clue replay failed");
  ok

(* ListTx (§IV-A): filtered journal retrieval. *)
type tx_filter = {
  by_clue : string option;
  by_member : Hash.t option;
  after_ts : int64 option;
  before_ts : int64 option;
  kinds : string list option; (* Journal.kind_tag values *)
}

let any_tx =
  { by_clue = None; by_member = None; after_ts = None; before_ts = None;
    kinds = None }

let list_tx t ?(filter = any_tx) ?(limit = max_int) () =
  (* start from the clue index when a clue filter is present *)
  let candidates =
    match filter.by_clue with
    | Some clue -> clue_jsns t clue
    | None -> List.init t.count Fun.id
  in
  let matches jsn =
    let j = (slot t jsn).journal in
    (match filter.by_member with
    | Some id -> Hash.equal id j.Journal.client_id
    | None -> true)
    && (match filter.after_ts with
       | Some ts -> Int64.compare j.Journal.server_ts ts >= 0
       | None -> true)
    && (match filter.before_ts with
       | Some ts -> Int64.compare j.Journal.server_ts ts < 0
       | None -> true)
    && (match filter.kinds with
       | Some tags -> List.mem (Journal.kind_tag j.Journal.kind) tags
       | None -> true)
  in
  let rec take acc n = function
    | [] -> List.rev acc
    | jsn :: rest ->
        if n = 0 then List.rev acc
        else if matches jsn then take (jsn :: acc) (n - 1) rest
        else take acc n rest
  in
  take [] limit candidates

(* --- world-state (single-layer state accumulator, Fig. 2) ------------------ *)

let world_state_root t =
  if Accumulator.size t.world_state = 0 then None
  else Some (Accumulator.root t.world_state)

let world_state_size t = Accumulator.size t.world_state

let state_leaf ~clue ~tx = Hash.combine (Hash.scatter clue) tx

let prove_state_update t ~clue ~version =
  match Hashtbl.find_opt t.state_index clue with
  | None -> None
  | Some r ->
      let leaves = List.rev !r in
      (match List.nth_opt leaves version with
      | None -> None
      | Some leaf_index ->
          let jsns = clue_jsns t clue in
          (match List.nth_opt jsns version with
          | None -> None
          | Some jsn ->
              Some (jsn, Accumulator.prove t.world_state leaf_index)))

let verify_state_update t ~clue ~tx proof =
  match world_state_root t with
  | None -> false
  | Some root -> Accumulator.verify ~root ~leaf:(state_leaf ~clue ~tx) proof

(* --- time anchoring ----------------------------------------------------- *)

let system_journal t kind payload_bytes =
  let client_ts = Clock.now t.clock in
  t.nonce <- t.nonce + 1;
  let request_hash =
    Journal.request_digest ~ledger_uri:(uri t)
      ~kind_tag:(Journal.kind_tag kind) ~payload:payload_bytes ~clues:[]
      ~client_ts ~nonce:t.nonce
  in
  {
    Journal.jsn = t.count;
    kind;
    client_id = t.lsp_id;
    payload = payload_bytes;
    clues = [];
    client_ts;
    server_ts = Clock.now t.clock;
    nonce = t.nonce;
    request_hash;
    client_sig =
      Some (sign_with_profile t ~priv:t.lsp_priv ~pub:t.lsp_pub request_hash);
    cosigners = [];
  }

let anchor_via_t_ledger t =
  match t.t_ledger with
  | None -> invalid_arg "Ledger.anchor_via_t_ledger: no T-Ledger configured"
  | Some tl -> (
      let digest = commitment t in
      let client_ts = Clock.now t.clock in
      Latency_model.charge_net t.cfg.latency t.clock;
      match
        T_ledger.submit tl ~ledger_id:(Hash.digest_string (uri t)) ~digest
          ~client_ts
      with
      | Error e -> Error e
      | Ok entry ->
          let kind =
            Journal.Time
              (Journal.Via_t_ledger
                 { entry_index = entry.T_ledger.index; client_ts; digest })
          in
          let j = system_journal t kind Bytes.empty in
          ignore (commit_journal t j);
          Metrics.incr "ledger_time_anchors_total";
          Log.info (fun m ->
              m "anchored commitment %s to T-Ledger entry %d"
                (Hash.short_hex digest) entry.T_ledger.index);
          Ok j)

let anchor_via_tsa t =
  match t.tsa with
  | None -> invalid_arg "Ledger.anchor_via_tsa: no TSA pool configured"
  | Some pool ->
      let digest = commitment t in
      let token = Tsa.pool_endorse pool digest in
      let kind = Journal.Time (Journal.Direct_tsa token) in
      let j = system_journal t kind Bytes.empty in
      ignore (commit_journal t j);
      Metrics.incr "ledger_time_anchors_total";
      j

let time_journals t =
  List.rev_map (fun jsn -> (slot t jsn).journal) t.time_journals

let t_ledger t = t.t_ledger
let tsa_pool t = t.tsa

(* --- purge --------------------------------------------------------------- *)

type purge_request = {
  upto_jsn : int;
  survivors : int list;
  erase_fam_nodes : bool;
}

let affected_members t ~upto_jsn =
  let seen = Hashtbl.create 16 in
  for i = 0 to min upto_jsn t.count - 1 do
    let id = t.slots.(i).journal.Journal.client_id in
    if not (Hash.equal id t.lsp_id) then
      Hashtbl.replace seen (Hash.to_hex id) id
  done;
  Hashtbl.fold
    (fun _ id acc ->
      match Roles.find t.registry id with Some m -> m :: acc | None -> acc)
    seen []

let roster_digest t =
  let buf = Buffer.create 256 in
  List.iter
    (fun m -> Buffer.add_bytes buf (Hash.to_bytes m.Roles.id))
    (List.sort
       (fun a b -> Hash.compare a.Roles.id b.Roles.id)
       (Roles.members t.registry))
  |> ignore;
  Hash.digest_bytes (Buffer.to_bytes buf)

let purge t ~request ~signers =
  let { upto_jsn; survivors; erase_fam_nodes } = request in
  if upto_jsn <= 0 || upto_jsn > t.count then Error "purge point out of range"
  else begin
    (* Prerequisite 1: DBA + every affected member must sign. *)
    let required =
      (Roles.with_role t.registry Roles.Dba @ affected_members t ~upto_jsn)
      |> List.sort_uniq (fun a b -> Hash.compare a.Roles.id b.Roles.id)
    in
    let signer_ids =
      List.map (fun (m, _) -> Hash.to_hex m.Roles.id) signers
    in
    let missing =
      List.filter
        (fun m -> not (List.mem (Hash.to_hex m.Roles.id) signer_ids))
        required
    in
    if missing <> [] then
      Error
        ("purge: missing required signatures from "
        ^ String.concat ", " (List.map (fun m -> m.Roles.name) missing))
    else begin
      (* copy survivors into the survival stream before erasing *)
      let kept =
        List.filter_map
          (fun jsn ->
            if jsn >= 0 && jsn < upto_jsn then begin
              match
                Stream_store.read_opt t.journal_stream (slot t jsn).store_index
              with
              | Some p ->
                  let rec_ = Bytes.create (Bytes.length p + 16) in
                  let tag = Printf.sprintf "%015d\000" jsn in
                  Bytes.blit_string tag 0 rec_ 0 16;
                  Bytes.blit p 0 rec_ 16 (Bytes.length p);
                  ignore (Stream_store.append t.survival_stream rec_);
                  Some jsn
              | None -> None
            end
            else None)
          survivors
      in
      t.survivor_jsns <- kept @ t.survivor_jsns;
      (* pseudo-genesis first, then the doubly-linked purge journal *)
      let pg_jsn = t.count in
      let purge_jsn = pg_jsn + 1 in
      let snapshot =
        {
          Journal.replaced_purge_jsn = purge_jsn;
          fam_commitment = commitment t;
          clue_root = Cm_tree.root_hash t.cm;
          member_roster = roster_digest t;
        }
      in
      let pg = system_journal t (Journal.Pseudo_genesis snapshot) Bytes.empty in
      ignore (commit_journal t pg);
      let info =
        { Journal.purge_upto = upto_jsn; pseudo_genesis_jsn = pg_jsn;
          survivors = kept }
      in
      let pj = system_journal t (Journal.Purge info) Bytes.empty in
      (* gather the multi-signature over the purge journal's request *)
      let cosigs =
        List.map
          (fun (m, p) ->
            ( m.Roles.id,
              sign_with_profile t ~priv:p ~pub:m.Roles.pub
                pj.Journal.request_hash ))
          signers
      in
      let pj = { pj with Journal.cosigners = cosigs } in
      ignore (commit_journal t pj);
      (* physical erasure *)
      for i = 0 to upto_jsn - 1 do
        if not (List.mem i kept) && t.slots.(i).store_index >= 0 then begin
          Stream_store.erase t.journal_stream t.slots.(i).store_index;
          let s = t.slots.(i) in
          t.slots.(i) <-
            { s with journal = { s.journal with Journal.payload = Bytes.empty } }
        end
      done;
      if erase_fam_nodes then begin
        let e, _ = Fam.epoch_of_jsn t.fam (upto_jsn - 1) in
        Fam.purge_epochs_before t.fam e
      end;
      t.pseudo_genesis_jsn <- Some pg_jsn;
      seal_block t;
      publish t;
      notify_mutation t;
      Metrics.incr "ledger_purges_total";
      Log.info (fun m ->
          m "purged journals [0,%d) with %d survivors; pseudo-genesis at %d"
            upto_jsn (List.length kept) pg_jsn);
      Ok pj
    end
  end

let pseudo_genesis t =
  Option.map (fun jsn -> (slot t jsn).journal) t.pseudo_genesis_jsn

let survival_jsns t = List.sort compare t.survivor_jsns

let read_survivor t jsn =
  let found = ref None in
  Stream_store.iter t.survival_stream (fun _ rec_ ->
      if Bytes.length rec_ >= 16 then begin
        match int_of_string_opt (String.trim (Bytes.sub_string rec_ 0 15)) with
        | Some j when j = jsn ->
            found := Some (Bytes.sub rec_ 16 (Bytes.length rec_ - 16))
        | Some _ | None -> ()
      end);
  !found

(* --- occult --------------------------------------------------------------- *)

type occult_mode = Sync | Async

let occult t ~target_jsn ~mode ~signers ~reason =
  if target_jsn < 0 || target_jsn >= t.count then Error "occult: bad target"
  else if Bitmap_index.mem t.occult_bits target_jsn then
    Error "occult: already occulted"
  else begin
    (* Prerequisite 2: DBA and a regulator must sign. *)
    let has role =
      List.exists (fun (m, _) -> m.Roles.role = role) signers
    in
    if not (has Roles.Dba && has Roles.Regulator) then
      Error "occult: requires DBA and regulator signatures"
    else begin
      let retained_hash = tx_hash_of t target_jsn in
      let kind = Journal.Occult { target_jsn; retained_hash } in
      let j = system_journal t kind (Bytes.of_string reason) in
      let cosigs =
        List.map
          (fun (m, p) ->
            ( m.Roles.id,
              sign_with_profile t ~priv:p ~pub:m.Roles.pub
                j.Journal.request_hash ))
          signers
      in
      let j = { j with Journal.cosigners = cosigs } in
      ignore (commit_journal t j);
      Bitmap_index.set t.occult_bits target_jsn;
      Metrics.incr "ledger_occults_total";
      Log.info (fun m ->
          m "occulted journal %d (%s)" target_jsn
            (match mode with Sync -> "sync" | Async -> "async"));
      (match mode with
      | Sync ->
          let s = slot t target_jsn in
          Stream_store.erase t.journal_stream s.store_index;
          t.slots.(target_jsn) <-
            { s with journal = { s.journal with Journal.payload = Bytes.empty } }
      | Async -> t.occult_pending <- target_jsn :: t.occult_pending);
      publish t;
      notify_mutation t;
      Ok j
    end
  end

let is_occulted t jsn = Bitmap_index.mem t.occult_bits jsn

let occult_by_clue t ~clue ~mode ~signers ~reason =
  (* "occult by clue is a common case" (§III-A3): hide every journal the
     clue touches, in ascending jsn order, stopping on the first error. *)
  let targets =
    List.filter (fun jsn -> not (is_occulted t jsn)) (clue_jsns t clue)
  in
  if targets = [] then Error "occult_by_clue: no (remaining) journals for clue"
  else begin
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | jsn :: rest -> (
          match occult t ~target_jsn:jsn ~mode ~signers ~reason with
          | Ok j -> go (j :: acc) rest
          | Error e -> Error e)
    in
    go [] targets
  end

let reorganize t =
  let n = List.length t.occult_pending in
  List.iter
    (fun jsn ->
      let s = slot t jsn in
      Stream_store.erase t.journal_stream s.store_index;
      t.slots.(jsn) <-
        { s with journal = { s.journal with Journal.payload = Bytes.empty } })
    t.occult_pending;
  t.occult_pending <- [];
  if n > 0 then begin
    publish t;
    notify_mutation t
  end;
  n

(* --- introspection --------------------------------------------------------- *)

(* Reclaim storage slots of erased payloads (post-purge/occult): compact
   the journal stream and remap the surviving slots' storage addresses.
   The remapped slots go into a FRESH array (and the compaction itself
   swaps in a fresh record array), so a read snapshot taken before the
   compaction keeps a consistent pair — old slot addresses over the old
   pinned records — while new snapshots see the compacted layout. *)
let compact_storage t =
  let remap = Hashtbl.create 64 in
  let reclaimed =
    Stream_store.compact t.journal_stream (fun old_i new_i ->
        Hashtbl.replace remap old_i new_i)
  in
  let fresh = Array.make (Array.length t.slots) dummy_slot in
  for jsn = 0 to t.count - 1 do
    let s = t.slots.(jsn) in
    let store_index =
      match Hashtbl.find_opt remap s.store_index with
      | Some i -> i
      | None -> -1 (* erased record: no backing slot *)
    in
    fresh.(jsn) <- { s with store_index }
  done;
  t.slots <- fresh;
  publish t;
  reclaimed

let stored_digests t = Fam.stored_digests t.fam + Cm_tree.stored_digests t.cm
let journal_bytes t = Stream_store.total_bytes t.journal_stream

module Unsafe = struct
  let rewrite_payload t ~jsn payload_bytes =
    let s = slot t jsn in
    t.slots.(jsn) <-
      { s with journal = { s.journal with Journal.payload = payload_bytes } };
    publish t

  let rewrite_payload_consistent t ~jsn payload_bytes =
    let s = slot t jsn in
    let j = s.journal in
    let request_hash =
      Journal.request_digest ~ledger_uri:(uri t)
        ~kind_tag:(Journal.kind_tag j.Journal.kind) ~payload:payload_bytes
        ~clues:j.Journal.clues ~client_ts:j.Journal.client_ts
        ~nonce:j.Journal.nonce
    in
    let journal = { j with Journal.payload = payload_bytes; request_hash } in
    (* a self-consistent LSP also refreshes its claimed leaf digest *)
    t.slots.(jsn) <-
      { s with journal; request_hash; tx = Journal.tx_hash journal };
    publish t

  let forge_server_ts t ~jsn ts =
    let s = slot t jsn in
    t.slots.(jsn) <-
      { s with journal = { s.journal with Journal.server_ts = ts } };
    publish t
end

(* --- read snapshots --------------------------------------------------------- *)

(* Accessors over a published view.  Each mirrors the corresponding
   [Ledger] read accessor byte-for-byte (locked down by the differential
   gate in test_read_view), except that payload reads go through the
   stream pin (never the writer's latency clock) and receipts are signed
   with the pure profile against the pinned publication time. *)
module Read_view = struct
  type nonrec t = view

  let epoch v = v.v_epoch
  let name v = v.v_name
  let size v = v.v_size
  let block_count v = v.v_block_count
  let blocks v = List.rev v.v_blocks
  let members_wire v = v.v_members
  let pseudo_genesis_jsn v = v.v_pseudo_genesis
  let published_at v = v.v_now

  let block v h =
    if h < 0 || h >= v.v_block_count then
      invalid_arg "Ledger.block: out of range";
    List.nth v.v_blocks (v.v_block_count - 1 - h)

  let slot v jsn =
    if jsn < 0 || jsn >= v.v_size then
      invalid_arg
        (Printf.sprintf "Ledger: jsn %d out of range [0,%d)" jsn v.v_size);
    v.v_slots.(jsn)

  let journal v jsn = (slot v jsn).journal
  let tx_hash_of v jsn = (slot v jsn).tx

  let payload v jsn =
    let s = slot v jsn in
    if s.store_index < 0 then None
    else Stream_store.read_pinned v.v_store s.store_index

  let commitment v = Fam.commitment v.v_fam

  let get_proof v jsn =
    let p = Fam.prove v.v_fam jsn in
    if Obs.enabled () then begin
      Metrics.incr "ledger_proofs_served_total";
      let w = Wire.writer () in
      Proof_codec.w_fam_proof w p;
      Metrics.observe_int "ledger_proof_bytes" (Bytes.length (Wire.contents w))
    end;
    p

  let prove_extension v ~old_size = Fam.prove_extension v.v_fam ~old_size
  let cm_tree v = v.v_cm
  let clue_root v = Cm_tree.root_hash v.v_cm

  let prove_clue v ~clue ?first ?last () =
    Cm_tree.prove_clue v.v_cm ~clue ?first ?last ()

  let query_index v = v.v_query
  let query_root v = Query_index.root v.v_query

  let receipt v jsn =
    Metrics.incr "ledger_receipts_issued_total";
    let s = slot v jsn in
    let block_hash =
      let rec find = function
        | [] -> Hash.zero
        | (b : Block.t) :: rest ->
            if
              s.journal.Journal.jsn >= b.Block.start_jsn
              && s.journal.Journal.jsn < b.Block.start_jsn + b.Block.count
            then Block.hash b
            else find rest
      in
      find v.v_blocks
    in
    let timestamp = v.v_now in
    let digest =
      Receipt.signing_digest ~jsn:s.journal.Journal.jsn
        ~request_hash:s.request_hash ~tx_hash:s.tx ~block_hash ~timestamp
    in
    {
      Receipt.jsn = s.journal.Journal.jsn;
      request_hash = s.request_hash;
      tx_hash = s.tx;
      block_hash;
      timestamp;
      lsp_sig =
        Crypto_profile.sign_pure v.v_crypto ~priv:v.v_lsp_priv
          ~pub:v.v_lsp_pub digest;
    }
end

let view_epoch t = (read_view t).v_epoch

(* --- persistence ------------------------------------------------------------ *)

(* On-disk layout (directory):
     journals.ldb   one CRC-32 frame ({!Framing}) per record; the frame
                    payload is [32-byte tx][Journal_codec encoding] — the
                    retained tx hash comes first (Protocol 2: occulted
                    and purged journals cannot be re-hashed from content)
     members.ldb    one "role\thex-pubkey\tcert\tname" line per member
     blocks.ldb     one line per sealed block (all fields, hashes in hex)
     survivors.ldb  one CRC-32 frame per survivor record
     meta.ldb       name / size / nonce / commitment / clue root checkpoints

   The CRC framing lets [load] tell a torn tail (crash mid-save: the
   intact prefix is recoverable) from a corrupted record (checksum fails
   on a complete frame: the snapshot is refused with the first bad jsn).
   Above the framing, the replay re-derives every tree and compares the
   recorded checkpoints, so framing-valid but semantically tampered
   snapshots are still refused. *)

type load_report = {
  replayed : int;
  declared_size : int option;
  torn_tail : bool;
  dropped_bytes : int;
  blocks_dropped : int;
  checkpoint : [ `Verified | `Partial ];
}

let save t ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let in_dir f = Filename.concat dir f in
  let with_out name f =
    let oc = open_out_bin (in_dir name) in
    (try f oc with e -> close_out_noerr oc; raise e);
    close_out oc
  in
  with_out "journals.ldb" (fun oc ->
      for jsn = 0 to t.count - 1 do
        let s = t.slots.(jsn) in
        (* store the payload as it currently exists (erased => empty) *)
        let current_payload =
          if s.store_index < 0 then Bytes.empty
          else
            match Stream_store.read_opt t.journal_stream s.store_index with
            | Some p -> p
            | None -> Bytes.empty
        in
        let j = { s.journal with Journal.payload = current_payload } in
        let enc = Journal_codec.encode j in
        let frame = Bytes.create (32 + Bytes.length enc) in
        Bytes.blit (Hash.to_bytes s.tx) 0 frame 0 32;
        Bytes.blit enc 0 frame 32 (Bytes.length enc);
        Framing.write oc frame
      done);
  with_out "members.ldb" (fun oc ->
      List.iter
        (fun (m : Roles.member) ->
          let hex b =
            String.concat ""
              (List.init (Bytes.length b) (fun i ->
                   Printf.sprintf "%02x" (Char.code (Bytes.get b i))))
          in
          let pub_hex = hex (Ecdsa.public_key_to_bytes m.Roles.pub) in
          let cert_hex =
            match Roles.certificate_of t.registry m.Roles.id with
            | Some cert -> hex (Ecdsa.signature_to_bytes cert.Roles.signature)
            | None -> "-"
          in
          Printf.fprintf oc "%s\t%s\t%s\t%s\n"
            (Roles.role_to_string m.Roles.role)
            pub_hex cert_hex m.Roles.name)
        (Roles.members t.registry));
  with_out "blocks.ldb" (fun oc ->
      List.iter
        (fun (b : Block.t) ->
          Printf.fprintf oc "%d %d %d %s %s %s %s %s %Ld\n" b.Block.height
            b.Block.start_jsn b.Block.count
            (Hash.to_hex b.Block.prev_hash)
            (Hash.to_hex b.Block.journal_commitment)
            (Hash.to_hex b.Block.clue_root)
            (Hash.to_hex b.Block.world_state_root)
            (Hash.to_hex b.Block.tx_root)
            b.Block.timestamp)
        (blocks t));
  with_out "survivors.ldb" (fun oc ->
      Stream_store.iter t.survival_stream (fun _ rec_ -> Framing.write oc rec_));
  with_out "meta.ldb" (fun oc ->
      Printf.fprintf oc "name=%s\nsize=%d\nnonce=%d\ncommitment=%s\nclue_root=%s\npseudo_genesis=%s\n"
        t.cfg.name t.count t.nonce
        (if t.count = 0 then "" else Hash.to_hex (commitment t))
        (Hash.to_hex (Cm_tree.root_hash t.cm))
        (match t.pseudo_genesis_jsn with Some j -> string_of_int j | None -> "-"))

let parse_meta path =
  let ic = open_in path in
  let tbl = Hashtbl.create 8 in
  (try
     while true do
       let line = input_line ic in
       match String.index_opt line '=' with
       | Some i ->
           Hashtbl.replace tbl
             (String.sub line 0 i)
             (String.sub line (i + 1) (String.length line - i - 1))
       | None -> ()
     done
   with End_of_file -> close_in ic);
  tbl

let load_verbose ?(config = default_config) ?t_ledger ?tsa ?(recover = false)
    ~clock ~dir () =
  let in_dir f = Filename.concat dir f in
  try
    let meta = parse_meta (in_dir "meta.ldb") in
    let find k = Hashtbl.find_opt meta k in
    let t = create ~config ?t_ledger ?tsa ~clock () in
    (* members *)
    let ic = open_in (in_dir "members.ldb") in
    (try
       while true do
         let line = input_line ic in
         let parse_hex h =
           let b = Bytes.create (String.length h / 2) in
           for i = 0 to Bytes.length b - 1 do
             Bytes.set b i
               (Char.chr (int_of_string ("0x" ^ String.sub h (2 * i) 2)))
           done;
           b
         in
         match String.split_on_char '\t' line with
         | role :: pub_hex :: rest ->
             let cert_hex, name =
               match rest with
               | [ cert_hex; name ] -> (cert_hex, name)
               | [ name ] -> ("-", name) (* legacy two-column format *)
               | _ -> failwith "corrupt members record"
             in
             let role =
               match role with
               | "dba" -> Roles.Dba
               | "regulator" -> Roles.Regulator
               | _ -> Roles.Regular_user
             in
             (match Ecdsa.public_key_of_bytes (parse_hex pub_hex) with
             | Some pub ->
                 let certificate =
                   if cert_hex = "-" then None
                   else
                     match Ecdsa.signature_of_bytes (parse_hex cert_hex) with
                     | Some signature ->
                         Some
                           { Roles.subject = Ecdsa.public_key_id pub; signature }
                     | None -> failwith ("corrupt certificate for " ^ name)
                 in
                 ignore (register_member t ?certificate ~name ~role pub)
             | None -> failwith ("corrupt member key for " ^ name))
         | _ -> ()
       done
     with End_of_file -> close_in ic);
    (* journals: replay with retained tx hashes, suppressing auto-seal.
       Each frame is CRC-checked before any byte reaches the codec; the
       first complete-but-invalid frame names the first bad jsn and
       refuses the snapshot, while a torn final frame (crash mid-save)
       is recoverable when [recover] is set. *)
    let torn_tail = ref false in
    let dropped_bytes = ref 0 in
    let torn_at = ref None in
    let ic = open_in_bin (in_dir "journals.ldb") in
    (try
       let continue = ref true in
       while !continue do
         match Framing.read ic with
         | Framing.End -> continue := false
         | Framing.Corrupt { offset } ->
             failwith
               (Printf.sprintf
                  "journals.ldb: corrupt record at byte %d — first bad jsn %d"
                  offset t.count)
         | Framing.Torn { offset; dropped_bytes = db } ->
             if recover then begin
               torn_tail := true;
               dropped_bytes := db;
               torn_at := Some offset;
               continue := false
             end
             else
               failwith
                 (Printf.sprintf
                    "journals.ldb: torn tail after jsn %d (%d trailing bytes); \
                     recovery disabled"
                    (t.count - 1) db)
         | Framing.Record frame -> (
             if Bytes.length frame < 32 then
               failwith
                 (Printf.sprintf
                    "journals.ldb: short record — first bad jsn %d" t.count);
             let tx = Hash.of_bytes (Bytes.sub frame 0 32) in
             let enc = Bytes.sub frame 32 (Bytes.length frame - 32) in
             match Journal_codec.decode enc with
             | None ->
                 failwith
                   (Printf.sprintf
                      "journals.ldb: undecodable record — first bad jsn %d"
                      t.count)
             | Some j when j.Journal.jsn <> t.count ->
                 failwith
                   (Printf.sprintf
                      "journals.ldb: record claims jsn %d in slot %d — first \
                       bad jsn %d"
                      j.Journal.jsn t.count t.count)
             | Some j ->
             ensure_slot_capacity t;
             let store_index = Stream_store.append t.journal_stream j.Journal.payload in
             let s = { journal = j; tx; store_index; request_hash = j.Journal.request_hash } in
             t.slots.(t.count) <- s;
             t.count <- t.count + 1;
             ignore (Fam.append t.fam tx);
             List.iter
               (fun clue ->
                 ignore (Cm_tree.insert t.cm ~clue tx);
                 (match Hashtbl.find_opt t.clue_index clue with
                 | Some sl -> Cm_tree_index.append sl j.Journal.jsn
                 | None ->
                     let sl = Cm_tree_index.create () in
                     Cm_tree_index.append sl j.Journal.jsn;
                     Hashtbl.replace t.clue_index clue sl);
                 let leaf_index =
                   Accumulator.append t.world_state
                     (Hash.combine (Hash.scatter clue) tx)
                 in
                 match Hashtbl.find_opt t.state_index clue with
                 | Some r -> r := leaf_index :: !r
                 | None -> Hashtbl.replace t.state_index clue (ref [ leaf_index ]))
               j.Journal.clues;
             (match j.Journal.kind with
             | Journal.Time _ -> t.time_journals <- j.Journal.jsn :: t.time_journals
             | Journal.Occult { target_jsn; _ } ->
                 Bitmap_index.set t.occult_bits target_jsn
             | Journal.Pseudo_genesis _ ->
                 t.pseudo_genesis_jsn <- Some j.Journal.jsn
             | Journal.Normal | Journal.Purge _ -> ()))
       done;
       close_in ic
     with e ->
       close_in_noerr ic;
       raise e);
    (* a recovered torn tail is truncated off the file so the next
       save/load cycle starts from a sound prefix *)
    (match !torn_at with
    | Some keep -> Framing.truncate_file (in_dir "journals.ldb") ~keep
    | None -> ());
    (* blocks: restore verbatim (timestamps included, so hashes match).
       After a torn-tail recovery, blocks covering journals that did not
       survive are dropped — they will be re-sealed as the ledger grows
       back. *)
    let ic = open_in (in_dir "blocks.ldb") in
    let covered = ref 0 in
    let blocks_dropped = ref 0 in
    (try
       while true do
         let line = input_line ic in
         Scanf.sscanf line "%d %d %d %s %s %s %s %s %Ld"
           (fun height start_jsn count prev jc cr wsr txr timestamp ->
             let b =
               { Block.height; start_jsn; count;
                 prev_hash = Hash.of_hex prev;
                 journal_commitment = Hash.of_hex jc;
                 clue_root = Hash.of_hex cr;
                 world_state_root = Hash.of_hex wsr;
                 tx_root = Hash.of_hex txr; timestamp }
             in
             if !torn_tail && start_jsn + count > t.count then
               incr blocks_dropped
             else begin
               t.blocks <- b :: t.blocks;
               t.block_count <- t.block_count + 1;
               covered := start_jsn + count
             end)
       done
     with End_of_file -> close_in ic);
    (* the tail journals (unsealed at save time) re-enter the open block *)
    t.pending_txs <- [];
    for jsn = t.count - 1 downto !covered do
      t.pending_txs <- t.slots.(jsn).tx :: t.pending_txs
    done;
    t.pending_txs <- List.rev t.pending_txs;
    (* survivors *)
    let surv = in_dir "survivors.ldb" in
    if Sys.file_exists surv then begin
      let ic = open_in_bin surv in
      let add rec_ =
        ignore (Stream_store.append t.survival_stream rec_);
        if Bytes.length rec_ >= 16 then
          match int_of_string_opt (String.trim (Bytes.sub_string rec_ 0 15)) with
          | Some jsn -> t.survivor_jsns <- jsn :: t.survivor_jsns
          | None -> ()
      in
      (try
         let continue = ref true in
         while !continue do
           match Framing.read ic with
           | Framing.End -> continue := false
           | Framing.Record rec_ -> add rec_
           | Framing.Corrupt { offset } ->
               failwith
                 (Printf.sprintf "survivors.ldb: corrupt record at byte %d"
                    offset)
           | Framing.Torn { dropped_bytes = db; _ } ->
               if recover then begin
                 torn_tail := true;
                 dropped_bytes := !dropped_bytes + db;
                 continue := false
               end
               else
                 failwith
                   (Printf.sprintf
                      "survivors.ldb: torn tail (%d trailing bytes); recovery \
                       disabled"
                      db)
         done;
         close_in ic
       with e ->
         close_in_noerr ic;
         raise e)
    end;
    (* Re-derive each journal's leaf from its content.  A mismatch with a
       non-empty payload is tampering; with an empty payload it marks a
       record whose payload was erased (occult/purge) before the save. *)
    for jsn = 0 to t.count - 1 do
      let s = t.slots.(jsn) in
      if not (Hash.equal (Journal.tx_hash s.journal) s.tx) then begin
        if Bytes.length s.journal.Journal.payload = 0 then
          Stream_store.erase t.journal_stream s.store_index
        else
          failwith
            (Printf.sprintf
               "journal %d: content does not match its retained leaf" jsn)
      end
    done;
    (match find "nonce" with
    | Some n -> t.nonce <- int_of_string n
    | None -> ());
    (* integrity checkpoints.  After a torn-tail recovery the replayed
       prefix is shorter than the declared size, so the recorded
       commitment/clue-root cannot reproduce: the load still succeeds but
       the report says [`Partial] — callers must re-verify against an
       external anchor (T-Ledger entry, receipts) before trusting it. *)
    let declared_size = Option.map int_of_string (find "size") in
    let partial =
      !torn_tail
      && match declared_size with Some n -> t.count < n | None -> false
    in
    if not partial then begin
      (match declared_size with
      | Some n when n <> t.count ->
          failwith
            (Printf.sprintf "size mismatch: meta says %d, replayed %d" n
               t.count)
      | Some _ | None -> ());
      (match find "commitment" with
      | Some hex when hex <> "" && t.count > 0 ->
          if not (Hash.equal (Hash.of_hex hex) (commitment t)) then
            failwith "commitment mismatch after replay"
      | Some _ | None -> ());
      match find "clue_root" with
      | Some hex ->
          if not (Hash.equal (Hash.of_hex hex) (Cm_tree.root_hash t.cm)) then
            failwith "clue root mismatch after replay"
      | None -> ()
    end;
    Metrics.incr "ledger_loads_total";
    if !torn_tail then Metrics.incr "ledger_recovered_journals_total";
    Audit_log.record ~verifier:"loader" (Commitment t.count)
      (if partial then
         Audit_log.Degraded "torn tail: checkpoint not reproducible"
       else Audit_log.Verified);
    publish t;
    Ok
      ( t,
        { replayed = t.count; declared_size; torn_tail = !torn_tail;
          dropped_bytes = !dropped_bytes; blocks_dropped = !blocks_dropped;
          checkpoint = (if partial then `Partial else `Verified) } )
  with
  | Failure msg -> Error msg
  | Sys_error msg -> Error msg
  | Scanf.Scan_failure msg -> Error ("blocks.ldb: " ^ msg)
  | Stream_store.Read_error e -> Error (Stream_store.read_error_to_string e)
  | End_of_file -> Error "unexpected end of file"

let load ?config ?t_ledger ?tsa ~clock ~dir () =
  Result.map fst (load_verbose ?config ?t_ledger ?tsa ~recover:false ~clock ~dir ())
