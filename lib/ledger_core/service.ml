open Ledger_crypto
open Ledger_cmtree
open Ledger_merkle
module Range_query = Ledger_query.Range_query

type request =
  | Append of {
      member_id : Hash.t;
      payload : bytes;
      clues : string list;
      client_ts : int64;
      nonce : int;
      signature : Ecdsa.signature;
    }
  | Append_batch of {
      member_id : Hash.t;
      entries : (bytes * string list * int64 * int * Ecdsa.signature) list;
    }
  | Get_payload of { jsn : int }
  | Get_proof of { jsn : int }
  | Get_receipt of { jsn : int }
  | Get_clue_proof of { clue : string; first : int option; last : int option }
  | Get_commitment
  | Get_extension of { old_size : int }
  | Get_journal of { jsn : int }
  | Get_block of { height : int }
  | Get_members
  | Get_checkpoint
  | Get_proof_bundle of { jsn : int }
  | Get_clue_bundle of { clue : string; first : int option; last : int option }
  | Query_page of {
      spec : Range_query.spec;
      window : Range_query.window option;
      after : string option;
      page_size : int;
      pin : int option;
          (* pin the scan to a snapshot epoch: a later page refusing with
             [Stale_r] tells the client a write landed mid-scan *)
    }

type response =
  | Receipt_r of Receipt.t
  | Receipts_r of Receipt.t list
  | Payload_r of bytes option
  | Proof_r of Fam.proof
  | Clue_proof_r of Cm_tree.clue_proof option
  | Commitment_r of { commitment : Hash.t; size : int }
  | Extension_r of Fam.extension_proof
  | Journal_r of { tx : Hash.t; encoded : bytes }
  | Block_r of Block.t
  | Members_r of (string * string * bytes) list
      (** (name, role tag, 64-byte public key) *)
  | Checkpoint_r of {
      name : string;
      size : int;
      block_count : int;
      commitment : Hash.t;
      clue_root : Hash.t;
      nonce : int;
      pseudo_genesis : int option;
    }
  | Proof_bundle_r of { proof : Fam.proof; commitment : Hash.t; size : int }
  | Clue_bundle_r of { proof : Cm_tree.clue_proof option; clue_root : Hash.t }
  | Query_page_r of {
      page : Range_query.page;
      query_root : Hash.t;
      commitment : Hash.t;
      size : int;
      epoch : int;
          (* snapshot epoch the page was served from; feed it back as
             [pin] on follow-up pages for a single-snapshot scan *)
    }
  | Stale_r of { pinned : int; current : int }
      (* typed retryable refusal: the pinned epoch is no longer current —
         restart the scan (or re-pin to [current]) *)
  | Error_r of string

(* --- codecs ------------------------------------------------------------- *)

let w_sig w s = Wire.w_raw w (Ecdsa.signature_to_bytes s)

let r_sig r =
  match Ecdsa.signature_of_bytes (Wire.r_raw r 64) with
  | Some s -> s
  | None -> raise Wire.Corrupt

let encode_request req =
  let w = Wire.writer () in
  (match req with
  | Append { member_id; payload; clues; client_ts; nonce; signature } ->
      Wire.w_u8 w 0;
      Wire.w_hash w member_id;
      Wire.w_bytes w payload;
      Wire.w_list w (Wire.w_string w) clues;
      Wire.w_int64 w client_ts;
      Wire.w_int w nonce;
      w_sig w signature
  | Get_payload { jsn } ->
      Wire.w_u8 w 1;
      Wire.w_int w jsn
  | Get_proof { jsn } ->
      Wire.w_u8 w 2;
      Wire.w_int w jsn
  | Get_receipt { jsn } ->
      Wire.w_u8 w 3;
      Wire.w_int w jsn
  | Get_clue_proof { clue; first; last } ->
      Wire.w_u8 w 4;
      Wire.w_string w clue;
      Wire.w_option w (Wire.w_int w) first;
      Wire.w_option w (Wire.w_int w) last
  | Get_commitment -> Wire.w_u8 w 5
  | Get_extension { old_size } ->
      Wire.w_u8 w 6;
      Wire.w_int w old_size
  | Get_journal { jsn } ->
      Wire.w_u8 w 7;
      Wire.w_int w jsn
  | Get_block { height } ->
      Wire.w_u8 w 8;
      Wire.w_int w height
  | Get_members -> Wire.w_u8 w 9
  | Get_checkpoint -> Wire.w_u8 w 10
  | Get_proof_bundle { jsn } ->
      Wire.w_u8 w 12;
      Wire.w_int w jsn
  | Get_clue_bundle { clue; first; last } ->
      Wire.w_u8 w 13;
      Wire.w_string w clue;
      Wire.w_option w (Wire.w_int w) first;
      Wire.w_option w (Wire.w_int w) last
  | Query_page { spec; window; after; page_size; pin } ->
      Wire.w_u8 w 14;
      Range_query.w_spec w spec;
      Wire.w_option w (Range_query.w_window w) window;
      Wire.w_option w (Wire.w_string w) after;
      Wire.w_int w page_size;
      Wire.w_option w (Wire.w_int w) pin
  | Append_batch { member_id; entries } ->
      Wire.w_u8 w 11;
      Wire.w_hash w member_id;
      Wire.w_list w
        (fun (payload, clues, client_ts, nonce, signature) ->
          Wire.w_bytes w payload;
          Wire.w_list w (Wire.w_string w) clues;
          Wire.w_int64 w client_ts;
          Wire.w_int w nonce;
          w_sig w signature)
        entries);
  Wire.contents w

let decode_request data =
  Wire.decode data (fun r ->
      match Wire.r_u8 r with
      | 0 ->
          let member_id = Wire.r_hash r in
          let payload = Wire.r_bytes r in
          let clues = Wire.r_list ~max:64 r (fun () -> Wire.r_string r) in
          let client_ts = Wire.r_int64 r in
          let nonce = Wire.r_int r in
          let signature = r_sig r in
          Append { member_id; payload; clues; client_ts; nonce; signature }
      | 1 -> Get_payload { jsn = Wire.r_int r }
      | 2 -> Get_proof { jsn = Wire.r_int r }
      | 3 -> Get_receipt { jsn = Wire.r_int r }
      | 4 ->
          let clue = Wire.r_string r in
          let first = Wire.r_option r (fun () -> Wire.r_int r) in
          let last = Wire.r_option r (fun () -> Wire.r_int r) in
          Get_clue_proof { clue; first; last }
      | 5 -> Get_commitment
      | 6 -> Get_extension { old_size = Wire.r_int r }
      | 7 -> Get_journal { jsn = Wire.r_int r }
      | 8 -> Get_block { height = Wire.r_int r }
      | 9 -> Get_members
      | 10 -> Get_checkpoint
      | 12 -> Get_proof_bundle { jsn = Wire.r_int r }
      | 13 ->
          let clue = Wire.r_string r in
          let first = Wire.r_option r (fun () -> Wire.r_int r) in
          let last = Wire.r_option r (fun () -> Wire.r_int r) in
          Get_clue_bundle { clue; first; last }
      | 14 ->
          let spec = Range_query.r_spec r in
          let window = Wire.r_option r (fun () -> Range_query.r_window r) in
          let after = Wire.r_option r (fun () -> Wire.r_string r) in
          let page_size = Wire.r_int r in
          let pin = Wire.r_option r (fun () -> Wire.r_int r) in
          Query_page { spec; window; after; page_size; pin }
      | 11 ->
          let member_id = Wire.r_hash r in
          let entries =
            Wire.r_list ~max:65536 r (fun () ->
                let payload = Wire.r_bytes r in
                let clues = Wire.r_list ~max:64 r (fun () -> Wire.r_string r) in
                let client_ts = Wire.r_int64 r in
                let nonce = Wire.r_int r in
                let signature = r_sig r in
                (payload, clues, client_ts, nonce, signature))
          in
          Append_batch { member_id; entries }
      | _ -> raise Wire.Corrupt)

let w_receipt w (r : Receipt.t) =
  Wire.w_int w r.Receipt.jsn;
  Wire.w_hash w r.Receipt.request_hash;
  Wire.w_hash w r.Receipt.tx_hash;
  Wire.w_hash w r.Receipt.block_hash;
  Wire.w_int64 w r.Receipt.timestamp;
  w_sig w r.Receipt.lsp_sig

let r_receipt r =
  let jsn = Wire.r_int r in
  let request_hash = Wire.r_hash r in
  let tx_hash = Wire.r_hash r in
  let block_hash = Wire.r_hash r in
  let timestamp = Wire.r_int64 r in
  let lsp_sig = r_sig r in
  { Receipt.jsn; request_hash; tx_hash; block_hash; timestamp; lsp_sig }

let encode_response resp =
  let w = Wire.writer () in
  (match resp with
  | Receipt_r receipt ->
      Wire.w_u8 w 0;
      w_receipt w receipt
  | Payload_r payload ->
      Wire.w_u8 w 1;
      Wire.w_option w (Wire.w_bytes w) payload
  | Proof_r proof ->
      Wire.w_u8 w 2;
      Proof_codec.w_fam_proof w proof
  | Clue_proof_r proof ->
      Wire.w_u8 w 3;
      Wire.w_option w (Cm_tree.w_clue_proof w) proof
  | Commitment_r { commitment; size } ->
      Wire.w_u8 w 4;
      Wire.w_hash w commitment;
      Wire.w_int w size
  | Extension_r proof ->
      Wire.w_u8 w 6;
      Proof_codec.w_fam_extension w proof
  | Journal_r { tx; encoded } ->
      Wire.w_u8 w 7;
      Wire.w_hash w tx;
      Wire.w_bytes w encoded
  | Block_r b ->
      Wire.w_u8 w 8;
      Wire.w_int w b.Block.height;
      Wire.w_int w b.Block.start_jsn;
      Wire.w_int w b.Block.count;
      Wire.w_hash w b.Block.prev_hash;
      Wire.w_hash w b.Block.journal_commitment;
      Wire.w_hash w b.Block.clue_root;
      Wire.w_hash w b.Block.world_state_root;
      Wire.w_hash w b.Block.tx_root;
      Wire.w_int64 w b.Block.timestamp
  | Members_r members ->
      Wire.w_u8 w 9;
      Wire.w_list w
        (fun (name, role, pub) ->
          Wire.w_string w name;
          Wire.w_string w role;
          Wire.w_bytes w pub)
        members
  | Checkpoint_r { name; size; block_count; commitment; clue_root; nonce;
                   pseudo_genesis } ->
      Wire.w_u8 w 10;
      Wire.w_string w name;
      Wire.w_int w size;
      Wire.w_int w block_count;
      Wire.w_hash w commitment;
      Wire.w_hash w clue_root;
      Wire.w_int w nonce;
      Wire.w_option w (Wire.w_int w) pseudo_genesis
  | Error_r msg ->
      Wire.w_u8 w 5;
      Wire.w_string w msg
  | Receipts_r receipts ->
      Wire.w_u8 w 11;
      Wire.w_list w (w_receipt w) receipts
  | Proof_bundle_r { proof; commitment; size } ->
      Wire.w_u8 w 12;
      Proof_codec.w_fam_proof w proof;
      Wire.w_hash w commitment;
      Wire.w_int w size
  | Clue_bundle_r { proof; clue_root } ->
      Wire.w_u8 w 13;
      Wire.w_option w (Cm_tree.w_clue_proof w) proof;
      Wire.w_hash w clue_root
  | Query_page_r { page; query_root; commitment; size; epoch } ->
      Wire.w_u8 w 14;
      Range_query.w_page w page;
      Wire.w_hash w query_root;
      Wire.w_hash w commitment;
      Wire.w_int w size;
      Wire.w_int w epoch
  | Stale_r { pinned; current } ->
      Wire.w_u8 w 15;
      Wire.w_int w pinned;
      Wire.w_int w current);
  Wire.contents w

let decode_response data =
  Wire.decode data (fun r ->
      match Wire.r_u8 r with
      | 0 -> Receipt_r (r_receipt r)
      | 1 -> Payload_r (Wire.r_option r (fun () -> Wire.r_bytes r))
      | 2 -> Proof_r (Proof_codec.r_fam_proof r)
      | 3 -> Clue_proof_r (Wire.r_option r (fun () -> Cm_tree.r_clue_proof r))
      | 4 ->
          let commitment = Wire.r_hash r in
          let size = Wire.r_int r in
          Commitment_r { commitment; size }
      | 5 -> Error_r (Wire.r_string r)
      | 6 -> Extension_r (Proof_codec.r_fam_extension r)
      | 7 ->
          let tx = Wire.r_hash r in
          let encoded = Wire.r_bytes r in
          Journal_r { tx; encoded }
      | 8 ->
          let height = Wire.r_int r in
          let start_jsn = Wire.r_int r in
          let count = Wire.r_int r in
          let prev_hash = Wire.r_hash r in
          let journal_commitment = Wire.r_hash r in
          let clue_root = Wire.r_hash r in
          let world_state_root = Wire.r_hash r in
          let tx_root = Wire.r_hash r in
          let timestamp = Wire.r_int64 r in
          Block_r
            { Block.height; start_jsn; count; prev_hash; journal_commitment;
              clue_root; world_state_root; tx_root; timestamp }
      | 9 ->
          Members_r
            (Wire.r_list ~max:10000 r (fun () ->
                 let name = Wire.r_string r in
                 let role = Wire.r_string r in
                 let pub = Wire.r_bytes r in
                 (name, role, pub)))
      | 10 ->
          let name = Wire.r_string r in
          let size = Wire.r_int r in
          let block_count = Wire.r_int r in
          let commitment = Wire.r_hash r in
          let clue_root = Wire.r_hash r in
          let nonce = Wire.r_int r in
          let pseudo_genesis = Wire.r_option r (fun () -> Wire.r_int r) in
          Checkpoint_r
            { name; size; block_count; commitment; clue_root; nonce;
              pseudo_genesis }
      | 11 -> Receipts_r (Wire.r_list ~max:65536 r (fun () -> r_receipt r))
      | 12 ->
          let proof = Proof_codec.r_fam_proof r in
          let commitment = Wire.r_hash r in
          let size = Wire.r_int r in
          Proof_bundle_r { proof; commitment; size }
      | 13 ->
          let proof = Wire.r_option r (fun () -> Cm_tree.r_clue_proof r) in
          let clue_root = Wire.r_hash r in
          Clue_bundle_r { proof; clue_root }
      | 14 ->
          let page = Range_query.r_page r in
          let query_root = Wire.r_hash r in
          let commitment = Wire.r_hash r in
          let size = Wire.r_int r in
          let epoch = Wire.r_int r in
          Query_page_r { page; query_root; commitment; size; epoch }
      | 15 ->
          let pinned = Wire.r_int r in
          let current = Wire.r_int r in
          Stale_r { pinned; current }
      | _ -> raise Wire.Corrupt)

(* --- server ---------------------------------------------------------------- *)

let request_kind = function
  | Append _ -> "append"
  | Append_batch _ -> "append_batch"
  | Get_payload _ -> "get_payload"
  | Get_proof _ -> "get_proof"
  | Get_receipt _ -> "get_receipt"
  | Get_clue_proof _ -> "get_clue_proof"
  | Get_commitment -> "get_commitment"
  | Get_extension _ -> "get_extension"
  | Get_journal _ -> "get_journal"
  | Get_block _ -> "get_block"
  | Get_members -> "get_members"
  | Get_checkpoint -> "get_checkpoint"
  | Get_proof_bundle _ -> "get_proof_bundle"
  | Get_clue_bundle _ -> "get_clue_bundle"
  | Query_page _ -> "query_page"

let dispatch ledger = function
  | Append { member_id; payload; clues; client_ts; nonce; signature } -> (
      match
        Ledger.append_signed ledger ~member_id ~payload ~clues ~client_ts
          ~nonce ~signature
      with
      | Ok receipt -> Receipt_r receipt
      | Error msg -> Error_r msg)
  | Append_batch { member_id; entries } -> (
      match Ledger.append_signed_batch ledger ~member_id entries with
      | Ok receipts -> Receipts_r receipts
      | Error msg -> Error_r msg)
  | Get_payload { jsn } ->
      if jsn < 0 || jsn >= Ledger.size ledger then Error_r "jsn out of range"
      else Payload_r (Ledger.payload ledger jsn)
  | Get_proof { jsn } ->
      if jsn < 0 || jsn >= Ledger.size ledger then Error_r "jsn out of range"
      else Proof_r (Ledger.get_proof ledger jsn)
  | Get_receipt { jsn } ->
      if jsn < 0 || jsn >= Ledger.size ledger then Error_r "jsn out of range"
      else Receipt_r (Ledger.get_receipt ledger jsn)
  | Get_clue_proof { clue; first; last } ->
      Clue_proof_r (Ledger.prove_clue ledger ~clue ?first ?last ())
  | Get_commitment ->
      if Ledger.size ledger = 0 then Error_r "empty ledger"
      else
        Commitment_r
          { commitment = Ledger.commitment ledger; size = Ledger.size ledger }
  | Get_extension { old_size } ->
      if old_size <= 0 || old_size > Ledger.size ledger then
        Error_r "old_size out of range"
      else Extension_r (Ledger.prove_extension ledger ~old_size)
  | Get_journal { jsn } ->
      if jsn < 0 || jsn >= Ledger.size ledger then Error_r "jsn out of range"
      else begin
        let j = Ledger.journal ledger jsn in
        (* the shipped payload reflects erasures *)
        let payload =
          match Ledger.payload ledger jsn with Some p -> p | None -> Bytes.empty
        in
        let j = { j with Journal.payload } in
        Journal_r
          { tx = Ledger.tx_hash_of ledger jsn; encoded = Journal_codec.encode j }
      end
  | Get_block { height } ->
      if height < 0 || height >= Ledger.block_count ledger then
        Error_r "block out of range"
      else Block_r (Ledger.block ledger height)
  | Get_members ->
      (* the registry is a hash table, so sort by name for a deterministic
         wire response *)
      Members_r
        (Roles.members (Ledger.registry ledger)
        |> List.sort (fun (a : Roles.member) (b : Roles.member) ->
               String.compare a.Roles.name b.Roles.name)
        |> List.map (fun (m : Roles.member) ->
               ( m.Roles.name,
                 Roles.role_to_string m.Roles.role,
                 Ecdsa.public_key_to_bytes m.Roles.pub )))
  | Get_proof_bundle { jsn } ->
      if jsn < 0 || jsn >= Ledger.size ledger then Error_r "jsn out of range"
      else
        (* one dispatch = one snapshot: the proof and the root it hashes
           to cannot straddle a concurrent append *)
        Proof_bundle_r
          {
            proof = Ledger.get_proof ledger jsn;
            commitment = Ledger.commitment ledger;
            size = Ledger.size ledger;
          }
  | Get_clue_bundle { clue; first; last } ->
      Clue_bundle_r
        {
          proof = Ledger.prove_clue ledger ~clue ?first ?last ();
          clue_root = Cm_tree.root_hash (Ledger.cm_tree ledger);
        }
  | Query_page { spec; window; after; page_size; pin } ->
      if page_size <= 0 || page_size > 65536 then Error_r "bad page_size"
      else begin
        (* page + root under one dispatch, same snapshot contract as
           Get_proof_bundle.  Under the writer lock the published epoch
           is stable, so the pin check here agrees byte-for-byte with
           the lock-free path. *)
        let epoch = Ledger.view_epoch ledger in
        match pin with
        | Some e when e <> epoch -> Stale_r { pinned = e; current = epoch }
        | Some _ | None ->
            Query_page_r
              {
                page =
                  Range_query.page (Ledger.query_index ledger) ~spec ?window
                    ?after ~page_size ();
                query_root = Ledger.query_root ledger;
                commitment =
                  (if Ledger.size ledger = 0 then Hash.zero
                   else Ledger.commitment ledger);
                size = Ledger.size ledger;
                epoch;
              }
      end
  | Get_checkpoint ->
      Checkpoint_r
        {
          name = (Ledger.config ledger).Ledger.name;
          size = Ledger.size ledger;
          block_count = Ledger.block_count ledger;
          commitment =
            (if Ledger.size ledger = 0 then Hash.zero
             else Ledger.commitment ledger);
          clue_root = Cm_tree.root_hash (Ledger.cm_tree ledger);
          nonce = Ledger.size ledger;
          pseudo_genesis =
            Option.map
              (fun (j : Journal.t) -> j.Journal.jsn)
              (Ledger.pseudo_genesis ledger);
        }

(* --- read/mutate split (lock-free read path) -------------------------------- *)

let classify = function
  | Append _ | Append_batch _ -> `Mutate
  | Get_payload _ | Get_proof _ | Get_receipt _ | Get_clue_proof _
  | Get_commitment | Get_extension _ | Get_journal _ | Get_block _
  | Get_members | Get_checkpoint | Get_proof_bundle _ | Get_clue_bundle _
  | Query_page _ ->
      `Read

module RV = Ledger.Read_view

(* Mirror of every read arm of {!dispatch}, served from an immutable
   snapshot.  Guard conditions and error strings must stay byte-identical
   to the locked path — the differential gate in the test suite compares
   encoded responses from both. *)
let dispatch_view v = function
  | Append _ | Append_batch _ ->
      (* mutations are routed through {!dispatch} by {!classify}; reaching
         here is a dispatcher bug, not a client error *)
      assert false
  | Get_payload { jsn } ->
      if jsn < 0 || jsn >= RV.size v then Error_r "jsn out of range"
      else Payload_r (RV.payload v jsn)
  | Get_proof { jsn } ->
      if jsn < 0 || jsn >= RV.size v then Error_r "jsn out of range"
      else Proof_r (RV.get_proof v jsn)
  | Get_receipt { jsn } ->
      if jsn < 0 || jsn >= RV.size v then Error_r "jsn out of range"
      else Receipt_r (RV.receipt v jsn)
  | Get_clue_proof { clue; first; last } ->
      Clue_proof_r (RV.prove_clue v ~clue ?first ?last ())
  | Get_commitment ->
      if RV.size v = 0 then Error_r "empty ledger"
      else Commitment_r { commitment = RV.commitment v; size = RV.size v }
  | Get_extension { old_size } ->
      if old_size <= 0 || old_size > RV.size v then
        Error_r "old_size out of range"
      else Extension_r (RV.prove_extension v ~old_size)
  | Get_journal { jsn } ->
      if jsn < 0 || jsn >= RV.size v then Error_r "jsn out of range"
      else begin
        let j = RV.journal v jsn in
        (* the shipped payload reflects erasures *)
        let payload =
          match RV.payload v jsn with Some p -> p | None -> Bytes.empty
        in
        let j = { j with Journal.payload } in
        Journal_r
          { tx = RV.tx_hash_of v jsn; encoded = Journal_codec.encode j }
      end
  | Get_block { height } ->
      if height < 0 || height >= RV.block_count v then
        Error_r "block out of range"
      else Block_r (RV.block v height)
  | Get_members ->
      (* the view stores the registry pre-sorted in wire form *)
      Members_r (RV.members_wire v)
  | Get_proof_bundle { jsn } ->
      if jsn < 0 || jsn >= RV.size v then Error_r "jsn out of range"
      else
        Proof_bundle_r
          {
            proof = RV.get_proof v jsn;
            commitment = RV.commitment v;
            size = RV.size v;
          }
  | Get_clue_bundle { clue; first; last } ->
      Clue_bundle_r
        {
          proof = RV.prove_clue v ~clue ?first ?last ();
          clue_root = RV.clue_root v;
        }
  | Query_page { spec; window; after; page_size; pin } ->
      if page_size <= 0 || page_size > 65536 then Error_r "bad page_size"
      else begin
        let epoch = RV.epoch v in
        match pin with
        | Some e when e <> epoch -> Stale_r { pinned = e; current = epoch }
        | Some _ | None ->
            Query_page_r
              {
                page =
                  Range_query.page (RV.query_index v) ~spec ?window ?after
                    ~page_size ();
                query_root = RV.query_root v;
                commitment =
                  (if RV.size v = 0 then Hash.zero else RV.commitment v);
                size = RV.size v;
                epoch;
              }
      end
  | Get_checkpoint ->
      Checkpoint_r
        {
          name = RV.name v;
          size = RV.size v;
          block_count = RV.block_count v;
          commitment =
            (if RV.size v = 0 then Hash.zero else RV.commitment v);
          clue_root = RV.clue_root v;
          nonce = RV.size v;
          pseudo_genesis = RV.pseudo_genesis_jsn v;
        }

let response_of_exn = function
  | Invalid_argument msg | Failure msg -> Error_r msg
  | Not_found -> Error_r "not found"
  | Ledger_storage.Stream_store.Read_error e ->
      Error_r (Ledger_storage.Stream_store.read_error_to_string e)
  | e -> raise e

let handle ledger data =
  let sp = Ledger_obs.Trace.enter "service.handle" in
  Ledger_obs.Metrics.incr "service_requests_total";
  let resp =
    match decode_request data with
    | None -> Error_r "malformed request"
    | Some req ->
        Ledger_obs.Trace.attr sp "kind" (request_kind req);
        (try dispatch ledger req with e -> response_of_exn e)
  in
  (match resp with
  | Error_r _ -> Ledger_obs.Metrics.incr "service_errors_total"
  | _ -> ());
  Ledger_obs.Trace.exit sp;
  encode_response resp

let handle_view v data =
  match decode_request data with
  | None ->
      (* malformed frames carry no mutation; answer them lock-free with
         the same counters the locked path would bump *)
      Ledger_obs.Metrics.incr "service_requests_total";
      Ledger_obs.Metrics.incr "service_errors_total";
      Some (encode_response (Error_r "malformed request"))
  | Some req -> (
      match classify req with
      | `Mutate -> None
      | `Read ->
          let sp = Ledger_obs.Trace.enter "service.handle" in
          Ledger_obs.Metrics.incr "service_requests_total";
          Ledger_obs.Trace.attr sp "kind" (request_kind req);
          let resp = try dispatch_view v req with e -> response_of_exn e in
          (match resp with
          | Error_r _ -> Ledger_obs.Metrics.incr "service_errors_total"
          | _ -> ());
          Ledger_obs.Trace.exit sp;
          Some (encode_response resp))

let handle_read ledger data = handle_view (Ledger.read_view ledger) data

(* --- client ----------------------------------------------------------------- *)

module Client = struct
  type t = {
    ledger_uri : string;
    member : Roles.member;
    priv : Ecdsa.private_key;
    crypto : Crypto_profile.t;
    mutable nonce : int;
    auto_batch : int option;
    mutable buffer :
      (bytes * string list * int64 * int * Ecdsa.signature) list;
      (* newest first; drained by flush *)
  }

  let create ?auto_batch ?(crypto = Crypto_profile.Real) ~ledger_uri ~member
      ~priv () =
    (match auto_batch with
    | Some n when n < 1 -> invalid_arg "Service.Client.create: bad auto_batch"
    | Some _ | None -> ());
    { ledger_uri; member; priv; crypto; nonce = 0; auto_batch; buffer = [] }

  let sign_entry t ?(clues = []) ~client_ts payload =
    t.nonce <- t.nonce + 1;
    let request_hash =
      Journal.request_digest ~ledger_uri:t.ledger_uri ~kind_tag:"normal"
        ~payload ~clues ~client_ts ~nonce:t.nonce
    in
    let signature =
      Crypto_profile.sign_pure t.crypto ~priv:t.priv
        ~pub:t.member.Roles.pub request_hash
    in
    (payload, clues, client_ts, t.nonce, signature)

  let make_append t ?clues ~client_ts payload =
    let payload, clues, client_ts, nonce, signature =
      sign_entry t ?clues ~client_ts payload
    in
    encode_request
      (Append
         { member_id = t.member.Roles.id; payload; clues; client_ts; nonce;
           signature })

  let make_append_batch t entries =
    let entries =
      List.map
        (fun (payload, clues, client_ts) ->
          sign_entry t ~clues ~client_ts payload)
        entries
    in
    encode_request (Append_batch { member_id = t.member.Roles.id; entries })

  let pending t = List.length t.buffer

  let flush t =
    match t.buffer with
    | [] -> None
    | buffered ->
        t.buffer <- [];
        Some
          (encode_request
             (Append_batch
                { member_id = t.member.Roles.id; entries = List.rev buffered }))

  let buffer_append t ?clues ~client_ts payload =
    t.buffer <- sign_entry t ?clues ~client_ts payload :: t.buffer;
    match t.auto_batch with
    | Some n when List.length t.buffer >= n -> flush t
    | Some _ | None -> None

  let make_get_proof ~jsn = encode_request (Get_proof { jsn })
  let make_get_payload ~jsn = encode_request (Get_payload { jsn })
  let make_get_receipt ~jsn = encode_request (Get_receipt { jsn })

  let make_get_clue_proof ~clue ?first ?last () =
    encode_request (Get_clue_proof { clue; first; last })

  let make_get_commitment () = encode_request Get_commitment
  let make_get_extension ~old_size = encode_request (Get_extension { old_size })
  let make_get_journal ~jsn = encode_request (Get_journal { jsn })
  let make_get_block ~height = encode_request (Get_block { height })
  let make_get_members () = encode_request Get_members
  let make_get_checkpoint () = encode_request Get_checkpoint
  let make_get_proof_bundle ~jsn = encode_request (Get_proof_bundle { jsn })

  let make_get_clue_bundle ~clue ?first ?last () =
    encode_request (Get_clue_bundle { clue; first; last })

  let make_query_page ~spec ?window ?after ?pin ~page_size () =
    encode_request (Query_page { spec; window; after; page_size; pin })

  let parse = decode_response
end
