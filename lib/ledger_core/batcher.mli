(** Commit batching policy.

    Callers that append one journal at a time pay one network charge, one
    storage append and one accumulation cascade each.  A batcher buffers
    entries and pushes them through {!Ledger.append_batch}'s amortized
    pipeline when either bound of its policy trips — a size bound
    ([max_entries]) or a latency bound ([max_delay_us], measured on the
    ledger's simulated {!Ledger_storage.Clock}).  The committed history
    is byte-identical to unbatched appends (see [test_batch_diff]); only
    the cost profile changes. *)

open Ledger_crypto

type policy = {
  max_entries : int;  (** flush when this many entries are buffered *)
  max_delay_us : int64;
      (** flush when the oldest buffered entry has waited this long *)
  seal_on_flush : bool;
      (** seal the trailing partial block on every flush (final receipts
          immediately); [false] leaves it pending, as sequential appends
          would *)
}

val default_policy : policy
(** 64 entries / 10 ms / seal. *)

type t

val create :
  ?policy:policy ->
  ?pool:Ledger_par.Domain_pool.t ->
  Ledger.t ->
  member:Roles.member ->
  priv:Ecdsa.private_key ->
  t
(** One batcher per appending member (entries are signed with the
    member's key at flush time).  [pool] (default
    {!Ledger_par.Domain_pool.default}) feeds every flush's
    {!Ledger.append_batch}.
    @raise Invalid_argument on a non-positive [max_entries] or negative
    [max_delay_us]. *)

val submit : t -> ?clues:string list -> bytes -> Receipt.t list
(** Buffer one entry.  If that trips the size or delay bound the batch is
    flushed and its receipts returned; otherwise [[]] (the entry is
    pending). *)

val tick : t -> Receipt.t list
(** Clock-driven flush: drains the buffer iff the delay bound expired.
    Call from the event loop; returns flushed receipts (usually [[]]). *)

val flush : t -> Receipt.t list
(** Unconditionally drain the buffer through one batched commit; [[]]
    when nothing is pending. *)

val close : t -> Receipt.t list
(** Drain any buffered entries through one final flush and mark the
    batcher closed: subsequent {!submit}/{!tick} raise
    [Invalid_argument].  Idempotent — a second [close] returns [[]].
    Guarantees no entry handed to {!submit} is silently dropped at
    shutdown. *)

val pending : t -> int
val flushes : t -> int
(** Batched commits performed over this batcher's lifetime. *)
