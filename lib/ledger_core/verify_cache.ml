open Ledger_crypto
open Ledger_obs

type key = { root : Hash.t; jsn : int; verifier : string }

type t = {
  capacity : int;
  table : (key, bool) Hashtbl.t;
  order : key Queue.t; (* insertion order, oldest first — FIFO eviction *)
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  mutable evictions : int;
}

let create ?(capacity = 1024) () =
  if capacity < 1 then invalid_arg "Verify_cache.create: bad capacity";
  {
    capacity;
    table = Hashtbl.create 64;
    order = Queue.create ();
    hits = 0;
    misses = 0;
    invalidations = 0;
    evictions = 0;
  }

let size t = Hashtbl.length t.table
let hits t = t.hits
let misses t = t.misses
let invalidations t = t.invalidations
let evictions t = t.evictions

let find t ~root ~jsn ~verifier =
  let k = { root; jsn; verifier } in
  match Hashtbl.find_opt t.table k with
  | Some _ as hit ->
      t.hits <- t.hits + 1;
      Metrics.incr "verify_cache_hits_total";
      hit
  | None ->
      t.misses <- t.misses + 1;
      Metrics.incr "verify_cache_misses_total";
      None

let rec evict_to_capacity t =
  if Hashtbl.length t.table >= t.capacity && not (Queue.is_empty t.order) then begin
    let oldest = Queue.pop t.order in
    if Hashtbl.mem t.table oldest then begin
      Hashtbl.remove t.table oldest;
      t.evictions <- t.evictions + 1;
      Metrics.incr "verify_cache_evictions_total"
    end;
    evict_to_capacity t
  end

let store t ~root ~jsn ~verifier verdict =
  let k = { root; jsn; verifier } in
  if Hashtbl.mem t.table k then Hashtbl.replace t.table k verdict
  else begin
    evict_to_capacity t;
    Hashtbl.replace t.table k verdict;
    Queue.push k t.order
  end

let invalidate t =
  let dropped = Hashtbl.length t.table in
  Hashtbl.reset t.table;
  Queue.clear t.order;
  t.invalidations <- t.invalidations + 1;
  Metrics.incr "verify_cache_invalidations_total";
  dropped

let attach t ledger = Ledger.on_mutate ledger (fun () -> ignore (invalidate t))
