(** Remote replication for external auditors (paper §II-C: "verified at
    client side … by anyone who can directly access the ledger, such as
    external auditors").

    [pull] downloads the entire ledger — checkpoint, membership, every
    journal (with its retained accumulator leaf) and every block — through
    the byte-level {!Service} protocol, materialises it in the snapshot
    format and replays it through {!Ledger.load}, which re-derives every
    tree and {e refuses} the replica unless the announced commitment, clue
    root, and each journal's content-to-leaf binding reproduce.  The
    result is a locally verified replica an auditor can {!Audit.run}
    without trusting the transport or the LSP.

    The pull is {e self-healing} over an unreliable transport: every
    request goes through {!Transport.request_expect} (retry, exponential
    backoff with jitter, per-request timeouts against the simulated
    clock), journals are staged on disk in CRC-framed records so an
    interrupted pull resumes from the last intact journal instead of
    starting over, and a stale stage that no longer replays is discarded
    and re-pulled once from scratch.  Verification failures are never
    retried: if the replay refuses the data, the pull refuses. *)

open Ledger_storage
open Ledger_timenotary

type stats = {
  requests : int;  (** logical requests issued (excluding retries) *)
  retries : int;  (** transient-fault retries across all requests *)
  resumed_from : int;  (** journals reused from an earlier staged pull *)
  restarted : bool;
      (** a stale stage was discarded and the pull restarted clean *)
}

type error =
  | Transport_failed of Transport.error
      (** retries exhausted on transient faults *)
  | Refused of string  (** the service answered [Error_r] *)
  | Protocol of string  (** identity/shape mismatch *)
  | Load_failed of string
      (** the downloaded data did not verify — never retried *)

val error_to_string : error -> string

val pull :
  transport:Transport.t ->
  ?policy:Transport.policy ->
  ?config:Ledger.config ->
  ?t_ledger:T_ledger.t ->
  ?tsa:Tsa.pool ->
  ?resume:bool ->
  ?pool:Ledger_par.Domain_pool.t ->
  clock:Clock.t ->
  scratch_dir:string ->
  unit ->
  (Ledger.t, string) result
(** [transport] is the only channel to the remote service (e.g.
    [Service.handle remote_ledger], or a real socket).  [scratch_dir] is
    where the downloaded snapshot is staged.  The [config] must match the
    remote service's announced name (checked) — it determines block size,
    fractal height and the LSP key derivation.  Defaults to
    {!Transport.no_retry} and no resumption — the strict, fail-fast
    behaviour. *)

val pull_verbose :
  transport:Transport.t ->
  ?policy:Transport.policy ->
  ?config:Ledger.config ->
  ?t_ledger:T_ledger.t ->
  ?tsa:Tsa.pool ->
  ?resume:bool ->
  ?pool:Ledger_par.Domain_pool.t ->
  clock:Clock.t ->
  scratch_dir:string ->
  unit ->
  (Ledger.t * stats, error) result
(** Like {!pull} with typed errors and transfer statistics.  Defaults to
    {!Transport.default_policy} and [~resume:true] — the self-healing
    behaviour.

    [pool] (default {!Ledger_par.Domain_pool.default}) fans the staged
    π_c signature pre-check across domains: every staged journal whose
    recorded signer appears in the fetched membership has its client
    signature re-checked — purely, with no simulated-clock charges —
    before {!Ledger.load} replays anything.  A failing stage refuses (or,
    when resumed, heals) exactly like a failed load.  RPC staging itself
    stays sequential: the transport's seeded retry policy and the
    simulated clock are shared, deterministic state. *)
