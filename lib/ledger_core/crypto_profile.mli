(** Signature execution profile.

    The paper's deployment signs with hardware-accelerated ECDSA
    (microseconds per operation); this reproduction's from-scratch ECDSA
    costs milliseconds.  To keep benchmark {e shapes} faithful without
    hours of wall-clock, the ledger can run in one of two profiles:

    - [Real] — every signature is produced and verified with {!Ecdsa}.
      Used by correctness and threat-model tests, and by the Fig. 7
      latency measurements.
    - [Simulated] — signatures are deterministic MAC-like digests bound to
      (public key, message); producing/checking one {e advances the
      simulated clock} by a calibrated hardware-crypto cost instead of
      burning CPU.  Payload tampering is still detected (the digest
      changes); only signature {e forgery} resistance is out of scope,
      which no throughput benchmark relies on. *)

open Ledger_crypto
open Ledger_storage

type t =
  | Real
  | Simulated of { sign_us : float; verify_us : float }

val default_simulated : t
(** 30 µs sign / 70 µs verify — OpenSSL-class secp256k1 numbers. *)

val sign :
  t -> Clock.t -> priv:Ecdsa.private_key -> pub:Ecdsa.public_key -> Hash.t ->
  Ecdsa.signature

val sign_pure :
  t -> priv:Ecdsa.private_key -> pub:Ecdsa.public_key -> Hash.t ->
  Ecdsa.signature
(** The pure half of {!sign}: produce a signature without touching any
    clock.  Remote clients live outside the server's simulated-time
    boundary — a socket client signing π_c has no ledger clock to
    charge — so they sign with this and the wall clock pays the real
    cost. *)

val verify : t -> Clock.t -> pub:Ecdsa.public_key -> Hash.t -> Ecdsa.signature -> bool
(** Charges the simulated verify cost, then decides — exactly
    [charge_verify] followed by [check]. *)

val check : t -> pub:Ecdsa.public_key -> Hash.t -> Ecdsa.signature -> bool
(** The pure half of {!verify}: decides without touching any clock, so
    it is safe to evaluate from pooled tasks.  Callers that must keep
    the simulated clock byte-identical to the sequential path charge
    separately with {!charge_verify}, in submission order. *)

val charge_verify : t -> Clock.t -> unit
(** Advance the clock by the simulated verify cost ([Real]: no-op). *)

val self_check : unit -> bool
(** Differential canary for the [Real] profile's fast kernel: signs a
    fixed digest through both the wNAF/GLV pipeline and the retained
    reference pipeline, checks the signatures are byte-identical and
    accepted by both verifiers, and cross-checks the two SHA-256
    implementations.  Returns [false] if the kernels have diverged.
    Cheap enough (~2 signs + 2 verifies) to run at process start-up. *)
