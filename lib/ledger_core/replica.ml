open Ledger_crypto
open Ledger_storage

type stats = {
  requests : int;
  retries : int;
  resumed_from : int;
  restarted : bool;
}

type error =
  | Transport_failed of Transport.error
  | Refused of string
  | Protocol of string
  | Load_failed of string

let error_to_string = function
  | Transport_failed e -> Transport.error_to_string e
  | Refused msg -> "replica: service refused: " ^ msg
  | Protocol msg -> "replica: " ^ msg
  | Load_failed msg -> "replica: replay refused: " ^ msg

(* Count intact staged journal frames from an earlier, interrupted pull
   and truncate any damaged tail, so the next pull resumes from the last
   journal that survived on disk instead of starting over. *)
let staged_journals path =
  if not (Sys.file_exists path) then 0
  else begin
    let ic = open_in_bin path in
    let n = ref 0 in
    let cut = ref None in
    (try
       let continue = ref true in
       while !continue do
         let offset = pos_in ic in
         match Framing.read ic with
         | Framing.End -> continue := false
         | Framing.Record frame when Bytes.length frame >= 32 -> incr n
         | Framing.Record _ | Framing.Corrupt _ ->
             cut := Some offset;
             continue := false
         | Framing.Torn { offset; _ } ->
             cut := Some offset;
             continue := false
       done;
       close_in ic
     with e ->
       close_in_noerr ic;
       raise e);
    (match !cut with
    | Some keep -> Framing.truncate_file path ~keep
    | None -> ());
    !n
  end

(* Pre-replay π_c screen: decode every staged journal frame and check
   its recorded client signature against the fetched membership, purely
   (no clock) and across the pool.  This rejects a corrupted stage
   before {!Ledger.load} starts replaying trees; journals whose signer
   is not in the membership (LSP/system journals) and frames the codec
   refuses are left for the loader's authoritative verdict.  Returns the
   lowest failing jsn. *)
let staged_sig_precheck ~pool ~crypto ~members path =
  if not (Sys.file_exists path) then Ok ()
  else begin
    let pubs = Hashtbl.create 16 in
    List.iter
      (fun (_name, _role, pub_bytes) ->
        match Ecdsa.public_key_of_bytes pub_bytes with
        | Some pub -> Hashtbl.replace pubs (Ecdsa.public_key_id pub) pub
        | None -> ())
      members;
    let ic = open_in_bin path in
    let frames = ref [] in
    (try
       let continue = ref true in
       while !continue do
         match Framing.read ic with
         | Framing.End -> continue := false
         | Framing.Record frame when Bytes.length frame >= 32 ->
             frames := Bytes.sub frame 32 (Bytes.length frame - 32) :: !frames
         | Framing.Record _ | Framing.Corrupt _ | Framing.Torn _ ->
             continue := false
       done;
       close_in ic
     with e ->
       close_in_noerr ic;
       raise e);
    let encoded = Array.of_list (List.rev !frames) in
    let first_bad = Atomic.make max_int in
    let note jsn =
      let rec go () =
        let cur = Atomic.get first_bad in
        if jsn < cur && not (Atomic.compare_and_set first_bad cur jsn) then
          go ()
      in
      go ()
    in
    Ledger_par.Domain_pool.parallel_for pool ~label:"replica_pi_c"
      ~min_chunk:4 ~n:(Array.length encoded) (fun i ->
        match Journal_codec.decode encoded.(i) with
        | None -> ()
        | Some j -> (
            match j.Journal.client_sig with
            | None -> ()
            | Some s -> (
                match Hashtbl.find_opt pubs j.Journal.client_id with
                | None -> ()
                | Some pub ->
                    if
                      not
                        (Crypto_profile.check crypto ~pub
                           j.Journal.request_hash s)
                    then note j.Journal.jsn)));
    match Atomic.get first_bad with
    | jsn when jsn = max_int -> Ok ()
    | jsn ->
        Error (Printf.sprintf "staged journal %d: bad client signature" jsn)
  end

let pull_verbose ~transport ?(policy = Transport.default_policy)
    ?(config = Ledger.default_config) ?t_ledger ?tsa ?(resume = true)
    ?(pool = Ledger_par.Domain_pool.default ()) ~clock ~scratch_dir () =
  Ledger_obs.Metrics.incr "replica_pulls_total";
  let requests = ref 0 in
  let retries = ref 0 in
  let rpc decode encoded =
    incr requests;
    Ledger_obs.Metrics.incr "replica_requests_total";
    match
      Transport.request_expect ~policy ~seed:!requests
        ~on_retry:(fun ~attempt:_ ~reason:_ ->
          incr retries;
          Ledger_obs.Metrics.incr "replica_retries_total")
        ~clock ~decode transport encoded
    with
    | Ok v -> Ok v
    | Error (Transport.Refused msg) -> Error (Refused msg)
    | Error (Transport.Transport e) -> Error (Transport_failed e)
  in
  let ( let* ) = Result.bind in
  let rec attempt ~resume ~restarted =
    (* 1. the announced checkpoint pins what we must reproduce *)
    let* name, size, block_count, commitment, clue_root, nonce, pseudo_genesis
        =
      rpc
        (function
          | Service.Checkpoint_r
              { name; size; block_count; commitment; clue_root; nonce;
                pseudo_genesis } ->
              Some
                ( name, size, block_count, commitment, clue_root, nonce,
                  pseudo_genesis )
          | _ -> None)
        (Service.Client.make_get_checkpoint ())
    in
    if name <> config.Ledger.name then
      Error
        (Protocol
           (Printf.sprintf "service is '%s' but config says '%s'" name
              config.Ledger.name))
    else begin
      if not (Sys.file_exists scratch_dir) then Sys.mkdir scratch_dir 0o755;
      let in_dir f = Filename.concat scratch_dir f in
      let journals_path = in_dir "journals.ldb" in
      let resumed_from =
        if not resume then begin
          if Sys.file_exists journals_path then Sys.remove journals_path;
          0
        end
        else begin
          let staged = staged_journals journals_path in
          if staged > size then begin
            (* the staged prefix is longer than the service's ledger: stale
               or foreign staging, start over *)
            Sys.remove journals_path;
            0
          end
          else staged
        end
      in
      let with_out ?(append = false) file f =
        let flags =
          if append then [ Open_wronly; Open_append; Open_creat; Open_binary ]
          else [ Open_wronly; Open_trunc; Open_creat; Open_binary ]
        in
        let oc = open_out_gen flags 0o644 (in_dir file) in
        let r = (try f oc with e -> close_out_noerr oc; raise e) in
        close_out oc;
        r
      in
      (* 2. membership *)
      let* members =
        rpc
          (function Service.Members_r m -> Some m | _ -> None)
          (Service.Client.make_get_members ())
      in
      with_out "members.ldb" (fun oc ->
          List.iter
            (fun (member_name, role, pub) ->
              let hex =
                String.concat ""
                  (List.init (Bytes.length pub) (fun i ->
                       Printf.sprintf "%02x" (Char.code (Bytes.get pub i))))
              in
              Printf.fprintf oc "%s\t%s\t%s\n" role hex member_name)
            members);
      (* 3. every journal not already staged, with its retained leaf.
         Frames match Ledger's snapshot format so the loader replays and
         re-verifies them; an interrupted loop leaves a resumable
         prefix. *)
      let fetch_journals () =
        let rec go jsn =
          if jsn >= size then Ok ()
          else
            let* tx, encoded =
              rpc
                (function
                  | Service.Journal_r { tx; encoded } -> Some (tx, encoded)
                  | _ -> None)
                (Service.Client.make_get_journal ~jsn)
            in
            with_out ~append:true "journals.ldb" (fun oc ->
                let frame = Bytes.create (32 + Bytes.length encoded) in
                Bytes.blit (Hash.to_bytes tx) 0 frame 0 32;
                Bytes.blit encoded 0 frame 32 (Bytes.length encoded);
                Framing.write oc frame);
            go (jsn + 1)
        in
        go resumed_from
      in
      let* () = fetch_journals () in
      (* 4. every sealed block *)
      let fetch_blocks oc =
        let rec go height =
          if height >= block_count then Ok ()
          else
            let* b =
              rpc
                (function Service.Block_r b -> Some b | _ -> None)
                (Service.Client.make_get_block ~height)
            in
            Printf.fprintf oc "%d %d %d %s %s %s %s %s %Ld\n" b.Block.height
              b.Block.start_jsn b.Block.count
              (Hash.to_hex b.Block.prev_hash)
              (Hash.to_hex b.Block.journal_commitment)
              (Hash.to_hex b.Block.clue_root)
              (Hash.to_hex b.Block.world_state_root)
              (Hash.to_hex b.Block.tx_root)
              b.Block.timestamp;
            go (height + 1)
        in
        go 0
      in
      let* () = with_out "blocks.ldb" fetch_blocks in
      (* 5. checkpoint metadata; the loader re-derives everything and
         compares against these values *)
      with_out "meta.ldb" (fun oc ->
          Printf.fprintf oc
            "name=%s\nsize=%d\nnonce=%d\ncommitment=%s\nclue_root=%s\npseudo_genesis=%s\n"
            name size nonce
            (if size = 0 then "" else Hash.to_hex commitment)
            (Hash.to_hex clue_root)
            (match pseudo_genesis with Some j -> string_of_int j | None -> "-"));
      with_out "survivors.ldb" (fun _ -> () (* not replicated *));
      match
        (* π_c screen before any replay state is built; a poisoned
           resumed stage heals exactly like a failed load below *)
        match
          staged_sig_precheck ~pool ~crypto:config.Ledger.crypto ~members
            journals_path
        with
        | Ok () -> Ledger.load ~config ?t_ledger ?tsa ~clock ~dir:scratch_dir ()
        | Error msg -> Error msg
      with
      | Ok ledger ->
          if resumed_from > 0 then
            Ledger_obs.Metrics.incr "replica_resumed_journals_total"
              ~by:resumed_from;
          if restarted then Ledger_obs.Metrics.incr "replica_restarts_total";
          Ok
            ( ledger,
              { requests = !requests; retries = !retries; resumed_from;
                restarted } )
      | Error msg when resumed_from > 0 ->
          (* The staged prefix no longer matches what the service serves
             (rewritten history, or a poisoned stage).  Heal by discarding
             the stage and pulling once from scratch; if that also fails,
             the refusal stands. *)
          ignore msg;
          Sys.remove journals_path;
          attempt ~resume:false ~restarted:true
      | Error msg -> Error (Load_failed msg)
    end
  in
  try attempt ~resume ~restarted:false
  with Sys_error msg -> Error (Load_failed ("staging I/O: " ^ msg))

let pull ~transport ?(policy = Transport.no_retry) ?config ?t_ledger ?tsa
    ?(resume = false) ?pool ~clock ~scratch_dir () =
  try
    match
      pull_verbose ~transport ~policy ?config ?t_ledger ?tsa ~resume ?pool
        ~clock ~scratch_dir ()
    with
    | Ok (ledger, _) -> Ok ledger
    | Error e -> Error (error_to_string e)
  with
  | Failure msg -> Error msg
  | Sys_error msg -> Error msg
