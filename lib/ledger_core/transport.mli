(** Self-healing request layer over the byte-level {!Service} channel.

    The paper's client-side verification assumes nothing about the
    transport: an LSP response may be lost, duplicated, delayed past
    usefulness, or garbled in flight.  This module turns a raw
    [bytes -> bytes] channel into a request function with retry,
    exponential backoff with deterministic jitter, and per-request
    timeouts — all charged against the simulated {!Ledger_storage.Clock},
    so fault schedules replay exactly.

    The one non-negotiable rule: only {e transient transport} faults are
    retried.  A definitive service refusal ([Error_r]) is surfaced
    immediately, and cryptographic verification failures never reach this
    layer at all — they are decided above it and must never be retried
    into acceptance. *)

open Ledger_storage

type t = bytes -> bytes
(** A synchronous byte channel: {!Service.handle} applied to a remote
    ledger, a socket, or a {!Faulty_transport} wrapper. *)

exception Timeout of string
(** Raised by a transport when a request or response is lost.  Treated as
    a transient fault by {!request}. *)

type policy = {
  max_attempts : int;  (** total tries, first included *)
  base_backoff_ms : float;  (** backoff before the second try *)
  max_backoff_ms : float;  (** exponential growth is capped here *)
  jitter : float;
      (** fraction of the backoff randomised away, in [0,1]; the jitter
          is a deterministic function of (seed, attempt) *)
  request_timeout_ms : float;
      (** responses that arrive after this much simulated time are
          discarded as lost *)
}

val default_policy : policy
(** 6 attempts, 50 ms base backoff doubling to a 2 s cap, 50% jitter,
    1 s per-request timeout. *)

val no_retry : policy
(** Single attempt — the pre-fault-tolerance behaviour. *)

val backoff_ms : policy -> seed:int -> attempt:int -> float
(** Backoff charged before retry [attempt + 1] (attempts count from 1). *)

type error = { attempts : int; reason : string }
(** Transport gave up: every attempt failed transiently; [reason] is the
    last failure. *)

val error_to_string : error -> string

type failure =
  | Refused of string
      (** the service answered [Error_r]: definitive, not retried *)
  | Transport of error  (** attempts exhausted on transient faults *)

val failure_to_string : failure -> string

val request :
  ?policy:policy ->
  ?seed:int ->
  ?backoff_rng:(unit -> float) ->
  ?on_retry:(attempt:int -> reason:string -> unit) ->
  clock:Clock.t ->
  t ->
  bytes ->
  (Service.response, error) result
(** Send [bytes], decode the response, retrying transient faults
    (transport {!Timeout}, undecodable bytes, responses slower than the
    policy's timeout) with backoff.  [on_retry] fires before each backoff
    — clients use it to enter degraded mode.  When [backoff_rng] is given
    (a draw in [0,1], e.g. {!Ledger_fault.Faulty_transport.backoff_rng}
    over the seeded fault-plan RNG), backoff jitter is drawn from it
    instead of the internal (seed, attempt) mix, so one seed governs the
    fault schedule {e and} the retry schedule. *)

val request_expect :
  ?policy:policy ->
  ?seed:int ->
  ?backoff_rng:(unit -> float) ->
  ?on_retry:(attempt:int -> reason:string -> unit) ->
  clock:Clock.t ->
  decode:(Service.response -> 'a option) ->
  t ->
  bytes ->
  ('a, failure) result
(** Like {!request} but also checks the response {e shape}: a decodable
    response that [decode] rejects (e.g. a reordered reply to some other
    request) is retried from the shared attempt budget.  An explicit
    service refusal short-circuits as [Refused]. *)
