open Ledger_crypto
open Ledger_storage

type t =
  | Real
  | Simulated of { sign_us : float; verify_us : float }

let default_simulated = Simulated { sign_us = 30.; verify_us = 70. }

(* A simulated signature binds (public key, digest) deterministically, so
   any payload tampering still breaks verification. *)
let simulated_signature pub digest =
  let key = Hash.to_bytes (Ecdsa.public_key_id pub) in
  let mac = Hmac_sha256.mac ~key (Hash.to_bytes digest) in
  let b = Bytes.create 64 in
  Bytes.blit mac 0 b 0 32;
  Bytes.blit mac 0 b 32 32;
  match Ecdsa.signature_of_bytes b with Some s -> s | None -> assert false

let charge clock us = Clock.advance clock (Int64.of_float us)

let sign_pure t ~priv ~pub digest =
  match t with
  | Real -> Ecdsa.sign priv digest
  | Simulated _ ->
      ignore priv;
      simulated_signature pub digest

let sign t clock ~priv ~pub digest =
  (match t with
  | Real -> ()
  | Simulated { sign_us; _ } -> charge clock sign_us);
  sign_pure t ~priv ~pub digest

(* Pure signature predicate: no clock, no mutation — safe to evaluate
   from pooled tasks.  [verify] = [charge_verify] then [check], so the
   sequential path's clock behaviour is unchanged. *)
let check t ~pub digest signature =
  match t with
  | Real -> Ecdsa.verify pub digest signature
  | Simulated _ ->
      Ecdsa.signature_to_bytes (simulated_signature pub digest)
      = Ecdsa.signature_to_bytes signature

let charge_verify t clock =
  match t with
  | Real -> ()
  | Simulated { verify_us; _ } -> charge clock verify_us

let verify t clock ~pub digest signature =
  charge_verify t clock;
  check t ~pub digest signature

(* Differential canary over the fast/reference kernel pair.  [Real]
   routes every check through the wNAF/GLV pipeline; if that kernel ever
   diverges from the retained long-division reference (bad build flags,
   a miscompiled unrolled loop), signatures would silently stop matching
   other verifiers.  This runs one fixed sign/verify through both
   pipelines plus a SHA-256 cross-check and must return [true]. *)
let self_check () =
  let msg = Bytes.of_string "crypto_profile differential canary" in
  let digest = Hash.of_bytes (Sha256.digest_bytes msg) in
  let priv, pub = Ecdsa.generate ~seed:"crypto-profile-canary" in
  let s_fast = Ecdsa.sign priv digest in
  let s_ref = Ecdsa.Ref.sign priv digest in
  Bytes.equal (Ecdsa.signature_to_bytes s_fast) (Ecdsa.signature_to_bytes s_ref)
  && Ecdsa.verify pub digest s_fast
  && Ecdsa.Ref.verify pub digest s_fast
  && Bytes.equal (Sha256.digest_bytes msg) (Sha256.Ref.digest_bytes msg)
