(** The client ⇄ proxy ⇄ server protocol of Fig. 1, over a byte-level
    message boundary.

    {!Client} builds signed, encoded requests and interprets encoded
    responses without ever holding a reference to the server's state;
    {!handle} is the whole server: decode → dispatch → encode.  Tests and
    examples drive the two ends through [bytes] alone, proving that every
    proof object survives the wire. *)

open Ledger_crypto
open Ledger_cmtree
open Ledger_merkle

type request =
  | Append of {
      member_id : Hash.t;
      payload : bytes;
      clues : string list;
      client_ts : int64;
      nonce : int;
      signature : Ecdsa.signature;
    }
  | Append_batch of {
      member_id : Hash.t;
      entries : (bytes * string list * int64 * int * Ecdsa.signature) list;
          (** (payload, clues, client_ts, nonce, signature) per entry *)
    }
  | Get_payload of { jsn : int }
  | Get_proof of { jsn : int }
  | Get_receipt of { jsn : int }
  | Get_clue_proof of { clue : string; first : int option; last : int option }
  | Get_commitment
  | Get_extension of { old_size : int }
  | Get_journal of { jsn : int }
  | Get_block of { height : int }
  | Get_members
  | Get_checkpoint
  | Get_proof_bundle of { jsn : int }
      (** existence proof {e and} the commitment it verifies against,
          snapshotted atomically under one dispatch — so a client
          verifying while other clients append never races the root *)
  | Get_clue_bundle of { clue : string; first : int option; last : int option }
      (** clue lineage proof with the CM-Tree root it hashes to, same
          atomic-snapshot contract as {!request.Get_proof_bundle} *)
  | Query_page of {
      spec : Ledger_query.Range_query.spec;
      window : Ledger_query.Range_query.window option;
      after : string option;
      page_size : int;
      pin : int option;
    }
      (** one page of a verifiable range/prefix scan (DESIGN.md §16);
          [after] is the cursor returned by the previous page.  [pin]
          (the [epoch] of a previous {!response.Query_page_r}) asks the
          server to answer only from that same snapshot: if a write has
          republished the view since, the reply is a typed
          {!response.Stale_r} refusal instead of a silently
          cross-snapshot page *)

type response =
  | Receipt_r of Receipt.t
  | Receipts_r of Receipt.t list
      (** one receipt per {!Append_batch} entry, in submission order *)
  | Payload_r of bytes option
  | Proof_r of Fam.proof
  | Clue_proof_r of Cm_tree.clue_proof option
  | Commitment_r of { commitment : Hash.t; size : int }
  | Extension_r of Fam.extension_proof
  | Journal_r of { tx : Hash.t; encoded : bytes }
      (** retained leaf + {!Journal_codec} encoding (payload reflects
          occult/purge erasure) *)
  | Block_r of Block.t
  | Members_r of (string * string * bytes) list
      (** (name, role tag, 64-byte public key) *)
  | Checkpoint_r of {
      name : string;
      size : int;
      block_count : int;
      commitment : Hash.t;
      clue_root : Hash.t;
      nonce : int;
      pseudo_genesis : int option;
    }
  | Proof_bundle_r of { proof : Fam.proof; commitment : Hash.t; size : int }
      (** the proof is valid against exactly this [commitment]/[size];
          trust in the commitment itself still comes from out-of-band
          anchors (T-Ledger, gossip) — the bundle only removes the
          fetch-proof/fetch-root race under concurrent appends *)
  | Clue_bundle_r of { proof : Cm_tree.clue_proof option; clue_root : Hash.t }
  | Query_page_r of {
      page : Ledger_query.Range_query.page;
      query_root : Hash.t;
      commitment : Hash.t;
      size : int;
      epoch : int;
    }
      (** the page verifies against exactly this [query_root], snapshotted
          in the same dispatch; [commitment]/[size] pin the journal state
          the index was derived from (same trust shape as
          {!response.Proof_bundle_r}).  [epoch] identifies the snapshot;
          feed it back as {!request.Query_page}[.pin] on follow-up pages
          for a single-snapshot multi-page scan *)
  | Stale_r of { pinned : int; current : int }
      (** retryable refusal: the [pinned] snapshot epoch is no longer
          [current] — restart the scan, or accept the new epoch *)
  | Error_r of string

val encode_request : request -> bytes
val decode_request : bytes -> request option
val encode_response : response -> bytes
val decode_response : bytes -> response option

val w_receipt : Wire.writer -> Receipt.t -> unit
val r_receipt : Wire.reader -> Receipt.t

val handle : Ledger.t -> bytes -> bytes
(** The server: malformed input or failed dispatch yields an encoded
    {!Error_r}; this function never raises. *)

(** {1 Lock-free read path}

    Every request is either a {e read} (answerable from an immutable
    {!Ledger.Read_view.t} without any lock) or a {e mutation} (must be
    serialized by the caller).  {!handle_read} is the read-only half of
    {!handle}: byte-identical responses for reads, [None] for mutations. *)

val classify : request -> [ `Read | `Mutate ]
(** [`Mutate] for {!request.Append}/{!request.Append_batch}, [`Read]
    for everything else. *)

val handle_read : Ledger.t -> bytes -> bytes option
(** Serve a read (or a malformed frame) from the current published
    snapshot — safe to call from any domain, concurrently with a writer.
    Returns [None] iff the frame decodes to a mutation, which the caller
    must route through {!handle} under its write serialization.  Never
    raises. *)

val handle_view : Ledger.Read_view.t -> bytes -> bytes option
(** {!handle_read} against an explicitly captured snapshot — for
    callers (the sharded fleet) that pin one view across several inner
    dispatches. *)

(** Client-side request building and response interpretation. *)
module Client : sig
  type t

  val create :
    ?auto_batch:int ->
    ?crypto:Crypto_profile.t ->
    ledger_uri:string ->
    member:Roles.member ->
    priv:Ecdsa.private_key ->
    unit ->
    t
  (** With [auto_batch], {!buffer_append} flushes itself every
      [auto_batch] entries.  [crypto] (default {!Crypto_profile.Real})
      selects how π_c is produced: a client of a simulated-profile
      service must sign under the same profile for the service's
      signature check to accept — see {!Crypto_profile.sign_pure}.
      @raise Invalid_argument when [auto_batch < 1]. *)

  val make_append : t -> ?clues:string list -> client_ts:int64 -> bytes -> bytes
  (** Sign the request locally (π_c) and encode it.  The nonce is
      maintained per client. *)

  val make_append_batch : t -> (bytes * string list * int64) list -> bytes
  (** Sign each [(payload, clues, client_ts)] entry under the client's
      nonce sequence and encode one {!Append_batch} request. *)

  (** {2 Auto-batching}

      Instead of one round trip per append, a client can buffer signed
      entries locally and ship them as a single {!Append_batch}. *)

  val buffer_append :
    t -> ?clues:string list -> client_ts:int64 -> bytes -> bytes option
  (** Sign and buffer one entry.  Returns an encoded {!Append_batch}
      request when the buffer just reached the [auto_batch] threshold
      (the buffer is then empty again), [None] otherwise. *)

  val flush : t -> bytes option
  (** Encode and drain the buffer; [None] when nothing is buffered. *)

  val pending : t -> int
  (** Entries currently buffered. *)

  val make_get_proof : jsn:int -> bytes
  val make_get_payload : jsn:int -> bytes
  val make_get_receipt : jsn:int -> bytes
  val make_get_clue_proof : clue:string -> ?first:int -> ?last:int -> unit -> bytes
  val make_get_commitment : unit -> bytes
  val make_get_extension : old_size:int -> bytes
  val make_get_journal : jsn:int -> bytes
  val make_get_block : height:int -> bytes
  val make_get_members : unit -> bytes
  val make_get_checkpoint : unit -> bytes
  val make_get_proof_bundle : jsn:int -> bytes

  val make_get_clue_bundle :
    clue:string -> ?first:int -> ?last:int -> unit -> bytes

  val make_query_page :
    spec:Ledger_query.Range_query.spec ->
    ?window:Ledger_query.Range_query.window ->
    ?after:string ->
    ?pin:int ->
    page_size:int ->
    unit ->
    bytes
  (** [pin] repeats the [epoch] of an earlier page so the whole scan is
      served from one snapshot (see {!request.Query_page}). *)

  val parse : bytes -> response option
end
