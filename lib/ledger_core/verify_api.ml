open Ledger_crypto
module Mpt = Ledger_mpt.Mpt
module Query_index = Ledger_query.Query_index
module Range_query = Ledger_query.Range_query

type level = Server | Client

type target =
  | Existence of { jsn : int; payload_digest : Hash.t option }
  | Clue of { key : string }
  | Clue_range of { key : string; first : int; last : int }
  | Receipt_check of Receipt.t
  | Query_complete of {
      spec : Range_query.spec;
      window : Range_query.window option;
      page_size : int;
    }

type outcome = {
  target : target;
  level : level;
  ok : bool;
  detail : string;
}

let verify_existence ledger level jsn payload_digest =
  if jsn < 0 || jsn >= Ledger.size ledger then (false, "jsn out of range")
  else
    match level with
    | Server -> (
        (* the server checks its own accumulator leaf directly *)
        let stored = Ledger.tx_hash_of ledger jsn in
        let j = Ledger.journal ledger jsn in
        let recomputed =
          if Ledger.is_occulted ledger jsn then stored else Journal.tx_hash j
        in
        if not (Hash.equal stored recomputed) then
          (false, "server: journal content does not match leaf")
        else
          match payload_digest with
          | None -> (true, "server: leaf consistent")
          | Some d -> (
              match Ledger.payload ledger jsn with
              | Some p when Hash.equal (Hash.digest_bytes p) d ->
                  (true, "server: payload digest matches")
              | Some _ -> (false, "server: payload digest mismatch")
              | None -> (false, "server: payload erased")))
    | Client ->
        let proof = Ledger.get_proof ledger jsn in
        if Ledger.verify_existence ledger ~jsn ~payload_digest proof then
          (true, "client: fam proof verified against commitment")
        else (false, "client: fam proof rejected")

let verify_clue ledger level key range =
  let entries = Ledger.clue_entries ledger key in
  if entries = 0 then (false, "unknown clue")
  else
    match level with
    | Server ->
        if Ledger.verify_clue_server ledger ~clue:key then
          (true, Printf.sprintf "server: %d entries consistent" entries)
        else (false, "server: clue accumulator mismatch")
    | Client -> (
        let first, last =
          match range with Some (f, l) -> (f, l) | None -> (0, entries - 1)
        in
        if first < 0 || last >= entries || first > last then
          (false, "version range out of bounds")
        else
          match Ledger.prove_clue ledger ~clue:key ~first ~last () with
          | None -> (false, "server failed to assemble the clue proof")
          | Some proof ->
              if Ledger.verify_clue_client ledger proof then
                ( true,
                  Printf.sprintf "client: versions %d..%d verified" first last )
              else (false, "client: CM-Tree proof rejected"))

let spec_str = function
  | Range_query.Prefix p -> Printf.sprintf "prefix %S" p
  | Range_query.Between { lo; hi } ->
      Printf.sprintf "range %S..%s" lo
        (match hi with Some h -> Printf.sprintf "%S" h | None -> "∞")

let verify_query ledger level spec window page_size =
  if page_size <= 0 then (false, "page_size must be positive")
  else
    let idx = Ledger.query_index ledger in
    match level with
    | Server ->
        (* the server checks its own ordered index: every committed value
           in the range must decode and agree with the in-memory log *)
        let lo, hi = Range_query.bounds spec in
        let ok = ref true and n = ref 0 in
        Mpt.iter_range (Query_index.trie idx) ~lo ?hi (fun key value ->
            incr n;
            match Query_index.clue_of_key key with
            | None -> ok := false
            | Some clue -> (
                match Query_index.decode_value value with
                | Some (count, chain)
                  when count = Query_index.clue_count idx ~clue
                       && Hash.equal chain (Query_index.chain_at idx ~clue count)
                  ->
                    ()
                | _ -> ok := false));
        if !ok then (true, Printf.sprintf "server: %d clues consistent" !n)
        else (false, "server: ordered index entry inconsistent")
    | Client -> (
        (* full paginated scan replayed through the client-side verifier.
           Root and pages come from one published snapshot, so the replay
           cannot straddle a concurrent append: the completeness verdict
           is about a single index state. *)
        let v = Ledger.read_view ledger in
        let idx = Ledger.Read_view.query_index v in
        let root = Ledger.Read_view.query_root v in
        let rec collect after acc guard =
          if guard > 1_000_000 then Error "pagination did not terminate"
          else
            let pg = Range_query.page idx ~spec ?window ?after ~page_size () in
            match pg.Range_query.cursor with
            | Some c -> collect (Some c) (pg :: acc) (guard + 1)
            | None -> Ok (List.rev (pg :: acc))
        in
        match collect None [] 0 with
        | Error e -> (false, e)
        | Ok pages -> (
            match
              Range_query.verify_pages ~root ~spec ?window ~page_size pages
            with
            | Ok rows ->
                ( true,
                  Printf.sprintf "client: %d pages, %d rows verified"
                    (List.length pages) (List.length rows) )
            | Error e -> (false, "client: " ^ e)))

let verify_receipt ledger (r : Receipt.t) =
  if not (Ledger.verify_receipt ledger r) then
    (false, "receipt signature invalid")
  else if
    r.Receipt.jsn < Ledger.size ledger
    && not (Hash.equal r.Receipt.tx_hash (Ledger.tx_hash_of ledger r.Receipt.jsn))
  then (false, "receipt tx-hash diverges from the ledger (repudiation)")
  else (true, "receipt verified")

(* Cacheable questions: a (root, jsn, verifier-string) triple must pin
   down the whole verdict.  Existence verdicts are a deterministic
   function of ledger state, jsn and the expected payload digest; receipt
   verdicts additionally depend on the receipt bytes, folded into the
   verifier string.  Clue verdicts span many journals and stay uncached. *)
let cache_key ~level target =
  let level_str = match level with Server -> "server" | Client -> "client" in
  match target with
  | Existence { jsn; payload_digest } ->
      Some
        ( jsn,
          Printf.sprintf "existence:%s:%s" level_str
            (match payload_digest with
            | Some d -> Hash.to_hex d
            | None -> "-") )
  | Receipt_check r ->
      let rd =
        Receipt.signing_digest ~jsn:r.Receipt.jsn
          ~request_hash:r.Receipt.request_hash ~tx_hash:r.Receipt.tx_hash
          ~block_hash:r.Receipt.block_hash ~timestamp:r.Receipt.timestamp
      in
      let sd = Hash.digest_bytes (Ecdsa.signature_to_bytes r.Receipt.lsp_sig) in
      Some
        ( r.Receipt.jsn,
          Printf.sprintf "receipt:%s:%s" level_str
            (Hash.to_hex (Hash.combine rd sd)) )
  | Query_complete { spec; window; page_size } ->
      (* query verdicts are pinned by the journal commitment (the index is
         a pure function of journal history) plus the canonical query
         digest; jsn slot 0 keeps the key in the cache's (root, jsn,
         verifier) shape *)
      Some
        ( 0,
          Printf.sprintf "%s:%s" level_str
            (Range_query.describe ~spec ?window ~page_size ()) )
  | Clue _ | Clue_range _ -> None

let verify ?cache ledger ~level target =
  let sp = Ledger_obs.Trace.enter "verify" in
  let root = Ledger.commitment ledger in
  let key =
    match cache with None -> None | Some _ -> cache_key ~level target
  in
  let cached =
    match (cache, key) with
    | Some c, Some (jsn, verifier) ->
        Option.map
          (fun ok -> (ok, "cache: verdict reused"))
          (Verify_cache.find c ~root ~jsn ~verifier)
    | _ -> None
  in
  let ok, detail =
    match cached with
    | Some outcome -> outcome
    | None ->
        let ok, detail =
          match target with
          | Existence { jsn; payload_digest } ->
              verify_existence ledger level jsn payload_digest
          | Clue { key } -> verify_clue ledger level key None
          | Clue_range { key; first; last } ->
              verify_clue ledger level key (Some (first, last))
          | Receipt_check r -> verify_receipt ledger r
          | Query_complete { spec; window; page_size } ->
              verify_query ledger level spec window page_size
        in
        (match (cache, key) with
        | Some c, Some (jsn, verifier) ->
            Verify_cache.store c ~root ~jsn ~verifier ok
        | _ -> ());
        (ok, detail)
  in
  if Ledger_obs.Obs.enabled () then begin
    let verifier =
      match level with Server -> "server" | Client -> "client"
    in
    let subject =
      match target with
      | Existence { jsn; _ } -> Ledger_obs.Audit_log.Journal jsn
      | Clue { key } | Clue_range { key; _ } -> Ledger_obs.Audit_log.Clue key
      | Receipt_check r -> Ledger_obs.Audit_log.Receipt r.Receipt.jsn
      | Query_complete { spec; _ } ->
          Ledger_obs.Audit_log.Clue (spec_str spec)
    in
    Ledger_obs.Audit_log.record ~verifier subject
      (if ok then Ledger_obs.Audit_log.Verified
       else Ledger_obs.Audit_log.Repudiated detail)
  end;
  Ledger_obs.Trace.exit sp;
  { target; level; ok; detail }

let verify_all ledger ~level targets =
  let outcomes = List.map (verify ledger ~level) targets in
  (outcomes, List.for_all (fun o -> o.ok) outcomes)

let pp_outcome fmt o =
  let target =
    match o.target with
    | Existence { jsn; _ } -> Printf.sprintf "existence jsn=%d" jsn
    | Clue { key } -> Printf.sprintf "clue %s" key
    | Clue_range { key; first; last } ->
        Printf.sprintf "clue %s [%d..%d]" key first last
    | Receipt_check r -> Printf.sprintf "receipt jsn=%d" r.Receipt.jsn
    | Query_complete { spec; window; page_size } ->
        Printf.sprintf "query %s%s page_size=%d" (spec_str spec)
          (match window with
          | Some { Range_query.t1; t2 } -> Printf.sprintf " jsn∈[%d,%d]" t1 t2
          | None -> "")
          page_size
  in
  Format.fprintf fmt "%s @@ %s: %s (%s)" target
    (match o.level with Server -> "server" | Client -> "client")
    (if o.ok then "OK" else "FAILED")
    o.detail
