(** Client-side verification state (paper §II-C, verification manner 2:
    "verified at client side when LSP is distrusted").

    A client keeps, outside the LSP's reach:
    - the receipts (π_s) for its own transactions;
    - a {e trusted anchor}: a fam checkpoint captured after the client (or
      an auditor it trusts) fully verified the ledger, plus the commitment
      it corresponds to.

    With those, the client can check existence proofs and receipts
    entirely locally, detect LSP repudiation, and decide when its anchor
    is stale (the commitment advanced) and a re-audit is warranted. *)

open Ledger_crypto
open Ledger_storage
open Ledger_merkle

type t

val create : name:string -> lsp_pub:Ecdsa.public_key -> t
val name : t -> string

(** {1 Health}

    A client distinguishes two very different kinds of trouble.
    {e Transient transport faults} (timeouts, garbled bytes, late
    responses) put it in [Degraded]: it keeps retrying with backoff and
    returns to [Healthy] on the next success.  A {e cryptographic
    verification failure} (bad receipt signature, repudiated journal, bad
    proof) makes it [Compromised] — permanently: no retry can make a bad
    proof good, and a client that "recovered" from one would be retrying
    the LSP's lie into acceptance. *)

type status = Healthy | Degraded | Compromised

val status : t -> status
val status_to_string : status -> string

val transient_faults : t -> int
(** Transport faults observed over the client's lifetime. *)

val last_fault : t -> string option

val note_transport_fault : t -> reason:string -> unit
(** Record a transient fault; [Healthy] becomes [Degraded]. *)

val note_recovery : t -> unit
(** A request succeeded; [Degraded] returns to [Healthy].  [Compromised]
    is sticky. *)

val note_verification_failure : t -> reason:string -> unit
(** Record cryptographic evidence against the LSP; the client becomes
    [Compromised] for good. *)

(** {1 Receipts} *)

val remember_receipt : t -> Receipt.t -> unit
val receipts : t -> Receipt.t list
(** Newest first. *)

val receipt_for : t -> jsn:int -> Receipt.t option

(** {1 Trusted anchors} *)

val adopt_anchor : t -> anchor:Fam.anchor -> commitment:Hash.t -> unit
(** Trust a checkpoint (typically after {!Audit.run} passed). *)

val anchor : t -> (Fam.anchor * Hash.t) option
val anchored_upto : t -> int
(** Journals covered by the trusted anchor (0 when none). *)

(** {1 Local verification (no trust in the LSP)} *)

val check_existence :
  ?cache:Verify_cache.t ->
  t -> jsn:int -> leaf:Hash.t -> current_commitment:Hash.t ->
  Fam.anchored_proof -> bool
(** Verify a proof the LSP shipped: against the client's trusted anchor
    when it covers the journal, else against [current_commitment] (which
    the client must have obtained through a channel it trusts, e.g. a
    T-Ledger entry).  With [cache], a verdict already computed for the
    same (commitment, jsn, leaf, proof, anchor state) is reused instead
    of replaying the proof; the verdict is unchanged either way. *)

val check_receipt_against : t -> ledger_tx_hash:(int -> Hash.t option) -> jsn:int ->
  [ `Ok | `No_receipt | `Bad_signature | `Repudiated ]
(** Compare a remembered receipt with what the ledger {e now} claims for
    that jsn; [`Repudiated] means the LSP rewrote or dropped the journal
    after issuing the receipt.  Uses real ECDSA (the client is outside the
    simulated-profile boundary). *)

val stale : t -> current_size:int -> bool
(** The ledger grew past the anchor: new journals are unverified. *)

val check_growth :
  t ->
  delta:int ->
  new_size:int ->
  new_commitment:Hash.t ->
  Fam.extension_proof ->
  bool
(** Verify the ledger only {e appended} since the client's anchor (fam
    extension proof).  On success the caller can audit just the suffix
    and then {!adopt_anchor} the fresh state, instead of re-auditing from
    genesis. *)

(** {1 Self-healing remote checks} *)

val check_receipt_remote :
  t ->
  transport:Transport.t ->
  ?policy:Transport.policy ->
  ?seed:int ->
  clock:Clock.t ->
  jsn:int ->
  unit ->
  ( [ `Ok | `No_receipt | `Bad_signature | `Repudiated ],
    Transport.error )
  result
(** {!check_receipt_against} over an unreliable transport: fetch what the
    ledger currently claims for [jsn] (with retry/backoff/timeouts per
    the policy, degrading the client while faults persist) and compare
    with the remembered receipt.  Transient faults are retried and — when
    exhausted — reported as [Error] {e without} concluding anything about
    the receipt.  A service that refuses to produce a journal the client
    holds a receipt for, or produces one that no longer matches, is
    cryptographic evidence: the client turns [Compromised] and the
    verdict is never softened by retrying. *)
