(** The unified Verify API of §IV-C:

    {v Verify(lgid, CLUE, *{key, txdata, rho, root}, level) v}

    A single entry point dispatching on the verification target (journal
    existence, whole clue, clue version range, LSP receipt) and the trust
    level ([Server] when the LSP is trusted and verifies in place;
    [Client] when proof objects are assembled, shipped, and replayed by
    the caller).  This mirrors how the production service exposes one
    Verify endpoint over the underlying mechanisms. *)

open Ledger_crypto

type level = Server | Client
(** Where the validation runs (paper §II-C: "verified at server side when
    LSP can be fully trusted; verified at client side when LSP is
    distrusted"). *)

type target =
  | Existence of { jsn : int; payload_digest : Hash.t option }
      (** journal existence against the fam commitment *)
  | Clue of { key : string }
      (** entire N-lineage of a clue *)
  | Clue_range of { key : string; first : int; last : int }
      (** lineage within version boundaries *)
  | Receipt_check of Receipt.t
      (** an LSP receipt held by the client *)
  | Query_complete of {
      spec : Ledger_query.Range_query.spec;
      window : Ledger_query.Range_query.window option;
      page_size : int;
    }
      (** a full paginated range/prefix scan replayed with completeness
          proofs against the ordered query index (DESIGN.md §16); at
          [Server] level the ordered index is checked for internal
          consistency instead *)

type outcome = {
  target : target;
  level : level;
  ok : bool;
  detail : string;
}

val spec_str : Ledger_query.Range_query.spec -> string
(** Short human-readable rendering of a query spec (audit subjects,
    outcome printing). *)

val cache_key : level:level -> target -> (int * string) option
(** The memoization key [(jsn, verifier-question)] for a target, or
    [None] for targets that must always replay (clue lineages).  The
    verifier string pins the whole question — level, target kind and
    auxiliary digests — so two different questions never collide.
    Exposed for layers that key verdicts under a different trust root
    (the sharded engine keys by super-root). *)

val verify : ?cache:Verify_cache.t -> Ledger.t -> level:level -> target -> outcome
(** With [cache], existence and receipt verdicts are memoized per
    (current commitment, jsn, question) and redundant proof replays are
    skipped; clue targets always replay.  The cache MUST be
    {!Verify_cache.attach}ed to the ledger — commitment-keying alone
    cannot see {!Ledger.reorganize}'s payload erasure, which changes
    verdicts without appending a journal.  Outcomes (the [ok] field)
    are identical with and without a cache; only [detail] reveals a
    hit. *)

val verify_all : Ledger.t -> level:level -> target list -> outcome list * bool
(** All targets; the conjunction is the second component (any failure
    fails the batch, as in the audit). *)

val pp_outcome : Format.formatter -> outcome -> unit
