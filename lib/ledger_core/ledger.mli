(** The LedgerDB kernel: journals, fam accumulator, CM-Tree, world-state,
    blocks, receipts, time anchoring, purge and occult (paper §II-C).

    One [Ledger.t] plays the role of proxy + server + shared storage of
    Fig. 1.  Clients interact through {!append} (which performs the
    three-phase signing: the client's π_c is checked, the journal is
    committed, and the LSP's π_s receipt is returned) and through the
    verification APIs, which can be exercised at server level (trusting
    the LSP) or client level (proof objects shipped out and replayed). *)

open Ledger_crypto
open Ledger_storage
open Ledger_merkle
open Ledger_cmtree
open Ledger_timenotary

type config = {
  name : string;
  block_size : int;  (** journals per block *)
  fam_delta : int;  (** fractal height of the journal accumulator *)
  latency : Latency_model.t;
  crypto : Crypto_profile.t;
  member_ca : Ecdsa.public_key option;
      (** when set, every member registration must present a certificate
          from this CA, and the audit verifies the chain per journal
          (threat model §II-B). *)
}

val default_config : config

type t

val create :
  ?config:config ->
  ?t_ledger:T_ledger.t ->
  ?tsa:Tsa.pool ->
  clock:Clock.t ->
  unit ->
  t

val config : t -> config
val clock : t -> Clock.t
val uri : t -> string
val registry : t -> Roles.registry
val lsp_public_key : t -> Ecdsa.public_key

val register_member :
  t ->
  ?certificate:Roles.certificate ->
  name:string ->
  role:Roles.role ->
  Ecdsa.public_key ->
  Roles.member
(** @raise Invalid_argument when the ledger requires a member CA and the
    certificate is missing or invalid. *)

val new_member :
  ?ca_priv:Ecdsa.private_key ->
  t ->
  name:string ->
  role:Roles.role ->
  Roles.member * Ecdsa.private_key
(** Convenience: generate a keypair (seeded by the name) and register;
    with [ca_priv], also mint and record the member's certificate. *)

(** {1 Read snapshots (lock-free read path)}

    Every mutation boundary — append, batch commit, block seal, member
    registration, purge, occult, reorganize, storage compaction, the
    Unsafe forgeries, and load — republishes an immutable {!Read_view.t}
    with a single [Atomic.set].  Any domain can grab the current view
    with {!read_view} (a single [Atomic.get], no lock) and serve proofs,
    payloads, receipts and range-query pages against it; the view's
    accessors mirror the corresponding [Ledger] reads byte-for-byte
    (DESIGN.md §17).  Purge/occult erasures remain visible through
    already-captured views: snapshots never resurrect erased payloads. *)

module Read_view : sig
  type t

  val epoch : t -> int
  (** Publication counter; strictly increases with every republish.
      Pages of a query scan pinned to an epoch either all come from that
      view or the scan is refused as stale. *)

  val name : t -> string
  val size : t -> int
  val block_count : t -> int
  val block : t -> int -> Block.t
  val blocks : t -> Block.t list
  val journal : t -> int -> Journal.t
  val tx_hash_of : t -> int -> Hash.t

  val payload : t -> int -> bytes option
  (** Served from the pinned stream capture — no latency model is
      charged (there is no writer clock to charge from a reader
      domain). *)

  val commitment : t -> Hash.t
  val get_proof : t -> int -> Fam.proof
  val prove_extension : t -> old_size:int -> Fam.extension_proof
  val cm_tree : t -> Cm_tree.t
  val clue_root : t -> Hash.t

  val prove_clue :
    t -> clue:string -> ?first:int -> ?last:int -> unit ->
    Cm_tree.clue_proof option

  val query_index : t -> Ledger_query.Query_index.t
  val query_root : t -> Hash.t
  val members_wire : t -> (string * string * bytes) list
  (** (name, role tag, public-key bytes), sorted by name — the
      [Get_members] wire form, precomputed at publication. *)

  val pseudo_genesis_jsn : t -> int option
  val published_at : t -> int64
  (** Clock value pinned when the view was published; {!receipt}
      timestamps carry it. *)

  val receipt : t -> int -> Receipt.t
  (** Receipt signed with the pure crypto profile (no clock charge)
      against {!published_at}. *)
end

val read_view : t -> Read_view.t
(** The current snapshot — one [Atomic.get], safe from any domain. *)

val view_epoch : t -> int
(** Epoch of the current snapshot. *)

(** {1 Append (journal-level commitment, Fig. 1)} *)

val append :
  t ->
  member:Roles.member ->
  priv:Ecdsa.private_key ->
  ?cosigners:(Roles.member * Ecdsa.private_key) list ->
  ?clues:string list ->
  bytes ->
  Receipt.t
(** Sign the request as [member] (π_c), commit the journal, return the
    LSP-signed receipt (π_s).  [cosigners] produce a multi-signed journal
    (the Fig. 7 {e who} sweep).
    @raise Invalid_argument if the member is unknown. *)

val size : t -> int

val store_healthy : t -> bool
(** [false] once the backing {!Stream_store} has been killed by the
    chaos hooks ({!Stream_store.Unsafe.kill}); sharded coordinators
    probe every member ledger before sealing an epoch so a dead shard
    refuses the seal instead of tearing it. *)

val backing_store : t -> Stream_store.t
(** The ledger's stream store — exposed for the fault-injection suite
    ({!Stream_store.Unsafe.kill} on one shard) and storage accounting. *)

val journal : t -> int -> Journal.t
(** Journal metadata by jsn (present even after occult/purge tombstoning —
    see {!payload} for the data itself).
    @raise Invalid_argument if out of range. *)

val payload : t -> int -> bytes option
(** Journal payload from the stream store (latency-charged);
    [None] after occult or purge erasure. *)

val tx_hash_of : t -> int -> Hash.t
(** Accumulator leaf digest for a jsn (Protocol 2: this is the retained
    hash for occulted journals). *)

val iter_journals : t -> (Journal.t -> unit) -> unit

(** {1 Blocks and receipts} *)

val block_count : t -> int
val block : t -> int -> Block.t
val blocks : t -> Block.t list
val seal_block : t -> unit
(** Force-commit a partial block. *)

val append_batch :
  ?pool:Ledger_par.Domain_pool.t ->
  t ->
  member:Roles.member ->
  priv:Ecdsa.private_key ->
  ?seal:bool ->
  (bytes * string list) list ->
  Receipt.t list
(** Append a batch of (payload, clues) pairs in one round trip: one
    network charge, one storage append and one fam accumulation per
    block-sized chunk, and (with [seal], the default) a single trailing
    block seal so all receipts are final.  [~seal:false] leaves a partial
    trailing block pending — exactly the state sequential {!append}s
    would have left — for callers that keep batching.  The committed
    history is byte-identical to appending the entries one at a time.

    [pool] (default {!Ledger_par.Domain_pool.default}) fans the pure
    work — leaf hashing, fam interior hashing, π_c checks — across
    domains; signing, clock charges and accumulation stay sequential, so
    the history is byte-identical for any pool size (DESIGN.md §12). *)

val append_signed :
  t ->
  member_id:Hash.t ->
  payload:bytes ->
  clues:string list ->
  client_ts:int64 ->
  nonce:int ->
  signature:Ecdsa.signature ->
  (Receipt.t, string) result
(** Remote append (Fig. 1): the request was signed on the client side;
    the server re-derives the request hash and validates π_c before
    committing. *)

val append_signed_batch :
  ?pool:Ledger_par.Domain_pool.t ->
  t ->
  member_id:Hash.t ->
  (bytes * string list * int64 * int * Ecdsa.signature) list ->
  (Receipt.t list, string) result
(** Remote batched append (the [Append_batch] wire request): each entry
    is [(payload, clues, client_ts, nonce, signature)].  Every signature
    is validated — digests re-derived and π_c decided across [pool],
    before any state mutation — and a bad entry rejects the whole batch
    atomically, with the same error and simulated-clock position as the
    sequential path.  Commits through the amortized batch pipeline and
    seals the trailing block, so all receipts are final. *)

val get_receipt : t -> int -> Receipt.t
(** Final receipt for a jsn (re-signed with the block hash once the block
    is sealed). *)

val verify_receipt : t -> Receipt.t -> bool
(** Check an LSP receipt signature under the ledger's crypto profile
    (use {!Receipt.verify} directly only with the [Real] profile). *)

(** {1 Existence verification (what)} *)

val commitment : t -> Hash.t
(** Current fam node-set digest — the ledger's trust root. *)

val get_proof : t -> int -> Fam.proof
val verify_existence : t -> jsn:int -> payload_digest:Hash.t option -> Fam.proof -> bool
(** Client-level check: the proof must chain the journal's tx-hash to the
    current commitment; when [payload_digest] is given it must also match
    the journal's recorded request linkage. *)

val prove_extension : t -> old_size:int -> Fam.extension_proof
(** Prove the ledger is an append-only extension of its state at
    [old_size] journals — what a returning client checks before adopting
    a fresh anchor. *)

val verify_extension :
  t -> old_size:int -> old_peaks:Proof.node_set -> Fam.extension_proof -> bool

val make_anchor : t -> Fam.anchor
val get_proof_anchored : t -> Fam.anchor -> int -> Fam.anchored_proof
val verify_anchored : t -> Fam.anchor -> leaf:Hash.t -> Fam.anchored_proof -> bool

(** {1 Clues and N-lineage (CM-Tree)} *)

val cm_tree : t -> Cm_tree.t

val query_index : t -> Ledger_query.Query_index.t
(** The ordered clue trie backing verifiable range/prefix queries
    (DESIGN.md §16).  A deterministic pure function of committed journal
    history: replaying the journal stream rebuilds the same index, so its
    root needs no separate commitment in the block chain. *)

val query_root : t -> Hash.t
(** Root of {!query_index} — the trust anchor a client verifies
    range-query pages against. *)

val clue_jsns : t -> string -> int list
(** All jsns of a clue, ascending — served from the cSL index (§IV-A). *)

val clue_jsns_in_range : t -> string -> lo:int -> hi:int -> int list
(** Jsns of a clue within a jsn interval, via the skip list's O(log n)
    range lookup. *)

val clue_entries : t -> string -> int

val prove_clue : t -> clue:string -> ?first:int -> ?last:int -> unit -> Cm_tree.clue_proof option

val verify_clue_client : t -> Cm_tree.clue_proof -> bool
(** Full client-side clue verification (§IV-C): retrieves the journals in
    the proof's version range, recomputes their digests, replays both
    CM-Tree layers against the latest block's clue root. *)

val verify_clue_server : t -> clue:string -> bool

(** {1 ListTx (§IV-A)} *)

type tx_filter = {
  by_clue : string option;
  by_member : Hash.t option;
  after_ts : int64 option;  (** inclusive lower bound on server_ts *)
  before_ts : int64 option;  (** exclusive upper bound *)
  kinds : string list option;  (** {!Journal.kind_tag} values *)
}

val any_tx : tx_filter
(** Matches everything; override fields with [{ any_tx with ... }]. *)

val list_tx : t -> ?filter:tx_filter -> ?limit:int -> unit -> int list
(** Jsns matching the filter, ascending; clue-filtered queries are served
    from the cSL index. *)

(** {1 World-state (single-layer state accumulator, Fig. 2)}

    Every clue-carrying journal appends one state-transition leaf —
    [H(scatter(clue) ∥ tx-hash)] — to the world-state accumulator, whose
    root is recorded in every block.  A state-update proof shows that a
    particular version of a clue's state was committed, without touching
    the clue's CM-Tree. *)

val world_state_root : t -> Hash.t option
(** [None] while no clue-carrying journal exists. *)

val world_state_size : t -> int

val prove_state_update : t -> clue:string -> version:int -> (int * Proof.path) option
(** [(jsn, path)] for the [version]-th state transition of [clue];
    [None] if out of range. *)

val verify_state_update : t -> clue:string -> tx:Hash.t -> Proof.path -> bool
(** Check a state-transition leaf against the current world-state root. *)

(** {1 Time anchoring (when)} *)

val anchor_via_t_ledger : t -> (Journal.t, T_ledger.error) result
(** Submit the current commitment to the T-Ledger under Protocol 4 and
    record a time journal referencing the accepted entry. *)

val anchor_via_tsa : t -> Journal.t
(** Two-way pegging (Protocol 3) straight to the TSA pool: endorse the
    commitment and anchor the signed token back as a time journal.
    @raise Invalid_argument if the ledger has no TSA pool. *)

val time_journals : t -> Journal.t list
val t_ledger : t -> T_ledger.t option
val tsa_pool : t -> Tsa.pool option

(** {1 Mutation: purge (§III-A2)} *)

type purge_request = {
  upto_jsn : int;  (** erase journals with jsn < upto_jsn *)
  survivors : int list;  (** milestone jsns copied to the survival stream *)
  erase_fam_nodes : bool;  (** also forget fam interior digests *)
}

val affected_members : t -> upto_jsn:int -> Roles.member list
(** Members owning journals below the purge point — the required signer
    set of Prerequisite 1 (plus the DBA). *)

val purge :
  t ->
  request:purge_request ->
  signers:(Roles.member * Ecdsa.private_key) list ->
  (Journal.t, string) result
(** Validates Prerequisite 1, writes the pseudo-genesis and the
    doubly-linked purge journal, erases storage, optionally prunes fam.
    Returns the purge journal. *)

val pseudo_genesis : t -> Journal.t option
(** Latest pseudo-genesis (Protocol 1's verification start), if any. *)

val survival_jsns : t -> int list
val read_survivor : t -> int -> bytes option

(** {1 Mutation: occult (§III-A3)} *)

type occult_mode = Sync | Async

val occult :
  t ->
  target_jsn:int ->
  mode:occult_mode ->
  signers:(Roles.member * Ecdsa.private_key) list ->
  reason:string ->
  (Journal.t, string) result
(** Validates Prerequisite 2 (DBA + regulator), appends the occult journal
    with the retained hash, marks the occult bitmap; [Sync] erases the
    payload immediately, [Async] defers to {!reorganize}. *)

val occult_by_clue :
  t ->
  clue:string ->
  mode:occult_mode ->
  signers:(Roles.member * Ecdsa.private_key) list ->
  reason:string ->
  (Journal.t list, string) result
(** Occult every not-yet-occulted journal carrying the clue ("occult by
    clue", §III-A3).  Returns the occult journals appended. *)

val is_occulted : t -> int -> bool
val reorganize : t -> int
(** Physically erase async-occulted payloads; returns how many. *)

val on_mutate : t -> (unit -> unit) -> unit
(** Register a callback fired after every history mutation — purge,
    occult (either mode) and a non-empty {!reorganize}.  This is the
    invalidation feed for {!Verify_cache}: a cached verdict must never
    outlive the data it vouched for. *)

(** {1 Introspection} *)

val compact_storage : t -> int
(** Compact the journal stream, dropping slots erased by purge/occult;
    returns the number of reclaimed records.  Payload addresses are
    remapped transparently. *)

val stored_digests : t -> int
val journal_bytes : t -> int
val sign_with_profile : t -> priv:Ecdsa.private_key -> pub:Ecdsa.public_key -> Hash.t -> Ecdsa.signature
val verify_with_profile : t -> pub:Ecdsa.public_key -> Hash.t -> Ecdsa.signature -> bool

(** {1 Adversarial hooks (tests and attack demos only)}

    These mutate ledger state the way a malicious LSP or a compromised
    server would (threat-A/B/C of §II-B), so that tests can confirm the
    audit catches each tampering class.  Production code must never call
    them. *)

module Unsafe : sig
  val rewrite_payload : t -> jsn:int -> bytes -> unit
  (** Overwrite a committed journal's payload in place, leaving hashes and
      signatures untouched (naive threat-B). *)

  val rewrite_payload_consistent : t -> jsn:int -> bytes -> unit
  (** Overwrite the payload {e and} recompute the request hash — what an
      LSP colluding with storage can do, but without the client's key, so
      π_c no longer verifies (threat-C). *)

  val forge_server_ts : t -> jsn:int -> int64 -> unit
  (** Rewrite a journal's server timestamp (threat-B on time). *)
end

(** {1 Persistence}

    Durable snapshots of the whole ledger: journals (with their retained
    accumulator leaves, so occulted/purged content stays erased), the
    block chain (timestamps preserved so block hashes — and therefore
    receipts — survive the round trip), membership, and the survival
    stream.  Journal and survivor records are CRC-32 framed
    ({!Ledger_storage.Framing}), so a load can tell a {e torn tail} (crash
    mid-save; the intact prefix is recoverable) from a {e corrupted
    record} (refused, naming the first bad jsn).  [load] replays the
    journals through the same commit path and then checks the recorded
    commitment and clue-root checkpoints, so a framing-valid but tampered
    snapshot is still refused. *)

val save : t -> dir:string -> unit

type load_report = {
  replayed : int;  (** journals actually replayed *)
  declared_size : int option;  (** size recorded in [meta.ldb] *)
  torn_tail : bool;  (** a partial trailing record was discarded *)
  dropped_bytes : int;  (** bytes discarded after the last intact record *)
  blocks_dropped : int;
      (** sealed blocks discarded because they covered lost journals *)
  checkpoint : [ `Verified | `Partial ];
      (** [`Verified]: the replay reproduced the recorded commitment and
          clue root.  [`Partial]: a torn tail was recovered, so the
          checkpoints cannot reproduce; the prefix is internally
          consistent (every leaf re-derived) but must be re-verified
          against an external anchor before it is trusted. *)
}

val load :
  ?config:config ->
  ?t_ledger:T_ledger.t ->
  ?tsa:Tsa.pool ->
  clock:Clock.t ->
  dir:string ->
  unit ->
  (t, string) result
(** Strict load: any damage — torn tail included — is refused with a
    diagnostic naming the first bad jsn or the damaged file. *)

val load_verbose :
  ?config:config ->
  ?t_ledger:T_ledger.t ->
  ?tsa:Tsa.pool ->
  ?recover:bool ->
  clock:Clock.t ->
  dir:string ->
  unit ->
  (t * load_report, string) result
(** Like {!load} but returns the recovery report.  With [~recover:true] a
    torn tail (crash during save) is truncated back to the last intact
    record — on disk too — and the prefix is replayed; silently corrupted
    records (bad checksum on a complete frame, undecodable content, leaf
    mismatch) are {e always} refused with a first-bad-jsn diagnostic,
    recovery mode or not. *)
