open Ledger_crypto
open Ledger_merkle
open Ledger_timenotary

let log = Logs.Src.create "ledgerdb.audit" ~doc:"Dasein audit findings"

module Log = (val Logs.src_log log : Logs.LOG)

type factor = What | When | Who | Chain

type failure = { jsn : int option; factor : factor; message : string }

type report = {
  ok : bool;
  journals_checked : int;
  blocks_checked : int;
  time_anchors_checked : int;
  signatures_checked : int;
  what_seconds : float;
  when_seconds : float;
  who_seconds : float;
  failures : failure list;
}

let factor_to_string = function
  | What -> "what"
  | When -> "when"
  | Who -> "who"
  | Chain -> "chain"

type ctx = {
  ledger : Ledger.t;
  from_jsn : int;
  upto_jsn : int;
  mutable failures : failure list;
  mutable signatures : int;
  mutable anchors : int;
  mutable blocks : int;
}

let factor_to_string_early = function
  | What -> "what"
  | When -> "when"
  | Who -> "who"
  | Chain -> "chain"

let fail ctx ?jsn factor message =
  Log.warn (fun m ->
      m "[%s]%s %s"
        (factor_to_string_early factor)
        (match jsn with Some j -> Printf.sprintf " jsn=%d" j | None -> "")
        message);
  ctx.failures <- { jsn; factor; message } :: ctx.failures

(* Recompute the tx-hash of a journal from its stored content.  For an
   occulted journal (payload gone) Protocol 2 applies: the retained hash —
   which the ledger keeps as the accumulator leaf — stands in. *)
let recomputed_tx ctx (j : Journal.t) =
  if Ledger.is_occulted ctx.ledger j.Journal.jsn then
    Ledger.tx_hash_of ctx.ledger j.Journal.jsn
  else Journal.tx_hash j

(* --- who ----------------------------------------------------------------- *)

let member_pub ctx id =
  if Hash.equal id (Ecdsa.public_key_id (Ledger.lsp_public_key ctx.ledger)) then
    Some (Ledger.lsp_public_key ctx.ledger)
  else
    Option.map
      (fun m -> m.Roles.pub)
      (Roles.find (Ledger.registry ctx.ledger) id)

let check_signature ctx ?jsn ~what pub digest signature =
  ctx.signatures <- ctx.signatures + 1;
  if not (Ledger.verify_with_profile ctx.ledger ~pub digest signature) then
    fail ctx ?jsn Who (what ^ ": signature verification failed")

let check_cosigners ctx (j : Journal.t) =
  List.iter
    (fun (id, signature) ->
      match member_pub ctx id with
      | None -> fail ctx ~jsn:j.Journal.jsn Who "cosigner: unknown member"
      | Some pub ->
          check_signature ctx ~jsn:j.Journal.jsn ~what:"cosigner" pub
            j.Journal.request_hash signature)
    j.Journal.cosigners

let cosigner_has_role ctx (j : Journal.t) role =
  List.exists
    (fun (id, _) ->
      match Roles.find (Ledger.registry ctx.ledger) id with
      | Some m -> m.Roles.role = role
      | None -> false)
    j.Journal.cosigners

let check_member_certificate ctx ~jsn id =
  match (Ledger.config ctx.ledger).Ledger.member_ca with
  | None -> ()
  | Some ca_pub ->
      if not (Hash.equal id (Ecdsa.public_key_id (Ledger.lsp_public_key ctx.ledger)))
      then begin
        let registry = Ledger.registry ctx.ledger in
        match (Roles.find registry id, Roles.certificate_of registry id) with
        | Some m, Some cert ->
            ctx.signatures <- ctx.signatures + 1;
            if not (Roles.verify_certificate ~ca_pub m.Roles.pub cert) then
              fail ctx ~jsn Who "member certificate invalid"
        | Some _, None -> fail ctx ~jsn Who "member has no CA certificate"
        | None, _ -> ()
      end

let who_pass ctx receipts =
  for jsn = ctx.from_jsn to ctx.upto_jsn - 1 do
    let j = Ledger.journal ctx.ledger jsn in
    check_member_certificate ctx ~jsn j.Journal.client_id;
    (* pi_c verification re-derives the request hash from the payload, so
       its cost scales with payload size (the Fig. 7 who sweep). *)
    (if not (Ledger.is_occulted ctx.ledger jsn) then begin
       let expected =
         Journal.request_digest ~ledger_uri:(Ledger.uri ctx.ledger)
           ~kind_tag:(Journal.kind_tag j.Journal.kind)
           ~payload:j.Journal.payload ~clues:j.Journal.clues
           ~client_ts:j.Journal.client_ts ~nonce:j.Journal.nonce
       in
       if not (Hash.equal expected j.Journal.request_hash) then
         fail ctx ~jsn Who "client: request hash does not bind the payload"
     end);
    (match (j.Journal.client_sig, member_pub ctx j.Journal.client_id) with
    | Some signature, Some pub ->
        check_signature ctx ~jsn ~what:"client (pi_c)" pub
          j.Journal.request_hash signature
    | Some _, None -> fail ctx ~jsn Who "client: issuer not in registry"
    | None, _ -> fail ctx ~jsn Who "client: journal is unsigned");
    check_cosigners ctx j;
    (* step 1: mutation-journal prerequisites *)
    (match j.Journal.kind with
    | Journal.Purge _ ->
        if not (cosigner_has_role ctx j Roles.Dba) then
          fail ctx ~jsn Who "purge journal: DBA signature missing"
    | Journal.Occult _ ->
        if not (cosigner_has_role ctx j Roles.Dba) then
          fail ctx ~jsn Who "occult journal: DBA signature missing";
        if not (cosigner_has_role ctx j Roles.Regulator) then
          fail ctx ~jsn Who "occult journal: regulator signature missing"
    | Journal.Normal | Journal.Time _ | Journal.Pseudo_genesis _ -> ())
  done;
  (* step 5: client-held LSP receipts *)
  List.iter
    (fun (r : Receipt.t) ->
      ctx.signatures <- ctx.signatures + 1;
      if not (Ledger.verify_receipt ctx.ledger r) then
        fail ctx ~jsn:r.Receipt.jsn Who "receipt: LSP signature invalid"
      else if
        r.Receipt.jsn < Ledger.size ctx.ledger
        && not
             (Hash.equal r.Receipt.tx_hash
                (Ledger.tx_hash_of ctx.ledger r.Receipt.jsn))
      then
        fail ctx ~jsn:r.Receipt.jsn Who
          "receipt: tx-hash no longer matches the ledger (repudiation)")
    receipts

(* --- when ---------------------------------------------------------------- *)

let when_pass ctx =
  let prev_ts = ref Int64.min_int in
  for jsn = ctx.from_jsn to ctx.upto_jsn - 1 do
    let j = Ledger.journal ctx.ledger jsn in
    if Int64.compare j.Journal.server_ts !prev_ts < 0 then
      fail ctx ~jsn When "timestamps: server_ts not monotone";
    prev_ts := j.Journal.server_ts;
    match j.Journal.kind with
    | Journal.Time (Journal.Direct_tsa token) -> (
        ctx.anchors <- ctx.anchors + 1;
        match Ledger.tsa_pool ctx.ledger with
        | None -> fail ctx ~jsn When "time journal: no TSA pool to verify against"
        | Some pool ->
            (match Tsa.pool_find pool token.Tsa.tsa_id with
            | None ->
                fail ctx ~jsn When "time journal: unknown TSA authority"
            | Some authority ->
                if not (Tsa.verify_token_with_chain authority token) then
                  fail ctx ~jsn When
                    "time journal: TSA token or certificate chain invalid");
            if Int64.compare token.Tsa.timestamp j.Journal.server_ts < 0 then
              fail ctx ~jsn When
                "time journal: TSA timestamp earlier than submission")
    | Journal.Time (Journal.Via_t_ledger { entry_index; client_ts = _; digest })
      -> (
        ctx.anchors <- ctx.anchors + 1;
        match Ledger.t_ledger ctx.ledger with
        | None -> fail ctx ~jsn When "time journal: no T-Ledger configured"
        | Some tl -> (
            if entry_index < 0 || entry_index >= T_ledger.entry_count tl then
              fail ctx ~jsn When "time journal: T-Ledger entry out of range"
            else begin
              let entry = T_ledger.entry tl entry_index in
              if not (Hash.equal entry.T_ledger.digest digest) then
                fail ctx ~jsn When
                  "time journal: T-Ledger entry digest mismatch";
              let path = T_ledger.prove_entry tl entry_index in
              if
                not
                  (T_ledger.verify_entry ~root:(T_ledger.root tl) ~entry path)
              then
                fail ctx ~jsn When
                  "time journal: T-Ledger existence proof failed"
            end;
            match T_ledger.verify_entry_time tl entry_index with
            | Some (Some _, _) | Some (None, Some _) -> ()
            | Some (None, None) ->
                fail ctx ~jsn When
                  "time journal: no verified TSA anchor brackets the entry"
            | None -> ()))
    | Journal.Normal | Journal.Purge _ | Journal.Occult _
    | Journal.Pseudo_genesis _ -> ()
  done

(* --- what ---------------------------------------------------------------- *)

(* Full replay from genesis: rebuild the fam accumulation from recomputed
   tx-hashes and compare against every anchored digest (steps 3–4). *)
let what_replay ctx =
  let delta = (Ledger.config ctx.ledger).Ledger.fam_delta in
  let replay = Fam.create ~delta in
  for jsn = 0 to ctx.upto_jsn - 1 do
    let j = Ledger.journal ctx.ledger jsn in
    (* anchored digests were taken *before* the time journal was added *)
    (match j.Journal.kind with
    | Journal.Time (Journal.Direct_tsa token) ->
        if
          Fam.size replay > 0
          && not (Hash.equal token.Tsa.digest (Fam.commitment replay))
        then
          fail ctx ~jsn What
            "replay: TSA-anchored digest diverges from reconstruction"
    | Journal.Time (Journal.Via_t_ledger { digest; _ }) ->
        if
          Fam.size replay > 0
          && not (Hash.equal digest (Fam.commitment replay))
        then
          fail ctx ~jsn What
            "replay: T-Ledger-anchored digest diverges from reconstruction"
    | Journal.Normal | Journal.Purge _ | Journal.Occult _
    | Journal.Pseudo_genesis _ -> ());
    let tx = recomputed_tx ctx j in
    if not (Hash.equal tx (Ledger.tx_hash_of ctx.ledger jsn)) then
      fail ctx ~jsn What "replay: recomputed tx-hash differs from ledger leaf";
    ignore (Fam.append replay tx)
  done;
  if ctx.upto_jsn = Ledger.size ctx.ledger && Fam.size replay > 0 then
    if not (Hash.equal (Fam.commitment replay) (Ledger.commitment ctx.ledger))
    then fail ctx What "replay: final commitment mismatch"

(* Post-purge path (Protocol 1): journals are checked by fam existence
   proofs against the live commitment instead of a genesis replay. *)
let what_by_proofs ctx =
  for jsn = ctx.from_jsn to ctx.upto_jsn - 1 do
    let j = Ledger.journal ctx.ledger jsn in
    let tx = recomputed_tx ctx j in
    if not (Hash.equal tx (Ledger.tx_hash_of ctx.ledger jsn)) then
      fail ctx ~jsn What "proofs: recomputed tx-hash differs from ledger leaf";
    let proof = Ledger.get_proof ctx.ledger jsn in
    if
      not
        (Fam.verify
           ~commitment:(Ledger.commitment ctx.ledger)
           ~leaf:tx proof)
    then fail ctx ~jsn What "proofs: fam existence proof failed"
  done

let check_blocks ctx =
  let blocks = Ledger.blocks ctx.ledger in
  let prev = ref None in
  List.iter
    (fun (b : Block.t) ->
      let overlaps =
        b.Block.start_jsn < ctx.upto_jsn
        && b.Block.start_jsn + b.Block.count > ctx.from_jsn
      in
      if overlaps then begin
        ctx.blocks <- ctx.blocks + 1;
        (* recompute the block's transaction root *)
        let txs =
          List.init b.Block.count (fun k ->
              Ledger.tx_hash_of ctx.ledger (b.Block.start_jsn + k))
        in
        if not (Hash.equal (Merkle_tree.root (Merkle_tree.build txs)) b.Block.tx_root)
        then
          fail ctx Chain
            (Printf.sprintf "block %d: tx root mismatch" b.Block.height);
        (* step 4: boundary verification across adjacent blocks *)
        match !prev with
        | Some p when not (Block.links_to p b) ->
            fail ctx Chain
              (Printf.sprintf "block %d: hash chain broken" b.Block.height)
        | Some _ | None -> ()
      end;
      prev := Some b)
    blocks

(* --- driver ---------------------------------------------------------------- *)

let run ?from_jsn ?upto_jsn ?before_ts ?(receipts = []) ledger =
  (* temporal predicate (§V): translate a timestamp bound into a jsn
     bound — journals are committed in server_ts order *)
  let ts_upto =
    match before_ts with
    | None -> None
    | Some bound ->
        let n = Ledger.size ledger in
        let rec first_at_or_after jsn =
          if jsn >= n then n
          else if
            Int64.compare (Ledger.journal ledger jsn).Journal.server_ts bound
            >= 0
          then jsn
          else first_at_or_after (jsn + 1)
        in
        Some (first_at_or_after 0)
  in
  let upto_jsn =
    match (upto_jsn, ts_upto) with
    | Some a, Some b -> Some (min a b)
    | Some a, None -> Some a
    | None, Some b -> Some b
    | None, None -> None
  in
  let from_jsn =
    match from_jsn with
    | Some f -> f
    | None -> (
        match Ledger.pseudo_genesis ledger with
        | Some pg -> pg.Journal.jsn
        | None -> 0)
  in
  let upto_jsn = Option.value upto_jsn ~default:(Ledger.size ledger) in
  let ctx =
    { ledger; from_jsn; upto_jsn; failures = []; signatures = 0; anchors = 0;
      blocks = 0 }
  in
  let timed name f =
    let sp = Ledger_obs.Trace.enter name in
    let t0 = Unix.gettimeofday () in
    f ctx;
    let dt = Unix.gettimeofday () -. t0 in
    Ledger_obs.Trace.exit sp;
    dt
  in
  let who_seconds = timed "audit.who" (fun ctx -> who_pass ctx receipts) in
  let when_seconds = timed "audit.when" when_pass in
  let what_seconds =
    timed "audit.what" (fun ctx ->
        if ctx.from_jsn = 0 then what_replay ctx else what_by_proofs ctx;
        check_blocks ctx)
  in
  Ledger_obs.Metrics.incr "audit_runs_total";
  (* Per-jsn coverage entries: one Verified per audited journal without a
     failure, one Repudiated per journal with evidence.  Ledger-level
     failures (no jsn) attach to the commitment instead. *)
  if Ledger_obs.Obs.enabled () then begin
    let failed = Hashtbl.create 16 in
    let global_fail = ref None in
    List.iter
      (fun f ->
        match f.jsn with
        | Some j -> Hashtbl.replace failed j f.message
        | None -> if !global_fail = None then global_fail := Some f.message)
      ctx.failures;
    for jsn = from_jsn to upto_jsn - 1 do
      Ledger_obs.Audit_log.record ~verifier:"auditor" (Journal jsn)
        (match Hashtbl.find_opt failed jsn with
        | Some msg -> Ledger_obs.Audit_log.Repudiated msg
        | None -> Ledger_obs.Audit_log.Verified)
    done;
    Ledger_obs.Audit_log.record ~verifier:"auditor"
      (Commitment (Ledger.size ledger))
      (match !global_fail with
      | Some msg -> Ledger_obs.Audit_log.Repudiated msg
      | None -> Ledger_obs.Audit_log.Verified)
  end;
  {
    ok = ctx.failures = [];
    journals_checked = max 0 (upto_jsn - from_jsn);
    blocks_checked = ctx.blocks;
    time_anchors_checked = ctx.anchors;
    signatures_checked = ctx.signatures;
    what_seconds;
    when_seconds;
    who_seconds;
    failures = List.rev ctx.failures;
  }

let pp_report fmt r =
  Format.fprintf fmt
    "audit %s: %d journals, %d blocks, %d anchors, %d signatures; what=%.3fms when=%.3fms who=%.3fms"
    (if r.ok then "PASSED" else "FAILED")
    r.journals_checked r.blocks_checked r.time_anchors_checked
    r.signatures_checked (r.what_seconds *. 1000.) (r.when_seconds *. 1000.)
    (r.who_seconds *. 1000.);
  if r.failures <> [] then begin
    Format.fprintf fmt "@\nfailures:";
    List.iter
      (fun f ->
        Format.fprintf fmt "@\n  [%s]%s %s" (factor_to_string f.factor)
          (match f.jsn with
          | Some j -> Printf.sprintf " jsn=%d" j
          | None -> "")
          f.message)
      r.failures
  end
