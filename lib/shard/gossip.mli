(** Non-equivocation gossip over signed super-root announcements.

    A centralized ledger service can, in principle, {e fork}: show one
    sealed super-root to one client and a different one to another for
    the same epoch.  No single client can detect this — each sees a
    perfectly valid signed commitment.  Two clients who compare notes
    can: the service signs every epoch announcement, so two validly
    signed announcements for the same (ledger, epoch) with different
    super-roots are a self-verifying proof of equivocation (Aquareum's
    evident-misbehaviour construction; GlassDB's published-digest
    cross-check).

    Peers — replicas, clients, auditors — accumulate the announcements
    they have seen in a {!t} and {!observe} each other's.  The first
    conflicting pair folds into a compact {!fork_evidence} value whose
    {!verify_fork} needs only the service public key: no ledger state,
    no transport, no trust in either peer.  Once constructed, the
    evidence is permanent — equivocation cannot be retried away. *)

open Ledger_crypto

(** {1 Announcements} *)

type announcement = {
  ledger : string;  (** base ledger name — binds the claim to a service *)
  epoch : int;
  super : Hash.t;  (** {!Super_root.commitment} of the sealed epoch *)
  sealed_at : int64;
  signature : Ecdsa.signature;  (** service signature over the digest *)
}

val announcement_digest :
  ledger:string -> epoch:int -> super:Hash.t -> sealed_at:int64 -> Hash.t
(** The domain-separated digest the service signs:
    [H("ledgerdb:announce" ∥ ledger ∥ epoch ∥ super ∥ sealed_at)]. *)

val sign :
  priv:Ecdsa.private_key ->
  ledger:string ->
  epoch:int ->
  super:Hash.t ->
  sealed_at:int64 ->
  announcement
(** Sign an announcement as the service.  (Also how an equivocating
    service mints its second root — see
    {!Sharded_ledger.Unsafe.equivocate}.) *)

val announcement_valid : service_pub:Ecdsa.public_key -> announcement -> bool
(** Real-ECDSA check of the service signature. *)

val announcement_to_string : announcement -> string

val w_announcement : Wire.writer -> announcement -> unit
val r_announcement : Wire.reader -> announcement
val encode_announcement : announcement -> bytes
val decode_announcement : bytes -> announcement option

(** {1 Fork evidence} *)

type fork_evidence = {
  first : announcement;
  second : announcement;  (** same ledger and epoch, different super *)
}

val fork_evidence : announcement -> announcement -> fork_evidence option
(** [Some] iff the two announcements name the same (ledger, epoch) but
    different super-roots — the shape of equivocation.  Signature
    validity is {e not} checked here; {!verify_fork} is the judge. *)

val verify_fork : service_pub:Ecdsa.public_key -> fork_evidence -> bool
(** Self-verifying: both signatures must check under the service key,
    the (ledger, epoch) pairs must agree and the super-roots must
    differ.  Needs nothing else — any third party can run it. *)

val fork_to_string : fork_evidence -> string

val w_fork : Wire.writer -> fork_evidence -> unit
val r_fork : Wire.reader -> fork_evidence
val encode_fork : fork_evidence -> bytes
val decode_fork : bytes -> fork_evidence option

(** {1 Peer state} *)

type verdict =
  | Fresh  (** first announcement seen for this epoch *)
  | Confirmed  (** matches the announcement already on record *)
  | Forked of fork_evidence
      (** conflicts with the announcement on record: equivocation *)
  | Rejected of string
      (** bad service signature or wrong ledger name — not recorded *)

val verdict_to_string : verdict -> string

type t
(** One peer's gossip state: the announcements it has seen, by epoch,
    plus any fork evidence it has accumulated. *)

val create : ?name:string -> service_pub:Ecdsa.public_key -> ledger:string -> unit -> t
(** [name] labels this peer in metrics/audit records (default
    ["peer"]). *)

val peer_name : t -> string

val observe : t -> announcement -> verdict
(** Fold one announcement into the peer state.  A [Forked] verdict
    also stores the evidence ({!evidence}), bumps the
    [gossip_fork_evidence_total] counter and writes a fork audit
    record; it is returned every time a conflicting announcement for
    that epoch reappears. *)

val exchange : t -> t -> fork_evidence option
(** Cross-feed every announcement each peer holds to the other — the
    "compare notes" step.  Returns the first fork evidence surfaced (on
    either side), if any. *)

val seen : t -> (int * announcement) list
(** Announcements on record, by epoch, ascending. *)

val evidence : t -> fork_evidence list
(** Fork evidence accumulated so far, oldest first. *)

val compromised : t -> bool
(** [true] once any fork evidence exists — like
    {!Ledger_core.Ledger_client}'s [Compromised], this is sticky. *)

val condemn : t -> Ledger_core.Ledger_client.t -> unit
(** Propagate this peer's fork evidence (if any) into a client's health
    state: the client becomes [Compromised] with the fork description
    as the reason.  No-op when no evidence exists. *)
