(** Cross-shard verifiable range queries: scatter a prefix/range scan to
    every shard, gather per-shard completeness proofs, and merge into one
    globally ordered, verified result set.

    Clues are partitioned across shards by the public placement function
    ({!Shard_router.route_clue}), so a range of the {e key space} spans
    every shard: each shard answers with its own full pagination
    ({!Ledger_query.Range_query}) proven against its own ordered-index
    root.  The client-side {!merge} then enforces three things no single
    shard can fake:

    - {e per-shard completeness} — each answer's pages verify against
      that shard's query root, so a shard cannot drop or inject rows;
    - {e placement integrity} — every verified clue must route to the
      shard that answered it, so a shard cannot answer for (or shadow)
      keys it does not own, and a dropped shard answer is detected
      because every shard must appear exactly once;
    - {e epoch pinning} (optional) — with [?sealed], each answer's
      journal commitment and size must equal the sealed epoch's entry
      for that shard, anchoring the whole merged result to one
      {!Super_root} digest. *)

open Ledger_crypto

type shard_answer = {
  shard : int;
  query_root : Hash.t;  (** the ordered-index root the pages verify against *)
  commitment : Hash.t;  (** the shard's fam commitment at answer time *)
  size : int;  (** the shard's journal count at answer time *)
  pages : Ledger_query.Range_query.page list;
}

type scatter = { shards : int; answers : shard_answer list }

val scatter :
  Sharded_ledger.t ->
  spec:Ledger_query.Range_query.spec ->
  ?window:Ledger_query.Range_query.window ->
  page_size:int ->
  unit ->
  scatter
(** Server side: run the full paginated scan on every shard.
    @raise Invalid_argument when [page_size <= 0]. *)

val scatter_view :
  Sharded_ledger.fleet_view ->
  spec:Ledger_query.Range_query.spec ->
  ?window:Ledger_query.Range_query.window ->
  page_size:int ->
  unit ->
  scatter
(** {!scatter} from a captured {!Sharded_ledger.fleet_view} — the
    lock-free read path; safe from any domain while writers append.
    @raise Invalid_argument when [page_size <= 0]. *)

val merge :
  ?sealed:Super_root.sealed ->
  shards:int ->
  spec:Ledger_query.Range_query.spec ->
  ?window:Ledger_query.Range_query.window ->
  page_size:int ->
  scatter ->
  (Ledger_query.Range_query.result_row list, string) result
(** Client side: verify every shard answer and merge (see module doc).
    [shards] is the client's trusted fleet size — taken from topology
    discovery or the sealed epoch, never from the scatter itself. *)

(** {1 Wire codec} *)

val w_scatter : Wire.writer -> scatter -> unit
val r_scatter : Wire.reader -> scatter
val encode_scatter : scatter -> bytes
val decode_scatter : bytes -> scatter option
