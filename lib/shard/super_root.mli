(** Epoch-level commitment over a fleet of sealed shard roots.

    Once every shard has sealed its trailing block, the coordinator
    collects the N shard commitments and builds a small static Merkle
    tree over them; its root — combined with the epoch number and each
    shard's sealed size — is the {e super-root}, the single digest a
    client (or a time notary) holds for the whole fleet.  Shard leaves
    are domain-separated ([H("shard:<i>" ) ∥ root ∥ size]) so a shard
    root can never be confused with an interior node or replayed at a
    different position or size.

    {b Degraded epochs.}  A quarantined shard need not block the fleet:
    a [Degraded_skip] seal carries the absent shard's {e last sealed}
    root and size forward, but under a distinct leaf domain
    ([H("shard-carried:<i>")]) and with its {!presence} recorded in the
    commitment.  The skip is therefore verifiable, not silent: an
    inclusion proof for a carried shard says so on its face, receipts
    against the carried root keep checking, and no party can pass a
    degraded epoch off as a full one (the roots differ).

    A cross-shard proof then composes two hops: a shard-local fam proof
    chaining the journal to its shard's sealed commitment, and an
    {!inclusion} chaining that commitment to the super-root. *)

open Ledger_crypto
open Ledger_merkle

type presence =
  | Sealed  (** the shard sealed live in this epoch *)
  | Carried
      (** the shard was absent (quarantined/dead); its last sealed root
          and size are carried forward, flagged in the leaf domain *)

val presence_to_string : presence -> string

type sealed = {
  epoch : int;  (** 0-based seal sequence number *)
  sealed_at : int64;  (** fleet clock at the seal barrier *)
  shard_roots : Hash.t array;  (** per-shard fam commitment, by shard *)
  shard_sizes : int array;  (** per-shard journal count at the seal *)
  presence : presence array;  (** how each shard entered the epoch *)
  root : Hash.t;  (** Merkle root over the shard leaves *)
}

val seal :
  epoch:int -> at:int64 -> ?presence:presence array -> (Hash.t * int) array ->
  sealed
(** Build the epoch commitment from [(commitment, size)] per shard.
    [presence] defaults to all-[Sealed] (a full epoch); its length must
    match the fleet.
    @raise Invalid_argument on an empty fleet or length mismatch. *)

val leaf : shard:int -> presence:presence -> root:Hash.t -> size:int -> Hash.t
(** The domain-separated leaf digest for one shard.  [Sealed] leaves use
    the original ["shard:<i>"] domain, so all-healthy epochs commit to
    bit-identical super-roots across versions; [Carried] leaves use
    ["shard-carried:<i>"]. *)

val carried : sealed -> int list
(** Indices of the shards that were carried (skipped) in this epoch,
    ascending; empty for a full epoch. *)

val full : sealed -> bool
(** [true] iff every shard sealed live ([carried s = []]). *)

val commitment : sealed -> Hash.t
(** The client-held digest: [H(tag ∥ epoch ∥ root)] — binds the Merkle
    root to its epoch number so two epochs with identical fleets still
    yield distinct anchors. *)

type inclusion = {
  shard : int;
  shards : int;
  shard_root : Hash.t;
  shard_size : int;
  shard_presence : presence;
      (** carried-ness is part of what the proof asserts: a verifier
          always learns whether the root it checked was live or carried *)
  epoch : int;
  path : Proof.path;  (** Merkle path from the shard leaf to [root] *)
}

val prove : sealed -> shard:int -> inclusion
(** @raise Invalid_argument if [shard] is out of range. *)

val verify : super:Hash.t -> inclusion -> bool
(** Check the inclusion against a trusted {!commitment} digest. *)

(** {1 Wire codecs} *)

val w_sealed : Wire.writer -> sealed -> unit
val r_sealed : Wire.reader -> sealed
val encode_sealed : sealed -> bytes
val decode_sealed : bytes -> sealed option

val w_inclusion : Wire.writer -> inclusion -> unit
val r_inclusion : Wire.reader -> inclusion
val encode_inclusion : inclusion -> bytes
val decode_inclusion : bytes -> inclusion option
