(** Epoch-level commitment over a fleet of sealed shard roots.

    Once every shard has sealed its trailing block, the coordinator
    collects the N shard commitments and builds a small static Merkle
    tree over them; its root — combined with the epoch number and each
    shard's sealed size — is the {e super-root}, the single digest a
    client (or a time notary) holds for the whole fleet.  Shard leaves
    are domain-separated ([H("shard:<i>" ) ∥ root ∥ size]) so a shard
    root can never be confused with an interior node or replayed at a
    different position or size.

    A cross-shard proof then composes two hops: a shard-local fam proof
    chaining the journal to its shard's sealed commitment, and an
    {!inclusion} chaining that commitment to the super-root. *)

open Ledger_crypto
open Ledger_merkle

type sealed = {
  epoch : int;  (** 0-based seal sequence number *)
  sealed_at : int64;  (** fleet clock at the seal barrier *)
  shard_roots : Hash.t array;  (** per-shard fam commitment, by shard *)
  shard_sizes : int array;  (** per-shard journal count at the seal *)
  root : Hash.t;  (** Merkle root over the shard leaves *)
}

val seal : epoch:int -> at:int64 -> (Hash.t * int) array -> sealed
(** Build the epoch commitment from [(commitment, size)] per shard.
    @raise Invalid_argument on an empty fleet. *)

val leaf : shard:int -> root:Hash.t -> size:int -> Hash.t
(** The domain-separated leaf digest for one shard. *)

val commitment : sealed -> Hash.t
(** The client-held digest: [H(tag ∥ epoch ∥ root)] — binds the Merkle
    root to its epoch number so two epochs with identical fleets still
    yield distinct anchors. *)

type inclusion = {
  shard : int;
  shards : int;
  shard_root : Hash.t;
  shard_size : int;
  epoch : int;
  path : Proof.path;  (** Merkle path from the shard leaf to [root] *)
}

val prove : sealed -> shard:int -> inclusion
(** @raise Invalid_argument if [shard] is out of range. *)

val verify : super:Hash.t -> inclusion -> bool
(** Check the inclusion against a trusted {!commitment} digest. *)

(** {1 Wire codecs} *)

val w_sealed : Wire.writer -> sealed -> unit
val r_sealed : Wire.reader -> sealed
val encode_sealed : sealed -> bytes
val decode_sealed : bytes -> sealed option

val w_inclusion : Wire.writer -> inclusion -> unit
val r_inclusion : Wire.reader -> inclusion
val encode_inclusion : inclusion -> bytes
val decode_inclusion : bytes -> inclusion option
