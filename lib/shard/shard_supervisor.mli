(** Fleet survivability: probe, quarantine, self-repair, re-admit.

    The supervisor watches a {!Sharded_ledger.t} through the same store
    probe the seal path uses ([Ledger.store_healthy]) and runs a small
    per-shard state machine:

    {v Healthy → Suspect → Quarantined → Repairing → Healthy v}

    A probe failure makes a shard [Suspect]; [suspect_after] consecutive
    failures quarantine it.  While quarantined the fleet runs {e
    degraded}: reads and verification against the last sealed super-root
    keep working, {!seal_epoch} seals under [Degraded_skip] (the absent
    shard's last root is carried, verifiably flagged), and appends
    routed to the shard are rejected with a typed {!unavailable} — never
    a hang, never a raw [Sys_error].

    Repair attempts are separated by bounded exponential backoff on the
    fleet clock.  Each attempt tries, in order:

    + {b snapshot salvage} — {!Ledger_storage.Stream_store.recover} on
      the shard's last checkpoint directory truncates any torn tail,
      then [Ledger.load_verbose ~recover:true] replays it; the salvage
      is accepted only if it reproduces the shard's last sealed root and
      size {e exactly};
    + {b replica resync} — {!Ledger_core.Replica.pull_verbose} (resume
      on, staged journals survive earlier attempts) over the [source]
      transport, checked against the last sealed root before
      re-admission.

    A successful repair swaps the rebuilt kernel in with
    {!Sharded_ledger.replace_shard}, records the mean-time-to-repair
    histogram ([shard_mttr_us]) and returns the shard to [Healthy]. *)

open Ledger_crypto
open Ledger_core

type policy = {
  suspect_after : int;
      (** consecutive failed probes before quarantine (>= 1) *)
  base_backoff_us : int64;  (** delay before the first repair attempt *)
  max_backoff_us : int64;  (** exponential growth is capped here *)
  checkpoint_on_seal : bool;
      (** after each successful seal, snapshot every live shard
          ([Ledger.save]) so salvage has something to recover *)
}

val default_policy : policy
(** 2 failed probes to quarantine, 50 ms base backoff capped at 2 s,
    checkpoints on. *)

type status =
  | Healthy
  | Suspect of { fails : int }  (** failed probes so far, < suspect_after *)
  | Quarantined of { attempt : int; next_repair_at : int64; down_at : int64 }
      (** [attempt] repairs have failed; the next one is not tried
          before [next_repair_at] (fleet clock) *)
  | Repairing
      (** a repair attempt is executing inside {!tick} right now *)

val status_to_string : status -> string

type t

val create :
  ?policy:policy ->
  ?probe:(int -> bool) ->
  ?source:Transport.t ->
  ?transport_policy:Transport.policy ->
  ?backoff_rng:(unit -> float) ->
  ?pool:Ledger_par.Domain_pool.t ->
  fleet:Sharded_ledger.t ->
  scratch_dir:string ->
  unit ->
  t
(** [probe] overrides the health probe (default
    {!Sharded_ledger.shard_healthy} — tests inject flapping probes).
    [source] is a transport speaking {!Sharded_service} to a {e healthy}
    copy of the fleet (a replica service); without it, repair can only
    salvage checkpoints.  [backoff_rng] jitters the repair backoff from
    a seeded draw in [0,1] (e.g.
    {!Ledger_fault.Faulty_transport.backoff_rng}); without it the
    backoff is the pure exponential.  [scratch_dir] holds per-shard
    checkpoint ([ckpt-s<i>]) and pull stage ([pull-s<i>])
    subdirectories. *)

val fleet : t -> Sharded_ledger.t
val status : t -> int -> status
val quarantined : t -> int list
(** Shards currently quarantined or repairing, ascending. *)

val checkpoint_dir : t -> int -> string
(** Where shard [i]'s last checkpoint lives — the chaos suite tears
    files here to exercise salvage-under-damage. *)

val tick : t -> unit
(** One supervision round at the current fleet-clock time: probe every
    non-quarantined shard, advance the state machine, and run any repair
    whose backoff has expired.  Call it periodically (the chaos
    orchestrator calls it once per simulated tick). *)

val quarantine : t -> int -> unit
(** Force a shard straight to [Quarantined] (first repair after the base
    backoff) — the orchestrator's kill events use this to skip the
    probe-counting latency when the failure is already known. *)

(** {1 Degraded-mode operations} *)

type unavailable = {
  shard : int;
  shard_status : status;
  retry_at : int64 option;
      (** when the next repair attempt is scheduled, if quarantined *)
}

val unavailable_to_string : unavailable -> string

val append :
  t ->
  member:Roles.member ->
  priv:Ecdsa.private_key ->
  ?clues:string list ->
  bytes ->
  (int * Receipt.t, unavailable) result
(** Routed append that degrades instead of hanging: if the owning shard
    is quarantined (or its store dies under the append — which also
    advances the probe state), the caller gets a typed rejection with
    the repair schedule, within the current backoff budget. *)

val seal_epoch :
  ?pool:Ledger_par.Domain_pool.t ->
  ?policy:Sharded_ledger.seal_policy ->
  t ->
  (Super_root.sealed, string) result
(** {!Sharded_ledger.seal_epoch} with the quarantine set passed as
    [skip]; defaults to [Degraded_skip] so a quarantined shard never
    blocks the epoch.  On success, live shards are checkpointed when the
    policy asks for it. *)
