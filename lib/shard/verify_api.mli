(** The unified Verify API, extended over a sharded fleet.

    Re-exports {!Ledger_core.Verify_api} (same [level], [target] and
    [outcome] types, so [open Ledger_shard] after [open Ledger_core]
    shadows it with a superset) and adds {!verify_sharded}: route the
    target to its owning shard, run the shard-local verification, and —
    when a sealed epoch covers the shard's state — compose it with the
    shard-inclusion-in-super-root check so the verdict is pinned to the
    single fleet digest.

    Verdicts are memoized in the owning shard's {!Verify_cache} keyed by
    the epoch {e super-root} (falling back to the shard commitment while
    no seal covers the state), so one shard's purge/occult invalidates
    only that shard's cached verdicts. *)

open Ledger_crypto

include module type of struct
  include Ledger_core.Verify_api
end

type sharded_outcome = {
  shard : int;  (** owning shard the target was routed to *)
  outcome : outcome;  (** the composed verdict *)
  super : Hash.t option;
      (** the super-root digest the verdict was pinned to, when a sealed
          epoch covered the shard's state at verification time *)
}

val verify_sharded :
  ?use_cache:bool ->
  Sharded_ledger.t ->
  level:level ->
  ?shard:int ->
  target ->
  sharded_outcome
(** [~shard] names the owning shard for shard-local targets
    ([Existence], [Receipt_check] — their jsns are shard-local); clue
    targets may omit it and are routed by {!Shard_router.route_clue}.
    [use_cache] (default true) consults the owning shard's attached
    cache.  At [Client] level with a sealed epoch covering the shard,
    the shard-local proof replay is composed with
    {!Super_root.verify} — a journal only verifies if its shard's
    sealed root is included in the epoch super-root.
    @raise Invalid_argument when a shard-local target omits [~shard]. *)
