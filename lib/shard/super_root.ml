open Ledger_crypto
open Ledger_merkle

type presence = Sealed | Carried

let presence_to_string = function Sealed -> "sealed" | Carried -> "carried"

type sealed = {
  epoch : int;
  sealed_at : int64;
  shard_roots : Hash.t array;
  shard_sizes : int array;
  presence : presence array;
  root : Hash.t;
}

(* [Sealed] keeps the original "shard:<i>" domain so all-healthy epochs
   commit to bit-identical super-roots; a carried (skipped) shard gets
   its own domain — a degraded epoch can never impersonate a full one. *)
let leaf ~shard ~presence ~root ~size =
  let tag =
    match presence with
    | Sealed -> Printf.sprintf "shard:%d" shard
    | Carried -> Printf.sprintf "shard-carried:%d" shard
  in
  Hash.combine (Hash.digest_string tag)
    (Hash.combine root (Hash.digest_string (string_of_int size)))

let tree_of roots sizes presence =
  Merkle_tree.build
    (List.init (Array.length roots) (fun i ->
         leaf ~shard:i ~presence:presence.(i) ~root:roots.(i) ~size:sizes.(i)))

let seal ~epoch ~at ?presence shards =
  if Array.length shards = 0 then invalid_arg "Super_root.seal: empty fleet";
  let presence =
    match presence with
    | None -> Array.make (Array.length shards) Sealed
    | Some p ->
        if Array.length p <> Array.length shards then
          invalid_arg "Super_root.seal: presence length mismatch";
        p
  in
  let shard_roots = Array.map fst shards in
  let shard_sizes = Array.map snd shards in
  let root = Merkle_tree.root (tree_of shard_roots shard_sizes presence) in
  { epoch; sealed_at = at; shard_roots; shard_sizes; presence; root }

let carried s =
  Array.to_list
    (Array.of_seq
       (Seq.filter_map
          (fun (i, p) -> if p = Carried then Some i else None)
          (Array.to_seq (Array.mapi (fun i p -> (i, p)) s.presence))))

let full s = carried s = []

let commitment s =
  Hash.combine
    (Hash.digest_string (Printf.sprintf "super-root:%d" s.epoch))
    s.root

type inclusion = {
  shard : int;
  shards : int;
  shard_root : Hash.t;
  shard_size : int;
  shard_presence : presence;
  epoch : int;
  path : Proof.path;
}

let prove s ~shard =
  let n = Array.length s.shard_roots in
  if shard < 0 || shard >= n then
    invalid_arg
      (Printf.sprintf "Super_root.prove: shard %d out of range [0,%d)" shard n);
  let tree = tree_of s.shard_roots s.shard_sizes s.presence in
  {
    shard;
    shards = n;
    shard_root = s.shard_roots.(shard);
    shard_size = s.shard_sizes.(shard);
    shard_presence = s.presence.(shard);
    epoch = s.epoch;
    path = Merkle_tree.prove tree shard;
  }

let verify ~super inc =
  if inc.shard < 0 || inc.shard >= inc.shards then false
  else
    let l =
      leaf ~shard:inc.shard ~presence:inc.shard_presence ~root:inc.shard_root
        ~size:inc.shard_size
    in
    let root = Proof.apply l inc.path in
    Hash.equal super
      (Hash.combine
         (Hash.digest_string (Printf.sprintf "super-root:%d" inc.epoch))
         root)

(* --- wire codecs ----------------------------------------------------------- *)

let w_presence w = function
  | Sealed -> Wire.w_u8 w 0
  | Carried -> Wire.w_u8 w 1

let r_presence r =
  match Wire.r_u8 r with
  | 0 -> Sealed
  | 1 -> Carried
  | _ -> raise Wire.Corrupt

let w_sealed w (s : sealed) =
  Wire.w_int w s.epoch;
  Wire.w_int64 w s.sealed_at;
  Wire.w_list w (Wire.w_hash w) (Array.to_list s.shard_roots);
  Wire.w_list w (Wire.w_int w) (Array.to_list s.shard_sizes);
  Wire.w_list w (w_presence w) (Array.to_list s.presence);
  Wire.w_hash w s.root

let r_sealed r =
  let epoch = Wire.r_int r in
  let sealed_at = Wire.r_int64 r in
  let shard_roots =
    Array.of_list (Wire.r_list r (fun () -> Wire.r_hash r))
  in
  let shard_sizes = Array.of_list (Wire.r_list r (fun () -> Wire.r_int r)) in
  let presence = Array.of_list (Wire.r_list r (fun () -> r_presence r)) in
  let root = Wire.r_hash r in
  if
    Array.length shard_roots = 0
    || Array.length shard_roots <> Array.length shard_sizes
    || Array.length shard_roots <> Array.length presence
  then raise Wire.Corrupt;
  (* the root is re-derivable: refuse a frame whose announced root does
     not match its own leaves — a frame that strips a Carried flag (or
     forges one) fails here *)
  let rebuilt = Merkle_tree.root (tree_of shard_roots shard_sizes presence) in
  if not (Hash.equal rebuilt root) then raise Wire.Corrupt;
  { epoch; sealed_at; shard_roots; shard_sizes; presence; root }

let encode_sealed s =
  let w = Wire.writer () in
  w_sealed w s;
  Wire.contents w

let decode_sealed b = Wire.decode b r_sealed

let w_inclusion w inc =
  Wire.w_int w inc.shard;
  Wire.w_int w inc.shards;
  Wire.w_hash w inc.shard_root;
  Wire.w_int w inc.shard_size;
  w_presence w inc.shard_presence;
  Wire.w_int w inc.epoch;
  Ledger_merkle.Proof_codec.w_path w inc.path

let r_inclusion r =
  let shard = Wire.r_int r in
  let shards = Wire.r_int r in
  let shard_root = Wire.r_hash r in
  let shard_size = Wire.r_int r in
  let shard_presence = r_presence r in
  let epoch = Wire.r_int r in
  let path = Ledger_merkle.Proof_codec.r_path r in
  { shard; shards; shard_root; shard_size; shard_presence; epoch; path }

let encode_inclusion inc =
  let w = Wire.writer () in
  w_inclusion w inc;
  Wire.contents w

let decode_inclusion b = Wire.decode b r_inclusion
