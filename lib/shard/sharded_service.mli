(** The routed fleet protocol: one byte-level endpoint for N shards.

    A thin envelope over {!Ledger_core.Service}: shard-local requests
    travel inside {!request.To_shard} / {!response.From_shard} frames
    (the inner bytes are ordinary [Service] messages, so every existing
    proof object survives this wire unchanged), while fleet-level
    operations — topology discovery, epoch sealing, super-root and
    composed-proof retrieval — are first-class messages.

    {!request.Routed_append} lets a sender omit the shard id: the
    dispatcher re-runs the public placement function on the enclosed
    append.  Placement integrity is end-to-end — the client signed the
    request for the {e owning} shard's URI, so a dispatcher that routes
    it anywhere else has the append rejected by that shard's π_c
    check. *)

open Ledger_crypto

type request =
  | To_shard of { shard : int; inner : bytes }
      (** [inner] is an encoded {!Ledger_core.Service.request} *)
  | Routed_append of { inner : bytes }
      (** an encoded [Append] (or single-shard [Append_batch]); the
          dispatcher derives the owning shard from the entry's clues *)
  | Get_topology
  | Seal_epoch
  | Get_super_root of { epoch : int option }  (** [None] = latest *)
  | Get_sharded_proof of { shard : int; jsn : int }
  | Get_announcement of { epoch : int option }
      (** the service-signed epoch announcement ([None] = latest) —
          gossip peers cross-check these for equivocation *)
  | Query_scatter of {
      spec : Ledger_query.Range_query.spec;
      window : Ledger_query.Range_query.window option;
      page_size : int;
    }
      (** fan a verifiable range/prefix scan out to every shard; the
          response carries each shard's full pagination and proofs for
          {!Sharded_query.merge} *)

type response =
  | From_shard of { shard : int; inner : bytes }
      (** [inner] is an encoded {!Ledger_core.Service.response} *)
  | Topology_r of { name : string; shards : int }
  | Sealed_r of Super_root.sealed
  | Super_root_r of Super_root.sealed option
  | Sharded_proof_r of Sharded_ledger.sharded_proof
  | Announcement_r of Gossip.announcement option
  | Query_scatter_r of Sharded_query.scatter
  | Error_r of string

val encode_request : request -> bytes
val decode_request : bytes -> request option
val encode_response : response -> bytes
val decode_response : bytes -> response option

val handle : Sharded_ledger.t -> bytes -> bytes
(** The fleet dispatcher: decode → route → delegate to the owning
    shard's {!Ledger_core.Service.handle} (or serve the fleet-level
    request) → encode.  Never raises; malformed input or a refused
    epoch seal yields an encoded {!response.Error_r}. *)

val classify : request -> [ `Read | `Mutate ]
(** [`Mutate] for {!request.Routed_append}, {!request.Seal_epoch} and a
    {!request.To_shard} whose inner envelope is a mutation; [`Read] for
    everything else (including malformed inner envelopes, which err the
    same way on either path). *)

val handle_read : Sharded_ledger.t -> bytes -> bytes option
(** The read-only half of {!handle}, served from a
    {!Sharded_ledger.fleet_view} with no lock — byte-identical
    responses for reads, [None] for mutations.  Safe from any domain
    concurrently with appends and seals.  Never raises. *)

(** Client-side routing, signing and response interpretation.  Holds one
    {!Ledger_core.Service.Client} per shard — each shard is a distinct
    signing domain (its own URI and nonce sequence). *)
module Client : sig
  type t

  val create :
    config:Sharded_ledger.config ->
    member:Ledger_core.Roles.member ->
    priv:Ecdsa.private_key ->
    unit ->
    t

  val shards : t -> int

  val route : t -> clues:string list -> payload:bytes -> int
  (** The placement the client signs for. *)

  val make_append :
    t -> ?clues:string list -> client_ts:int64 -> bytes -> int * bytes
  (** Sign for the owning shard and wrap in {!request.Routed_append};
      returns [(shard, encoded request)]. *)

  val make_to_shard : shard:int -> bytes -> bytes
  (** Wrap any encoded {!Ledger_core.Service} request for one shard. *)

  val make_get_topology : unit -> bytes
  val make_seal_epoch : unit -> bytes
  val make_get_super_root : ?epoch:int -> unit -> bytes
  val make_get_sharded_proof : shard:int -> jsn:int -> bytes
  val make_get_announcement : ?epoch:int -> unit -> bytes

  val make_query_scatter :
    spec:Ledger_query.Range_query.spec ->
    ?window:Ledger_query.Range_query.window ->
    page_size:int ->
    unit ->
    bytes

  val parse : bytes -> response option

  val parse_from_shard :
    bytes -> (int * Ledger_core.Service.response) option
  (** Unwrap a {!response.From_shard} frame and parse the inner
      {!Ledger_core.Service} response. *)
end
