open Ledger_crypto
open Ledger_obs

type announcement = {
  ledger : string;
  epoch : int;
  super : Hash.t;
  sealed_at : int64;
  signature : Ecdsa.signature;
}

let announcement_digest ~ledger ~epoch ~super ~sealed_at =
  Hash.combine
    (Hash.digest_string
       (Printf.sprintf "ledgerdb:announce:%s:%d:%Ld" ledger epoch sealed_at))
    super

let sign ~priv ~ledger ~epoch ~super ~sealed_at =
  let signature =
    Ecdsa.sign priv (announcement_digest ~ledger ~epoch ~super ~sealed_at)
  in
  { ledger; epoch; super; sealed_at; signature }

let announcement_valid ~service_pub a =
  Ecdsa.verify service_pub
    (announcement_digest ~ledger:a.ledger ~epoch:a.epoch ~super:a.super
       ~sealed_at:a.sealed_at)
    a.signature

let announcement_to_string a =
  Printf.sprintf "%s epoch %d → %s @%Ldus" a.ledger a.epoch
    (Hash.short_hex a.super) a.sealed_at

let w_announcement w a =
  Wire.w_string w a.ledger;
  Wire.w_int w a.epoch;
  Wire.w_hash w a.super;
  Wire.w_int64 w a.sealed_at;
  Wire.w_bytes w (Ecdsa.signature_to_bytes a.signature)

let r_announcement r =
  let ledger = Wire.r_string r in
  let epoch = Wire.r_int r in
  let super = Wire.r_hash r in
  let sealed_at = Wire.r_int64 r in
  let signature =
    match Ecdsa.signature_of_bytes (Wire.r_bytes r) with
    | Some s -> s
    | None -> raise Wire.Corrupt
  in
  { ledger; epoch; super; sealed_at; signature }

let encode_announcement a =
  let w = Wire.writer () in
  w_announcement w a;
  Wire.contents w

let decode_announcement b = Wire.decode b r_announcement

(* --- fork evidence --------------------------------------------------------- *)

type fork_evidence = { first : announcement; second : announcement }

let fork_evidence a b =
  if a.ledger = b.ledger && a.epoch = b.epoch && not (Hash.equal a.super b.super)
  then Some { first = a; second = b }
  else None

let verify_fork ~service_pub ev =
  ev.first.ledger = ev.second.ledger
  && ev.first.epoch = ev.second.epoch
  && (not (Hash.equal ev.first.super ev.second.super))
  && announcement_valid ~service_pub ev.first
  && announcement_valid ~service_pub ev.second

let fork_to_string ev =
  Printf.sprintf
    "fork evidence: %s equivocated at epoch %d (%s vs %s, both service-signed)"
    ev.first.ledger ev.first.epoch
    (Hash.short_hex ev.first.super)
    (Hash.short_hex ev.second.super)

let w_fork w ev =
  w_announcement w ev.first;
  w_announcement w ev.second

let r_fork r =
  let first = r_announcement r in
  let second = r_announcement r in
  (* refuse frames that are not even fork-shaped: same epoch & ledger,
     different roots — the signatures are for [verify_fork] to judge *)
  if
    first.ledger <> second.ledger
    || first.epoch <> second.epoch
    || Hash.equal first.super second.super
  then raise Wire.Corrupt;
  { first; second }

let encode_fork ev =
  let w = Wire.writer () in
  w_fork w ev;
  Wire.contents w

let decode_fork b = Wire.decode b r_fork

(* --- peer state ------------------------------------------------------------ *)

type verdict = Fresh | Confirmed | Forked of fork_evidence | Rejected of string

let verdict_to_string = function
  | Fresh -> "fresh"
  | Confirmed -> "confirmed"
  | Forked ev -> fork_to_string ev
  | Rejected msg -> "rejected: " ^ msg

type t = {
  name : string;
  service_pub : Ecdsa.public_key;
  ledger : string;
  seen : (int, announcement) Hashtbl.t;
  mutable evidence_rev : fork_evidence list;
}

let create ?(name = "peer") ~service_pub ~ledger () =
  { name; service_pub; ledger; seen = Hashtbl.create 16; evidence_rev = [] }

let peer_name t = t.name

let observe t (a : announcement) =
  Metrics.incr "gossip_announcements_total";
  if a.ledger <> t.ledger then
    Rejected (Printf.sprintf "announcement for %S, expected %S" a.ledger t.ledger)
  else if not (announcement_valid ~service_pub:t.service_pub a) then begin
    Metrics.incr "gossip_bad_signatures_total";
    Rejected "bad service signature"
  end
  else begin
    match Hashtbl.find_opt t.seen a.epoch with
    | None ->
        Hashtbl.replace t.seen a.epoch a;
        Fresh
    | Some prior -> (
        match fork_evidence prior a with
        | None -> Confirmed
        | Some ev ->
            (* only count evidence once per conflicting pair *)
            if
              not
                (List.exists
                   (fun e ->
                     e.first.epoch = ev.first.epoch
                     && Hash.equal e.second.super ev.second.super)
                   t.evidence_rev)
            then begin
              t.evidence_rev <- ev :: t.evidence_rev;
              Metrics.incr "gossip_fork_evidence_total";
              Audit_log.record ~verifier:("gossip:" ^ t.name)
                (Audit_log.Fork_epoch ev.first.epoch)
                (Audit_log.Repudiated (fork_to_string ev))
            end;
            Forked ev)
  end

let exchange a b =
  let found = ref None in
  let feed src dst =
    Hashtbl.iter
      (fun _ ann ->
        match observe dst ann with
        | Forked ev when !found = None -> found := Some ev
        | _ -> ())
      src.seen
  in
  feed a b;
  feed b a;
  (match !found with
  | None ->
      (* either side may already hold evidence from earlier exchanges *)
      found :=
        (match (a.evidence_rev, b.evidence_rev) with
        | ev :: _, _ | _, ev :: _ -> Some ev
        | [], [] -> None)
  | Some _ -> ());
  !found

let seen t =
  Hashtbl.fold (fun e a acc -> (e, a) :: acc) t.seen []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let evidence t = List.rev t.evidence_rev
let compromised t = t.evidence_rev <> []

let condemn t client =
  match t.evidence_rev with
  | [] -> ()
  | ev :: _ ->
      Ledger_core.Ledger_client.note_verification_failure client
        ~reason:(fork_to_string ev)
