open Ledger_crypto

type t = { shards : int }

let create ~shards =
  if shards < 1 || shards > 1024 then
    invalid_arg "Shard_router.create: shards must be in [1,1024]";
  { shards }

let shards t = t.shards

let routing_key ~clues ~payload =
  match clues with
  | clue :: _ -> clue
  | [] -> "#" ^ Hash.to_hex (Hash.digest_bytes payload)

(* First 8 digest bytes as a non-negative big-endian integer: enough
   entropy that `mod shards` is uniform for any shard count we allow. *)
let route_key t key =
  let d = Hash.to_bytes (Hash.digest_string key) in
  let n = ref 0 in
  for i = 0 to 7 do
    n := (!n lsl 8) lor Char.code (Bytes.get d i)
  done;
  let v = (!n land max_int) mod t.shards in
  Ledger_obs.Metrics.observe_int "shard_routing" v;
  v

let route t ~clues ~payload = route_key t (routing_key ~clues ~payload)
let route_clue t clue = route_key t clue
