open Ledger_crypto
open Ledger_core
module Range_query = Ledger_query.Range_query

type shard_answer = {
  shard : int;
  query_root : Hash.t;
  commitment : Hash.t;
  size : int;
  pages : Range_query.page list;
}

type scatter = { shards : int; answers : shard_answer list }

exception Reject of string

let paginate idx ~spec ?window ~page_size () =
  let rec go after acc guard =
    if guard > 1_000_000 then failwith "Sharded_query: pagination runaway"
    else
      let pg = Range_query.page idx ~spec ?window ?after ~page_size () in
      match pg.Range_query.cursor with
      | Some c -> go (Some c) (pg :: acc) (guard + 1)
      | None -> List.rev (pg :: acc)
  in
  go None [] 0

let scatter t ~spec ?window ~page_size () =
  if page_size <= 0 then invalid_arg "Sharded_query.scatter: bad page_size";
  let n = Sharded_ledger.shard_count t in
  let answers =
    List.init n (fun i ->
        let ledger = Sharded_ledger.shard t i in
        {
          shard = i;
          query_root = Ledger.query_root ledger;
          commitment = Ledger.commitment ledger;
          size = Ledger.size ledger;
          pages =
            paginate (Ledger.query_index ledger) ~spec ?window ~page_size ();
        })
  in
  { shards = n; answers }

(* Same scatter, from a captured fleet view: every per-shard answer is
   internally coherent (root, commitment, size and pages from one
   snapshot), even while the shard's writer keeps appending. *)
let scatter_view fv ~spec ?window ~page_size () =
  if page_size <= 0 then invalid_arg "Sharded_query.scatter: bad page_size";
  let module RV = Ledger.Read_view in
  let n = Sharded_ledger.view_shard_count fv in
  let answers =
    List.init n (fun i ->
        let v = fv.Sharded_ledger.fv_shards.(i) in
        {
          shard = i;
          query_root = RV.query_root v;
          commitment = RV.commitment v;
          size = RV.size v;
          pages = paginate (RV.query_index v) ~spec ?window ~page_size ();
        })
  in
  { shards = n; answers }

(* Client-side gather: each shard's pagination is verified against that
   shard's query root, each verified clue is re-routed through the public
   placement function (a shard cannot answer for keys it does not own —
   nor omit keys it does own, because its own completeness proof covers
   the whole range), and the disjoint per-shard results merge into one
   globally ordered set. *)
let merge ?sealed ~shards ~spec ?window ~page_size sc =
  try
    if sc.shards <> shards then raise (Reject "fleet size mismatch");
    if List.length sc.answers <> shards then
      raise (Reject "wrong number of shard answers");
    let seen = Array.make shards false in
    let router = Shard_router.create ~shards in
    let per_shard =
      List.map
        (fun a ->
          if a.shard < 0 || a.shard >= shards then
            raise (Reject "answer names an unknown shard");
          if seen.(a.shard) then
            raise
              (Reject (Printf.sprintf "shard %d answered twice" a.shard));
          seen.(a.shard) <- true;
          (match sealed with
          | Some s ->
              if
                not
                  (Hash.equal s.Super_root.shard_roots.(a.shard) a.commitment
                  && s.Super_root.shard_sizes.(a.shard) = a.size)
              then
                raise
                  (Reject
                     (Printf.sprintf
                        "shard %d answer does not match the sealed epoch"
                        a.shard))
          | None -> ());
          match
            Range_query.verify_pages ~root:a.query_root ~spec ?window
              ~page_size a.pages
          with
          | Error e ->
              raise (Reject (Printf.sprintf "shard %d: %s" a.shard e))
          | Ok rows ->
              List.iter
                (fun (r : Range_query.result_row) ->
                  if Shard_router.route_clue router r.Range_query.r_clue <> a.shard
                  then
                    raise
                      (Reject
                         (Printf.sprintf
                            "shard %d answered for a clue it does not own"
                            a.shard)))
                rows;
              rows)
        sc.answers
    in
    Array.iteri
      (fun i s -> if not s then raise (Reject (Printf.sprintf "shard %d missing" i)))
      seen;
    Ok
      (List.concat per_shard
      |> List.sort (fun (a : Range_query.result_row) b ->
             String.compare a.Range_query.r_clue b.Range_query.r_clue))
  with Reject msg -> Error msg

(* --- wire codec ---------------------------------------------------------- *)

let w_answer w a =
  Wire.w_int w a.shard;
  Wire.w_hash w a.query_root;
  Wire.w_hash w a.commitment;
  Wire.w_int w a.size;
  Wire.w_list w (Range_query.w_page w) a.pages

let r_answer r =
  let shard = Wire.r_int r in
  let query_root = Wire.r_hash r in
  let commitment = Wire.r_hash r in
  let size = Wire.r_int r in
  let pages = Wire.r_list ~max:100_000 r (fun () -> Range_query.r_page r) in
  { shard; query_root; commitment; size; pages }

let w_scatter w sc =
  Wire.w_int w sc.shards;
  Wire.w_list w (w_answer w) sc.answers

let r_scatter r =
  let shards = Wire.r_int r in
  if shards <= 0 then raise Wire.Corrupt;
  let answers = Wire.r_list ~max:4096 r (fun () -> r_answer r) in
  { shards; answers }

let encode_scatter sc =
  let w = Wire.writer ~initial:1024 () in
  w_scatter w sc;
  Wire.contents w

let decode_scatter b = Wire.decode b r_scatter
