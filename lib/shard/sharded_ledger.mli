(** A fleet of ledger shards under one epoch super-root.

    N independent {!Ledger_core.Ledger} instances — each with its own
    fam accumulator, CM-Tree, stream store and batched commit pipeline —
    are coordinated behind the {!Shard_router} placement function.  At
    epoch boundaries {!seal_epoch} seals every shard's trailing block
    and commits the N shard roots into one {!Super_root.sealed}, so a
    single client-held digest (and a single time-notary anchor) covers
    the whole fleet.

    {b Degenerate fleet.}  With [shards = 1] the single shard {e is} an
    unsharded ledger: it keeps the base config name (so member keys, the
    LSP key and the ledger URI derive identically) and shares the
    caller's clock, making the committed history byte-identical to a
    plain [Ledger.t] driven with the same operations — the differential
    property the test suite pins.

    {b Cost model.}  With [shards > 1] each shard runs on its own
    simulated clock (forked from the coordinator's at creation);
    appends charge only the owning shard, and {!seal_epoch} is the
    barrier that advances every clock to the fleet maximum.  Fleet
    makespan is therefore the slowest shard's time, which is what
    [bench_shard] measures as shard count scales. *)

open Ledger_crypto
open Ledger_storage
open Ledger_merkle
open Ledger_core

type config = {
  base : Ledger.config;  (** per-shard ledger parameters *)
  shards : int;  (** fleet width, 1..1024 *)
}

val default_config : config
(** [Ledger.default_config] with 4 shards. *)

val shard_name : config -> int -> string
(** [base.name] for a one-shard fleet; ["<base>/s<i>"] otherwise. *)

val shard_config : config -> int -> Ledger.config
(** The full per-shard ledger config (used by replicas to rebuild a
    shard with matching LSP key derivation and block geometry). *)

type t

val create : ?config:config -> clock:Clock.t -> unit -> t
(** [clock] is the coordinator (fleet) clock.  A one-shard fleet shares
    it with the shard; larger fleets fork one clock per shard from its
    current reading. *)

val config : t -> config
val router : t -> Shard_router.t
val shard_count : t -> int

val shard : t -> int -> Ledger.t
(** @raise Invalid_argument if out of range. *)

val shard_clock : t -> int -> Clock.t
val shard_cache : t -> int -> Verify_cache.t
(** The shard's verdict cache, already {!Verify_cache.attach}ed to the
    shard's mutation feed: purge/occult on one shard drops only that
    shard's verdicts. *)

val fleet_clock : t -> Clock.t
val total_size : t -> int
(** Sum of shard sizes. *)

val shard_healthy : t -> int -> bool
(** [Ledger.store_healthy] of the shard — the probe the supervisor and
    the seal path share. *)

val service_public_key : t -> Ecdsa.public_key
(** The fleet service's announcement-signing key (seeded from
    ["fleet:<base name>"]).  Gossip peers verify announcements — and
    judge fork evidence — against this key alone. *)

val replace_shard : t -> int -> ledger:Ledger.t -> clock:Clock.t -> unit
(** Swap in a repaired shard kernel (rebuilt by
    {!Ledger_core.Replica.pull_verbose} from a healthy replica) together
    with the clock it was rebuilt on.  A fresh verdict cache is created
    and attached; the old shard state is dropped.
    @raise Invalid_argument if out of range. *)

val new_member :
  t -> name:string -> role:Roles.role -> Roles.member * Ecdsa.private_key
(** One keypair (seeded from the {e base} name, as the unsharded ledger
    would) registered on every shard, so a client can append wherever
    the router sends it. *)

(** {1 Routed append} *)

val append :
  t ->
  member:Roles.member ->
  priv:Ecdsa.private_key ->
  ?clues:string list ->
  bytes ->
  int * Receipt.t
(** Route by {!Shard_router.route} and append to the owning shard;
    returns [(shard, receipt)].  The receipt's [jsn] is shard-local. *)

val append_batch :
  ?pool:Ledger_par.Domain_pool.t ->
  t ->
  member:Roles.member ->
  priv:Ecdsa.private_key ->
  ?seal:bool ->
  (bytes * string list) list ->
  (int * Receipt.t) list
(** Partition a batch by owning shard (preserving submission order
    within each shard) and commit one amortized {!Ledger.append_batch}
    per shard.  Results are in submission order.  Per-shard appends fan
    out across [pool] (default {!Ledger_par.Domain_pool.default}) —
    shards are independent kernels on forked clocks, so the committed
    fleet state is byte-identical for any pool size. *)

(** {1 Epoch sealing} *)

type seal_policy =
  | All_or_nothing
      (** any absent shard refuses the whole seal — no partial
          super-root is ever recorded (the original, default policy) *)
  | Degraded_skip
      (** absent shards are carried: the epoch seals with their last
          sealed root and size under a [Carried] presence flag, so the
          fleet stays live while the skip remains verifiable in every
          inclusion proof.  Refused only when {e every} shard is
          absent. *)

val seal_epoch :
  ?pool:Ledger_par.Domain_pool.t ->
  ?policy:seal_policy ->
  ?skip:int list ->
  t ->
  (Super_root.sealed, string) result
(** Seal every shard's trailing block (fanned out across [pool]),
    synchronize the fleet clocks and commit the epoch super-root.  A
    shard is {e absent} when it is listed in [skip] (the supervisor's
    quarantine set — excluded without touching it) or when its store
    probe fails ([not Ledger.store_healthy]).  Under the default
    [All_or_nothing] policy any absent shard refuses the whole seal with
    an error naming the shard; under [Degraded_skip] absent shards are
    carried forward (see {!seal_policy}) and their clocks are left
    untouched.  A store failure surfacing mid-seal inside a pooled task
    yields the same refused verdict as the sequential path.
    @raise Invalid_argument if a [skip] index is out of range. *)

val epochs : t -> Super_root.sealed list
(** Oldest first. *)

val latest : t -> Super_root.sealed option
val epoch : t -> int -> Super_root.sealed option
val super_digest : t -> Hash.t option
(** {!Super_root.commitment} of the latest sealed epoch. *)

val anchor_epoch : t -> Ledger_timenotary.Tsa.pool -> Ledger_timenotary.Tsa.token
(** One TSA endorsement covers the fleet: the token signs the latest
    epoch's {!Super_root.commitment}.
    @raise Invalid_argument when no epoch has been sealed. *)

(** {1 Signed epoch announcements} *)

val announce : t -> Gossip.announcement option
(** The service-signed announcement of the latest sealed epoch — what
    the service publishes to gossip peers.  [None] before any seal. *)

val announce_epoch : t -> int -> Gossip.announcement option
(** Announcement for a specific sealed epoch. *)

(** Test-only adversarial entry points. *)
module Unsafe : sig
  val equivocate : t -> epoch:int -> Gossip.announcement option
  (** Behave as a forking service: mint a {e second} validly signed
      announcement for an already-sealed epoch whose super-root is a
      deterministic perturbation of the real one.  Feeding this and the
      honest announcement to any {!Gossip} peer yields self-verifying
      fork evidence.  [None] if the epoch was never sealed. *)
end

(** {1 Cross-shard proofs} *)

type sharded_proof = {
  shard : int;
  jsn : int;  (** shard-local journal sequence number *)
  fam : Fam.proof;  (** journal → shard commitment *)
  inclusion : Super_root.inclusion;  (** shard commitment → super-root *)
}

val prove : t -> shard:int -> jsn:int -> (sharded_proof, string) result
(** Compose the two hops against the latest sealed epoch.  Refused when
    no epoch is sealed, or when the shard has committed past its sealed
    root (the proof would dangle) — reseal and retry. *)

val verify_proof :
  t -> super:Hash.t -> ?payload_digest:Hash.t -> sharded_proof -> bool
(** Client-level replay against a trusted super-root digest: the fam
    proof must chain the journal's retained leaf to the inclusion's
    shard root, and the inclusion must chain that root to [super].
    With [payload_digest], the stored payload must still match. *)

val w_sharded_proof : Wire.writer -> sharded_proof -> unit
val r_sharded_proof : Wire.reader -> sharded_proof
val encode_sharded_proof : sharded_proof -> bytes
val decode_sharded_proof : bytes -> sharded_proof option

(** {1 Fleet read view (lock-free read path)}

    A coherent, immutable snapshot of the fleet for serving reads from
    any domain with no lock: each shard's atomically-published
    {!Ledger.Read_view.t} plus one atomic read of the sealed-epoch
    history.  Shard views advance independently between seals — the
    epoch super-roots in [fv_sealed_rev] are the only cross-shard
    consistency anchor, exactly as on the live path. *)

type fleet_view = {
  fv_name : string;
  fv_shards : Ledger.Read_view.t array;
  fv_sealed_rev : Super_root.sealed list;  (** newest first *)
  fv_sealed_count : int;
}

val fleet_view : t -> fleet_view
(** Capture the current snapshot; safe from any domain, concurrently
    with appends/seals. *)

val view_shard_count : fleet_view -> int
val view_latest : fleet_view -> Super_root.sealed option
val view_epoch_sealed : fleet_view -> int -> Super_root.sealed option

val announce_view : t -> fleet_view -> Gossip.announcement option
val announce_epoch_view : t -> fleet_view -> int -> Gossip.announcement option
(** Signing uses the fleet key from [t] (immutable); the epoch data
    comes from the view. *)

val prove_view :
  fleet_view -> shard:int -> jsn:int -> (sharded_proof, string) result
(** {!prove} against the view — byte-identical results and error
    strings at the same fleet state.
    @raise Invalid_argument when [shard] is out of range (callers
    bounds-check first, as on the live path). *)
