(** Deterministic clue → shard placement.

    Horizontal partitioning only stays verifiable if placement is a pure
    public function: any client, auditor or replica must be able to
    recompute which shard owns a journal from the journal alone, with no
    routing table to trust.  The router scatters the journal's {e routing
    key} — its first clue, or the payload digest for clue-less journals —
    through SHA-256 and reduces it mod the shard count.

    Routing by the {e first} clue keeps every version of a clue's
    N-lineage on one shard, so CM-Tree clue proofs never span shards.
    Journals carrying several clues are placed by the first; secondary
    clues index normally on the owning shard (a cross-shard clue query
    therefore fans out — see {!Verify_api.verify_sharded}). *)

type t

val create : shards:int -> t
(** @raise Invalid_argument unless [1 <= shards <= 1024]. *)

val shards : t -> int

val routing_key : clues:string list -> payload:bytes -> string
(** The first clue when present, otherwise ["#" ^ hex payload digest]
    (the ["#"] prefix keeps digest keys out of the clue namespace). *)

val route_key : t -> string -> int
(** Shard owning a routing key: first 8 bytes of [SHA-256 key],
    big-endian, mod the shard count. *)

val route : t -> clues:string list -> payload:bytes -> int
(** [route_key] of [routing_key] — the placement function used by
    append, verification and the service dispatcher alike. *)

val route_clue : t -> string -> int
(** Owning shard of a clue's lineage. *)
