open Ledger_crypto
open Ledger_core
open Ledger_obs

type request =
  | To_shard of { shard : int; inner : bytes }
  | Routed_append of { inner : bytes }
  | Get_topology
  | Seal_epoch
  | Get_super_root of { epoch : int option }
  | Get_sharded_proof of { shard : int; jsn : int }
  | Get_announcement of { epoch : int option }
  | Query_scatter of {
      spec : Ledger_query.Range_query.spec;
      window : Ledger_query.Range_query.window option;
      page_size : int;
    }

type response =
  | From_shard of { shard : int; inner : bytes }
  | Topology_r of { name : string; shards : int }
  | Sealed_r of Super_root.sealed
  | Super_root_r of Super_root.sealed option
  | Sharded_proof_r of Sharded_ledger.sharded_proof
  | Announcement_r of Gossip.announcement option
  | Query_scatter_r of Sharded_query.scatter
  | Error_r of string

let encode_request req =
  let w = Wire.writer () in
  (match req with
  | To_shard { shard; inner } ->
      Wire.w_u8 w 1;
      Wire.w_int w shard;
      Wire.w_bytes w inner
  | Routed_append { inner } ->
      Wire.w_u8 w 2;
      Wire.w_bytes w inner
  | Get_topology -> Wire.w_u8 w 3
  | Seal_epoch -> Wire.w_u8 w 4
  | Get_super_root { epoch } ->
      Wire.w_u8 w 5;
      Wire.w_option w (Wire.w_int w) epoch
  | Get_sharded_proof { shard; jsn } ->
      Wire.w_u8 w 6;
      Wire.w_int w shard;
      Wire.w_int w jsn
  | Get_announcement { epoch } ->
      Wire.w_u8 w 7;
      Wire.w_option w (Wire.w_int w) epoch
  | Query_scatter { spec; window; page_size } ->
      Wire.w_u8 w 8;
      Ledger_query.Range_query.w_spec w spec;
      Wire.w_option w (Ledger_query.Range_query.w_window w) window;
      Wire.w_int w page_size);
  Wire.contents w

let decode_request b =
  Wire.decode b (fun r ->
      match Wire.r_u8 r with
      | 1 ->
          let shard = Wire.r_int r in
          let inner = Wire.r_bytes r in
          To_shard { shard; inner }
      | 2 -> Routed_append { inner = Wire.r_bytes r }
      | 3 -> Get_topology
      | 4 -> Seal_epoch
      | 5 -> Get_super_root { epoch = Wire.r_option r (fun () -> Wire.r_int r) }
      | 6 ->
          let shard = Wire.r_int r in
          let jsn = Wire.r_int r in
          Get_sharded_proof { shard; jsn }
      | 7 ->
          Get_announcement { epoch = Wire.r_option r (fun () -> Wire.r_int r) }
      | 8 ->
          let spec = Ledger_query.Range_query.r_spec r in
          let window =
            Wire.r_option r (fun () -> Ledger_query.Range_query.r_window r)
          in
          let page_size = Wire.r_int r in
          Query_scatter { spec; window; page_size }
      | _ -> raise Wire.Corrupt)

let encode_response resp =
  let w = Wire.writer () in
  (match resp with
  | Error_r msg ->
      Wire.w_u8 w 0;
      Wire.w_string w msg
  | From_shard { shard; inner } ->
      Wire.w_u8 w 1;
      Wire.w_int w shard;
      Wire.w_bytes w inner
  | Topology_r { name; shards } ->
      Wire.w_u8 w 2;
      Wire.w_string w name;
      Wire.w_int w shards
  | Sealed_r sealed ->
      Wire.w_u8 w 3;
      Super_root.w_sealed w sealed
  | Super_root_r sealed ->
      Wire.w_u8 w 4;
      Wire.w_option w (Super_root.w_sealed w) sealed
  | Sharded_proof_r proof ->
      Wire.w_u8 w 5;
      Sharded_ledger.w_sharded_proof w proof
  | Announcement_r ann ->
      Wire.w_u8 w 6;
      Wire.w_option w (Gossip.w_announcement w) ann
  | Query_scatter_r sc ->
      Wire.w_u8 w 7;
      Sharded_query.w_scatter w sc);
  Wire.contents w

let decode_response b =
  Wire.decode b (fun r ->
      match Wire.r_u8 r with
      | 0 -> Error_r (Wire.r_string r)
      | 1 ->
          let shard = Wire.r_int r in
          let inner = Wire.r_bytes r in
          From_shard { shard; inner }
      | 2 ->
          let name = Wire.r_string r in
          let shards = Wire.r_int r in
          Topology_r { name; shards }
      | 3 -> Sealed_r (Super_root.r_sealed r)
      | 4 ->
          Super_root_r (Wire.r_option r (fun () -> Super_root.r_sealed r))
      | 5 -> Sharded_proof_r (Sharded_ledger.r_sharded_proof r)
      | 6 ->
          Announcement_r (Wire.r_option r (fun () -> Gossip.r_announcement r))
      | 7 -> Query_scatter_r (Sharded_query.r_scatter r)
      | _ -> raise Wire.Corrupt)

(* The owning shard of an encoded append request, by the public
   placement function.  A batch must be single-shard on this wire. *)
let route_inner t inner =
  match Service.decode_request inner with
  | Some (Service.Append { payload; clues; _ }) ->
      Ok (Shard_router.route (Sharded_ledger.router t) ~clues ~payload)
  | Some (Service.Append_batch { entries; _ }) -> (
      let shards =
        List.map
          (fun (payload, clues, _, _, _) ->
            Shard_router.route (Sharded_ledger.router t) ~clues ~payload)
          entries
      in
      match shards with
      | [] -> Error "routed append: empty batch"
      | s :: rest ->
          if List.for_all (( = ) s) rest then Ok s
          else Error "routed append: batch spans shards (split per shard)")
  | Some _ -> Error "routed append: not an append request"
  | None -> Error "routed append: malformed inner request"

let dispatch t = function
  | To_shard { shard; inner } ->
      if shard < 0 || shard >= Sharded_ledger.shard_count t then
        Error_r (Printf.sprintf "no such shard %d" shard)
      else
        From_shard
          { shard; inner = Service.handle (Sharded_ledger.shard t shard) inner }
  | Routed_append { inner } -> (
      match route_inner t inner with
      | Error msg -> Error_r msg
      | Ok shard ->
          From_shard
            { shard;
              inner = Service.handle (Sharded_ledger.shard t shard) inner })
  | Get_topology ->
      Topology_r
        {
          name = (Sharded_ledger.config t).Sharded_ledger.base.Ledger.name;
          shards = Sharded_ledger.shard_count t;
        }
  | Seal_epoch -> (
      match Sharded_ledger.seal_epoch t with
      | Ok sealed -> Sealed_r sealed
      | Error msg -> Error_r msg)
  | Get_super_root { epoch } -> (
      match epoch with
      | None -> Super_root_r (Sharded_ledger.latest t)
      | Some e -> Super_root_r (Sharded_ledger.epoch t e))
  | Get_sharded_proof { shard; jsn } -> (
      if shard < 0 || shard >= Sharded_ledger.shard_count t then
        Error_r (Printf.sprintf "no such shard %d" shard)
      else
        match Sharded_ledger.prove t ~shard ~jsn with
        | Ok proof -> Sharded_proof_r proof
        | Error msg -> Error_r msg)
  | Get_announcement { epoch } -> (
      match epoch with
      | None -> Announcement_r (Sharded_ledger.announce t)
      | Some e -> Announcement_r (Sharded_ledger.announce_epoch t e))
  | Query_scatter { spec; window; page_size } ->
      if page_size <= 0 || page_size > 65536 then Error_r "bad page_size"
      else Query_scatter_r (Sharded_query.scatter t ~spec ?window ~page_size ())

let handle t b =
  Metrics.incr "sharded_service_requests_total";
  let resp =
    match decode_request b with
    | None -> Error_r "malformed sharded request"
    | Some req -> (
        try dispatch t req
        with Invalid_argument msg | Failure msg | Sys_error msg -> Error_r msg)
  in
  (match resp with
  | Error_r _ -> Metrics.incr "sharded_service_errors_total"
  | _ -> ());
  encode_response resp

(* --- read/mutate split (lock-free read path) -------------------------------- *)

let classify = function
  | Routed_append _ | Seal_epoch -> `Mutate
  | To_shard { inner; _ } -> (
      (* a wrapped request mutates iff its inner envelope does; a
         malformed inner is answered with the same error on either
         path, so it can ride the lock-free one *)
      match Service.decode_request inner with
      | Some inner_req -> Service.classify inner_req
      | None -> `Read)
  | Get_topology | Get_super_root _ | Get_sharded_proof _ | Get_announcement _
  | Query_scatter _ ->
      `Read

(* Mirror of every read arm of {!dispatch} against a captured
   {!Sharded_ledger.fleet_view}; [t] supplies only immutable identity
   (the fleet signing key) for announcements. *)
let dispatch_view t fv = function
  | Routed_append _ | Seal_epoch -> assert false
  | To_shard { shard; inner } -> (
      if shard < 0 || shard >= Sharded_ledger.view_shard_count fv then
        Error_r (Printf.sprintf "no such shard %d" shard)
      else
        match Service.handle_view fv.Sharded_ledger.fv_shards.(shard) inner with
        | Some inner -> From_shard { shard; inner }
        | None -> assert false (* classify said the inner is a read *))
  | Get_topology ->
      Topology_r
        {
          name = fv.Sharded_ledger.fv_name;
          shards = Sharded_ledger.view_shard_count fv;
        }
  | Get_super_root { epoch } -> (
      match epoch with
      | None -> Super_root_r (Sharded_ledger.view_latest fv)
      | Some e -> Super_root_r (Sharded_ledger.view_epoch_sealed fv e))
  | Get_sharded_proof { shard; jsn } -> (
      if shard < 0 || shard >= Sharded_ledger.view_shard_count fv then
        Error_r (Printf.sprintf "no such shard %d" shard)
      else
        match Sharded_ledger.prove_view fv ~shard ~jsn with
        | Ok proof -> Sharded_proof_r proof
        | Error msg -> Error_r msg)
  | Get_announcement { epoch } -> (
      match epoch with
      | None -> Announcement_r (Sharded_ledger.announce_view t fv)
      | Some e -> Announcement_r (Sharded_ledger.announce_epoch_view t fv e))
  | Query_scatter { spec; window; page_size } ->
      if page_size <= 0 || page_size > 65536 then Error_r "bad page_size"
      else
        Query_scatter_r (Sharded_query.scatter_view fv ~spec ?window ~page_size ())

let handle_read t b =
  match decode_request b with
  | None ->
      Metrics.incr "sharded_service_requests_total";
      Metrics.incr "sharded_service_errors_total";
      Some (encode_response (Error_r "malformed sharded request"))
  | Some req -> (
      match classify req with
      | `Mutate -> None
      | `Read ->
          Metrics.incr "sharded_service_requests_total";
          let resp =
            try dispatch_view t (Sharded_ledger.fleet_view t) req
            with Invalid_argument msg | Failure msg | Sys_error msg ->
              Error_r msg
          in
          (match resp with
          | Error_r _ -> Metrics.incr "sharded_service_errors_total"
          | _ -> ());
          Some (encode_response resp))

module Client = struct
  type t = {
    router : Shard_router.t;
    per_shard : Service.Client.t array;
  }

  let create ~config ~member ~priv () =
    let shards = config.Sharded_ledger.shards in
    {
      router = Shard_router.create ~shards;
      per_shard =
        Array.init shards (fun i ->
            Service.Client.create
              ~ledger_uri:("ledger://" ^ Sharded_ledger.shard_name config i)
              ~member ~priv ());
    }

  let shards t = Array.length t.per_shard
  let route t ~clues ~payload = Shard_router.route t.router ~clues ~payload

  let make_append t ?(clues = []) ~client_ts payload =
    let shard = route t ~clues ~payload in
    let inner =
      Service.Client.make_append t.per_shard.(shard) ~clues ~client_ts payload
    in
    (shard, encode_request (Routed_append { inner }))

  let make_to_shard ~shard inner = encode_request (To_shard { shard; inner })
  let make_get_topology () = encode_request Get_topology
  let make_seal_epoch () = encode_request Seal_epoch

  let make_get_super_root ?epoch () =
    encode_request (Get_super_root { epoch })

  let make_get_sharded_proof ~shard ~jsn =
    encode_request (Get_sharded_proof { shard; jsn })

  let make_get_announcement ?epoch () =
    encode_request (Get_announcement { epoch })

  let make_query_scatter ~spec ?window ~page_size () =
    encode_request (Query_scatter { spec; window; page_size })

  let parse = decode_response

  let parse_from_shard b =
    match decode_response b with
    | Some (From_shard { shard; inner }) ->
        Option.map (fun r -> (shard, r)) (Service.Client.parse inner)
    | _ -> None
end
