open Ledger_crypto
open Ledger_storage
open Ledger_core
open Ledger_obs

type policy = {
  suspect_after : int;
  base_backoff_us : int64;
  max_backoff_us : int64;
  checkpoint_on_seal : bool;
}

let default_policy =
  { suspect_after = 2; base_backoff_us = 50_000L; max_backoff_us = 2_000_000L;
    checkpoint_on_seal = true }

type status =
  | Healthy
  | Suspect of { fails : int }
  | Quarantined of { attempt : int; next_repair_at : int64; down_at : int64 }
  | Repairing

let status_to_string = function
  | Healthy -> "healthy"
  | Suspect { fails } -> Printf.sprintf "suspect (%d failed probes)" fails
  | Quarantined { attempt; next_repair_at; _ } ->
      Printf.sprintf "quarantined (attempt %d, next repair at %Ldus)" attempt
        next_repair_at
  | Repairing -> "repairing"

type t = {
  fleet : Sharded_ledger.t;
  policy : policy;
  probe : int -> bool;
  source : Transport.t option;
  transport_policy : Transport.policy;
  backoff_rng : (unit -> float) option;
  pool : Ledger_par.Domain_pool.t;
  scratch_dir : string;
  states : status array;
}

let create ?(policy = default_policy) ?probe ?source
    ?(transport_policy = Transport.default_policy) ?backoff_rng
    ?(pool = Ledger_par.Domain_pool.default ()) ~fleet ~scratch_dir () =
  if policy.suspect_after < 1 then
    invalid_arg "Shard_supervisor.create: suspect_after must be >= 1";
  if not (Sys.file_exists scratch_dir) then Sys.mkdir scratch_dir 0o755;
  let probe =
    match probe with
    | Some p -> p
    | None -> fun i -> Sharded_ledger.shard_healthy fleet i
  in
  {
    fleet;
    policy;
    probe;
    source;
    transport_policy;
    backoff_rng;
    pool;
    scratch_dir;
    states = Array.make (Sharded_ledger.shard_count fleet) Healthy;
  }

let fleet t = t.fleet

let status t i =
  if i < 0 || i >= Array.length t.states then
    invalid_arg (Printf.sprintf "Shard_supervisor: shard %d out of range" i);
  t.states.(i)

let quarantined t =
  let acc = ref [] in
  Array.iteri
    (fun i s ->
      match s with
      | Quarantined _ | Repairing -> acc := i :: !acc
      | Healthy | Suspect _ -> ())
    t.states;
  List.rev !acc

let checkpoint_dir t i = Filename.concat t.scratch_dir (Printf.sprintf "ckpt-s%d" i)
let stage_dir t i = Filename.concat t.scratch_dir (Printf.sprintf "pull-s%d" i)

let now t = Clock.now (Sharded_ledger.fleet_clock t.fleet)

let set_gauge t i =
  let v =
    match t.states.(i) with
    | Healthy -> 1.
    | Suspect _ -> 0.5
    | Quarantined _ | Repairing -> 0.
  in
  Metrics.set_gauge (Printf.sprintf "shard_health_s%d" i) v

(* Bounded exponential backoff between repair attempts; an optional
   seeded draw jitters it the same way Transport backoffs jitter. *)
let backoff_us t ~attempt =
  let rec shifted base n =
    if n <= 0 || base >= t.policy.max_backoff_us then base
    else shifted (Int64.mul base 2L) (n - 1)
  in
  let raw =
    Int64.min t.policy.max_backoff_us
      (shifted t.policy.base_backoff_us attempt)
  in
  match t.backoff_rng with
  | None -> raw
  | Some rng ->
      let unit_f = Float.max 0. (Float.min 1. (rng ())) in
      let f = 1. -. (0.5 *. unit_f) in
      Int64.of_float (Int64.to_float raw *. f)

let enter_quarantine t i ~down_at ~attempt =
  let next_repair_at = Int64.add (now t) (backoff_us t ~attempt) in
  (match t.states.(i) with
  | Quarantined _ | Repairing -> ()
  | Healthy | Suspect _ -> Metrics.incr "shard_quarantines_total");
  t.states.(i) <- Quarantined { attempt; next_repair_at; down_at };
  set_gauge t i

let quarantine t i =
  ignore (status t i);
  match t.states.(i) with
  | Quarantined _ | Repairing -> ()
  | Healthy | Suspect _ -> enter_quarantine t i ~down_at:(now t) ~attempt:0

let note_probe_failure t i =
  match t.states.(i) with
  | Quarantined _ | Repairing -> ()
  | Healthy ->
      if t.policy.suspect_after <= 1 then
        enter_quarantine t i ~down_at:(now t) ~attempt:0
      else begin
        t.states.(i) <- Suspect { fails = 1 };
        set_gauge t i
      end
  | Suspect { fails } ->
      if fails + 1 >= t.policy.suspect_after then
        enter_quarantine t i ~down_at:(now t) ~attempt:0
      else begin
        t.states.(i) <- Suspect { fails = fails + 1 };
        set_gauge t i
      end

(* --- checkpoints ------------------------------------------------------------ *)

(* Two artefacts per checkpoint: the [Ledger.save] snapshot (what a
   salvage reloads) and a CRC-framed mirror of the journal stream in
   Stream_store's own on-disk format.  [Stream_store.recover] on the
   mirror is the salvage gate: it truncates torn tails on disk and
   classifies the damage, so a tampered checkpoint (corrupt interior
   record) is refused before any replay is attempted. *)
let mirror_journals ledger ~dir =
  let js = Stream_store.stream (Ledger.backing_store ledger) "journals" in
  let m = Stream_store.create ~dir () in
  let mjs = Stream_store.stream m "journals" in
  for i = 0 to Stream_store.length js - 1 do
    match Stream_store.read_result js i with
    | Ok b -> ignore (Stream_store.append mjs b)
    | Error _ ->
        ignore (Stream_store.append mjs Bytes.empty);
        Stream_store.erase mjs i
  done;
  Stream_store.persist m

let checkpoint_shard t i =
  let ledger = Sharded_ledger.shard t.fleet i in
  let dir = checkpoint_dir t i in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  try
    Ledger.save ledger ~dir;
    mirror_journals ledger ~dir;
    Metrics.incr "shard_checkpoints_total";
    true
  with Sys_error _ ->
    (* the store died mid-checkpoint: the probe path will pick it up *)
    false

(* --- repair ----------------------------------------------------------------- *)

(* The shard's last live sealed root and size, scanning epochs newest
   first: what a repaired kernel must reproduce (exactly, for a
   checkpoint salvage; as a prefix, for a replica resync). *)
let last_sealed_entry t i =
  let rec scan = function
    | [] -> None
    | (s : Super_root.sealed) :: older -> (
        match s.Super_root.presence.(i) with
        | Super_root.Sealed ->
            Some (s.Super_root.shard_roots.(i), s.Super_root.shard_sizes.(i))
        | Super_root.Carried -> scan older)
  in
  scan (List.rev (Sharded_ledger.epochs t.fleet))

let fresh_clock t = Clock.create ~start:(now t) ()

let salvage_checkpoint t i =
  let dir = checkpoint_dir t i in
  if not (Sys.file_exists dir) then Error "no checkpoint to salvage"
  else begin
    let _, reports = Stream_store.recover ~dir () in
    let tampered =
      List.exists
        (fun r -> r.Stream_store.damage = Stream_store.Corrupt_record)
        reports
    in
    List.iter
      (fun (r : Stream_store.recovery) ->
        match r.Stream_store.damage with
        | Stream_store.Intact -> ()
        | Stream_store.Torn_tail -> Metrics.incr "shard_salvage_torn_tails_total"
        | Stream_store.Corrupt_record ->
            Metrics.incr "shard_salvage_corrupt_records_total")
      reports;
    if tampered then
      Error "checkpoint mirror has a corrupt interior record (not a crash)"
    else begin
      let clock = fresh_clock t in
      let config = Sharded_ledger.shard_config (Sharded_ledger.config t.fleet) i in
      match Ledger.load_verbose ~config ~recover:true ~clock ~dir () with
      | Error msg -> Error msg
      | Ok (ledger, _) ->
          (* the dead kernel's in-memory accumulator survives the store:
             it is the authority on what the shard had committed.  A
             salvage that stops short of it would silently drop accepted
             journals — refuse and resync instead. *)
          let live = Sharded_ledger.shard t.fleet i in
          if
            Ledger.size ledger = Ledger.size live
            && Hash.equal (Ledger.commitment ledger) (Ledger.commitment live)
          then Ok (ledger, clock)
          else
            Error
              (Printf.sprintf
                 "salvage stopped short of the shard's committed state \
                  (%d/%d journals)"
                 (Ledger.size ledger) (Ledger.size live))
    end
  end

let resync_from_source t i =
  match t.source with
  | None -> Error "no repair source configured"
  | Some transport -> (
      let clock = fresh_clock t in
      let config = Sharded_ledger.shard_config (Sharded_ledger.config t.fleet) i in
      match
        Replica.pull_verbose
          ~transport:(Sharded_replica.shard_transport transport i)
          ~policy:t.transport_policy ~config ~resume:true ~pool:t.pool ~clock
          ~scratch_dir:(stage_dir t i) ()
      with
      | Error e -> Error (Replica.error_to_string e)
      | Ok (ledger, _stats) -> (
          match last_sealed_entry t i with
          | None -> Ok (ledger, clock)
          | Some (root, size) ->
              (* the source may have committed past the sealed root; the
                 sealed prefix is the part re-admission vouches for *)
              if Ledger.size ledger < size then
                Error
                  (Printf.sprintf
                     "resynced replica has %d journals, sealed size is %d"
                     (Ledger.size ledger) size)
              else if
                Ledger.size ledger = size
                && not (Hash.equal (Ledger.commitment ledger) root)
              then Error "resynced replica diverges from sealed root"
              else Ok (ledger, clock)))

let attempt_repair t i ~attempt ~down_at =
  t.states.(i) <- Repairing;
  set_gauge t i;
  Metrics.incr "shard_repair_attempts_total";
  let outcome =
    match salvage_checkpoint t i with
    | Ok r ->
        Metrics.incr "shard_salvages_total";
        Ok r
    | Error _ -> resync_from_source t i
  in
  match outcome with
  | Ok (ledger, clock) ->
      Sharded_ledger.replace_shard t.fleet i ~ledger ~clock;
      t.states.(i) <- Healthy;
      set_gauge t i;
      Metrics.incr "shard_repairs_total";
      Metrics.observe "shard_mttr_us" (Int64.to_float (Int64.sub (now t) down_at));
      true
  | Error _reason ->
      Metrics.incr "shard_repair_failures_total";
      enter_quarantine t i ~down_at ~attempt:(attempt + 1);
      false

let tick t =
  Array.iteri
    (fun i state ->
      match state with
      | Healthy | Suspect _ ->
          if t.probe i then begin
            t.states.(i) <- Healthy;
            set_gauge t i
          end
          else note_probe_failure t i
      | Quarantined { attempt; next_repair_at; down_at } ->
          if now t >= next_repair_at then
            ignore (attempt_repair t i ~attempt ~down_at)
      | Repairing -> ())
    t.states

(* --- degraded-mode operations ---------------------------------------------- *)

type unavailable = {
  shard : int;
  shard_status : status;
  retry_at : int64 option;
}

let unavailable_to_string u =
  Printf.sprintf "shard %d unavailable: %s%s" u.shard
    (status_to_string u.shard_status)
    (match u.retry_at with
    | Some at -> Printf.sprintf " (retry after %Ldus)" at
    | None -> "")

let reject t i =
  Metrics.incr "shard_unavailable_appends_total";
  let retry_at =
    match t.states.(i) with
    | Quarantined { next_repair_at; _ } -> Some next_repair_at
    | Healthy | Suspect _ | Repairing -> None
  in
  Error { shard = i; shard_status = t.states.(i); retry_at }

let append t ~member ~priv ?(clues = []) payload =
  let i =
    Shard_router.route (Sharded_ledger.router t.fleet) ~clues ~payload
  in
  match t.states.(i) with
  | Quarantined _ | Repairing -> reject t i
  | Healthy | Suspect _ -> (
      match Sharded_ledger.append t.fleet ~member ~priv ~clues payload with
      | result -> Ok result
      | exception Sys_error _ ->
          (* the store died under the append: advance the probe state so
             the shard heads for quarantine, and reject typed — the
             caller never sees the raw Sys_error *)
          note_probe_failure t i;
          reject t i)

let seal_epoch ?pool ?(policy = Sharded_ledger.Degraded_skip) t =
  let skip = quarantined t in
  let result = Sharded_ledger.seal_epoch ?pool ~policy ~skip t.fleet in
  (match result with
  | Ok _ when t.policy.checkpoint_on_seal ->
      Array.iteri
        (fun i state ->
          match state with
          | Healthy | Suspect _ -> ignore (checkpoint_shard t i)
          | Quarantined _ | Repairing -> ())
        t.states
  | Ok _ | Error _ -> ());
  result
