open Ledger_crypto
open Ledger_storage
open Ledger_merkle
open Ledger_core
open Ledger_obs
open Ledger_par

type config = { base : Ledger.config; shards : int }

let default_config = { base = Ledger.default_config; shards = 4 }

(* A one-shard fleet keeps the base name so every name-derived secret
   (LSP key, member key seeds, ledger URI) matches the unsharded ledger
   bit for bit — the N=1 differential property depends on this. *)
let shard_name cfg i =
  if cfg.shards = 1 then cfg.base.Ledger.name
  else Printf.sprintf "%s/s%d" cfg.base.Ledger.name i

let shard_config cfg i = { cfg.base with Ledger.name = shard_name cfg i }

type shard_state = {
  ledger : Ledger.t;
  clock : Clock.t;
  cache : Verify_cache.t;
}

type t = {
  cfg : config;
  router : Shard_router.t;
  members : shard_state array;
  fleet_clock : Clock.t;
  service_priv : Ecdsa.private_key;
  service_pub : Ecdsa.public_key;
  sealed : (Super_root.sealed list * int) Atomic.t;
      (* (newest-first sealed epochs, count).  Written only by the
         serialized mutation path, read from any domain: the pair is
         immutable once published, so one [Atomic.get] is a coherent
         snapshot of the fleet's sealed history. *)
}

(* The fleet's own signing identity (epoch announcements): derived from
   the base name like every other name-seeded key, and distinct from any
   shard's LSP key. *)
let service_keys base_name = Ecdsa.generate ~seed:("fleet:" ^ base_name)

let create ?(config = default_config) ~clock () =
  if config.shards < 1 || config.shards > 1024 then
    invalid_arg "Sharded_ledger.create: shards must be in [1,1024]";
  let members =
    Array.init config.shards (fun i ->
        let shard_clock =
          if config.shards = 1 then clock
          else Clock.create ~start:(Clock.now clock) ()
        in
        let ledger =
          Ledger.create ~config:(shard_config config i) ~clock:shard_clock ()
        in
        let cache = Verify_cache.create () in
        Verify_cache.attach cache ledger;
        { ledger; clock = shard_clock; cache })
  in
  let service_priv, service_pub = service_keys config.base.Ledger.name in
  {
    cfg = config;
    router = Shard_router.create ~shards:config.shards;
    members;
    fleet_clock = clock;
    service_priv;
    service_pub;
    sealed = Atomic.make ([], 0);
  }

let config t = t.cfg
let router t = t.router
let shard_count t = t.cfg.shards

let member_state t i =
  if i < 0 || i >= Array.length t.members then
    invalid_arg
      (Printf.sprintf "Sharded_ledger: shard %d out of range [0,%d)" i
         (Array.length t.members));
  t.members.(i)

let shard t i = (member_state t i).ledger
let shard_clock t i = (member_state t i).clock
let shard_cache t i = (member_state t i).cache
let fleet_clock t = t.fleet_clock
let shard_healthy t i = Ledger.store_healthy (member_state t i).ledger
let service_public_key t = t.service_pub

let replace_shard t i ~ledger ~clock =
  ignore (member_state t i);
  let cache = Verify_cache.create () in
  Verify_cache.attach cache ledger;
  t.members.(i) <- { ledger; clock; cache }

let total_size t =
  Array.fold_left (fun acc m -> acc + Ledger.size m.ledger) 0 t.members

let new_member t ~name ~role =
  (* seed from the base name — exactly what Ledger.new_member does on
     the unsharded ledger — then register the same key everywhere *)
  let priv, pub = Ecdsa.generate ~seed:(t.cfg.base.Ledger.name ^ ":" ^ name) in
  let members =
    Array.map
      (fun m -> Ledger.register_member m.ledger ~name ~role pub)
      t.members
  in
  (members.(0), priv)

(* --- routed append --------------------------------------------------------- *)

let shard_metric fmt i = Printf.sprintf fmt i

let append t ~member ~priv ?(clues = []) payload =
  let i = Shard_router.route t.router ~clues ~payload in
  let m = member_state t i in
  let receipt = Ledger.append m.ledger ~member ~priv ~clues payload in
  Metrics.incr (shard_metric "shard_appends_total_s%d" i);
  (i, receipt)

let append_batch ?(pool = Domain_pool.default ()) t ~member ~priv
    ?(seal = true) entries =
  (* partition by owning shard, remembering each entry's submission
     index so results come back in submission order *)
  let buckets = Array.make (shard_count t) [] in
  List.iteri
    (fun pos (payload, clues) ->
      let i = Shard_router.route t.router ~clues ~payload in
      buckets.(i) <- (pos, payload, clues) :: buckets.(i))
    entries;
  let results = Array.make (List.length entries) None in
  (* shards are independent kernels on forked clocks, so per-shard
     appends fan out across the pool; every task touches only its own
     shard state and its own [results] slots.  A 1-shard fleet shares
     the fleet clock but then has exactly one task. *)
  Domain_pool.parallel_for pool ~label:"shard_append" ~n:(shard_count t)
    (fun i ->
      match List.rev buckets.(i) with
      | [] -> ()
      | in_order ->
          let m = member_state t i in
          let receipts =
            Ledger.append_batch ~pool m.ledger ~member ~priv ~seal
              (List.map (fun (_, payload, clues) -> (payload, clues)) in_order)
          in
          Metrics.incr (shard_metric "shard_appends_total_s%d" i)
            ~by:(List.length in_order);
          List.iter2
            (fun (pos, _, _) r -> results.(pos) <- Some (i, r))
            in_order receipts);
  Array.to_list results
  |> List.map (function
       | Some r -> r
       | None -> assert false (* every position was bucketed *))

(* --- epoch sealing --------------------------------------------------------- *)

let advance_to clock target =
  let d = Int64.sub target (Clock.now clock) in
  if d > 0L then Clock.advance clock d

type seal_policy = All_or_nothing | Degraded_skip

(* What a Degraded_skip epoch records for an absent shard: its last
   sealed root and size, or — if the shard never sealed — a
   domain-separated placeholder over an empty history. *)
let carried_entry t i =
  match fst (Atomic.get t.sealed) with
  | s :: _ -> (s.Super_root.shard_roots.(i), s.Super_root.shard_sizes.(i))
  | [] ->
      (Hash.digest_string (Printf.sprintf "ledgerdb:carried-empty:%d" i), 0)

let seal_epoch ?(pool = Domain_pool.default ()) ?(policy = All_or_nothing)
    ?(skip = []) t =
  let sealed_rev, sealed_count = Atomic.get t.sealed in
  let sp = Trace.enter "super_root_seal" in
  Trace.attr_int sp "epoch" sealed_count;
  let n = Array.length t.members in
  List.iter
    (fun i ->
      if i < 0 || i >= n then
        invalid_arg
          (Printf.sprintf "Sharded_ledger.seal_epoch: skip shard %d out of range"
             i))
    skip;
  (* a shard is absent when the supervisor says so ([skip]) or its store
     probe fails; [skip] lets a quarantined shard be excluded without
     touching it at all *)
  let absent = Array.make n false in
  List.iter (fun i -> absent.(i) <- true) skip;
  Array.iteri
    (fun i m ->
      if (not absent.(i)) && not (Ledger.store_healthy m.ledger) then
        absent.(i) <- true)
    t.members;
  let dead = ref [] in
  Array.iteri (fun i a -> if a then dead := i :: !dead) absent;
  let dead = List.rev !dead in
  let result =
    match (policy, dead) with
    | All_or_nothing, i :: _ ->
        Metrics.incr "shard_seals_refused_total";
        Error
          (Printf.sprintf
             "seal refused: shard %d store unhealthy (no partial super-root)"
             i)
    | Degraded_skip, _ when List.length dead = n ->
        Metrics.incr "shard_seals_refused_total";
        Error "seal refused: every shard is unavailable (no quorum to carry)"
    | (All_or_nothing | Degraded_skip), _ -> (
        try
          (* per-shard seals fan out, absent shards untouched: each task
             touches only its own shard; a Sys_error raised inside a
             pooled task cancels the rest and re-raises here, landing in
             the same refusal below *)
          Domain_pool.parallel_for pool ~label:"shard_seal" ~n (fun i ->
              if not absent.(i) then Ledger.seal_block t.members.(i).ledger);
          (* the barrier: every live clock — shards and coordinator —
             meets at the fleet maximum.  Absent shards' clocks are left
             alone; repair resynchronizes them on re-admission. *)
          let horizon =
            Array.fold_left
              (fun acc m -> max acc (Clock.now m.clock))
              (Clock.now t.fleet_clock) t.members
          in
          advance_to t.fleet_clock horizon;
          Array.iteri
            (fun i m -> if not absent.(i) then advance_to m.clock horizon)
            t.members;
          let presence =
            Array.init n (fun i ->
                if absent.(i) then Super_root.Carried else Super_root.Sealed)
          in
          let sealed =
            Super_root.seal ~epoch:sealed_count ~at:horizon ~presence
              (Array.init n (fun i ->
                   if absent.(i) then carried_entry t i
                   else
                     let m = t.members.(i) in
                     (Ledger.commitment m.ledger, Ledger.size m.ledger)))
          in
          Atomic.set t.sealed (sealed :: sealed_rev, sealed_count + 1);
          Metrics.incr "shard_epochs_sealed_total";
          if dead <> [] then begin
            Metrics.incr "shard_epochs_degraded_total";
            Metrics.incr "shard_roots_carried_total" ~by:(List.length dead)
          end;
          Ok sealed
        with Sys_error msg ->
          Metrics.incr "shard_seals_refused_total";
          Error (Printf.sprintf "seal refused: %s (no partial super-root)" msg))
  in
  Trace.exit sp;
  result

let epochs t = List.rev (fst (Atomic.get t.sealed))

let latest t =
  match fst (Atomic.get t.sealed) with [] -> None | s :: _ -> Some s

let epoch t e =
  List.find_opt (fun (s : Super_root.sealed) -> s.Super_root.epoch = e)
    (fst (Atomic.get t.sealed))

let super_digest t = Option.map Super_root.commitment (latest t)

let anchor_epoch t pool =
  match latest t with
  | None -> invalid_arg "Sharded_ledger.anchor_epoch: no sealed epoch"
  | Some sealed ->
      Ledger_timenotary.Tsa.pool_endorse pool (Super_root.commitment sealed)

(* --- signed epoch announcements (non-equivocation gossip) ------------------ *)

let announce_sealed t (sealed : Super_root.sealed) =
  Gossip.sign ~priv:t.service_priv ~ledger:t.cfg.base.Ledger.name
    ~epoch:sealed.Super_root.epoch
    ~super:(Super_root.commitment sealed)
    ~sealed_at:sealed.Super_root.sealed_at

let announce t = Option.map (announce_sealed t) (latest t)
let announce_epoch t e = Option.map (announce_sealed t) (epoch t e)

module Unsafe = struct
  (* An equivocating service: mint a second validly signed announcement
     for an already-sealed epoch whose super-root differs from the one
     actually sealed.  Deterministic, so differential runs agree on the
     forged root.  Gossip peers holding both announcements fold them
     into self-verifying fork evidence. *)
  let equivocate t ~epoch:e =
    match epoch t e with
    | None -> None
    | Some sealed ->
        let forged_super =
          Hash.combine
            (Super_root.commitment sealed)
            (Hash.digest_string "ledgerdb:equivocation")
        in
        Some
          (Gossip.sign ~priv:t.service_priv ~ledger:t.cfg.base.Ledger.name
             ~epoch:e ~super:forged_super
             ~sealed_at:sealed.Super_root.sealed_at)
end

(* --- cross-shard proofs ---------------------------------------------------- *)

type sharded_proof = {
  shard : int;
  jsn : int;
  fam : Fam.proof;
  inclusion : Super_root.inclusion;
}

let prove t ~shard:i ~jsn =
  let m = member_state t i in
  match latest t with
  | None -> Error "no sealed epoch: seal_epoch before proving"
  | Some sealed ->
      if not (Hash.equal (Ledger.commitment m.ledger) sealed.Super_root.shard_roots.(i))
      then
        Error
          (Printf.sprintf
             "shard %d has committed past epoch %d's sealed root; reseal" i
             sealed.Super_root.epoch)
      else if jsn < 0 || jsn >= Ledger.size m.ledger then
        Error (Printf.sprintf "jsn %d out of range on shard %d" jsn i)
      else
        Ok
          {
            shard = i;
            jsn;
            fam = Ledger.get_proof m.ledger jsn;
            inclusion = Super_root.prove sealed ~shard:i;
          }

let verify_proof t ~super ?payload_digest proof =
  proof.inclusion.Super_root.shard = proof.shard
  && Super_root.verify ~super proof.inclusion
  &&
  let m = member_state t proof.shard in
  proof.jsn >= 0
  && proof.jsn < Ledger.size m.ledger
  &&
  let leaf = Ledger.tx_hash_of m.ledger proof.jsn in
  Fam.verify ~commitment:proof.inclusion.Super_root.shard_root ~leaf proof.fam
  &&
  match payload_digest with
  | None -> true
  | Some d -> (
      match Ledger.payload m.ledger proof.jsn with
      | Some p -> Hash.equal (Hash.digest_bytes p) d
      | None -> false)

let w_sharded_proof w p =
  Wire.w_int w p.shard;
  Wire.w_int w p.jsn;
  Proof_codec.w_fam_proof w p.fam;
  Super_root.w_inclusion w p.inclusion

let r_sharded_proof r =
  let shard = Wire.r_int r in
  let jsn = Wire.r_int r in
  let fam = Proof_codec.r_fam_proof r in
  let inclusion = Super_root.r_inclusion r in
  { shard; jsn; fam; inclusion }

let encode_sharded_proof p =
  let w = Wire.writer () in
  w_sharded_proof w p;
  Wire.contents w

let decode_sharded_proof b = Wire.decode b r_sharded_proof

(* --- fleet read view (lock-free read path) ---------------------------------- *)

module RV = Ledger.Read_view

type fleet_view = {
  fv_name : string;
  fv_shards : RV.t array;
      (* each shard's currently-published snapshot; shard views advance
         independently between epoch seals — cross-shard atomicity is
         exactly what [fv_sealed_rev] provides *)
  fv_sealed_rev : Super_root.sealed list; (* newest first *)
  fv_sealed_count : int;
}

let fleet_view t =
  let fv_sealed_rev, fv_sealed_count = Atomic.get t.sealed in
  {
    fv_name = t.cfg.base.Ledger.name;
    fv_shards = Array.map (fun m -> Ledger.read_view m.ledger) t.members;
    fv_sealed_rev;
    fv_sealed_count;
  }

let view_shard_count fv = Array.length fv.fv_shards

let view_latest fv =
  match fv.fv_sealed_rev with [] -> None | s :: _ -> Some s

let view_epoch_sealed fv e =
  List.find_opt (fun (s : Super_root.sealed) -> s.Super_root.epoch = e)
    fv.fv_sealed_rev

let announce_view t fv = Option.map (announce_sealed t) (view_latest fv)

let announce_epoch_view t fv e =
  Option.map (announce_sealed t) (view_epoch_sealed fv e)

(* Mirror of {!prove} against the view; error strings must match the
   live path for the differential gate. *)
let prove_view fv ~shard:i ~jsn =
  let v = fv.fv_shards.(i) in
  match view_latest fv with
  | None -> Error "no sealed epoch: seal_epoch before proving"
  | Some sealed ->
      if not (Hash.equal (RV.commitment v) sealed.Super_root.shard_roots.(i))
      then
        Error
          (Printf.sprintf
             "shard %d has committed past epoch %d's sealed root; reseal" i
             sealed.Super_root.epoch)
      else if jsn < 0 || jsn >= RV.size v then
        Error (Printf.sprintf "jsn %d out of range on shard %d" jsn i)
      else
        Ok
          {
            shard = i;
            jsn;
            fam = RV.get_proof v jsn;
            inclusion = Super_root.prove sealed ~shard:i;
          }
