open Ledger_crypto
open Ledger_core
include Ledger_core.Verify_api

type sharded_outcome = {
  shard : int;
  outcome : outcome;
  super : Hash.t option;
}

(* The owning shard of a target.  Existence/Receipt jsns are shard-local
   so the caller must name the shard; clue targets re-run the public
   placement function. *)
let owning_shard t ?shard target =
  match (shard, target) with
  | Some i, _ -> i
  | None, (Clue { key } | Clue_range { key; _ }) ->
      Shard_router.route_clue (Sharded_ledger.router t) key
  | None, (Existence _ | Receipt_check _) ->
      invalid_arg
        "Verify_api.verify_sharded: shard-local target needs ~shard (jsns \
         are shard-local)"
  | None, Query_complete _ ->
      invalid_arg
        "Verify_api.verify_sharded: a range query spans shards — use \
         Sharded_query.run, or name a ~shard to check one shard's index"

(* A sealed epoch covers a shard's state only while the shard's current
   commitment still equals its sealed root: verification against the
   super-root is verification of *sealed* history. *)
let covering_epoch t i =
  match Sharded_ledger.latest t with
  | None -> None
  | Some sealed ->
      if
        Hash.equal
          (Ledger.commitment (Sharded_ledger.shard t i))
          sealed.Super_root.shard_roots.(i)
      then Some sealed
      else None

let verify_sharded ?(use_cache = true) t ~level ?shard target =
  let i = owning_shard t ?shard target in
  let ledger = Sharded_ledger.shard t i in
  let sealed = covering_epoch t i in
  let super = Option.map Super_root.commitment sealed in
  (* the trust root the verdict is keyed under: the fleet digest when a
     seal covers this shard, the shard commitment otherwise *)
  let root =
    match super with Some s -> s | None -> Ledger.commitment ledger
  in
  let cache =
    if use_cache then Some (Sharded_ledger.shard_cache t i) else None
  in
  let key =
    match cache with
    | None -> None
    | Some _ ->
        Option.map
          (fun (jsn, verifier) ->
            (jsn, Printf.sprintf "shard%d:%s" i verifier))
          (cache_key ~level target)
  in
  let cached =
    match (cache, key) with
    | Some c, Some (jsn, verifier) -> Verify_cache.find c ~root ~jsn ~verifier
    | _ -> None
  in
  let outcome =
    match cached with
    | Some ok ->
        { target; level; ok; detail = "cache: sharded verdict reused" }
    | None ->
        (* shard-local verdict (no cache here: the core verify would key
           it by shard commitment; we key the composed verdict below) *)
        let local = verify ledger ~level target in
        let composed =
          match (level, sealed, target) with
          | Client, Some sealed, (Existence _ | Receipt_check _) ->
              let inclusion = Super_root.prove sealed ~shard:i in
              let sup = Super_root.commitment sealed in
              if Super_root.verify ~super:sup inclusion then local
              else
                {
                  local with
                  ok = false;
                  detail = "shard root not included in epoch super-root";
                }
          | _ -> local
        in
        (match (cache, key) with
        | Some c, Some (jsn, verifier) ->
            Verify_cache.store c ~root ~jsn ~verifier composed.ok
        | _ -> ());
        composed
  in
  (* per-shard audit trail: verifier strings embed the shard so
     Audit_log.coverage_where can break coverage down per shard *)
  if Ledger_obs.Obs.enabled () then begin
    let verifier =
      Printf.sprintf "shard%d:%s" i
        (match level with Server -> "server" | Client -> "client")
    in
    let subject =
      match target with
      | Existence { jsn; _ } -> Ledger_obs.Audit_log.Journal jsn
      | Clue { key } | Clue_range { key; _ } -> Ledger_obs.Audit_log.Clue key
      | Receipt_check r -> Ledger_obs.Audit_log.Receipt r.Receipt.jsn
      | Query_complete { spec; _ } ->
          Ledger_obs.Audit_log.Clue (spec_str spec)
    in
    Ledger_obs.Audit_log.record ~verifier subject
      (if outcome.ok then Ledger_obs.Audit_log.Verified
       else Ledger_obs.Audit_log.Repudiated outcome.detail);
    Ledger_obs.Metrics.incr
      (Printf.sprintf "shard_verifications_total_s%d" i)
  end;
  { shard = i; outcome; super }
