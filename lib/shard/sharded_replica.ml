open Ledger_crypto
open Ledger_storage
open Ledger_core
open Ledger_obs

type fleet = {
  name : string;
  shards : Ledger.t array;
  super : Super_root.sealed option;
  stats : Replica.stats array;
}

type error =
  | Topology of string
  | Fleet_transport of Transport.error
  | Shard of { shard : int; error : Replica.error }
  | Super_root_mismatch of string
  | Equivocation of Gossip.fork_evidence

let error_to_string = function
  | Topology msg -> "topology: " ^ msg
  | Fleet_transport e -> Transport.error_to_string e
  | Shard { shard; error } ->
      Printf.sprintf "shard %d: %s" shard (Replica.error_to_string error)
  | Super_root_mismatch msg -> "super-root mismatch: " ^ msg
  | Equivocation ev -> Gossip.fork_to_string ev

let shard_transport transport shard : Transport.t =
 fun req ->
  let resp =
    transport
      (Sharded_service.encode_request
         (Sharded_service.To_shard { shard; inner = req }))
  in
  match Sharded_service.decode_response resp with
  | Some (Sharded_service.From_shard { inner; _ }) -> inner
  | Some (Sharded_service.Error_r msg) ->
      (* surface the dispatcher's refusal as a Service-level error so
         Replica's typed handling sees it *)
      Service.encode_response (Service.Error_r msg)
  | _ -> resp

(* One fleet-level request outside the Replica machinery.  Transport's
   typed retry loop decodes Service responses, not sharded frames, so
   the same policy (attempts, backoff against the simulated clock) is
   replayed here at the raw byte level.  Exhaustion is a typed
   {!Transport.error} carrying the attempt count — never the last raw
   failure string alone. *)
let fleet_request ?backoff_rng ~transport ~policy ~clock req =
  let max_attempts = max 1 policy.Transport.max_attempts in
  let backoff ~attempt =
    match backoff_rng with
    | None -> Transport.backoff_ms policy ~seed:0 ~attempt
    | Some rng ->
        let exp =
          policy.Transport.base_backoff_ms
          *. (2. ** float_of_int (max 0 (attempt - 1)))
        in
        let unit_f = Float.max 0. (Float.min 1. (rng ())) in
        let factor =
          if policy.Transport.jitter <= 0. then 1.
          else 1. -. (policy.Transport.jitter *. unit_f)
        in
        Float.min policy.Transport.max_backoff_ms exp *. factor
  in
  let rec go attempt =
    let outcome =
      match transport req with
      | resp -> (
          match Sharded_service.decode_response resp with
          | Some r -> Ok r
          | None -> Error "undecodable fleet response")
      | exception Transport.Timeout msg -> Error ("timeout: " ^ msg)
    in
    match outcome with
    | Ok r -> Ok r
    | Error _ when attempt < max_attempts ->
        Clock.advance_ms clock (backoff ~attempt);
        go (attempt + 1)
    | Error reason ->
        Metrics.incr "transport_failures_total";
        Error { Transport.attempts = attempt; reason }
  in
  go 1

let validate_fleet ~announced (replicas : Ledger.t array) =
  match announced with
  | None -> Ok None
  | Some (sealed : Super_root.sealed) ->
      let n = Array.length sealed.Super_root.shard_roots in
      if n <> Array.length replicas then
        Error
          (Printf.sprintf "sealed epoch covers %d shards, pulled %d" n
             (Array.length replicas))
      else begin
        let bad = ref None in
        Array.iteri
          (fun i replica ->
            if !bad = None then begin
              let want_root = sealed.Super_root.shard_roots.(i) in
              let want_size = sealed.Super_root.shard_sizes.(i) in
              if Ledger.size replica <> want_size then
                bad :=
                  Some
                    (Printf.sprintf
                       "shard %d: replica has %d journals, sealed size is %d"
                       i (Ledger.size replica) want_size)
              else if not (Hash.equal (Ledger.commitment replica) want_root)
              then
                bad :=
                  Some
                    (Printf.sprintf
                       "shard %d: replica commitment diverges from sealed root"
                       i)
            end)
          replicas;
        match !bad with Some msg -> Error msg | None -> Ok (Some sealed)
      end

(* Fetch the service's signed announcement for the pulled epoch and fold
   it into the gossip peer.  Forked evidence fails the pull — a fleet
   whose service is provably equivocating is refused, not returned.
   Announcement fetch failures are non-fatal (gossip is best-effort);
   a missing announcement for a sealed epoch is suspicious but the
   super-root validation above already bound the bytes. *)
let gossip_check ?backoff_rng ~transport ~policy ~clock ~gossip
    (super : Super_root.sealed option) =
  match (gossip, super) with
  | None, _ | _, None -> Ok ()
  | Some peer, Some sealed -> (
      match
        fleet_request ?backoff_rng ~transport ~policy ~clock
          Sharded_service.(
            encode_request
              (Get_announcement { epoch = Some sealed.Super_root.epoch }))
      with
      | Error _ | Ok (Sharded_service.Error_r _) -> Ok ()
      | Ok (Sharded_service.Announcement_r None) -> Ok ()
      | Ok (Sharded_service.Announcement_r (Some ann)) -> (
          match Gossip.observe peer ann with
          | Gossip.Forked ev -> Error (Equivocation ev)
          | Gossip.Fresh | Gossip.Confirmed | Gossip.Rejected _ -> Ok ())
      | Ok _ -> Ok ())

let pull_all ~transport ?(policy = Transport.default_policy) ?config
    ?(resume = true) ?(pool = Ledger_par.Domain_pool.default ()) ?gossip
    ?backoff_rng ~clock ~scratch_dir () =
  let sp = Trace.enter "sharded_replica.pull_all" in
  let finish r =
    Trace.exit sp;
    r
  in
  match
    fleet_request ?backoff_rng ~transport ~policy ~clock
      Sharded_service.(encode_request Get_topology)
  with
  | Error e -> finish (Error (Fleet_transport e))
  | Ok (Sharded_service.Error_r msg) -> finish (Error (Topology msg))
  | Ok (Sharded_service.Topology_r { name; shards }) -> (
      let cfg =
        match config with
        | Some c -> c
        | None ->
            {
              Sharded_ledger.base =
                { Ledger.default_config with Ledger.name };
              shards;
            }
      in
      if cfg.Sharded_ledger.shards <> shards then
        finish
          (Error
             (Topology
                (Printf.sprintf "config says %d shards, service announces %d"
                   cfg.Sharded_ledger.shards shards)))
      else if cfg.Sharded_ledger.base.Ledger.name <> name then
        finish
          (Error
             (Topology
                (Printf.sprintf "config names %S, service announces %S"
                   cfg.Sharded_ledger.base.Ledger.name name)))
      else begin
        if not (Sys.file_exists scratch_dir) then Sys.mkdir scratch_dir 0o755;
        let replicas = Array.make shards None in
        let stats = Array.make shards None in
        let failed = ref None in
        Array.iteri
          (fun i () ->
            if !failed = None then begin
              let sub = Filename.concat scratch_dir (Printf.sprintf "shard-%d" i) in
              match
                (* shard pulls stay sequential — they share one
                   transport (seeded, deterministic retries) and one
                   clock — but each pull fans its staged π_c pre-check
                   across [pool] *)
                Replica.pull_verbose ~transport:(shard_transport transport i)
                  ~policy
                  ~config:(Sharded_ledger.shard_config cfg i)
                  ~resume ~pool ~clock ~scratch_dir:sub ()
              with
              | Ok (ledger, st) ->
                  replicas.(i) <- Some ledger;
                  stats.(i) <- Some st;
                  Metrics.incr "sharded_replica_shards_pulled_total"
              | Error e -> failed := Some (Shard { shard = i; error = e })
            end)
          (Array.make shards ());
        match !failed with
        | Some e -> finish (Error e)
        | None -> (
            let replicas = Array.map Option.get replicas in
            let stats = Array.map Option.get stats in
            match
              fleet_request ?backoff_rng ~transport ~policy ~clock
                Sharded_service.(encode_request (Get_super_root { epoch = None }))
            with
            | Error e -> finish (Error (Fleet_transport e))
            | Ok (Sharded_service.Error_r msg) -> finish (Error (Topology msg))
            | Ok (Sharded_service.Super_root_r announced) -> (
                match validate_fleet ~announced replicas with
                | Error msg -> finish (Error (Super_root_mismatch msg))
                | Ok super -> (
                    match
                      gossip_check ?backoff_rng ~transport ~policy ~clock
                        ~gossip super
                    with
                    | Error e -> finish (Error e)
                    | Ok () ->
                        finish (Ok { name; shards = replicas; super; stats })))
            | Ok _ ->
                finish (Error (Topology "unexpected super-root response")))
      end)
  | Ok _ -> finish (Error (Topology "unexpected topology response"))
