(** Fleet replication: pull every shard independently, resume per shard,
    and validate the fleet against the announced epoch super-root.

    Each shard is pulled through the self-healing
    {!Ledger_core.Replica.pull_verbose} over a per-shard sub-transport
    (shard-local requests wrapped in {!Sharded_service.request.To_shard}
    envelopes), staged in its own scratch subdirectory — so an
    interrupted fleet pull resumes shard by shard from each shard's last
    intact journal, and one flaky shard never restarts the others.

    After the pulls, the announced latest super-root (if any) is checked
    strictly: every replica's commitment and size must equal that
    shard's sealed root, and the recomputed Merkle root over the sealed
    leaves must reproduce the announced one.  A fleet that fails this is
    refused, not returned. *)

open Ledger_storage
open Ledger_core

type fleet = {
  name : string;  (** base ledger name announced by the service *)
  shards : Ledger.t array;  (** locally verified replica per shard *)
  super : Super_root.sealed option;
      (** the latest sealed epoch announced by the service, already
          validated against every replica *)
  stats : Replica.stats array;  (** per-shard transfer statistics *)
}

type error =
  | Topology of string  (** topology discovery failed or mismatched *)
  | Fleet_transport of Transport.error
      (** a fleet-level request exhausted its retries: typed, carrying
          the attempt count — never just the last raw failure *)
  | Shard of { shard : int; error : Replica.error }
      (** one shard's pull failed (earlier shards' stages survive) *)
  | Super_root_mismatch of string
      (** the pulled fleet does not reproduce the announced super-root *)
  | Equivocation of Gossip.fork_evidence
      (** the service's signed announcement for the pulled epoch
          conflicts with one the gossip peer already holds — the fleet
          is refused and the self-verifying evidence returned *)

val error_to_string : error -> string

val shard_transport : Transport.t -> int -> Transport.t
(** Wrap a fleet transport into a shard-local one: requests travel in
    [To_shard] envelopes and [From_shard] frames are unwrapped.  A
    non-envelope response is passed through raw (so transport-level
    failures keep their retry semantics). *)

val pull_all :
  transport:Transport.t ->
  ?policy:Transport.policy ->
  ?config:Sharded_ledger.config ->
  ?resume:bool ->
  ?pool:Ledger_par.Domain_pool.t ->
  ?gossip:Gossip.t ->
  ?backoff_rng:(unit -> float) ->
  clock:Clock.t ->
  scratch_dir:string ->
  unit ->
  (fleet, error) result
(** [transport] speaks {!Sharded_service}.  The shard count and base
    name come from [Get_topology]; when [config] is given its geometry
    must agree (checked).  [scratch_dir/shard-<i>] stages shard [i];
    defaults to {!Transport.default_policy} and [~resume:true].

    [pool] feeds each shard's {!Replica.pull_verbose} π_c pre-check.
    Shard staging itself is sequential by design: every shard shares the
    one fleet transport (whose retry/backoff policy is seeded and
    deterministic) and the one simulated clock.

    With [gossip], the service's signed announcement for the pulled
    epoch is fetched and folded into the peer: conflicting announcements
    refuse the whole pull with {!error.Equivocation} (announcement fetch
    failures are non-fatal — the super-root bytes were already
    validated).  [backoff_rng] threads a jitter source (e.g.
    {!Ledger_fault.Faulty_transport.backoff_rng}) into the fleet-level
    retry loops, so one seed replays faults and retry timing. *)
