(** The two-layer Clue Merged Tree (CM-Tree) — paper §IV, Fig. 6.

    CM-Tree1 is a Merkle Patricia Trie over SHA-3-scattered clue keys.
    The value stored at a clue's leaf is the serialized {e node-set
    commitment} (Shrubs root-proof set) of that clue's private Merkle
    accumulator, CM-Tree2.  Appending a journal to a clue therefore costs
    one O(1) CM-Tree2 insert plus one O(depth) MPT path rehash — "similar
    insertion cost" to ccMPT — while clue verification touches only the
    clue's own accumulator, O(m) instead of O(m·log n).

    Clue-oriented verification follows §IV-C: the server assembles ℂ_a
    (CM-Tree2 support cells, computed with {!Ledger_merkle.Range_proof})
    and ℂ_s (the CM-Tree1 walk); the client replays both layers. *)

open Ledger_crypto
open Ledger_merkle
open Ledger_mpt
module Wire = Ledger_crypto.Wire

type t

val create : unit -> t

val insert : t -> clue:string -> Hash.t -> int
(** [insert t ~clue digest] appends a journal digest to the clue's
    CM-Tree2 and refreshes CM-Tree1; returns the journal's version index
    (0-based) within the clue. *)

val freeze : t -> t
(** O(1) immutable snapshot: {!Ledger_mpt.Mpt.freeze} of CM-Tree1 plus
    the persistent frozen-accumulator mirror.  All reads and proofs work
    on the result from any domain while the original keeps inserting.
    Only read on the result. *)

val entries : t -> clue:string -> int
(** Number of journals recorded under the clue. *)

val entry : t -> clue:string -> int -> Hash.t
(** Digest of the [i]-th journal of the clue. *)

val clue_count : t -> int
val root_hash : t -> Hash.t
(** CM-Tree1 root — recorded in every block as the verifiable snapshot. *)

val clue_commitment : t -> clue:string -> Hash.t option
(** Digest of the clue's current CM-Tree2 node-set. *)

val mpt_lookup_depth : t -> clue:string -> int
(** CM-Tree1 nodes visited when resolving the clue (for the top-layer
    cache / disk I/O cost model). *)

(** {1 Clue-oriented verification} *)

type clue_proof = {
  clue : string;
  version_range : int * int;  (** inclusive *)
  accumulator_proof : Range_proof.t;  (** ℂ_a: CM-Tree2 support cells *)
  trie_proof : Mpt.proof;  (** ℂ_s: CM-Tree1 walk for the clue *)
  committed_value : bytes;  (** the clue's CM-Tree1 value (serialized node-set) *)
}

val prove_clue : t -> clue:string -> ?first:int -> ?last:int -> unit -> clue_proof option
(** Whole-clue proof by default; [first]/[last] select a version range
    (the paper's "verify within a range specified by version"). *)

val verify_clue :
  root:Hash.t -> known:(int * Hash.t) list -> clue_proof -> bool
(** Client-side verification (level = client): [known] maps version
    indices to journal digests the client recomputed from retrieved
    payloads.  Checks (1) the CM-Tree2 reconstruction against the
    committed node-set and (2) the CM-Tree1 walk against [root]. *)

val verify_clue_server : t -> known:(int * Hash.t) list -> clue:string -> bool
(** Server-side verification (level = server): skips shipping ℂ_a/ℂ_s and
    checks the digests directly against the server's own trees (§IV-C,
    steps 1–3 and 6 only). *)

val stored_digests : t -> int

(** {1 Wire codec} *)

val w_clue_proof : Wire.writer -> clue_proof -> unit
val r_clue_proof : Wire.reader -> clue_proof

(** {1 Lineage extension (consistency) proofs}

    Between two reads of a clue, prove the new committed node-set is an
    append-only extension of the old one — the LSP cannot silently rewrite
    a clue's history between a client's visits. *)

val prove_clue_extension :
  t -> clue:string -> old_size:int -> Ledger_merkle.Forest.consistency_proof option

val verify_clue_extension :
  old_value:bytes ->
  new_value:bytes ->
  Ledger_merkle.Forest.consistency_proof ->
  bool
(** [old_value]/[new_value] are the clue's CM-Tree1 values (as carried in
    {!clue_proof}[.committed_value]) from the earlier and later reads. *)
