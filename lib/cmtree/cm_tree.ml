open Ledger_crypto
open Ledger_merkle
open Ledger_mpt
module Wire = Ledger_crypto.Wire

module SMap = Map.Make (String)

type t = {
  trie : Mpt.t; (* CM-Tree1 *)
  accumulators : (string, Shrubs.t) Hashtbl.t; (* CM-Tree2, writer side *)
  mutable fcells : Shrubs.t SMap.t;
      (* read-side mirror: a {!Shrubs.freeze} of each clue's accumulator,
         republished on every insert, so {!freeze} is O(1) and reads are
         domain-safe against a concurrently-inserting writer *)
}

let create () =
  { trie = Mpt.create (); accumulators = Hashtbl.create 64;
    fcells = SMap.empty }

(* The CM-Tree1 value: size and peak set of the clue's CM-Tree2, so a
   verifier can rebuild the node-set commitment from the trie alone. *)
let encode_value shrubs =
  let peaks = Shrubs.peaks shrubs in
  let buf = Buffer.create (16 + (32 * List.length peaks)) in
  Buffer.add_string buf (string_of_int (Shrubs.size shrubs));
  Buffer.add_char buf '\000';
  List.iter (fun h -> Buffer.add_bytes buf (Hash.to_bytes h)) peaks;
  Buffer.to_bytes buf

let decode_value b =
  match Bytes.index_opt b '\000' with
  | None -> None
  | Some sep -> (
      match int_of_string_opt (Bytes.sub_string b 0 sep) with
      | None -> None
      | Some size ->
          let rest = Bytes.length b - sep - 1 in
          if rest mod 32 <> 0 then None
          else begin
            let peaks =
              List.init (rest / 32) (fun i ->
                  Hash.of_bytes (Bytes.sub b (sep + 1 + (32 * i)) 32))
            in
            Some (size, peaks)
          end)

let accumulator t clue =
  match Hashtbl.find_opt t.accumulators clue with
  | Some s -> s
  | None ->
      let s = Shrubs.create () in
      Hashtbl.replace t.accumulators clue s;
      s

let insert t ~clue digest =
  let shrubs = accumulator t clue in
  let version = Shrubs.append shrubs digest in
  t.fcells <- SMap.add clue (Shrubs.freeze shrubs) t.fcells;
  Mpt.insert_string t.trie ~key:clue (encode_value shrubs);
  version

let freeze t =
  { trie = Mpt.freeze t.trie; accumulators = Hashtbl.create 1;
    fcells = t.fcells }

(* All reads resolve clue accumulators through the frozen mirror so they
   behave identically on the live tree and on a {!freeze} snapshot. *)
let find_accumulator t clue = SMap.find_opt clue t.fcells

let entries t ~clue =
  match find_accumulator t clue with
  | Some s -> Shrubs.size s
  | None -> 0

let entry t ~clue i =
  match find_accumulator t clue with
  | Some s -> Shrubs.leaf s i
  | None -> invalid_arg "Cm_tree.entry: unknown clue"

let clue_count t = SMap.cardinal t.fcells
let root_hash t = Mpt.root_hash t.trie

let clue_commitment t ~clue =
  Option.map Shrubs.commitment (find_accumulator t clue)

let mpt_lookup_depth t ~clue =
  Mpt.lookup_depth t.trie ~key:(Nibble.of_hash (Hash.scatter clue))

type clue_proof = {
  clue : string;
  version_range : int * int;
  accumulator_proof : Range_proof.t;
  trie_proof : Mpt.proof;
  committed_value : bytes;
}

let prove_clue t ~clue ?first ?last () =
  match find_accumulator t clue with
  | None -> None
  | Some shrubs ->
      let n = Shrubs.size shrubs in
      if n = 0 then None
      else begin
        let first = Option.value first ~default:0 in
        let last = Option.value last ~default:(n - 1) in
        match Mpt.prove_string t.trie ~key:clue with
        | None -> None
        | Some trie_proof ->
            Some
              {
                clue;
                version_range = (first, last);
                accumulator_proof =
                  Range_proof.prove (Shrubs.forest shrubs) ~first ~last;
                trie_proof;
                committed_value = encode_value shrubs;
              }
      end

let verify_clue ~root ~known proof =
  match decode_value proof.committed_value with
  | None -> false
  | Some (size, peaks) ->
      (* layer 2: reconstruct the clue accumulator's peaks *)
      size = proof.accumulator_proof.Range_proof.size
      && Proof.node_set_equal peaks proof.accumulator_proof.Range_proof.peak_set
      && Range_proof.verify ~known proof.accumulator_proof
      (* layer 1: the trie walk commits the value under the ledger root *)
      && Mpt.verify_proof_string ~root ~key:proof.clue
           ~value:proof.committed_value proof.trie_proof

let verify_clue_server t ~known ~clue =
  match find_accumulator t clue with
  | None -> false
  | Some shrubs ->
      known <> []
      && List.for_all
           (fun (i, h) ->
             i >= 0 && i < Shrubs.size shrubs && Hash.equal (Shrubs.leaf shrubs i) h)
           known

let stored_digests t =
  SMap.fold (fun _ s acc -> acc + Shrubs.stored_digests s) t.fcells 0

(* --- wire codec ------------------------------------------------------------ *)

let w_clue_proof w p =
  Wire.w_string w p.clue;
  Wire.w_int w (fst p.version_range);
  Wire.w_int w (snd p.version_range);
  Proof_codec.w_range_proof w p.accumulator_proof;
  Mpt.w_proof w p.trie_proof;
  Wire.w_bytes w p.committed_value

let r_clue_proof r =
  let clue = Wire.r_string r in
  let first = Wire.r_int r in
  let last = Wire.r_int r in
  let accumulator_proof = Proof_codec.r_range_proof r in
  let trie_proof = Mpt.r_proof r in
  let committed_value = Wire.r_bytes r in
  { clue; version_range = (first, last); accumulator_proof; trie_proof;
    committed_value }

(* --- lineage extension proofs --------------------------------------------- *)

let prove_clue_extension t ~clue ~old_size =
  match find_accumulator t clue with
  | None -> None
  | Some shrubs ->
      if old_size <= 0 || old_size > Shrubs.size shrubs then None
      else Some (Shrubs.prove_consistency shrubs ~old_size)

let verify_clue_extension ~old_value ~new_value proof =
  match (decode_value old_value, decode_value new_value) with
  | Some (old_size, old_peaks), Some (new_size, new_peaks) ->
      Shrubs.verify_consistency ~old_size ~old_peaks ~new_size ~new_peaks proof
  | _ -> false
