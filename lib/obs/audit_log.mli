(** Append-only audit log of verification attempts.

    Every verification anywhere in the stack — client receipt checks,
    server existence proofs, auditor sweeps — records who verified what
    and how it went.  The log is queryable: {!coverage} reports which
    fraction of the ledger has actually been verified by anyone, the
    number behind [ledgerdb_cli stats]. *)

type subject =
  | Journal of int  (** existence/integrity of journal [jsn] *)
  | Receipt of int  (** server receipt for journal [jsn] *)
  | Commitment of int  (** ledger-level commitment at the given size *)
  | Clue of string  (** clue (label) completeness check *)
  | Extension of { old_size : int; new_size : int }
      (** append-only growth between two sizes *)
  | Fork_epoch of int
      (** non-equivocation gossip surfaced conflicting service-signed
          super-roots for this epoch (always [Repudiated]) *)

type outcome =
  | Verified
  | Degraded of string
      (** attempt made, no verdict (e.g. transport exhausted) *)
  | Repudiated of string  (** cryptographic evidence against the ledger *)

type entry = {
  seq : int;  (** global event sequence (shared with trace spans) *)
  at_us : int64;  (** simulated time of the attempt *)
  verifier : string;
  subject : subject;
  outcome : outcome;
}

val record : verifier:string -> subject -> outcome -> unit
(** Append one entry.  No-op while recording is disabled. *)

val entries : unit -> entry list
(** Oldest first. *)

val size : unit -> int

type coverage = { verified_jsns : int; total_jsns : int; ratio : float }

val coverage : ledger_size:int -> coverage
(** A jsn is covered when at least one [Verified] entry targets its
    journal or receipt.  [ratio] is 1.0 for an empty ledger. *)

val coverage_where : verifier_prefix:string -> ledger_size:int -> coverage
(** Like {!coverage} but counting only entries whose [verifier] string
    starts with [verifier_prefix] — the per-shard breakdown behind
    [ledgerdb_cli stats] (sharded verifiers embed their shard, e.g.
    ["client@shard3"]), where [ledger_size] is that shard's size and
    jsns are shard-local. *)

val subject_to_string : subject -> string
val outcome_to_string : outcome -> string

val to_json_line : entry -> string
val to_json_lines : unit -> string

val reset : unit -> unit
