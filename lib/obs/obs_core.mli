(** Shared observability state (internal to [ledger_obs]).

    Instrumented code must only ever read {!enabled}; everything else is
    plumbing for {!Obs}, {!Metrics}, {!Trace} and {!Audit_log}. *)

val enabled : bool ref
(** The process-wide recording switch.  [false] (the default no-op sink)
    turns every hook into a bool read. *)

val time_source : (unit -> int64) ref
(** Simulated-microsecond source; set by {!Obs.enable}. *)

val now : unit -> int64
(** Current simulated time per {!time_source} (0 when never set). *)

val seq : int Atomic.t
val next_seq : unit -> int
(** Monotone event sequence shared by spans and audit entries.  Atomic,
    so pooled tasks recording audit entries keep unique sequence
    numbers. *)

val locked : (unit -> 'a) -> 'a
(** Run under the shared registry lock.  Guards every mutable registry
    (metrics, audit log) against concurrent pooled tasks; the disabled
    fast path never takes it. *)

val on_main_domain : unit -> bool
(** Whether the caller runs on the domain that initialised observability.
    Spans are only recorded there — the parent stack is single-domain by
    construction. *)

val escape : string -> string
(** JSON string-body escaping for the line exporters. *)
