(* Top-level switchboard for the observability subsystem. *)

let enable ?time () =
  (match time with Some f -> Obs_core.time_source := f | None -> ());
  Obs_core.enabled := true

let disable () = Obs_core.enabled := false
let enabled () = !Obs_core.enabled

let reset () =
  Metrics.reset ();
  Trace.reset ();
  Audit_log.reset ();
  Atomic.set Obs_core.seq 0

(* --- human-readable dump ------------------------------------------------- *)

let dump ppf =
  let counters, gauges, hists =
    List.fold_left
      (fun (cs, gs, hs) (name, kind) ->
        match kind with
        | Metrics.K_counter -> (name :: cs, gs, hs)
        | Metrics.K_gauge -> (cs, name :: gs, hs)
        | Metrics.K_hist -> (cs, gs, name :: hs))
      ([], [], [])
      (List.rev (Metrics.names ()))
  in
  Format.fprintf ppf "@[<v>== metrics ==@,";
  List.iter
    (fun name ->
      Format.fprintf ppf "%-36s %d@," name (Metrics.counter_value name))
    counters;
  List.iter
    (fun name ->
      match Metrics.gauge_value name with
      | Some v -> Format.fprintf ppf "%-36s %g@," name v
      | None -> ())
    gauges;
  List.iter
    (fun name ->
      match Metrics.hist_snapshot name with
      | Some h when h.Metrics.count > 0 ->
          let median =
            match Metrics.approx_quantile name 0.5 with
            | Some q -> q
            | None -> Float.nan
          in
          Format.fprintf ppf
            "%-36s count=%d sum=%g min=%g max=%g p50<=%g@," name
            h.Metrics.count h.Metrics.sum h.Metrics.min_v h.Metrics.max_v
            median
      | Some _ | None -> ())
    hists;
  Format.fprintf ppf "== trace ==@,spans=%d open=%d@," (Trace.span_count ())
    (Trace.open_spans ());
  Format.fprintf ppf "== audit log ==@,entries=%d@]@." (Audit_log.size ())

(* --- Prometheus text exposition ------------------------------------------ *)

let prom_name name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let prom_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let to_prometheus_text () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, kind) ->
      let pname = prom_name name in
      match kind with
      | Metrics.K_counter ->
          Buffer.add_string buf
            (Printf.sprintf "# TYPE %s counter\n%s %d\n" pname pname
               (Metrics.counter_value name))
      | Metrics.K_gauge -> (
          match Metrics.gauge_value name with
          | Some v ->
              Buffer.add_string buf
                (Printf.sprintf "# TYPE %s gauge\n%s %s\n" pname pname
                   (prom_float v))
          | None -> ())
      | Metrics.K_hist -> (
          match Metrics.hist_snapshot name with
          | Some h ->
              Buffer.add_string buf
                (Printf.sprintf "# TYPE %s histogram\n" pname);
              let cum = ref 0 in
              List.iter
                (fun (ub, n) ->
                  cum := !cum + n;
                  Buffer.add_string buf
                    (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" pname
                       (prom_float ub) !cum))
                h.Metrics.buckets;
              cum := !cum + h.Metrics.overflow;
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" pname !cum);
              Buffer.add_string buf
                (Printf.sprintf "%s_sum %s\n%s_count %d\n" pname
                   (prom_float h.Metrics.sum) pname h.Metrics.count);
              (* network-layer histograms additionally expose a
                 percentile summary (a scrape shouldn't have to rebuild
                 quantiles from log buckets); a distinct metric name
                 keeps the types legal *)
              if String.length name >= 4 && String.sub name 0 4 = "net_" then
                Option.iter
                  (fun (s : Metrics.summary) ->
                    let sname = pname ^ "_summary" in
                    Buffer.add_string buf
                      (Printf.sprintf "# TYPE %s summary\n" sname);
                    List.iter
                      (fun (q, v) ->
                        Buffer.add_string buf
                          (Printf.sprintf "%s{quantile=\"%s\"} %s\n" sname q
                             (prom_float v)))
                      [ ("0.5", s.Metrics.s_p50); ("0.95", s.Metrics.s_p95);
                        ("0.99", s.Metrics.s_p99) ];
                    Buffer.add_string buf
                      (Printf.sprintf "%s_sum %s\n%s_count %d\n" sname
                         (prom_float h.Metrics.sum) sname s.Metrics.s_count))
                  (Metrics.summary name)
          | None -> ()))
    (Metrics.names ());
  Buffer.contents buf
