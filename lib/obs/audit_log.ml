(* Append-only record of verification attempts — the transparency view:
   who verified what, when, and how it went.  Unlike metrics (aggregates)
   and traces (control flow), this log is queryable evidence: coverage
   answers "which journals has anyone actually verified", in the spirit
   of GlassDB's deferred-verification transparency. *)

type subject =
  | Journal of int
  | Receipt of int
  | Commitment of int (* ledger size at verification time *)
  | Clue of string
  | Extension of { old_size : int; new_size : int }
  | Fork_epoch of int

type outcome =
  | Verified
  | Degraded of string (* transient failure: attempt made, no verdict *)
  | Repudiated of string (* cryptographic evidence against the ledger *)

type entry = {
  seq : int;
  at_us : int64;
  verifier : string;
  subject : subject;
  outcome : outcome;
}

let entries_rev : entry list ref = ref []
let count = ref 0

let record ~verifier subject outcome =
  if !Obs_core.enabled then
    (* locked: pooled verification tasks may record concurrently *)
    Obs_core.locked (fun () ->
        entries_rev :=
          { seq = Obs_core.next_seq (); at_us = Obs_core.now (); verifier;
            subject; outcome }
          :: !entries_rev;
        incr count)

let entries () = List.rev !entries_rev
let size () = !count

let subject_to_string = function
  | Journal jsn -> Printf.sprintf "journal:%d" jsn
  | Receipt jsn -> Printf.sprintf "receipt:%d" jsn
  | Commitment size -> Printf.sprintf "commitment:%d" size
  | Clue clue -> "clue:" ^ clue
  | Extension { old_size; new_size } ->
      Printf.sprintf "extension:%d->%d" old_size new_size
  | Fork_epoch epoch -> Printf.sprintf "fork:%d" epoch

let outcome_to_string = function
  | Verified -> "ok"
  | Degraded _ -> "degraded"
  | Repudiated _ -> "repudiated"

let outcome_detail = function
  | Verified -> None
  | Degraded reason | Repudiated reason -> Some reason

type coverage = { verified_jsns : int; total_jsns : int; ratio : float }

(* A jsn counts as covered when at least one Verified entry targets its
   journal or its receipt.  Degraded/Repudiated attempts never cover. *)
let coverage_filtered ~keep ~ledger_size =
  let seen = Hashtbl.create (max 16 ledger_size) in
  List.iter
    (fun e ->
      match (e.outcome, e.subject) with
      | Verified, (Journal jsn | Receipt jsn)
        when jsn >= 0 && jsn < ledger_size && keep e ->
          Hashtbl.replace seen jsn ()
      | _ -> ())
    !entries_rev;
  let verified_jsns = Hashtbl.length seen in
  {
    verified_jsns;
    total_jsns = ledger_size;
    ratio =
      (if ledger_size = 0 then 1.
       else float_of_int verified_jsns /. float_of_int ledger_size);
  }

let coverage ~ledger_size = coverage_filtered ~keep:(fun _ -> true) ~ledger_size

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let coverage_where ~verifier_prefix ~ledger_size =
  coverage_filtered ~ledger_size
    ~keep:(fun e -> starts_with ~prefix:verifier_prefix e.verifier)

let to_json_line e =
  let detail =
    match outcome_detail e.outcome with
    | Some d -> Printf.sprintf ",\"detail\":\"%s\"" (Obs_core.escape d)
    | None -> ""
  in
  Printf.sprintf
    "{\"seq\":%d,\"at_us\":%Ld,\"verifier\":\"%s\",\"subject\":\"%s\",\"outcome\":\"%s\"%s}"
    e.seq e.at_us (Obs_core.escape e.verifier)
    (Obs_core.escape (subject_to_string e.subject))
    (outcome_to_string e.outcome) detail

let to_json_lines () = String.concat "\n" (List.map to_json_line (entries ()))

let reset () =
  entries_rev := [];
  count := 0
