(** Observability switchboard: one enable bit for metrics ({!Metrics}),
    tracing ({!Trace}) and the verification audit log ({!Audit_log}).

    The default sink is a no-op: every instrumentation hook in the stack
    reads one [bool ref] and returns, so shipping instrumented hot paths
    costs nothing until someone calls {!enable}.  Recording stamps spans
    and audit entries from the simulated clock supplied via [?time]. *)

val enable : ?time:(unit -> int64) -> unit -> unit
(** Turn recording on.  [time] is the timestamp source for spans and
    audit entries, typically [fun () -> Clock.now clock]; when omitted
    the previous source (default: constant [0L]) is kept. *)

val disable : unit -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Clear all recorded metrics, spans and audit entries. *)

val dump : Format.formatter -> unit
(** Human-readable dump of every metric, plus span and audit counts. *)

val to_prometheus_text : unit -> string
(** Prometheus text exposition: counters, gauges, and histograms as
    cumulative [_bucket{le="..."}] series with [_sum] and [_count]. *)
