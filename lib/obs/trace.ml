(* Span tracing stamped from the simulated clock.

   Spans are integers: [none] (0) when recording is disabled, else a
   1-based index into the record table.  The enter/exit style keeps the
   disabled path allocation-free — [enter] returns an immediate int and
   every other call no-ops on [none] — which is what lets append/verify
   hot paths carry their spans unconditionally. *)

type span = int

let none : span = 0

type record = {
  id : int;
  seq : int;
  name : string;
  parent : int; (* 0 = root *)
  depth : int;
  start_us : int64;
  mutable end_us : int64 option;
  mutable attrs : (string * string) list; (* reverse insertion order *)
}

let records : record array ref = ref [||]
let count = ref 0
let stack : int list ref = ref []

let ensure_capacity () =
  if !count >= Array.length !records then begin
    let cap = max 64 (2 * Array.length !records) in
    let bigger =
      Array.make cap
        { id = 0; seq = 0; name = ""; parent = 0; depth = 0; start_us = 0L;
          end_us = None; attrs = [] }
    in
    Array.blit !records 0 bigger 0 !count;
    records := bigger
  end

let get id = !records.(id - 1)

(* Spans carry an implicit parent stack that only makes sense on one
   domain; [enter] from a pooled worker returns [none], so every other
   call no-ops there — pooled tasks simply don't trace. *)
let enter name : span =
  if (not !Obs_core.enabled) || not (Obs_core.on_main_domain ()) then none
  else begin
    ensure_capacity ();
    let parent = match !stack with [] -> 0 | p :: _ -> p in
    let depth = match parent with 0 -> 0 | p -> (get p).depth + 1 in
    let id = !count + 1 in
    !records.(!count) <-
      { id; seq = Obs_core.next_seq (); name; parent; depth;
        start_us = Obs_core.now (); end_us = None; attrs = [] };
    count := !count + 1;
    stack := id :: !stack;
    id
  end

let attr sp key value =
  if sp <> none then begin
    let r = get sp in
    r.attrs <- (key, value) :: r.attrs
  end

let attr_int sp key value =
  if sp <> none then attr sp key (string_of_int value)

let exit sp =
  if sp <> none then begin
    (get sp).end_us <- Some (Obs_core.now ());
    (* pop through missed exits (an exception unwound past them) *)
    let rec pop = function
      | [] -> []
      | id :: rest -> if id = sp then rest else pop rest
    in
    stack := pop !stack
  end

let with_span name f =
  let sp = enter name in
  match f () with
  | v ->
      exit sp;
      v
  | exception e ->
      exit sp;
      raise e

let span_count () = !count
let open_spans () = List.length !stack

let spans () = List.init !count (fun i -> !records.(i))

let find_spans ~name =
  List.filter (fun r -> String.equal r.name name) (spans ())

let to_json_line r =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"id\":%d,\"seq\":%d,\"name\":\"%s\",\"parent\":%d,\"depth\":%d,\"start_us\":%Ld"
       r.id r.seq (Obs_core.escape r.name) r.parent r.depth r.start_us);
  (match r.end_us with
  | Some e -> Buffer.add_string buf (Printf.sprintf ",\"end_us\":%Ld" e)
  | None -> ());
  (match List.rev r.attrs with
  | [] -> ()
  | attrs ->
      Buffer.add_string buf ",\"attrs\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf "\"%s\":\"%s\"" (Obs_core.escape k)
               (Obs_core.escape v)))
        attrs;
      Buffer.add_char buf '}');
  Buffer.add_char buf '}';
  Buffer.contents buf

let to_json_lines () =
  String.concat "\n" (List.map to_json_line (spans ()))

let reset () =
  records := [||];
  count := 0;
  stack := []
