(* Process-wide metric registry: counters, gauges and log-bucketed
   histograms.  Histograms bucket by powers of two — [observe h v] lands
   in the first bucket whose upper bound 2^i is >= v — which keeps the
   registry allocation-free after the first observation of a name and
   makes bucket boundaries exactly testable. *)

let bucket_count = 64 (* upper bounds 2^0 .. 2^62, plus +Inf overflow *)

type hist = {
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  buckets : int array; (* buckets.(i): observations in (2^(i-1), 2^i] *)
  mutable overflow : int;
}

type metric = Counter of int ref | Gauge of float ref | Hist of hist

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let find_or_add name make =
  match Hashtbl.find_opt registry name with
  | Some m -> m
  | None ->
      let m = make () in
      Hashtbl.replace registry name m;
      m

(* Write paths lock because pooled tasks (shard fan-out, batch verify)
   record from worker domains; the disabled path stays lock-free. *)
let incr ?(by = 1) name =
  if !Obs_core.enabled then
    Obs_core.locked (fun () ->
        match find_or_add name (fun () -> Counter (ref 0)) with
        | Counter c -> c := !c + by
        | Gauge _ | Hist _ -> ())

let set_gauge name v =
  if !Obs_core.enabled then
    Obs_core.locked (fun () ->
        match find_or_add name (fun () -> Gauge (ref 0.)) with
        | Gauge g -> g := v
        | Counter _ | Hist _ -> ())

let new_hist () =
  {
    count = 0;
    sum = 0.;
    min_v = infinity;
    max_v = neg_infinity;
    buckets = Array.make bucket_count 0;
    overflow = 0;
  }

(* Exact by construction: double the bound until it covers v.  Values
   <= 1 (including 0 and negatives) land in bucket 0. *)
let bucket_index v =
  if v <= 1. then 0
  else begin
    let i = ref 0 and ub = ref 1. in
    while !ub < v && !i < bucket_count do
      i := !i + 1;
      ub := !ub *. 2.
    done;
    !i
  end

let bucket_upper_bound i = Float.of_int 1 *. (2. ** float_of_int i)

let observe name v =
  if !Obs_core.enabled then
    Obs_core.locked (fun () ->
        match find_or_add name (fun () -> Hist (new_hist ())) with
        | Hist h ->
            h.count <- h.count + 1;
            h.sum <- h.sum +. v;
            if v < h.min_v then h.min_v <- v;
            if v > h.max_v then h.max_v <- v;
            let i = bucket_index v in
            if i >= bucket_count then h.overflow <- h.overflow + 1
            else h.buckets.(i) <- h.buckets.(i) + 1
        | Counter _ | Gauge _ -> ())

let observe_int name v = observe name (float_of_int v)

(* --- read side (always available, recording or not) ---------------------- *)

let counter_value name =
  match Hashtbl.find_opt registry name with
  | Some (Counter c) -> !c
  | Some (Gauge _ | Hist _) | None -> 0

let gauge_value name =
  match Hashtbl.find_opt registry name with
  | Some (Gauge g) -> Some !g
  | Some (Counter _ | Hist _) | None -> None

type hist_snapshot = {
  count : int;
  sum : float;
  min_v : float;
  max_v : float;
  buckets : (float * int) list; (* (upper bound, occupancy), non-empty only *)
  overflow : int;
}

let hist_snapshot name =
  match Hashtbl.find_opt registry name with
  | Some (Hist h) ->
      let buckets = ref [] in
      for i = bucket_count - 1 downto 0 do
        if h.buckets.(i) > 0 then
          buckets := (bucket_upper_bound i, h.buckets.(i)) :: !buckets
      done;
      Some
        {
          count = h.count;
          sum = h.sum;
          min_v = h.min_v;
          max_v = h.max_v;
          buckets = !buckets;
          overflow = h.overflow;
        }
  | Some (Counter _ | Gauge _) | None -> None

(* Approximate quantile from the cumulative bucket occupancy: the upper
   bound of the bucket where the q-th observation falls. *)
let approx_quantile name q =
  match hist_snapshot name with
  | None -> None
  | Some h when h.count = 0 -> None
  | Some h ->
      let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int h.count))) in
      let rec walk acc = function
        | [] -> Some h.max_v
        | (ub, n) :: rest ->
            if acc + n >= rank then Some ub else walk (acc + n) rest
      in
      walk 0 h.buckets

type summary = {
  s_count : int;
  s_mean : float;
  s_p50 : float;
  s_p95 : float;
  s_p99 : float;
  s_max : float;
}

let summary name =
  match hist_snapshot name with
  | None -> None
  | Some h when h.count = 0 -> None
  | Some h ->
      (* a bucket's upper bound can overshoot the observed maximum;
         clamping keeps p50 <= p95 <= p99 <= max always true *)
      let q p =
        Float.min h.max_v (Option.value (approx_quantile name p) ~default:h.max_v)
      in
      Some
        {
          s_count = h.count;
          s_mean = h.sum /. float_of_int h.count;
          s_p50 = q 0.50;
          s_p95 = q 0.95;
          s_p99 = q 0.99;
          s_max = h.max_v;
        }

type kind = K_counter | K_gauge | K_hist

let names () =
  Hashtbl.fold
    (fun name m acc ->
      let k =
        match m with
        | Counter _ -> K_counter
        | Gauge _ -> K_gauge
        | Hist _ -> K_hist
      in
      (name, k) :: acc)
    registry []
  |> List.sort compare

let reset () = Hashtbl.reset registry
