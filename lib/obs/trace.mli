(** Span tracing stamped from the simulated clock.

    A span is an [int] handle: {!none} while recording is disabled, so
    the disabled path allocates nothing.  Nesting follows a per-process
    stack: the parent of a new span is the innermost span still open, and
    {!exit} pops through any spans an exception unwound past. *)

type span = int

val none : span

val enter : string -> span
(** Open a span named [name], stamped with the current simulated time
    ({!Obs.enable}'s time source).  Returns {!none} when disabled. *)

val attr : span -> string -> string -> unit
val attr_int : span -> string -> int -> unit

val exit : span -> unit
(** Close the span (end timestamp).  No-op on {!none}. *)

val with_span : string -> (unit -> 'a) -> 'a
(** [enter]/[exit] bracket, exception-safe.  For cold paths — the closure
    allocates even when disabled. *)

type record = {
  id : int;
  seq : int;  (** global event sequence, for interleaving reconstruction *)
  name : string;
  parent : int;  (** 0 = root *)
  depth : int;
  start_us : int64;
  mutable end_us : int64 option;
  mutable attrs : (string * string) list;  (** reverse insertion order *)
}

val spans : unit -> record list
(** All recorded spans, in creation order. *)

val find_spans : name:string -> record list
val span_count : unit -> int
val open_spans : unit -> int

val to_json_line : record -> string
val to_json_lines : unit -> string
(** One JSON object per span, newline-separated (JSON-lines export). *)

val reset : unit -> unit
