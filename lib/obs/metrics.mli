(** Process-wide metric registry: counters, gauges, log-bucketed
    histograms.

    Write-side calls ({!incr}, {!set_gauge}, {!observe}) are no-ops while
    recording is disabled ({!Obs.enable}), so instrumentation can stay in
    place on hot paths.  Read-side accessors always work, making tests
    and exporters independent of the sink state at read time.

    Histogram buckets are powers of two: an observation [v] lands in the
    first bucket whose upper bound [2^i >= v] (values [<= 1] in bucket 0,
    upper bound 1).  Boundaries are computed by doubling, so they are
    exact, not subject to float-log rounding. *)

val incr : ?by:int -> string -> unit
(** Bump a counter (creating it on first use). *)

val set_gauge : string -> float -> unit

val observe : string -> float -> unit
(** Record one histogram observation. *)

val observe_int : string -> int -> unit

val counter_value : string -> int
(** 0 when the counter does not exist. *)

val gauge_value : string -> float option

type hist_snapshot = {
  count : int;
  sum : float;
  min_v : float;
  max_v : float;
  buckets : (float * int) list;
      (** (upper bound, occupancy) of each non-empty bucket, ascending *)
  overflow : int;
}

val hist_snapshot : string -> hist_snapshot option

val approx_quantile : string -> float -> float option
(** Upper bound of the bucket holding the q-th observation — a
    log-precision quantile estimate. *)

type summary = {
  s_count : int;
  s_mean : float;
  s_p50 : float;
  s_p95 : float;
  s_p99 : float;
  s_max : float;
}

val summary : string -> summary option
(** Percentile digest of a histogram via {!approx_quantile}; [None] for
    an unknown or empty histogram.  This is what the Prometheus summary
    exposition and the CLI stats table print. *)

val bucket_index : float -> int
(** Exposed for boundary tests: index of the bucket a value lands in. *)

val bucket_upper_bound : int -> float

type kind = K_counter | K_gauge | K_hist

val names : unit -> (string * kind) list
(** Registered metric names with their kinds, sorted. *)

val reset : unit -> unit
