(* Shared observability state.  A single process-wide switch guards every
   instrumentation hook: when [enabled] is false each hook is a bool-ref
   read and an immediate return, so always-on instrumentation costs
   nothing measurable on hot paths (the no-op sink of DESIGN.md §9).

   The time source is a closure so the library depends on nothing: the
   party enabling recording (CLI, test, example) points it at its
   simulated [Clock.t] and every span and audit entry is stamped in
   simulated microseconds. *)

let enabled = ref false
let time_source : (unit -> int64) ref = ref (fun () -> 0L)
let now () = !time_source ()

(* One sequence shared by spans and audit entries, so interleavings are
   reconstructible even when simulated time stands still. *)
let seq = ref 0

let next_seq () =
  incr seq;
  !seq

(* Minimal JSON string escaping for the line exporters. *)
let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf
