(* Shared observability state.  A single process-wide switch guards every
   instrumentation hook: when [enabled] is false each hook is a bool-ref
   read and an immediate return, so always-on instrumentation costs
   nothing measurable on hot paths (the no-op sink of DESIGN.md §9).

   The time source is a closure so the library depends on nothing: the
   party enabling recording (CLI, test, example) points it at its
   simulated [Clock.t] and every span and audit entry is stamped in
   simulated microseconds. *)

let enabled = ref false
let time_source : (unit -> int64) ref = ref (fun () -> 0L)
let now () = !time_source ()

(* Pooled tasks (ledgerdb.par) may record metrics and audit entries from
   worker domains, so the mutable registries are guarded by one shared
   lock.  The disabled fast path never touches it. *)
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  match f () with
  | v ->
      Mutex.unlock lock;
      v
  | exception e ->
      Mutex.unlock lock;
      raise e

(* Spans carry an implicit parent stack, which only makes sense on one
   domain: the one that loaded this module.  Trace drops spans entered
   from any other domain. *)
let main_domain : int = (Domain.self () :> int)
let on_main_domain () = (Domain.self () :> int) = main_domain

(* One sequence shared by spans and audit entries, so interleavings are
   reconstructible even when simulated time stands still. *)
let seq = Atomic.make 0
let next_seq () = Atomic.fetch_and_add seq 1 + 1

(* Minimal JSON string escaping for the line exporters. *)
let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf
