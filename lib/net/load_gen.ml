(* Load harness over real sockets.

   [connections] driver threads each own one Net_transport endpoint and
   the logical clients [j] with [j mod connections = i].  Logical
   clients materialise lazily in a per-driver table, so the population
   can be orders of magnitude larger than the connection pool.  All
   derived state (member keys, LSP key, clue names, payloads) comes
   from the served ledger's announced name plus the run seed — nothing
   is shared with the server process out of band. *)

open Ledger_crypto
open Ledger_storage
open Ledger_core
open Ledger_merkle
open Ledger_cmtree
open Ledger_bench_util

type mix = { append_w : int; verify_w : int; lineage_w : int }

type config = {
  host : string;
  port : int;
  logical_clients : int;
  connections : int;
  total_ops : int;
  rate_per_s : float option;
  payload_size : int;
  clue_count : int;
  zipf_s : float;
  mix : mix;
  read_ratio : float option;
      (* [Some r]: draw a read op (verify/lineage, split by their mix
         weights) with probability r, an append otherwise — overrides
         the mix proportions; [None]: use the mix as-is *)
  pulls : int;
  seed : int;
  crypto : Crypto_profile.t;
  ledger_config : Ledger.config option;
  scratch_dir : string option;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    logical_clients = 10_000;
    connections = 8;
    total_ops = 4_000;
    rate_per_s = None;
    payload_size = 64;
    clue_count = 128;
    zipf_s = 1.1;
    mix = { append_w = 3; verify_w = 2; lineage_w = 1 };
    read_ratio = None;
    pulls = 1;
    seed = 42;
    crypto = Crypto_profile.Real;
    ledger_config = None;
    scratch_dir = None;
  }

type result = {
  logical_clients : int;
  connections : int;
  ops : int;
  appends : int;
  verifies : int;
  lineages : int;
  read_ops : int;
  write_ops : int;
  pulls_ok : int;
  pulls_failed : int;
  transport_failures : int;
  verify_failures : int;
  duration_s : float;
  tps : float;
  mean_us : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  p999_us : float;
  max_us : float;
  read_mean_us : float;
  read_p50_us : float;
  read_p95_us : float;
  read_p99_us : float;
  read_max_us : float;
  write_mean_us : float;
  write_p50_us : float;
  write_p95_us : float;
  write_p99_us : float;
  write_max_us : float;
}

(* growable (jsn, tx_hash) history for uniform verify-op picks *)
type hist = { mutable a : (int * Hash.t) array; mutable n : int }

let hist_create () = { a = Array.make 64 (0, Hash.zero); n = 0 }

let hist_add h v =
  if h.n = Array.length h.a then begin
    let bigger = Array.make (2 * h.n) (0, Hash.zero) in
    Array.blit h.a 0 bigger 0 h.n;
    h.a <- bigger
  end;
  h.a.(h.n) <- v;
  h.n <- h.n + 1

(* one logical client: signing state + its private clue's history *)
type cstate = {
  svc : Service.Client.t;
  own_clue : string;
  mutable own_rev : Hash.t list; (* newest first *)
  mutable own_n : int;
}

(* one growable latency sample series; reads and writes are kept apart
   so the split percentiles are exact, not reconstructed *)
type series = { mutable sa : float array; mutable sn : int }

let series_create () = { sa = Array.make 1024 0.; sn = 0 }

let series_add s v =
  if s.sn = Array.length s.sa then begin
    let bigger = Array.make (2 * s.sn) 0. in
    Array.blit s.sa 0 bigger 0 s.sn;
    s.sa <- bigger
  end;
  s.sa.(s.sn) <- v;
  s.sn <- s.sn + 1

type driver = {
  idx : int;
  ops : int ref;
  appends : int ref;
  verifies : int ref;
  lineages : int ref;
  transport_failures : int ref;
  verify_failures : int ref;
  rlat : series; (* verify + lineage ops *)
  wlat : series; (* append ops *)
}

let mkdir_p dir =
  let rec go d =
    if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

(* wall-clock backoff between retries: the drivers' simulated clocks
   advance instantly, so without this a dead server is hammered *)
let retry_sleep ~attempt ~reason:_ = Thread.delay (0.02 *. float_of_int attempt)

let rpc ~clock ~transport ~decode req =
  Transport.request_expect ~policy:Transport.default_policy
    ~on_retry:retry_sleep ~clock ~decode transport req

let must ~what = function
  | Ok v -> v
  | Error f ->
      failwith
        (Printf.sprintf "load_gen: %s: %s" what (Transport.failure_to_string f))

let d_checkpoint = function
  | Service.Checkpoint_r { name; _ } -> Some name
  | _ -> None

let d_members = function Service.Members_r ms -> Some ms | _ -> None
let d_receipt = function Service.Receipt_r r -> Some r | _ -> None

let d_proof_bundle = function
  | Service.Proof_bundle_r { proof; commitment; size = _ } ->
      Some (proof, commitment)
  | _ -> None

let d_clue_bundle = function
  | Service.Clue_bundle_r { proof; clue_root } -> Some (proof, clue_root)
  | _ -> None

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    sorted.(min (n - 1)
              (max 0 (int_of_float (Float.ceil (q *. float_of_int n)) - 1)))

let run (cfg : config) : result =
  if cfg.connections < 1 then invalid_arg "Load_gen.run: connections < 1";
  if cfg.logical_clients < 1 then invalid_arg "Load_gen.run: no clients";
  (match cfg.read_ratio with
  | Some r when r < 0. || r > 1. ->
      invalid_arg "Load_gen.run: read_ratio must be in [0,1]"
  | Some _ | None -> ());
  (* -- discover the served ledger: name, members, LSP key ------------- *)
  let ctl = Net_transport.connect ~host:cfg.host ~port:cfg.port () in
  let ctl_tr = Net_transport.transport ctl in
  let ctl_clock = Clock.create () in
  let lname =
    must ~what:"checkpoint"
      (rpc ~clock:ctl_clock ~transport:ctl_tr ~decode:d_checkpoint
         (Service.Client.make_get_checkpoint ()))
  in
  let members_wire =
    must ~what:"members"
      (rpc ~clock:ctl_clock ~transport:ctl_tr ~decode:d_members
         (Service.Client.make_get_members ()))
  in
  Net_transport.close ctl;
  let lsp_pub = snd (Ecdsa.generate ~seed:("lsp:" ^ lname)) in
  let ledger_uri = "ledger://" ^ lname in
  (* usable credentials: members whose key is derivable from the ledger
     name — i.e. the population the server pre-registered for serving *)
  let creds =
    List.filter_map
      (fun (mname, _role, pub_bytes) ->
        let priv, pub = Ecdsa.generate ~seed:(lname ^ ":" ^ mname) in
        if Bytes.equal (Ecdsa.public_key_to_bytes pub) pub_bytes then
          Some
            ( { Roles.name = mname; role = Roles.Regular_user; pub;
                id = Ecdsa.public_key_id pub },
              priv )
        else None)
      members_wire
    |> Array.of_list
  in
  if Array.length creds = 0 then
    failwith "load_gen: server announced no derivable-key members";
  let zipf = Workload.zipf ~n:(max 1 cfg.clue_count) ~s:cfg.zipf_s in
  let budget = Atomic.make cfg.total_ops in
  let claim () = Atomic.fetch_and_add budget (-1) > 0 in
  let started = Unix.gettimeofday () in

  (* -- replica pulls, concurrent with the op traffic ------------------ *)
  let pulls_ok = ref 0 and pulls_failed = ref 0 in
  let pull_thread =
    if cfg.pulls <= 0 then None
    else
      Some
        (Thread.create
           (fun () ->
             let base =
               Option.value cfg.scratch_dir
                 ~default:(Filename.get_temp_dir_name ())
             in
             let lcfg =
               match cfg.ledger_config with
               | Some c -> c
               | None ->
                   { Ledger.default_config with name = lname;
                     crypto = cfg.crypto }
             in
             for k = 1 to cfg.pulls do
               let dir =
                 Filename.concat base
                   (Printf.sprintf "loadgen-pull-%d-%d" (Unix.getpid ()) k)
               in
               mkdir_p dir;
               (* a pull is thousands of serialized requests competing
                  with the op traffic for the dispatch lock, so give it
                  a patient per-response deadline *)
               let ep =
                 Net_transport.connect ~response_timeout_s:30. ~host:cfg.host
                   ~port:cfg.port ()
               in
               let clock = Clock.create () in
               (match
                  Replica.pull_verbose ~transport:(Net_transport.transport ep)
                    ~policy:Transport.default_policy ~config:lcfg ~clock
                    ~scratch_dir:dir ()
                with
               | Ok (_replica, _stats) -> incr pulls_ok
               | Error e ->
                   incr pulls_failed;
                   Printf.eprintf "load_gen: pull %d failed: %s\n%!" k
                     (Replica.error_to_string e)
               | exception exn ->
                   incr pulls_failed;
                   Printf.eprintf "load_gen: pull %d raised: %s\n%!" k
                     (Printexc.to_string exn));
               Net_transport.close ep
             done)
           ())
  in

  (* -- driver threads ------------------------------------------------- *)
  let w_total = cfg.mix.append_w + cfg.mix.verify_w + cfg.mix.lineage_w in
  if w_total <= 0 then invalid_arg "Load_gen.run: empty mix";
  let drivers =
    Array.init cfg.connections (fun idx ->
        {
          idx;
          ops = ref 0;
          appends = ref 0;
          verifies = ref 0;
          lineages = ref 0;
          transport_failures = ref 0;
          verify_failures = ref 0;
          rlat = series_create ();
          wlat = series_create ();
        })
  in
  let drive d () =
    let ep = Net_transport.connect ~host:cfg.host ~port:cfg.port () in
    let transport = Net_transport.transport ep in
    let clock = Clock.create () in
    let rng = Det_rng.create ~seed:((cfg.seed * 1_000_003) + d.idx) in
    let clients : (int, cstate) Hashtbl.t = Hashtbl.create 256 in
    let hist = hist_create () in
    (* logical clients of this driver: idx, idx + C, idx + 2C, ... *)
    let slice =
      let base = cfg.logical_clients / cfg.connections in
      base + (if d.idx < cfg.logical_clients mod cfg.connections then 1 else 0)
    in
    let pick_client () =
      let j = d.idx + (cfg.connections * Det_rng.int rng (max 1 slice)) in
      match Hashtbl.find_opt clients j with
      | Some c -> c
      | None ->
          let member, priv = creds.(j mod Array.length creds) in
          let c =
            {
              svc =
                Service.Client.create ~crypto:cfg.crypto ~ledger_uri ~member
                  ~priv ();
              own_clue = Printf.sprintf "own-%d" j;
              own_rev = [];
              own_n = 0;
            }
          in
          Hashtbl.replace clients j c;
          c
    in
    let fail_transport () = incr d.transport_failures in
    let fail_verify () = incr d.verify_failures in
    let do_append ?clue c =
      let clue =
        match clue with
        | Some cl -> cl
        | None -> Printf.sprintf "clue-%d" (Workload.zipf_draw zipf rng)
      in
      let payload = Det_rng.bytes rng cfg.payload_size in
      let req =
        Service.Client.make_append c.svc ~clues:[ clue ]
          ~client_ts:(Clock.now clock) payload
      in
      match rpc ~clock ~transport ~decode:d_receipt req with
      | Error _ -> fail_transport ()
      | Ok r ->
          incr d.appends;
          let digest =
            Receipt.signing_digest ~jsn:r.Receipt.jsn
              ~request_hash:r.Receipt.request_hash ~tx_hash:r.Receipt.tx_hash
              ~block_hash:r.Receipt.block_hash ~timestamp:r.Receipt.timestamp
          in
          if not (Crypto_profile.check cfg.crypto ~pub:lsp_pub digest
                    r.Receipt.lsp_sig)
          then fail_verify ()
          else begin
            hist_add hist (r.Receipt.jsn, r.Receipt.tx_hash);
            if clue = c.own_clue then begin
              c.own_rev <- r.Receipt.tx_hash :: c.own_rev;
              c.own_n <- c.own_n + 1
            end
          end
    in
    let do_verify c =
      if hist.n = 0 then do_append c
      else begin
        let jsn, leaf = hist.a.(Det_rng.int rng hist.n) in
        match
          rpc ~clock ~transport ~decode:d_proof_bundle
            (Service.Client.make_get_proof_bundle ~jsn)
        with
        | Error _ -> fail_transport ()
        | Ok (proof, commitment) ->
            incr d.verifies;
            if not (Fam.verify ~commitment ~leaf proof) then fail_verify ()
      end
    in
    let do_lineage c =
      if c.own_n = 0 then do_append ~clue:c.own_clue c;
      if c.own_n > 0 then begin
        match
          rpc ~clock ~transport ~decode:d_clue_bundle
            (Service.Client.make_get_clue_bundle ~clue:c.own_clue ())
        with
        | Error _ -> fail_transport ()
        | Ok (Some proof, clue_root) ->
            incr d.lineages;
            let known =
              List.rev c.own_rev |> List.mapi (fun v h -> (v, h))
            in
            if not (Cm_tree.verify_clue ~root:clue_root ~known proof) then
              fail_verify ()
        | Ok (None, _) ->
            (* we hold receipts for entries of this clue; a service that
               cannot produce the lineage is lying *)
            incr d.lineages;
            fail_verify ()
      end
    in
    (* open loop: this driver's k-th op is released at start + k·gap *)
    let gap =
      match cfg.rate_per_s with
      | None -> 0.
      | Some r when r <= 0. -> 0.
      | Some r -> float_of_int cfg.connections /. r
    in
    let k = ref 0 in
    while claim () do
      (match cfg.rate_per_s with
      | None -> ()
      | Some _ ->
          let due = started +. (float_of_int !k *. gap) in
          let now = Unix.gettimeofday () in
          if due > now then Thread.delay (due -. now));
      incr k;
      let c = pick_client () in
      (* pick the intended op class up front: its latency sample goes to
         the read or write series even when the op internally falls back
         to an append (empty history) *)
      let op =
        match cfg.read_ratio with
        | None ->
            let w = Det_rng.int rng w_total in
            if w < cfg.mix.append_w then `Append
            else if w < cfg.mix.append_w + cfg.mix.verify_w then `Verify
            else `Lineage
        | Some r ->
            if Det_rng.int rng 1_000_000 < int_of_float (r *. 1e6) then begin
              let rw = cfg.mix.verify_w + cfg.mix.lineage_w in
              if rw <= 0 || Det_rng.int rng rw < cfg.mix.verify_w then `Verify
              else `Lineage
            end
            else `Append
      in
      let t0 = Unix.gettimeofday () in
      (try
         match op with
         | `Append -> do_append c
         | `Verify -> do_verify c
         | `Lineage -> do_lineage c
       with Transport.Timeout _ | Failure _ -> fail_transport ());
      let dt_us = (Unix.gettimeofday () -. t0) *. 1e6 in
      (match op with
      | `Append -> series_add d.wlat dt_us
      | `Verify | `Lineage -> series_add d.rlat dt_us);
      incr d.ops
    done;
    Net_transport.close ep
  in
  let threads =
    Array.map (fun d -> Thread.create (drive d) ()) drivers
  in
  Array.iter Thread.join threads;
  Option.iter Thread.join pull_thread;
  let duration_s = Unix.gettimeofday () -. started in

  (* -- aggregate ------------------------------------------------------ *)
  let sum f = Array.fold_left (fun acc d -> acc + !(f d)) 0 drivers in
  let ops = sum (fun d -> d.ops) in
  let collect f =
    let total = Array.fold_left (fun acc d -> acc + (f d).sn) 0 drivers in
    let a = Array.make (max 1 total) 0. in
    let off = ref 0 in
    Array.iter
      (fun d ->
        let s = f d in
        Array.blit s.sa 0 a !off s.sn;
        off := !off + s.sn)
      drivers;
    let a = if total = 0 then [||] else Array.sub a 0 total in
    Array.sort compare a;
    a
  in
  let rlat = collect (fun d -> d.rlat) in
  let wlat = collect (fun d -> d.wlat) in
  let lat = Array.append rlat wlat in
  Array.sort compare lat;
  let mean_of a =
    if Array.length a = 0 then 0.
    else Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a)
  in
  let max_of a = if Array.length a = 0 then 0. else a.(Array.length a - 1) in
  {
    logical_clients = cfg.logical_clients;
    connections = cfg.connections;
    ops;
    appends = sum (fun d -> d.appends);
    verifies = sum (fun d -> d.verifies);
    lineages = sum (fun d -> d.lineages);
    read_ops = Array.length rlat;
    write_ops = Array.length wlat;
    pulls_ok = !pulls_ok;
    pulls_failed = !pulls_failed;
    transport_failures = sum (fun d -> d.transport_failures);
    verify_failures = sum (fun d -> d.verify_failures);
    duration_s;
    tps = (if duration_s > 0. then float_of_int ops /. duration_s else 0.);
    mean_us = mean_of lat;
    p50_us = percentile lat 0.50;
    p95_us = percentile lat 0.95;
    p99_us = percentile lat 0.99;
    p999_us = percentile lat 0.999;
    max_us = max_of lat;
    read_mean_us = mean_of rlat;
    read_p50_us = percentile rlat 0.50;
    read_p95_us = percentile rlat 0.95;
    read_p99_us = percentile rlat 0.99;
    read_max_us = max_of rlat;
    write_mean_us = mean_of wlat;
    write_p50_us = percentile wlat 0.50;
    write_p95_us = percentile wlat 0.95;
    write_p99_us = percentile wlat 0.99;
    write_max_us = max_of wlat;
  }

let pp_result ppf (r : result) =
  Format.fprintf ppf
    "@[<v>logical clients  %d over %d connections@,\
     ops              %d (%d append / %d verify / %d lineage)@,\
     read/write       %d read ops, %d write ops@,\
     replica pulls    %d ok, %d failed@,\
     failures         %d transport, %d verification@,\
     duration         %.2f s  (%.0f ops/s sustained)@,\
     latency µs       p50 %.0f  p95 %.0f  p99 %.0f  p99.9 %.0f  max %.0f@,\
     read µs          p50 %.0f  p95 %.0f  p99 %.0f  max %.0f@,\
     write µs         p50 %.0f  p95 %.0f  p99 %.0f  max %.0f@]"
    r.logical_clients r.connections r.ops r.appends r.verifies r.lineages
    r.read_ops r.write_ops r.pulls_ok r.pulls_failed r.transport_failures
    r.verify_failures r.duration_s r.tps r.p50_us r.p95_us r.p99_us
    r.p999_us r.max_us r.read_p50_us r.read_p95_us r.read_p99_us
    r.read_max_us r.write_p50_us r.write_p95_us r.write_p99_us
    r.write_max_us
