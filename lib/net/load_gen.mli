(** Load harness: 10⁴–10⁶ logical verifying clients over a bounded
    connection pool.

    Each of [connections] driver threads owns one {!Net_transport}
    endpoint and a disjoint slice of the logical client population;
    logical clients materialise lazily (a {!Ledger_core.Service.Client}
    signing state plus a private-clue history), so a million of them
    cost memory only as they are touched.  Credentials are {e derived},
    not transferred: the serving ledger seeds member keys from
    [name ^ ":" ^ member], so the harness reads the membership list off
    the wire and reconstructs each usable keypair locally — exactly what
    a real population of pre-registered clients would hold.

    Every response is {e verified}, not just timed:
    - appends check the LSP receipt signature (π_s) against the derived
      LSP public key;
    - verify ops fetch an atomic proof bundle and replay the fam proof
      against the bundled commitment;
    - lineage ops replay a whole-clue CM-Tree proof for a clue the
      logical client wholly owns, binding every version to the digests
      in its own receipts (a shared clue cannot be client-verified
      without knowing {e all} of its entries — §IV-C);
    - replica pulls run {!Ledger_core.Replica.pull_verbose} end to end,
      re-deriving every tree from the downloaded snapshot.

    Any cryptographic mismatch lands in [verify_failures]; a healthy
    run must report zero. *)

open Ledger_core

type mix = { append_w : int; verify_w : int; lineage_w : int }
(** Relative weights of the three request-level op kinds; replica pulls
    are scheduled separately ([pulls]) because one pull is a whole
    ledger download, not a request. *)

type config = {
  host : string;
  port : int;
  logical_clients : int;
  connections : int;  (** driver threads = socket connections *)
  total_ops : int;  (** closed-loop op budget across all drivers *)
  rate_per_s : float option;
      (** [Some r]: open loop — ops are released on a fixed schedule of
          [r] per second regardless of completions; [None]: closed loop *)
  payload_size : int;
  clue_count : int;  (** shared-clue population for the Zipfian skew *)
  zipf_s : float;  (** skew exponent; 0 = uniform *)
  mix : mix;
  read_ratio : float option;
      (** [Some r] (in [\[0,1\]]): each op is a read (verify/lineage,
          split by their [mix] weights) with probability [r], an append
          otherwise — e.g. [Some 0.95] is a 95/5 read-heavy workload;
          [None] (default): use the [mix] proportions unchanged *)
  pulls : int;  (** full replica pulls run concurrently with the ops *)
  seed : int;
  crypto : Crypto_profile.t;
      (** must match the serving ledger's profile — π_c/π_s cross the
          wire and are checked on both sides *)
  ledger_config : Ledger.config option;
      (** served ledger's config, needed by replica pulls; [None]
          derives [default_config] with the announced name + [crypto] *)
  scratch_dir : string option;  (** replica staging area; [None] = tmp *)
}

val default_config : config
(** Loopback, 10⁴ logical clients over 8 connections, 4 000 closed-loop
    ops with a 3:2:1 append/verify/lineage mix, one replica pull,
    [Crypto_profile.Real]. *)

type result = {
  logical_clients : int;
  connections : int;
  ops : int;  (** request-level ops completed *)
  appends : int;
  verifies : int;
  lineages : int;
  read_ops : int;  (** ops drawn as verify/lineage (read-path bound) *)
  write_ops : int;  (** ops drawn as appends (serialized on the server) *)
  pulls_ok : int;
  pulls_failed : int;
  transport_failures : int;
      (** ops abandoned after the retry budget, plus service refusals *)
  verify_failures : int;  (** cryptographic mismatches — must be 0 *)
  duration_s : float;
  tps : float;  (** ops / duration *)
  mean_us : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  p999_us : float;
  max_us : float;
      (** latency percentiles are exact (sorted sample), not bucketed *)
  read_mean_us : float;
  read_p50_us : float;
  read_p95_us : float;
  read_p99_us : float;
  read_max_us : float;
  write_mean_us : float;
  write_p50_us : float;
  write_p95_us : float;
  write_p99_us : float;
  write_max_us : float;
      (** the same exact percentiles, split by intended op class — the
          lock-free read path and the serialized write path have very
          different latency profiles under contention *)
}

val run : config -> result
(** Drive the workload to completion and aggregate.  Raises [Failure]
    when the server cannot be reached at all or announces no usable
    (derivable-key) members. *)

val pp_result : Format.formatter -> result -> unit
