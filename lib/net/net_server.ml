(* Multi-domain TCP server: one shared non-blocking listener, [workers]
   domains each select-looping over the connections it accepted.

   Worker domains are deliberately plain [Domain.spawn] loops rather
   than Domain_pool tasks: a pool schedules finite chunks, and parking a
   persistent accept loop inside one would let a single long-lived task
   starve the pool's other users.  Parallelism buys concurrent framing
   and socket I/O on every request; with a [read] handler installed it
   also buys parallel read {e dispatch} — reads are answered from the
   ledger's published snapshot on whichever domain owns the connection,
   no lock taken.  Only mutations (and all requests when no [read]
   handler is given) are serialized by [dispatch_mu]. *)

open Ledger_core
open Ledger_obs

type config = {
  host : string;
  port : int;
  workers : int;
  max_conns : int;
  max_frame : int;
  backlog : int;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    workers = 4;
    max_conns = 1024;
    max_frame = Net_framing.default_max_frame;
    backlog = 128;
  }

type conn = {
  fd : Unix.file_descr;
  dec : Net_framing.decoder;
  mutable alive : bool;
}

type t = {
  config : config;
  backend : bytes -> bytes;
  read : (bytes -> bytes option) option;
  listener : Unix.file_descr;
  bound_port : int;
  stopping : bool Atomic.t;
  stopped : bool Atomic.t;
  dispatch_mu : Mutex.t;
  stop_mu : Mutex.t;
  mutable domains : unit Domain.t list;
  (* lifetime counters, valid whether or not the obs sink records *)
  n_accepted : int Atomic.t;
  n_refused : int Atomic.t;
  n_active : int Atomic.t;
  n_served : int Atomic.t;
  n_read_served : int Atomic.t;
  n_framing_errors : int Atomic.t;
}

type stats = {
  accepted : int;
  refused : int;
  active : int;
  served : int;
  read_served : int;
  framing_errors : int;
}

let stats t =
  {
    accepted = Atomic.get t.n_accepted;
    refused = Atomic.get t.n_refused;
    active = Atomic.get t.n_active;
    served = Atomic.get t.n_served;
    read_served = Atomic.get t.n_read_served;
    framing_errors = Atomic.get t.n_framing_errors;
  }

let port t = t.bound_port
let running t = not (Atomic.get t.stopped)

let protect mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

(* Write everything, waiting out EAGAIN on the non-blocking fd; a peer
   that vanished surfaces as EPIPE/ECONNRESET and bubbles to the
   caller, which reaps the connection. *)
let write_all fd b =
  let len = Bytes.length b in
  let sent = ref 0 in
  while !sent < len do
    match Unix.write fd b !sent (len - !sent) with
    | n -> sent := !sent + n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ignore (Unix.select [] [ fd ] [] 1.0)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let send_frame fd payload = write_all fd (Net_framing.encode payload)

let refusal msg = Service.encode_response (Service.Error_r msg)

let close_conn t c =
  if c.alive then begin
    c.alive <- false;
    Atomic.decr t.n_active;
    Metrics.set_gauge "net_conns_active" (float_of_int (Atomic.get t.n_active));
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

(* Fast path first: a read handler answering [Some _] never touches
   [dispatch_mu] — it ran entirely against the published snapshot on
   this worker's domain.  [None] (a mutation, or no read handler
   installed) falls back to the serialized backend. *)
let dispatch t wid c req =
  let t0 = Unix.gettimeofday () in
  let resp =
    match Option.bind t.read (fun read -> read req) with
    | Some resp ->
        Atomic.incr t.n_read_served;
        Metrics.incr "net_read_dispatch_total";
        Metrics.incr (Printf.sprintf "net_read_dispatch_domain_%d" wid);
        resp
    | None ->
        Metrics.incr "net_locked_dispatch_total";
        protect t.dispatch_mu (fun () -> t.backend req)
  in
  let dt_us = (Unix.gettimeofday () -. t0) *. 1e6 in
  Atomic.incr t.n_served;
  Metrics.incr "net_requests_total";
  Metrics.observe "net_request_us" dt_us;
  Metrics.observe_int "net_request_bytes" (Bytes.length req);
  Metrics.observe_int "net_response_bytes" (Bytes.length resp);
  send_frame c.fd resp

(* Decode and answer every complete frame currently buffered.  A framing
   error gets one framed refusal, then the connection dies: the decoder
   cannot resynchronise an untrusted stream. *)
let drain_frames t wid c =
  let continue = ref true in
  while !continue && c.alive do
    match Net_framing.next c.dec with
    | Net_framing.Frame req -> (
        try dispatch t wid c req
        with Unix.Unix_error _ | Sys_error _ -> close_conn t c)
    | Net_framing.Awaiting _ -> continue := false
    | Net_framing.Fail e ->
        Atomic.incr t.n_framing_errors;
        Metrics.incr "net_framing_errors_total";
        (try
           send_frame c.fd
             (refusal ("framing: " ^ Net_framing.error_to_string e))
         with Unix.Unix_error _ | Sys_error _ -> ());
        close_conn t c
  done

let scratch_len = 16 * 1024

(* One readable event: pull bytes until the kernel buffer is dry (the
   fd is non-blocking), then serve what framed up. *)
let handle_readable t wid c scratch =
  let eof = ref false and again = ref false in
  while c.alive && (not !eof) && not !again do
    match Unix.read c.fd scratch 0 scratch_len with
    | 0 -> eof := true
    | n -> Net_framing.feed c.dec scratch ~pos:0 ~len:n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        again := true
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> eof := true
  done;
  drain_frames t wid c;
  if !eof then close_conn t c

let accept_ready t conns =
  let continue = ref true in
  while !continue do
    match Unix.accept ~cloexec:true t.listener with
    | fd, _ ->
        Unix.set_nonblock fd;
        (try Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error _ -> ());
        if Atomic.get t.n_active >= t.config.max_conns then begin
          Atomic.incr t.n_refused;
          Metrics.incr "net_conns_refused_total";
          (try
             send_frame fd (refusal "server at capacity");
             Unix.close fd
           with Unix.Unix_error _ | Sys_error _ -> (
             try Unix.close fd with Unix.Unix_error _ -> ()))
        end
        else begin
          Atomic.incr t.n_accepted;
          Atomic.incr t.n_active;
          Metrics.incr "net_conns_accepted_total";
          Metrics.set_gauge "net_conns_active"
            (float_of_int (Atomic.get t.n_active));
          conns :=
            { fd; dec = Net_framing.create_decoder ~max_frame:t.config.max_frame (); alive = true }
            :: !conns
        end
    | exception
        Unix.Unix_error
          ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNABORTED), _, _) ->
        continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ ->
        (* listener closed under us during shutdown *)
        continue := false
  done

(* Graceful drain: requests whose bytes already reached us (socket
   buffers included) are served before the connection closes — reads
   still on the lock-free path, so a frame that lands mid-drain is
   answered even while other workers contend on the mutation lock. *)
let drain_and_exit t wid conns scratch =
  List.iter
    (fun c ->
      if c.alive then begin
        handle_readable t wid c scratch;
        close_conn t c
      end)
    !conns;
  conns := []

let worker t wid () =
  let conns = ref [] in
  let scratch = Bytes.create scratch_len in
  let live = ref true in
  while !live do
    if Atomic.get t.stopping then begin
      drain_and_exit t wid conns scratch;
      live := false
    end
    else begin
      let fds =
        List.filter_map (fun c -> if c.alive then Some c.fd else None) !conns
      in
      match Unix.select (t.listener :: fds) [] [] 0.05 with
      | exception Unix.Unix_error ((Unix.EINTR | Unix.EBADF), _, _) -> ()
      | readable, _, _ ->
          if List.memq t.listener readable && not (Atomic.get t.stopping)
          then accept_ready t conns;
          List.iter
            (fun c ->
              if c.alive && List.memq c.fd readable then
                handle_readable t wid c scratch)
            !conns;
          conns := List.filter (fun c -> c.alive) !conns
    end
  done

let create ?(config = default_config) ?read backend =
  if config.workers < 1 then invalid_arg "Net_server.create: workers < 1";
  (* a peer closing mid-write must surface as EPIPE, not kill the
     process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listener = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listener Unix.SO_REUSEADDR true;
     let addr =
       Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port)
     in
     Unix.bind listener addr;
     Unix.listen listener config.backlog;
     Unix.set_nonblock listener
   with e ->
     (try Unix.close listener with Unix.Unix_error _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> config.port
  in
  let t =
    {
      config;
      backend;
      read;
      listener;
      bound_port;
      stopping = Atomic.make false;
      stopped = Atomic.make false;
      dispatch_mu = Mutex.create ();
      stop_mu = Mutex.create ();
      domains = [];
      n_accepted = Atomic.make 0;
      n_refused = Atomic.make 0;
      n_active = Atomic.make 0;
      n_served = Atomic.make 0;
      n_read_served = Atomic.make 0;
      n_framing_errors = Atomic.make 0;
    }
  in
  t.domains <- List.init config.workers (fun wid -> Domain.spawn (worker t wid));
  t

let stop t =
  protect t.stop_mu (fun () ->
      if not (Atomic.get t.stopped) then begin
        Atomic.set t.stopping true;
        List.iter Domain.join t.domains;
        t.domains <- [];
        (try Unix.close t.listener with Unix.Unix_error _ -> ());
        Atomic.set t.stopped true
      end)

let install_signal_handlers t =
  let h = Sys.Signal_handle (fun _ -> stop t) in
  (try Sys.set_signal Sys.sigint h with Invalid_argument _ -> ());
  try Sys.set_signal Sys.sigterm h with Invalid_argument _ -> ()
