(* Transport.t over a TCP socket: lazily dialled, torn down and
   re-dialled on any fault.  Every fault is normalised to
   Transport.Timeout so the existing retry/backoff machinery treats the
   socket exactly like the simulated lossy channels. *)

open Ledger_core

type conn = { fd : Unix.file_descr; dec : Net_framing.decoder }

type t = {
  host : string;
  port : int;
  response_timeout_s : float;
  max_frame : int;
  mu : Mutex.t;
  mutable conn : conn option;
  mutable reconnects : int;
}

let connect ?(response_timeout_s = 5.0) ?(max_frame = Net_framing.default_max_frame)
    ~host ~port () =
  {
    host;
    port;
    response_timeout_s;
    max_frame;
    mu = Mutex.create ();
    conn = None;
    reconnects = 0;
  }

let reconnects t = t.reconnects

let protect mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let teardown t =
  match t.conn with
  | None -> ()
  | Some { fd; _ } ->
      t.conn <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ())

let close t = protect t.mu (fun () -> teardown t)

(* Any socket fault: the connection is dead, the stream alignment with
   it — drop it and signal the retry layer. *)
let fault t msg =
  teardown t;
  raise (Transport.Timeout msg)

let dial t =
  match t.conn with
  | Some c -> c
  | None -> (
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      try
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.response_timeout_s;
        Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.response_timeout_s;
        (try Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error _ -> ());
        Unix.connect fd
          (Unix.ADDR_INET (Unix.inet_addr_of_string t.host, t.port));
        let c = { fd; dec = Net_framing.create_decoder ~max_frame:t.max_frame () } in
        t.conn <- Some c;
        t.reconnects <- t.reconnects + 1;
        c
      with Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise
          (Transport.Timeout
             (Printf.sprintf "connect %s:%d: %s" t.host t.port
                (Unix.error_message e))))

let write_all t fd b =
  let len = Bytes.length b in
  let sent = ref 0 in
  while !sent < len do
    match Unix.write fd b !sent (len - !sent) with
    | 0 -> fault t "send: connection stalled"
    | n -> sent := !sent + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        fault t "send: timed out"
    | exception Unix.Unix_error (e, _, _) ->
        fault t ("send: " ^ Unix.error_message e)
  done

let scratch_len = 16 * 1024

let read_frame t c scratch =
  let deadline = Unix.gettimeofday () +. t.response_timeout_s in
  let result = ref None in
  while !result = None do
    (match Net_framing.next c.dec with
    | Net_framing.Frame payload -> result := Some payload
    | Net_framing.Fail e ->
        fault t ("response framing: " ^ Net_framing.error_to_string e)
    | Net_framing.Awaiting _ -> (
        if Unix.gettimeofday () > deadline then
          fault t "response: timed out";
        match Unix.read c.fd scratch 0 scratch_len with
        | 0 -> fault t "response: connection closed"
        | n -> Net_framing.feed c.dec scratch ~pos:0 ~len:n
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            fault t "response: timed out"
        | exception Unix.Unix_error (e, _, _) ->
            fault t ("recv: " ^ Unix.error_message e)))
  done;
  match !result with Some p -> p | None -> assert false

let transport t : Transport.t =
 fun request ->
  protect t.mu (fun () ->
      let c = dial t in
      let scratch = Bytes.create scratch_len in
      write_all t c.fd (Net_framing.encode request);
      read_frame t c scratch)
