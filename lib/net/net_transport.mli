(** {!Ledger_core.Transport.t} over a real TCP connection.

    The whole client stack — {!Ledger_core.Ledger_client},
    {!Ledger_core.Replica.pull_verbose},
    {!Ledger_shard.Sharded_replica.pull_all} — was written against the
    abstract [bytes -> bytes] channel; this module makes that channel a
    kernel socket without any call-site changing.

    Fault mapping follows the {!Ledger_core.Transport} contract: every
    socket-level failure — connection refused, reset, EOF mid-response,
    a response slower than [response_timeout_s], a response frame that
    fails CRC — closes the connection and raises
    {!Ledger_core.Transport.Timeout}, the transient-fault signal the
    retry policy knows how to back off on.  The next request
    transparently reconnects, so a server restart between requests is
    invisible to a retrying caller.  Definitive service refusals arrive
    as well-formed [Error_r] frames and pass through untouched. *)

type t

val connect :
  ?response_timeout_s:float ->
  ?max_frame:int ->
  host:string ->
  port:int ->
  unit ->
  t
(** A lazily-connecting endpoint: the socket is dialled on first use
    and re-dialled after any fault.  [response_timeout_s] (default 5 s
    of {e wall} clock, enforced with [SO_RCVTIMEO]) bounds how long one
    request waits for its response frame. *)

val transport : t -> Ledger_core.Transport.t
(** The channel to hand to [Transport.request],
    {!Ledger_core.Ledger_client} or a replica pull.  Serialized by an
    internal lock, so one endpoint may be shared across threads. *)

val close : t -> unit
(** Drop the current connection (if any).  The endpoint stays usable —
    the next request reconnects. *)

val reconnects : t -> int
(** Times the endpoint dialled the server, first connection included —
    an observability hook for fault tests. *)
