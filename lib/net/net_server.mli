(** Multi-domain TCP server for the ledger wire protocol.

    The first layer of the system that faces real kernel sockets: a
    listening socket shared by [workers] accept/serve domains, each
    running its own [select] loop over the connections it accepted.
    Frames are decoded with {!Net_framing}, dispatched into a backend
    ([bytes -> bytes] — {!Ledger_core.Service.handle} applied to a
    ledger, or {!Ledger_shard.Sharded_service.handle}), and the framed
    response is written back on the same connection.

    Threat model: the service is {e untrusted} by its clients (they
    verify every proof), but the network is untrusted by the {e server}
    too — a peer may send garbage, claim absurd frame lengths, open
    connections and stall, or vanish mid-request.  Every such behaviour
    is answered with a typed refusal or a closed connection, never a
    crash: a framing error gets one framed [Error_r] before the close,
    an over-capacity connection is refused the same way, and a peer
    disappearing mid-write is reaped silently.

    Dispatch is split.  Mutations — and every request when no [read]
    handler is installed — are serialized by a global lock, keeping the
    single-writer ledger structures sequentially consistent.  Reads go
    through the optional [read] handler
    ({!Ledger_core.Service.handle_read},
    {!Ledger_shard.Sharded_service.handle_read}) {e without taking any
    lock}: they are answered from the ledger's atomically-published
    immutable snapshot on whichever worker domain owns the connection,
    so read throughput scales with [workers] instead of queueing behind
    the writer.  Graceful shutdown ({!stop}) closes the listener first
    (freeing the port for an immediate restart — [SO_REUSEADDR] is
    set), then lets every worker drain buffered requests to completion
    — reads still lock-free — before its connections are closed. *)

type config = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** 0 picks an ephemeral port; read it back with {!port} *)
  workers : int;  (** accept/serve domains *)
  max_conns : int;  (** global cap; excess connections are refused *)
  max_frame : int;  (** per-frame payload limit, see {!Net_framing} *)
  backlog : int;  (** listen queue depth *)
}

val default_config : config
(** loopback, ephemeral port, 4 workers, 1024 connections, 8 MiB
    frames. *)

type t

val create : ?config:config -> ?read:(bytes -> bytes option) -> (bytes -> bytes) -> t
(** Bind, listen and spawn the worker domains.  The backend runs under
    the server's dispatch lock and must never raise (both [handle]
    entry points already guarantee this).

    [read] is the lock-free fast path: it is called first on every
    frame, concurrently from all worker domains, with no lock held.
    [Some resp] answers the request; [None] routes it to the locked
    backend.  Pass {!Ledger_core.Service.handle_read} (or the sharded
    equivalent) partially applied to the same state as the backend —
    it must be domain-safe and never raise.  Omitting [read] restores
    fully serialized dispatch.
    @raise Unix.Unix_error when the address cannot be bound. *)

val port : t -> int
(** The bound port — the ephemeral port when [config.port] was 0. *)

val stop : t -> unit
(** Graceful drain: close the listener, let workers finish every
    complete request already received (including bytes still in kernel
    buffers), flush responses, close connections, join the domains.
    Idempotent. *)

val running : t -> bool

val install_signal_handlers : t -> unit
(** Route SIGINT and SIGTERM to {!stop}. *)

type stats = {
  accepted : int;  (** connections accepted over the server's lifetime *)
  refused : int;  (** connections refused at [max_conns] *)
  active : int;  (** connections currently open *)
  served : int;  (** requests dispatched (both paths) *)
  read_served : int;  (** requests answered on the lock-free read path *)
  framing_errors : int;  (** connections dropped on a decode failure *)
}

val stats : t -> stats
(** Lifetime counters, readable while serving; independent of the
    {!Ledger_obs.Obs} sink state.  The same events also feed the
    [net_*] metrics when recording is enabled — including
    [net_read_dispatch_total] / [net_locked_dispatch_total] and the
    per-domain [net_read_dispatch_domain_<i>] counters that make
    "reads never took the lock" checkable from a test. *)
