(** Socket-level frame codec for the tagged {!Ledger_core.Service}
    envelopes.

    TCP delivers a byte stream, not messages, so every request and
    response crosses the wire as one frame:

    {v "LDBW"  len:u32be  payload  crc:u32be v}

    where [crc] is CRC-32 over ([len:u32be] ++ [payload]) — the same
    discipline as the on-disk {!Ledger_storage.Framing} records, with a
    distinct magic so a journal file accidentally piped at a socket is
    rejected on the first four bytes.

    The decoder is {e incremental}: feed it whatever [read] returned and
    pull complete frames out.  It never raises on wire input — a peer
    can send garbage, a frame claiming 4 GiB, or half a message and then
    hang up, and the decoder answers with a typed {!step}.  After a
    {!step.Fail} the decoder is poisoned: resynchronising inside an
    untrusted byte stream is a protocol redesign, not a recovery, so the
    connection must be dropped. *)

val magic : string
(** ["LDBW"] — wire frames, vs ["LDBR"] for on-disk records. *)

val header_len : int
(** Bytes before the payload: magic + length prefix (8). *)

val overhead : int
(** Total non-payload bytes per frame: header + trailing CRC (12). *)

val default_max_frame : int
(** 8 MiB — comfortably above the largest proof bundle, far below a
    memory-exhaustion allocation. *)

val encode : bytes -> bytes
(** [encode payload] is one complete frame. *)

type error =
  | Bad_magic  (** first four bytes are not {!magic} *)
  | Oversized of { claimed : int; limit : int }
      (** length prefix exceeds the decoder's limit; the claimed size is
          reported {e without} having been allocated *)
  | Bad_crc  (** checksum mismatch over a complete frame *)

val error_to_string : error -> string

type decoder

val create_decoder : ?max_frame:int -> unit -> decoder
(** [max_frame] defaults to {!default_max_frame}; it bounds the payload
    length a frame may claim, and therefore the decoder's buffering. *)

type step =
  | Frame of bytes  (** one complete payload, exactly as encoded *)
  | Awaiting of int
      (** no complete frame buffered; at least this many more bytes are
          needed before {!next} can make progress *)
  | Fail of error
      (** the stream is broken; every future {!next} repeats this *)

val feed : decoder -> bytes -> pos:int -> len:int -> unit
(** Append raw bytes from the socket.  Feeding a poisoned decoder is a
    no-op. *)

val next : decoder -> step
(** Pull the next complete frame.  Call repeatedly until {!step.Awaiting}
    — one [feed] can complete several frames. *)

val buffered : decoder -> int
(** Unconsumed bytes currently held. *)
