(* Incremental frame codec over a TCP byte stream.

   Wire layout:   "LDBW"  len:u32be  payload  crc:u32be
   crc = CRC-32 over (len:u32be ++ payload), matching the on-disk
   Framing discipline with a distinct magic.

   The decoder holds one flat buffer with a consumed-prefix offset;
   feeds compact the prefix away before growing, so steady-state
   request/response traffic stays allocation-quiet. *)

open Ledger_storage

let magic = "LDBW"
let header_len = 8
let overhead = 12
let default_max_frame = 8 * 1024 * 1024

type error =
  | Bad_magic
  | Oversized of { claimed : int; limit : int }
  | Bad_crc

let error_to_string = function
  | Bad_magic -> "bad frame magic"
  | Oversized { claimed; limit } ->
      Printf.sprintf "oversized frame: claimed %d bytes, limit %d" claimed
        limit
  | Bad_crc -> "frame checksum mismatch"

let u32_to_be v =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((v lsr 24) land 0xFF));
  Bytes.set b 1 (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set b 2 (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b 3 (Char.chr (v land 0xFF));
  b

let be_to_u32 b pos =
  (Char.code (Bytes.get b pos) lsl 24)
  lor (Char.code (Bytes.get b (pos + 1)) lsl 16)
  lor (Char.code (Bytes.get b (pos + 2)) lsl 8)
  lor Char.code (Bytes.get b (pos + 3))

let crc_of ~len_be payload ~pos ~len =
  Int32.to_int (Crc32.update (Crc32.bytes len_be) payload ~pos ~len)
  land 0xFFFFFFFF

let encode payload =
  let len = Bytes.length payload in
  let len_be = u32_to_be len in
  let out = Bytes.create (overhead + len) in
  Bytes.blit_string magic 0 out 0 4;
  Bytes.blit len_be 0 out 4 4;
  Bytes.blit payload 0 out header_len len;
  Bytes.blit (u32_to_be (crc_of ~len_be payload ~pos:0 ~len)) 0 out
    (header_len + len) 4;
  out

type decoder = {
  max_frame : int;
  mutable buf : bytes;
  mutable off : int; (* start of unconsumed bytes *)
  mutable len : int; (* unconsumed byte count *)
  mutable failed : error option;
}

type step =
  | Frame of bytes
  | Awaiting of int
  | Fail of error

let create_decoder ?(max_frame = default_max_frame) () =
  { max_frame; buf = Bytes.create 4096; off = 0; len = 0; failed = None }

let buffered d = d.len

let feed d src ~pos ~len =
  if len < 0 || pos < 0 || pos + len > Bytes.length src then
    invalid_arg "Net_framing.feed";
  if d.failed = None && len > 0 then begin
    (* compact the consumed prefix before considering growth *)
    if d.off > 0 then begin
      Bytes.blit d.buf d.off d.buf 0 d.len;
      d.off <- 0
    end;
    let need = d.len + len in
    if need > Bytes.length d.buf then begin
      let cap = ref (Bytes.length d.buf * 2) in
      while !cap < need do
        cap := !cap * 2
      done;
      let bigger = Bytes.create !cap in
      Bytes.blit d.buf 0 bigger 0 d.len;
      d.buf <- bigger
    end;
    Bytes.blit src pos d.buf d.len len;
    d.len <- d.len + len
  end

let fail d e =
  d.failed <- Some e;
  Fail e

let next d =
  match d.failed with
  | Some e -> Fail e
  | None ->
      (* Check however much of the magic has arrived: a wrong byte is
         detectable before the header completes. *)
      let magic_ok = ref true in
      for i = 0 to min d.len 4 - 1 do
        if Bytes.get d.buf (d.off + i) <> magic.[i] then magic_ok := false
      done;
      if not !magic_ok then fail d Bad_magic
      else if d.len < header_len then Awaiting (header_len - d.len)
      else begin
        let claimed = be_to_u32 d.buf (d.off + 4) in
        if claimed > d.max_frame then
          fail d (Oversized { claimed; limit = d.max_frame })
        else begin
          let total = overhead + claimed in
          if d.len < total then Awaiting (total - d.len)
          else begin
            let len_be = Bytes.sub d.buf (d.off + 4) 4 in
            let got = be_to_u32 d.buf (d.off + header_len + claimed) in
            let want =
              crc_of ~len_be d.buf ~pos:(d.off + header_len) ~len:claimed
            in
            if got <> want then fail d Bad_crc
            else begin
              let payload = Bytes.sub d.buf (d.off + header_len) claimed in
              d.off <- d.off + total;
              d.len <- d.len - total;
              Frame payload
            end
          end
        end
      end
