open Ledger_crypto

type t = { forest : Forest.t; height : int option }

let create ?height () =
  (match height with
  | Some h when h < 1 || h > 30 -> invalid_arg "Shrubs.create: bad height"
  | Some _ | None -> ());
  { forest = Forest.create (); height }

let capacity t = Option.map (fun h -> 1 lsl h) t.height
let size t = Forest.size t.forest

let is_full t =
  match capacity t with Some c -> size t >= c | None -> false

let append t h =
  if is_full t then invalid_arg "Shrubs.append: tree is full";
  Forest.append t.forest h

let append_many ?pool t hs =
  if hs = [] then size t (* empty batch: no-op, no overflow check needed *)
  else begin
    (match capacity t with
    | Some c when size t + List.length hs > c ->
        invalid_arg "Shrubs.append_many: batch would overflow the tree"
    | Some _ | None -> ());
    Forest.append_many ?pool t.forest hs
  end

let leaf t = Forest.leaf t.forest
let peaks t = Forest.peaks t.forest
let commitment t = Proof.node_set_digest (peaks t)

let root t =
  match t.height with
  | None -> invalid_arg "Shrubs.root: unbounded tree has no final root"
  | Some h ->
      if not (is_full t) then invalid_arg "Shrubs.root: tree is not full";
      Forest.node t.forest ~level:h ~index:0

type proof = { path : Proof.path; peak_index : int; peak_set : Proof.node_set }

let prove t i =
  let path, peak_index = Forest.prove_to_peak t.forest i in
  { path; peak_index; peak_set = peaks t }

let verify_against_peaks ~peaks ~leaf proof =
  Proof.node_set_equal peaks proof.peak_set
  &&
  match List.nth_opt proof.peak_set proof.peak_index with
  | None -> false
  | Some peak -> Hash.equal (Proof.apply leaf proof.path) peak

let verify ~commitment ~leaf proof =
  Hash.equal (Proof.node_set_digest proof.peak_set) commitment
  &&
  match List.nth_opt proof.peak_set proof.peak_index with
  | None -> false
  | Some peak -> Hash.equal (Proof.apply leaf proof.path) peak

let stored_digests t = Forest.stored_digests t.forest
let forest t = t.forest
let freeze t = { forest = Forest.freeze t.forest; height = t.height }

let prove_consistency t ~old_size = Forest.prove_consistency t.forest ~old_size
let verify_consistency = Forest.verify_consistency
