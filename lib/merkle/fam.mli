(** The fractal accumulating model (fam) — paper §III-A1, Figs. 3(b) and 4.

    Journal digests accumulate into a Shrubs tree of fixed fractal height
    δ.  Rule 1: when the current tree fills (2^δ leaves), its root becomes
    the {e first leaf} (the "merged leaf") of a fresh tree, starting a new
    epoch.  Epoch 0 therefore holds 2^δ journals and every later epoch
    2^δ − 1 journals plus one merged leaf.

    Two verification regimes are provided:

    - {!prove} / {!verify} — full proofs that chain from the journal's
      epoch through every later epoch's merged leaf to the current
      node-set commitment (used when no trust has been established);
    - {!prove_anchored} / {!verify_anchored} — fam-aoa: against a
      {!anchor} (a checkpoint below which all data has already been
      verified), a journal in a sealed epoch needs only its O(δ) in-epoch
      path, and a journal in the live epoch at most O(δ−1) expected — the
      flat verification cost of Fig. 8(b). *)

open Ledger_crypto

type t

val create : delta:int -> t
(** [delta] is the fractal height (e.g. fam-15 ⇒ [delta = 15]). *)

val delta : t -> int
val append : t -> Hash.t -> int
(** Append a journal digest; returns its jsn. *)

val append_many : ?pool:Ledger_par.Domain_pool.t -> t -> Hash.t list -> int
(** Accumulate a whole batch of journal digests at once: the batch is
    split at epoch boundaries and each in-epoch run updates the Shrubs
    interior in one pass per level.  Resulting state is identical to
    sequential {!append}s (with or without [pool], which parallelises
    only the per-level parent hashing); returns the first assigned jsn
    (the pre-batch size for an empty batch). *)

val size : t -> int
(** Number of journal digests appended (merged leaves not counted). *)

val epoch_count : t -> int
val epoch_of_jsn : t -> int -> int * int
(** [(epoch, position-in-epoch)] of a jsn.
    @raise Invalid_argument if out of range. *)

val commitment : t -> Hash.t
(** Digest of the live epoch's node-set — commits (transitively, through
    merged leaves) to the entire history. *)

val peaks : t -> Proof.node_set
val leaf : t -> int -> Hash.t
(** Journal digest by jsn. *)

val sealed_epoch_root : t -> int -> Hash.t
(** Root of a sealed epoch. @raise Invalid_argument if not sealed. *)

(** {1 Full verification} *)

type proof = {
  jsn : int;
  epoch_paths : Proof.path list;
      (** First the path inside the journal's epoch, then one path per
          later epoch, each lifting the previous epoch's root (sitting at
          the merged leaf) upward; the last path ends at a live peak. *)
  peak_index : int;
  peak_set : Proof.node_set;
}

val prove : t -> int -> proof

val verify : commitment:Hash.t -> leaf:Hash.t -> proof -> bool

(** {1 Anchored verification (fam-aoa)} *)

type anchor
(** A trusted checkpoint: sealed-epoch roots plus the live node-set at
    checkpoint time.  Everything it covers is considered verified. *)

val make_anchor : t -> anchor
(** Capture the current state as a trusted anchor (the caller is expected
    to have verified the ledger up to now, e.g. by a full audit). *)

val anchor_size : anchor -> int
(** Number of journals covered by the anchor. *)

val anchor_peaks : anchor -> Proof.node_set
(** The live node-set captured by the anchor — the commitment preimage a
    client can later feed to {!verify_extension}. *)

type anchored_proof =
  | Within_sealed of { epoch : int; path : Proof.path }
      (** O(δ) path to a sealed epoch root the anchor already trusts. *)
  | Beyond_anchor of proof
      (** Journal newer than the anchor: fall back to a full chained
          proof against the current commitment. *)

val prove_anchored : t -> anchor -> int -> anchored_proof

val verify_anchored :
  anchor -> current_commitment:Hash.t -> leaf:Hash.t -> anchored_proof -> bool

(** {1 Maintenance} *)

val purge_epochs_before : t -> int -> unit
(** [purge_epochs_before t e] forgets the interior digests of all epochs
    strictly below [e], keeping only their roots (the paper's optional fam
    node erasure during purge). *)

val stored_digests : t -> int

val freeze : t -> t
(** Immutable snapshot: sealed epochs are shared (they are append-final),
    the live epoch is {!Shrubs.freeze}d.  Safe to prove/verify against
    from other domains while the original keeps appending; purge
    erasures remain visible.  Only read on the result. *)

(** {1 Extension (consistency) proofs}

    Prove that the current commitment is an append-only extension of the
    commitment the verifier captured at [old_size] journals — so an LSP
    cannot rewrite history between two client visits without detection,
    even without a full audit. *)

type extension_proof =
  | Within_epoch of {
      consistency : Forest.consistency_proof;
      new_peaks : Proof.node_set;  (** preimage of the new commitment *)
    }  (** both commitments fall in the same (still live) epoch *)
  | Across_epochs of {
      completion : Forest.consistency_proof;
          (** old node-set → the sealed root of its epoch *)
      epoch_root : Hash.t;  (** that sealed root (authenticated by [chain]) *)
      chain : Proof.path list;
          (** merged-leaf paths from the following epoch to a live peak *)
      peak_index : int;
      peak_set : Proof.node_set;
    }

val prove_extension : t -> old_size:int -> extension_proof
(** @raise Invalid_argument unless [0 < old_size <= size t]. *)

val verify_extension :
  delta:int ->
  old_size:int ->
  old_peaks:Proof.node_set ->
  new_size:int ->
  new_commitment:Hash.t ->
  extension_proof ->
  bool
(** [old_peaks] is the node-set whose digest the verifier trusted as the
    old commitment; [delta] must be the ledger's fractal height. *)
