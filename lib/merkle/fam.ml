open Ledger_crypto

type t = {
  delta : int;
  epoch_capacity : int;
  mutable epochs : Shrubs.t array; (* oldest first; the last one is live *)
  mutable epoch_count : int;
  mutable sealed_roots : Hash.t array; (* oldest first *)
  mutable sealed_count : int;
  mutable size : int;
}

let create ~delta =
  if delta < 1 || delta > 28 then invalid_arg "Fam.create: bad delta";
  let first = Shrubs.create ~height:delta () in
  {
    delta;
    epoch_capacity = 1 lsl delta;
    epochs = Array.make 4 first;
    epoch_count = 1;
    sealed_roots = Array.make 4 Hash.zero;
    sealed_count = 0;
    size = 0;
  }

let delta t = t.delta
let size t = t.size
let epoch_count t = t.epoch_count

let current t = t.epochs.(t.epoch_count - 1)

let push_epoch t e =
  if t.epoch_count >= Array.length t.epochs then begin
    let bigger = Array.make (2 * Array.length t.epochs) e in
    Array.blit t.epochs 0 bigger 0 t.epoch_count;
    t.epochs <- bigger
  end;
  t.epochs.(t.epoch_count) <- e;
  t.epoch_count <- t.epoch_count + 1

let push_sealed_root t r =
  if t.sealed_count >= Array.length t.sealed_roots then begin
    let bigger = Array.make (2 * Array.length t.sealed_roots) r in
    Array.blit t.sealed_roots 0 bigger 0 t.sealed_count;
    t.sealed_roots <- bigger
  end;
  t.sealed_roots.(t.sealed_count) <- r;
  t.sealed_count <- t.sealed_count + 1

(* Rule 1: seal the full tree and seed the next epoch with its root. *)
let roll_epoch t =
  let cur = current t in
  let root = Shrubs.root cur in
  push_sealed_root t root;
  let next = Shrubs.create ~height:t.delta () in
  ignore (Shrubs.append next root);
  push_epoch t next

let append t h =
  if Shrubs.is_full (current t) then roll_epoch t;
  ignore (Shrubs.append (current t) h);
  let jsn = t.size in
  t.size <- t.size + 1;
  jsn

(* One accumulation per batch: the leaves are split at epoch boundaries
   (Rule 1 still rolls full trees) and each in-epoch run goes through
   {!Shrubs.append_many}'s single interior pass.  State after the call is
   identical to [List.iter (append t) hs]. *)
let append_many ?pool t hs =
  let first = t.size in
  (* the empty batch is an explicit no-op: in particular it must not
     roll an epoch even when the current Shrubs is exactly full *)
  if hs = [] then first
  else begin
  let rec split_at n acc = function
    | rest when n = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | h :: rest -> split_at (n - 1) (h :: acc) rest
  in
  let rec go = function
    | [] -> ()
    | hs ->
        if Shrubs.is_full (current t) then roll_epoch t;
        let room =
          match Shrubs.capacity (current t) with
          | Some c -> c - Shrubs.size (current t)
          | None -> List.length hs
        in
        let chunk, rest = split_at (min room (List.length hs)) [] hs in
        ignore (Shrubs.append_many ?pool (current t) chunk);
        t.size <- t.size + List.length chunk;
        go rest
  in
  go hs;
  first
  end

let epoch_of_jsn t jsn =
  if jsn < 0 || jsn >= t.size then invalid_arg "Fam.epoch_of_jsn: out of range";
  let cap = t.epoch_capacity in
  if jsn < cap then (0, jsn)
  else begin
    let j = jsn - cap in
    (1 + (j / (cap - 1)), 1 + (j mod (cap - 1)))
  end

let nth_epoch t e =
  if e < 0 || e >= t.epoch_count then invalid_arg "Fam.nth_epoch: out of range";
  t.epochs.(e)

let commitment t = Shrubs.commitment (current t)
let peaks t = Shrubs.peaks (current t)

let leaf t jsn =
  let e, pos = epoch_of_jsn t jsn in
  Shrubs.leaf (nth_epoch t e) pos

let sealed_epoch_root t e =
  if e < 0 || e >= t.sealed_count then
    invalid_arg "Fam.sealed_epoch_root: not sealed";
  t.sealed_roots.(e)

type proof = {
  jsn : int;
  epoch_paths : Proof.path list;
  peak_index : int;
  peak_set : Proof.node_set;
}

(* Path from leaf [pos] of a *sealed* (full) epoch to its root. *)
let sealed_path t e pos =
  let shrubs = nth_epoch t e in
  let path, peak_index = Forest.prove_to_peak (Shrubs.forest shrubs) pos in
  assert (peak_index = 0);
  ignore t;
  path

let prove t jsn =
  let e, pos = epoch_of_jsn t jsn in
  let last = epoch_count t - 1 in
  if e = last then begin
    let { Shrubs.path; peak_index; peak_set } = Shrubs.prove (current t) pos in
    { jsn; epoch_paths = [ path ]; peak_index; peak_set }
  end
  else begin
    let first = sealed_path t e pos in
    (* Chain each sealed epoch root up through the merged leaf (pos 0) of
       the following epoch. *)
    let rec chain k acc =
      if k = last then List.rev acc
      else chain (k + 1) (sealed_path t k 0 :: acc)
    in
    let middles = chain (e + 1) [] in
    let { Shrubs.path = final; peak_index; peak_set } =
      Shrubs.prove (current t) 0
    in
    { jsn; epoch_paths = (first :: middles) @ [ final ]; peak_index; peak_set }
  end

let verify ~commitment ~leaf proof =
  Hash.equal (Proof.node_set_digest proof.peak_set) commitment
  &&
  match List.nth_opt proof.peak_set proof.peak_index with
  | None -> false
  | Some peak ->
      let final = List.fold_left Proof.apply leaf proof.epoch_paths in
      Hash.equal final peak

type anchor = {
  anchor_jsn : int;
  trusted_roots : Hash.t array; (* sealed epoch roots, oldest first *)
  anchor_peaks : Proof.node_set; (* live node-set at anchor time *)
}

let make_anchor t =
  let sealed = epoch_count t - 1 in
  {
    anchor_jsn = t.size;
    trusted_roots = Array.init sealed (fun e -> sealed_epoch_root t e);
    anchor_peaks = peaks t;
  }

let anchor_size a = a.anchor_jsn
let anchor_peaks a = a.anchor_peaks

type anchored_proof =
  | Within_sealed of { epoch : int; path : Proof.path }
  | Beyond_anchor of proof

let prove_anchored t anchor jsn =
  let e, pos = epoch_of_jsn t jsn in
  if e < Array.length anchor.trusted_roots then
    Within_sealed { epoch = e; path = sealed_path t e pos }
  else Beyond_anchor (prove t jsn)

let verify_anchored anchor ~current_commitment ~leaf = function
  | Within_sealed { epoch; path } ->
      epoch < Array.length anchor.trusted_roots
      && Hash.equal (Proof.apply leaf path) anchor.trusted_roots.(epoch)
  | Beyond_anchor proof -> verify ~commitment:current_commitment ~leaf proof

let purge_epochs_before t e =
  let total = epoch_count t in
  let sealed = total - 1 in
  let upto = min e sealed in
  for k = 0 to upto - 1 do
    let shrubs = nth_epoch t k in
    Forest.forget_subtree (Shrubs.forest shrubs) ~level:t.delta ~index:0
  done

let stored_digests t =
  let total = ref 0 in
  for e = 0 to t.epoch_count - 1 do
    total := !total + Shrubs.stored_digests t.epochs.(e)
  done;
  !total

(* Immutable snapshot.  Sealed epochs are append-final (Rule 1 rolls a
   *full* tree and never appends to it again), so their live Shrubs can
   be shared directly; only the live last epoch needs a {!Shrubs.freeze}
   to pin its counts against concurrent appends.  The sealed-roots array
   is shared with a pinned count (writes only land at indices >= the
   pinned count; resizes swap in a new array).  Purge erasures
   ({!purge_epochs_before}) stay visible through snapshots. *)
let freeze t =
  let epochs = Array.copy t.epochs in
  epochs.(t.epoch_count - 1) <- Shrubs.freeze (current t);
  {
    delta = t.delta;
    epoch_capacity = t.epoch_capacity;
    epochs;
    epoch_count = t.epoch_count;
    sealed_roots = t.sealed_roots;
    sealed_count = t.sealed_count;
    size = t.size;
  }

(* --- extension proofs -------------------------------------------------------- *)

type extension_proof =
  | Within_epoch of {
      consistency : Forest.consistency_proof;
      new_peaks : Proof.node_set;
    }
  | Across_epochs of {
      completion : Forest.consistency_proof;
      epoch_root : Hash.t;
      chain : Proof.path list;
      peak_index : int;
      peak_set : Proof.node_set;
    }

(* epoch and in-epoch forest size at a historical journal count *)
let epoch_state_at ~delta ~cap old_size =
  ignore delta;
  if old_size <= cap then (0, old_size)
  else begin
    let j = old_size - 1 - cap in
    (1 + (j / (cap - 1)), 2 + (j mod (cap - 1)))
  end

let prove_extension_unchecked t ~old_size =
  let e, in_epoch = epoch_state_at ~delta:t.delta ~cap:t.epoch_capacity old_size in
  let last = epoch_count t - 1 in
  if e = last then
    Within_epoch
      {
        consistency =
          Forest.prove_consistency (Shrubs.forest (current t)) ~old_size:in_epoch;
        new_peaks = peaks t;
      }
  else begin
    let epoch_forest = Shrubs.forest (nth_epoch t e) in
    let completion = Forest.prove_consistency epoch_forest ~old_size:in_epoch in
    let rec chain_paths k acc =
      if k = last then List.rev acc
      else chain_paths (k + 1) (sealed_path t k 0 :: acc)
    in
    let middles = chain_paths (e + 1) [] in
    let { Shrubs.path = final; peak_index; peak_set } = Shrubs.prove (current t) 0 in
    Across_epochs
      {
        completion;
        epoch_root = sealed_epoch_root t e;
        chain = middles @ [ final ];
        peak_index;
        peak_set;
      }
  end

let prove_extension t ~old_size =
  if old_size <= 0 || old_size > t.size then
    invalid_arg "Fam.prove_extension: bad old_size";
  try prove_extension_unchecked t ~old_size
  with Not_found ->
    invalid_arg "Fam.prove_extension: epoch interior was purged"

let verify_extension ~delta ~old_size ~old_peaks ~new_size ~new_commitment proof =
  if old_size <= 0 || old_size > new_size then false
  else begin
    let cap = 1 lsl delta in
    let e_old, in_old = epoch_state_at ~delta ~cap old_size in
    let e_new, in_new = epoch_state_at ~delta ~cap new_size in
    match proof with
    | Within_epoch { consistency; new_peaks } ->
        e_old = e_new
        && Hash.equal (Proof.node_set_digest new_peaks) new_commitment
        && Forest.verify_consistency ~old_size:in_old ~old_peaks
             ~new_size:in_new ~new_peaks consistency
    | Across_epochs { completion; epoch_root; chain; peak_index; peak_set } ->
        e_old < e_new
        && Hash.equal (Proof.node_set_digest peak_set) new_commitment
        && (match List.nth_opt peak_set peak_index with
           | None -> false
           | Some peak ->
               let final = List.fold_left Proof.apply epoch_root chain in
               Hash.equal final peak)
        && Forest.verify_consistency ~old_size:in_old ~old_peaks ~new_size:cap
             ~new_peaks:[ epoch_root ] completion
        && in_new >= 1
  end
