open Ledger_crypto
open Ledger_par

(* Per-level dynamic arrays of complete-node digests.  [None] marks a
   node forgotten after a purge. *)
type level = { mutable nodes : Hash.t option array; mutable count : int }

type t = { mutable levels : level array; mutable size : int; mutable stored : int }

let new_level () = { nodes = Array.make 8 None; count = 0 }

let create () = { levels = [| new_level () |]; size = 0; stored = 0 }

let level t l =
  while l >= Array.length t.levels do
    let bigger = Array.make (max 4 (2 * Array.length t.levels)) (new_level ()) in
    Array.blit t.levels 0 bigger 0 (Array.length t.levels);
    for i = Array.length t.levels to Array.length bigger - 1 do
      bigger.(i) <- new_level ()
    done;
    t.levels <- bigger
  done;
  t.levels.(l)

let push_node t l h =
  let lv = level t l in
  if lv.count >= Array.length lv.nodes then begin
    let bigger = Array.make (2 * Array.length lv.nodes) None in
    Array.blit lv.nodes 0 bigger 0 lv.count;
    lv.nodes <- bigger
  end;
  lv.nodes.(lv.count) <- Some h;
  lv.count <- lv.count + 1;
  t.stored <- t.stored + 1

let get_node t l i =
  if l >= Array.length t.levels then raise Not_found;
  let lv = t.levels.(l) in
  if i < 0 || i >= lv.count then raise Not_found;
  match lv.nodes.(i) with Some h -> h | None -> raise Not_found

let append t h =
  let i = t.size in
  push_node t 0 h;
  t.size <- t.size + 1;
  (* Cascade: whenever the freshly completed node has an odd index, its
     parent is now complete too. *)
  let rec cascade l idx h =
    if idx land 1 = 1 then begin
      let left = get_node t l (idx - 1) in
      let parent = Hash.combine left h in
      push_node t (l + 1) parent;
      cascade (l + 1) (idx / 2) parent
    end
  in
  cascade 0 i h;
  i

(* Batched append: push every leaf first, then complete the interior
   level by level — one linear pass per level instead of one cascade per
   leaf.  The resulting node arrays are byte-identical to [n] sequential
   {!append}s (parents are combined from the same children in the same
   positions); only the order of interior pushes differs, and within a
   level that order is ascending in both cases. *)
let append_many ?(pool = Domain_pool.sequential) t hs =
  let first = t.size in
  (* the empty batch is an explicit no-op: no leaf pushes, no interior
     completion pass, state untouched *)
  if hs <> [] then begin
    List.iter
      (fun h ->
        push_node t 0 h;
        t.size <- t.size + 1)
      hs;
    let rec complete l =
      let lv = level t l in
      let want = lv.count / 2 in
      let have = (level t (l + 1)).count in
      if have < want then begin
        let n = want - have in
        (* parents of one level are independent: hash them across the
           pool into index slots, then push sequentially in ascending
           order — the node arrays end up byte-identical to the
           sequential loop *)
        let parents = Array.make n Hash.zero in
        Domain_pool.parallel_for pool ~label:"merkle_level" ~min_chunk:16 ~n
          (fun k ->
            let j = have + k in
            parents.(k) <-
              Hash.combine (get_node t l (2 * j)) (get_node t l ((2 * j) + 1)));
        Array.iter (push_node t (l + 1)) parents;
        complete (l + 1)
      end
    in
    complete 0
  end;
  first

let size t = t.size

let leaf t i =
  if i < 0 || i >= t.size then
    invalid_arg (Printf.sprintf "Forest.leaf: %d out of range [0,%d)" i t.size);
  get_node t 0 i

let node t ~level:l ~index = get_node t l index

(* Binary decomposition of [size], most significant subtree first.
   Returns (level, index, leaf_start) triples. *)
let peak_positions t =
  let rec go bit start acc =
    if bit < 0 then List.rev acc
    else begin
      let span = 1 lsl bit in
      if t.size land span <> 0 then
        go (bit - 1) (start + span) ((bit, start / span, start) :: acc)
      else go (bit - 1) start acc
    end
  in
  let rec top_bit b = if 1 lsl (b + 1) > t.size then b else top_bit (b + 1) in
  if t.size = 0 then [] else go (top_bit 0) 0 []

let peaks t =
  List.map (fun (l, i, _) -> get_node t l i) (peak_positions t)

let bag = function
  | [] -> invalid_arg "Forest.bagged_root: empty forest"
  | peaks ->
      let rec fold = function
        | [ last ] -> last
        | p :: rest -> Hash.combine p (fold rest)
        | [] -> assert false
      in
      fold peaks

let bagged_root t = bag (peaks t)

(* Audit path from leaf [i] up to the root of the complete subtree of
   height [h] that contains it. *)
let path_within_complete t i h =
  let rec go l path =
    if l >= h then List.rev path
    else begin
      let idx = i lsr l in
      let sib = idx lxor 1 in
      let digest = get_node t l sib in
      let step =
        if idx land 1 = 1 then { Proof.dir = Proof.Left; digest }
        else { Proof.dir = Proof.Right; digest }
      in
      go (l + 1) (step :: path)
    end
  in
  go 0 []

let find_peak t i =
  let rec go pos = function
    | [] -> invalid_arg "Forest.find_peak: leaf out of range"
    | (l, _, start) :: rest ->
        if i >= start && i < start + (1 lsl l) then (pos, l, start)
        else go (pos + 1) rest
  in
  go 0 (peak_positions t)

let prove_to_peak t i =
  if i < 0 || i >= t.size then invalid_arg "Forest.prove_to_peak: out of range";
  let pos, l, _ = find_peak t i in
  (path_within_complete t i l, pos)

let prove_bagged t i =
  let within, pos = prove_to_peak t i in
  let ps = peaks t in
  let n = List.length ps in
  (* Combine with the bag of the peaks to the right, then each peak to the
     left, innermost first. *)
  let right = List.filteri (fun j _ -> j > pos) ps in
  let right_step =
    if right = [] then [] else [ { Proof.dir = Proof.Right; digest = bag right } ]
  in
  let left_steps =
    List.filteri (fun j _ -> j < pos) ps
    |> List.rev
    |> List.map (fun digest -> { Proof.dir = Proof.Left; digest })
  in
  ignore n;
  within @ right_step @ left_steps

let subtree_root t ~level:l ~index =
  match get_node t l index with
  | h -> h
  | exception Not_found ->
      (* Ragged region: bag the greedy aligned decomposition of the live
         part of the subtree's leaf range. *)
      let lo = index * (1 lsl l) in
      let hi = min t.size ((index + 1) * (1 lsl l)) in
      if lo >= hi then raise Not_found;
      let rec decompose a acc =
        if a >= hi then List.rev acc
        else begin
          let rec fit k =
            if k = 0 then 0
            else if a mod (1 lsl k) = 0 && a + (1 lsl k) <= hi then k
            else fit (k - 1)
          in
          let k = fit l in
          decompose (a + (1 lsl k)) (get_node t k (a / (1 lsl k)) :: acc)
        end
      in
      bag (decompose lo [])

let forget_subtree t ~level:l ~index =
  for lev = 0 to l - 1 do
    if lev < Array.length t.levels then begin
      let lv = t.levels.(lev) in
      let lo = index * (1 lsl (l - lev)) in
      let hi = min lv.count ((index + 1) * (1 lsl (l - lev))) in
      for i = lo to hi - 1 do
        if lv.nodes.(i) <> None then begin
          lv.nodes.(i) <- None;
          t.stored <- t.stored - 1
        end
      done
    end
  done

let stored_digests t = t.stored

(* Immutable snapshot by structural sharing: pin every level's count and
   share its node array.  The live forest only writes at indices >= the
   pinned count (appends) or swaps in a bigger array on resize (the old
   array survives for the snapshot), so reads through the frozen counts
   never observe in-flight growth.  {!forget_subtree} erasures DO show
   through (shared arrays) — snapshots deliberately cannot resurrect
   purged digests. *)
let freeze t =
  {
    levels =
      Array.map (fun lv -> { nodes = lv.nodes; count = lv.count }) t.levels;
    size = t.size;
    stored = t.stored;
  }

(* --- consistency proofs ---------------------------------------------------- *)

type consistency_proof = Hash.t list list

(* peak decomposition for an arbitrary historical size *)
let peak_positions_for n =
  let rec top_bit b = if 1 lsl (b + 1) > n then b else top_bit (b + 1) in
  let rec go bit start acc =
    if bit < 0 then List.rev acc
    else begin
      let span = 1 lsl bit in
      if n land span <> 0 then
        go (bit - 1) (start + span) ((bit, start / span) :: acc)
      else go (bit - 1) start acc
    end
  in
  if n = 0 then [] else go (top_bit 0) 0 []

(* the level of the current peak containing node (l, i) *)
let containing_peak_level new_positions l i =
  let rec find = function
    | [] -> None
    | (pl, pi) :: rest ->
        if pl >= l && i lsr (pl - l) = pi then Some pl else find rest
  in
  find new_positions

let prove_consistency t ~old_size =
  if old_size <= 0 || old_size > t.size then
    invalid_arg "Forest.prove_consistency: bad old_size";
  let new_positions = peak_positions_for t.size in
  List.map
    (fun (l, i) ->
      match containing_peak_level new_positions l i with
      | None -> invalid_arg "Forest.prove_consistency: uncovered old peak"
      | Some top ->
          (* siblings from (l, i) up to (top, i >> (top - l)) *)
          List.init (top - l) (fun k ->
              let level = l + k in
              let idx = i lsr k in
              get_node t level (idx lxor 1)))
    (peak_positions_for old_size)

let verify_consistency ~old_size ~old_peaks ~new_size ~new_peaks proof =
  if old_size <= 0 || old_size > new_size then false
  else begin
    let old_positions = peak_positions_for old_size in
    let new_positions = peak_positions_for new_size in
    List.length old_positions = List.length old_peaks
    && List.length new_positions = List.length new_peaks
    && List.length proof = List.length old_positions
    &&
    let check (l, i) old_digest chain =
      match containing_peak_level new_positions l i with
      | None -> false
      | Some top ->
          List.length chain = top - l
          &&
          let climbed =
            List.fold_left
              (fun (digest, k) sibling ->
                let idx = i lsr k in
                let parent =
                  if idx land 1 = 1 then Hash.combine sibling digest
                  else Hash.combine digest sibling
                in
                (parent, k + 1))
              (old_digest, 0) chain
            |> fst
          in
          (* compare against the current peak at that position *)
          let rec nth_peak positions peaks =
            match (positions, peaks) with
            | (pl, pi) :: _, peak :: _ when pl = top && i lsr (top - l) = pi ->
                Some peak
            | _ :: ps, _ :: ks -> nth_peak ps ks
            | [], _ | _, [] -> None
          in
          (match nth_peak new_positions new_peaks with
          | Some peak -> Hash.equal climbed peak
          | None -> false)
    in
    let rec all3 ps ds cs =
      match (ps, ds, cs) with
      | [], [], [] -> true
      | p :: ps, d :: ds, c :: cs -> check p d c && all3 ps ds cs
      | _ -> false
    in
    all3 old_positions old_peaks proof
  end
