(** Shared core of the append-only Merkle structures.

    A forest stores, per level, the digests of every {e complete} subtree
    node.  Appending a leaf computes exactly the interior nodes that become
    complete — the O(1)-amortised insertion that the Shrubs tree (and hence
    fam and CM-Tree2) relies on.  Both commitment styles are derived from
    it:

    - {!peaks} — the frontier node-set (Shrubs commitment);
    - {!bagged_root} — a single root over the ragged tree, folding the
      peaks right-to-left (tim/Diem-style accumulator root).

    Nodes of purged regions can be dropped with {!forget_subtree}. *)

open Ledger_crypto

type t

val create : unit -> t

val append : t -> Hash.t -> int
(** Append a leaf digest; returns its index. *)

val append_many : ?pool:Ledger_par.Domain_pool.t -> t -> Hash.t list -> int
(** Append a batch of leaves, completing the interior with one pass per
    level instead of one cascade per leaf.  The resulting forest is
    byte-identical to sequential {!append}s.  With [pool], each level's
    parent hashes are computed across the pool (pushes stay sequential
    and ascending, so the result is still byte-identical).  Returns the
    index of the first appended leaf (the pre-batch size when the list
    is empty). *)

val size : t -> int
(** Number of leaves appended. *)

val leaf : t -> int -> Hash.t
(** @raise Invalid_argument if out of range.
    @raise Not_found if forgotten. *)

val node : t -> level:int -> index:int -> Hash.t
(** Digest of the complete subtree node; levels count from 0 (leaves).
    @raise Not_found if the node is incomplete or was forgotten. *)

val peaks : t -> Proof.node_set
(** Roots of the maximal complete subtrees, leftmost first.  Empty for an
    empty forest. *)

val bagged_root : t -> Hash.t
(** Single root over all leaves: peaks folded right-to-left with
    {!Hash.combine}.  @raise Invalid_argument on an empty forest. *)

val prove_to_peak : t -> int -> Proof.path * int
(** [prove_to_peak t i] is the audit path from leaf [i] to the root of the
    peak containing it, together with the peak's position in {!peaks}. *)

val prove_bagged : t -> int -> Proof.path
(** Audit path from leaf [i] to {!bagged_root} — the tim proof, whose
    length grows with the forest size. *)

val subtree_root : t -> level:int -> index:int -> Hash.t
(** Like {!node} but also serves {e ragged} (incomplete) subtrees by
    folding the peaks of the partial region. *)

val forget_subtree : t -> level:int -> index:int -> unit
(** Drop the stored digests strictly below the given complete node (the
    node's own digest is retained), reclaiming space after a purge. *)

val stored_digests : t -> int
(** Number of digests currently held — the storage-overhead metric. *)

val freeze : t -> t
(** O(levels) immutable snapshot by structural sharing: per-level node
    arrays are shared with pinned counts, so later appends to the live
    forest are invisible through the snapshot, which stays safe to read
    from other domains.  {!forget_subtree} erasures remain visible
    (purged digests cannot be resurrected through an old snapshot).
    Only read on the result. *)

(** {1 Consistency (append-only extension) proofs}

    Prove that the forest at its current size is an append-only extension
    of the forest as it stood at [old_size]: every old peak is a complete
    interior node of the current tree at a position the verifier derives
    from the sizes alone.  The proof ships only sibling digests; all
    positions and directions are recomputed by the verifier, so a prover
    cannot relocate old data. *)

type consistency_proof = Hash.t list list
(** One sibling chain per old peak (ordered as the old peak set). *)

val prove_consistency : t -> old_size:int -> consistency_proof
(** @raise Invalid_argument unless [0 < old_size <= size t]. *)

val verify_consistency :
  old_size:int ->
  old_peaks:Proof.node_set ->
  new_size:int ->
  new_peaks:Proof.node_set ->
  consistency_proof ->
  bool
