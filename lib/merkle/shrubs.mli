(** The Shrubs tree: an O(1)-insertion Merkle accumulator that commits to a
    {e node-set} (the frontier of complete-subtree roots) instead of a
    single root while the tree is not yet full (paper §III-A1, Fig. 3a).

    A Shrubs tree may be bounded ([capacity = 2^height]) — the building
    block of a fam epoch — or unbounded — the per-clue CM-Tree2
    accumulator. *)

open Ledger_crypto

type t

val create : ?height:int -> unit -> t
(** [create ~height ()] bounds the tree to [2^height] leaves; without
    [height] the tree grows indefinitely. *)

val append : t -> Hash.t -> int
(** @raise Invalid_argument when a bounded tree is full. *)

val append_many : ?pool:Ledger_par.Domain_pool.t -> t -> Hash.t list -> int
(** Batched {!append} via {!Forest.append_many}: one interior pass per
    level for the whole batch, identical resulting tree.  Returns the
    first appended index (the pre-batch {!size} for an empty batch,
    which is a no-op even on a full bounded tree).
    @raise Invalid_argument when the batch would overflow a bounded tree. *)

val size : t -> int
val capacity : t -> int option
val is_full : t -> bool
(** Always [false] for unbounded trees. *)

val leaf : t -> int -> Hash.t

val peaks : t -> Proof.node_set
(** The frontier node-set: the current commitment. *)

val commitment : t -> Hash.t
(** Canonical digest of {!peaks} — what gets stored upstream (e.g. as the
    clue's value in CM-Tree1). *)

val root : t -> Hash.t
(** The single peak of a {e full} bounded tree.
    @raise Invalid_argument if the tree is not full. *)

type proof = { path : Proof.path; peak_index : int; peak_set : Proof.node_set }
(** Existence proof of one leaf: an audit path to one of the peaks, plus
    the full node-set it belongs to. *)

val prove : t -> int -> proof

val verify : commitment:Hash.t -> leaf:Hash.t -> proof -> bool
(** The path must land on [peak_set.(peak_index)] and the node-set must
    digest to [commitment]. *)

val verify_against_peaks : peaks:Proof.node_set -> leaf:Hash.t -> proof -> bool
(** Variant when the verifier holds the raw trusted node-set. *)

val stored_digests : t -> int
val forest : t -> Forest.t
(** Underlying forest, exposed for fam's epoch sealing. *)

val freeze : t -> t
(** Immutable snapshot ({!Forest.freeze} of the underlying forest):
    read-only, safe to share across domains. *)

(** {1 Consistency proofs} *)

val prove_consistency : t -> old_size:int -> Forest.consistency_proof
(** Prove the current node-set extends the node-set at [old_size]. *)

val verify_consistency :
  old_size:int ->
  old_peaks:Proof.node_set ->
  new_size:int ->
  new_peaks:Proof.node_set ->
  Forest.consistency_proof ->
  bool
