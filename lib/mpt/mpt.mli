(** A Merkle Patricia Trie with 16-way branch nodes, extension nodes and
    leaf nodes, as in Ethereum's state tree (paper §IV-B1).

    Keys are nibble paths (usually SHA-3-scattered clue keys); values are
    opaque byte strings.  Node hashes are memoized and invalidated along
    the insertion path only, so an insert costs O(depth) rehashes — the
    "bottom-up CM-Tree1 root hash calculation" of §IV-B3.

    Inclusion proofs present every node on the root-to-leaf walk with just
    enough material to recompute its digest; {!verify_proof} replays the
    walk against a trusted root.

    The trie also tracks the depth of each lookup so callers can model the
    paper's "top-layers cached in memory, bottom layers on disk" split
    ({!lookup_depth}). *)

open Ledger_crypto

type t

val create : unit -> t

val insert : t -> key:int array -> bytes -> unit
(** Insert or replace.  @raise Invalid_argument on an empty key. *)

val insert_string : t -> key:string -> bytes -> unit
(** Convenience: scatter the key with SHA-3 first (clue-key behaviour). *)

val freeze : t -> t
(** O(path) immutable snapshot.  Inserts are path-copying, so the frozen
    trie keeps denoting the exact capture-time state while the original
    keeps mutating.  Freezing forces every reachable hash memo, making
    the snapshot safe to read from other domains without synchronisation
    (readers never write).  Only read on the result — inserting into a
    frozen trie is not meaningful. *)

val find : t -> key:int array -> bytes option
val find_string : t -> key:string -> bytes option

val lookup_depth : t -> key:int array -> int
(** Number of nodes visited when resolving [key] (0 if absent). *)

val cardinal : t -> int
val root_hash : t -> Hash.t
(** Digest of the root node; {!Hash.zero} for an empty trie. *)

(** {1 Proofs} *)

type proof_node =
  | Leaf_node of { path : int array; value : bytes }
  | Extension_node of { path : int array; child : Hash.t }
  | Branch_node of { children : Hash.t array; value : bytes option; descend : int }

type proof = proof_node list
(** Root-first walk. *)

val prove : t -> key:int array -> proof option
(** [None] when the key is absent. *)

val prove_string : t -> key:string -> proof option

val verify_proof : root:Hash.t -> key:int array -> value:bytes -> proof -> bool
val verify_proof_string : root:Hash.t -> key:string -> value:bytes -> proof -> bool

val proof_length : proof -> int

val node_count : t -> int
(** Total nodes — a storage metric. *)

(** {1 Wire codec} *)

val w_proof : Ledger_crypto.Wire.writer -> proof -> unit
val r_proof : Ledger_crypto.Wire.reader -> proof

(** {1 Ordered keys}

    Keys sort in prefix-first lexicographic order over nibble paths: a
    proper prefix sorts before every extension of itself.  Raw byte-string
    keys mapped through {!Nibble.of_string} therefore iterate in plain
    lexicographic byte order.  All ranges are half-open [[lo, hi)]; [hi =
    None] means unbounded. *)

val compare_keys : int array -> int array -> int

val key_in_range : int array -> lo:int array -> hi:int array option -> bool

val iter_range :
  t -> lo:int array -> ?hi:int array -> (int array -> bytes -> unit) -> unit
(** Visit every binding in [[lo, hi)] in ascending key order. *)

val fold_range :
  t -> lo:int array -> ?hi:int array -> ('a -> int array -> bytes -> 'a) -> 'a -> 'a

val take_range :
  t -> lo:int array -> ?hi:int array -> int -> (int array * bytes) list * bool
(** First [n] bindings of the range in key order, plus a flag telling
    whether more remain — the pagination primitive. *)

val min_binding : t -> (int array * bytes) option
val max_binding : t -> (int array * bytes) option

val predecessor : t -> key:int array -> (int array * bytes) option
(** Largest binding strictly below [key] ([key] itself need not exist). *)

val successor : t -> key:int array -> (int array * bytes) option

(** {1 Non-membership proofs}

    An absence proof is the root-to-divergence walk along the missing key
    (the shared-prefix divergence witness) together with inclusion proofs
    of the two adjacent keys.  {!verify_absence} checks that the walk
    hash-chains to the root and genuinely diverges, and that the claimed
    predecessor/successor are exactly adjacent to [key] — no binding can
    hide between them. *)

type absence_proof = {
  ab_walk : proof;
  ab_pred : (int array * bytes * proof) option;
  ab_succ : (int array * bytes * proof) option;
}

val prove_absent : t -> key:int array -> absence_proof option
(** [None] when the key is present. *)

val verify_absence : root:Hash.t -> key:int array -> absence_proof -> bool

(** {1 Range proofs (pruned subtrie)}

    A range proof is the trie with every subtree disjoint from [[lo, hi)]
    replaced by its bare hash.  The verifier recomputes the root digest,
    accepting pruned hashes only for provably out-of-range subtrees, so a
    matching digest certifies that the extracted bindings are {e complete}:
    the service cannot omit, add or alter a row without changing the root.
    Proof size is O(|result| + 16·depth) — sublinear in the trie. *)

type range_entry =
  | R_zero
  | R_pruned of Hash.t
  | R_leaf of { path : int array; value : bytes }
  | R_ext of { path : int array; child : range_entry }
  | R_branch of { children : range_entry array; value : bytes option }

type range_proof = range_entry

val prove_range : t -> lo:int array -> hi:int array option -> range_proof

val verify_range :
  root:Hash.t ->
  lo:int array ->
  hi:int array option ->
  range_proof ->
  (int array * bytes) list option
(** [Some bindings] (in ascending key order) iff the proof re-hashes to
    [root] and every pruned subtree is disjoint from the range. *)

val range_proof_nodes : range_proof -> int

val w_absence : Ledger_crypto.Wire.writer -> absence_proof -> unit
val r_absence : Ledger_crypto.Wire.reader -> absence_proof
val w_range_proof : Ledger_crypto.Wire.writer -> range_proof -> unit
val r_range_proof : Ledger_crypto.Wire.reader -> range_proof
