(** The clue-counter MPT (ccMPT) — the lineage baseline from the earlier
    LedgerDB paper (VLDB'20), reproduced here for the Fig. 9 comparison.

    ccMPT stores, per clue, only a counter [m] in the MPT.  A clue
    verification must (1) prove the counter against the MPT root and then
    (2) prove the existence of each of the [m] journals {e individually}
    against the global ledger accumulator — an O(m·log n) cost that CM-Tree
    reduces to O(m) (paper §IV-B1). *)

open Ledger_crypto
open Ledger_merkle

type t

val create : Accumulator.t -> t
(** Share the ledger's global (tim) journal accumulator. *)

val add : t -> clue:string -> jsn:int -> unit
(** Record that journal [jsn] carries [clue]; bumps the MPT counter. *)

val counter : t -> clue:string -> int
val jsns : t -> clue:string -> int list
(** Journal sequence numbers for a clue, oldest first. *)

val jsns_slice : t -> clue:string -> offset:int -> limit:int -> int list
(** At most [limit] jsns starting at position [offset] (oldest = 0),
    allocating O(limit) — the pagination-friendly variant of {!jsns}.
    @raise Invalid_argument on negative [offset] or [limit]. *)

val root_hash : t -> Hash.t

type proof = {
  counter : int;
  counter_proof : Mpt.proof;
  journal_proofs : (int * Hash.t * Proof.path) list;
      (** (jsn, journal digest, existence path in the ledger accumulator). *)
}

val prove_clue : t -> clue:string -> proof option

val verify_clue : t -> clue:string -> mpt_root:Hash.t -> acc_root:Hash.t -> proof -> bool
(** Checks the counter proof, that exactly [counter] journal proofs are
    present, and each journal's existence path. *)

val w_proof : Wire.writer -> proof -> unit
val r_proof : Wire.reader -> proof
(** Wire codec for {!proof}; {!r_proof} raises {!Wire.Corrupt} on
    malformed input. *)
