open Ledger_crypto
module Wire = Ledger_crypto.Wire

type node =
  | Leaf of leaf
  | Ext of ext
  | Branch of branch

and leaf = { mutable lpath : int array; mutable lvalue : bytes; mutable lhash : Hash.t option }
and ext = { mutable epath : int array; mutable echild : node; mutable ehash : Hash.t option }

and branch = {
  children : node option array;
  mutable bvalue : bytes option;
  mutable bhash : Hash.t option;
}

type t = { mutable root : node option; mutable cardinal : int; mutable nodes : int }

let create () = { root = None; cardinal = 0; nodes = 0 }
let cardinal t = t.cardinal
let node_count t = t.nodes

(* --- hashing ----------------------------------------------------------- *)

let hash_leaf_fields path value =
  let buf = Buffer.create 64 in
  Buffer.add_char buf 'L';
  Buffer.add_string buf (Nibble.to_string path);
  Buffer.add_char buf '\000';
  Buffer.add_bytes buf value;
  Hash.digest_bytes (Buffer.to_bytes buf)

let hash_ext_fields path child_hash =
  let buf = Buffer.create 64 in
  Buffer.add_char buf 'E';
  Buffer.add_string buf (Nibble.to_string path);
  Buffer.add_char buf '\000';
  Buffer.add_bytes buf (Hash.to_bytes child_hash);
  Hash.digest_bytes (Buffer.to_bytes buf)

let hash_branch_fields child_hashes value =
  let buf = Buffer.create 600 in
  Buffer.add_char buf 'B';
  Array.iter (fun h -> Buffer.add_bytes buf (Hash.to_bytes h)) child_hashes;
  (match value with
  | Some v ->
      Buffer.add_char buf 'V';
      Buffer.add_bytes buf v
  | None -> ());
  Hash.digest_bytes (Buffer.to_bytes buf)

let rec node_hash = function
  | Leaf l -> (
      match l.lhash with
      | Some h -> h
      | None ->
          let h = hash_leaf_fields l.lpath l.lvalue in
          l.lhash <- Some h;
          h)
  | Ext e -> (
      match e.ehash with
      | Some h -> h
      | None ->
          let h = hash_ext_fields e.epath (node_hash e.echild) in
          e.ehash <- Some h;
          h)
  | Branch b -> (
      match b.bhash with
      | Some h -> h
      | None ->
          let child_hashes =
            Array.map
              (function Some n -> node_hash n | None -> Hash.zero)
              b.children
          in
          let h = hash_branch_fields child_hashes b.bvalue in
          b.bhash <- Some h;
          h)

let root_hash t =
  match t.root with None -> Hash.zero | Some n -> node_hash n

(* --- insertion --------------------------------------------------------- *)

let mk_leaf t path value =
  t.nodes <- t.nodes + 1;
  Leaf { lpath = path; lvalue = value; lhash = None }

let mk_branch t =
  t.nodes <- t.nodes + 1;
  { children = Array.make 16 None; bvalue = None; bhash = None }

let mk_ext t path child =
  t.nodes <- t.nodes + 1;
  Ext { epath = path; echild = child; ehash = None }

(* Attach a remainder (possibly empty) of a key into a branch. *)
let attach_to_branch t branch path value =
  if Array.length path = 0 then branch.bvalue <- Some value
  else
    branch.children.(path.(0)) <-
      Some (mk_leaf t (Nibble.sub path 1 (Array.length path - 1)) value)

(* Insertion is path-copying: every node along the descent is replaced
   by a fresh record rather than mutated, so any previously captured
   root ({!freeze}) keeps denoting the exact pre-insert trie.  Off-path
   subtrees are shared structurally between versions. *)
let rec insert_node t node key ki value =
  match node with
  | Leaf l ->
      let rest_new = Nibble.sub key ki (Array.length key - ki) in
      let cp = Nibble.common_prefix_length l.lpath 0 rest_new 0 in
      if cp = Array.length l.lpath && cp = Array.length rest_new then
        (* same key: fresh leaf, snapshots keep the old value *)
        Leaf { lpath = l.lpath; lvalue = value; lhash = None }
      else begin
        let branch = mk_branch t in
        let old_rest = Nibble.sub l.lpath cp (Array.length l.lpath - cp) in
        let new_rest = Nibble.sub rest_new cp (Array.length rest_new - cp) in
        attach_to_branch t branch old_rest l.lvalue;
        t.nodes <- t.nodes - 1 (* the old leaf is replaced, not kept *);
        attach_to_branch t branch new_rest value;
        t.cardinal <- t.cardinal + 1;
        let bnode = Branch branch in
        if cp = 0 then bnode else mk_ext t (Nibble.sub rest_new 0 cp) bnode
      end
  | Ext e ->
      let cp = Nibble.common_prefix_length e.epath 0 key ki in
      if cp = Array.length e.epath then
        Ext
          {
            epath = e.epath;
            echild = insert_node t e.echild key (ki + cp) value;
            ehash = None;
          }
      else begin
        (* split the extension *)
        let branch = mk_branch t in
        let pivot = e.epath.(cp) in
        let tail_len = Array.length e.epath - cp - 1 in
        let inner =
          if tail_len = 0 then e.echild
          else mk_ext t (Nibble.sub e.epath (cp + 1) tail_len) e.echild
        in
        branch.children.(pivot) <- Some inner;
        let new_rest = Nibble.sub key (ki + cp) (Array.length key - ki - cp) in
        attach_to_branch t branch new_rest value;
        t.cardinal <- t.cardinal + 1;
        let bnode = Branch branch in
        t.nodes <- t.nodes - 1 (* old ext replaced *);
        if cp = 0 then bnode else mk_ext t (Nibble.sub e.epath 0 cp) bnode
      end
  | Branch b ->
      if ki = Array.length key then begin
        if b.bvalue = None then t.cardinal <- t.cardinal + 1;
        Branch
          { children = Array.copy b.children; bvalue = Some value; bhash = None }
      end
      else begin
        let c = key.(ki) in
        let children = Array.copy b.children in
        (match b.children.(c) with
        | None ->
            children.(c) <-
              Some (mk_leaf t (Nibble.sub key (ki + 1) (Array.length key - ki - 1)) value);
            t.cardinal <- t.cardinal + 1
        | Some child -> children.(c) <- Some (insert_node t child key (ki + 1) value));
        Branch { children; bvalue = b.bvalue; bhash = None }
      end

let insert t ~key value =
  if Array.length key = 0 then invalid_arg "Mpt.insert: empty key";
  match t.root with
  | None ->
      t.root <- Some (mk_leaf t (Array.copy key) value);
      t.cardinal <- 1
  | Some root -> t.root <- Some (insert_node t root key 0 value)

let insert_string t ~key value = insert t ~key:(Nibble.of_hash (Hash.scatter key)) value

(* Immutable snapshot.  Forcing the root hash memoizes every reachable
   node's digest, so a reader walking the frozen version never writes a
   memo field — the snapshot is safe to share across domains while the
   writer keeps inserting (inserts path-copy, they never touch nodes a
   frozen root can reach). *)
let freeze t =
  ignore (root_hash t);
  { root = t.root; cardinal = t.cardinal; nodes = t.nodes }

(* --- lookup ------------------------------------------------------------ *)

let rec find_node node key ki depth =
  match node with
  | Leaf l ->
      let rest = Array.length key - ki in
      if rest = Array.length l.lpath
         && Nibble.common_prefix_length l.lpath 0 key ki = rest
      then (Some l.lvalue, depth)
      else (None, depth)
  | Ext e ->
      let cp = Nibble.common_prefix_length e.epath 0 key ki in
      if cp = Array.length e.epath then find_node e.echild key (ki + cp) (depth + 1)
      else (None, depth)
  | Branch b ->
      if ki = Array.length key then (b.bvalue, depth)
      else begin
        match b.children.(key.(ki)) with
        | None -> (None, depth)
        | Some child -> find_node child key (ki + 1) (depth + 1)
      end

let find t ~key =
  match t.root with None -> None | Some n -> fst (find_node n key 0 1)

let find_string t ~key = find t ~key:(Nibble.of_hash (Hash.scatter key))

let lookup_depth t ~key =
  match t.root with
  | None -> 0
  | Some n -> (
      match find_node n key 0 1 with Some _, d -> d | None, _ -> 0)

(* --- proofs ------------------------------------------------------------ *)

type proof_node =
  | Leaf_node of { path : int array; value : bytes }
  | Extension_node of { path : int array; child : Hash.t }
  | Branch_node of { children : Hash.t array; value : bytes option; descend : int }

type proof = proof_node list

let branch_child_hashes b =
  Array.map (function Some n -> node_hash n | None -> Hash.zero) b.children

let prove t ~key =
  let rec walk node ki acc =
    match node with
    | Leaf l ->
        let rest = Array.length key - ki in
        if rest = Array.length l.lpath
           && Nibble.common_prefix_length l.lpath 0 key ki = rest
        then Some (List.rev (Leaf_node { path = Array.copy l.lpath; value = l.lvalue } :: acc))
        else None
    | Ext e ->
        let cp = Nibble.common_prefix_length e.epath 0 key ki in
        if cp = Array.length e.epath then
          walk e.echild (ki + cp)
            (Extension_node { path = Array.copy e.epath; child = node_hash e.echild } :: acc)
        else None
    | Branch b ->
        if ki = Array.length key then
          match b.bvalue with
          | Some v ->
              Some
                (List.rev
                   (Branch_node
                      { children = branch_child_hashes b; value = Some v; descend = -1 }
                   :: acc))
          | None -> None
        else begin
          match b.children.(key.(ki)) with
          | None -> None
          | Some child ->
              walk child (ki + 1)
                (Branch_node
                   { children = branch_child_hashes b; value = b.bvalue; descend = key.(ki) }
                :: acc)
        end
  in
  match t.root with None -> None | Some root -> walk root 0 []

let prove_string t ~key = prove t ~key:(Nibble.of_hash (Hash.scatter key))

let proof_node_hash = function
  | Leaf_node { path; value } -> hash_leaf_fields path value
  | Extension_node { path; child } -> hash_ext_fields path child
  | Branch_node { children; value; descend = _ } -> hash_branch_fields children value

let verify_proof ~root ~key ~value proof =
  let rec walk expected ki = function
    | [] -> false
    | node :: rest -> (
        if not (Hash.equal (proof_node_hash node) expected) then false
        else
          match node with
          | Leaf_node { path; value = v } ->
              rest = []
              && Array.length key - ki = Array.length path
              && Nibble.common_prefix_length path 0 key ki = Array.length path
              && Bytes.equal v value
          | Extension_node { path; child } ->
              Nibble.common_prefix_length path 0 key ki = Array.length path
              && walk child (ki + Array.length path) rest
          | Branch_node { children; value = bv; descend } ->
              if descend = -1 then
                rest = [] && ki = Array.length key
                && (match bv with Some v -> Bytes.equal v value | None -> false)
              else
                ki < Array.length key
                && key.(ki) = descend
                && descend >= 0 && descend < 16
                && walk children.(descend) (ki + 1) rest)
  in
  walk root 0 proof

let verify_proof_string ~root ~key ~value proof =
  verify_proof ~root ~key:(Nibble.of_hash (Hash.scatter key)) ~value proof

let proof_length = List.length

(* --- wire codec ---------------------------------------------------------- *)

let w_nibbles w path =
  Wire.w_int w (Array.length path);
  Array.iter (fun n -> Wire.w_u8 w n) path

let r_nibbles r =
  let n = Wire.r_int r in
  if n < 0 || n > 4096 then raise Wire.Corrupt;
  Array.init n (fun _ ->
      let v = Wire.r_u8 r in
      if v > 15 then raise Wire.Corrupt;
      v)

let w_proof_node w = function
  | Leaf_node { path; value } ->
      Wire.w_u8 w 0;
      w_nibbles w path;
      Wire.w_bytes w value
  | Extension_node { path; child } ->
      Wire.w_u8 w 1;
      w_nibbles w path;
      Wire.w_hash w child
  | Branch_node { children; value; descend } ->
      Wire.w_u8 w 2;
      Array.iter (Wire.w_hash w) children;
      Wire.w_option w (Wire.w_bytes w) value;
      Wire.w_int w descend

let r_proof_node r =
  match Wire.r_u8 r with
  | 0 ->
      let path = r_nibbles r in
      let value = Wire.r_bytes r in
      Leaf_node { path; value }
  | 1 ->
      let path = r_nibbles r in
      let child = Wire.r_hash r in
      Extension_node { path; child }
  | 2 ->
      let children = Array.init 16 (fun _ -> Wire.r_hash r) in
      let value = Wire.r_option r (fun () -> Wire.r_bytes r) in
      let descend = Wire.r_int r in
      Branch_node { children; value; descend }
  | _ -> raise Wire.Corrupt

let w_proof w proof = Wire.w_list w (w_proof_node w) proof
let r_proof r = Wire.r_list ~max:256 r (fun () -> r_proof_node r)

(* --- ordered keys ------------------------------------------------------- *)

(* Keys sort in prefix-first lexicographic order: a proper prefix sorts
   before every extension of itself, and a branch value sorts before the
   branch's children.  This matches a depth-first, value-first, child-
   ascending traversal of the trie, which is what every ordered operation
   below performs. *)

let compare_keys a b =
  let la = Array.length a and lb = Array.length b in
  let n = if la < lb then la else lb in
  let rec go i =
    if i = n then compare la lb
    else
      let c = compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let is_strict_prefix p k =
  Array.length p < Array.length k
  && Nibble.common_prefix_length p 0 k 0 = Array.length p

let key_in_range k ~lo ~hi =
  compare_keys lo k <= 0
  && (match hi with None -> true | Some h -> compare_keys k h < 0)

(* Every key under prefix [q] falls outside [lo, hi): either the whole
   subtree sorts below [lo] (q < lo and q is not a prefix of lo), or the
   whole subtree sorts at or above [hi] (q >= hi, since extensions of q
   sort after q). *)
let subtree_disjoint q ~lo ~hi =
  (compare_keys q lo < 0 && not (is_strict_prefix q lo))
  || (match hi with None -> false | Some h -> compare_keys q h >= 0)

let rec iter_in_range node q ~lo ~hi f =
  match node with
  | Leaf l ->
      let k = Array.append q l.lpath in
      if key_in_range k ~lo ~hi then f k l.lvalue
  | Ext e ->
      let q' = Array.append q e.epath in
      if not (subtree_disjoint q' ~lo ~hi) then iter_in_range e.echild q' ~lo ~hi f
  | Branch b ->
      (match b.bvalue with
      | Some v when key_in_range q ~lo ~hi -> f q v
      | _ -> ());
      Array.iteri
        (fun i child ->
          match child with
          | None -> ()
          | Some n ->
              let q' = Array.append q [| i |] in
              if not (subtree_disjoint q' ~lo ~hi) then iter_in_range n q' ~lo ~hi f)
        b.children

let iter_range t ~lo ?hi f =
  match t.root with None -> () | Some n -> iter_in_range n [||] ~lo ~hi f

let fold_range t ~lo ?hi f acc =
  let acc = ref acc in
  iter_range t ~lo ?hi (fun k v -> acc := f !acc k v);
  !acc

exception Enough

let take_range t ~lo ?hi n =
  let out = ref [] and count = ref 0 and more = ref false in
  (try
     iter_range t ~lo ?hi (fun k v ->
         if !count = n then begin
           more := true;
           raise Enough
         end;
         out := (k, v) :: !out;
         incr count)
   with Enough -> ());
  (List.rev !out, !more)

let rec min_in node q =
  match node with
  | Leaf l -> (Array.append q l.lpath, l.lvalue)
  | Ext e -> min_in e.echild (Array.append q e.epath)
  | Branch b -> (
      match b.bvalue with
      | Some v -> (q, v)
      | None ->
          let rec first i =
            if i = 16 then invalid_arg "Mpt: malformed branch"
            else
              match b.children.(i) with
              | Some n -> min_in n (Array.append q [| i |])
              | None -> first (i + 1)
          in
          first 0)

let rec max_in node q =
  match node with
  | Leaf l -> (Array.append q l.lpath, l.lvalue)
  | Ext e -> max_in e.echild (Array.append q e.epath)
  | Branch b ->
      let rec last i =
        if i < 0 then
          match b.bvalue with
          | Some v -> (q, v)
          | None -> invalid_arg "Mpt: malformed branch"
        else
          match b.children.(i) with
          | Some n -> max_in n (Array.append q [| i |])
          | None -> last (i - 1)
      in
      last 15

let min_binding t = Option.map (fun n -> min_in n [||]) t.root
let max_binding t = Option.map (fun n -> max_in n [||]) t.root

(* Smallest binding strictly extending prefix [q] (the binding at [q]
   itself, if any, is skipped). *)
let min_after_exact node q =
  match node with
  | Leaf l ->
      if Array.length l.lpath > 0 then Some (Array.append q l.lpath, l.lvalue)
      else None
  | Ext e -> Some (min_in e.echild (Array.append q e.epath))
  | Branch b ->
      let rec first i =
        if i = 16 then None
        else
          match b.children.(i) with
          | Some n -> Some (min_in n (Array.append q [| i |]))
          | None -> first (i + 1)
      in
      first 0

(* Invariant for both searches: on entry, [q] is a strict prefix of [key],
   so the subtree at [q] straddles [key]. *)
let rec pred_search node q key =
  match node with
  | Leaf l ->
      let k = Array.append q l.lpath in
      if compare_keys k key < 0 then Some (k, l.lvalue) else None
  | Ext e ->
      let q' = Array.append q e.epath in
      if is_strict_prefix q' key then pred_search e.echild q' key
      else if compare_keys q' key < 0 then Some (max_in e.echild q')
      else None
  | Branch b -> (
      let ki = Array.length q in
      let c = key.(ki) in
      let from_child =
        match b.children.(c) with
        | None -> None
        | Some n ->
            let q' = Array.append q [| c |] in
            if is_strict_prefix q' key then pred_search n q' key
            else None (* q' = key: everything below sorts at or after key *)
      in
      match from_child with
      | Some _ as r -> r
      | None ->
          let rec scan i =
            if i < 0 then
              match b.bvalue with Some v -> Some (q, v) | None -> None
            else
              match b.children.(i) with
              | Some n -> Some (max_in n (Array.append q [| i |]))
              | None -> scan (i - 1)
          in
          scan (c - 1))

let rec succ_search node q key =
  match node with
  | Leaf l ->
      let k = Array.append q l.lpath in
      if compare_keys k key > 0 then Some (k, l.lvalue) else None
  | Ext e ->
      let q' = Array.append q e.epath in
      if is_strict_prefix q' key then succ_search e.echild q' key
      else if compare_keys q' key > 0 then Some (min_in e.echild q')
      else if compare_keys q' key = 0 then min_after_exact e.echild q'
      else None
  | Branch b -> (
      let ki = Array.length q in
      let c = key.(ki) in
      let from_child =
        match b.children.(c) with
        | None -> None
        | Some n ->
            let q' = Array.append q [| c |] in
            if is_strict_prefix q' key then succ_search n q' key
            else min_after_exact n q'
      in
      match from_child with
      | Some _ as r -> r
      | None ->
          let rec scan i =
            if i = 16 then None
            else
              match b.children.(i) with
              | Some n -> Some (min_in n (Array.append q [| i |]))
              | None -> scan (i + 1)
          in
          scan (c + 1))

let predecessor t ~key =
  match t.root with
  | None -> None
  | Some n -> if Array.length key = 0 then None else pred_search n [||] key

let successor t ~key =
  match t.root with
  | None -> None
  | Some n ->
      if Array.length key = 0 then min_after_exact n [||]
      else succ_search n [||] key

(* --- non-membership proofs --------------------------------------------- *)

type absence_proof = {
  ab_walk : proof;
  ab_pred : (int array * bytes * proof) option;
  ab_succ : (int array * bytes * proof) option;
}

let prove_absent t ~key =
  match find t ~key with
  | Some _ -> None
  | None ->
      let walk =
        match t.root with
        | None -> []
        | Some root ->
            let rec go node ki acc =
              match node with
              | Leaf l ->
                  List.rev
                    (Leaf_node { path = Array.copy l.lpath; value = l.lvalue } :: acc)
              | Ext e ->
                  let cp = Nibble.common_prefix_length e.epath 0 key ki in
                  let pn =
                    Extension_node
                      { path = Array.copy e.epath; child = node_hash e.echild }
                  in
                  if cp = Array.length e.epath then go e.echild (ki + cp) (pn :: acc)
                  else List.rev (pn :: acc)
              | Branch b ->
                  if ki = Array.length key then
                    List.rev
                      (Branch_node
                         { children = branch_child_hashes b;
                           value = b.bvalue;
                           descend = -1 }
                      :: acc)
                  else
                    let pn c =
                      Branch_node
                        { children = branch_child_hashes b;
                          value = b.bvalue;
                          descend = c }
                    in
                    let c = key.(ki) in
                    (match b.children.(c) with
                    | Some child -> go child (ki + 1) (pn c :: acc)
                    | None -> List.rev (pn c :: acc))
            in
            go root 0 []
      in
      let with_proof (k, v) = (k, v, Option.get (prove t ~key:k)) in
      Some
        {
          ab_walk = walk;
          ab_pred = Option.map with_proof (predecessor t ~key);
          ab_succ = Option.map with_proof (successor t ~key);
        }

(* The predecessor's inclusion proof must descend rightmost once it leaves
   the shared prefix with [key]: any right sibling below the divergence
   would hold a key strictly between pred and [key]. *)
let boundary_max_check pr pk key =
  let dp = Nibble.common_prefix_length pk 0 key 0 in
  let rec go q = function
    | [] -> true
    | Leaf_node _ :: rest -> rest = []
    | Extension_node { path; _ } :: rest -> go (q + Array.length path) rest
    | Branch_node { children; descend; _ } :: rest ->
        let side_ok =
          if q <= dp then true
          else if descend = -1 then
            Array.for_all (fun h -> Hash.equal h Hash.zero) children
          else begin
            let ok = ref true in
            for i = descend + 1 to 15 do
              if not (Hash.equal children.(i) Hash.zero) then ok := false
            done;
            !ok
          end
        in
        side_ok && (if descend = -1 then rest = [] else go (q + 1) rest)
  in
  go 0 pr

(* Mirror image: the successor's proof must descend leftmost (and cross no
   branch value) below the divergence. *)
let boundary_min_check pr sk key =
  let ds = Nibble.common_prefix_length sk 0 key 0 in
  let rec go q = function
    | [] -> true
    | Leaf_node _ :: rest -> rest = []
    | Extension_node { path; _ } :: rest -> go (q + Array.length path) rest
    | Branch_node { children; value; descend } :: rest ->
        let side_ok =
          if q <= ds then true
          else if descend = -1 then true (* the branch value is the minimum *)
          else begin
            let ok = ref (value = None) in
            for i = 0 to descend - 1 do
              if not (Hash.equal children.(i) Hash.zero) then ok := false
            done;
            !ok
          end
        in
        side_ok && (if descend = -1 then rest = [] else go (q + 1) rest)
  in
  go 0 pr

let verify_absence ~root ~key p =
  if Hash.equal root Hash.zero then
    p.ab_walk = [] && p.ab_pred = None && p.ab_succ = None
  else begin
    let pk = Option.map (fun (k, _, _) -> k) p.ab_pred in
    let sk = Option.map (fun (k, _, _) -> k) p.ab_succ in
    let klen = Array.length key in
    let order_ok =
      (match pk with Some k -> compare_keys k key < 0 | None -> true)
      && (match sk with Some k -> compare_keys k key > 0 | None -> true)
    in
    let incl_ok =
      (match p.ab_pred with
      | Some (k, v, pr) ->
          verify_proof ~root ~key:k ~value:v pr && boundary_max_check pr k key
      | None -> true)
      && (match p.ab_succ with
         | Some (k, v, pr) ->
             verify_proof ~root ~key:k ~value:v pr && boundary_min_check pr k key
         | None -> true)
    in
    let dp =
      match pk with Some k -> Nibble.common_prefix_length k 0 key 0 | None -> -1
    in
    let ds =
      match sk with Some k -> Nibble.common_prefix_length k 0 key 0 | None -> -1
    in
    (* [key] extends the walk prefix at depth [q] with nibble [c] smaller
       (resp. larger) than its own next nibble: every key under that child
       lies strictly between pred and key (resp. key and succ) unless it
       sits at or beyond the claimed boundary. *)
    let left_ok q c =
      match pk with
      | None -> false
      | Some pkk ->
          if q < dp then true
          else if q = dp then dp < Array.length pkk && c <= pkk.(dp)
          else false
    in
    let right_ok q c =
      match sk with
      | None -> false
      | Some skk ->
          if q < ds then true
          else if q = ds then ds < Array.length skk && c >= skk.(ds)
          else false
    in
    (* A branch value at walk depth q is the prefix-key key[0..q), which
       sorts below [key]; it is legal only while that prefix is also a
       prefix of pred. *)
    let bvalue_ok q = pk <> None && q <= dp in
    (* Successor must extend [key] itself, branching with nibble [c]. *)
    let succ_extends_key c =
      match sk with
      | Some skk ->
          Array.length skk > klen
          && Nibble.common_prefix_length skk 0 key 0 = klen
          && skk.(klen) = c
      | None -> false
    in
    let rec go expected q nodes =
      match nodes with
      | [] -> false
      | node :: rest -> (
          Hash.equal (proof_node_hash node) expected
          &&
          match node with
          | Leaf_node { path; value = _ } ->
              rest = []
              &&
              let lk = Array.append (Array.sub key 0 q) path in
              let c = compare_keys lk key in
              if c = 0 then false
              else if c < 0 then
                (match pk with Some k -> compare_keys k lk = 0 | None -> false)
              else (match sk with Some k -> compare_keys k lk = 0 | None -> false)
          | Extension_node { path; child } ->
              let cp = Nibble.common_prefix_length path 0 key q in
              if cp = Array.length path then rest <> [] && go child (q + cp) rest
              else
                rest = []
                && (if q + cp = klen then
                      (* key exhausted inside the extension: the whole
                         subtree strictly extends key *)
                      succ_extends_key path.(cp)
                    else if path.(cp) < key.(q + cp) then
                      match pk with
                      | Some pkk ->
                          dp = q + cp
                          && dp < Array.length pkk
                          && pkk.(dp) = path.(cp)
                      | None -> false
                    else
                      match sk with
                      | Some skk ->
                          ds = q + cp
                          && ds < Array.length skk
                          && skk.(ds) = path.(cp)
                      | None -> false)
          | Branch_node { children; value; descend } ->
              let side_ok = ref true in
              let limit = if q < klen then key.(q) else -1 in
              if value <> None && q < klen && not (bvalue_ok q) then
                side_ok := false;
              for i = 0 to 15 do
                if not (Hash.equal children.(i) Hash.zero) then begin
                  if q >= klen then begin
                    (* children of the terminal branch all strictly extend
                       key; the successor must be the leftmost of them *)
                    let ok =
                      match sk with
                      | Some skk ->
                          Array.length skk > klen
                          && Nibble.common_prefix_length skk 0 key 0 = klen
                          && i >= skk.(klen)
                      | None -> false
                    in
                    if not ok then side_ok := false
                  end
                  else if i < limit then begin
                    if not (left_ok q i) then side_ok := false
                  end
                  else if i > limit then
                    if not (right_ok q i) then side_ok := false
                end
              done;
              !side_ok
              &&
              if descend = -1 then rest = [] && q = klen && value = None
              else
                q < klen && descend = key.(q) && descend >= 0 && descend < 16
                &&
                if Hash.equal children.(descend) Hash.zero then rest = []
                else rest <> [] && go children.(descend) (q + 1) rest)
    in
    order_ok && incl_ok && go root 0 p.ab_walk
  end

(* --- range proofs (pruned subtrie) -------------------------------------- *)

type range_entry =
  | R_zero
  | R_pruned of Hash.t
  | R_leaf of { path : int array; value : bytes }
  | R_ext of { path : int array; child : range_entry }
  | R_branch of { children : range_entry array; value : bytes option }

type range_proof = range_entry

let prove_range t ~lo ~hi =
  let rec conv node q =
    if subtree_disjoint q ~lo ~hi then R_pruned (node_hash node)
    else
      match node with
      | Leaf l -> R_leaf { path = Array.copy l.lpath; value = l.lvalue }
      | Ext e ->
          R_ext
            { path = Array.copy e.epath;
              child = conv e.echild (Array.append q e.epath) }
      | Branch b ->
          let children = Array.make 16 R_zero in
          for i = 0 to 15 do
            match b.children.(i) with
            | None -> ()
            | Some n -> children.(i) <- conv n (Array.append q [| i |])
          done;
          R_branch { children; value = b.bvalue }
  in
  match t.root with None -> R_zero | Some n -> conv n [||]

exception Bad_range

let verify_range ~root ~lo ~hi proof =
  let out = ref [] in
  (* Recompute the root digest bottom-up.  A pruned hash is only accepted
     for subtrees provably disjoint from [lo, hi), so if the digest matches
     a trusted root, [out] holds *every* in-range binding of that trie. *)
  let rec digest entry q =
    match entry with
    | R_zero -> Hash.zero
    | R_pruned h ->
        if not (subtree_disjoint q ~lo ~hi) then raise Bad_range;
        if Hash.equal h Hash.zero then raise Bad_range;
        h
    | R_leaf { path; value } ->
        let k = Array.append q path in
        if key_in_range k ~lo ~hi then out := (k, value) :: !out;
        hash_leaf_fields path value
    | R_ext { path; child } ->
        if Array.length path = 0 then raise Bad_range;
        (match child with R_zero -> raise Bad_range | _ -> ());
        hash_ext_fields path (digest child (Array.append q path))
    | R_branch { children; value } ->
        if Array.length children <> 16 then raise Bad_range;
        (match value with
        | Some v when key_in_range q ~lo ~hi -> out := (q, v) :: !out
        | _ -> ());
        let hs = Array.make 16 Hash.zero in
        for i = 0 to 15 do
          hs.(i) <- digest children.(i) (Array.append q [| i |])
        done;
        hash_branch_fields hs value
  in
  try
    let d = digest proof [||] in
    if Hash.equal d root then Some (List.rev !out) else None
  with Bad_range -> None

let rec range_proof_nodes = function
  | R_zero -> 0
  | R_pruned _ | R_leaf _ -> 1
  | R_ext { child; _ } -> 1 + range_proof_nodes child
  | R_branch { children; _ } ->
      Array.fold_left (fun a c -> a + range_proof_nodes c) 1 children

(* --- wire codecs for the new proof forms --------------------------------- *)

let w_kv_proof w (k, v, pr) =
  w_nibbles w k;
  Wire.w_bytes w v;
  w_proof w pr

let r_deep_proof r = Wire.r_list ~max:4096 r (fun () -> r_proof_node r)

let r_kv_proof r =
  let k = r_nibbles r in
  let v = Wire.r_bytes r in
  let pr = r_deep_proof r in
  (k, v, pr)

let w_absence w p =
  w_proof w p.ab_walk;
  Wire.w_option w (w_kv_proof w) p.ab_pred;
  Wire.w_option w (w_kv_proof w) p.ab_succ

let r_absence r =
  let ab_walk = r_deep_proof r in
  let ab_pred = Wire.r_option r (fun () -> r_kv_proof r) in
  let ab_succ = Wire.r_option r (fun () -> r_kv_proof r) in
  { ab_walk; ab_pred; ab_succ }

let w_range_proof w proof =
  let rec go = function
    | R_zero -> Wire.w_u8 w 0
    | R_pruned h ->
        Wire.w_u8 w 1;
        Wire.w_hash w h
    | R_leaf { path; value } ->
        Wire.w_u8 w 2;
        w_nibbles w path;
        Wire.w_bytes w value
    | R_ext { path; child } ->
        Wire.w_u8 w 3;
        w_nibbles w path;
        go child
    | R_branch { children; value } ->
        Wire.w_u8 w 4;
        Array.iter go children;
        Wire.w_option w (Wire.w_bytes w) value
  in
  go proof

let r_range_proof r =
  let budget = ref 1_000_000 in
  let rec go depth =
    if depth > 4096 then raise Wire.Corrupt;
    decr budget;
    if !budget < 0 then raise Wire.Corrupt;
    match Wire.r_u8 r with
    | 0 -> R_zero
    | 1 -> R_pruned (Wire.r_hash r)
    | 2 ->
        let path = r_nibbles r in
        let value = Wire.r_bytes r in
        R_leaf { path; value }
    | 3 ->
        let path = r_nibbles r in
        R_ext { path; child = go (depth + 1) }
    | 4 ->
        let children = Array.make 16 R_zero in
        for i = 0 to 15 do
          children.(i) <- go (depth + 1)
        done;
        let value = Wire.r_option r (fun () -> Wire.r_bytes r) in
        R_branch { children; value }
    | _ -> raise Wire.Corrupt
  in
  go 0
