open Ledger_crypto
open Ledger_merkle

(* Per-clue jsn log: a growable array appended oldest-first, so bounded
   slices ({!jsns_slice}) cost O(slice) instead of materializing the whole
   list the way the original [int list ref] representation did. *)
type cell = { mutable count : int; mutable arr : int array }

type t = {
  trie : Mpt.t;
  acc : Accumulator.t;
  index : (string, cell) Hashtbl.t;
}

let create acc = { trie = Mpt.create (); acc; index = Hashtbl.create 64 }

let encode_counter m = Bytes.of_string (string_of_int m)

let decode_counter b =
  match int_of_string_opt (Bytes.to_string b) with
  | Some m -> m
  | None -> invalid_arg "Ccmpt: corrupt counter"

let cell_push cell jsn =
  let cap = Array.length cell.arr in
  if cell.count = cap then begin
    let bigger = Array.make (if cap = 0 then 4 else 2 * cap) 0 in
    Array.blit cell.arr 0 bigger 0 cell.count;
    cell.arr <- bigger
  end;
  cell.arr.(cell.count) <- jsn;
  cell.count <- cell.count + 1

let add t ~clue ~jsn =
  let cell =
    match Hashtbl.find_opt t.index clue with
    | Some c -> c
    | None ->
        let c = { count = 0; arr = [||] } in
        Hashtbl.replace t.index clue c;
        c
  in
  cell_push cell jsn;
  Mpt.insert_string t.trie ~key:clue (encode_counter cell.count)

let counter t ~clue =
  match Mpt.find_string t.trie ~key:clue with
  | Some b -> decode_counter b
  | None -> 0

let jsns_slice t ~clue ~offset ~limit =
  if offset < 0 || limit < 0 then invalid_arg "Ccmpt.jsns_slice";
  match Hashtbl.find_opt t.index clue with
  | None -> []
  | Some cell ->
      let off = min offset cell.count in
      let n = min limit (cell.count - off) in
      Array.to_list (Array.sub cell.arr off n)

let jsns t ~clue = jsns_slice t ~clue ~offset:0 ~limit:max_int

let root_hash t = Mpt.root_hash t.trie

type proof = {
  counter : int;
  counter_proof : Mpt.proof;
  journal_proofs : (int * Hash.t * Proof.path) list;
}

let prove_clue t ~clue =
  match Mpt.prove_string t.trie ~key:clue with
  | None -> None
  | Some counter_proof ->
      let m = counter t ~clue in
      let journal_proofs =
        List.map
          (fun jsn -> (jsn, Accumulator.leaf t.acc jsn, Accumulator.prove t.acc jsn))
          (jsns t ~clue)
      in
      Some { counter = m; counter_proof; journal_proofs }

let verify_clue _t ~clue ~mpt_root ~acc_root proof =
  Mpt.verify_proof_string ~root:mpt_root ~key:clue
    ~value:(encode_counter proof.counter) proof.counter_proof
  && List.length proof.journal_proofs = proof.counter
  && List.for_all
       (fun (_jsn, digest, path) ->
         Accumulator.verify ~root:acc_root ~leaf:digest path)
       proof.journal_proofs

(* --- wire codec --------------------------------------------------------- *)

let w_proof w p =
  Wire.w_int w p.counter;
  Mpt.w_proof w p.counter_proof;
  Wire.w_list w
    (fun (jsn, digest, path) ->
      Wire.w_int w jsn;
      Wire.w_hash w digest;
      Proof_codec.w_path w path)
    p.journal_proofs

let r_proof r =
  let counter = Wire.r_int r in
  if counter < 0 then raise Wire.Corrupt;
  let counter_proof = Mpt.r_proof r in
  let journal_proofs =
    Wire.r_list ~max:100_000 r (fun () ->
        let jsn = Wire.r_int r in
        let digest = Wire.r_hash r in
        let path = Proof_codec.r_path r in
        (jsn, digest, path))
  in
  { counter; counter_proof; journal_proofs }
