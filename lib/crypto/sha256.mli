(** Pure-OCaml SHA-256 (FIPS 180-4).

    Both a streaming context API and one-shot helpers are provided.  The
    implementation uses native [int] arithmetic with 32-bit masking, so it
    requires a 64-bit platform (as does the rest of this library). *)

type ctx
(** A mutable hashing context. *)

val init : unit -> ctx

val update : ctx -> bytes -> unit
(** Absorb the whole byte buffer. *)

val update_sub : ctx -> bytes -> int -> int -> unit
(** [update_sub ctx b off len] absorbs [len] bytes of [b] starting at
    [off]. *)

val update_string : ctx -> string -> unit

val finalize : ctx -> bytes
(** Produce the 32-byte digest of everything absorbed so far.
    Non-destructive: the context stays valid, so callers may keep
    absorbing and finalize again to get running digests of a stream. *)

val digest_bytes : bytes -> bytes
(** One-shot digest of a byte buffer. *)

val digest_string : string -> bytes
(** One-shot digest of a string. *)

(** {1 Reference implementation}

    The original rotr-helper compression loop with checked accesses and
    per-step masking, kept for differential testing of the fast loop. *)

module Ref : sig
  val digest_bytes : bytes -> bytes
  val digest_string : string -> bytes
end
