(* Each entry caches [Ecdsa.public_key_id signer] at insertion time:
   [covers] used to re-hash every recorded signer for every required key
   (O(n·m) SHA-256 calls on the purge/occult admission path); with the id
   memoized it hashes each required key once. *)
type entry = {
  signer : Ecdsa.public_key;
  signer_id : Hash.t;
  signature : Ecdsa.signature;
}

type t = { digest : Hash.t; entries : entry list }

let empty digest = { digest; entries = [] }
let digest t = t.digest
let remove_signer entries id =
  List.filter (fun e -> not (Hash.equal e.signer_id id)) entries

let add t ~signer priv =
  let signature = Ecdsa.sign priv t.digest in
  let signer_id = Ecdsa.public_key_id signer in
  let entries = remove_signer t.entries signer_id in
  { t with entries = { signer; signer_id; signature } :: entries }

let add_signature t ~signer signature =
  let signer_id = Ecdsa.public_key_id signer in
  let entries = remove_signer t.entries signer_id in
  { t with entries = { signer; signer_id; signature } :: entries }

let signer_ids t = List.map (fun e -> e.signer_id) t.entries

let verify_all t =
  List.for_all (fun e -> Ecdsa.verify e.signer t.digest e.signature) t.entries

let covers t ~required =
  verify_all t
  && List.for_all
       (fun pk ->
         let id = Ecdsa.public_key_id pk in
         List.exists (fun e -> Hash.equal e.signer_id id) t.entries)
       required

let cardinal t = List.length t.entries
