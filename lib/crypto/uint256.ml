(* 256-bit unsigned integers as 16 little-endian limbs of 16 bits.
   Limb products fit in 32 bits and column sums in ~36 bits, so all
   intermediate values stay well inside OCaml's 63-bit native int. *)

let limb_count = 16
let limb_bits = 16
let limb_mask = 0xFFFF

type t = int array

let zero = Array.make limb_count 0
let one =
  let a = Array.make limb_count 0 in
  a.(0) <- 1;
  a

let of_int n =
  if n < 0 then invalid_arg "Uint256.of_int: negative";
  let a = Array.make limb_count 0 in
  let rec fill i n =
    if n <> 0 && i < limb_count then begin
      a.(i) <- n land limb_mask;
      fill (i + 1) (n lsr limb_bits)
    end
  in
  fill 0 n;
  a

let to_int_opt x =
  (* An OCaml int holds 62 usable bits here: accept values below 2^62. *)
  let rec high_zero i = i >= limb_count || (x.(i) = 0 && high_zero (i + 1)) in
  if not (high_zero 4) then None
  else begin
    let v =
      x.(0) lor (x.(1) lsl 16) lor (x.(2) lsl 32) lor (x.(3) lsl 48)
    in
    if v < 0 then None else Some v
  end

let of_bytes_be b =
  let len = Bytes.length b in
  if len > 32 then invalid_arg "Uint256.of_bytes_be: more than 32 bytes";
  let a = Array.make limb_count 0 in
  for i = 0 to len - 1 do
    (* byte i (from the most significant end) contributes to bit position *)
    let byte = Char.code (Bytes.get b (len - 1 - i)) in
    let limb = i / 2 in
    let shift = (i mod 2) * 8 in
    a.(limb) <- a.(limb) lor (byte lsl shift)
  done;
  a

let to_bytes_be x =
  let b = Bytes.create 32 in
  for i = 0 to 31 do
    let limb = i / 2 in
    let shift = (i mod 2) * 8 in
    Bytes.set b (31 - i) (Char.chr ((x.(limb) lsr shift) land 0xFF))
  done;
  b

let hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Uint256.of_hex: bad digit"

let of_hex s =
  let n = String.length s in
  if n = 0 || n > 64 then invalid_arg "Uint256.of_hex: bad length";
  let a = Array.make limb_count 0 in
  for i = 0 to n - 1 do
    (* digit i counted from the least significant end *)
    let d = hex_digit s.[n - 1 - i] in
    let limb = i / 4 in
    let shift = (i mod 4) * 4 in
    a.(limb) <- a.(limb) lor (d lsl shift)
  done;
  a

let to_hex x =
  let buf = Buffer.create 64 in
  for i = limb_count - 1 downto 0 do
    Buffer.add_string buf (Printf.sprintf "%04x" x.(i))
  done;
  Buffer.contents buf

let is_zero x =
  let rec go i = i >= limb_count || (x.(i) = 0 && go (i + 1)) in
  go 0

let is_odd x = x.(0) land 1 = 1

let equal a b =
  let rec go i = i >= limb_count || (a.(i) = b.(i) && go (i + 1)) in
  go 0

let compare a b =
  let rec go i =
    if i < 0 then 0
    else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
    else go (i - 1)
  in
  go (limb_count - 1)

let num_bits x =
  let rec top i = if i < 0 then -1 else if x.(i) <> 0 then i else top (i - 1) in
  let i = top (limb_count - 1) in
  if i < 0 then 0
  else begin
    let v = x.(i) in
    let rec width w = if v lsr w = 0 then w else width (w + 1) in
    (i * limb_bits) + width 1
  end

let bit x i =
  if i >= limb_count * limb_bits then false
  else (x.(i / limb_bits) lsr (i mod limb_bits)) land 1 = 1

let add a b =
  let r = Array.make limb_count 0 in
  let carry = ref 0 in
  for i = 0 to limb_count - 1 do
    let s = a.(i) + b.(i) + !carry in
    r.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  (r, !carry <> 0)

let sub a b =
  let r = Array.make limb_count 0 in
  let borrow = ref 0 in
  for i = 0 to limb_count - 1 do
    let s = a.(i) - b.(i) - !borrow in
    if s < 0 then begin
      r.(i) <- s + (limb_mask + 1);
      borrow := 1
    end else begin
      r.(i) <- s;
      borrow := 0
    end
  done;
  (r, !borrow <> 0)

let shift_left x k =
  if k <= 0 then Array.copy x
  else if k >= limb_count * limb_bits then Array.make limb_count 0
  else begin
    let limb_shift = k / limb_bits and bit_shift = k mod limb_bits in
    let r = Array.make limb_count 0 in
    for i = limb_count - 1 downto 0 do
      let src = i - limb_shift in
      if src >= 0 then begin
        let v = x.(src) lsl bit_shift in
        r.(i) <- r.(i) lor (v land limb_mask);
        if bit_shift > 0 && i + 1 < limb_count then
          r.(i + 1) <- r.(i + 1) lor (v lsr limb_bits)
      end
    done;
    r
  end

let shift_right x k =
  if k <= 0 then Array.copy x
  else if k >= limb_count * limb_bits then Array.make limb_count 0
  else begin
    let limb_shift = k / limb_bits and bit_shift = k mod limb_bits in
    let r = Array.make limb_count 0 in
    for i = 0 to limb_count - 1 do
      let src = i + limb_shift in
      if src < limb_count then begin
        let v = x.(src) lsr bit_shift in
        r.(i) <- r.(i) lor v;
        if bit_shift > 0 && src + 1 < limb_count then
          r.(i) <-
            r.(i) lor ((x.(src + 1) lsl (limb_bits - bit_shift)) land limb_mask)
      end
    done;
    r
  end

let mul_wide a b =
  let r = Array.make (2 * limb_count) 0 in
  for i = 0 to limb_count - 1 do
    if a.(i) <> 0 then begin
      let carry = ref 0 in
      for j = 0 to limb_count - 1 do
        let s = r.(i + j) + (a.(i) * b.(j)) + !carry in
        r.(i + j) <- s land limb_mask;
        carry := s lsr limb_bits
      done;
      let k = ref (i + limb_count) in
      while !carry <> 0 do
        let s = r.(!k) + !carry in
        r.(!k) <- s land limb_mask;
        carry := s lsr limb_bits;
        incr k
      done
    end
  done;
  r

(* Long division on raw limb arrays.  [bits] is the bit width of the
   dividend.  The remainder accumulator has one spare limb so that the
   shift-then-compare step cannot overflow. *)
let div_mod_raw dividend bits m =
  let qlen = (bits + limb_bits - 1) / limb_bits in
  let q = Array.make (max qlen 1) 0 in
  let rlen = limb_count + 1 in
  let r = Array.make rlen 0 in
  let r_ge_m () =
    if r.(limb_count) <> 0 then true
    else begin
      let rec go i =
        if i < 0 then true
        else if r.(i) <> m.(i) then r.(i) > m.(i)
        else go (i - 1)
      in
      go (limb_count - 1)
    end
  in
  let r_sub_m () =
    let borrow = ref 0 in
    for i = 0 to limb_count - 1 do
      let s = r.(i) - m.(i) - !borrow in
      if s < 0 then begin
        r.(i) <- s + (limb_mask + 1);
        borrow := 1
      end else begin
        r.(i) <- s;
        borrow := 0
      end
    done;
    r.(limb_count) <- r.(limb_count) - !borrow
  in
  for i = bits - 1 downto 0 do
    (* r := (r << 1) | bit i of dividend *)
    let carry = ref ((dividend.(i / limb_bits) lsr (i mod limb_bits)) land 1) in
    for j = 0 to rlen - 1 do
      let v = (r.(j) lsl 1) lor !carry in
      r.(j) <- v land limb_mask;
      carry := v lsr limb_bits
    done;
    if r_ge_m () then begin
      r_sub_m ();
      q.(i / limb_bits) <- q.(i / limb_bits) lor (1 lsl (i mod limb_bits))
    end
  done;
  (q, Array.sub r 0 limb_count)

let div_mod a m =
  if is_zero m then raise Division_by_zero;
  let bits = num_bits a in
  if bits = 0 then (zero, zero)
  else if compare a m < 0 then (zero, Array.copy a)
  else begin
    let q, r = div_mod_raw a bits m in
    let qt = Array.make limb_count 0 in
    Array.blit q 0 qt 0 (min (Array.length q) limb_count);
    (qt, r)
  end

let mod_wide w m =
  if is_zero m then raise Division_by_zero;
  let bits =
    let rec top i = if i < 0 then 0 else if w.(i) <> 0 then i else top (i - 1) in
    let i = top (Array.length w - 1) in
    if i = 0 && w.(0) = 0 then 0
    else begin
      let v = w.(i) in
      let rec width k = if v lsr k = 0 then k else width (k + 1) in
      (i * limb_bits) + width 1
    end
  in
  if bits = 0 then zero
  else
    let _, r = div_mod_raw w bits m in
    r

let add_mod a b m =
  let s, carry = add a b in
  if carry || compare s m >= 0 then fst (sub s m) else s

let sub_mod a b m =
  let d, borrow = sub a b in
  if borrow then fst (add d m) else d

let mul_mod a b m = mod_wide (mul_wide a b) m

let pow_mod b e m =
  let result = ref (snd (div_mod one m)) in
  let base = ref (snd (div_mod b m)) in
  let nb = num_bits e in
  for i = 0 to nb - 1 do
    if bit e i then result := mul_mod !result !base m;
    base := mul_mod !base !base m
  done;
  !result

(* Binary extended GCD inversion for odd modulus.  Works on local mutable
   limb arrays with an explicit spare carry so that (x + m) / 2 is exact. *)
(* Binary extended GCD on five 52-bit limbs: packing quarters the limb
   count of the 16-bit representation, and the 11 spare bits in the top
   limb (moduli are < 2^256, so limb 4 is < 2^48) absorb the transient
   [x + m] overflow, so no carry word is needed anywhere.  The working
   values stay < 2m throughout. *)
let inv_mod x m =
  if not (is_odd m) then invalid_arg "Uint256.inv_mod: modulus must be odd";
  let x = snd (div_mod x m) in
  if is_zero x then invalid_arg "Uint256.inv_mod: zero has no inverse";
  let gl = 5 and gb = 52 in
  let gmask = (1 lsl 52) - 1 in
  (* gather bits [52j, 52j+52) of a 16x16 value; 52j mod 16 is at most
     12, so four source limbs always suffice *)
  let pack a =
    let r = Array.make gl 0 in
    for j = 0 to gl - 1 do
      let b = gb * j in
      let i = b lsr 4 and sh = b land 15 in
      let v = ref (a.(i) lsr sh) in
      if i + 1 < 16 then v := !v lor (a.(i + 1) lsl (16 - sh));
      if i + 2 < 16 then v := !v lor (a.(i + 2) lsl (32 - sh));
      if i + 3 < 16 then v := !v lor (a.(i + 3) lsl (48 - sh));
      r.(j) <- !v land gmask
    done;
    r
  in
  let unpack a =
    let r = Array.make limb_count 0 in
    for i = 0 to limb_count - 1 do
      let b = i * 16 in
      let j = b / gb and sh = b mod gb in
      let v = ref (a.(j) lsr sh) in
      if j + 1 < gl then v := !v lor (a.(j + 1) lsl (gb - sh));
      r.(i) <- !v land limb_mask
    done;
    r
  in
  let m52 = pack m in
  let u = pack x and v = Array.copy m52 in
  let x1 = Array.make gl 0 and x2 = Array.make gl 0 in
  x1.(0) <- 1;
  let arr_is_one a =
    a.(0) = 1 && a.(1) = 0 && a.(2) = 0 && a.(3) = 0 && a.(4) = 0
  in
  let arr_is_zero a =
    a.(0) = 0 && a.(1) = 0 && a.(2) = 0 && a.(3) = 0 && a.(4) = 0
  in
  let arr_even a = a.(0) land 1 = 0 in
  let arr_ge a b =
    let rec go i =
      if i < 0 then true else if a.(i) <> b.(i) then a.(i) > b.(i) else go (i - 1)
    in
    go (gl - 1)
  in
  let arr_sub_inplace a b =
    let borrow = ref 0 in
    for i = 0 to gl - 1 do
      let s = a.(i) - b.(i) - !borrow in
      if s < 0 then begin
        a.(i) <- s + gmask + 1;
        borrow := 1
      end
      else begin
        a.(i) <- s;
        borrow := 0
      end
    done
  in
  let arr_half a =
    for i = 0 to gl - 2 do
      a.(i) <- (a.(i) lsr 1) lor ((a.(i + 1) land 1) lsl (gb - 1))
    done;
    a.(gl - 1) <- a.(gl - 1) lsr 1
  in
  let arr_add_m a =
    let carry = ref 0 in
    for i = 0 to gl - 1 do
      let s = a.(i) + m52.(i) + !carry in
      a.(i) <- s land gmask;
      carry := s lsr gb
    done
  in
  let half_mod a =
    if not (arr_even a) then arr_add_m a;
    arr_half a
  in
  let sub_mod_inplace a b =
    (* a := (a - b) mod m; a + m fits the headroom of limb 4 *)
    if not (arr_ge a b) then arr_add_m a;
    arr_sub_inplace a b
  in
  while not (arr_is_one u) && not (arr_is_one v) do
    while arr_even u do
      arr_half u;
      half_mod x1
    done;
    while arr_even v do
      arr_half v;
      half_mod x2
    done;
    if arr_ge u v then begin
      arr_sub_inplace u v;
      sub_mod_inplace x1 x2
    end
    else begin
      arr_sub_inplace v u;
      sub_mod_inplace x2 x1
    end;
    if arr_is_zero u || arr_is_zero v then
      invalid_arg "Uint256.inv_mod: not coprime"
  done;
  let r = if arr_is_one u then x1 else x2 in
  unpack r

let limbs x = x
let of_limbs a =
  if Array.length a <> limb_count then invalid_arg "Uint256.of_limbs";
  Array.copy a

let pp fmt x = Format.pp_print_string fmt (to_hex x)
