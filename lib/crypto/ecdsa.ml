type private_key = Uint256.t
type public_key = Secp256k1.point
type signature = { r : Uint256.t; s : Uint256.t }

let n = Secp256k1.n
let n_minus_1 = fst (Uint256.sub n Uint256.one)

(* Map 32 bytes to [1, n-1].  v < 2^256 < 2(n-1), so reduction mod n-1
   is a single conditional subtraction. *)
let scalar_of_bytes b =
  let v = Uint256.of_bytes_be b in
  let v =
    if Uint256.compare v n_minus_1 >= 0 then fst (Uint256.sub v n_minus_1)
    else v
  in
  fst (Uint256.add v Uint256.one)

let generate ~seed =
  let d = scalar_of_bytes (Sha256.digest_string ("ledgerdb-key:" ^ seed)) in
  (d, Secp256k1.scalar_mul_base d)

let public_key d = Secp256k1.scalar_mul_base d

(* Deterministic nonce in the spirit of RFC 6979: chained HMAC over the
   private key and digest, with a retry counter. *)
let nonce d msg_hash attempt =
  let key = Uint256.to_bytes_be d in
  let data = Bytes.create 33 in
  Bytes.blit (Hash.to_bytes msg_hash) 0 data 0 32;
  Bytes.set data 32 (Char.chr (attempt land 0xFF));
  scalar_of_bytes (Hmac_sha256.mac ~key data)

let z_of_hash h =
  Secp256k1.Scalar.reduce (Uint256.of_bytes_be (Hash.to_bytes h))

let sign d msg_hash =
  let z = z_of_hash msg_hash in
  let rec attempt i =
    if i > 100 then failwith "Ecdsa.sign: could not find a valid nonce";
    let k = nonce d msg_hash i in
    let kg = Secp256k1.scalar_mul_base k in
    match Secp256k1.to_affine kg with
    | None -> attempt (i + 1)
    | Some (x, _) ->
        let r = Secp256k1.Scalar.reduce x in
        if Uint256.is_zero r then attempt (i + 1)
        else begin
          let kinv = Secp256k1.Scalar.inv k in
          let rd = Secp256k1.Scalar.mul r d in
          let s = Secp256k1.Scalar.mul kinv (Secp256k1.Scalar.add z rd) in
          if Uint256.is_zero s then attempt (i + 1) else { r; s }
        end
  in
  attempt 0

let in_range v = not (Uint256.is_zero v) && Uint256.compare v n < 0

let verify q msg_hash { r; s } =
  if not (in_range r && in_range s) then false
  else if Secp256k1.is_infinity q then false
  else begin
    let z = z_of_hash msg_hash in
    let w = Secp256k1.Scalar.inv s in
    let u1 = Secp256k1.Scalar.mul z w in
    let u2 = Secp256k1.Scalar.mul r w in
    let pt = Secp256k1.double_scalar_mul u1 Secp256k1.generator u2 q in
    (* compare x(pt) to r without an affine conversion (saves a field
       inversion): r is already known to be in [1, n) here *)
    Secp256k1.has_x_mod_n pt r
  end

let public_key_to_bytes q =
  match Secp256k1.to_affine q with
  | None -> invalid_arg "Ecdsa.public_key_to_bytes: infinity"
  | Some (x, y) ->
      let b = Bytes.create 64 in
      Bytes.blit (Uint256.to_bytes_be x) 0 b 0 32;
      Bytes.blit (Uint256.to_bytes_be y) 0 b 32 32;
      b

let public_key_of_bytes b =
  if Bytes.length b <> 64 then None
  else begin
    let x = Uint256.of_bytes_be (Bytes.sub b 0 32) in
    let y = Uint256.of_bytes_be (Bytes.sub b 32 32) in
    if Secp256k1.is_on_curve x y then Some (Secp256k1.of_affine x y) else None
  end

let public_key_id q = Hash.digest_bytes (public_key_to_bytes q)

let signature_to_bytes { r; s } =
  let b = Bytes.create 64 in
  Bytes.blit (Uint256.to_bytes_be r) 0 b 0 32;
  Bytes.blit (Uint256.to_bytes_be s) 0 b 32 32;
  b

let signature_of_bytes b =
  if Bytes.length b <> 64 then None
  else
    Some
      {
        r = Uint256.of_bytes_be (Bytes.sub b 0 32);
        s = Uint256.of_bytes_be (Bytes.sub b 32 32);
      }

let pp_signature fmt { r; s } =
  Format.fprintf fmt "sig(r=%s…, s=%s…)"
    (String.sub (Uint256.to_hex r) 0 8)
    (String.sub (Uint256.to_hex s) 0 8)

(* ----------------------------------------------------------------------
   Reference signer/verifier over Secp256k1.Ref: the pre-kernel pipeline
   (long-division scalar arithmetic, double-and-add ladders).  The
   differential suites assert sign/verify agree bit-for-bit with the
   fast path above.
   ---------------------------------------------------------------------- *)

module Ref = struct
  let z_of_hash h =
    snd (Uint256.div_mod (Uint256.of_bytes_be (Hash.to_bytes h)) n)

  let scalar_of_bytes b =
    let v = Uint256.of_bytes_be b in
    let v = snd (Uint256.div_mod v n_minus_1) in
    fst (Uint256.add v Uint256.one)

  let nonce d msg_hash attempt =
    let key = Uint256.to_bytes_be d in
    let data = Bytes.create 33 in
    Bytes.blit (Hash.to_bytes msg_hash) 0 data 0 32;
    Bytes.set data 32 (Char.chr (attempt land 0xFF));
    scalar_of_bytes (Hmac_sha256.mac ~key data)

  let sign d msg_hash =
    let z = z_of_hash msg_hash in
    let rec attempt i =
      if i > 100 then failwith "Ecdsa.Ref.sign: could not find a valid nonce";
      let k = nonce d msg_hash i in
      let kg = Secp256k1.Ref.scalar_mul k Secp256k1.Ref.generator in
      match Secp256k1.Ref.to_affine kg with
      | None -> attempt (i + 1)
      | Some (x, _) ->
          let r = snd (Uint256.div_mod x n) in
          if Uint256.is_zero r then attempt (i + 1)
          else begin
            let kinv = Uint256.inv_mod k n in
            let rd = Uint256.mul_mod r d n in
            let s = Uint256.mul_mod kinv (Uint256.add_mod z rd n) n in
            if Uint256.is_zero s then attempt (i + 1) else { r; s }
          end
    in
    attempt 0

  (* Accepts the fast-representation public key and re-expresses it for
     the reference ladder, so both verifiers can be run on identical
     inputs. *)
  let verify q msg_hash { r; s } =
    if not (in_range r && in_range s) then false
    else if Secp256k1.is_infinity q then false
    else begin
      match Secp256k1.to_affine q with
      | None -> false
      | Some (qx, qy) ->
          let q = Secp256k1.Ref.of_affine qx qy in
          let z = z_of_hash msg_hash in
          let w = Uint256.inv_mod s n in
          let u1 = Uint256.mul_mod z w n in
          let u2 = Uint256.mul_mod r w n in
          let pt =
            Secp256k1.Ref.double_scalar_mul u1 Secp256k1.Ref.generator u2 q
          in
          (match Secp256k1.Ref.to_affine pt with
          | None -> false
          | Some (x, _) -> Uint256.equal (snd (Uint256.div_mod x n)) r)
    end
end
